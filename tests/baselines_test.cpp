#include <gtest/gtest.h>

#include "analysis/maxmin_solver.hpp"
#include "baselines/configs.hpp"
#include "baselines/two_phase.hpp"
#include "scenarios/scenarios.hpp"
#include "topology/routing.hpp"

namespace maxmin::baselines {
namespace {

std::vector<std::vector<topo::NodeId>> pathsFor(
    const scenarios::Scenario& sc) {
  std::vector<std::vector<topo::NodeId>> paths;
  for (const auto& f : sc.flows) {
    paths.push_back(
        topo::RoutingTree::shortestPaths(sc.topology, f.dst).pathFrom(f.src));
  }
  return paths;
}

TEST(Configs, ProtocolQueueingMatchesPaperSection72) {
  const auto dcf = config80211();
  EXPECT_EQ(dcf.discipline, net::QueueDiscipline::kSharedFifo);
  EXPECT_FALSE(dcf.congestionAvoidance);
  EXPECT_EQ(dcf.sharedBufferCapacity, 300);

  const auto tpp = config2pp();
  EXPECT_EQ(tpp.discipline, net::QueueDiscipline::kPerFlow);
  EXPECT_FALSE(tpp.congestionAvoidance);
  EXPECT_EQ(tpp.queueCapacity, 10);

  const auto gmp = configGmp();
  EXPECT_EQ(gmp.discipline, net::QueueDiscipline::kPerDestination);
  EXPECT_TRUE(gmp.congestionAvoidance);
  EXPECT_EQ(gmp.queueCapacity, 10);
}

TEST(NominalCapacity, MatchesTimingArithmetic) {
  const mac::MacParams p;
  const double cap = nominalLinkCapacityPps(p, DataSize::bytes(1024));
  // DIFS 50 + mean backoff 15*20=310 + exchange (176+152+862+152+30).
  const double perPacketUs = 50 + 300 + 1372;  // cwMin/2 = 15 slots
  EXPECT_NEAR(cap, 1e6 / perPacketUs, 1.0);
  EXPECT_GT(cap, 500.0);
  EXPECT_LT(cap, 700.0);
}

TEST(TwoPhase, Fig3BasicShareIsConservativeEqualSplit) {
  const auto sc = scenarios::fig3();
  const TwoPhaseAllocator alloc{sc.topology, sc.flows, pathsFor(sc), 580.0};
  const auto a = alloc.allocate();
  // One clique, 6 traversals, conservatism 0.5: basic = 580/6/2.
  for (const auto& f : sc.flows) {
    EXPECT_NEAR(a.basicSharePps.at(f.id), 580.0 / 12, 1e-6);
  }
}

TEST(TwoPhase, Fig3RemainderGoesToShortestFlow) {
  const auto sc = scenarios::fig3();
  const TwoPhaseAllocator alloc{sc.topology, sc.flows, pathsFor(sc), 580.0};
  const auto a = alloc.allocate();
  // <2,3> (1 hop) absorbs the entire residual.
  EXPECT_GT(a.totalPps.at(2), 4.0 * a.totalPps.at(0));
  EXPECT_NEAR(a.totalPps.at(0), a.basicSharePps.at(0), 1e-6);
  EXPECT_NEAR(a.totalPps.at(1), a.basicSharePps.at(1), 1e-6);
}

TEST(TwoPhase, Fig4BiasesSideOneHopFlows) {
  // The paper's Table 4 pathology: remaining bandwidth heavily biased
  // toward f2 and f8 (ids 1 and 7), basic shares small for everyone else.
  const auto sc = scenarios::fig4();
  const TwoPhaseAllocator alloc{sc.topology, sc.flows, pathsFor(sc), 580.0};
  const auto a = alloc.allocate();
  EXPECT_GT(a.totalPps.at(1), 3.0 * a.totalPps.at(0));
  EXPECT_GT(a.totalPps.at(7), 3.0 * a.totalPps.at(6));
  EXPECT_NEAR(a.totalPps.at(1), a.totalPps.at(7), 1e-6);  // symmetric
  // The other six flows sit at their basic shares.
  for (net::FlowId id : {0, 2, 3, 4, 5, 6}) {
    if (id == 1 || id == 7) continue;
    EXPECT_NEAR(a.totalPps.at(id), a.basicSharePps.at(id), 1e-6)
        << "flow " << id;
  }
}

TEST(TwoPhase, AllocationIsCliqueFeasible) {
  for (const auto& sc :
       {scenarios::fig3(), scenarios::fig4(), scenarios::fig2()}) {
    const TwoPhaseAllocator alloc{sc.topology, sc.flows, pathsFor(sc), 580.0};
    const auto a = alloc.allocate();
    const auto model =
        analysis::buildCliqueModel(sc.topology, sc.flows, 580.0);
    EXPECT_TRUE(analysis::isFeasible(model, a.totalPps, 1e-6)) << sc.name;
  }
}

TEST(TwoPhase, RespectsDesiredRates) {
  auto sc = scenarios::fig3();
  for (auto& f : sc.flows) f.desiredRate = PacketRate::perSecond(30.0);
  const TwoPhaseAllocator alloc{sc.topology, sc.flows, pathsFor(sc), 580.0};
  const auto a = alloc.allocate();
  for (const auto& f : sc.flows) {
    EXPECT_LE(a.totalPps.at(f.id), 30.0 + 1e-9);
  }
}

TEST(TwoPhase, BasicShareNeverExceedsTotal) {
  for (int seed = 1; seed <= 8; ++seed) {
    const auto sc = scenarios::randomMesh(
        static_cast<std::uint64_t>(seed) * 13 + 3, 10, 900.0, 4);
    const TwoPhaseAllocator alloc{sc.topology, sc.flows, pathsFor(sc), 580.0};
    const auto a = alloc.allocate();
    for (const auto& f : sc.flows) {
      EXPECT_LE(a.basicSharePps.at(f.id), a.totalPps.at(f.id) + 1e-9);
      EXPECT_GT(a.basicSharePps.at(f.id), 0.0);
    }
  }
}

TEST(TwoPhase, RejectsBadConservatism) {
  const auto sc = scenarios::fig3();
  EXPECT_THROW((TwoPhaseAllocator{sc.topology, sc.flows, pathsFor(sc), 580.0,
                                  0.0}),
               InvariantViolation);
  EXPECT_THROW((TwoPhaseAllocator{sc.topology, sc.flows, pathsFor(sc), 580.0,
                                  1.5}),
               InvariantViolation);
}

}  // namespace
}  // namespace maxmin::baselines
