#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <span>

#include "topology/cliques.hpp"
#include "topology/conflict_graph.hpp"
#include "topology/dominating_set.hpp"
#include "topology/routing.hpp"
#include "topology/spatial_grid.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace maxmin::topo {
namespace {

Topology chain(int n, double spacing, RadioRanges ranges = {}) {
  std::vector<Point> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({spacing * i, 0.0});
  }
  return Topology::fromPositions(std::move(pts), ranges);
}

std::vector<NodeId> toVec(std::span<const NodeId> row) {
  return {row.begin(), row.end()};
}

TEST(Topology, NeighborRelationIsSymmetricAndRangeBased) {
  const Topology t = chain(4, 200.0);
  EXPECT_TRUE(t.areNeighbors(0, 1));
  EXPECT_TRUE(t.areNeighbors(1, 0));
  EXPECT_FALSE(t.areNeighbors(0, 2));  // 400 m > 250 m
  EXPECT_FALSE(t.areNeighbors(2, 2));
  EXPECT_EQ(toVec(t.neighbors(1)), (std::vector<NodeId>{0, 2}));
}

TEST(Topology, CarrierSenseRangeExceedsTxRange) {
  const Topology t = chain(4, 200.0);
  EXPECT_TRUE(t.inCsRange(0, 2));   // 400 <= 550
  EXPECT_FALSE(t.inCsRange(0, 3));  // 600 > 550
}

TEST(Topology, TwoHopNeighborhood) {
  const Topology t = chain(6, 200.0);
  EXPECT_EQ(t.twoHopNeighborhood(0), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(t.twoHopNeighborhood(2), (std::vector<NodeId>{0, 1, 3, 4}));
}

TEST(Topology, RejectsCsSmallerThanTx) {
  EXPECT_THROW(
      Topology::fromPositions({{0, 0}, {1, 1}}, RadioRanges{250.0, 100.0}),
      InvariantViolation);
}

TEST(ConflictGraph, SharedEndpointAlwaysConflicts) {
  const Topology t = chain(5, 200.0);
  EXPECT_TRUE(ConflictGraph::linksConflict(t, Link{0, 1}, Link{1, 2}));
  EXPECT_TRUE(ConflictGraph::linksConflict(t, Link{0, 1}, Link{2, 1}));
}

TEST(ConflictGraph, CsRangeEndpointConflicts) {
  const Topology t = chain(6, 200.0);
  // (0,1) vs (2,3): endpoint 1 and 2 are 200 m apart -> conflict.
  EXPECT_TRUE(ConflictGraph::linksConflict(t, Link{0, 1}, Link{2, 3}));
  // (0,1) vs (4,5): closest endpoints 1 and 4 are 600 m apart -> no conflict.
  EXPECT_FALSE(ConflictGraph::linksConflict(t, Link{0, 1}, Link{4, 5}));
}

TEST(ConflictGraph, AdjacencyMatchesPairwisePredicate) {
  const Topology t = chain(6, 200.0);
  const std::vector<Link> links{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  const ConflictGraph g{t, links};
  for (int a = 0; a < g.numLinks(); ++a) {
    for (int b = 0; b < g.numLinks(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(g.conflicts(a, b),
                ConflictGraph::linksConflict(
                    t, g.links()[static_cast<std::size_t>(a)],
                    g.links()[static_cast<std::size_t>(b)]));
    }
  }
}

TEST(ConflictGraph, RejectsNonNeighborLink) {
  const Topology t = chain(3, 200.0);
  EXPECT_THROW((ConflictGraph{t, {Link{0, 2}}}), InvariantViolation);
}

TEST(ConflictGraph, RejectsDuplicateLinks) {
  const Topology t = chain(3, 200.0);
  EXPECT_THROW((ConflictGraph{t, {Link{0, 1}, Link{0, 1}}}),
               InvariantViolation);
}

TEST(ConflictGraph, IndexOfFindsSortedLinks) {
  const Topology t = chain(4, 200.0);
  const ConflictGraph g{t, {Link{2, 3}, Link{0, 1}}};
  EXPECT_EQ(g.indexOf(Link{0, 1}), 0);
  EXPECT_EQ(g.indexOf(Link{2, 3}), 1);
  EXPECT_EQ(g.indexOf(Link{1, 2}), -1);
}

// --- cliques ---------------------------------------------------------------

bool isClique(const ConflictGraph& g, const std::vector<int>& members) {
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (!g.conflicts(members[i], members[j])) return false;
    }
  }
  return true;
}

bool isMaximal(const ConflictGraph& g, const std::vector<int>& members) {
  for (int v = 0; v < g.numLinks(); ++v) {
    if (std::find(members.begin(), members.end(), v) != members.end())
      continue;
    bool extends = true;
    for (int m : members) {
      if (!g.conflicts(v, m)) {
        extends = false;
        break;
      }
    }
    if (extends) return false;
  }
  return true;
}

TEST(Cliques, ChainOfFiveLinks) {
  const Topology t = chain(6, 200.0);
  const std::vector<Link> links{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  const ConflictGraph g{t, links};
  const auto cliques = enumerateMaximalCliques(g);
  for (const Clique& c : cliques) {
    EXPECT_TRUE(isClique(g, c.linkIndices));
    EXPECT_TRUE(isMaximal(g, c.linkIndices));
  }
  // Every link covered.
  std::set<int> covered;
  for (const Clique& c : cliques)
    covered.insert(c.linkIndices.begin(), c.linkIndices.end());
  EXPECT_EQ(covered.size(), links.size());
}

TEST(Cliques, IsolatedLinkFormsSingletonClique) {
  // Two far-apart pairs.
  const Topology t = Topology::fromPositions(
      {{0, 0}, {200, 0}, {5000, 0}, {5200, 0}});
  const ConflictGraph g{t, {Link{0, 1}, Link{2, 3}}};
  const auto cliques = enumerateMaximalCliques(g);
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0].linkIndices.size(), 1u);
  EXPECT_EQ(cliques[1].linkIndices.size(), 1u);
}

TEST(Cliques, IdsAreUniqueAndOwnedBySmallestNode) {
  const Topology t = chain(6, 200.0);
  const ConflictGraph g{t, {Link{0, 1}, Link{1, 2}, Link{2, 3}, Link{3, 4},
                            Link{4, 5}}};
  const auto cliques = enumerateMaximalCliques(g);
  std::set<std::pair<NodeId, int>> ids;
  for (const Clique& c : cliques) {
    ids.insert({c.id.owner, c.id.sequence});
    NodeId smallest = kNoNode;
    for (int idx : c.linkIndices) {
      const Link& l = g.links()[static_cast<std::size_t>(idx)];
      const NodeId lo = std::min(l.from, l.to);
      if (smallest == kNoNode || lo < smallest) smallest = lo;
    }
    EXPECT_EQ(c.id.owner, smallest);
  }
  EXPECT_EQ(ids.size(), cliques.size());
}

TEST(Cliques, ByLinkIndexIsConsistent) {
  const Topology t = chain(6, 200.0);
  const ConflictGraph g{t, {Link{0, 1}, Link{1, 2}, Link{2, 3}, Link{3, 4},
                            Link{4, 5}}};
  const auto cliques = enumerateMaximalCliques(g);
  const auto byLink = cliquesByLink(g, cliques);
  ASSERT_EQ(byLink.size(), static_cast<std::size_t>(g.numLinks()));
  for (int l = 0; l < g.numLinks(); ++l) {
    EXPECT_FALSE(byLink[static_cast<std::size_t>(l)].empty());
    for (int c : byLink[static_cast<std::size_t>(l)]) {
      const auto& m = cliques[static_cast<std::size_t>(c)].linkIndices;
      EXPECT_TRUE(std::find(m.begin(), m.end(), l) != m.end());
    }
  }
}

// Property test: on random geometric topologies every enumerated clique is
// a maximal clique, and a brute-force check finds no maximal clique the
// enumeration missed (small instances).
class CliquePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CliquePropertyTest, MatchesBruteForceOnRandomTopologies) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::vector<Point> pts;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniformReal(0, 900), rng.uniformReal(0, 900)});
  }
  const Topology t = Topology::fromPositions(pts);
  std::vector<Link> links;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b : t.neighbors(a)) {
      if (a < b) links.push_back(Link{a, b});
    }
  }
  if (links.empty()) return;
  const ConflictGraph g{t, links};
  const auto cliques = enumerateMaximalCliques(g);

  for (const Clique& c : cliques) {
    EXPECT_TRUE(isClique(g, c.linkIndices));
    EXPECT_TRUE(isMaximal(g, c.linkIndices));
  }

  // Brute force over all subsets (numLinks is small for n=8).
  if (g.numLinks() <= 16) {
    std::set<std::vector<int>> enumerated;
    for (const Clique& c : cliques) enumerated.insert(c.linkIndices);
    const int m = g.numLinks();
    for (int mask = 1; mask < (1 << m); ++mask) {
      std::vector<int> members;
      for (int v = 0; v < m; ++v) {
        if (mask & (1 << v)) members.push_back(v);
      }
      if (isClique(g, members) && isMaximal(g, members)) {
        EXPECT_TRUE(enumerated.contains(members))
            << "brute force found a maximal clique the enumeration missed";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliquePropertyTest,
                         ::testing::Range(1, 21));

// --- dominating sets ---------------------------------------------------------

class DominatingSetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DominatingSetPropertyTest, CoversTwoHopNeighborhood) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 977 + 5};
  std::vector<Point> pts;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniformReal(0, 700), rng.uniformReal(0, 700)});
  }
  const Topology t = Topology::fromPositions(pts);
  for (NodeId center = 0; center < n; ++center) {
    const auto relays = computeDominatingSet(t, center);
    // All relays are one-hop neighbors.
    const auto& oneHop = t.neighbors(center);
    for (NodeId r : relays) {
      EXPECT_TRUE(std::binary_search(oneHop.begin(), oneHop.end(), r));
    }
    // Coverage: relayed broadcast reaches the whole 2-hop neighborhood.
    const auto covered = relayCoverage(t, center, relays);
    const auto target = t.twoHopNeighborhood(center);
    EXPECT_TRUE(std::includes(covered.begin(), covered.end(), target.begin(),
                              target.end()))
        << "dominating set of node " << center << " misses 2-hop neighbors";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominatingSetPropertyTest,
                         ::testing::Range(1, 16));

TEST(DominatingSet, ChainPicksSingleRelayPerSide) {
  const Topology t = chain(5, 200.0);
  // Node 2's two-hop neighbors {0,4} are covered via relays {1,3}.
  EXPECT_EQ(computeDominatingSet(t, 2), (std::vector<NodeId>{1, 3}));
  // Node 0: two-hop neighbor {2} via relay {1}.
  EXPECT_EQ(computeDominatingSet(t, 0), (std::vector<NodeId>{1}));
}

// --- routing -----------------------------------------------------------------

TEST(Routing, ChainPaths) {
  const Topology t = chain(4, 200.0);
  const RoutingTree r = RoutingTree::shortestPaths(t, 3);
  EXPECT_EQ(r.nextHop(0), 1);
  EXPECT_EQ(r.nextHop(1), 2);
  EXPECT_EQ(r.nextHop(2), 3);
  EXPECT_EQ(r.nextHop(3), kNoNode);
  EXPECT_EQ(r.pathFrom(0), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(r.hopCount(0), 3);
  EXPECT_EQ(r.hopCount(3), 0);
  EXPECT_TRUE(r.reaches(3));
}

TEST(Routing, UnreachableNodes) {
  const Topology t = Topology::fromPositions({{0, 0}, {200, 0}, {5000, 0}});
  const RoutingTree r = RoutingTree::shortestPaths(t, 0);
  EXPECT_TRUE(r.reaches(1));
  EXPECT_FALSE(r.reaches(2));
  EXPECT_EQ(r.hopCount(2), -1);
  EXPECT_TRUE(r.pathFrom(2).empty());
}

TEST(Routing, ShortestPathLengthOnGrid) {
  // 3x3 grid with 200 m spacing: diagonal corner is 4 hops away.
  std::vector<Point> pts;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) pts.push_back({x * 200.0, y * 200.0});
  }
  const Topology t = Topology::fromPositions(pts);
  const RoutingTree r = RoutingTree::shortestPaths(t, 8);
  EXPECT_EQ(r.hopCount(0), 4);
  EXPECT_EQ(r.hopCount(4), 2);
}

class RoutingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RoutingPropertyTest, TreesAreAcyclicAndShortest) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 31 + 7};
  std::vector<Point> pts;
  const int n = 15;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniformReal(0, 800), rng.uniformReal(0, 800)});
  }
  const Topology t = Topology::fromPositions(pts);
  for (NodeId dest = 0; dest < n; ++dest) {
    const RoutingTree r = RoutingTree::shortestPaths(t, dest);
    for (NodeId from = 0; from < n; ++from) {
      if (!r.reaches(from)) continue;
      const auto path = r.pathFrom(from);  // throws on loops
      // Hop count decreases by exactly one along the path (shortest).
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_EQ(r.hopCount(path[i]), r.hopCount(path[i + 1]) + 1);
        EXPECT_TRUE(t.areNeighbors(path[i], path[i + 1]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingPropertyTest, ::testing::Range(1, 11));

// The packed adjacency matrices are the frame pipeline's only view of the
// radio graph, so every bit must agree with the geometric predicates the
// old per-call sqrt path computed: 50 random meshes, all ordered pairs.
TEST(AdjacencyMatrix, MatchesDistancePredicatesOnRandomMeshes) {
  Rng rng{2024};
  for (int mesh = 0; mesh < 50; ++mesh) {
    const int n = static_cast<int>(rng.uniformInt(2, 40));
    std::vector<Point> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.uniformReal(0, 1500), rng.uniformReal(0, 1500)});
    }
    const Topology t = Topology::fromPositions(std::move(pts));
    const AdjacencyMatrix& tx = t.txAdjacency();
    const AdjacencyMatrix& cs = t.csAdjacency();
    ASSERT_EQ(tx.numNodes(), n);
    ASSERT_EQ(cs.numNodes(), n);
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        const bool expectTx =
            a != b && t.distanceBetween(a, b) <= t.ranges().txRange;
        const bool expectCs =
            a != b && t.distanceBetween(a, b) <= t.ranges().csRange;
        ASSERT_EQ(tx.test(a, b), expectTx)
            << "mesh " << mesh << " tx pair " << a << "," << b;
        ASSERT_EQ(cs.test(a, b), expectCs)
            << "mesh " << mesh << " cs pair " << a << "," << b;
        ASSERT_EQ(t.areNeighbors(a, b), expectTx);
        ASSERT_EQ(t.inCsRange(a, b), expectCs);
      }
    }
  }
}

TEST(AdjacencyMatrix, RowIterationAscendingAndDegreeConsistent) {
  Rng rng{7};
  std::vector<Point> pts;
  for (int i = 0; i < 70; ++i) {  // > 64 nodes: exercises multi-word rows
    pts.push_back({rng.uniformReal(0, 1200), rng.uniformReal(0, 1200)});
  }
  const Topology t = Topology::fromPositions(std::move(pts));
  const AdjacencyMatrix& tx = t.txAdjacency();
  EXPECT_EQ(tx.wordsPerRow(), 2u);
  for (NodeId a = 0; a < t.numNodes(); ++a) {
    std::vector<NodeId> fromBits;
    tx.forEachInRow(a, [&fromBits](NodeId b) { fromBits.push_back(b); });
    EXPECT_EQ(fromBits, toVec(t.neighbors(a)));  // ascending by construction
    EXPECT_EQ(tx.rowDegree(a), static_cast<int>(t.neighbors(a).size()));
  }
}

// twoHopNeighborhood is memoized (lazily, on first touch): repeated calls
// return the same object (no recompute, no allocation) with ascending
// contents.
TEST(Topology, TwoHopNeighborhoodIsMemoized) {
  const Topology t = chain(6, 200.0);
  const std::vector<NodeId>& first = t.twoHopNeighborhood(2);
  const std::vector<NodeId>& second = t.twoHopNeighborhood(2);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first, (std::vector<NodeId>{0, 1, 3, 4}));
}

// --- spatial grid ------------------------------------------------------------

// The grid-bucketed construction must reproduce the brute-force O(n^2)
// predicate exactly: same membership (including dSq <= rangeSq boundary
// ties at exactly txRange/csRange) and same ascending row order. Each
// random layout is salted with hostile geometry: co-located nodes, a
// pair at exactly txRange, a pair at exactly csRange, and nodes pinned
// to cell-boundary coordinates (multiples of csRange).
class SpatialGridPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SpatialGridPropertyTest, MatchesBruteForceRelations) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919 + 13};
  const RadioRanges ranges{};
  for (int mesh = 0; mesh < 8; ++mesh) {
    const int base = static_cast<int>(rng.uniformInt(2, 60));
    std::vector<Point> pts;
    for (int i = 0; i < base; ++i) {
      pts.push_back({rng.uniformReal(0, 2500), rng.uniformReal(0, 2500)});
    }
    // Hostile geometry. Integer coordinates make the boundary distances
    // exact in double arithmetic, so these pairs sit precisely on the
    // dSq <= rangeSq tie.
    pts.push_back(pts[0]);                                  // co-located
    pts.push_back({pts[1].x + ranges.txRange, pts[1].y});   // exactly tx
    pts.push_back({pts[2].x, pts[2].y + ranges.csRange});   // exactly cs
    pts.push_back({ranges.csRange, ranges.csRange});        // cell corner
    pts.push_back({2 * ranges.csRange, 0.0});               // cell edge
    const int n = static_cast<int>(pts.size());

    const Topology t = Topology::fromPositions(pts, ranges);
    const double txSq = ranges.txRange * ranges.txRange;
    const double csSq = ranges.csRange * ranges.csRange;
    for (NodeId a = 0; a < n; ++a) {
      std::vector<NodeId> bruteTx;
      std::vector<NodeId> bruteCs;
      for (NodeId b = 0; b < n; ++b) {
        if (a == b) continue;
        const double dSq = distanceSquared(pts[static_cast<std::size_t>(a)],
                                           pts[static_cast<std::size_t>(b)]);
        if (dSq <= txSq) bruteTx.push_back(b);
        if (dSq <= csSq) bruteCs.push_back(b);
      }
      ASSERT_EQ(toVec(t.neighbors(a)), bruteTx) << "tx row of " << a;
      ASSERT_EQ(toVec(t.csNeighbors(a)), bruteCs) << "cs row of " << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialGridPropertyTest,
                         ::testing::Range(1, 13));

TEST(SpatialGrid, CandidateBlockCoversQueryRadius) {
  // Every node within cellSide of a query point must be visited by
  // forEachCandidate (the 3x3 block invariant the construction relies
  // on), including nodes in far-apart cells that must not be visited.
  Rng rng{71};
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniformReal(0, 5000), rng.uniformReal(0, 5000)});
  }
  const double side = 550.0;
  const SpatialGrid grid{pts, side};
  for (int q = 0; q < 200; ++q) {
    const Point p = pts[static_cast<std::size_t>(q)];
    std::set<NodeId> visited;
    grid.forEachCandidate(p.x, p.y, [&](NodeId b) { visited.insert(b); });
    for (NodeId b = 0; b < 200; ++b) {
      if (distanceSquared(p, pts[static_cast<std::size_t>(b)]) <=
          side * side) {
        EXPECT_TRUE(visited.contains(b))
            << "node " << b << " within cellSide of " << q << " not visited";
      }
    }
  }
}

TEST(SpatialGrid, CoarsensCellsWhenPositionsAreSpreadOut) {
  // Two nodes a million meters apart with a 550 m cell side would naively
  // need ~3.3M cells; the grid coarsens until the cell table is O(n).
  const SpatialGrid grid{{{0.0, 0.0}, {1e6, 1e6}}, 550.0};
  EXPECT_LE(static_cast<long long>(grid.cellsX()) * grid.cellsY(), 9);
}

// --- sparse (CSR-only) mode --------------------------------------------------

// Above the dense threshold no n^2-bit matrices exist; predicates fall
// back to binary searches of the CSR rows and must agree bit-for-bit
// with the dense build of the same layout.
TEST(Topology, SparseModeMatchesDenseRelations) {
  Rng rng{2025};
  std::vector<Point> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniformReal(0, 1500), rng.uniformReal(0, 1500)});
  }
  const Topology dense = Topology::fromPositions(pts);
  const Topology sparse =
      Topology::fromPositions(pts, RadioRanges{}, TopologyOptions{0});
  ASSERT_TRUE(dense.hasDenseAdjacency());
  ASSERT_FALSE(sparse.hasDenseAdjacency());
  EXPECT_THROW(static_cast<void>(sparse.txAdjacency()), InvariantViolation);
  EXPECT_THROW(static_cast<void>(sparse.csAdjacency()), InvariantViolation);
  for (NodeId a = 0; a < dense.numNodes(); ++a) {
    EXPECT_EQ(toVec(dense.neighbors(a)), toVec(sparse.neighbors(a)));
    EXPECT_EQ(toVec(dense.csNeighbors(a)), toVec(sparse.csNeighbors(a)));
    EXPECT_EQ(dense.twoHopNeighborhood(a), sparse.twoHopNeighborhood(a));
    for (NodeId b = 0; b < dense.numNodes(); ++b) {
      ASSERT_EQ(dense.areNeighbors(a, b), sparse.areNeighbors(a, b));
      ASSERT_EQ(dense.inCsRange(a, b), sparse.inCsRange(a, b));
    }
  }
}

TEST(Topology, SparseModeMemoryIsEdgeBound) {
  // The footprint must track nodes + edges, not n^2 bits: at N = 3000
  // (above the default threshold) two dense relations alone would cost
  // 2 * 3000^2 / 8 = 2.25 MB; the CSR build must stay well under that.
  Rng rng{4242};
  std::vector<Point> pts;
  const int n = 3000;
  // Area sized for ~12 tx-degree (the denseMesh recipe): degree =
  // n * pi * txRange^2 / side^2.
  const double txRange = RadioRanges{}.txRange;
  const double side =
      std::sqrt(n * 3.14159265358979 * txRange * txRange / 12.0);
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniformReal(0, side), rng.uniformReal(0, side)});
  }
  const Topology t = Topology::fromPositions(std::move(pts));
  ASSERT_FALSE(t.hasDenseAdjacency());
  const std::size_t denseBits = 2ull * n * ((n + 63) / 64) * 8;
  EXPECT_LT(t.memoryFootprintBytes(), denseBits);
  // And the CSR arrays really hold both relations.
  EXPECT_GT(t.numEdges(), 0);
}

}  // namespace
}  // namespace maxmin::topo
