#include <gtest/gtest.h>

#include "gmp/engine.hpp"
#include "scenarios/scenarios.hpp"
#include "topology/conflict_graph.hpp"
#include "topology/routing.hpp"

namespace maxmin::scenarios {
namespace {

TEST(Fig2, GeometryRealizesThePaperCliques) {
  const auto sc = fig2();
  const auto& t = sc.topology;
  // Chain adjacency.
  EXPECT_TRUE(t.areNeighbors(0, 1));
  EXPECT_TRUE(t.areNeighbors(1, 2));
  EXPECT_TRUE(t.areNeighbors(3, 4));
  EXPECT_TRUE(t.areNeighbors(4, 5));
  EXPECT_FALSE(t.areNeighbors(2, 3));
  // Contention relations stated in §7.1.
  using topo::ConflictGraph;
  using topo::Link;
  EXPECT_TRUE(ConflictGraph::linksConflict(t, Link{0, 1}, Link{1, 2}));
  EXPECT_TRUE(ConflictGraph::linksConflict(t, Link{1, 2}, Link{3, 4}));
  EXPECT_TRUE(ConflictGraph::linksConflict(t, Link{1, 2}, Link{4, 5}));
  EXPECT_TRUE(ConflictGraph::linksConflict(t, Link{3, 4}, Link{4, 5}));
  EXPECT_FALSE(ConflictGraph::linksConflict(t, Link{0, 1}, Link{3, 4}));
  EXPECT_FALSE(ConflictGraph::linksConflict(t, Link{0, 1}, Link{4, 5}));
}

TEST(Fig2, FlowsAreTheSingleHopPaperFlows) {
  const auto sc = fig2({1, 2, 1, 3});
  ASSERT_EQ(sc.flows.size(), 4u);
  EXPECT_EQ(sc.flows[0].src, 0);
  EXPECT_EQ(sc.flows[0].dst, 1);
  EXPECT_EQ(sc.flows[1].src, 1);
  EXPECT_EQ(sc.flows[1].dst, 2);
  EXPECT_EQ(sc.flows[1].weight, 2.0);
  EXPECT_EQ(sc.flows[3].weight, 3.0);
  for (const auto& f : sc.flows) {
    EXPECT_DOUBLE_EQ(f.desiredRate.asPerSecond(), 800.0);
  }
}

TEST(Fig3, ChainWithThreeFlowsToCommonSink) {
  const auto sc = fig3();
  ASSERT_EQ(sc.flows.size(), 3u);
  for (const auto& f : sc.flows) EXPECT_EQ(f.dst, 3);
  const auto tree = topo::RoutingTree::shortestPaths(sc.topology, 3);
  EXPECT_EQ(tree.hopCount(0), 3);
  EXPECT_EQ(tree.hopCount(1), 2);
  EXPECT_EQ(tree.hopCount(2), 1);
}

TEST(Fig4, AdjacentChainsContendChainsTwoApartDoNot) {
  const auto sc = fig4();
  using topo::ConflictGraph;
  using topo::Link;
  const auto& t = sc.topology;
  // Chain 0 link vs chain 1 link: contend.
  EXPECT_TRUE(ConflictGraph::linksConflict(t, Link{0, 1}, Link{3, 4}));
  // Chain 0 vs chain 2: independent.
  EXPECT_FALSE(ConflictGraph::linksConflict(t, Link{0, 1}, Link{6, 7}));
  EXPECT_FALSE(ConflictGraph::linksConflict(t, Link{1, 2}, Link{7, 8}));
}

TEST(Fig4, HopCountsRecoverThePaperEffectiveThroughput) {
  // The paper's U values pin down the hop pattern: odd flows 2 hops,
  // even flows 1 hop (see DESIGN.md E4).
  const auto sc = fig4();
  ASSERT_EQ(sc.flows.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& f = sc.flows[i];
    const auto tree = topo::RoutingTree::shortestPaths(sc.topology, f.dst);
    EXPECT_EQ(tree.hopCount(f.src), i % 2 == 0 ? 2 : 1) << "flow " << i;
  }
  // Check the paper's published rates against those hop counts.
  const double rates80211[] = {221.81, 221.81, 107.29, 107.28,
                               106.36, 106.36, 223.39, 223.39};
  double u = 0;
  for (std::size_t i = 0; i < 8; ++i) u += rates80211[i] * (i % 2 == 0 ? 2 : 1);
  EXPECT_NEAR(u, 1976.54, 0.05);
}

TEST(Fig1, FlowsSharePathsAsInThePaperFigure) {
  const auto sc = fig1();
  const auto& t = sc.topology;
  // f1 and f2 share relay nodes i (2) and j (3).
  const auto p1 =
      topo::RoutingTree::shortestPaths(t, sc.flows[0].dst).pathFrom(0);
  const auto p2 =
      topo::RoutingTree::shortestPaths(t, sc.flows[1].dst).pathFrom(1);
  EXPECT_EQ(p1, (std::vector<topo::NodeId>{0, 2, 3, 4, 5}));
  EXPECT_EQ(p2, (std::vector<topo::NodeId>{1, 2, 3, 6}));
  // f1's path is longer than f2's, and its links mutually contend, so
  // (z,t) backpressures the whole f1 path.
  using topo::ConflictGraph;
  using topo::Link;
  EXPECT_TRUE(ConflictGraph::linksConflict(t, Link{2, 3}, Link{4, 5}));
  EXPECT_TRUE(ConflictGraph::linksConflict(t, Link{3, 4}, Link{4, 5}));
  // x and y are symmetric w.r.t. node i (fair competition premise).
  EXPECT_NEAR(t.distanceBetween(0, 2), t.distanceBetween(1, 2), 1e-9);
}

TEST(Chain, BuildsRequestedLength) {
  const auto sc = chain(5);
  EXPECT_EQ(sc.topology.numNodes(), 5);
  ASSERT_EQ(sc.flows.size(), 1u);
  EXPECT_EQ(sc.flows[0].src, 0);
  EXPECT_EQ(sc.flows[0].dst, 4);
}

class RandomMeshTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomMeshTest, FlowsAreRoutableAndDistinct) {
  const auto sc = randomMesh(static_cast<std::uint64_t>(GetParam()), 12,
                             1000.0, 5);
  EXPECT_EQ(sc.flows.size(), 5u);
  std::set<std::pair<topo::NodeId, topo::NodeId>> pairs;
  for (const auto& f : sc.flows) {
    const auto tree = topo::RoutingTree::shortestPaths(sc.topology, f.dst);
    EXPECT_TRUE(tree.reaches(f.src));
    EXPECT_TRUE(pairs.insert({f.src, f.dst}).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMeshTest, ::testing::Range(1, 11));

// Fixed-seed meshes are part of the repo's reproducibility contract:
// these flow lists were captured before the sampling-loop rework
// (tree caching + distinct-pair guard) and must never drift.
TEST(RandomMesh, FixedSeedFlowListsAreStable) {
  using Pair = std::pair<topo::NodeId, topo::NodeId>;
  const auto pairsOf = [](const Scenario& sc) {
    std::vector<Pair> out;
    for (const auto& f : sc.flows) out.push_back({f.src, f.dst});
    return out;
  };
  EXPECT_EQ(pairsOf(randomMesh(3, 12, meshSideForDegree(12, 5.0), 5)),
            (std::vector<Pair>{{9, 3}, {0, 7}, {7, 10}, {11, 7}, {9, 11}}));
  EXPECT_EQ(pairsOf(randomMesh(99, 50, meshSideForDegree(50, 5.0), 2)),
            (std::vector<Pair>{{27, 6}, {32, 49}}));
  EXPECT_EQ(pairsOf(denseMesh(7, 50, 2)),
            (std::vector<Pair>{{2, 0}, {41, 29}}));
  EXPECT_EQ(pairsOf(denseMesh(5, 60, 8)),
            (std::vector<Pair>{{26, 5}, {28, 19}, {52, 23}, {8, 2},
                               {32, 47}, {18, 56}, {11, 4}, {23, 29}}));
}

TEST(RandomMesh, CanExhaustAllOrderedPairsOfASmallMesh) {
  // 6 nodes have only 30 ordered pairs; asking for all 30 forces the
  // sampler deep into the long tail where almost every draw is a
  // duplicate. Under the old guard (every draw burned budget) this
  // took ~n^2 draws per remaining pair and spuriously exhausted the
  // 1000-iteration cap; counting only distinct candidates makes it
  // deterministic. Sampled with a connected layout (300 m square,
  // 250 m tx range keeps everything reachable).
  const auto sc = randomMesh(11, 6, 300.0, 12);
  ASSERT_EQ(sc.flows.size(), 12u);
  std::set<std::pair<topo::NodeId, topo::NodeId>> pairs;
  for (const auto& f : sc.flows) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_TRUE(pairs.insert({f.src, f.dst}).second);
  }
}

TEST(RandomMesh, ThrowsWhenMoreFlowsThanDistinctPairsExist) {
  // 2 nodes admit 2 ordered pairs; 5 flows can never be satisfied. The
  // distinct-pair guard caps the budget at n(n-1) so this fails fast
  // instead of spinning through the full 1000-draw budget per attempt.
  EXPECT_THROW(randomMesh(1, 2, 100.0, 5), InvariantViolation);
}

TEST(DenseMesh, ConstantDensityHitsTargetDegree) {
  // meshSideForDegree sizes the square for an average tx degree of ~12
  // regardless of node count; sampled meshes should land near it.
  for (const int nodes : {50, 200}) {
    const auto sc = denseMesh(7, nodes, 2);
    EXPECT_EQ(sc.topology.numNodes(), nodes);
    EXPECT_EQ(sc.flows.size(), 2u);
    std::int64_t degreeSum = 0;
    for (topo::NodeId n = 0; n < sc.topology.numNodes(); ++n) {
      degreeSum += static_cast<std::int64_t>(sc.topology.neighbors(n).size());
    }
    const double avgDegree =
        static_cast<double>(degreeSum) / static_cast<double>(nodes);
    EXPECT_GT(avgDegree, 8.0) << "nodes=" << nodes;
    EXPECT_LT(avgDegree, 16.0) << "nodes=" << nodes;
  }
}

}  // namespace
}  // namespace maxmin::scenarios
