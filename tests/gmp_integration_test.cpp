// End-to-end packet-level tests of GMP and the experiment runner: the
// paper's evaluation shapes (§7) as assertions. These run full DES
// sessions and are the slowest tests in the suite (a few seconds each).
#include <gtest/gtest.h>

#include <numeric>

#include "analysis/experiment.hpp"
#include "baselines/configs.hpp"
#include "gmp/controller.hpp"
#include "net/network.hpp"
#include "scenarios/scenarios.hpp"

namespace maxmin {
namespace {

analysis::RunConfig runConfig(analysis::Protocol p, double seconds,
                              double warmup, std::uint64_t seed = 11) {
  analysis::RunConfig cfg;
  cfg.protocol = p;
  cfg.duration = Duration::seconds(seconds);
  cfg.warmup = Duration::seconds(warmup);
  cfg.seed = seed;
  return cfg;
}

TEST(GmpIntegration, Fig3ConvergesToNearEquality) {
  const auto sc = scenarios::fig3();
  const auto r = analysis::runScenario(
      sc, runConfig(analysis::Protocol::kGmp, 400, 240));
  // Paper Table 3 GMP: I_mm 0.919, I_eq 0.999.
  EXPECT_GT(r.summary.imm, 0.8);
  EXPECT_GT(r.summary.ieq, 0.99);
  // Violations decay: the last quarter of periods is mostly quiet.
  const auto& hist = r.violationHistory;
  ASSERT_GE(hist.size(), 40u);
  const int tail = std::accumulate(hist.end() - 10, hist.end(), 0);
  EXPECT_LE(tail, 10);
  EXPECT_EQ(r.queueDrops, 0);  // lossless backpressure
}

TEST(GmpIntegration, Fig3ProtocolOrderingMatchesPaper) {
  const auto sc = scenarios::fig3();
  const auto dcf = analysis::runScenario(
      sc, runConfig(analysis::Protocol::kDcf80211, 200, 100));
  const auto gmp = analysis::runScenario(
      sc, runConfig(analysis::Protocol::kGmp, 400, 240));
  // GMP is far fairer than 802.11 and uses the channel at least as well.
  EXPECT_GT(gmp.summary.imm, dcf.summary.imm + 0.1);
  EXPECT_GT(gmp.summary.effectiveThroughputPps,
            dcf.summary.effectiveThroughputPps);
  // 802.11 drops packets; GMP drops none.
  EXPECT_GT(dcf.queueDrops, 0);
}

TEST(GmpIntegration, Fig2EqualWeightsReproducesTable1Shape) {
  const auto sc = scenarios::fig2();
  const auto r = analysis::runScenario(
      sc, runConfig(analysis::Protocol::kGmp, 400, 260, 7));
  // Paper Table 1: f1 = 564, f2 = 197, f3 = 218, f4 = 221. Shape:
  // f1 well above the clique-1 flows; f2 ~ f3 ~ f4 (f2 the smallest).
  const double f1 = r.rateOf(0);
  const double f2 = r.rateOf(1);
  const double f3 = r.rateOf(2);
  const double f4 = r.rateOf(3);
  EXPECT_GT(f1, 1.5 * f2);
  EXPECT_GT(f1, 1.4 * f3);
  EXPECT_NEAR(f3, f4, 0.25 * f4);
  EXPECT_GT(f2, 0.5 * f3);  // equalized within protocol tolerance
}

TEST(GmpIntegration, Fig2WeightedReproducesTable2Shape) {
  const auto sc = scenarios::fig2({1, 2, 1, 3});
  const auto r = analysis::runScenario(
      sc, runConfig(analysis::Protocol::kGmp, 400, 260, 7));
  // Paper Table 2: rates of f2, f3, f4 approximately proportional to
  // weights 2:1:3, f1 opportunistically high despite weight 1.
  const double mu2 = r.rateOf(1) / 2.0;
  const double mu3 = r.rateOf(2) / 1.0;
  const double mu4 = r.rateOf(3) / 3.0;
  EXPECT_NEAR(mu3, mu4, 0.3 * mu4);
  EXPECT_GT(mu2, 0.5 * mu3);
  EXPECT_LT(mu2, 1.5 * mu3);
  EXPECT_GT(r.rateOf(0), r.rateOf(1));  // f1 beats the heavier f2
}

TEST(GmpIntegration, Fig4ReproducesTable4Shape) {
  const auto sc = scenarios::fig4();
  const auto dcf = analysis::runScenario(
      sc, runConfig(analysis::Protocol::kDcf80211, 160, 60));
  const auto tpp = analysis::runScenario(
      sc, runConfig(analysis::Protocol::kTwoPhase, 160, 60));
  const auto gmp = analysis::runScenario(
      sc, runConfig(analysis::Protocol::kGmp, 400, 240));

  // 802.11: side flows (chains 0 and 3) well above middle flows.
  EXPECT_GT(dcf.rateOf(0), 1.5 * dcf.rateOf(2));
  EXPECT_GT(dcf.rateOf(6), 1.5 * dcf.rateOf(4));

  // 2PP: remaining bandwidth heavily biased toward f2 and f8 (ids 1, 7);
  // fairness collapses below 802.11's (paper: 0.125 vs 0.476).
  EXPECT_GT(tpp.rateOf(1), 2.5 * tpp.rateOf(0));
  EXPECT_GT(tpp.rateOf(7), 2.5 * tpp.rateOf(6));
  EXPECT_LT(tpp.summary.imm, dcf.summary.imm);

  // GMP: all eight flows approximately equal regardless of location and
  // length (paper: I_mm 0.888, I_eq 0.998).
  EXPECT_GT(gmp.summary.imm, 0.7);
  EXPECT_GT(gmp.summary.ieq, 0.97);
  EXPECT_EQ(gmp.queueDrops, 0);
}

TEST(GmpIntegration, Fig1PerDestinationQueueingAtRelays) {
  // The Figure 1 relay-sharing experiment: f2 shares relay nodes i, j
  // with the bottlenecked f1; only the queue discipline changes between
  // runs (both use congestion-avoidance backpressure). Under a 2.2x
  // carrier-sense range f2's path cannot escape f1's contention clique
  // (see EXPERIMENTS.md E5), so the expected observable effects are:
  // per-destination queueing is lossless and lifts f1 (whose backlog no
  // longer competes with f2's inside shared buffers), while the shared
  // discipline overflows.
  const auto sc = scenarios::fig1();

  net::NetworkConfig shared;
  shared.seed = 5;
  shared.discipline = net::QueueDiscipline::kSharedFifo;
  shared.congestionAvoidance = true;
  shared.sharedBufferCapacity = 10;

  net::NetworkConfig perDest = baselines::configGmp({});
  perDest.seed = 5;

  double f1rate[2];
  double f2rate[2];
  std::int64_t drops[2];
  int idx = 0;
  for (const auto& cfg : {shared, perDest}) {
    net::Network net{sc.topology, cfg, sc.flows};
    net.run(Duration::seconds(40.0));
    const auto s0 = net.snapshotDeliveries();
    net.run(Duration::seconds(80.0));
    const auto rates = net::Network::ratesBetween(s0, net.snapshotDeliveries());
    f1rate[idx] = rates.at(0);
    f2rate[idx] = rates.at(1);
    drops[idx] = net.totalQueueDrops();
    ++idx;
  }
  EXPECT_GT(drops[0], 0);
  EXPECT_EQ(drops[1], 0);
  EXPECT_GT(f1rate[1], f1rate[0]);          // per-dest lifts the long flow
  EXPECT_GT(f2rate[1], 0.7 * f2rate[0]);    // without collapsing f2
}

TEST(GmpIntegration, SourceQueueIsolationRealizesFig1cExactly) {
  // The source-queue variant of Figure 1(c): two flows sharing one
  // source node, one congested 3-hop path and one free 1-hop path. With
  // one shared queue the short flow is chained to the long flow's
  // backpressure; with per-destination queues it reaches its desirable
  // rate. This realizes the paper's "f2 sends at its desirable rate of
  // 5" exactly (see EXPERIMENTS.md E5).
  std::vector<topo::Point> pts{{0, 0}, {200, 0}, {400, 0}, {600, 0}};
  auto topo = topo::Topology::fromPositions(pts);
  std::vector<net::FlowSpec> flows(2);
  flows[0].id = 0;
  flows[0].src = 0;
  flows[0].dst = 3;
  flows[0].desiredRate = PacketRate::perSecond(800);
  flows[0].name = "f1";
  flows[1].id = 1;
  flows[1].src = 0;
  flows[1].dst = 1;
  flows[1].desiredRate = PacketRate::perSecond(100);
  flows[1].name = "f2";

  double shortFlow[2];
  for (int mode = 0; mode < 2; ++mode) {
    net::NetworkConfig cfg;
    cfg.seed = 9;
    if (mode == 0) {
      cfg.discipline = net::QueueDiscipline::kSharedFifo;
      cfg.congestionAvoidance = true;
      cfg.sharedBufferCapacity = 10;
    } else {
      cfg = baselines::configGmp({});
      cfg.seed = 9;
    }
    net::Network net{topo, cfg, flows};
    net.run(Duration::seconds(20.0));
    const auto s0 = net.snapshotDeliveries();
    net.run(Duration::seconds(40.0));
    shortFlow[mode] =
        net::Network::ratesBetween(s0, net.snapshotDeliveries()).at(1);
  }
  // Shared: chained far below its desirable rate. Per-destination: full.
  EXPECT_LT(shortFlow[0], 70.0);
  EXPECT_NEAR(shortFlow[1], 100.0, 15.0);
}

TEST(ExperimentRunner, ProtocolsUseTheirQueueDisciplines) {
  const auto sc = scenarios::fig3();
  const auto gmp = analysis::runScenario(
      sc, runConfig(analysis::Protocol::kGmp, 60, 30));
  EXPECT_FALSE(gmp.violationHistory.empty());
  const auto dcf = analysis::runScenario(
      sc, runConfig(analysis::Protocol::kDcf80211, 60, 30));
  EXPECT_TRUE(dcf.violationHistory.empty());
  EXPECT_EQ(dcf.flows.size(), 3u);
  EXPECT_EQ(std::string(analysis::protocolName(analysis::Protocol::kGmp)),
            "GMP");
}

TEST(ExperimentRunner, ResultAccessorsAndHops) {
  const auto sc = scenarios::fig3();
  const auto r = analysis::runScenario(
      sc, runConfig(analysis::Protocol::kTwoPhase, 60, 30));
  EXPECT_EQ(r.flows[0].hops, 3);
  EXPECT_EQ(r.flows[1].hops, 2);
  EXPECT_EQ(r.flows[2].hops, 1);
  EXPECT_THROW(static_cast<void>(r.rateOf(99)), InvariantViolation);
  // U consistency: sum of rate*hops.
  double u = 0;
  for (const auto& f : r.flows) u += f.ratePps * f.hops;
  EXPECT_NEAR(u, r.summary.effectiveThroughputPps, 1e-6);
}

}  // namespace
}  // namespace maxmin
