// Hybrid fluid/packet engine tests (DESIGN.md §16).
//
// Three layers of pinning:
//   * the fluid GMP fixed point against packet steady-state rates on
//     fig4 and a random mesh (the correctness anchor for everything the
//     hybrid engine injects);
//   * the substrate hooks (Dcf::occupyChannel busy windows, phantom
//     background load throttling a real flow, Controller::warmStart
//     seeding the measurement cache);
//   * the end-to-end hybrid modes against pure-packet runs, with the
//     tolerances DESIGN.md documents, plus exact fixed-seed determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/maxmin_solver.hpp"
#include "analysis/metrics.hpp"
#include "baselines/configs.hpp"
#include "baselines/two_phase.hpp"
#include "fluid/fluid_gmp.hpp"
#include "fluid/fluid_network.hpp"
#include "gmp/controller.hpp"
#include "hybrid/background_load.hpp"
#include "mac/dcf.hpp"
#include "net/network.hpp"
#include "scenarios/scenarios.hpp"

namespace maxmin::hybrid {
namespace {

using analysis::Protocol;
using analysis::RunConfig;

/// Short-horizon GMP run config: long enough for the controller to
/// settle on these small scenarios, short enough for a test suite.
RunConfig shortRun() {
  RunConfig cfg;
  cfg.protocol = Protocol::kGmp;
  cfg.duration = Duration::seconds(200.0);
  cfg.warmup = Duration::seconds(80.0);
  cfg.seed = 7;
  return cfg;
}

double nominalCapacity() {
  const net::NetworkConfig nc = baselines::configGmp({});
  return baselines::nominalLinkCapacityPps(nc.mac, nc.packetSize);
}

/// Fluid fixed-point summary over the same metric pipeline the packet
/// runs use.
analysis::FairnessSummary fluidSummary(const fluid::FluidNetwork& net,
                                       const fluid::FluidState& state) {
  std::map<net::FlowId, int> hops;
  for (std::size_t i = 0; i < net.flows().size(); ++i) {
    hops[net.flows()[i].id] = static_cast<int>(net.paths()[i].size()) - 1;
  }
  return analysis::summarize(state.rates, hops);
}

// --- fluid solver pin ------------------------------------------------------

TEST(FluidPin, Fig4FixedPointTracksPacketSteadyState) {
  const auto sc = scenarios::fig4();
  const auto packet = analysis::runScenario(sc, shortRun());

  fluid::FluidNetwork fnet{sc.topology, sc.flows, nominalCapacity()};
  fluid::FluidGmpHarness harness{fnet, gmp::GmpParams{}};
  const auto fp = harness.runToFixedPoint(0.02, 400);
  EXPECT_TRUE(fp.converged) << "residual " << fp.residual;
  const auto state = fnet.evaluate();
  const auto fluidSum = fluidSummary(fnet, state);

  // I_mm pins against the centralized maxmin reference, not the packet
  // run: the fluid world has no collision losses, so its min/max ratio
  // lands at the ideal value while the packet run's worst flow keeps a
  // collision handicap (the fluid idealization gap, DESIGN.md §16).
  const auto model =
      analysis::buildCliqueModel(sc.topology, sc.flows, nominalCapacity());
  const auto ideal = analysis::summarize(
      analysis::solveWeightedMaxmin(model),
      [&] {
        std::map<net::FlowId, int> hops;
        for (const auto& f : packet.flows) hops[f.id] = f.hops;
        return hops;
      }());
  EXPECT_NEAR(fluidSum.imm, ideal.imm, 0.05);
  EXPECT_GE(fluidSum.imm, packet.summary.imm - 0.05);
  EXPECT_NEAR(fluidSum.ieq, packet.summary.ieq, 0.05);
  // Per-flow against the packet run: the fluid share must stay within a
  // third of the packet rate (fig4's rates sit near capacity/3; the
  // fluid model runs a little hot).
  for (const auto& f : packet.flows) {
    EXPECT_NEAR(state.rates.at(f.id), f.ratePps, f.ratePps / 3.0)
        << "flow " << f.name;
  }
}

TEST(FluidPin, SmallMeshFixedPointTracksPacketSteadyState) {
  const auto sc = scenarios::randomMesh(11, 20, 1000.0, 8);
  const auto packet = analysis::runScenario(sc, shortRun());

  fluid::FluidNetwork fnet{sc.topology, sc.flows, nominalCapacity()};
  fluid::FluidGmpHarness harness{fnet, gmp::GmpParams{}};
  const auto fp = harness.runToFixedPoint(0.02, 400);
  EXPECT_TRUE(fp.converged) << "residual " << fp.residual;
  const auto fluidSum = fluidSummary(fnet, fnet.evaluate());

  // Meshes carry the fluid idealization gap (no hidden-terminal or EIFS
  // pathologies in the fluid world), so the fluid min/max ratio sits
  // well above the packet run's; it must never sit *below* it, and the
  // demand-proportional shape (I_eq) must still match.
  EXPECT_GE(fluidSum.imm, packet.summary.imm - 0.05);
  EXPECT_LE(fluidSum.imm, 1.0 + 1e-9);
  EXPECT_NEAR(fluidSum.ieq, packet.summary.ieq, 0.10);
}

TEST(FluidPin, FixedPointIsDeterministic) {
  const auto sc = scenarios::randomMesh(11, 20, 1000.0, 8);
  auto solve = [&] {
    fluid::FluidNetwork fnet{sc.topology, sc.flows, nominalCapacity()};
    fluid::FluidGmpHarness harness{fnet, gmp::GmpParams{}};
    const auto fp = harness.runToFixedPoint(0.02, 400);
    return std::pair{fp.periods, fnet.evaluate().rates};
  };
  const auto [periodsA, ratesA] = solve();
  const auto [periodsB, ratesB] = solve();
  EXPECT_EQ(periodsA, periodsB);
  ASSERT_EQ(ratesA.size(), ratesB.size());
  for (const auto& [id, r] : ratesA) {
    EXPECT_EQ(r, ratesB.at(id)) << "flow " << id;  // bitwise, not NEAR
  }
}

// --- substrate hooks -------------------------------------------------------

TEST(DcfOccupancy, OccupyChannelOpensBusyWindow) {
  const auto topo = scenarios::chain(2).topology;
  net::Network net{topo, baselines::configGmp({}), {}};
  mac::Dcf& mac = net.macOf(0);
  EXPECT_FALSE(mac.channelBusy());

  mac.occupyChannel(Duration::micros(5000));
  EXPECT_TRUE(mac.channelBusy());
  EXPECT_EQ(mac.reservedUntil(), net.now() + Duration::micros(5000));

  net.run(Duration::micros(6000));
  EXPECT_FALSE(mac.channelBusy());
}

TEST(BackgroundLoadTest, PhantomOccupancyThrottlesForeground) {
  const auto sc = scenarios::chain(2);
  auto delivered = [&](double phantomPps) {
    net::Network net{sc.topology, baselines::configGmp({}), sc.flows};
    BackgroundLoad bg{net, Duration::micros(2000)};
    if (phantomPps > 0.0) {
      bg.addSender(1);  // receiver-side interferer; reach covers node 0
      bg.setSenderRate(1, phantomPps);
      bg.start();
    }
    net.run(Duration::seconds(20.0));
    bg.stop();
    if (phantomPps > 0.0) {
      EXPECT_GT(bg.burstsEmitted(), 0);
    }
    return net.delivered(0);
  };
  const auto unloaded = delivered(0.0);
  const auto loaded = delivered(250.0);  // 250 * 2 ms = 50% duty
  ASSERT_GT(unloaded, 0);
  // Half the airtime is gone; the flow must lose a big share of its
  // throughput but never starve (phantom senders defer to it too).
  EXPECT_LT(loaded, unloaded * 7 / 10);
  EXPECT_GT(loaded, unloaded / 5);
}

TEST(ControllerWarmStart, SeedsMeasurementCache) {
  const auto sc = scenarios::fig3();
  net::Network net{sc.topology, baselines::configGmp({}), sc.flows};
  gmp::Controller ctrl{net, gmp::GmpParams{}};
  EXPECT_EQ(ctrl.cachedMeasurements(), 0u);

  std::vector<net::NodePeriodMeasurement> seed;
  for (topo::NodeId n = 0; n < 4; ++n) {
    net::NodePeriodMeasurement m;
    m.node = n;
    m.periodSeconds = 4.0;
    seed.push_back(m);
  }
  ctrl.warmStart(seed);
  EXPECT_EQ(ctrl.cachedMeasurements(), 4u);
}

// --- end-to-end hybrid modes ----------------------------------------------

TEST(HybridRun, FastForwardMatchesPureWithinTolerance) {
  const auto sc = scenarios::fig4();
  const auto pure = analysis::runScenario(sc, shortRun());

  RunConfig cfg = shortRun();
  cfg.hybrid.fastForward = true;
  const auto ff = analysis::runScenario(sc, cfg);

  EXPECT_TRUE(ff.ffConverged);
  EXPECT_GT(ff.ffPeriods, 0);
  EXPECT_GT(ff.seededPackets, 0);
  EXPECT_NEAR(ff.summary.imm, pure.summary.imm, 0.05);
  EXPECT_NEAR(ff.summary.ieq, pure.summary.ieq, 0.02);
}

TEST(HybridRun, BackgroundMatchesPureOnFig4) {
  const auto sc = scenarios::fig4();
  const auto pure = analysis::runScenario(sc, shortRun());

  RunConfig cfg = shortRun();
  cfg.hybrid.fastForward = true;
  cfg.hybrid.background = true;
  cfg.hybrid.foreground = {0, 1};  // chain 0 stays packet-simulated
  const auto hyb = analysis::runScenario(sc, cfg);

  EXPECT_EQ(hyb.backgroundFlows, 6);
  EXPECT_GT(hyb.phantomBursts, 0);
  EXPECT_GT(hyb.relinearizations, 0);
  ASSERT_EQ(hyb.flows.size(), sc.flows.size());
  for (const auto& f : hyb.flows) {
    EXPECT_EQ(f.background, f.id != 0 && f.id != 1) << "flow " << f.name;
    EXPECT_GT(f.ratePps, 0.0) << "flow " << f.name;
  }
  EXPECT_NEAR(hyb.summary.imm, pure.summary.imm, 0.08);
  EXPECT_NEAR(hyb.summary.ieq, pure.summary.ieq, 0.02);
}

TEST(HybridRun, BackgroundMatchesPureOnSmallMesh) {
  const auto sc = scenarios::randomMesh(11, 20, 1000.0, 8);
  const auto pure = analysis::runScenario(sc, shortRun());

  RunConfig cfg = shortRun();
  cfg.hybrid.fastForward = true;
  cfg.hybrid.background = true;
  cfg.hybrid.foreground = {sc.flows[0].id, sc.flows[1].id};
  const auto hyb = analysis::runScenario(sc, cfg);

  // Mesh tolerance documented in DESIGN.md §16: the fluid background is
  // collision-free, so dense neighborhoods run a touch fairer.
  EXPECT_NEAR(hyb.summary.imm, pure.summary.imm, 0.12);
  EXPECT_NEAR(hyb.summary.ieq, pure.summary.ieq, 0.05);
}

TEST(HybridRun, FixedSeedRepeatIsExact) {
  const auto sc = scenarios::fig4();
  RunConfig cfg = shortRun();
  cfg.duration = Duration::seconds(60.0);
  cfg.warmup = Duration::seconds(20.0);
  cfg.hybrid.fastForward = true;
  cfg.hybrid.background = true;
  cfg.hybrid.foreground = {0, 1};

  const auto a = analysis::runScenario(sc, cfg);
  const auto b = analysis::runScenario(sc, cfg);
  EXPECT_EQ(a.summary.imm, b.summary.imm);
  EXPECT_EQ(a.summary.ieq, b.summary.ieq);
  EXPECT_EQ(a.phantomBursts, b.phantomBursts);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].ratePps, b.flows[i].ratePps)
        << "flow " << a.flows[i].name;
  }
}

}  // namespace
}  // namespace maxmin::hybrid
