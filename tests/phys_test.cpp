#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "phys/frame_trace.hpp"

#include "phys/medium.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace maxmin::phys {
namespace {

/// Records everything the medium tells it.
class RecordingRadio final : public RadioListener {
 public:
  void onChannelBusy() override { ++busyTransitions; }
  void onChannelIdle() override { ++idleTransitions; }
  void onFrameReceived(const Frame& f) override { received.push_back(f); }
  void onFrameCorrupted(const Frame& f) override { corrupted.push_back(f); }

  int busyTransitions = 0;
  int idleTransitions = 0;
  std::vector<Frame> received;
  std::vector<Frame> corrupted;
};

Frame makeFrame(topo::NodeId from, topo::NodeId to, std::int64_t micros) {
  Frame f;
  f.kind = FrameKind::kData;
  f.transmitter = from;
  f.addressee = to;
  f.duration = Duration::micros(micros);
  return f;
}

struct Fixture {
  explicit Fixture(std::vector<topo::Point> pts,
                   topo::RadioRanges ranges = {},
                   topo::TopologyOptions options = {})
      : topo{topo::Topology::fromPositions(std::move(pts), ranges, options)},
        medium{sim, topo},
        radios(static_cast<std::size_t>(topo.numNodes())) {
    for (topo::NodeId n = 0; n < topo.numNodes(); ++n) {
      medium.attachRadio(n, &radios[static_cast<std::size_t>(n)]);
    }
  }
  sim::Simulator sim;
  topo::Topology topo;
  Medium medium;
  std::vector<RecordingRadio> radios;
};

TEST(Medium, DeliversFrameToAllNodesInTxRange) {
  Fixture f{{{0, 0}, {200, 0}, {400, 0}, {800, 0}}};
  f.medium.startTransmission(makeFrame(1, 2, 100));
  f.sim.run();
  // Nodes 0 and 2 are within 250 m of node 1; node 3 is not.
  EXPECT_EQ(f.radios[0].received.size(), 1u);
  EXPECT_EQ(f.radios[2].received.size(), 1u);
  EXPECT_TRUE(f.radios[3].received.empty());
  EXPECT_TRUE(f.radios[1].received.empty());  // no self-reception
  EXPECT_EQ(f.medium.framesDelivered(), 2u);
}

TEST(Medium, BusyIdleTransitionsWithinCsRange) {
  Fixture f{{{0, 0}, {200, 0}, {400, 0}, {800, 0}}};
  f.medium.startTransmission(makeFrame(0, 1, 100));
  f.sim.run();
  // 200 and 400 m sense (<= 550); 800 m does not.
  EXPECT_EQ(f.radios[1].busyTransitions, 1);
  EXPECT_EQ(f.radios[1].idleTransitions, 1);
  EXPECT_EQ(f.radios[2].busyTransitions, 1);
  EXPECT_EQ(f.radios[3].busyTransitions, 0);
  EXPECT_EQ(f.radios[0].busyTransitions, 0);  // own tx not sensed
}

TEST(Medium, OverlappingTransmissionsCorruptReceptions) {
  // 0 --- 1 --- 2, spacing 400 m: 0 and 2 cannot sense each other? 800 m
  // apart -> beyond cs range; both reach node 1? 400 <= 250 is false...
  // Use spacing 200: 0 and 2 are 400 apart (sense each other) but we start
  // both at t=0 so neither deferred.
  Fixture f{{{0, 0}, {200, 0}, {400, 0}}};
  f.medium.startTransmission(makeFrame(0, 1, 100));
  f.medium.startTransmission(makeFrame(2, 1, 100));
  f.sim.run();
  EXPECT_TRUE(f.radios[1].received.empty());
  EXPECT_EQ(f.radios[1].corrupted.size(), 2u);
}

TEST(Medium, HiddenTerminalCollisionAtReceiverOnly) {
  // 0 at x=0, 1 at x=200, 2 at x=760: 0-2 distance 760 > 550 (hidden),
  // 2-1 distance 560 > 550... adjust: 2 at x=740 -> 2-1 = 540 <= 550
  // (interferes at 1) and 0-2 = 740 > 550 (mutually hidden).
  Fixture f{{{0, 0}, {200, 0}, {740, 0}}};
  f.medium.startTransmission(makeFrame(0, 1, 100));
  f.sim.runUntil(TimePoint::origin() + Duration::micros(50));
  // Node 2 cannot sense node 0; it transmits mid-reception.
  f.medium.startTransmission(makeFrame(2, 1, 100));
  f.sim.run();
  EXPECT_TRUE(f.radios[1].received.empty());
  EXPECT_EQ(f.radios[1].corrupted.size(), 1u);  // only frame from 0 decodable
}

TEST(Medium, LaterFrameCorruptedByOngoingEnergy) {
  Fixture f{{{0, 0}, {200, 0}, {400, 0}}};
  f.medium.startTransmission(makeFrame(0, 1, 200));
  f.sim.runUntil(TimePoint::origin() + Duration::micros(50));
  f.medium.startTransmission(makeFrame(2, 1, 100));
  f.sim.run();
  // Both frames overlap at node 1: both corrupted.
  EXPECT_TRUE(f.radios[1].received.empty());
  EXPECT_EQ(f.radios[1].corrupted.size(), 2u);
}

TEST(Medium, ReceiverTransmittingLosesIncomingFrame) {
  Fixture f{{{0, 0}, {200, 0}}};
  f.medium.startTransmission(makeFrame(0, 1, 100));
  f.medium.startTransmission(makeFrame(1, 0, 100));
  f.sim.run();
  // Each node was transmitting while the other's frame arrived.
  EXPECT_TRUE(f.radios[0].received.empty());
  EXPECT_TRUE(f.radios[1].received.empty());
  EXPECT_EQ(f.radios[0].corrupted.size(), 1u);
  EXPECT_EQ(f.radios[1].corrupted.size(), 1u);
}

TEST(Medium, SequentialTransmissionsBothDelivered) {
  Fixture f{{{0, 0}, {200, 0}, {400, 0}}};
  f.medium.startTransmission(makeFrame(0, 1, 100));
  f.sim.runUntil(TimePoint::origin() + Duration::micros(100));
  f.medium.startTransmission(makeFrame(2, 1, 100));
  f.sim.run();
  EXPECT_EQ(f.radios[1].received.size(), 2u);
  EXPECT_TRUE(f.radios[1].corrupted.empty());
}

TEST(Medium, SenseBusyQueries) {
  Fixture f{{{0, 0}, {200, 0}, {800, 0}}};
  EXPECT_FALSE(f.medium.senseBusy(1));
  f.medium.startTransmission(makeFrame(0, 1, 100));
  EXPECT_TRUE(f.medium.senseBusy(1));
  EXPECT_FALSE(f.medium.senseBusy(2));  // out of cs range
  EXPECT_FALSE(f.medium.senseBusy(0));  // own tx
  EXPECT_TRUE(f.medium.isTransmitting(0));
  f.sim.run();
  EXPECT_FALSE(f.medium.senseBusy(1));
  EXPECT_FALSE(f.medium.isTransmitting(0));
}

TEST(Medium, DoubleTransmitBySameNodeRejected) {
  Fixture f{{{0, 0}, {200, 0}}};
  f.medium.startTransmission(makeFrame(0, 1, 100));
  EXPECT_THROW(f.medium.startTransmission(makeFrame(0, 1, 100)),
               InvariantViolation);
}

TEST(Medium, SlotReuseAfterCompletion) {
  Fixture f{{{0, 0}, {200, 0}}};
  for (int i = 0; i < 5; ++i) {
    f.medium.startTransmission(makeFrame(0, 1, 50));
    f.sim.run();
  }
  EXPECT_EQ(f.radios[1].received.size(), 5u);
}

TEST(Medium, SimultaneousStartBothCorrupted) {
  // Same-instant starts at mutually-sensing nodes still collide at the
  // common receiver.
  Fixture f{{{0, 0}, {200, 0}, {400, 0}, {600, 0}}};
  f.medium.startTransmission(makeFrame(0, 1, 100));
  f.medium.startTransmission(makeFrame(3, 2, 100));
  f.sim.run();
  // Node 1 is within cs range of 3 (400 m)? |200-600|=400 <= 550 yes.
  EXPECT_TRUE(f.radios[1].received.empty());
  EXPECT_TRUE(f.radios[2].received.empty());
  EXPECT_EQ(f.radios[1].corrupted.size(), 1u);
  EXPECT_EQ(f.radios[2].corrupted.size(), 1u);
}


// Above the dense-adjacency threshold the corruption scan switches from
// a word-wise AND over the packed cs row to per-cs-neighbor bit probes.
// Both paths must produce identical deliveries, corruptions, and
// busy/idle transitions on the same frame schedule.
TEST(Medium, SparseCorruptionScanMatchesDense) {
  Rng rng{314};
  std::vector<topo::Point> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniformReal(0, 1600), rng.uniformReal(0, 1600)});
  }
  Fixture dense{pts};
  Fixture sparse{pts, {}, topo::TopologyOptions{0}};
  ASSERT_TRUE(dense.topo.hasDenseAdjacency());
  ASSERT_FALSE(sparse.topo.hasDenseAdjacency());

  // A deterministic schedule dense enough to hit every interaction:
  // overlapping same-instant starts, mid-reception hidden-terminal
  // starts, and staggered finishes.
  for (int round = 0; round < 30; ++round) {
    const auto start = static_cast<std::int64_t>(round) * 70;
    for (Fixture* f : {&dense, &sparse}) {
      f->sim.runUntil(TimePoint::origin() + Duration::micros(start));
      for (int k = 0; k < 4; ++k) {
        const auto from =
            static_cast<topo::NodeId>((round * 7 + k * 11) % 40);
        const auto to = static_cast<topo::NodeId>((round * 5 + k * 13) % 40);
        if (from == to || f->medium.isTransmitting(from)) continue;
        if (!f->topo.areNeighbors(from, to)) continue;
        f->medium.startTransmission(makeFrame(from, to, 100 + 10 * k));
      }
    }
  }
  dense.sim.run();
  sparse.sim.run();

  EXPECT_EQ(dense.medium.framesDelivered(), sparse.medium.framesDelivered());
  EXPECT_EQ(dense.medium.framesCorrupted(), sparse.medium.framesCorrupted());
  for (int n = 0; n < 40; ++n) {
    const auto i = static_cast<std::size_t>(n);
    EXPECT_EQ(dense.radios[i].received.size(), sparse.radios[i].received.size())
        << "node " << n;
    EXPECT_EQ(dense.radios[i].corrupted.size(),
              sparse.radios[i].corrupted.size())
        << "node " << n;
    EXPECT_EQ(dense.radios[i].busyTransitions, sparse.radios[i].busyTransitions)
        << "node " << n;
    EXPECT_EQ(dense.radios[i].idleTransitions, sparse.radios[i].idleTransitions)
        << "node " << n;
  }
}

TEST(FrameTrace, RecordsAllEventKindsAndLinkStats) {
  Fixture f{{{0, 0}, {200, 0}, {400, 0}}};
  FrameTrace trace;
  f.medium.setObserver(&trace);
  // Clean delivery 0->1, then a collision at 1 (0 and 2 overlap).
  f.medium.startTransmission(makeFrame(0, 1, 100));
  f.sim.run();
  f.medium.startTransmission(makeFrame(0, 1, 100));
  f.medium.startTransmission(makeFrame(2, 1, 100));
  f.sim.run();

  int tx = 0;
  int rx = 0;
  int coll = 0;
  for (const auto& e : trace.events()) {
    switch (e.kind) {
      case FrameTrace::EventKind::kTxStart: ++tx; break;
      case FrameTrace::EventKind::kDelivery: ++rx; break;
      case FrameTrace::EventKind::kCorruption: ++coll; break;
    }
  }
  EXPECT_EQ(tx, 3);
  EXPECT_GE(coll, 2);  // both overlapping frames corrupted at receivers
  EXPECT_GE(rx, 1);

  const auto& stats = trace.linkStats();
  ASSERT_TRUE(stats.contains(topo::Link{0, 1}));
  EXPECT_EQ(stats.at(topo::Link{0, 1}).delivered, 1);
  EXPECT_EQ(stats.at(topo::Link{0, 1}).corrupted, 1);
  EXPECT_DOUBLE_EQ(stats.at(topo::Link{0, 1}).corruptionRatio(), 0.5);
}

TEST(FrameTrace, NodeFilterRestrictsRecordedEvents) {
  Fixture f{{{0, 0}, {200, 0}, {400, 0}}};
  FrameTrace trace;
  trace.filterNode(2);
  f.medium.setObserver(&trace);
  f.medium.startTransmission(makeFrame(0, 1, 100));
  f.sim.run();
  // Node 2 only appears as an overhearing receiver of the delivery.
  for (const auto& e : trace.events()) {
    EXPECT_TRUE(e.transmitter == 2 || e.addressee == 2 || e.receiver == 2);
  }
  EXPECT_EQ(trace.totalObserved(), trace.events().size());
}

TEST(FrameTrace, CapacityBoundsRetainedEvents) {
  Fixture f{{{0, 0}, {200, 0}}};
  FrameTrace trace{8};
  f.medium.setObserver(&trace);
  for (int i = 0; i < 20; ++i) {
    f.medium.startTransmission(makeFrame(0, 1, 10));
    f.sim.run();
  }
  EXPECT_LE(trace.events().size(), 8u + 4u);
  EXPECT_EQ(trace.totalObserved(), 40u);  // 20 tx + 20 deliveries
}

TEST(FrameTrace, DumpFormatsEvents) {
  Fixture f{{{0, 0}, {200, 0}}};
  FrameTrace trace;
  f.medium.setObserver(&trace);
  f.medium.startTransmission(makeFrame(0, 1, 100));
  f.sim.run();
  std::ostringstream os;
  trace.dump(os);
  EXPECT_NE(os.str().find("TX   DATA 0>1"), std::string::npos);
  EXPECT_NE(os.str().find("rx=1"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.totalObserved(), 0u);
}

}  // namespace
}  // namespace maxmin::phys

