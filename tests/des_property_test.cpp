// Cross-cutting invariants of the packet-level simulator, checked over
// random mesh topologies and all three protocol configurations:
//
//  * conservation: end-to-end deliveries never exceed source admissions,
//    and the difference is bounded by in-network buffering;
//  * losslessness of the per-destination + congestion-avoidance scheme;
//  * the 802.11 baseline drops only at queues (never silently);
//  * medium sanity: collision counters consistent with delivery counts;
//  * determinism: identical seeds give identical runs.
#include <gtest/gtest.h>

#include "baselines/configs.hpp"
#include "net/network.hpp"
#include "scenarios/scenarios.hpp"

namespace maxmin {
namespace {

struct ProtocolCase {
  const char* name;
  net::NetworkConfig config;
};

std::vector<ProtocolCase> protocolCases() {
  return {
      {"gmp-style", baselines::configGmp({})},
      {"2pp-style", baselines::config2pp({})},
      {"80211-style", baselines::config80211({})},
  };
}

class DesInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(DesInvariantTest, ConservationAndLossAccounting) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto sc = scenarios::randomMesh(seed * 101 + 9, 10, 900.0, 4, 300.0);
  for (auto pc : protocolCases()) {
    pc.config.seed = seed;
    net::Network net{sc.topology, pc.config, sc.flows};
    net.run(Duration::seconds(20.0));

    std::int64_t admitted = 0;
    std::int64_t buffered = 0;
    for (const auto& f : sc.flows) {
      admitted += net.stack(f.src).sourceCounters(f.id).admitted;
    }
    for (topo::NodeId n = 0; n < sc.topology.numNodes(); ++n) {
      buffered += pc.config.discipline == net::QueueDiscipline::kSharedFifo
                      ? pc.config.sharedBufferCapacity
                      : pc.config.queueCapacity * 8;
    }
    std::int64_t delivered = 0;
    for (const auto& f : sc.flows) delivered += net.delivered(f.id);
    const std::int64_t drops = net.totalQueueDrops();

    EXPECT_LE(delivered, admitted) << pc.name << " seed " << seed;
    EXPECT_LE(admitted - delivered - drops,
              buffered + sc.topology.numNodes())
        << pc.name << " seed " << seed
        << ": packets vanished beyond buffering";
    if (pc.config.congestionAvoidance &&
        pc.config.discipline == net::QueueDiscipline::kPerDestination) {
      EXPECT_EQ(drops, 0) << pc.name << " seed " << seed;
    }
    EXPECT_GT(delivered, 0) << pc.name << " seed " << seed;
  }
}

TEST_P(DesInvariantTest, IdenticalSeedsAreBitReproducible) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto sc = scenarios::randomMesh(seed * 77 + 3, 8, 800.0, 3, 200.0);
  auto runOnce = [&](std::uint64_t s) {
    net::NetworkConfig cfg = baselines::configGmp({});
    cfg.seed = s;
    net::Network net{sc.topology, cfg, sc.flows};
    net.run(Duration::seconds(10.0));
    std::vector<std::int64_t> out;
    for (const auto& f : sc.flows) out.push_back(net.delivered(f.id));
    for (topo::NodeId n = 0; n < sc.topology.numNodes(); ++n) {
      out.push_back(
          static_cast<std::int64_t>(net.macOf(n).counters().rtsSent));
    }
    out.push_back(static_cast<std::int64_t>(net.medium().framesCorrupted()));
    return out;
  };
  EXPECT_EQ(runOnce(seed), runOnce(seed));
  // And a different seed perturbs at least something.
  EXPECT_NE(runOnce(seed), runOnce(seed + 1));
}

TEST_P(DesInvariantTest, MediumCountersAreConsistent) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto sc = scenarios::randomMesh(seed * 53 + 17, 9, 850.0, 3, 400.0);
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = seed;
  net::Network net{sc.topology, cfg, sc.flows};
  net.run(Duration::seconds(15.0));

  std::uint64_t dataSent = 0;
  std::uint64_t successes = 0;
  for (topo::NodeId n = 0; n < sc.topology.numNodes(); ++n) {
    dataSent += net.macOf(n).counters().dataSent;
    successes += net.macOf(n).counters().txSuccesses;
  }
  EXPECT_LE(successes, dataSent);
  EXPECT_GT(net.medium().framesDelivered(), successes)
      << "every success implies at least CTS+DATA+ACK deliveries";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesInvariantTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace maxmin
