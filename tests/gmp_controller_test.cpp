// Unit tests for gmp::Controller: snapshot assembly from live
// measurements, link classification against known network states, and
// lifecycle behavior. (Full convergence behavior is covered by
// gmp_integration_test.)
#include <gtest/gtest.h>

#include "baselines/configs.hpp"
#include "gmp/controller.hpp"
#include "net/network.hpp"
#include "scenarios/scenarios.hpp"

namespace maxmin::gmp {
namespace {

net::NetworkConfig gmpConfig(std::uint64_t seed) {
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = seed;
  return cfg;
}

TEST(Controller, RequiresPerDestinationQueueing) {
  const auto sc = scenarios::fig3();
  net::NetworkConfig cfg = baselines::config80211({});
  net::Network net{sc.topology, cfg, sc.flows};
  EXPECT_THROW((Controller{net, GmpParams{}}), InvariantViolation);
}

TEST(Controller, RequiresCongestionAvoidance) {
  const auto sc = scenarios::fig3();
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.congestionAvoidance = false;
  net::Network net{sc.topology, cfg, sc.flows};
  EXPECT_THROW((Controller{net, GmpParams{}}), InvariantViolation);
}

TEST(Controller, SnapshotContainsEveryFlowAndVirtualLink) {
  const auto sc = scenarios::fig3();
  net::Network net{sc.topology, gmpConfig(41), sc.flows};
  Controller ctrl{net, GmpParams{}};
  net.run(Duration::seconds(4.0));
  const Snapshot snap = ctrl.takeSnapshot();

  EXPECT_EQ(snap.flows.size(), 3u);
  // Virtual links: union over flow paths in the dest-3 virtual network.
  std::set<VirtualLinkKey> keys;
  for (const auto& vl : snap.vlinks) keys.insert(vl.key);
  EXPECT_TRUE(keys.contains(VirtualLinkKey{0, 1, 3}));
  EXPECT_TRUE(keys.contains(VirtualLinkKey{1, 2, 3}));
  EXPECT_TRUE(keys.contains(VirtualLinkKey{2, 3, 3}));
  EXPECT_EQ(snap.wlinks.size(), 3u);
  // Saturated map covers every on-path virtual node.
  for (topo::NodeId n : {0, 1, 2}) {
    EXPECT_TRUE(snap.saturated.contains({n, 3})) << "node " << n;
  }
}

TEST(Controller, SaturatedChainYieldsPaperClassification) {
  // All sources at 800 pkt/s: node 0..2 queues saturate. The last link
  // (2,3) is bandwidth-saturated (its receiver is the sink), upstream
  // links are buffer-saturated.
  const auto sc = scenarios::fig3();
  net::Network net{sc.topology, gmpConfig(42), sc.flows};
  Controller ctrl{net, GmpParams{}};
  net.run(Duration::seconds(8.0));
  const Snapshot snap = ctrl.takeSnapshot();
  for (const auto& vl : snap.vlinks) {
    if (vl.key.to == 3) {
      EXPECT_EQ(vl.type, LinkType::kBandwidthSaturated) << vl.key;
    } else {
      EXPECT_EQ(vl.type, LinkType::kBufferSaturated) << vl.key;
    }
    EXPECT_GT(vl.ratePps, 0.0) << vl.key;
  }
}

TEST(Controller, UnderloadedNetworkIsUnsaturatedAndQuiet) {
  auto sc = scenarios::fig3();
  for (auto& f : sc.flows) f.desiredRate = PacketRate::perSecond(10.0);
  net::Network net{sc.topology, gmpConfig(43), sc.flows};
  Controller ctrl{net, GmpParams{}};
  ctrl.start();
  net.run(Duration::seconds(20.0));
  EXPECT_EQ(ctrl.periodsRun(), 5);
  for (int v : ctrl.violationHistory()) EXPECT_EQ(v, 0);
  for (const auto& vl : ctrl.lastSnapshot().vlinks) {
    EXPECT_EQ(vl.type, LinkType::kUnsaturated) << vl.key;
  }
  // No flow acquired a rate limit.
  for (const auto& f : sc.flows) {
    EXPECT_FALSE(net.rateLimit(f.id).has_value());
  }
}

TEST(Controller, OccupancyReflectsAirtimeShares) {
  const auto sc = scenarios::fig3();
  net::Network net{sc.topology, gmpConfig(44), sc.flows};
  Controller ctrl{net, GmpParams{}};
  net.run(Duration::seconds(8.0));
  const Snapshot snap = ctrl.takeSnapshot();
  double total = 0.0;
  for (const auto& wl : snap.wlinks) {
    EXPECT_GE(wl.occupancy, 0.0);
    EXPECT_LE(wl.occupancy, 1.0);
    total += wl.occupancy;
  }
  // The chain is one clique and saturated: combined airtime is a large
  // fraction of the channel (frames only; gaps excluded).
  EXPECT_GT(total, 0.5);
  EXPECT_LT(total, 1.1);
}

TEST(Controller, RateAndViolationHistoriesGrowPerPeriod) {
  const auto sc = scenarios::fig3();
  net::Network net{sc.topology, gmpConfig(45), sc.flows};
  Controller ctrl{net, GmpParams{}};
  ctrl.start();
  net.run(Duration::seconds(16.0));
  EXPECT_EQ(ctrl.periodsRun(), 4);
  EXPECT_EQ(ctrl.violationHistory().size(), 4u);
  ASSERT_EQ(ctrl.rateHistory().size(), 4u);
  for (const auto& period : ctrl.rateHistory()) {
    EXPECT_EQ(period.size(), 3u);
  }
}

TEST(Controller, StopHaltsAdjustment) {
  const auto sc = scenarios::fig3();
  net::Network net{sc.topology, gmpConfig(46), sc.flows};
  Controller ctrl{net, GmpParams{}};
  ctrl.start();
  net.run(Duration::seconds(8.0));
  ctrl.stop();
  const int periods = ctrl.periodsRun();
  net.run(Duration::seconds(8.0));
  EXPECT_EQ(ctrl.periodsRun(), periods);
}

TEST(Controller, PrimaryFlowsCarryTheLargestNormalizedRate) {
  // Give one flow a head start through a tighter limit on the others;
  // after a measurement period the shared links' primary flow must be
  // the unlimited (faster) one.
  const auto sc = scenarios::fig3();
  net::Network net{sc.topology, gmpConfig(47), sc.flows};
  Controller ctrl{net, GmpParams{}};
  net.setRateLimit(0, 20.0);
  net.setRateLimit(1, 20.0);
  // Flow 2 unlimited: its mu will dominate on (2,3).
  net.run(Duration::seconds(4.0));
  ctrl.takeSnapshot();  // seed source mu values... (stamped next period)
  net.run(Duration::seconds(4.0));
  const Snapshot snap = ctrl.takeSnapshot();
  for (const auto& vl : snap.vlinks) {
    if (vl.key.from == 2) {
      ASSERT_FALSE(vl.primaryFlows.empty());
      EXPECT_EQ(vl.primaryFlows[0], 2) << vl.key;
    }
  }
}

}  // namespace
}  // namespace maxmin::gmp
