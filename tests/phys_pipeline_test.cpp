// Frame-pipeline regression tests for the packed-adjacency Medium:
//
//  * a dense same-instant-burst workload whose delivered/corrupted
//    counters and per-receiver outcomes were golden-captured from the
//    pre-rewrite O(active x receptions) implementation — the rewrite must
//    reproduce them exactly;
//  * an allocation-count assertion (via a counting global operator new)
//    that steady-state startTransmission/finishTransmission perform zero
//    heap allocations once the slot/spill pools reach their high-water
//    marks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "phys/medium.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/fault_plane.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_heapAllocs{0};

}  // namespace

// Counting global operator new: every heap allocation in this test binary
// bumps g_heapAllocs. Deletes are forwarded to free untouched. noinline:
// when sanitizer instrumentation inlines these into a call site, GCC's
// mismatched-new-delete checker sees the raw malloc/free pair through
// the operator boundary and reports a false positive.
__attribute__((noinline)) void* operator new(std::size_t size) {
  g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
__attribute__((noinline)) void* operator new[](std::size_t size) {
  g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}

namespace maxmin::phys {
namespace {

class CountingRadio final : public RadioListener {
 public:
  void onChannelBusy() override {}
  void onChannelIdle() override {}
  void onFrameReceived(const Frame&) override { ++received; }
  void onFrameCorrupted(const Frame&) override { ++corrupted; }
  std::int64_t received = 0;
  std::int64_t corrupted = 0;
};

Frame dataFrame(topo::NodeId from, std::int64_t micros) {
  Frame f;
  f.kind = FrameKind::kData;
  f.transmitter = from;
  f.addressee = topo::kNoNode;
  f.duration = Duration::micros(micros);
  return f;
}

struct DenseFixture {
  DenseFixture()
      : scenario{scenarios::denseMesh(21, 40, 1)},
        medium{sim, scenario.topology},
        radios(40) {
    for (topo::NodeId n = 0; n < 40; ++n) {
      medium.attachRadio(n, &radios[static_cast<std::size_t>(n)]);
    }
  }

  /// The golden workload: a same-instant burst from every fourth node, a
  /// staggered overlapping wave, a sequential clean wave, and a full
  /// same-instant burst from all 40 nodes.
  void runBurstPattern() {
    for (topo::NodeId s = 0; s < 40; s += 4) {
      medium.startTransmission(dataFrame(s, 100));
    }
    sim.run();
    for (topo::NodeId s = 0; s < 40; ++s) {
      sim.post(Duration::micros((s % 5) * 60),
               [this, s] { medium.startTransmission(dataFrame(s, 100)); });
    }
    sim.run();
    for (topo::NodeId s = 0; s < 10; ++s) {
      sim.post(Duration::micros(s * 150),
               [this, s] { medium.startTransmission(dataFrame(s, 100)); });
    }
    sim.run();
    for (topo::NodeId s = 0; s < 40; ++s) {
      medium.startTransmission(dataFrame(s, 100));
    }
    sim.run();
  }

  scenarios::Scenario scenario;
  sim::Simulator sim;
  Medium medium;
  std::vector<CountingRadio> radios;
};

// Golden counters captured from the pre-rewrite implementation (the
// O(active x receptions) scan with per-call inCsRange distance checks) on
// this exact fixture. The packed-adjacency pipeline changes only how the
// corruption relation is computed, never its outcome.
TEST(MediumDenseBurst, MatchesGoldenCountersFromLinearScanImplementation) {
  DenseFixture f;
  f.runBurstPattern();

  EXPECT_EQ(f.medium.framesDelivered(), 88u);
  EXPECT_EQ(f.medium.framesCorrupted(), 692u);
  EXPECT_EQ(f.medium.framesImpaired(), 0u);
  EXPECT_EQ(f.medium.framesSuppressed(), 0u);

  // Per-receiver outcomes, folded FNV-style so a single flipped delivery
  // anywhere in the mesh fails the test.
  std::uint64_t rxHash = 1469598103934665603ULL;
  for (int n = 0; n < 40; ++n) {
    rxHash = (rxHash ^ static_cast<std::uint64_t>(
                           f.radios[static_cast<std::size_t>(n)].received)) *
             1099511628211ULL;
    rxHash = (rxHash ^ static_cast<std::uint64_t>(
                           f.radios[static_cast<std::size_t>(n)].corrupted)) *
             1099511628211ULL;
  }
  EXPECT_EQ(rxHash, 2736256693161567801ULL);

  // Spot checks so a failure localizes without decoding the hash.
  EXPECT_EQ(f.radios[0].received, 5);
  EXPECT_EQ(f.radios[0].corrupted, 26);
  EXPECT_EQ(f.radios[4].received, 1);
  EXPECT_EQ(f.radios[4].corrupted, 13);
  EXPECT_EQ(f.radios[7].received, 5);
  EXPECT_EQ(f.radios[7].corrupted, 27);
}

TEST(MediumAllocation, SteadyStateStartFinishIsAllocationFree) {
  DenseFixture f;
  // Warm every pool to its high-water mark: transmission records, spill
  // blocks, reverse-index lists, the DES kernel's event slabs. The
  // kernel's calendar tiers recycle buffers by swapping them through the
  // bucket array, so per-buffer capacity takes a few window cycles to
  // converge to the orbit's high-water mark — hence several warmup
  // patterns, not one.
  for (int i = 0; i < 6; ++i) f.runBurstPattern();
  const std::size_t slotsWarm = f.medium.activeSlotHighWater();
  const std::size_t blocksWarm = f.medium.spillBlockHighWater();
  ASSERT_GT(blocksWarm, 0u);  // dense mesh: tx degree exceeds inline 8

  const std::uint64_t allocsBefore =
      g_heapAllocs.load(std::memory_order_relaxed);
  f.runBurstPattern();
  const std::uint64_t allocsAfter =
      g_heapAllocs.load(std::memory_order_relaxed);

  EXPECT_EQ(allocsAfter - allocsBefore, 0u)
      << "steady-state frame pipeline must not touch the heap";
  EXPECT_EQ(f.medium.activeSlotHighWater(), slotsWarm);
  EXPECT_EQ(f.medium.spillBlockHighWater(), blocksWarm);
}

// The free list is shared by the silent (crashed-sender) and radiating
// paths: a silent transmission recycles the same records and stays
// allocation-free too.
TEST(MediumAllocation, SilentPathSharesRecycledRecords) {
  DenseFixture f;
  sim::FaultScript script;
  sim::FaultEvent crash;
  crash.at = TimePoint::origin();
  crash.kind = sim::FaultEvent::Kind::kNodeDown;
  crash.node = 3;
  script.events = {crash};
  sim::FaultPlane faults{f.sim, f.scenario.topology.numNodes(), script,
                         Rng{1}};
  f.medium.setFaultPlane(&faults);
  faults.start();
  f.sim.run();  // node 3 is down from here on
  // Warm pools with node 3's transmissions silent (same multi-cycle
  // warmup as above so the kernel's rotating tier buffers converge).
  for (int i = 0; i < 6; ++i) f.runBurstPattern();
  const std::size_t slotsWarm = f.medium.activeSlotHighWater();

  const std::uint64_t allocsBefore =
      g_heapAllocs.load(std::memory_order_relaxed);
  f.runBurstPattern();
  EXPECT_EQ(g_heapAllocs.load(std::memory_order_relaxed) - allocsBefore, 0u);
  EXPECT_EQ(f.medium.activeSlotHighWater(), slotsWarm);
  EXPECT_GT(f.medium.framesSuppressed(), 0u);
}

}  // namespace
}  // namespace maxmin::phys
