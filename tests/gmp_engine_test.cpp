#include <gtest/gtest.h>

#include <algorithm>

#include "gmp/engine.hpp"
#include "scenarios/scenarios.hpp"

namespace maxmin::gmp {
namespace {

topo::Topology chainTopo(int n, double spacing = 200.0) {
  std::vector<topo::Point> pts;
  for (int i = 0; i < n; ++i) pts.push_back({spacing * i, 0.0});
  return topo::Topology::fromPositions(std::move(pts));
}

TEST(BetaCompare, EqualAndSmaller) {
  const BetaCompare cmp{0.10};
  EXPECT_TRUE(cmp.equal(100.0, 100.0));
  EXPECT_TRUE(cmp.equal(100.0, 95.0));   // 5% of 100
  EXPECT_TRUE(cmp.equal(95.0, 100.0));
  EXPECT_FALSE(cmp.equal(100.0, 89.0));  // 11% of 100
  EXPECT_TRUE(cmp.smaller(89.0, 100.0));
  EXPECT_FALSE(cmp.smaller(95.0, 100.0));
  EXPECT_FALSE(cmp.smaller(100.0, 95.0));
  EXPECT_TRUE(cmp.equal(0.0, 0.0));
}

TEST(BetaCompare, RejectsBadBeta) {
  EXPECT_THROW(BetaCompare{-0.1}, InvariantViolation);
  EXPECT_THROW(BetaCompare{1.0}, InvariantViolation);
}

TEST(LinkClassification, PaperTable) {
  EXPECT_EQ(classifyLink(false, false), LinkType::kUnsaturated);
  EXPECT_EQ(classifyLink(false, true), LinkType::kUnsaturated);
  EXPECT_EQ(classifyLink(true, false), LinkType::kBandwidthSaturated);
  EXPECT_EQ(classifyLink(true, true), LinkType::kBufferSaturated);
}

TEST(ContentionStructure, Fig2HasTheTwoPaperCliques) {
  const auto sc = scenarios::fig2();
  auto cs = ContentionStructure::build(
      sc.topology, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  ASSERT_EQ(cs.cliques.size(), 2u);
  // Resolve cliques into link sets.
  std::vector<std::vector<topo::Link>> sets;
  for (const auto& c : cs.cliques) {
    std::vector<topo::Link> links;
    for (int li : c.linkIndices)
      links.push_back(cs.links[static_cast<std::size_t>(li)]);
    sets.push_back(links);
  }
  const std::vector<topo::Link> clique0{{0, 1}, {1, 2}};
  const std::vector<topo::Link> clique1{{1, 2}, {3, 4}, {4, 5}};
  EXPECT_TRUE((sets[0] == clique0 && sets[1] == clique1) ||
              (sets[0] == clique1 && sets[1] == clique0));
}

TEST(ContentionStructure, LinkIndexLookup) {
  auto cs = ContentionStructure::build(chainTopo(3), {{1, 2}, {0, 1}});
  EXPECT_EQ(cs.linkIndex({0, 1}), 0);
  EXPECT_EQ(cs.linkIndex({1, 2}), 1);
  EXPECT_EQ(cs.linkIndex({2, 1}), -1);
}

// --- Engine fixtures ---------------------------------------------------------

FlowState flow(net::FlowId id, topo::NodeId src, topo::NodeId dst,
               double rate, std::optional<double> limit, double weight = 1.0) {
  FlowState f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.weight = weight;
  f.desiredPps = 800.0;
  f.ratePps = rate;
  f.limitPps = limit;
  return f;
}

VLinkState vlink(topo::NodeId from, topo::NodeId to, topo::NodeId dest,
                 LinkType type, double normRate,
                 std::vector<net::FlowId> primaries) {
  VLinkState vl;
  vl.key = {from, to, dest};
  vl.type = type;
  vl.normRate = normRate;
  vl.ratePps = normRate;
  vl.primaryFlows = std::move(primaries);
  return vl;
}

const Command* findCommand(const DecisionReport& r, net::FlowId id) {
  for (const Command& c : r.commands) {
    if (c.flow == id) return &c;
  }
  return nullptr;
}

class SourceConditionTest : public ::testing::Test {
 protected:
  // Chain 0-1-2; flow A is local at node 1 (dest 2), flow B comes from
  // node 0 through the buffer-saturated upstream link (0,1).
  SourceConditionTest()
      : engine_{ContentionStructure::build(chainTopo(3), {{0, 1}, {1, 2}}),
                GmpParams{}} {}

  Snapshot makeSnapshot(double rateA, double rateB) {
    Snapshot s;
    s.flows = {flow(0, 1, 2, rateA, rateA), flow(1, 0, 2, rateB, rateB)};
    s.saturated[{0, 2}] = true;
    s.saturated[{1, 2}] = true;
    s.vlinks = {
        vlink(0, 1, 2, LinkType::kBufferSaturated, rateB, {1}),
        vlink(1, 2, 2, LinkType::kBandwidthSaturated,
              std::max(rateA, rateB), {rateA >= rateB ? 0 : 1}),
    };
    s.wlinks = {{{0, 1}, 0.3, rateB}, {{1, 2}, 0.6, std::max(rateA, rateB)}};
    return s;
  }

  Engine engine_;
};

TEST_F(SourceConditionTest, NarrowGapUsesBetaSteps) {
  const auto report = engine_.decide(makeSnapshot(200.0, 100.0));
  EXPECT_EQ(report.sourceBufferViolations, 1);
  const Command* a = findCommand(report, 0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, Command::Kind::kSetLimit);
  EXPECT_NEAR(a->limitPps, 180.0, 1e-9);  // reduce by beta
  const Command* b = findCommand(report, 1);
  ASSERT_NE(b, nullptr);
  EXPECT_NEAR(b->limitPps, 110.0, 1e-9);  // increase by beta
}

TEST_F(SourceConditionTest, WideGapHalvesAndDoubles) {
  const auto report = engine_.decide(makeSnapshot(400.0, 100.0));
  const Command* a = findCommand(report, 0);
  ASSERT_NE(a, nullptr);
  EXPECT_NEAR(a->limitPps, 200.0, 1e-9);  // halve
  const Command* b = findCommand(report, 1);
  ASSERT_NE(b, nullptr);
  EXPECT_NEAR(b->limitPps, 200.0, 1e-9);  // double
}

TEST_F(SourceConditionTest, EqualRatesSatisfyCondition) {
  const auto report = engine_.decide(makeSnapshot(100.0, 95.0));
  EXPECT_EQ(report.sourceBufferViolations, 0);
  EXPECT_TRUE(report.conditionsSatisfied());
}

TEST_F(SourceConditionTest, UnlimitedFlowGetsNoIncreaseRequest) {
  Snapshot s = makeSnapshot(200.0, 100.0);
  s.flows[1].limitPps = std::nullopt;  // B unlimited
  const auto report = engine_.decide(s);
  const Command* b = findCommand(report, 1);
  EXPECT_EQ(b, nullptr);  // cannot raise a nonexistent limit
}

class BandwidthConditionTest : public ::testing::Test {
 protected:
  // Chain 0-1-2-3 with flows C: 0->1 and D: 2->3 in one clique.
  BandwidthConditionTest()
      : engine_{ContentionStructure::build(chainTopo(4), {{0, 1}, {2, 3}}),
                GmpParams{}} {}

  Snapshot makeSnapshot(double rateC, double rateD, double occC = 0.5,
                        double occD = 0.5) {
    Snapshot s;
    s.flows = {flow(0, 0, 1, rateC, rateC), flow(1, 2, 3, rateD, rateD)};
    s.saturated[{0, 1}] = true;
    s.saturated[{2, 3}] = true;
    s.vlinks = {
        vlink(0, 1, 1, LinkType::kBandwidthSaturated, rateC, {0}),
        vlink(2, 3, 3, LinkType::kBandwidthSaturated, rateD, {1}),
    };
    s.wlinks = {{{0, 1}, occC, rateC}, {{2, 3}, occD, rateD}};
    return s;
  }

  Engine engine_;
};

TEST_F(BandwidthConditionTest, DeprivedLinkTriggersRebalance) {
  const auto report = engine_.decide(makeSnapshot(300.0, 100.0));
  EXPECT_EQ(report.bandwidthViolations, 1);
  const Command* c = findCommand(report, 0);
  ASSERT_NE(c, nullptr);
  EXPECT_NEAR(c->limitPps, 270.0, 1e-9);  // reduce by beta (no halving here)
  const Command* d = findCommand(report, 1);
  ASSERT_NE(d, nullptr);
  EXPECT_NEAR(d->limitPps, 110.0, 1e-9);  // increase by beta
}

TEST_F(BandwidthConditionTest, EqualRatesSatisfy) {
  const auto report = engine_.decide(makeSnapshot(105.0, 100.0));
  EXPECT_EQ(report.bandwidthViolations, 0);
}

TEST_F(BandwidthConditionTest, TopLinkItselfIsSatisfied) {
  // Only the deprived link's wireless link is inspected; the link holding
  // the clique maximum is satisfied by definition. With a single
  // bandwidth-saturated link, nothing fires.
  Snapshot s = makeSnapshot(300.0, 100.0);
  s.vlinks[1].type = LinkType::kUnsaturated;  // D's link no longer bw-sat
  s.saturated.erase({2, 3});
  const auto report = engine_.decide(s);
  EXPECT_EQ(report.bandwidthViolations, 0);
}

TEST(EngineResolution, ReductionBeatsIncreaseAndLargestReductionWins) {
  // Flow E is primary on two virtual links at two saturated virtual
  // nodes with different gaps: one requests halving, the other a beta
  // step. The control packet keeps the largest reduction.
  Engine engine{ContentionStructure::build(chainTopo(4), {{0, 1}, {1, 2},
                                                          {2, 3}}),
                GmpParams{}};
  Snapshot s;
  // E: 0 -> 3 at rate 400. Two downstream nodes saturated.
  s.flows = {flow(0, 0, 3, 400.0, 400.0), flow(1, 1, 3, 100.0, 100.0),
             flow(2, 2, 3, 300.0, 300.0)};
  s.saturated[{0, 3}] = true;
  s.saturated[{1, 3}] = true;
  s.saturated[{2, 3}] = true;
  // At node 1: upstream (0,1) with mu 400 (E primary), local flow 1 at
  // mu 100 -> wide gap (400 > 3*100): halve E -> 200.
  // At node 2: upstream (1,2) with mu 400 (E primary), local flow 2 at
  // mu 300 -> narrow gap: reduce E by beta -> 360.
  s.vlinks = {
      vlink(0, 1, 3, LinkType::kBufferSaturated, 400.0, {0}),
      vlink(1, 2, 3, LinkType::kBufferSaturated, 400.0, {0}),
      vlink(2, 3, 3, LinkType::kBandwidthSaturated, 400.0, {0}),
  };
  s.wlinks = {{{0, 1}, 0.3, 400.0}, {{1, 2}, 0.3, 400.0}, {{2, 3}, 0.3, 400.0}};
  const auto report = engine.decide(s);
  const Command* e = findCommand(report, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, Command::Kind::kSetLimit);
  EXPECT_NEAR(e->limitPps, 200.0, 1e-9);  // halving (largest reduction) wins
}

TEST(EngineRateLimitCondition, AdditiveIncreaseWhenBinding) {
  Engine engine{ContentionStructure::build(chainTopo(2), {{0, 1}}),
                GmpParams{}};
  Snapshot s;
  s.flows = {flow(0, 0, 1, 100.0, 100.0)};
  s.saturated[{0, 1}] = false;
  s.vlinks = {vlink(0, 1, 1, LinkType::kUnsaturated, 100.0, {0})};
  s.wlinks = {{{0, 1}, 0.2, 100.0}};
  const auto report = engine.decide(s);
  ASSERT_EQ(report.commands.size(), 1u);
  EXPECT_EQ(report.commands[0].kind, Command::Kind::kSetLimit);
  EXPECT_NEAR(report.commands[0].limitPps, 110.0, 1e-9);  // +10 pkt/s
  EXPECT_EQ(report.additiveIncreases, 1);
}

TEST(EngineRateLimitCondition, ClearlySlackLimitRemovedWhenUnsaturated) {
  Engine engine{ContentionStructure::build(chainTopo(2), {{0, 1}}),
                GmpParams{}};
  Snapshot s;
  s.flows = {flow(0, 0, 1, 40.0, 100.0)};
  s.saturated[{0, 1}] = false;
  s.vlinks = {vlink(0, 1, 1, LinkType::kUnsaturated, 40.0, {0})};
  s.wlinks = {{{0, 1}, 0.1, 40.0}};
  const auto report = engine.decide(s);
  ASSERT_EQ(report.commands.size(), 1u);
  EXPECT_EQ(report.commands[0].kind, Command::Kind::kRemoveLimit);
  EXPECT_EQ(report.limitsRemoved, 1);
}

TEST(EngineRateLimitCondition, SlackLimitKeptWhenSourceSaturated) {
  Engine engine{ContentionStructure::build(chainTopo(2), {{0, 1}}),
                GmpParams{}};
  Snapshot s;
  s.flows = {flow(0, 0, 1, 40.0, 100.0)};
  s.saturated[{0, 1}] = true;  // congested source queue: keep the limit
  s.vlinks = {vlink(0, 1, 1, LinkType::kBandwidthSaturated, 40.0, {0})};
  s.wlinks = {{{0, 1}, 0.9, 40.0}};
  const auto report = engine.decide(s);
  EXPECT_EQ(findCommand(report, 0), nullptr);
  EXPECT_EQ(report.limitsRemoved, 0);
}

TEST(EngineRateLimitCondition, MildSlackNeitherIncreasedNorRemoved) {
  Engine engine{ContentionStructure::build(chainTopo(2), {{0, 1}}),
                GmpParams{}};
  Snapshot s;
  s.flows = {flow(0, 0, 1, 80.0, 100.0)};  // 20% slack: not binding,
                                           // not clearly unnecessary
  s.saturated[{0, 1}] = false;
  s.vlinks = {vlink(0, 1, 1, LinkType::kUnsaturated, 80.0, {0})};
  s.wlinks = {{{0, 1}, 0.2, 80.0}};
  const auto report = engine.decide(s);
  EXPECT_TRUE(report.commands.empty());
}

TEST(EngineResolution, IncreaseNeverTightensExistingLimit) {
  // A flow with a generous limit receiving only an increase request must
  // not see its limit shrink to the request's target.
  Engine engine{ContentionStructure::build(chainTopo(3), {{0, 1}, {1, 2}}),
                GmpParams{}};
  Snapshot s;
  s.flows = {flow(0, 1, 2, 200.0, 200.0), flow(1, 0, 2, 100.0, 500.0)};
  s.saturated[{0, 2}] = true;
  s.saturated[{1, 2}] = true;
  s.vlinks = {
      vlink(0, 1, 2, LinkType::kBufferSaturated, 100.0, {1}),
      vlink(1, 2, 2, LinkType::kBandwidthSaturated, 200.0, {0}),
  };
  s.wlinks = {{{0, 1}, 0.3, 100.0}, {{1, 2}, 0.6, 200.0}};
  const auto report = engine.decide(s);
  const Command* b = findCommand(report, 1);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->kind, Command::Kind::kSetLimit);
  EXPECT_GE(b->limitPps, 500.0);  // kept at least as loose as before
}

TEST(EngineResolution, ReduceTargetFlooredAtMinRate) {
  GmpParams params;
  params.minRatePps = 5.0;
  Engine engine{ContentionStructure::build(chainTopo(3), {{0, 1}, {1, 2}}),
                params};
  Snapshot s;
  // Local flow with tiny measured rate still gets a sane (floored) limit.
  s.flows = {flow(0, 1, 2, 1.0, 1.0), flow(1, 0, 2, 0.1, 0.1)};
  s.saturated[{0, 2}] = true;
  s.saturated[{1, 2}] = true;
  s.vlinks = {
      vlink(0, 1, 2, LinkType::kBufferSaturated, 0.1, {1}),
      vlink(1, 2, 2, LinkType::kBandwidthSaturated, 1.0, {0}),
  };
  s.wlinks = {{{0, 1}, 0.3, 0.1}, {{1, 2}, 0.6, 1.0}};
  const auto report = engine.decide(s);
  for (const Command& c : report.commands) {
    if (c.kind == Command::Kind::kSetLimit) {
      EXPECT_GE(c.limitPps, params.minRatePps);
    }
  }
}


TEST(EngineWeighted, ConditionsCompareNormalizedRatesNotRawRates) {
  // Two local flows at a saturated source: raw rates 200 and 100 but
  // weights 2 and 1 — normalized rates are equal, so the source
  // condition is satisfied and no commands are issued beyond rate-limit
  // maintenance.
  Engine engine{ContentionStructure::build(chainTopo(3), {{0, 1}, {1, 2}}),
                GmpParams{}};
  Snapshot s;
  s.flows = {flow(0, 0, 2, 200.0, 200.0, 2.0),
             flow(1, 0, 2, 100.0, 100.0, 1.0)};
  s.saturated[{0, 2}] = true;
  s.saturated[{1, 2}] = true;
  VLinkState vl = vlink(0, 1, 2, LinkType::kBufferSaturated, 100.0, {0, 1});
  s.vlinks = {vl, vlink(1, 2, 2, LinkType::kBandwidthSaturated, 100.0, {0, 1})};
  s.wlinks = {{{0, 1}, 0.5, 100.0}, {{1, 2}, 0.5, 100.0}};
  const auto report = engine.decide(s);
  EXPECT_EQ(report.sourceBufferViolations, 0);
  for (const Command& c : report.commands) {
    // Only additive probes (both limits binding), no reductions.
    EXPECT_EQ(c.kind, Command::Kind::kSetLimit);
    EXPECT_GT(c.limitPps, 99.0);
  }
}

TEST(EngineWeighted, HeavierFlowReducedWhenNormalizedRateIsLarger) {
  // Weight-2 flow at raw 600 (mu 300) vs weight-1 flow at raw 150
  // (mu 150): the heavy flow's normalized rate is the violation.
  Engine engine{ContentionStructure::build(chainTopo(3), {{0, 1}, {1, 2}}),
                GmpParams{}};
  Snapshot s;
  s.flows = {flow(0, 1, 2, 600.0, 600.0, 2.0),
             flow(1, 0, 2, 150.0, 150.0, 1.0)};
  s.saturated[{0, 2}] = true;
  s.saturated[{1, 2}] = true;
  s.vlinks = {
      vlink(0, 1, 2, LinkType::kBufferSaturated, 150.0, {1}),
      vlink(1, 2, 2, LinkType::kBandwidthSaturated, 300.0, {0}),
  };
  s.wlinks = {{{0, 1}, 0.3, 150.0}, {{1, 2}, 0.7, 300.0}};
  const auto report = engine.decide(s);
  EXPECT_EQ(report.sourceBufferViolations, 1);
  const Command* heavy = findCommand(report, 0);
  ASSERT_NE(heavy, nullptr);
  EXPECT_LT(heavy->limitPps, 600.0);  // reduced
  const Command* light = findCommand(report, 1);
  ASSERT_NE(light, nullptr);
  EXPECT_GT(light->limitPps, 150.0);  // increased
}

TEST(EngineMultiplePrimaries, AllPrimariesOfTheTopLinkAreReduced) {
  Engine engine{ContentionStructure::build(chainTopo(3), {{0, 1}, {1, 2}}),
                GmpParams{}};
  Snapshot s;
  // Two flows share the upstream link with (beta-)equal top normalized
  // rates; a cheaper local flow anchors S1.
  s.flows = {flow(0, 0, 2, 200.0, 200.0), flow(1, 0, 2, 195.0, 195.0),
             flow(2, 1, 2, 100.0, 100.0)};
  s.saturated[{0, 2}] = true;
  s.saturated[{1, 2}] = true;
  s.vlinks = {
      vlink(0, 1, 2, LinkType::kBufferSaturated, 200.0, {0, 1}),
      vlink(1, 2, 2, LinkType::kBandwidthSaturated, 200.0, {0, 1}),
  };
  s.wlinks = {{{0, 1}, 0.5, 200.0}, {{1, 2}, 0.5, 200.0}};
  const auto report = engine.decide(s);
  const Command* a = findCommand(report, 0);
  const Command* b = findCommand(report, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_LT(a->limitPps, 200.0);
  EXPECT_LT(b->limitPps, 195.0);
}

TEST(EngineEdgeCases, MissingSaturationEntriesMeanUnsaturated) {
  // A snapshot with no saturation map entries must produce no condition
  // violations (nothing is saturated).
  Engine engine{ContentionStructure::build(chainTopo(3), {{0, 1}, {1, 2}}),
                GmpParams{}};
  Snapshot s;
  s.flows = {flow(0, 0, 2, 100.0, std::nullopt)};
  s.vlinks = {vlink(0, 1, 2, LinkType::kUnsaturated, 100.0, {0}),
              vlink(1, 2, 2, LinkType::kUnsaturated, 100.0, {0})};
  s.wlinks = {{{0, 1}, 0.2, 100.0}, {{1, 2}, 0.2, 100.0}};
  const auto report = engine.decide(s);
  EXPECT_TRUE(report.conditionsSatisfied());
  EXPECT_TRUE(report.commands.empty());  // unlimited flow, nothing to do
}

TEST(EngineEdgeCases, EmptySnapshotIsANoOp) {
  Engine engine{ContentionStructure::build(chainTopo(2), {{0, 1}}),
                GmpParams{}};
  const auto report = engine.decide(Snapshot{});
  EXPECT_TRUE(report.conditionsSatisfied());
  EXPECT_TRUE(report.commands.empty());
}

TEST(EngineEdgeCases, SaturatedSourceWithoutFlowsOrUpstreamIsIgnored) {
  Engine engine{ContentionStructure::build(chainTopo(2), {{0, 1}}),
                GmpParams{}};
  Snapshot s;
  s.saturated[{0, 1}] = true;  // a saturated vnode with nothing attached
  const auto report = engine.decide(s);
  EXPECT_EQ(report.sourceBufferViolations, 0);
}

}  // namespace
}  // namespace maxmin::gmp

