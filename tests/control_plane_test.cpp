// Tests for the in-band control plane: MAC broadcast frames, the
// dominating-set link-state dissemination of §6.2 Step 2, and the
// distributed per-node clique discovery. Several tests *measure* the
// control plane's latency and delivery under saturated data load — the
// quantitative justification for running the default controller with
// out-of-band signalling (DESIGN.md §2, substitution 3).
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/configs.hpp"
#include "gmp/dissemination.hpp"
#include "gmp/neighborhood.hpp"
#include "net/network.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/fault_plane.hpp"
#include "topology/dominating_set.hpp"

namespace maxmin::gmp {
namespace {

net::Network makeIdleNetwork(const scenarios::Scenario& sc,
                             double trickleRate = 1.0) {
  // Flows must exist for the network to build; a trickle keeps the
  // channel essentially idle.
  auto flows = sc.flows;
  for (auto& f : flows) f.desiredRate = PacketRate::perSecond(trickleRate);
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 31;
  return net::Network{sc.topology, cfg, flows};
}

TEST(Broadcast, ReachesAllOneHopNeighbors) {
  const auto sc = scenarios::fig3();
  auto net = makeIdleNetwork(sc);
  LinkStateDissemination diss{net};
  diss.announce(1, {{topo::Link{1, 2}, 50.0, 0.25}});
  net.run(Duration::millis(50));
  const auto reached = diss.reachedBy(1, 0);
  // Node 1's neighbors are 0 and 2; relays extend to 3 (two hops).
  EXPECT_TRUE(std::binary_search(reached.begin(), reached.end(), 0));
  EXPECT_TRUE(std::binary_search(reached.begin(), reached.end(), 2));
  EXPECT_GE(net.macOf(1).counters().broadcastsSent, 1u);
}

TEST(Dissemination, RelaysCoverTwoHopNeighborhood) {
  const auto sc = scenarios::fig3();
  auto net = makeIdleNetwork(sc);
  LinkStateDissemination diss{net};
  diss.announce(0, {{topo::Link{0, 1}, 80.0, 0.5}});
  net.run(Duration::millis(100));
  const auto reached = diss.reachedBy(0, 0);
  // Two-hop scope of node 0 on the chain: {0, 1, 2}.
  for (topo::NodeId n : {0, 1, 2}) {
    EXPECT_TRUE(std::binary_search(reached.begin(), reached.end(), n))
        << "node " << n << " missed the announcement";
  }
  // The receiving nodes hold the advertised state.
  const auto& store = diss.knownStates(2);
  ASSERT_TRUE(store.contains(topo::Link{0, 1}));
  EXPECT_DOUBLE_EQ(store.at(topo::Link{0, 1}).normRate, 80.0);
  EXPECT_DOUBLE_EQ(store.at(topo::Link{0, 1}).occupancy, 0.5);
}

TEST(Dissemination, DuplicateSuppressionStopsRebroadcastStorms) {
  // A dense clique where everyone is in everyone's dominating-set
  // candidacy: each node must relay at most once per announcement.
  std::vector<topo::Point> pts;
  for (int i = 0; i < 6; ++i) pts.push_back({100.0 * i, 0.0});
  scenarios::Scenario sc;
  sc.topology = topo::Topology::fromPositions(pts);
  net::FlowSpec f;
  f.id = 0;
  f.src = 0;
  f.dst = 5;
  f.desiredRate = PacketRate::perSecond(1.0);
  sc.flows = {f};
  auto net = makeIdleNetwork(sc);
  LinkStateDissemination diss{net};
  diss.announce(0, {{topo::Link{0, 1}, 10.0, 0.1}});
  net.run(Duration::seconds(1.0));
  // Total transmissions bounded by nodes (1 origin + <= 1 relay each).
  EXPECT_LE(diss.messagesSent() + diss.rebroadcasts(), 6);
}

TEST(Dissemination, SequenceNumbersDistinguishRounds) {
  const auto sc = scenarios::fig3();
  auto net = makeIdleNetwork(sc);
  LinkStateDissemination diss{net};
  diss.announce(1, {{topo::Link{1, 2}, 10.0, 0.1}});
  net.run(Duration::millis(50));
  diss.announce(1, {{topo::Link{1, 2}, 20.0, 0.2}});
  net.run(Duration::millis(50));
  EXPECT_FALSE(diss.reachedBy(1, 0).empty());
  EXPECT_FALSE(diss.reachedBy(1, 1).empty());
  // Receivers keep the latest value.
  EXPECT_DOUBLE_EQ(diss.knownStates(0).at(topo::Link{1, 2}).normRate, 20.0);
}

TEST(Dissemination, CompletesQuicklyUnderSaturatedDataLoad) {
  // The quantitative check behind substitution 3: on a fully saturated
  // Fig. 3 network, a link-state announcement plus its relays reach the
  // 2-hop scope within a small fraction of the 4 s period.
  const auto sc = scenarios::fig3();
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 13;
  net::Network net{sc.topology, cfg, sc.flows};  // 800 pkt/s demands
  LinkStateDissemination diss{net};
  net.run(Duration::seconds(5.0));  // reach saturation

  diss.announce(1, {{topo::Link{1, 2}, 50.0, 0.9}});
  const TimePoint sent = net.now();
  TimePoint done = TimePoint::max();
  for (int step = 0; step < 400; ++step) {
    net.run(Duration::millis(5));
    const auto reached = diss.reachedBy(1, 0);
    const auto twoHop = net.topology().twoHopNeighborhood(1);
    if (std::includes(reached.begin(), reached.end(), twoHop.begin(),
                      twoHop.end())) {
      done = net.now();
      break;
    }
  }
  ASSERT_NE(done, TimePoint::max()) << "dissemination never completed";
  const Duration latency = done - sent;
  EXPECT_LT(latency, Duration::millis(500))
      << "latency " << latency << " is not negligible vs the 4 s period";
}

TEST(Dissemination, BroadcastsCoexistWithDataTraffic) {
  // Control traffic must not stall data: run a saturated network with a
  // periodic announcer and verify both make progress.
  const auto sc = scenarios::fig3();
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 17;
  net::Network net{sc.topology, cfg, sc.flows};
  LinkStateDissemination diss{net};
  for (int round = 0; round < 10; ++round) {
    diss.announce(2, {{topo::Link{2, 3}, 42.0, 0.5}});
    net.run(Duration::seconds(1.0));
  }
  EXPECT_GE(diss.messagesSent(), 10);
  EXPECT_GT(net.delivered(0) + net.delivered(1) + net.delivered(2), 500);
  EXPECT_FALSE(diss.reachedBy(2, 9).empty());
}

// --- self-healing backbone (DESIGN.md §13) -----------------------------------

TEST(Repair, RelayCrashRecoversTwoHopCoverage) {
  // A dense mesh is where dominating sets are proper subsets of the
  // neighbor list — crash a relay and the greedy re-cover must swap in
  // a substitute so 2-hop coverage survives. Find a center whose relay
  // set excludes at least one neighbor, then kill one of its relays.
  const auto sc = scenarios::randomMesh(1, 12, 700.0, 5);
  topo::NodeId center = topo::kNoNode;
  topo::NodeId victim = topo::kNoNode;
  for (topo::NodeId c = 0; c < sc.topology.numNodes(); ++c) {
    const auto relays = topo::computeDominatingSet(sc.topology, c);
    if (!relays.empty() &&
        relays.size() < sc.topology.neighbors(c).size()) {
      center = c;
      victim = relays.front();
      break;
    }
  }
  ASSERT_NE(center, topo::kNoNode) << "mesh seed has no non-trivial set";

  auto net = makeIdleNetwork(sc);
  sim::FaultPlane& faults = net.enableFaults(
      sim::parseFaultScript("crash " + std::to_string(victim) + " 1"));
  LinkStateDissemination diss{net};
  const auto before = diss.relaysOf(center);
  net.run(Duration::seconds(2.0));

  EXPECT_GT(diss.relayRepairs(), 0);
  EXPECT_NE(diss.relaysOf(center), before)
      << "the crashed relay must be replaced, not kept";
  // Coverage oracle: every target still reachable in 2 hops is covered
  // by the repaired set under the current fault state.
  std::vector<char> alive(static_cast<std::size_t>(sc.topology.numNodes()),
                          1);
  alive[static_cast<std::size_t>(victim)] = 0;
  const topo::LinkAliveFn link = [&faults](topo::NodeId a, topo::NodeId b) {
    return faults.linkUp(a, b);
  };
  const auto targets =
      topo::reachableTwoHop(sc.topology, center, alive, link);
  const auto covered =
      topo::relayCoverage(sc.topology, center, diss.relaysOf(center), alive,
                          link);
  EXPECT_TRUE(std::includes(covered.begin(), covered.end(), targets.begin(),
                            targets.end()))
      << "repaired relays leave a 2-hop coverage hole";
}

TEST(Repair, CanaryHookFreezesStaticSets) {
  const auto sc = scenarios::randomMesh(1, 12, 700.0, 5);
  auto net = makeIdleNetwork(sc);
  net.enableFaults(sim::parseFaultScript("crash 3 1"));
  LinkStateDissemination diss{net};
  diss.disableRepairForTest();
  const auto before = diss.relaysOf(3);
  net.run(Duration::seconds(2.0));
  EXPECT_EQ(diss.relayRepairs(), 0);
  EXPECT_EQ(diss.relaysOf(3), before);
}

TEST(Reliability, ImplicitAcksConfirmDeliveryWithoutRetransmits) {
  // On an idle channel every relay's rebroadcast is overheard by the
  // origin well inside the ack timeout: the pending entry clears via
  // implicit acks alone and the backoff machinery never fires.
  const auto sc = scenarios::fig3();
  auto net = makeIdleNetwork(sc);
  LinkStateDissemination diss{net};
  diss.enableReliability({});
  diss.announce(1, {{topo::Link{1, 2}, 50.0, 0.25}});
  net.run(Duration::seconds(2.0));

  EXPECT_GT(diss.implicitAcks(), 0);
  EXPECT_EQ(diss.retransmits(), 0);
  EXPECT_EQ(diss.deliveryFailures(), 0);
  EXPECT_EQ(diss.messagesSent(), 1);
}

TEST(Reliability, BoundedRetransmitsGiveUpUnderTotalControlLoss) {
  // Every control frame is destroyed in flight: no relay ever echoes,
  // so the origin retries exactly maxRetransmits times under backoff
  // and then abandons the announcement — bounded, not forever.
  const auto sc = scenarios::fig3();
  auto flows = sc.flows;
  for (auto& f : flows) f.desiredRate = PacketRate::perSecond(1.0);
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 31;
  cfg.impairments.per = 1.0;
  cfg.impairments.scope = phys::ImpairmentConfig::Scope::kControlFrames;
  net::Network net{sc.topology, cfg, flows};

  LinkStateDissemination diss{net};
  ReliabilityParams params;
  params.maxRetransmits = 3;
  diss.enableReliability(params);
  diss.announce(1, {{topo::Link{1, 2}, 50.0, 0.25}});
  net.run(Duration::seconds(5.0));

  EXPECT_EQ(diss.retransmits(), 3);
  EXPECT_EQ(diss.deliveryFailures(), 1);
  EXPECT_EQ(diss.implicitAcks(), 0);
}

TEST(Dissemination, CrashedOriginStateAgesOut) {
  // Regression: receivers used to keep the "last value heard" forever,
  // so a crashed origin's link state poisoned rate computation for the
  // rest of the run. Entries must expire stateTtl after the last
  // refresh.
  const auto sc = scenarios::fig3();
  auto net = makeIdleNetwork(sc);
  LinkStateDissemination diss{net};
  diss.setStateTtl(Duration::seconds(2.0));

  diss.announce(1, {{topo::Link{1, 2}, 50.0, 0.25}});
  net.run(Duration::millis(100));
  ASSERT_TRUE(diss.knownStates(0).contains(topo::Link{1, 2}));

  // The origin goes silent (crashed); its state must age out everywhere.
  net.run(Duration::seconds(3.0));
  EXPECT_FALSE(diss.knownStates(0).contains(topo::Link{1, 2}));
  EXPECT_FALSE(diss.knownStates(2).contains(topo::Link{1, 2}));
  EXPECT_GT(diss.expiredStates(), 0);

  // A fresh announcement after the origin recovers re-populates stores.
  diss.announce(1, {{topo::Link{1, 2}, 60.0, 0.3}});
  net.run(Duration::millis(100));
  EXPECT_DOUBLE_EQ(diss.knownStates(0).at(topo::Link{1, 2}).normRate, 60.0);
}

// --- per-node clique discovery ------------------------------------------------

std::vector<topo::Link> activeLinksOf(const scenarios::Scenario& sc) {
  net::NetworkConfig cfg = baselines::configGmp({});
  net::Network net{sc.topology, cfg, sc.flows};
  return net.activeLinks();
}

TEST(Neighborhood, InteriorChainNodesRecoverTheGlobalClique) {
  // On the Fig. 3 chain the single maximal clique spans all three links.
  // Interior nodes (1, 2) see the whole chain within two hops and
  // recover it exactly. Edge nodes cannot: under cs = 2.2 x tx the
  // contention domain extends to ~3 radio hops, one hop beyond the
  // paper's 2-hop discovery horizon — a real limitation of the paper's
  // assumption that the next test pins down.
  const auto sc = scenarios::fig3();
  const auto links = activeLinksOf(sc);
  for (topo::NodeId n : {1, 2}) {
    const auto view = buildLocalView(sc.topology, n, links);
    EXPECT_TRUE(localViewIsExact(sc.topology, links, view)) << "node " << n;
    ASSERT_EQ(view.cliques.size(), 1u);
    EXPECT_EQ(view.cliqueLinks(0).size(), 3u);
  }
}

TEST(Neighborhood, ContentionHorizonExceedsTwoHopsAtChainEdges) {
  // Node 0's two-hop view on the Fig. 3 chain is {0,1,2}; link (2,3)
  // contends with (0,1) (endpoints 1 and 2 are 200 m apart) but its far
  // endpoint is three hops away, so the local clique under-approximates
  // the global one. The condition checks still work — they only need
  // the clique's *occupancy and rates*, which the (i,j)-initiated
  // dissemination provides — but pre-computed clique membership from
  // 2-hop topology alone is incomplete at the edge.
  const auto sc = scenarios::fig3();
  const auto links = activeLinksOf(sc);
  const auto view = buildLocalView(sc.topology, 0, links);
  EXPECT_FALSE(localViewIsExact(sc.topology, links, view));
  ASSERT_EQ(view.cliques.size(), 1u);
  EXPECT_EQ(view.cliqueLinks(0),
            (std::vector<topo::Link>{{0, 1}, {1, 2}}));  // (2,3) unseen
}

TEST(Neighborhood, CrossComponentContentionIsInvisibleToTwoHopDiscovery) {
  // A documented limitation of the paper's §6.2 assumption: Fig. 2's two
  // chains contend (350-545 m apart, inside the 550 m interference
  // range) but exchange no decodable frames, so 2-hop radio discovery
  // can never learn the cross-chain clique {(1,2),(3,4),(4,5)}. Node 1's
  // local view only contains the intra-chain clique. (The evaluation
  // harness therefore provides contention structure globally — what a
  // real deployment would obtain from a site survey or a wider-scope
  // discovery protocol.)
  const auto sc = scenarios::fig2();
  const auto links = activeLinksOf(sc);
  const auto view = buildLocalView(sc.topology, 1, links);
  ASSERT_EQ(view.cliques.size(), 1u);
  EXPECT_EQ(view.cliqueLinks(0), (std::vector<topo::Link>{{0, 1}, {1, 2}}));
  EXPECT_FALSE(localViewIsExact(sc.topology, links, view));
}

TEST(Neighborhood, NonAdjacentCliquesAreExcluded) {
  const auto sc = scenarios::fig2();
  const auto links = activeLinksOf(sc);
  // Node 0 belongs only to clique {(0,1),(1,2)}.
  const auto view = buildLocalView(sc.topology, 0, links);
  ASSERT_EQ(view.cliques.size(), 1u);
  EXPECT_EQ(view.cliqueLinks(0),
            (std::vector<topo::Link>{{0, 1}, {1, 2}}));
}

TEST(Neighborhood, CliqueIdsMatchPaperScheme) {
  const auto sc = scenarios::fig3();
  const auto links = activeLinksOf(sc);
  const auto view = buildLocalView(sc.topology, 1, links);
  for (const auto& c : view.cliques) {
    topo::NodeId smallest = std::numeric_limits<topo::NodeId>::max();
    for (int i = 0; i < static_cast<int>(view.cliques.size()); ++i) {
      for (const auto& l : view.cliqueLinks(i)) {
        smallest = std::min({smallest, l.from, l.to});
      }
    }
    EXPECT_EQ(c.id.owner, smallest);
  }
}

class NeighborhoodPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NeighborhoodPropertyTest, ViewsAreSoundAndMostlyExactOnDenseMeshes) {
  // Soundness always holds: everything a local view reports is a true
  // maximal clique of the links it can see. Exactness (recovering every
  // global clique touching the node) holds for most nodes of a dense
  // mesh and fails only where contenders lack a 2-hop radio path; we
  // quantify that fraction rather than assume it away.
  const auto sc = scenarios::randomMesh(
      static_cast<std::uint64_t>(GetParam()) * 7 + 2, 14, 700.0, 5);
  const auto links = activeLinksOf(sc);
  int exact = 0;
  for (topo::NodeId n = 0; n < sc.topology.numNodes(); ++n) {
    const auto view = buildLocalView(sc.topology, n, links);
    // Soundness: local cliques are cliques of the global conflict graph.
    const topo::ConflictGraph global{sc.topology, links};
    for (int c = 0; c < static_cast<int>(view.cliques.size()); ++c) {
      const auto members = view.cliqueLinks(c);
      for (std::size_t a = 0; a < members.size(); ++a) {
        for (std::size_t b = a + 1; b < members.size(); ++b) {
          EXPECT_TRUE(topo::ConflictGraph::linksConflict(
              sc.topology, members[a], members[b]));
        }
      }
    }
    if (localViewIsExact(sc.topology, links, view)) ++exact;
  }
  RecordProperty("exactViews", exact);
  RecordProperty("nodes", sc.topology.numNodes());
  EXPECT_GE(exact, 1) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NeighborhoodPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace maxmin::gmp
