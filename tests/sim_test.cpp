#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "util/check.hpp"

namespace maxmin::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(Duration::micros(30), [&] { order.push_back(3); });
  s.schedule(Duration::micros(10), [&] { order.push_back(1); });
  s.schedule(Duration::micros(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().asMicros(), 30);
}

TEST(Simulator, SameInstantIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(Duration::micros(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ZeroDelayRunsAfterCurrentInstantFifo) {
  Simulator s;
  std::vector<int> order;
  s.schedule(Duration::micros(1), [&] {
    order.push_back(1);
    s.schedule(Duration::zero(), [&] { order.push_back(2); });
  });
  s.schedule(Duration::micros(1), [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule(Duration::micros(10), [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pendingEvents(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator s;
  int runs = 0;
  const EventId id = s.schedule(Duration::micros(1), [&] { ++runs; });
  s.run();
  s.cancel(id);  // already fired: no-op
  s.cancel(id);
  s.schedule(Duration::micros(1), [&] { ++runs; });
  s.run();
  EXPECT_EQ(runs, 2);
}

TEST(Simulator, RunUntilAdvancesClockPastLastEvent) {
  Simulator s;
  int runs = 0;
  s.schedule(Duration::micros(10), [&] { ++runs; });
  s.schedule(Duration::micros(100), [&] { ++runs; });
  s.runUntil(TimePoint::origin() + Duration::micros(50));
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(s.now().asMicros(), 50);
  s.runUntil(TimePoint::origin() + Duration::micros(200));
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(s.now().asMicros(), 200);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator s;
  bool ran = false;
  s.schedule(Duration::micros(50), [&] { ran = true; });
  s.runUntil(TimePoint::origin() + Duration::micros(50));
  EXPECT_TRUE(ran);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator s;
  s.schedule(Duration::micros(10), [] {});
  s.run();
  EXPECT_THROW(s.scheduleAt(TimePoint::origin() + Duration::micros(5), [] {}),
               InvariantViolation);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule(Duration::micros(1), recurse);
  };
  s.schedule(Duration::micros(1), recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now().asMicros(), 5);
  EXPECT_EQ(s.executedEvents(), 5u);
}

TEST(Timer, ArmAndFire) {
  Simulator s;
  Timer t{s};
  bool fired = false;
  t.arm(Duration::micros(10), [&] { fired = true; });
  EXPECT_TRUE(t.pending());
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RearmCancelsPrevious) {
  Simulator s;
  Timer t{s};
  int which = 0;
  t.arm(Duration::micros(10), [&] { which = 1; });
  t.arm(Duration::micros(20), [&] { which = 2; });
  s.run();
  EXPECT_EQ(which, 2);
  EXPECT_EQ(s.now().asMicros(), 20);
}

TEST(Timer, CancelStopsFire) {
  Simulator s;
  Timer t{s};
  bool fired = false;
  t.arm(Duration::micros(10), [&] { fired = true; });
  t.cancel();
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, CallbackMayRearm) {
  Simulator s;
  Timer t{s};
  int count = 0;
  std::function<void()> fn = [&] {
    if (++count < 3) t.arm(Duration::micros(10), fn);
  };
  t.arm(Duration::micros(10), fn);
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.now().asMicros(), 30);
}

TEST(Timer, DestructionCancels) {
  Simulator s;
  bool fired = false;
  {
    Timer t{s};
    t.arm(Duration::micros(10), [&] { fired = true; });
  }
  s.run();
  EXPECT_FALSE(fired);
}

TEST(PeriodicTimer, FiresAtFixedInterval) {
  Simulator s;
  PeriodicTimer p{s};
  std::vector<std::int64_t> times;
  p.start(Duration::micros(100), [&] {
    times.push_back(s.now().asMicros());
    if (times.size() == 3) p.stop();
  });
  s.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{100, 200, 300}));
}

TEST(PeriodicTimer, InitialDelayDiffersFromPeriod) {
  Simulator s;
  PeriodicTimer p{s};
  std::vector<std::int64_t> times;
  p.start(Duration::micros(5), Duration::micros(100), [&] {
    times.push_back(s.now().asMicros());
    if (times.size() == 2) p.stop();
  });
  s.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{5, 105}));
}

}  // namespace
}  // namespace maxmin::sim
