#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "util/check.hpp"

namespace maxmin::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.post(Duration::micros(30), [&] { order.push_back(3); });
  s.post(Duration::micros(10), [&] { order.push_back(1); });
  s.post(Duration::micros(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().asMicros(), 30);
}

TEST(Simulator, SameInstantIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.post(Duration::micros(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ZeroDelayRunsAfterCurrentInstantFifo) {
  Simulator s;
  std::vector<int> order;
  s.post(Duration::micros(1), [&] {
    order.push_back(1);
    s.post(Duration::zero(), [&] { order.push_back(2); });
  });
  s.post(Duration::micros(1), [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule(Duration::micros(10), [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pendingEvents(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator s;
  int runs = 0;
  const EventId id = s.schedule(Duration::micros(1), [&] { ++runs; });
  s.run();
  s.cancel(id);  // already fired: no-op
  s.cancel(id);
  s.post(Duration::micros(1), [&] { ++runs; });
  s.run();
  EXPECT_EQ(runs, 2);
}

TEST(Simulator, RunUntilAdvancesClockPastLastEvent) {
  Simulator s;
  int runs = 0;
  s.post(Duration::micros(10), [&] { ++runs; });
  s.post(Duration::micros(100), [&] { ++runs; });
  s.runUntil(TimePoint::origin() + Duration::micros(50));
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(s.now().asMicros(), 50);
  s.runUntil(TimePoint::origin() + Duration::micros(200));
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(s.now().asMicros(), 200);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator s;
  bool ran = false;
  s.post(Duration::micros(50), [&] { ran = true; });
  s.runUntil(TimePoint::origin() + Duration::micros(50));
  EXPECT_TRUE(ran);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator s;
  s.post(Duration::micros(10), [] {});
  s.run();
  EXPECT_THROW(s.postAt(TimePoint::origin() + Duration::micros(5), [] {}),
               InvariantViolation);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.post(Duration::micros(1), recurse);
  };
  s.post(Duration::micros(1), recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now().asMicros(), 5);
  EXPECT_EQ(s.executedEvents(), 5u);
}

// Regression: cancelling an already-fired event used to insert its id into
// the kernel's tombstone set forever (a leak) and double-cancel could drive
// the pending-event count negative. With generation ids both are no-ops.
TEST(Simulator, CancelAfterFireNeitherLeaksNorUnderflows) {
  Simulator s;
  const EventId id = s.schedule(Duration::micros(1), [] {});
  s.run();
  EXPECT_EQ(s.pendingEvents(), 0u);
  s.cancel(id);
  s.cancel(id);  // idempotent
  EXPECT_EQ(s.pendingEvents(), 0u);
  // The queue must still work normally afterwards.
  bool fired = false;
  s.post(Duration::micros(1), [&] { fired = true; });
  EXPECT_EQ(s.pendingEvents(), 1u);
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.pendingEvents(), 0u);
}

TEST(Simulator, CancelOfNeverIssuedIdIsNoOp) {
  Simulator s;
  s.cancel(kInvalidEventId);
  s.cancel(0xdeadbeefcafe1234ull);  // slot far beyond anything allocated
  EXPECT_EQ(s.pendingEvents(), 0u);
  bool fired = false;
  s.post(Duration::micros(1), [&] { fired = true; });
  s.cancel(0xdeadbeefcafe1234ull);
  EXPECT_EQ(s.pendingEvents(), 1u);
  s.run();
  EXPECT_TRUE(fired);
}

// A stale handle must not cancel an unrelated later event that happens to
// reuse the same slab slot.
TEST(Simulator, StaleIdCannotCancelReusedSlot) {
  Simulator s;
  const EventId first = s.schedule(Duration::micros(1), [] {});
  s.run();  // fires; its slot returns to the free list
  bool fired = false;
  s.post(Duration::micros(1), [&] { fired = true; });  // reuses the slot
  s.cancel(first);  // stale generation: must not touch the new event
  EXPECT_EQ(s.pendingEvents(), 1u);
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, HeavyCancellationKeepsCountsExact) {
  Simulator s;
  std::vector<EventId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(s.schedule(Duration::micros(i % 997), [] {}));
  }
  // Cancel two thirds, some twice, to force compaction sweeps.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 3 != 0) s.cancel(ids[i]);
    if (i % 6 == 1) s.cancel(ids[i]);
  }
  EXPECT_EQ(s.pendingEvents(), 3334u);
  s.run();
  EXPECT_EQ(s.pendingEvents(), 0u);
  EXPECT_EQ(s.executedEvents(), 3334u);
}

TEST(Simulator, RunUntilNowWithPendingSameInstantEvents) {
  Simulator s;
  int fired = 0;
  s.post(Duration::zero(), [&] { ++fired; });
  s.post(Duration::zero(), [&] { ++fired; });
  s.post(Duration::micros(5), [&] { ++fired; });
  s.runUntil(s.now());  // zero-length window: runs the t=0 events only
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now().asMicros(), 0);
  s.runUntil(TimePoint{} + Duration::micros(5));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.now().asMicros(), 5);
}

TEST(Simulator, FifoPreservedAcrossWindowRebuilds) {
  // Schedule batches far enough apart that the calendar queue rebuilds
  // its window between them; FIFO within each instant must survive.
  Simulator s;
  std::vector<int> order;
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 7; ++i) {
      s.post(Duration::millis(batch * 100), [&order, batch, i] {
        order.push_back(batch * 7 + i);
      });
    }
  }
  s.run();
  ASSERT_EQ(order.size(), 35u);
  for (int i = 0; i < 35; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventFn, OversizedCaptureFallsBackToHeap) {
  // 64 bytes of capture exceeds EventFn's 48-byte inline budget; the
  // callable must still work (via the owning-pointer fallback).
  Simulator s;
  std::array<std::uint64_t, 8> payload{};
  payload.fill(41);
  std::uint64_t seen = 0;
  s.post(Duration::micros(1),
             [payload, &seen] { seen = payload[7] + 1; });
  s.run();
  EXPECT_EQ(seen, 42u);
}

TEST(EventFn, MoveOnlyCaptureWorks) {
  Simulator s;
  auto owned = std::make_unique<int>(7);
  int seen = 0;
  s.post(Duration::micros(1),
             [p = std::move(owned), &seen] { seen = *p; });
  s.run();
  EXPECT_EQ(seen, 7);
}

TEST(Timer, ArmAndFire) {
  Simulator s;
  Timer t{s};
  bool fired = false;
  t.arm(Duration::micros(10), [&] { fired = true; });
  EXPECT_TRUE(t.pending());
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RearmCancelsPrevious) {
  Simulator s;
  Timer t{s};
  int which = 0;
  t.arm(Duration::micros(10), [&] { which = 1; });
  t.arm(Duration::micros(20), [&] { which = 2; });
  s.run();
  EXPECT_EQ(which, 2);
  EXPECT_EQ(s.now().asMicros(), 20);
}

TEST(Timer, CancelStopsFire) {
  Simulator s;
  Timer t{s};
  bool fired = false;
  t.arm(Duration::micros(10), [&] { fired = true; });
  t.cancel();
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, CallbackMayRearm) {
  Simulator s;
  Timer t{s};
  int count = 0;
  std::function<void()> fn = [&] {
    if (++count < 3) t.arm(Duration::micros(10), fn);
  };
  t.arm(Duration::micros(10), fn);
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.now().asMicros(), 30);
}

TEST(Timer, DestructionCancels) {
  Simulator s;
  bool fired = false;
  {
    Timer t{s};
    t.arm(Duration::micros(10), [&] { fired = true; });
  }
  s.run();
  EXPECT_FALSE(fired);
}

TEST(PeriodicTimer, FiresAtFixedInterval) {
  Simulator s;
  PeriodicTimer p{s};
  std::vector<std::int64_t> times;
  p.start(Duration::micros(100), [&] {
    times.push_back(s.now().asMicros());
    if (times.size() == 3) p.stop();
  });
  s.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{100, 200, 300}));
}

TEST(PeriodicTimer, InitialDelayDiffersFromPeriod) {
  Simulator s;
  PeriodicTimer p{s};
  std::vector<std::int64_t> times;
  p.start(Duration::micros(5), Duration::micros(100), [&] {
    times.push_back(s.now().asMicros());
    if (times.size() == 2) p.stop();
  });
  s.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{5, 105}));
}

}  // namespace
}  // namespace maxmin::sim
