// Fixture: wall-clock reads inside a simulation subsystem must fire
// [wall-clock] — each of these makes a run depend on the host clock.
#include <chrono>
#include <ctime>

namespace fixture {

double stalenessSeconds() {
  const auto wall = std::chrono::system_clock::now();
  (void)wall;
  return static_cast<double>(std::time(nullptr));
}

}  // namespace fixture
