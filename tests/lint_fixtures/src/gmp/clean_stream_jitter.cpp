// Fixture: jitter drawn from a position-independent named stream stays
// silent, as does an identifier that merely contains "fork" (forkLift).
namespace fixture {

struct Rng {
  Rng stream(const char* name, int index = 0) const {
    return Rng{seed + index + (name != nullptr ? 1 : 0)};
  }
  double uniformReal(double lo, double hi) const { return lo + hi + seed; }
  int seed = 0;
};

double backoffJitter(int seed) {
  Rng rng = Rng{seed}.stream("dissemination");
  const int forkLift = 2;
  return rng.uniformReal(0.0, 0.5) * forkLift;
}

}  // namespace fixture
