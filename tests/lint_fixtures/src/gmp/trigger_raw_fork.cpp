// Fixture: a fork() draw outside the frozen bring-up order must fire
// [raw-fork] — inserting it would reseed every later fork() child.
namespace fixture {

struct Rng {
  Rng fork() { return Rng{}; }
  double uniformReal(double lo, double hi) { return lo + hi; }
};

double backoffJitter(Rng& parent) {
  Rng child = parent.fork();
  return child.uniformReal(0.0, 0.5);
}

}  // namespace fixture
