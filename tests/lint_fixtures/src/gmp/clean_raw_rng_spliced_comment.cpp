// Fixture: a line comment ending in a backslash splices onto the next
// physical line — phase-2 splicing runs before comment recognition, so
// the continuation is still comment. The old stripper treated it as
// code and produced phantom findings. Both lines below are comment: \
std::mt19937 stillInsideTheComment; system_clock too;
#include <cstdint>

namespace maxmin::gmp {

inline std::int64_t nothingRandomHere() { return 7; }

}  // namespace maxmin::gmp
