// Fixture: simulation time via the kernel clock stays silent, as do
// identifiers that merely contain banned substrings (holdStateTimeout,
// periodSeconds) and comments naming system_clock.
namespace fixture {

struct Simulator {
  long now() const { return now_; }
  long now_ = 0;
};

// Measurement windows close on Simulator::now(), never system_clock.
double windowSeconds(const Simulator& sim, long start) {
  const long holdStateTimeout = 7;
  return static_cast<double>(sim.now() - start + holdStateTimeout);
}

}  // namespace fixture
