// Fixture: control bytes spelled escaped stay plain text: \u0000 and
// \x07 are fine in comments and literals; tabs	are ordinary
// whitespace and must not fire the rule.
namespace maxmin::analysis {
inline const char* escapedNul() { return "\u0000 spelled out"; }
}  // namespace maxmin::analysis
