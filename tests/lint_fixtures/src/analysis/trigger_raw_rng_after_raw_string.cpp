// Fixture: the scanner must resync exactly at the end of a raw string —
// a real violation *after* one (embedded quotes and all) still fires.
// Pins the failure mode where a desynced stripper blanks trailing code.
#include <random>
#include <string>

namespace maxmin::analysis {

inline int drawBadly() {
  std::string decoy = R"(contains " a quote and rand() text)";
  std::mt19937 gen{42};  // real violation, must be seen as code
  return static_cast<int>(gen() + decoy.size());
}

}  // namespace maxmin::analysis
