// Fixture: std::map outside the hot-path scope (src/analysis is the
// offline report plane) is allowed without any pragma.
#pragma once

#include <map>
#include <string>

namespace fixture {

struct Report {
  std::map<std::string, double> metrics;  // sorted for stable CSV output
};

}  // namespace fixture
