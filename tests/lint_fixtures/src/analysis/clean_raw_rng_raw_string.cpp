// Fixture: raw string literals are literals. The old regex stripper
// ended the "string" at the first embedded quote and then read the rest
// of the literal as code — a documentation snippet mentioning a banned
// primitive inside R"(...)" produced a phantom finding. The shared
// scanner must blank raw-string contents up to the matching delimiter.
#include <string>

namespace maxmin::analysis {

inline std::string lintDocs() {
  // Embedded quote *and* banned spellings, all inert:
  std::string doc = R"(never write "std::mt19937 gen;" or rand() here)";
  std::string custom = R"gen(std::random_device also stays text)gen";
  return doc + custom;
}

}  // namespace maxmin::analysis
