// Fixture: construction-time geometry is the sanctioned exception. A
// one-off sanity probe while building per-node tables runs once per
// topology, not once per frame, so an allow() pragma keeps it clean.
#include "topology/topology.hpp"

namespace maxmin::phys {

int countSensedPeersAtConstruction(const topo::Topology& topo,
                                   topo::NodeId node) {
  int sensed = 0;
  for (topo::NodeId peer = 0; peer < topo.numNodes(); ++peer) {
    // maxmin-lint: allow(per-frame-distance) construction-time table build
    if (topo.inCsRange(node, peer)) ++sensed;
  }
  return sensed;
}

}  // namespace maxmin::phys
