// Fixture: a genuine report/wire type may keep an ordered set in a hot
// header when it opts out with a reasoned pragma — the suppression is
// the documented escape hatch, and it must actually suppress.
#pragma once

#include <cstdint>
#include <set>

namespace maxmin::phys {

struct CorruptionReport {
  // Report-only: filled once at window close, read in key order by the
  // CSV writer; never touched on the per-frame path.
  // maxmin-lint: allow(hot-map) wire-format report, sorted by contract
  std::set<std::int64_t> corruptedFrameIds;
};

}  // namespace maxmin::phys
