// Fixture: per-frame geometry queries inside the frame pipeline. Both a
// distanceBetween() range compare and an inCsRange() membership probe on
// the per-frame path must fire [per-frame-distance] — the pipeline reads
// the packed adjacency rows built at construction instead.
#include "topology/topology.hpp"

namespace maxmin::phys {

bool frameReachesReceiver(const topo::Topology& topo, topo::NodeId tx,
                          topo::NodeId rx) {
  return topo.distanceBetween(tx, rx) <= topo.ranges().txRange;
}

bool frameCorruptsReception(const topo::Topology& topo, topo::NodeId tx,
                            topo::NodeId rx) {
  return topo.inCsRange(tx, rx);
}

}  // namespace maxmin::phys
