// Fixture: raw std::chrono in analysis/experiment code must fire
// [chrono-outside-obs] — wall time is read via obs::Profiler::wallNanos().
#include <chrono>

namespace maxmin::exp {

double elapsedSeconds() {
  const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace maxmin::exp
