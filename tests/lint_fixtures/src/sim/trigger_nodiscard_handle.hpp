// Fixture: a handle-returning API without [[nodiscard]] must fire
// [nodiscard-handle] — a dropped EventId is an uncancellable event.
#pragma once

#include <cstdint>

namespace fixture {

using EventId = std::uint64_t;

class Scheduler {
 public:
  EventId schedule(long delayUs);
  static constexpr EventId makeId(std::uint32_t slot) { return slot; }
};

}  // namespace fixture
