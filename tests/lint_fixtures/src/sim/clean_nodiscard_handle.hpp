// Fixture: [[nodiscard]] handle APIs stay silent, whether the attribute
// is on the same line or the line above; EventId parameters and members
// are not declarations and never fire.
#pragma once

#include <cstdint>

namespace fixture {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  [[nodiscard]] EventId schedule(long delayUs);

  [[nodiscard]]
  EventId scheduleAt(long whenUs);

  void cancel(EventId id);

 private:
  EventId pending_ = kInvalidEventId;
};

}  // namespace fixture
