// Fixture: the hot-map rule also rejects std::set / std::multiset /
// std::multimap in hot-path headers — same node-based pointer chase per
// lookup as std::map, same fix (hash + sort at report time).
#pragma once

#include <cstdint>
#include <set>
#include <map>
#include <utility>

namespace maxmin::sim {

struct PendingCuts {
  std::set<std::pair<std::int32_t, std::int32_t>> links;
  std::multiset<std::int32_t> repeats;
  std::multimap<std::int32_t, std::int32_t> byNode;
};

}  // namespace maxmin::sim
