// Fixture: std::function in the DES kernel must fire [event-fn].
#pragma once

#include <functional>

namespace fixture {

struct Timer {
  std::function<void()> callback;
};

}  // namespace fixture
