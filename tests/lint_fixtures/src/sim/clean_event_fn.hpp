// Fixture: sim::EventFn callbacks stay silent; so does a comment
// explaining why std::function is banned (48 B inline budget).
#pragma once

namespace fixture {

class EventFn;  // stand-in for sim::EventFn

struct Timer {
  // std::function would heap-allocate here; EventFn stores the capture
  // inline, which is exactly why the kernel requires it.
  EventFn* callback = nullptr;
};

}  // namespace fixture
