// Fixture: randomness drawn through maxmin::Rng must stay silent, and a
// comment naming std::mt19937 or rand() must not fire either (the lint
// strips comments before matching).
#pragma once

namespace fixture {

class Rng;  // stand-in for maxmin::Rng

inline double jitter(Rng& rng);  // draws from a named stream, not rand()

// The underlying engine is a std::mt19937_64 owned by util/rng.hpp; that
// mention is documentation, not a violation. Identifiers that merely
// contain the substring (operand, uniformRandom) are fine too.
inline int operand(int uniformRandomIndex) { return uniformRandomIndex; }

}  // namespace fixture
