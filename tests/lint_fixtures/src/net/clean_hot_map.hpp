// Fixture: unordered_map on the hot path stays silent; a genuine
// report-time std::map opts out with the allow pragma.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

namespace fixture {

struct PerFlowState {
  std::unordered_map<std::int64_t, std::int64_t> lastSeqAccepted;

  /// Report rows are consumed in flow-id order by the control plane.
  // maxmin-lint: allow(hot-map) sorted report type, filled once per period
  std::map<std::int64_t, double> reportRates;
};

}  // namespace fixture
