// Fixture: a raw engine and a C-library call must both fire [raw-rng].
#pragma once

#include <cstdlib>
#include <random>

namespace fixture {

inline int rollInitiative() {
  std::mt19937 engine{std::random_device{}()};
  return static_cast<int>(engine() % 6u) + rand() % 6;
}

}  // namespace fixture
