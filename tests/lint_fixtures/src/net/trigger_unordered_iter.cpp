// Fixture: iterating an unordered_map while writing a trace stream bakes
// hash-order into output that must be a pure function of the seed — the
// exact bug class the PR 3 sweep fixed by hand at report sites.
#include <ostream>
#include <unordered_map>

namespace maxmin::net {

struct WindowReport {
  std::unordered_map<int, double> flowRate_;
  double meanRate_ = 0.0;

  void dump(std::ostream& os) const {
    for (const auto& [flow, rate] : flowRate_) {
      os << flow << "," << rate << "\n";
    }
  }

  void summarize() {
    for (const auto& [flow, rate] : flowRate_) {
      meanRate_ += rate;  // float accumulation in hash order
    }
  }
};

}  // namespace maxmin::net
