// Fixture: the sanctioned patterns stay silent — collect-then-sort
// snapshots (phys::FrameTrace::sortedLinkStats is the model) and writes
// into ordered containers keyed by the loop key are order-independent.
#include <algorithm>
#include <map>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

namespace maxmin::net {

struct WindowReport {
  std::unordered_map<int, double> flowRate_;

  // Sorted snapshot: push_back then sort before anything ordered happens.
  std::vector<std::pair<int, double>> sortedRates() const {
    std::vector<std::pair<int, double>> out;
    out.reserve(flowRate_.size());
    for (const auto& [flow, rate] : flowRate_) {
      out.push_back({flow, rate});
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // Re-keying into an ordered map is order-independent by construction.
  std::map<int, double> asOrdered() const {
    std::map<int, double> out;
    for (const auto& [flow, rate] : flowRate_) {
      out.emplace(flow, rate);
    }
    return out;
  }

  void render(std::ostream& os) const {
    for (const auto& [flow, rate] : sortedRates()) {
      os << flow << "," << rate << "\n";
    }
  }
};

}  // namespace maxmin::net
