// Fixture: std::map members in a hot-path header must fire [hot-map].
#pragma once

#include <cstdint>
#include <map>

namespace fixture {

struct PerFlowState {
  std::map<std::int64_t, std::int64_t> lastSeqAccepted;
  std::multimap<std::int64_t, double> samples;
};

}  // namespace fixture
