// Fixture: src/obs/ is the one home of std::chrono — the profiler's
// wallNanos() read lives there, so the rule must stay silent here.
#include <chrono>

namespace maxmin::obs {

long long fixtureWallNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace maxmin::obs
