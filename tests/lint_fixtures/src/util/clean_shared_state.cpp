// Fixture: the shared-state rule only bites *mutable* statics. Immutable
// statics (constexpr/const), static member functions, and file-local
// static functions are not shared mutable state and stay silent.
#include <cstdint>
#include <vector>

namespace maxmin {
namespace {

static constexpr std::int64_t kWindowBits = 12;
static const char* const kStageName = "measure";

static std::vector<int> doubled(const std::vector<int>& in) {
  std::vector<int> out;
  out.reserve(in.size());
  for (int v : in) out.push_back(v * 2);
  return out;
}

}  // namespace

struct Codec {
  static std::int64_t decode(std::int64_t raw) { return raw >> kWindowBits; }
};

std::int64_t useAll(const std::vector<int>& in) {
  return Codec::decode(static_cast<std::int64_t>(doubled(in).size())) +
         static_cast<std::int64_t>(kStageName[0]);
}

}  // namespace maxmin
