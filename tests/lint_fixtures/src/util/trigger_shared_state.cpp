// Fixture: a mutable static that nobody wrote into the audited
// inventory (tools/lint/shared_state.toml) must fail repo_lint — this is
// the race-readiness audit the sharded-PDES work leans on: no region
// worker may ever meet process-global state the team never saw.
#include <cstdint>

namespace maxmin {
namespace {

std::int64_t& hiddenCounterRef() {
  static std::int64_t hiddenCounter = 0;  // unmanifested mutable static
  return hiddenCounter;
}

}  // namespace

std::int64_t bumpHidden() { return ++hiddenCounterRef(); }

}  // namespace maxmin
