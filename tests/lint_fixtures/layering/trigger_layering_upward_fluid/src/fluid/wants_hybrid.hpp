// Synthetic upward include: fluid (rank 8) reaching into hybrid (rank
// 9) is the inversion the hybrid layering exists to refuse — the fluid
// solver must stay couplable without the coupling layer.
#pragma once
#include "hybrid/top.hpp"
inline int fluidValue() { return hybridValue(); }
