#pragma once
inline int hybridValue() { return 9; }
