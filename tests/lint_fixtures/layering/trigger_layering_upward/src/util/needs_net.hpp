// Synthetic upward include: util (rank 0) reaching into net (rank 6) is
// the dependency inversion the layering rule exists to refuse.
#pragma once
#include "net/top.hpp"
inline int utilValue() { return netValue(); }
