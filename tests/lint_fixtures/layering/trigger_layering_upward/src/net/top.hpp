#pragma once
inline int netValue() { return 6; }
