// Synthetic cycle member: a -> b (same module, so only the cycle check
// can catch it — rank comparison is silent intra-module).
#pragma once
#include "topology/b.hpp"
inline int aValue() { return bValue() + 1; }
