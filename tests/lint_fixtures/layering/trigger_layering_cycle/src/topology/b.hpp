// Synthetic cycle member: b -> a closes the loop.
#pragma once
#include "topology/a.hpp"
inline int bValue() { return aValue() - 1; }
