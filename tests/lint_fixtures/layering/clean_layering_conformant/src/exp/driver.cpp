// Top-rank peers (exp -> analysis) are legal as long as the file graph
// stays acyclic.
#include "analysis/report.hpp"
#include "net/mid.hpp"
int main() { return reportValue() + midValue(); }
