#pragma once
inline int midDetail() { return 1; }
