// Downward include (net -> util) plus an intra-module sibling: the
// legal shapes. Commented-out includes must not add edges:
// #include "gmp/controller.hpp"
#pragma once
#include "net/mid_detail.hpp"
#include "util/base.hpp"
inline int midValue() { return baseValue() + midDetail(); }
