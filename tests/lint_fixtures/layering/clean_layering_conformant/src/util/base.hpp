#pragma once
inline int baseValue() { return 0; }
