#pragma once
#include "net/mid.hpp"
inline int reportValue() { return midValue() * 2; }
