#pragma once
inline int solverValue() { return 8; }
