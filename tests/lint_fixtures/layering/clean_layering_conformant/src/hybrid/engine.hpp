// hybrid (rank 9) over fluid (rank 8) and net (rank 6): the legal
// direction of the fluid/packet coupling.
#pragma once
#include "fluid/solver.hpp"
#include "net/mid.hpp"
inline int engineValue() { return solverValue() + midValue(); }
