#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "analysis/maxmin_solver.hpp"
#include "fluid/fluid_gmp.hpp"
#include "fluid/fluid_network.hpp"
#include "scenarios/scenarios.hpp"

namespace maxmin::fluid {
namespace {

constexpr double kCapacity = 580.0;

net::FlowSpec flow(net::FlowId id, topo::NodeId src, topo::NodeId dst,
                   double weight = 1.0, double desired = 800.0) {
  net::FlowSpec f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.weight = weight;
  f.desiredRate = PacketRate::perSecond(desired);
  return f;
}

topo::Topology chainTopo(int n) {
  std::vector<topo::Point> pts;
  for (int i = 0; i < n; ++i) pts.push_back({200.0 * i, 0.0});
  return topo::Topology::fromPositions(std::move(pts));
}

TEST(FluidNetwork, UnconstrainedFlowRunsAtOfferedRate) {
  FluidNetwork net{chainTopo(2), {flow(0, 0, 1, 1.0, 100.0)}, kCapacity};
  const auto state = net.evaluate();
  EXPECT_NEAR(state.rates.at(0), 100.0, 1e-9);
  EXPECT_TRUE(state.saturated.empty());
  EXPECT_NEAR(state.occupancy.at({0, 1}), 100.0 / kCapacity, 1e-9);
}

TEST(FluidNetwork, RateLimitApplies) {
  FluidNetwork net{chainTopo(2), {flow(0, 0, 1)}, kCapacity};
  net.setRateLimit(0, 50.0);
  EXPECT_NEAR(net.evaluate().rates.at(0), 50.0, 1e-9);
  net.setRateLimit(0, std::nullopt);
  EXPECT_NEAR(net.evaluate().rates.at(0), kCapacity, 1e-6);
}

TEST(FluidNetwork, SingleCliqueSharesProportionally) {
  // Two single-hop flows in one clique offering 800 each: the scaler
  // splits capacity in proportion to demand (equal here).
  FluidNetwork net{chainTopo(3), {flow(0, 0, 1), flow(1, 1, 2)}, kCapacity};
  const auto state = net.evaluate();
  EXPECT_NEAR(state.rates.at(0), kCapacity / 2, 1e-6);
  EXPECT_NEAR(state.rates.at(1), kCapacity / 2, 1e-6);
}

TEST(FluidNetwork, MultihopFlowConsumesPerHopAirtime) {
  // One 3-hop flow in a single clique: rate = capacity / 3.
  FluidNetwork net{chainTopo(4), {flow(0, 0, 3)}, kCapacity};
  EXPECT_NEAR(net.evaluate().rates.at(0), kCapacity / 3, 1e-6);
}

TEST(FluidNetwork, BackpressureChainMarksSaturation) {
  FluidNetwork net{chainTopo(4), {flow(0, 0, 3)}, kCapacity};
  const auto state = net.evaluate();
  // The flow is constrained; its source is saturated.
  EXPECT_TRUE(state.saturated.contains({0, 3}));
  EXPECT_TRUE(state.saturated.at({0, 3}));
}

TEST(FluidNetwork, CliqueLoadsAreFeasibleAfterScaling) {
  const auto sc = scenarios::fig4();
  FluidNetwork net{sc.topology, sc.flows, kCapacity};
  const auto state = net.evaluate();
  // Check feasibility through the reference model.
  const auto model =
      analysis::buildCliqueModel(sc.topology, sc.flows, kCapacity);
  EXPECT_TRUE(analysis::isFeasible(model, state.rates, 1e-3));
}

// --- FluidGmpHarness ---------------------------------------------------------

TEST(FluidGmp, ConvergesToEqualityOnFig3) {
  const auto sc = scenarios::fig3();
  FluidNetwork net{sc.topology, sc.flows, kCapacity};
  FluidGmpHarness harness{net, gmp::GmpParams{}};
  const auto rates = harness.run(120);
  // Maxmin on the chain: all three flows equal at capacity/6.
  const double expected = kCapacity / 6.0;
  for (const auto& [id, r] : rates) {
    EXPECT_NEAR(r, expected, expected * 0.25) << "flow " << id;
  }
  // Violations must have died out.
  const auto& hist = harness.violationHistory();
  const int tail = std::accumulate(hist.end() - 10, hist.end(), 0);
  EXPECT_LE(tail, 4);
}

TEST(FluidGmp, Fig2EqualWeightsShape) {
  const auto sc = scenarios::fig2();
  FluidNetwork net{sc.topology, sc.flows, kCapacity};
  FluidGmpHarness harness{net, gmp::GmpParams{}};
  const auto rates = harness.run(150);
  // Paper Table 1 shape: f2 ~ f3 ~ f4, f1 clearly larger.
  EXPECT_GT(rates.at(0), 1.5 * rates.at(1));
  EXPECT_NEAR(rates.at(2), rates.at(1), rates.at(1) * 0.3);
  EXPECT_NEAR(rates.at(3), rates.at(1), rates.at(1) * 0.3);
}

TEST(FluidGmp, Fig2WeightedShape) {
  const auto sc = scenarios::fig2({1, 2, 1, 3});
  FluidNetwork net{sc.topology, sc.flows, kCapacity};
  FluidGmpHarness harness{net, gmp::GmpParams{}};
  const auto rates = harness.run(150);
  // Normalized rates of the clique-1 flows approximately equal.
  const double mu2 = rates.at(1) / 2.0;
  const double mu3 = rates.at(2) / 1.0;
  const double mu4 = rates.at(3) / 3.0;
  EXPECT_NEAR(mu3, mu2, mu2 * 0.35);
  EXPECT_NEAR(mu4, mu2, mu2 * 0.35);
  // f1 opportunistically exceeds its weight share.
  EXPECT_GT(rates.at(0), rates.at(1));
}

/// Property: on random meshes, the engine driven by the fluid substrate
/// converges to rates close to the centralized weighted maxmin solution.
class FluidGmpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FluidGmpPropertyTest, ConvergesNearCentralizedMaxmin) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto sc = scenarios::randomMesh(seed, 10, 900.0, 4);
  FluidNetwork net{sc.topology, sc.flows, kCapacity};
  FluidGmpHarness harness{net, gmp::GmpParams{}};
  const auto rates = harness.run(250);

  const auto model =
      analysis::buildCliqueModel(sc.topology, sc.flows, kCapacity);
  const auto reference = analysis::solveWeightedMaxmin(model);

  // Feasibility of the converged point (fluid scaling enforces it).
  EXPECT_TRUE(analysis::isFeasible(model, rates, 1.0));

  // The smallest normalized rate is the maxmin-critical quantity; GMP
  // must bring it close to the reference's smallest normalized rate.
  auto minMu = [&](const std::map<net::FlowId, double>& rs) {
    double v = std::numeric_limits<double>::infinity();
    for (const net::FlowSpec& f : sc.flows) {
      v = std::min(v, rs.at(f.id) / f.weight);
    }
    return v;
  };
  EXPECT_GT(minMu(rates), 0.55 * minMu(reference))
      << "seed " << seed << ": GMP starved a flow the reference sustains";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidGmpPropertyTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace maxmin::fluid
