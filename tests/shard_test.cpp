// Bit-identity of the sharded PDES runtime (DESIGN.md §15) on the three
// boundary shapes most likely to break it:
//
//  * a transmission whose carrier-sense footprint spans three shards
//    (sender in a middle strip with cs-neighbors in both adjacent
//    strips), so one export must be replayed by two importing lanes;
//  * an end-to-end flow whose source and sink live in different shards,
//    so every delivery depends on cross-lane event ordering;
//  * a fault-plane link cut whose endpoints straddle a shard boundary,
//    exercising the serial control barrier mid-run.
//
// Each case demands byte-for-byte equality between `shards = K` and
// `shards = 1` — same deliveries, same latency accumulators to the last
// bit, same medium counters. "Close enough" is a failure: the whole
// design argument is that canonical (when, seq) keys make the partition
// invisible.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "baselines/configs.hpp"
#include "net/network.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/fault_plane.hpp"
#include "topology/shard_map.hpp"
#include "topology/topology.hpp"

namespace maxmin {
namespace {

/// Everything a run can observably produce, collected exactly. Two runs
/// are "bit-identical" for our purposes iff their fingerprints compare
/// equal with == on every field, doubles included.
struct Fingerprint {
  // maxmin-lint: allow(hot-map) test report type, built once per run
  std::map<net::FlowId, std::int64_t> delivered;
  // maxmin-lint: allow(hot-map) test report type, built once per run
  std::map<net::FlowId, std::pair<std::int64_t, double>> latency;
  std::uint64_t framesDelivered = 0;
  std::uint64_t framesCorrupted = 0;
  std::uint64_t framesSuppressed = 0;
  std::int64_t queueDrops = 0;
  std::int64_t crashDrops = 0;
  std::int64_t deadNeighborDrops = 0;
};

Fingerprint collect(net::Network& net, const std::vector<net::FlowSpec>& flows) {
  Fingerprint fp;
  for (const net::FlowSpec& f : flows) {
    fp.delivered[f.id] = net.delivered(f.id);
    const RunningStats& lat = net.latencyStats(f.id);
    fp.latency[f.id] = {lat.count(), lat.sum()};
  }
  fp.framesDelivered = net.framesDelivered();
  fp.framesCorrupted = net.framesCorrupted();
  fp.framesSuppressed = net.framesSuppressed();
  fp.queueDrops = net.totalQueueDrops();
  fp.crashDrops = net.totalCrashDrops();
  fp.deadNeighborDrops = net.totalDeadNeighborDrops();
  return fp;
}

void expectIdentical(const Fingerprint& a, const Fingerprint& b,
                     const char* what) {
  EXPECT_EQ(a.delivered, b.delivered) << what;
  for (const auto& [id, lat] : a.latency) {
    const auto& other = b.latency.at(id);
    EXPECT_EQ(lat.first, other.first) << what << " flow " << id;
    EXPECT_EQ(lat.second, other.second)
        << what << " flow " << id << ": latency sum differs in the bits";
  }
  EXPECT_EQ(a.framesDelivered, b.framesDelivered) << what;
  EXPECT_EQ(a.framesCorrupted, b.framesCorrupted) << what;
  EXPECT_EQ(a.framesSuppressed, b.framesSuppressed) << what;
  EXPECT_EQ(a.queueDrops, b.queueDrops) << what;
  EXPECT_EQ(a.crashDrops, b.crashDrops) << what;
  EXPECT_EQ(a.deadNeighborDrops, b.deadNeighborDrops) << what;
}

Fingerprint runOnce(const scenarios::Scenario& sc, int shards,
                    const sim::FaultScript* faults = nullptr,
                    double seconds = 8.0) {
  net::NetworkConfig cfg = baselines::config80211({});
  cfg.seed = 42;
  cfg.shards = shards;
  net::Network net{sc.topology, cfg, sc.flows};
  if (faults != nullptr) net.enableFaults(*faults);
  net.run(Duration::seconds(seconds));
  return collect(net, sc.flows);
}

/// 11-node chain, 200 m spacing, x-extent 2000 m: four 550 m grid
/// columns, enough for three genuine strips. Bidirectional end-to-end
/// flows keep every boundary busy in both directions.
scenarios::Scenario wideChain() {
  scenarios::Scenario sc = scenarios::chain(11, 200.0);
  net::FlowSpec back;
  back.id = 2;
  back.src = 10;
  back.dst = 0;
  back.name = "back";
  sc.flows.push_back(back);
  return sc;
}

TEST(ShardTest, CsFootprintSpanningThreeShardsIsBitIdentical) {
  const scenarios::Scenario sc = wideChain();
  const topo::ShardPlan plan = topo::makeShardPlan(sc.topology, 3);
  ASSERT_EQ(plan.numShards, 3) << "chain too narrow to carve three strips";

  // The case under test must actually occur: some node's cs-footprint
  // must cover nodes in two strips other than its own, so one physical
  // transmission is exported to both adjacent lanes.
  bool threeStripFootprint = false;
  for (topo::NodeId n = 0; n < sc.topology.numNodes() && !threeStripFootprint;
       ++n) {
    bool left = false;
    bool right = false;
    for (topo::NodeId m = 0; m < sc.topology.numNodes(); ++m) {
      if (!sc.topology.inCsRange(n, m)) continue;
      if (plan.shard(m) < plan.shard(n)) left = true;
      if (plan.shard(m) > plan.shard(n)) right = true;
    }
    threeStripFootprint = left && right;
  }
  ASSERT_TRUE(threeStripFootprint)
      << "geometry regression: no transmission spans three strips";

  const Fingerprint serial = runOnce(sc, 1);
  const Fingerprint sharded = runOnce(sc, 3);
  expectIdentical(serial, sharded, "three-strip footprint, shards 3 vs 1");

  // Sanity: some deliveries happened, so equality is not vacuous.
  std::int64_t total = 0;
  for (const auto& [id, n] : serial.delivered) total += n;
  EXPECT_GT(total, 0);
}

TEST(ShardTest, CrossShardFlowIsBitIdentical) {
  // Random mesh wide enough for two strips, from the first seed in a
  // fixed range whose sampled flows include one crossing the boundary.
  // The search is deterministic, so every run compares the same mesh.
  std::optional<scenarios::Scenario> found;
  for (std::uint64_t seed = 9001; seed < 9033 && !found; ++seed) {
    scenarios::Scenario sc = scenarios::randomMesh(seed, 36, 1800.0, 6);
    const topo::ShardPlan plan = topo::makeShardPlan(sc.topology, 2);
    if (plan.numShards < 2) continue;
    for (const net::FlowSpec& f : sc.flows) {
      if (plan.shard(f.src) != plan.shard(f.dst)) {
        found = std::move(sc);
        break;
      }
    }
  }
  ASSERT_TRUE(found.has_value())
      << "seed regression: no sampled flow crosses a strip boundary";
  const scenarios::Scenario& sc = *found;

  const Fingerprint serial = runOnce(sc, 1);
  expectIdentical(serial, runOnce(sc, 2), "cross-shard flow, shards 2 vs 1");
  expectIdentical(serial, runOnce(sc, 8), "cross-shard flow, shards 8 vs 1");
}

TEST(ShardTest, BoundaryCrossingLinkCutIsBitIdentical) {
  const scenarios::Scenario sc = wideChain();
  const topo::ShardPlan plan = topo::makeShardPlan(sc.topology, 3);
  ASSERT_EQ(plan.numShards, 3);

  // Cut a chain link whose endpoints live in different strips, mid-run,
  // and restore it later. The cut severs both end-to-end flows; the
  // restore lets traffic resume, so both transitions are load-bearing.
  topo::NodeId a = topo::kNoNode;
  topo::NodeId b = topo::kNoNode;
  for (topo::NodeId n = 0; n + 1 < sc.topology.numNodes(); ++n) {
    if (plan.shard(n) != plan.shard(n + 1)) {
      a = n;
      b = n + 1;
      break;
    }
  }
  ASSERT_NE(a, topo::kNoNode) << "no chain link crosses a strip boundary";

  sim::FaultScript script;
  sim::FaultEvent down;
  down.at = TimePoint{} + Duration::seconds(3.0);
  down.kind = sim::FaultEvent::Kind::kLinkDown;
  down.node = a;
  down.peer = b;
  script.events.push_back(down);
  sim::FaultEvent up = down;
  up.at = TimePoint{} + Duration::seconds(6.0);
  up.kind = sim::FaultEvent::Kind::kLinkUp;
  script.events.push_back(up);

  const Fingerprint serial = runOnce(sc, 1, &script, 9.0);
  const Fingerprint sharded = runOnce(sc, 3, &script, 9.0);
  expectIdentical(serial, sharded, "boundary link cut, shards 3 vs 1");
  EXPECT_GT(serial.framesSuppressed, 0u)
      << "the cut never suppressed a frame — fault plane inactive?";
}

}  // namespace
}  // namespace maxmin
