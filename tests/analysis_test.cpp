#include <gtest/gtest.h>

#include <cmath>

#include "analysis/convergence.hpp"
#include "analysis/maxmin_solver.hpp"
#include "analysis/metrics.hpp"
#include "scenarios/scenarios.hpp"
#include "util/rng.hpp"

namespace maxmin::analysis {
namespace {

constexpr double kCapacity = 580.0;

TEST(Metrics, SummarizeComputesPaperIndices) {
  // Paper Table 3, 802.11 column.
  const std::map<net::FlowId, double> rates{{0, 80.63}, {1, 220.07},
                                            {2, 174.09}};
  const std::map<net::FlowId, int> hops{{0, 3}, {1, 2}, {2, 1}};
  const auto s = summarize(rates, hops);
  EXPECT_NEAR(s.effectiveThroughputPps, 856.12, 0.05);
  EXPECT_NEAR(s.imm, 80.63 / 220.07, 1e-9);
  EXPECT_NEAR(s.ieq, 0.882, 0.001);
  EXPECT_NEAR(s.totalRatePps, 474.79, 1e-6);
}

TEST(Metrics, NormalizedSummaryDividesByWeights) {
  const std::map<net::FlowId, double> rates{{0, 200.0}, {1, 100.0}};
  const std::map<net::FlowId, double> weights{{0, 2.0}, {1, 1.0}};
  const std::map<net::FlowId, int> hops{{0, 1}, {1, 1}};
  const auto s = summarizeNormalized(rates, weights, hops);
  EXPECT_DOUBLE_EQ(s.imm, 1.0);  // both normalized to 100
  EXPECT_DOUBLE_EQ(s.ieq, 1.0);
}

TEST(MaxminSolver, SingleCliqueChainEqualizes) {
  const auto sc = scenarios::fig3();
  const auto model = buildCliqueModel(sc.topology, sc.flows, kCapacity);
  const auto rates = solveWeightedMaxmin(model);
  // One clique, traversals 3+2+1: equal rates capacity/6.
  for (const auto& [id, r] : rates) EXPECT_NEAR(r, kCapacity / 6, 1e-6);
  EXPECT_TRUE(satisfiesBottleneckCondition(model, rates));
}

TEST(MaxminSolver, Fig2MatchesHandComputation) {
  const auto sc = scenarios::fig2();
  const auto model = buildCliqueModel(sc.topology, sc.flows, kCapacity);
  const auto rates = solveWeightedMaxmin(model);
  // Clique 1 {(1,2),(3,4),(4,5)} splits capacity three ways; f1 takes the
  // rest of clique 0.
  EXPECT_NEAR(rates.at(1), kCapacity / 3, 1e-6);
  EXPECT_NEAR(rates.at(2), kCapacity / 3, 1e-6);
  EXPECT_NEAR(rates.at(3), kCapacity / 3, 1e-6);
  EXPECT_NEAR(rates.at(0), kCapacity - kCapacity / 3, 1e-6);
  EXPECT_TRUE(satisfiesBottleneckCondition(model, rates));
}

TEST(MaxminSolver, Fig2WeightedMatchesHandComputation) {
  const auto sc = scenarios::fig2({1, 2, 1, 3});
  const auto model = buildCliqueModel(sc.topology, sc.flows, kCapacity);
  const auto rates = solveWeightedMaxmin(model);
  // Clique 1 weights 2+1+3=6: mu = C/6.
  EXPECT_NEAR(rates.at(1), kCapacity / 6 * 2, 1e-6);
  EXPECT_NEAR(rates.at(2), kCapacity / 6 * 1, 1e-6);
  EXPECT_NEAR(rates.at(3), kCapacity / 6 * 3, 1e-6);
  // f1 fills clique 0 behind f2.
  EXPECT_NEAR(rates.at(0), kCapacity - kCapacity / 3, 1e-6);
  EXPECT_TRUE(satisfiesBottleneckCondition(model, rates));
}

TEST(MaxminSolver, DesiredRateCapsAllocation) {
  auto sc = scenarios::fig3();
  sc.flows[2].desiredRate = PacketRate::perSecond(20.0);
  const auto model = buildCliqueModel(sc.topology, sc.flows, kCapacity);
  const auto rates = solveWeightedMaxmin(model);
  EXPECT_NEAR(rates.at(2), 20.0, 1e-9);
  // Freed capacity goes to the others: 3a + 2a + 20 = C.
  EXPECT_NEAR(rates.at(0), (kCapacity - 20.0) / 5, 1e-6);
  EXPECT_NEAR(rates.at(1), (kCapacity - 20.0) / 5, 1e-6);
  EXPECT_TRUE(satisfiesBottleneckCondition(model, rates));
}

TEST(MaxminSolver, WeightScalingInvariance) {
  // Scaling every weight by the same constant must not change rates.
  const auto sc1 = scenarios::fig2({1, 2, 1, 3});
  const auto sc2 = scenarios::fig2({2, 4, 2, 6});
  const auto r1 = solveWeightedMaxmin(
      buildCliqueModel(sc1.topology, sc1.flows, kCapacity));
  const auto r2 = solveWeightedMaxmin(
      buildCliqueModel(sc2.topology, sc2.flows, kCapacity));
  for (const auto& [id, r] : r1) EXPECT_NEAR(r, r2.at(id), 1e-6);
}

TEST(MaxminSolver, BottleneckCheckRejectsNonMaxmin) {
  const auto sc = scenarios::fig3();
  const auto model = buildCliqueModel(sc.topology, sc.flows, kCapacity);
  // Feasible but not maxmin: one flow starved with spare capacity.
  std::map<net::FlowId, double> bad{{0, 10.0}, {1, 10.0}, {2, 10.0}};
  EXPECT_TRUE(isFeasible(model, bad));
  EXPECT_FALSE(satisfiesBottleneckCondition(model, bad));
  // Infeasible is rejected outright.
  std::map<net::FlowId, double> over{{0, 500.0}, {1, 500.0}, {2, 500.0}};
  EXPECT_FALSE(isFeasible(model, over));
  EXPECT_FALSE(satisfiesBottleneckCondition(model, over));
}

class MaxminPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxminPropertyTest, WaterfillSatisfiesMaxminCertificate) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto sc = scenarios::randomMesh(seed * 37 + 1, 12, 1000.0, 5);
  const auto model = buildCliqueModel(sc.topology, sc.flows, kCapacity);
  const auto rates = solveWeightedMaxmin(model);
  EXPECT_TRUE(isFeasible(model, rates, 1e-6)) << "seed " << seed;
  EXPECT_TRUE(satisfiesBottleneckCondition(model, rates, 1e-6))
      << "seed " << seed;
  for (const auto& [id, r] : rates) EXPECT_GT(r, 0.0);
}

TEST_P(MaxminPropertyTest, RaisingAnyFlowBreaksFeasibilityOrMaxmin) {
  // Exchange property probe: raising any non-demand-capped flow by 5%
  // while keeping everyone else must violate some clique.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto sc = scenarios::randomMesh(seed * 91 + 7, 10, 900.0, 4);
  const auto model = buildCliqueModel(sc.topology, sc.flows, kCapacity);
  const auto rates = solveWeightedMaxmin(model);
  for (const auto& fe : model.flows) {
    if (rates.at(fe.id) >= fe.desiredPps - 1e-6) continue;
    auto bumped = rates;
    bumped[fe.id] *= 1.05;
    EXPECT_FALSE(isFeasible(model, bumped, 1e-6))
        << "flow " << fe.id << " had headroom the solver left unused";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxminPropertyTest, ::testing::Range(1, 16));


// --- convergence analysis -----------------------------------------------------

RateHistory syntheticHistory() {
  // Flow 0 ramps 100 -> 200 over 10 periods then holds; flow 1 constant.
  RateHistory h;
  for (int p = 0; p < 30; ++p) {
    std::map<net::FlowId, double> rates;
    rates[0] = p < 10 ? 100.0 + 10.0 * p : 200.0;
    rates[1] = 50.0;
    h.push_back(rates);
  }
  return h;
}

TEST(Convergence, DetectsSettlingPeriod) {
  const auto report = analyzeConvergence(syntheticHistory(), 0.05, 10);
  EXPECT_NEAR(report.finalRates.at(0), 200.0, 1e-9);
  EXPECT_NEAR(report.finalRates.at(1), 50.0, 1e-9);
  // 5% band around 200: rates >= 190 enter the band at p=9 (190).
  EXPECT_EQ(report.convergedAtPeriod, 9);
  EXPECT_NEAR(report.tailOscillation, 0.0, 1e-12);
}

TEST(Convergence, OscillationMeasuredOverTail) {
  RateHistory h;
  for (int p = 0; p < 20; ++p) {
    std::map<net::FlowId, double> rates;
    rates[0] = p % 2 == 0 ? 90.0 : 110.0;  // +/-10% around 100
    h.push_back(rates);
  }
  const auto report = analyzeConvergence(h, 0.15, 10);
  EXPECT_NEAR(report.finalRates.at(0), 100.0, 1e-9);
  EXPECT_NEAR(report.tailOscillation, 0.2, 1e-9);  // peak-to-peak 20/100
  EXPECT_EQ(report.convergedAtPeriod, 0);          // inside the 15% band
}

TEST(Convergence, NeverSettlingReportsMinusOne) {
  RateHistory h;
  for (int p = 0; p < 20; ++p) {
    std::map<net::FlowId, double> rates;
    rates[0] = p % 2 == 0 ? 10.0 : 300.0;
    h.push_back(rates);
  }
  const auto report = analyzeConvergence(h, 0.15, 5);
  EXPECT_EQ(report.convergedAtPeriod, -1);
  EXPECT_GT(report.tailOscillation, 1.0);
}

TEST(Convergence, RejectsShortHistory) {
  RateHistory h(3, {{0, 1.0}});
  EXPECT_THROW(analyzeConvergence(h, 0.15, 10), InvariantViolation);
}

}  // namespace
}  // namespace maxmin::analysis

