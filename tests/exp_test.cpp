#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "exp/sweep.hpp"
#include "scenarios/scenarios.hpp"

namespace maxmin::exp {
namespace {

// Short runs keep the suite fast; determinism does not depend on length.
analysis::RunConfig quickConfig() {
  analysis::RunConfig cfg;
  cfg.protocol = analysis::Protocol::kGmp;
  cfg.duration = Duration::seconds(8.0);
  cfg.warmup = Duration::seconds(4.0);
  cfg.seed = 11;
  return cfg;
}

TEST(SeedGrid, EnumeratesSeedsInOrder) {
  const auto jobs = seedGrid(scenarios::fig3(), quickConfig(), 5);
  ASSERT_EQ(jobs.size(), 5u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].config.seed, 11u + i);
    EXPECT_EQ(jobs[i].label, "fig3/GMP/seed=" + std::to_string(11 + i));
    EXPECT_EQ(jobs[i].scenario.name, "fig3");
  }
}

TEST(SweepRunner, ParallelMatchesSerialExactly) {
  const auto jobs = seedGrid(scenarios::fig3(), quickConfig(), 8);
  const auto serial = SweepRunner{1}.runAll(jobs);
  const auto parallel = SweepRunner{4}.runAll(jobs);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    EXPECT_EQ(serial[i].label, parallel[i].label);
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    // Bit-identical, not approximately equal: each run is a pure function
    // of its config, so thread scheduling must not be observable.
    EXPECT_EQ(serial[i].result.summary.imm, parallel[i].result.summary.imm);
    EXPECT_EQ(serial[i].result.summary.ieq, parallel[i].result.summary.ieq);
    EXPECT_EQ(serial[i].result.summary.effectiveThroughputPps,
              parallel[i].result.summary.effectiveThroughputPps);
    ASSERT_EQ(serial[i].result.flows.size(), parallel[i].result.flows.size());
    for (std::size_t f = 0; f < serial[i].result.flows.size(); ++f) {
      EXPECT_EQ(serial[i].result.flows[f].ratePps,
                parallel[i].result.flows[f].ratePps);
    }
  }
}

TEST(SweepRunner, MoreWorkersThanJobsIsFine) {
  const auto jobs = seedGrid(scenarios::fig3(), quickConfig(), 2);
  const auto outcomes = SweepRunner{16}.runAll(jobs);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_TRUE(outcomes[1].ok);
}

TEST(SweepRunner, EmptyJobListYieldsEmptyResults) {
  EXPECT_TRUE(SweepRunner{4}.runAll({}).empty());
}

TEST(SweepRunner, ExceptionInOneRunIsCapturedNotFatal) {
  auto jobs = seedGrid(scenarios::fig3(), quickConfig(), 3);
  // A fault script naming a node the topology doesn't have makes
  // runScenario throw; the sweep must capture that and keep going.
  sim::FaultEvent bad;
  bad.at = TimePoint::origin() + Duration::seconds(1.0);
  bad.kind = sim::FaultEvent::Kind::kNodeDown;
  bad.node = 99;
  jobs[1].config.faults.events.push_back(bad);
  const auto outcomes = SweepRunner{2}.runAll(jobs);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_FALSE(outcomes[1].error.empty());
  EXPECT_TRUE(outcomes[2].ok);
  const auto summary = summarize(outcomes);
  EXPECT_EQ(summary.total, 3);
  EXPECT_EQ(summary.failed, 1);
  EXPECT_EQ(summary.imm.count(), 2);
}

TEST(SweepSummary, AggregatesAcrossRuns) {
  const auto jobs = seedGrid(scenarios::fig3(), quickConfig(), 4);
  const auto outcomes = SweepRunner{2}.runAll(jobs);
  const auto summary = summarize(outcomes);
  EXPECT_EQ(summary.total, 4);
  EXPECT_EQ(summary.failed, 0);
  EXPECT_EQ(summary.imm.count(), 4);
  EXPECT_GT(summary.throughputPps.mean(), 0.0);
  EXPECT_GE(summary.imm.max(), summary.imm.min());
  EXPECT_TRUE(std::isfinite(summary.imm.stddev()));
}

TEST(SweepRunner, NonPositiveJobCountClampsToAtLeastOneWorker) {
  // `--jobs 0` means "hardware concurrency", but hardware_concurrency()
  // is allowed to return 0 on hosts that cannot determine it. The clamp
  // must land on >= 1 real worker, never 0 (which would hang or silently
  // run nothing), for both the 0 path and explicit negative inputs.
  EXPECT_GE(SweepRunner{0}.jobs(), 1);
  EXPECT_GE(SweepRunner{-4}.jobs(), 1);
  EXPECT_EQ(SweepRunner{3}.jobs(), 3);

  const auto jobs = seedGrid(scenarios::fig3(), quickConfig(), 2);
  const auto outcomes = SweepRunner{0}.runAll(jobs);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_TRUE(outcomes[1].ok) << outcomes[1].error;
}

TEST(SweepJson, WellFormedAndInInputOrder) {
  const auto jobs = seedGrid(scenarios::fig3(), quickConfig(), 2);
  const auto outcomes = SweepRunner{2}.runAll(jobs);
  std::ostringstream os;
  writeJson(os, outcomes, summarize(outcomes));
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  const auto first = json.find("seed=11");
  const auto second = json.find("seed=12");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"i_mm\""), std::string::npos);
}

}  // namespace
}  // namespace maxmin::exp
