#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "mac/dcf.hpp"
#include "net/packet.hpp"
#include "phys/medium.hpp"
#include "sim/simulator.hpp"

namespace maxmin::mac {
namespace {

/// Minimal upper layer: a FIFO of link-layer sends toward a fixed next hop.
class StubClient final : public FrameClient {
 public:
  explicit StubClient(topo::NodeId self) : self_{self} {}

  void queuePackets(topo::NodeId nextHop, int count, DataSize size) {
    for (int i = 0; i < count; ++i) {
      auto p = std::make_shared<net::Packet>();
      p->flow = 0;
      p->src = self_;
      p->dst = nextHop;
      p->seq = seq_++;
      p->size = size;
      pending_.push_back(TxRequest{nextHop, std::move(p), size});
    }
  }

  std::optional<TxRequest> nextTxRequest() override {
    if (pending_.empty()) return std::nullopt;
    TxRequest r = pending_.front();
    pending_.pop_front();
    return r;
  }
  void onTxSuccess(const TxRequest&) override { ++successes; }
  void onTxFailure(const TxRequest&) override { ++failures; }
  void onDataReceived(const phys::Frame& f) override {
    dataReceived.push_back(f);
  }
  std::vector<phys::BufferStateAd> currentBufferState() override {
    return ads;
  }
  void onFrameDecoded(const phys::Frame& f) override {
    decoded.push_back(f);
  }

  int successes = 0;
  int failures = 0;
  std::vector<phys::Frame> dataReceived;
  std::vector<phys::Frame> decoded;
  std::vector<phys::BufferStateAd> ads;

 private:
  topo::NodeId self_;
  std::int64_t seq_ = 0;
  std::deque<TxRequest> pending_;
};

struct MacFixture {
  explicit MacFixture(std::vector<topo::Point> pts, MacParams params = {},
                      topo::RadioRanges ranges = {})
      : topo{topo::Topology::fromPositions(std::move(pts), ranges)},
        medium{sim, topo} {
    Rng root{99};
    for (topo::NodeId n = 0; n < topo.numNodes(); ++n) {
      clients.push_back(std::make_unique<StubClient>(n));
      macs.push_back(std::make_unique<Dcf>(sim, medium, n, *clients.back(),
                                           params, root.fork()));
    }
  }
  sim::Simulator sim;
  topo::Topology topo;
  phys::Medium medium;
  std::vector<std::unique_ptr<StubClient>> clients;
  std::vector<std::unique_ptr<Dcf>> macs;
};

constexpr DataSize kPayload = DataSize::bytes(1024);

TEST(MacParams, TimingConstants) {
  const MacParams p;
  EXPECT_EQ(p.difs().asMicros(), 50);
  EXPECT_EQ(p.rtsDuration().asMicros(), 96 + 80);
  EXPECT_EQ(p.ctsDuration().asMicros(), 96 + 56);
  EXPECT_EQ(p.ackDuration().asMicros(), 96 + 56);
  // (1024 + 28) * 8 / 11 = 765.09 -> 766; plus 96 PLCP.
  EXPECT_EQ(p.dataDuration(DataSize::bytes(1024)).asMicros(), 96 + 766);
  EXPECT_GT(p.eifs(), p.difs());
  EXPECT_EQ(p.exchangeAirtime(DataSize::bytes(1024)),
            p.rtsDuration() + p.ctsDuration() +
                p.dataDuration(DataSize::bytes(1024)) + p.ackDuration() +
                p.sifs * 3);
}

TEST(Dcf, SingleExchangeDeliversPacket) {
  MacFixture f{{{0, 0}, {200, 0}}};
  f.clients[0]->queuePackets(1, 1, kPayload);
  f.macs[0]->notifyTrafficPending();
  f.sim.runUntil(TimePoint::origin() + Duration::millis(50));
  EXPECT_EQ(f.clients[0]->successes, 1);
  EXPECT_EQ(f.clients[0]->failures, 0);
  ASSERT_EQ(f.clients[1]->dataReceived.size(), 1u);
  EXPECT_EQ(f.clients[1]->dataReceived[0].packet->seq, 0);
  const auto& c = f.macs[0]->counters();
  EXPECT_EQ(c.rtsSent, 1u);
  EXPECT_EQ(c.dataSent, 1u);
  EXPECT_EQ(c.txSuccesses, 1u);
}

TEST(Dcf, BackToBackPacketsAllDelivered) {
  MacFixture f{{{0, 0}, {200, 0}}};
  f.clients[0]->queuePackets(1, 50, kPayload);
  f.macs[0]->notifyTrafficPending();
  f.sim.runUntil(TimePoint::origin() + Duration::seconds(1.0));
  EXPECT_EQ(f.clients[0]->successes, 50);
  EXPECT_EQ(f.clients[1]->dataReceived.size(), 50u);
}

TEST(Dcf, NoPeerMeansRetriesThenFailure) {
  // Node 1 exists in the topology but we point the packet at node 2,
  // which is out of range: RTS never answered.
  MacFixture f{{{0, 0}, {200, 0}, {5000, 0}}};
  f.clients[0]->queuePackets(2, 1, kPayload);
  f.macs[0]->notifyTrafficPending();
  f.sim.runUntil(TimePoint::origin() + Duration::seconds(2.0));
  EXPECT_EQ(f.clients[0]->successes, 0);
  EXPECT_EQ(f.clients[0]->failures, 1);
  const auto& c = f.macs[0]->counters();
  const MacParams p;
  EXPECT_EQ(c.rtsSent, static_cast<std::uint64_t>(p.shortRetryLimit) + 1);
  EXPECT_EQ(c.macDrops, 1u);
}

TEST(Dcf, TwoContendersShareChannelFairly) {
  // Nodes 0->1 and 2->3 in a tight square: every node senses every other,
  // so the contention is perfectly symmetric.
  MacFixture f{{{0, 0}, {200, 0}, {0, 100}, {200, 100}}};
  f.clients[0]->queuePackets(1, 100000, kPayload);
  f.clients[2]->queuePackets(3, 100000, kPayload);
  f.macs[0]->notifyTrafficPending();
  f.macs[2]->notifyTrafficPending();
  f.sim.runUntil(TimePoint::origin() + Duration::seconds(10.0));
  const int a = f.clients[0]->successes;
  const int b = f.clients[2]->successes;
  EXPECT_GT(a, 1000);
  EXPECT_GT(b, 1000);
  // DCF long-run fairness between two identical contenders.
  EXPECT_NEAR(static_cast<double>(a) / (a + b), 0.5, 0.05);
}

TEST(Dcf, SaturatedSingleLinkApproachesNominalThroughput) {
  MacFixture f{{{0, 0}, {200, 0}}};
  f.clients[0]->queuePackets(1, 1000000, kPayload);
  f.macs[0]->notifyTrafficPending();
  f.sim.runUntil(TimePoint::origin() + Duration::seconds(5.0));
  const MacParams p;
  // Per-exchange lower bound: DIFS + mean backoff + full exchange.
  const double exchangeUs = static_cast<double>(
      (p.difs() + p.exchangeAirtime(kPayload)).asMicros() +
      p.slotTime.asMicros() * p.cwMin / 2);
  const double expected = 5.0e6 / exchangeUs;
  EXPECT_NEAR(f.clients[0]->successes, expected, expected * 0.1);
  // Sanity: roughly 550-650 pkts/s for short-preamble 802.11b RTS/CTS at
  // 1024 B payloads.
  EXPECT_GT(f.clients[0]->successes / 5.0, 450.0);
  EXPECT_LT(f.clients[0]->successes / 5.0, 700.0);
}

TEST(Dcf, HiddenTerminalsStillMakeProgress) {
  // 0 -> 1 <- 2: with carrier-sense range equal to tx range, the two
  // senders (400 m apart) are mutually hidden while both reach node 1.
  // RTS/CTS + EIFS + exponential backoff must still let both progress.
  MacFixture f{{{0, 0}, {200, 0}, {400, 0}},
               MacParams{},
               topo::RadioRanges{250.0, 250.0}};
  ASSERT_FALSE(f.topo.inCsRange(0, 2));
  ASSERT_TRUE(f.topo.areNeighbors(1, 2));
  f.clients[0]->queuePackets(1, 100000, kPayload);
  f.clients[2]->queuePackets(1, 100000, kPayload);
  f.macs[0]->notifyTrafficPending();
  f.macs[2]->notifyTrafficPending();
  f.sim.runUntil(TimePoint::origin() + Duration::seconds(5.0));
  EXPECT_GT(f.clients[0]->successes, 200);
  EXPECT_GT(f.clients[2]->successes, 200);
}

TEST(Dcf, OverhearingNeighborsDecodeDataFrames) {
  // Node 2 is within tx range of node 0; it should overhear (decode) the
  // exchange without being addressed.
  MacFixture f{{{0, 0}, {200, 0}, {100, 150}}};
  ASSERT_LE(f.topo.distanceBetween(0, 2), 250.0);
  f.clients[0]->queuePackets(1, 1, kPayload);
  f.macs[0]->notifyTrafficPending();
  f.sim.runUntil(TimePoint::origin() + Duration::millis(100));
  EXPECT_EQ(f.clients[0]->successes, 1);
  bool sawData = false;
  for (const auto& fr : f.clients[2]->decoded) {
    if (fr.kind == phys::FrameKind::kData) sawData = true;
  }
  EXPECT_TRUE(sawData);
  EXPECT_TRUE(f.clients[2]->dataReceived.empty());  // not addressed
}

TEST(Dcf, NavPreventsThirdPartyInterruption) {
  // All nodes mutually in range. While 0<->1 exchange runs, node 2's
  // packet (arriving mid-exchange) must wait; both exchanges succeed.
  MacFixture f{{{0, 0}, {200, 0}, {100, 150}}};
  f.clients[0]->queuePackets(1, 1, kPayload);
  f.macs[0]->notifyTrafficPending();
  // Let the RTS go out, then offer node 2's traffic mid-exchange.
  f.sim.runUntil(TimePoint::origin() + Duration::micros(1500));
  f.clients[2]->queuePackets(0, 1, kPayload);
  f.macs[2]->notifyTrafficPending();
  f.sim.runUntil(TimePoint::origin() + Duration::millis(100));
  EXPECT_EQ(f.clients[0]->successes, 1);
  EXPECT_EQ(f.clients[2]->successes, 1);
}

TEST(Dcf, PiggybackedBufferStateRidesEveryFrameKind) {
  MacFixture f{{{0, 0}, {200, 0}}};
  f.clients[0]->ads = {{7, true}};
  f.clients[1]->ads = {{9, false}};
  f.clients[0]->queuePackets(1, 1, kPayload);
  f.macs[0]->notifyTrafficPending();
  f.sim.runUntil(TimePoint::origin() + Duration::millis(50));
  // Node 1 decoded RTS and DATA from 0, each carrying 0's ads.
  int withAds = 0;
  for (const auto& fr : f.clients[1]->decoded) {
    ASSERT_EQ(fr.bufferState.size(), 1u);
    EXPECT_EQ(fr.bufferState[0].destination, 7);
    EXPECT_TRUE(fr.bufferState[0].full);
    ++withAds;
  }
  EXPECT_EQ(withAds, 2);  // RTS + DATA
  // Node 0 decoded CTS and ACK from 1.
  int fromPeer = 0;
  for (const auto& fr : f.clients[0]->decoded) {
    ASSERT_EQ(fr.bufferState.size(), 1u);
    EXPECT_EQ(fr.bufferState[0].destination, 9);
    EXPECT_FALSE(fr.bufferState[0].full);
    ++fromPeer;
  }
  EXPECT_EQ(fromPeer, 2);  // CTS + ACK
}

TEST(Dcf, OccupancyAccruesFullExchangeAirtime) {
  MacFixture f{{{0, 0}, {200, 0}}};
  f.clients[0]->queuePackets(1, 10, kPayload);
  f.macs[0]->notifyTrafficPending();
  f.sim.runUntil(TimePoint::origin() + Duration::seconds(1.0));
  ASSERT_EQ(f.clients[0]->successes, 10);
  const MacParams p;
  const Duration airtime = f.macs[0]->takeOccupancy(1);
  const Duration perExchangeFrames =
      p.rtsDuration() + p.ctsDuration() + p.dataDuration(kPayload) +
      p.ackDuration();
  EXPECT_EQ(airtime.asMicros(), perExchangeFrames.asMicros() * 10);
  // Reset semantics.
  EXPECT_EQ(f.macs[0]->takeOccupancy(1).asMicros(), 0);
}


/// Control message used in broadcast tests.
struct TestMessage final : phys::ControlMessage {
  explicit TestMessage(int v) : value{v} {}
  int value;
};

TEST(Dcf, BroadcastReachesAllNeighborsWithoutAcks) {
  MacFixture f{{{0, 0}, {200, 0}, {100, 150}, {900, 0}}};
  f.macs[0]->enqueueBroadcast(std::make_shared<TestMessage>(42),
                              DataSize::bytes(32));
  f.sim.runUntil(TimePoint::origin() + Duration::millis(20));
  EXPECT_EQ(f.macs[0]->counters().broadcastsSent, 1u);
  // Nodes 1 and 2 (in range) decode the control frame; node 3 does not.
  for (int n : {1, 2}) {
    bool got = false;
    for (const auto& fr : f.clients[static_cast<std::size_t>(n)]->decoded) {
      if (fr.kind == phys::FrameKind::kControl) {
        const auto* msg = dynamic_cast<const TestMessage*>(fr.control.get());
        ASSERT_NE(msg, nullptr);
        EXPECT_EQ(msg->value, 42);
        got = true;
      }
    }
    EXPECT_TRUE(got) << "node " << n;
  }
  EXPECT_TRUE(f.clients[3]->decoded.empty());
  // No ACK traffic follows a broadcast.
  EXPECT_EQ(f.macs[1]->counters().rtsSent, 0u);
}

TEST(Dcf, BroadcastTakesPriorityOverPendingUnicast) {
  MacFixture f{{{0, 0}, {200, 0}}};
  f.clients[0]->queuePackets(1, 3, kPayload);
  f.macs[0]->notifyTrafficPending();
  f.macs[0]->enqueueBroadcast(std::make_shared<TestMessage>(7),
                              DataSize::bytes(32));
  f.sim.runUntil(TimePoint::origin() + Duration::millis(60));
  // Everything got through: 3 unicasts + the broadcast.
  EXPECT_EQ(f.clients[0]->successes, 3);
  EXPECT_EQ(f.macs[0]->counters().broadcastsSent, 1u);
  // The broadcast decoded at node 1 precedes at least the last DATA.
  std::size_t controlIdx = 0;
  std::size_t lastDataIdx = 0;
  for (std::size_t i = 0; i < f.clients[1]->decoded.size(); ++i) {
    const auto kind = f.clients[1]->decoded[i].kind;
    if (kind == phys::FrameKind::kControl) controlIdx = i;
    if (kind == phys::FrameKind::kData) lastDataIdx = i;
  }
  EXPECT_LT(controlIdx, lastDataIdx);
}

TEST(Dcf, CollidedBroadcastsAreLostSilently) {
  // Two hidden senders (cs = tx ranges) broadcast into a common
  // receiver at the same time: 802.11 broadcasts carry no recovery, so
  // at most the backoff stagger saves one of them; no retries happen.
  MacFixture f{{{0, 0}, {200, 0}, {400, 0}},
               MacParams{},
               topo::RadioRanges{250.0, 250.0}};
  f.macs[0]->enqueueBroadcast(std::make_shared<TestMessage>(1),
                              DataSize::bytes(1000));
  f.macs[2]->enqueueBroadcast(std::make_shared<TestMessage>(2),
                              DataSize::bytes(1000));
  f.sim.runUntil(TimePoint::origin() + Duration::millis(50));
  EXPECT_EQ(f.macs[0]->counters().broadcastsSent, 1u);
  EXPECT_EQ(f.macs[2]->counters().broadcastsSent, 1u);
  // Node 1 decodes 0, 1 or 2 control frames depending on overlap, but
  // never more (no retransmissions).
  int controls = 0;
  for (const auto& fr : f.clients[1]->decoded) {
    if (fr.kind == phys::FrameKind::kControl) ++controls;
  }
  EXPECT_LE(controls, 2);
}

}  // namespace
}  // namespace maxmin::mac

