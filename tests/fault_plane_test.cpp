// Tests for the fault-injection substrate: the fault-script parser, the
// FaultPlane node/link/skew state machine, churn determinism, the named
// RNG streams that keep fault injection from perturbing seeded runs, and
// the Gilbert-Elliott channel impairment statistics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "phys/impairment.hpp"
#include "sim/fault_plane.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace maxmin {
namespace {

TimePoint at(double seconds) {
  return TimePoint::origin() + Duration::seconds(seconds);
}

// --- script parsing ----------------------------------------------------------

TEST(FaultScriptParse, FullGrammar) {
  const auto script = sim::parseFaultScript(
      "# outage of node 2 plus a flaky link\n"
      "crash 2 10.5\n"
      "recover 2 20\n"
      "linkdown 0 1 5; linkup 0 1 6  # inline form\n"
      "skew 3 150\n"
      "skew 1 40 12\n");
  ASSERT_EQ(script.events.size(), 6u);
  EXPECT_EQ(script.events[0].kind, sim::FaultEvent::Kind::kNodeDown);
  EXPECT_EQ(script.events[0].node, 2);
  EXPECT_EQ(script.events[0].at, at(10.5));
  EXPECT_EQ(script.events[1].kind, sim::FaultEvent::Kind::kNodeUp);
  EXPECT_EQ(script.events[2].kind, sim::FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(script.events[2].peer, 1);
  EXPECT_EQ(script.events[3].kind, sim::FaultEvent::Kind::kLinkUp);
  EXPECT_EQ(script.events[4].kind, sim::FaultEvent::Kind::kClockSkew);
  EXPECT_EQ(script.events[4].skew, Duration::millis(150));
  EXPECT_EQ(script.events[4].at, TimePoint::origin());
  EXPECT_EQ(script.events[5].at, at(12.0));
  EXPECT_FALSE(script.churn.enabled());
}

TEST(FaultScriptParse, Churn) {
  const auto script = sim::parseFaultScript(
      "churn nodes=1,3 up=30 down=5 from=10 until=200");
  EXPECT_TRUE(script.churn.enabled());
  EXPECT_EQ(script.churn.nodes, (std::vector<std::int32_t>{1, 3}));
  EXPECT_DOUBLE_EQ(script.churn.meanUpSeconds, 30.0);
  EXPECT_DOUBLE_EQ(script.churn.meanDownSeconds, 5.0);
  EXPECT_EQ(script.churn.start, at(10.0));
  EXPECT_EQ(script.churn.stop, at(200.0));
}

TEST(FaultScriptParse, RejectsMalformedInput) {
  EXPECT_THROW(sim::parseFaultScript("explode 1 2"), std::invalid_argument);
  EXPECT_THROW(sim::parseFaultScript("crash 1"), std::invalid_argument);
  EXPECT_THROW(sim::parseFaultScript("crash x 5"), std::invalid_argument);
  EXPECT_THROW(sim::parseFaultScript("crash -1 5"), std::invalid_argument);
  EXPECT_THROW(sim::parseFaultScript("skew 1 -20"), std::invalid_argument);
  EXPECT_THROW(sim::parseFaultScript("linkdown 0 1"), std::invalid_argument);
  EXPECT_THROW(sim::parseFaultScript("churn nodes=1 up=10"),
               std::invalid_argument);
  EXPECT_THROW(sim::parseFaultScript("churn nodes=1 up=10 down=2 what=3"),
               std::invalid_argument);
}

TEST(FaultScriptParse, EmptyAndComments) {
  EXPECT_TRUE(sim::parseFaultScript("").empty());
  EXPECT_TRUE(sim::parseFaultScript("# nothing\n\n  ; ;\n").empty());
}

// --- the plane's state machine ----------------------------------------------

struct RecordingListener final : sim::FaultListener {
  std::vector<std::pair<std::int32_t, bool>> nodeEvents;
  std::vector<std::tuple<std::int32_t, std::int32_t, bool>> linkEvents;
  void onNodeDown(std::int32_t node) override {
    nodeEvents.emplace_back(node, false);
  }
  void onNodeUp(std::int32_t node) override {
    nodeEvents.emplace_back(node, true);
  }
  void onLinkChanged(std::int32_t a, std::int32_t b, bool up) override {
    linkEvents.emplace_back(a, b, up);
  }
};

TEST(FaultPlane, ScriptedEventsDriveState) {
  sim::Simulator simulator;
  RecordingListener listener;
  sim::FaultPlane plane{simulator, 4,
                        sim::parseFaultScript("crash 2 10; recover 2 20;"
                                              "linkdown 0 1 5; linkup 0 1 15"),
                        Rng{1}};
  plane.addListener(&listener);
  plane.start();

  EXPECT_TRUE(plane.nodeUp(2));
  EXPECT_TRUE(plane.linkUp(0, 1));

  simulator.runUntil(at(7.0));
  EXPECT_FALSE(plane.linkUp(0, 1));
  EXPECT_FALSE(plane.linkUp(1, 0));  // undirected
  EXPECT_TRUE(plane.nodeUp(0));      // endpoints themselves stay up

  simulator.runUntil(at(12.0));
  EXPECT_FALSE(plane.nodeUp(2));
  EXPECT_FALSE(plane.linkUp(2, 3));  // links of a down node are down

  simulator.runUntil(at(25.0));
  EXPECT_TRUE(plane.nodeUp(2));
  EXPECT_TRUE(plane.linkUp(0, 1));
  EXPECT_TRUE(plane.linkUp(2, 3));

  EXPECT_EQ(plane.crashesInjected(), 1);
  EXPECT_EQ(plane.recoveriesInjected(), 1);
  EXPECT_EQ(plane.linkCutsInjected(), 1);
  ASSERT_EQ(listener.nodeEvents.size(), 2u);
  EXPECT_EQ(listener.nodeEvents[0], (std::pair<std::int32_t, bool>{2, false}));
  EXPECT_EQ(listener.nodeEvents[1], (std::pair<std::int32_t, bool>{2, true}));
  ASSERT_EQ(listener.linkEvents.size(), 2u);
}

TEST(FaultPlane, RedundantTransitionsAreIdempotent) {
  sim::Simulator simulator;
  RecordingListener listener;
  sim::FaultPlane plane{
      simulator, 2,
      sim::parseFaultScript("crash 1 1; crash 1 2; recover 1 3; recover 1 4"),
      Rng{1}};
  plane.addListener(&listener);
  plane.start();
  simulator.runUntil(at(10.0));
  EXPECT_EQ(plane.crashesInjected(), 1);
  EXPECT_EQ(plane.recoveriesInjected(), 1);
  EXPECT_EQ(listener.nodeEvents.size(), 2u);
}

TEST(FaultPlane, OriginSkewAppliesBeforeRunning) {
  sim::Simulator simulator;
  sim::FaultPlane plane{simulator, 3, sim::parseFaultScript("skew 1 80"),
                        Rng{1}};
  plane.start();
  EXPECT_EQ(plane.clockSkew(1), Duration::millis(80));
  EXPECT_EQ(plane.clockSkew(0), Duration::zero());
  EXPECT_EQ(plane.maxClockSkew(), Duration::millis(80));
}

TEST(FaultPlane, RejectsUnknownNodes) {
  sim::Simulator simulator;
  EXPECT_THROW((sim::FaultPlane{simulator, 2,
                                sim::parseFaultScript("crash 5 1"), Rng{1}}),
               InvariantViolation);
}

std::vector<std::pair<double, bool>> churnTrace(std::uint64_t seed) {
  sim::Simulator simulator;
  RecordingListener listener;
  sim::FaultPlane plane{
      simulator, 3, sim::parseFaultScript("churn nodes=0,1,2 up=20 down=4"),
      Rng{seed}.stream("faults")};
  plane.addListener(&listener);
  plane.start();
  simulator.runUntil(at(300.0));
  std::vector<std::pair<double, bool>> trace;
  for (const auto& [node, up] : listener.nodeEvents) {
    trace.emplace_back(node, up);
  }
  return trace;
}

TEST(FaultPlane, ChurnIsSeededAndDeterministic) {
  const auto a = churnTrace(5);
  EXPECT_GE(a.size(), 4u) << "300 s of 20 s-mean churn should cycle";
  EXPECT_EQ(a, churnTrace(5));
  EXPECT_NE(a, churnTrace(6));
}

TEST(FaultPlane, ChurnStopsStartingOutagesAfterUntil) {
  sim::Simulator simulator;
  RecordingListener listener;
  sim::FaultPlane plane{
      simulator, 1,
      sim::parseFaultScript("churn nodes=0 up=5 down=2 until=60"), Rng{3}};
  plane.addListener(&listener);
  plane.start();
  simulator.runUntil(at(400.0));
  EXPECT_TRUE(plane.nodeUp(0)) << "churn must leave the node up after stop";
  double lastDown = 0.0;
  for (std::size_t i = 0; i < listener.nodeEvents.size(); ++i) {
    if (!listener.nodeEvents[i].second) lastDown += 1.0;
  }
  EXPECT_GT(lastDown, 0.0);
}

// --- named RNG streams (satellite: fault rng must not perturb runs) ---------

TEST(RngStream, DoesNotAdvanceTheParentEngine) {
  Rng withStream{42};
  Rng without{42};
  const auto s = withStream.stream("faults");
  (void)s;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(withStream.uniformInt(0, 1 << 30), without.uniformInt(0, 1 << 30));
  }
}

TEST(RngStream, DeterministicAndDecorrelated) {
  Rng a{7};
  Rng b{7};
  auto s1 = a.stream("phys-impairment");
  auto s2 = b.stream("phys-impairment");
  auto other = a.stream("faults");
  auto indexed = a.stream("phys-impairment", 1);
  bool anyDiffOther = false;
  bool anyDiffIndexed = false;
  for (int i = 0; i < 16; ++i) {
    const auto v = s1.uniformInt(0, 1 << 30);
    EXPECT_EQ(v, s2.uniformInt(0, 1 << 30));
    anyDiffOther |= v != other.uniformInt(0, 1 << 30);
    anyDiffIndexed |= v != indexed.uniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(anyDiffOther);
  EXPECT_TRUE(anyDiffIndexed);
}

// --- channel impairments -----------------------------------------------------

TEST(Impairments, UniformPerMatchesConfiguredRate) {
  phys::ImpairmentConfig cfg;
  cfg.per = 0.1;
  phys::ChannelImpairments imp{cfg, Rng{11}};
  int dropped = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    dropped += imp.shouldDrop(0, 1, phys::FrameKind::kData) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / trials, 0.1, 0.01);
  EXPECT_EQ(imp.framesDropped(), dropped);
}

TEST(Impairments, GilbertElliottSteadyStateLoss) {
  phys::ImpairmentConfig cfg;
  cfg.gilbert.pGoodToBad = 0.05;
  cfg.gilbert.pBadToGood = 0.20;
  cfg.gilbert.lossBad = 1.0;
  EXPECT_NEAR(cfg.gilbert.steadyStateLoss(), 0.2, 1e-12);
  phys::ChannelImpairments imp{cfg, Rng{13}};
  int dropped = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    dropped += imp.shouldDrop(0, 1, phys::FrameKind::kData) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / trials, 0.2, 0.02);
}

TEST(Impairments, GilbertElliottLossIsBursty) {
  // Mean bad-state sojourn is 1/pBadToGood = 5 frames, so drops arrive
  // in runs far longer than an iid channel at the same average rate.
  phys::ImpairmentConfig cfg;
  cfg.gilbert.pGoodToBad = 0.05;
  cfg.gilbert.pBadToGood = 0.20;
  cfg.gilbert.lossBad = 1.0;
  phys::ChannelImpairments imp{cfg, Rng{17}};
  int runs = 0;
  int dropped = 0;
  bool inRun = false;
  for (int i = 0; i < 200000; ++i) {
    const bool drop = imp.shouldDrop(0, 1, phys::FrameKind::kData);
    if (drop) {
      ++dropped;
      if (!inRun) ++runs;
    }
    inRun = drop;
  }
  ASSERT_GT(runs, 0);
  const double meanRunLength = static_cast<double>(dropped) / runs;
  EXPECT_GT(meanRunLength, 3.0) << "expected bursty loss, got near-iid";
}

TEST(Impairments, StateIsPerDirectedLink) {
  // Two links evolve independent Gilbert-Elliott states: with a shared
  // state the two observed sequences would be identical.
  phys::ImpairmentConfig cfg;
  cfg.gilbert.pGoodToBad = 0.3;
  cfg.gilbert.pBadToGood = 0.3;
  cfg.gilbert.lossBad = 1.0;
  phys::ChannelImpairments imp{cfg, Rng{19}};
  bool differ = false;
  for (int i = 0; i < 2000; ++i) {
    const bool a = imp.shouldDrop(0, 1, phys::FrameKind::kData);
    const bool b = imp.shouldDrop(2, 3, phys::FrameKind::kData);
    differ |= a != b;
  }
  EXPECT_TRUE(differ);
}

TEST(Impairments, ScopeSelectsFrameKinds) {
  phys::ImpairmentConfig cfg;
  cfg.per = 1.0;
  cfg.scope = phys::ImpairmentConfig::Scope::kControlFrames;
  phys::ChannelImpairments imp{cfg, Rng{23}};
  EXPECT_TRUE(imp.shouldDrop(0, 1, phys::FrameKind::kControl));
  EXPECT_FALSE(imp.shouldDrop(0, 1, phys::FrameKind::kData));
  EXPECT_FALSE(imp.shouldDrop(0, 1, phys::FrameKind::kAck));

  cfg.scope = phys::ImpairmentConfig::Scope::kDataFrames;
  phys::ChannelImpairments dataOnly{cfg, Rng{23}};
  EXPECT_FALSE(dataOnly.shouldDrop(0, 1, phys::FrameKind::kControl));
  EXPECT_TRUE(dataOnly.shouldDrop(0, 1, phys::FrameKind::kData));
}

}  // namespace
}  // namespace maxmin
