// Observability plane: metrics registry semantics (including the two
// gates), trace-sink determinism (fixed seed => byte-identical JSONL),
// the profiler, and the trace -> replay round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <locale>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/trace_replay.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "scenarios/scenarios.hpp"
#include "util/check.hpp"

namespace maxmin {
namespace {

// The registry and profiler are process-global; every test leaves them
// disabled and zeroed so suites compose in any order. Registration
// deliberately survives reset() (macro sites cache references into the
// registry), so assertions look up specific names instead of assuming an
// empty table.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { cleanup(); }
  void TearDown() override { cleanup(); }
  static void cleanup() {
    obs::Registry::setEnabled(false);
    obs::Registry::global().reset();
    obs::Profiler::setEnabled(false);
    obs::Profiler::global().reset();
  }
  /// Current value of a registered counter; -1 when the name was never
  /// registered in this process.
  static std::int64_t counterValue(std::string_view name) {
    for (const auto& [n, v] : obs::Registry::global().counterValues()) {
      if (n == name) return v;
    }
    return -1;
  }
};

// --- registry primitives ----------------------------------------------------

TEST_F(ObsTest, CounterAccumulates) {
  obs::Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST_F(ObsTest, GaugeTracksHighWaterMark) {
  obs::Gauge g;
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.maxValue(), 7);
}

TEST_F(ObsTest, HistogramBucketsByPowerOfTwo) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(1000);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 1001);
  EXPECT_NEAR(h.mean(), 1001.0 / 3.0, 1e-9);
  // p100 lands in 1000's bucket [512, 1024): inclusive upper bound 1023.
  EXPECT_EQ(h.percentile(1.0), 1023);
  EXPECT_EQ(h.percentile(0.0), 0);
}

TEST_F(ObsTest, RegistryNamesAreStableAndSorted) {
  auto& r = obs::Registry::global();
  r.counter("obs_test.b_second").add(2);
  r.counter("obs_test.a_first").add(1);
  EXPECT_EQ(&r.counter("obs_test.a_first"), &r.counter("obs_test.a_first"));
  const auto values = r.counterValues();
  ASSERT_GE(values.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      values.begin(), values.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  EXPECT_EQ(counterValue("obs_test.a_first"), 1);
  EXPECT_EQ(counterValue("obs_test.b_second"), 2);
}

// --- the two gates ----------------------------------------------------------

TEST_F(ObsTest, MacrosAreQuietWhenRuntimeDisabled) {
  ASSERT_FALSE(obs::Registry::enabled());
  MAXMIN_COUNT("obs_test.quiet", 1);
  MAXMIN_GAUGE("obs_test.quiet_gauge", 5);
  MAXMIN_HIST("obs_test.quiet_hist", 5);
  // The name may not even register: a disabled run leaves no trace of
  // the sites it passed through.
  EXPECT_EQ(counterValue("obs_test.quiet"), -1);
}

TEST_F(ObsTest, MacrosRecordOnlyInObservabilityBuilds) {
  obs::Registry::setEnabled(true);
  MAXMIN_COUNT("obs_test.counted", 2);
  MAXMIN_COUNT("obs_test.counted", 3);
#if defined(MAXMIN_OBSERVABILITY) && MAXMIN_OBSERVABILITY
  EXPECT_EQ(counterValue("obs_test.counted"), 5);
#else
  // Compiled out: the sites vanish entirely.
  EXPECT_EQ(counterValue("obs_test.counted"), -1);
#endif
}

TEST_F(ObsTest, InstrumentedRunFillsKernelCountersWhenEnabled) {
  obs::Registry::setEnabled(true);
  analysis::RunConfig cfg;
  cfg.duration = Duration::seconds(20.0);
  cfg.warmup = Duration::seconds(10.0);
  cfg.seed = 5;
  (void)analysis::runScenario(scenarios::fig3(), cfg);
#if defined(MAXMIN_OBSERVABILITY) && MAXMIN_OBSERVABILITY
  EXPECT_GT(counterValue("sim.events_scheduled"), 0);
  EXPECT_GT(counterValue("sim.events_fired"), 0);
  EXPECT_GT(counterValue("mac.backoff_draws"), 0);
#else
  EXPECT_EQ(counterValue("sim.events_scheduled"), -1);
  EXPECT_EQ(counterValue("mac.backoff_draws"), -1);
#endif
}

// --- JSON writer ------------------------------------------------------------

TEST_F(ObsTest, JsonWriterEmitsDeterministicRecords) {
  const auto build = [] {
    obs::JsonWriter w;
    w.beginObject();
    w.key("name").value("a\"b\\c");
    w.key("pi").value(3.141592653589793);
    w.key("n").value(std::int64_t{-7});
    w.key("ok").value(true);
    w.key("list").beginArray().value(1).value(2).endArray();
    w.endObject();
    return w.str();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());
  EXPECT_EQ(a,
            "{\"name\":\"a\\\"b\\\\c\",\"pi\":3.1415926535897931,"
            "\"n\":-7,\"ok\":true,\"list\":[1,2]}");
}

// --- trace sink -------------------------------------------------------------

TEST_F(ObsTest, TraceLevelParses) {
  EXPECT_EQ(obs::parseTraceLevel("period"), obs::TraceLevel::kPeriod);
  EXPECT_EQ(obs::parseTraceLevel("event"), obs::TraceLevel::kEvent);
  EXPECT_FALSE(obs::parseTraceLevel("verbose").has_value());
}

TEST_F(ObsTest, TraceSinkAppendsLines) {
  std::ostringstream os;
  obs::TraceSink sink{os, obs::TraceLevel::kPeriod};
  EXPECT_FALSE(sink.wantsEvents());
  sink.writeRecord("{\"record\":\"period\"}");
  sink.writeRecord("{\"record\":\"period\"}");
  EXPECT_EQ(sink.recordsWritten(), 2);
  EXPECT_EQ(os.str(), "{\"record\":\"period\"}\n{\"record\":\"period\"}\n");
}

namespace {

std::string traceFixedSeedRun(obs::TraceLevel level) {
  std::ostringstream os;
  obs::TraceSink sink{os, level};
  analysis::RunConfig cfg;
  cfg.duration = Duration::seconds(30.0);
  cfg.warmup = Duration::seconds(15.0);
  cfg.seed = 11;
  cfg.trace = &sink;
  (void)analysis::runScenario(scenarios::fig3(), cfg);
  return os.str();
}

}  // namespace

TEST_F(ObsTest, FixedSeedTraceIsByteIdentical) {
  const std::string first = traceFixedSeedRun(obs::TraceLevel::kEvent);
  const std::string second = traceFixedSeedRun(obs::TraceLevel::kEvent);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "fixed-seed traces must be byte-identical";
}

TEST_F(ObsTest, TraceReplayRecomputesFairnessTrajectory) {
  const std::string trace = traceFixedSeedRun(obs::TraceLevel::kEvent);
  std::istringstream in{trace};
  const auto replay = analysis::traceReplay(in);
  // 30 s at the default 4 s period: 7 boundaries.
  ASSERT_EQ(replay.periods.size(), 7u);
  const auto imm = replay.immTrajectory();
  const auto ieq = replay.ieqTrajectory();
  ASSERT_EQ(imm.size(), 7u);
  for (std::size_t i = 0; i < imm.size(); ++i) {
    EXPECT_GE(imm[i], 0.0);
    EXPECT_LE(imm[i], 1.0 + 1e-12);
    EXPECT_GT(ieq[i], 0.0);
    EXPECT_EQ(replay.periods[i].period, static_cast<int>(i));
    EXPECT_EQ(replay.periods[i].hops.size(), 3u) << "fig3 has 3 flows";
  }
}

TEST_F(ObsTest, JsonDoublesRoundTripThroughWriterAndReplay) {
  // Satellite regression for locale-independent number text: doubles that
  // exercise shortest-vs-17-digit formatting, subnormals, and huge
  // magnitudes must survive JsonWriter -> traceReplay bit-exactly, and the
  // emitted bytes must not change when the global locale uses a ','
  // decimal separator (to_chars/from_chars ignore locale by definition).
  const std::vector<double> rates = {0.1, 1.0 / 3.0, 12.5,
                                     6.02214076e23, 5e-324};
  const auto cycle = [&rates] {
    obs::JsonWriter w;
    w.beginObject();
    w.key("record").value("period");
    w.key("period").value(0);
    w.key("timeUs").value(std::int64_t{4000000});
    w.key("flows").beginArray();
    for (std::size_t i = 0; i < rates.size(); ++i) {
      w.beginObject();
      w.key("id").value(static_cast<int>(i));
      w.key("hops").value(1);
      w.key("ratePps").value(rates[i]);
      w.endObject();
    }
    w.endArray().endObject();
    const std::string text = w.str() + "\n";
    std::istringstream in{text};
    const auto replay = analysis::traceReplay(in);
    return std::pair{text, replay};
  };

  const auto [text, replay] = cycle();
  ASSERT_EQ(replay.periods.size(), 1u);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto it = replay.periods[0].ratesPps.find(static_cast<int>(i));
    ASSERT_NE(it, replay.periods[0].ratesPps.end());
    EXPECT_EQ(it->second, rates[i]) << "rate " << i << " not bit-exact";
  }

  // Re-run the whole cycle under a comma-decimal locale when the host has
  // one installed; skip silently otherwise (CI images vary).
  const std::locale saved;
  bool haveLocale = false;
  try {
    std::locale::global(std::locale{"de_DE.UTF-8"});
    haveLocale = true;
  } catch (const std::runtime_error&) {
  }
  if (haveLocale) {
    const auto [localeText, localeReplay] = cycle();
    std::locale::global(saved);
    EXPECT_EQ(localeText, text) << "writer bytes depend on the locale";
    ASSERT_EQ(localeReplay.periods.size(), 1u);
    for (std::size_t i = 0; i < rates.size(); ++i) {
      EXPECT_EQ(localeReplay.periods[0].ratesPps.at(static_cast<int>(i)),
                rates[i]);
    }
  }
}

TEST_F(ObsTest, TraceReplayRejectsMalformedLines) {
  std::istringstream in{"{\"record\":\"period\",\"broken\n"};
  EXPECT_THROW((void)analysis::traceReplay(in), InvariantViolation);
  std::istringstream noRecord{"{\"period\":1}\n"};
  EXPECT_THROW((void)analysis::traceReplay(noRecord), InvariantViolation);
}

TEST_F(ObsTest, TraceReplaySkipsEventRecords) {
  std::istringstream in{
      "{\"record\":\"command\",\"period\":0,\"flow\":1,"
      "\"kind\":\"set_limit\",\"limitPps\":12.5}\n"
      "{\"record\":\"period\",\"period\":0,\"timeUs\":4000000,\"flows\":"
      "[{\"id\":0,\"hops\":3,\"ratePps\":10.0},"
      "{\"id\":1,\"hops\":1,\"ratePps\":20.0}]}\n"};
  const auto replay = analysis::traceReplay(in);
  ASSERT_EQ(replay.periods.size(), 1u);
  EXPECT_DOUBLE_EQ(replay.periods[0].summary.imm, 0.5);
  EXPECT_DOUBLE_EQ(replay.periods[0].summary.effectiveThroughputPps, 50.0);
}

// --- profiler ---------------------------------------------------------------

TEST_F(ObsTest, ProfilerSitesAreIdempotent) {
  auto& p = obs::Profiler::global();
  const obs::SiteId a = p.site("obs_test.site_a");
  EXPECT_EQ(p.site("obs_test.site_a"), a);
  EXPECT_NE(p.site("obs_test.site_b"), a);
}

TEST_F(ObsTest, ScopedProfileRecordsOnlyWhenEnabled) {
  auto& p = obs::Profiler::global();
  const obs::SiteId id = p.site("obs_test.scoped");
  { const obs::ScopedProfile off{id}; }
  obs::Profiler::setEnabled(true);
  { const obs::ScopedProfile on{id}; }
  std::ostringstream os;
  p.printTable(os);
  EXPECT_NE(os.str().find("obs_test.scoped"), std::string::npos);
  // Exactly the enabled pass recorded.
  EXPECT_NE(os.str().find(" 1 "), std::string::npos) << os.str();
}

TEST_F(ObsTest, WallNanosIsMonotonic) {
  const std::int64_t a = obs::Profiler::wallNanos();
  const std::int64_t b = obs::Profiler::wallNanos();
  EXPECT_GE(b, a);
}

TEST_F(ObsTest, ProfiledRunMatchesUnprofiledResults) {
  analysis::RunConfig cfg;
  cfg.duration = Duration::seconds(20.0);
  cfg.warmup = Duration::seconds(10.0);
  cfg.seed = 3;
  const auto plain = analysis::runScenario(scenarios::fig3(), cfg);
  obs::Profiler::setEnabled(true);
  obs::Registry::setEnabled(true);
  const auto profiled = analysis::runScenario(scenarios::fig3(), cfg);
  ASSERT_EQ(plain.flows.size(), profiled.flows.size());
  for (std::size_t i = 0; i < plain.flows.size(); ++i) {
    EXPECT_EQ(plain.flows[i].ratePps, profiled.flows[i].ratePps)
        << "observability must not perturb simulation results";
  }
}

}  // namespace
}  // namespace maxmin
