// End-to-end robustness tests: GMP graceful degradation under node
// crashes, recovery, clock skew and bursty control-frame loss; the
// backpressure-liveness guarantee when a downstream neighbor dies; and
// the dissemination protocol's sequence-number hardening (wraparound,
// origin reboot).
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/disruption.hpp"
#include "analysis/experiment.hpp"
#include "baselines/configs.hpp"
#include "gmp/controller.hpp"
#include "gmp/dissemination.hpp"
#include "net/network.hpp"
#include "scenarios/scenarios.hpp"

namespace maxmin {
namespace {

net::Network makeGmpNetwork(const scenarios::Scenario& sc,
                            std::uint64_t seed,
                            net::NetworkConfig base = {}) {
  net::NetworkConfig cfg = baselines::configGmp(base);
  cfg.seed = seed;
  return net::Network{sc.topology, cfg, sc.flows};
}

// --- satellite: enabling the fault plane must not perturb seeded runs -------

TEST(FaultRngStreams, EnablingFaultsDoesNotPerturbSeededRuns) {
  const auto sc = scenarios::fig3();

  auto plain = makeGmpNetwork(sc, 21);
  plain.run(Duration::seconds(30.0));

  auto faulted = makeGmpNetwork(sc, 21);
  // The scripted event sits beyond the horizon: the plane is active (and
  // gates the medium) but nothing fires. Deliveries must be
  // bit-identical — the fault RNG is a named stream, not a fork that
  // would shift every node's randomness.
  faulted.enableFaults(sim::parseFaultScript("crash 1 100"));
  faulted.run(Duration::seconds(30.0));

  for (const auto& f : sc.flows) {
    EXPECT_EQ(plain.delivered(f.id), faulted.delivered(f.id))
        << "flow " << f.id;
  }
}

// --- crash semantics ---------------------------------------------------------

TEST(Crash, SilencesRadioAndFlushesQueues) {
  const auto sc = scenarios::fig3();
  auto net = makeGmpNetwork(sc, 9);
  net.enableFaults(sim::parseFaultScript("crash 1 10"));
  net.run(Duration::seconds(20.0));

  EXPECT_FALSE(net.stack(1).operational());
  EXPECT_GT(net.totalCrashDrops(), 0) << "queued packets vanish at a crash";
  EXPECT_GT(net.medium().framesSuppressed(), 0)
      << "frames to/from the dead node must be suppressed";
  const auto before = net.delivered(0);
  net.run(Duration::seconds(10.0));
  EXPECT_EQ(net.delivered(0), before)
      << "flow through the dead relay cannot deliver";
}

TEST(Crash, RecoveryRestartsSourcesAndForwarding) {
  const auto sc = scenarios::fig3();
  auto net = makeGmpNetwork(sc, 9);
  net.enableFaults(sim::parseFaultScript("crash 1 10; recover 1 20"));
  net.run(Duration::seconds(25.0));
  EXPECT_TRUE(net.stack(1).operational());
  const auto before = net.delivered(0);
  net.run(Duration::seconds(15.0));
  EXPECT_GT(net.delivered(0), before) << "deliveries resume after recovery";
}

// --- satellite: backpressure liveness with a dead downstream neighbor -------

TEST(BackpressureLiveness, UpstreamUnblocksAfterNeighborDeadTtl) {
  const auto sc = scenarios::fig3();
  net::NetworkConfig base;
  base.neighborDeadTtl = Duration::seconds(2.0);
  auto net = makeGmpNetwork(sc, 9, base);
  net.enableFaults(sim::parseFaultScript("crash 2 5"));

  net.run(Duration::seconds(15.0));
  EXPECT_TRUE(net.stack(1).neighborDead(2))
      << "after the TTL of consecutive failures node 1 declares 2 dead";
  const auto dropsMid = net.totalDeadNeighborDrops();
  EXPECT_GT(dropsMid, 0) << "upstream must drop instead of deadlocking";

  // Liveness: the upstream keeps draining (and reporting) rather than
  // holding the head-of-line packet forever.
  net.run(Duration::seconds(10.0));
  EXPECT_GT(net.totalDeadNeighborDrops(), dropsMid);
  EXPECT_EQ(net.totalQueueDrops(), 0)
      << "per-destination tail drops stay zero; only dead-next-hop drops";
}

TEST(BackpressureLiveness, NeighborRecoveryClearsDeadState) {
  const auto sc = scenarios::fig3();
  net::NetworkConfig base;
  base.neighborDeadTtl = Duration::seconds(2.0);
  auto net = makeGmpNetwork(sc, 9, base);
  net.enableFaults(sim::parseFaultScript("crash 2 5; recover 2 20"));

  net.run(Duration::seconds(18.0));
  ASSERT_TRUE(net.stack(1).neighborDead(2));
  net.run(Duration::seconds(12.0));
  EXPECT_FALSE(net.stack(1).neighborDead(2))
      << "a decoded frame or MAC success must revive the neighbor";
  const auto before = net.delivered(0);
  net.run(Duration::seconds(10.0));
  EXPECT_GT(net.delivered(0), before);
}

// --- satellite: dissemination sequence-number hardening ---------------------

net::Network makeIdleNetwork(const scenarios::Scenario& sc) {
  auto flows = sc.flows;
  for (auto& f : flows) f.desiredRate = PacketRate::perSecond(1.0);
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 31;
  return net::Network{sc.topology, cfg, flows};
}

TEST(DisseminationHardening, SerialComparisonHandlesWraparound) {
  using D = gmp::LinkStateDissemination;
  EXPECT_TRUE(D::seqNewer(1, 0));
  EXPECT_FALSE(D::seqNewer(0, 1));
  EXPECT_FALSE(D::seqNewer(5, 5));
  EXPECT_TRUE(D::seqNewer(0, D::kSeqModulus - 1));  // wrap
  EXPECT_TRUE(D::seqNewer(3, D::kSeqModulus - 2));
  EXPECT_FALSE(D::seqNewer(D::kSeqModulus - 1, 0));
}

TEST(DisseminationHardening, AnnouncementsSurviveSeqWraparound) {
  const auto sc = scenarios::fig3();
  auto net = makeIdleNetwork(sc);
  gmp::LinkStateDissemination diss{net};
  diss.setNextSeqForTest(1, gmp::LinkStateDissemination::kSeqModulus - 2);

  for (int round = 0; round < 4; ++round) {
    diss.announce(1, {{topo::Link{1, 2}, 10.0 * (round + 1), 0.1}});
    net.run(Duration::millis(50));
  }
  // The post-wrap announcements (seq 0, 1) supersede the pre-wrap ones
  // (seq 65534, 65535) at every receiver.
  EXPECT_DOUBLE_EQ(diss.knownStates(0).at(topo::Link{1, 2}).normRate, 40.0);
  EXPECT_DOUBLE_EQ(diss.knownStates(2).at(topo::Link{1, 2}).normRate, 40.0);
  EXPECT_EQ(diss.staleDropped(), 0);
}

TEST(DisseminationHardening, RebootedOriginReentersAfterFreshnessTtl) {
  const auto sc = scenarios::fig3();
  auto net = makeIdleNetwork(sc);
  gmp::LinkStateDissemination diss{net};
  diss.setFreshnessTtl(Duration::seconds(2.0));

  diss.setNextSeqForTest(1, 1000);
  diss.announce(1, {{topo::Link{1, 2}, 50.0, 0.5}});
  net.run(Duration::millis(100));
  ASSERT_DOUBLE_EQ(diss.knownStates(0).at(topo::Link{1, 2}).normRate, 50.0);

  // Origin reboots and restarts its counter. Its first announcement
  // carries seq 0 < 1000, arrives well inside the freshness TTL, and
  // must NOT overwrite the (possibly newer) stored state.
  diss.setNextSeqForTest(1, 0);
  diss.announce(1, {{topo::Link{1, 2}, 60.0, 0.6}});
  net.run(Duration::millis(100));
  EXPECT_DOUBLE_EQ(diss.knownStates(0).at(topo::Link{1, 2}).normRate, 50.0);
  EXPECT_GT(diss.staleDropped(), 0);

  // Once the stale high water mark has expired, the rebooted origin's
  // low sequence numbers are accepted again.
  net.run(Duration::seconds(2.5));
  diss.announce(1, {{topo::Link{1, 2}, 70.0, 0.7}});
  net.run(Duration::millis(100));
  EXPECT_DOUBLE_EQ(diss.knownStates(0).at(topo::Link{1, 2}).normRate, 70.0);
  EXPECT_GT(diss.rebootAccepts(), 0);
}

// --- controller degradation --------------------------------------------------

TEST(GmpDegradation, StaleNodeTriggersConservativeDecay) {
  const auto sc = scenarios::fig3();
  auto net = makeGmpNetwork(sc, 11);
  net.enableFaults(sim::parseFaultScript("crash 1 20"));
  gmp::Controller controller{net, gmp::GmpParams{}};
  controller.start();
  net.run(Duration::seconds(80.0));

  EXPECT_GT(controller.staleMeasurementsUsed(), 0)
      << "the cached measurement must bridge the TTL window first";
  const auto& snap = controller.lastSnapshot();
  EXPECT_TRUE(snap.staleNodes.contains(1));
  // Flows crossing node 1 (f1: 0->3, f2: 1->3) are impaired; f3 (2->3)
  // is not.
  EXPECT_TRUE(snap.impairedFlows.contains(0));
  EXPECT_TRUE(snap.impairedFlows.contains(1));
  EXPECT_FALSE(snap.impairedFlows.contains(2));
  EXPECT_GT(controller.lastReport().staleDecays, 0);

  // The impaired flows' limits have decayed to the floor instead of
  // freezing at the pre-fault equilibrium.
  const gmp::GmpParams params;
  ASSERT_TRUE(net.rateLimit(0).has_value());
  EXPECT_LE(*net.rateLimit(0), params.minRatePps + 1e-9);
}

TEST(GmpDegradation, ClockSkewStaggersPeriodClosesAndStillAdjusts) {
  const auto sc = scenarios::fig3();
  auto net = makeGmpNetwork(sc, 11);
  net.enableFaults(sim::parseFaultScript("skew 1 120; skew 2 60"));
  gmp::Controller controller{net, gmp::GmpParams{}};
  controller.start();
  net.run(Duration::seconds(100.0));

  EXPECT_GT(controller.skewedPeriods(), 0);
  EXPECT_GT(controller.periodsRun(), 20);
  EXPECT_EQ(net.totalQueueDrops(), 0);
  for (const auto& fs : controller.lastSnapshot().flows) {
    EXPECT_GT(fs.ratePps, 0.0) << "flow " << fs.id;
  }
}

TEST(GmpDegradation, RecoveryAtExactPeriodBoundaryDoesNotAbort) {
  // Recovery lands exactly on the 4 s period boundary: the node's fresh
  // measurement window is zero-length at the close that follows in the
  // same instant. Pre-fix this aborted assembleSnapshot ("empty
  // measurement window"); now the controller bridges the node with its
  // cached measurement for that one period.
  const auto sc = scenarios::fig3();
  auto net = makeGmpNetwork(sc, 11);
  net.enableFaults(sim::parseFaultScript("crash 1 6; recover 1 8"));
  gmp::Controller controller{net, gmp::GmpParams{}};
  controller.start();
  ASSERT_NO_THROW(net.run(Duration::seconds(21.0)));

  EXPECT_EQ(controller.periodsRun(), 5);
  EXPECT_EQ(controller.staleMeasurementsUsed(), 1)
      << "exactly the boundary period substitutes the cached measurement";
  EXPECT_TRUE(controller.lastSnapshot().staleNodes.empty())
      << "one bridged period must not leave the node stale";
  for (const auto& fs : controller.lastSnapshot().flows) {
    EXPECT_GT(fs.ratePps, 0.0) << "flow " << fs.id;
  }
}

TEST(GmpDegradation, ChurnedSourceFlowIsImpairedWhileBridged) {
  // Node 2 sources flow 2 and crashes mid-period. While its cached
  // measurement bridges the gap, the flow's "measured" rate is the
  // pre-crash localFlowRate reported as if live — the controller must
  // flag the flow impaired instead of letting the engine adjust on it.
  const auto sc = scenarios::fig3();
  auto net = makeGmpNetwork(sc, 11);
  net.enableFaults(sim::parseFaultScript("crash 2 6"));
  gmp::Controller controller{net, gmp::GmpParams{}};
  controller.start();
  net.run(Duration::seconds(9.0));  // two boundaries: t=4 clean, t=8 bridged

  EXPECT_EQ(controller.staleMeasurementsUsed(), 1);
  const auto& snap = controller.lastSnapshot();
  EXPECT_TRUE(snap.staleNodes.empty()) << "still within the TTL";
  EXPECT_TRUE(snap.impairedFlows.contains(2))
      << "flow sourced at the bridged node reports a ghost rate";
  EXPECT_FALSE(snap.impairedFlows.contains(0));
}

TEST(GmpDegradation, CachedMeasurementsArePrunedPastTtl) {
  const auto sc = scenarios::fig3();
  auto net = makeGmpNetwork(sc, 11);
  net.enableFaults(sim::parseFaultScript("crash 1 6"));
  gmp::Controller controller{net, gmp::GmpParams{}};
  controller.start();

  net.run(Duration::seconds(5.0));  // one clean period: everyone cached
  EXPECT_EQ(controller.cachedMeasurements(), 4u);
  net.run(Duration::seconds(12.0));  // t=17: node 1 unusable 3 periods > TTL 2
  EXPECT_EQ(controller.cachedMeasurements(), 3u)
      << "the dead node's cache must age out with the TTL";
  EXPECT_TRUE(controller.lastSnapshot().staleNodes.contains(1));
}

// --- partition-aware GMP (DESIGN.md §13) -------------------------------------

TEST(Partition, CutLinkQuarantinesSeveredFlowsOnly) {
  // Cutting link 1-2 on the Fig. 3 chain splits the alive graph into
  // {0,1} and {2,3}. Flows f1 (0->3) and f2 (1->3) cross the cut and
  // are quarantined; f3 (2->3) lives entirely in the far component and
  // must keep being adjusted normally.
  const auto sc = scenarios::fig3();
  auto net = makeGmpNetwork(sc, 11);
  net.enableFaults(sim::parseFaultScript("linkdown 1 2 6"));
  gmp::Controller controller{net, gmp::GmpParams{}};
  controller.start();
  net.run(Duration::seconds(13.0));

  const auto& snap = controller.lastSnapshot();
  EXPECT_EQ(snap.partitions, 2);
  EXPECT_TRUE(snap.quarantinedFlows.contains(0));
  EXPECT_TRUE(snap.quarantinedFlows.contains(1));
  EXPECT_FALSE(snap.quarantinedFlows.contains(2));
  EXPECT_TRUE(snap.impairedFlows.contains(0))
      << "quarantined flows are a subset of impaired flows";
  EXPECT_GT(controller.partitionedPeriods(), 0);
  EXPECT_GT(controller.flowsQuarantined(), 0);
  // The locally-consistent components: sources 0,1 on one side of the
  // cut, source 2 on the other.
  EXPECT_EQ(snap.flowPartition.at(0), snap.flowPartition.at(1));
  EXPECT_NE(snap.flowPartition.at(0), snap.flowPartition.at(2));
}

TEST(Partition, ReMergeLiftsQuarantineAndReconcilesLimits) {
  const auto sc = scenarios::fig3();
  auto net = makeGmpNetwork(sc, 11);
  net.enableFaults(sim::parseFaultScript("linkdown 1 2 6; linkup 1 2 18"));
  gmp::Controller controller{net, gmp::GmpParams{}};
  controller.start();
  net.run(Duration::seconds(40.0));

  const auto& snap = controller.lastSnapshot();
  EXPECT_EQ(snap.partitions, 1);
  EXPECT_TRUE(snap.quarantinedFlows.empty());
  // Reconciliation rides the existing restore machinery: the severed
  // flows' pre-fault limits came back when the partition healed.
  EXPECT_GT(controller.limitsRestored(), 0);
  const auto& history = controller.partitionHistory();
  ASSERT_FALSE(history.empty());
  EXPECT_EQ(history.size(), static_cast<std::size_t>(controller.periodsRun()));
}

TEST(Partition, NodeCrashDoesNotQuarantine) {
  // A crashed node splits the alive graph too, but its flows' paths are
  // structurally intact: staleness bridging (and, past the TTL, stale
  // decay) handles them. Quarantine keys on cut links alone, so flows
  // crossing the bridged node stay un-quarantined.
  const auto sc = scenarios::fig3();
  auto net = makeGmpNetwork(sc, 11);
  net.enableFaults(sim::parseFaultScript("crash 1 6"));
  gmp::Controller controller{net, gmp::GmpParams{}};
  controller.start();
  net.run(Duration::seconds(13.0));

  const auto& snap = controller.lastSnapshot();
  EXPECT_EQ(snap.partitions, 2) << "node 0 is severed from {2,3}";
  EXPECT_TRUE(snap.quarantinedFlows.empty());
}

// --- disruption analysis extensions ------------------------------------------

TEST(DisruptionExtensions, CoverageRestorationAndPerPartitionIeq) {
  // Synthetic 8-period run: two flows (1 hop each), fault at period 2,
  // coverage dips periods 2-3 and is back at period 4; the flows sit in
  // separate components during periods 2-4.
  analysis::RateHistory history;
  for (int p = 0; p < 8; ++p) {
    history.push_back({{0, 100.0}, {1, p == 2 ? 40.0 : 100.0}});
  }
  const std::map<net::FlowId, int> hops{{0, 1}, {1, 1}};

  analysis::DisruptionConfig cfg;
  cfg.faultPeriod = 2;
  cfg.recoveryPeriod = 4;
  cfg.coverageByPeriod = {1.0, 1.0, 0.75, 0.75, 1.0, 1.0, 1.0, 1.0};
  for (int p = 0; p < 8; ++p) {
    const bool split = p >= 2 && p <= 4;
    cfg.partitionHistory.push_back({{0, 0}, {1, split ? 1 : 0}});
  }

  const auto report = analysis::analyzeDisruption(history, hops, cfg);
  EXPECT_EQ(report.coverageRestoredAtPeriod, 4);
  EXPECT_EQ(report.periodsToCoverageRestoration, 2);
  // Component 0 always contains flow 0 (steady 100 pps): I_eq stays 1.
  ASSERT_TRUE(report.partitionIeqByPeriod.contains(0));
  ASSERT_TRUE(report.partitionIeqByPeriod.contains(1));
  for (const double ieq : report.partitionIeqByPeriod.at(1)) {
    EXPECT_DOUBLE_EQ(ieq, 1.0)
        << "a single-flow component is trivially locally consistent";
  }
  // During the split each component is fair in isolation even though the
  // global I_eq dips at period 2.
  EXPECT_LT(report.ieqByPeriod[2], 1.0);
  EXPECT_DOUBLE_EQ(report.partitionIeqByPeriod.at(0)[2], 1.0);

  // A run whose coverage never dips restores instantly.
  analysis::DisruptionConfig clean = cfg;
  clean.coverageByPeriod.assign(8, 1.0);
  const auto cleanReport = analysis::analyzeDisruption(history, hops, clean);
  EXPECT_EQ(cleanReport.periodsToCoverageRestoration, 0);
}

TEST(DisseminationHardening, RebootMidWraparoundIsSeriallyNewer) {
  // The origin crashes at seq 65534 and reboots with a zeroed counter.
  // Serial arithmetic makes seq 0 *newer* than 65534 (distance 2), so
  // the rebooted origin re-enters immediately — no freshness-TTL wait,
  // no rebootAccepts — exactly as if it had wrapped normally.
  const auto sc = scenarios::fig3();
  auto net = makeIdleNetwork(sc);
  gmp::LinkStateDissemination diss{net};

  diss.setNextSeqForTest(1, gmp::LinkStateDissemination::kSeqModulus - 2);
  diss.announce(1, {{topo::Link{1, 2}, 50.0, 0.5}});
  net.run(Duration::millis(100));
  ASSERT_DOUBLE_EQ(diss.knownStates(0).at(topo::Link{1, 2}).normRate, 50.0);

  diss.setNextSeqForTest(1, 0);  // reboot lost the counter mid-wrap
  diss.announce(1, {{topo::Link{1, 2}, 60.0, 0.6}});
  net.run(Duration::millis(100));
  EXPECT_DOUBLE_EQ(diss.knownStates(0).at(topo::Link{1, 2}).normRate, 60.0);
  EXPECT_EQ(diss.rebootAccepts(), 0)
      << "serially-newer reboot must not need the reboot path";
  EXPECT_EQ(diss.staleDropped(), 0);

  // A reboot landing in the serially-*older* half is the hard case: it
  // must wait out the freshness TTL like any stale sequence.
  diss.setFreshnessTtl(Duration::seconds(2.0));
  diss.setNextSeqForTest(1, 40000);
  diss.announce(1, {{topo::Link{1, 2}, 70.0, 0.7}});
  net.run(Duration::millis(100));
  EXPECT_DOUBLE_EQ(diss.knownStates(0).at(topo::Link{1, 2}).normRate, 60.0);
  EXPECT_GT(diss.staleDropped(), 0);
  net.run(Duration::seconds(2.5));
  diss.announce(1, {{topo::Link{1, 2}, 80.0, 0.8}});
  net.run(Duration::millis(100));
  EXPECT_DOUBLE_EQ(diss.knownStates(0).at(topo::Link{1, 2}).normRate, 80.0);
  EXPECT_GT(diss.rebootAccepts(), 0);
}

// --- the acceptance experiment ----------------------------------------------

TEST(GmpDegradation, Fig4CrashRecoveryWithBurstyControlLossReconverges) {
  // ISSUE acceptance: Fig. 4 + scripted mid-session relay crash and
  // recovery + ~20 % Gilbert-Elliott loss on control frames. GMP must
  // re-converge to I_eq >= 0.9 within 10 adjustment periods of the
  // recovery, with zero deadlocked queues.
  const auto sc = scenarios::fig4();

  analysis::RunConfig cfg;
  cfg.protocol = analysis::Protocol::kGmp;
  cfg.duration = Duration::seconds(400.0);
  cfg.warmup = Duration::seconds(200.0);
  cfg.seed = 7;
  cfg.faults = scenarios::midSessionRelayCrash(sc, Duration::seconds(120.0),
                                               Duration::seconds(40.0));
  cfg.netBase.impairments.gilbert.pGoodToBad = 0.05;
  cfg.netBase.impairments.gilbert.pBadToGood = 0.20;
  cfg.netBase.impairments.gilbert.lossBad = 1.0;
  cfg.netBase.impairments.scope =
      phys::ImpairmentConfig::Scope::kControlFrames;

  const auto result = analysis::runScenario(sc, cfg);

  std::map<net::FlowId, int> hops;
  for (const auto& f : result.flows) hops[f.id] = f.hops;
  analysis::DisruptionConfig dc;
  dc.faultPeriod = 30;     // crash at 120 s / 4 s periods
  dc.recoveryPeriod = 40;  // recovery at 160 s
  const auto report = analysis::analyzeDisruption(result.rateHistory, hops, dc);

  EXPECT_GT(report.baselineIeq, 0.9) << "pre-fault fairness must be healthy";
  EXPECT_LT(report.dipIeq, report.baselineIeq)
      << "the crash must actually disturb the allocation";
  ASSERT_GE(report.periodsToReconverge, 0) << "never re-converged";
  EXPECT_LE(report.periodsToReconverge, 10);
  EXPECT_GE(result.summary.ieq, 0.9)
      << "steady state after recovery must be fair";

  // Zero deadlocked queues: the lossless per-destination scheme never
  // tail-drops, and after recovery every flow is moving again.
  EXPECT_EQ(result.queueDrops, 0);
  ASSERT_FALSE(result.rateHistory.empty());
  for (const auto& [id, rate] : result.rateHistory.back()) {
    EXPECT_GT(rate, 0.0) << "flow " << id << " wedged after recovery";
  }
  EXPECT_GT(result.crashDrops, 0) << "the crash flushed the relay's queues";
  EXPECT_GT(result.staleMeasurementsUsed, 0);
  EXPECT_GT(result.limitsRestored, 0)
      << "recovery must restore pre-fault limits";
}

}  // namespace
}  // namespace maxmin
