#include <gtest/gtest.h>

#include <numeric>

#include "net/network.hpp"
#include "net/packet_queue.hpp"

namespace maxmin::net {
namespace {

topo::Topology chainTopo(int n, double spacing = 200.0) {
  std::vector<topo::Point> pts;
  for (int i = 0; i < n; ++i) pts.push_back({spacing * i, 0.0});
  return topo::Topology::fromPositions(std::move(pts));
}

FlowSpec makeFlow(FlowId id, topo::NodeId src, topo::NodeId dst,
                  double weight = 1.0, double rate = 800.0) {
  FlowSpec f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.weight = weight;
  f.desiredRate = PacketRate::perSecond(rate);
  f.name = "f" + std::to_string(id);
  return f;
}

TEST(PacketQueue, FullAndFractionAccounting) {
  sim::Simulator s;
  PacketQueue q{2, s.now()};
  EXPECT_FALSE(q.full());
  auto p = std::make_shared<Packet>();
  q.pushBack(p, s.now());
  EXPECT_FALSE(q.full());
  s.runUntil(TimePoint::origin() + Duration::micros(100));
  q.pushBack(p, s.now());
  EXPECT_TRUE(q.full());
  s.runUntil(TimePoint::origin() + Duration::micros(300));
  q.popFront(s.now());
  EXPECT_FALSE(q.full());
  s.runUntil(TimePoint::origin() + Duration::micros(400));
  // Full from 100..300 out of 0..400.
  EXPECT_DOUBLE_EQ(q.fullFraction(TimePoint::origin(), s.now()), 0.5);
}

TEST(PacketQueue, PushFrontRestoresHead) {
  sim::Simulator s;
  PacketQueue q{4, s.now()};
  auto p1 = std::make_shared<Packet>();
  p1->seq = 1;
  auto p2 = std::make_shared<Packet>();
  p2->seq = 2;
  q.pushBack(p1, s.now());
  q.pushBack(p2, s.now());
  auto popped = q.popFront(s.now());
  EXPECT_EQ(popped->seq, 1);
  q.pushFront(popped, s.now());
  EXPECT_EQ(q.front()->seq, 1);
}

TEST(PacketQueue, OverwriteTailReplacesBack) {
  sim::Simulator s;
  PacketQueue q{2, s.now()};
  auto p1 = std::make_shared<Packet>();
  p1->seq = 1;
  auto p2 = std::make_shared<Packet>();
  p2->seq = 2;
  auto p3 = std::make_shared<Packet>();
  p3->seq = 3;
  q.pushBack(p1, s.now());
  q.pushBack(p2, s.now());
  q.overwriteTail(p3);
  EXPECT_EQ(q.size(), 2u);
  q.popFront(s.now());
  EXPECT_EQ(q.front()->seq, 3);
}

TEST(Network, SingleHopFlowDeliversAtDesiredRate) {
  NetworkConfig cfg;
  cfg.seed = 5;
  Network net{chainTopo(2), cfg, {makeFlow(0, 0, 1, 1.0, 100.0)}};
  net.run(Duration::seconds(10.0));
  // 100 pkt/s over 10 s with jittered generation: ~1000 packets.
  EXPECT_NEAR(static_cast<double>(net.delivered(0)), 1000.0, 60.0);
  EXPECT_EQ(net.totalQueueDrops(), 0);
}

TEST(Network, MultihopFlowTraversesChain) {
  NetworkConfig cfg;
  cfg.seed = 6;
  Network net{chainTopo(4), cfg, {makeFlow(0, 0, 3, 1.0, 50.0)}};
  net.run(Duration::seconds(10.0));
  EXPECT_EQ(net.hopCount(0), 3);
  EXPECT_NEAR(static_cast<double>(net.delivered(0)), 500.0, 50.0);
}

TEST(Network, RateLimitCapsSource) {
  NetworkConfig cfg;
  cfg.seed = 7;
  Network net{chainTopo(2), cfg, {makeFlow(0, 0, 1, 1.0, 400.0)}};
  net.setRateLimit(0, 50.0);
  net.run(Duration::seconds(10.0));
  EXPECT_NEAR(static_cast<double>(net.delivered(0)), 500.0, 50.0);
  // Removing the limit restores the desired rate.
  const auto before = net.snapshotDeliveries();
  net.setRateLimit(0, std::nullopt);
  net.run(Duration::seconds(5.0));
  const auto rates = Network::ratesBetween(before, net.snapshotDeliveries());
  EXPECT_NEAR(rates.at(0), 400.0, 40.0);
}

TEST(Network, BackpressureIsLosslessOnSaturatedChain) {
  // A saturated 3-hop chain: per-destination queueing + congestion
  // avoidance must not drop a single packet anywhere (paper §2.2).
  NetworkConfig cfg;
  cfg.seed = 8;
  Network net{chainTopo(4), cfg, {makeFlow(0, 0, 3, 1.0, 800.0)}};
  net.run(Duration::seconds(20.0));
  EXPECT_EQ(net.totalQueueDrops(), 0);
  EXPECT_GT(net.delivered(0), 1000);  // still flowing
  // Conservation: admitted = delivered + in flight (bounded by total
  // buffering: 3 relay queues + source queue + MAC).
  const auto& counters = net.stack(0).sourceCounters(0);
  const std::int64_t inFlight = counters.admitted - net.delivered(0);
  EXPECT_GE(inFlight, 0);
  EXPECT_LE(inFlight, 4 * cfg.queueCapacity + 4);
}

TEST(Network, SharedFifoBaselineDropsUnderOverload) {
  NetworkConfig cfg;
  cfg.discipline = QueueDiscipline::kSharedFifo;
  cfg.congestionAvoidance = false;
  cfg.sharedBufferCapacity = 50;
  cfg.seed = 9;
  Network net{chainTopo(4), cfg, {makeFlow(0, 0, 3, 1.0, 800.0)}};
  net.run(Duration::seconds(10.0));
  EXPECT_GT(net.totalQueueDrops(), 0);
  EXPECT_GT(net.delivered(0), 100);
}

TEST(Network, PerDestinationQueueIsolatesDestinations) {
  // Two flows from node 0: one to a congested 3-hop path, one to the
  // direct neighbor. With per-destination queues the short flow keeps its
  // full rate.
  NetworkConfig cfg;
  cfg.seed = 10;
  Network net{chainTopo(4),
              cfg,
              {makeFlow(0, 0, 3, 1.0, 800.0), makeFlow(1, 0, 1, 1.0, 100.0)}};
  net.run(Duration::seconds(12.0));
  const auto snapshotStart = net.snapshotDeliveries();
  net.run(Duration::seconds(8.0));
  const auto rates = Network::ratesBetween(snapshotStart, net.snapshotDeliveries());
  EXPECT_NEAR(rates.at(1), 100.0, 20.0);
}

TEST(Network, MeasurementWindowReportsRatesAndOmega) {
  NetworkConfig cfg;
  cfg.seed = 11;
  Network net{chainTopo(3), cfg, {makeFlow(0, 0, 2, 1.0, 800.0)}};
  net.setSourceMu(0, 123.0);
  net.run(Duration::seconds(4.0));
  // Node 1 relays: its measurement shows upstream from 0 and downstream
  // to dest 2.
  auto m1 = net.closeMeasurementWindow(1);
  EXPECT_EQ(m1.node, 1);
  EXPECT_NEAR(m1.periodSeconds, 4.0, 1e-9);
  ASSERT_TRUE(m1.upstream.contains({0, 2}));
  EXPECT_GT(m1.upstream.at({0, 2}).packets, 100);
  EXPECT_DOUBLE_EQ(m1.upstream.at({0, 2}).flowMu.at(0), 123.0);
  ASSERT_TRUE(m1.downstream.contains(2));
  EXPECT_GT(m1.downstream.at(2).packets, 100);

  // Source node: local flow rate present; saturated source queue -> the
  // chain is overloaded at 800 pkt/s so Omega should be substantial.
  auto m0 = net.closeMeasurementWindow(0);
  ASSERT_TRUE(m0.localFlowRate.contains(0));
  EXPECT_GT(m0.localFlowRate.at(0), 50.0);
  ASSERT_TRUE(m0.queueFullFraction.contains(2));
  EXPECT_GT(m0.queueFullFraction.at(2), 0.25);

  // Second window starts fresh.
  net.run(Duration::seconds(1.0));
  auto m1b = net.closeMeasurementWindow(1);
  EXPECT_NEAR(m1b.periodSeconds, 1.0, 1e-9);
}

TEST(Network, OmegaIsBimodal) {
  // The paper's §6.2 observation justifying the 25% threshold: when
  // upstream supplies more than the node can forward, Omega stays high;
  // when it supplies less, Omega is near zero.
  NetworkConfig cfg;
  cfg.seed = 12;
  {
    Network net{chainTopo(3), cfg, {makeFlow(0, 0, 2, 1.0, 800.0)}};
    net.run(Duration::seconds(8.0));
    net.closeMeasurementWindow(0);
    net.run(Duration::seconds(4.0));
    const auto m = net.closeMeasurementWindow(0);
    EXPECT_GT(m.queueFullFraction.at(2), 0.5) << "overloaded source queue";
  }
  {
    Network net{chainTopo(3), cfg, {makeFlow(0, 0, 2, 1.0, 50.0)}};
    net.run(Duration::seconds(8.0));
    net.closeMeasurementWindow(0);
    net.run(Duration::seconds(4.0));
    const auto m = net.closeMeasurementWindow(0);
    EXPECT_LT(m.queueFullFraction.at(2), 0.05) << "underloaded source queue";
  }
}

TEST(Network, ActiveLinksAndPaths) {
  NetworkConfig cfg;
  Network net{chainTopo(4),
              cfg,
              {makeFlow(0, 0, 3, 1.0, 10.0), makeFlow(1, 2, 3, 1.0, 10.0)}};
  EXPECT_EQ(net.pathOf(0), (std::vector<topo::NodeId>{0, 1, 2, 3}));
  const auto links = net.activeLinks();
  EXPECT_EQ(links, (std::vector<topo::Link>{{0, 1}, {1, 2}, {2, 3}}));
}

TEST(Network, ValidationRejectsBadFlows) {
  NetworkConfig cfg;
  EXPECT_THROW(
      (Network{chainTopo(2), cfg, {makeFlow(0, 0, 0, 1.0, 10.0)}}),
      InvariantViolation);
  EXPECT_THROW((Network{chainTopo(2), cfg,
                        {makeFlow(0, 0, 1, 1.0, 10.0),
                         makeFlow(0, 1, 0, 1.0, 10.0)}}),
               InvariantViolation);
  EXPECT_THROW(
      (Network{chainTopo(2), cfg, {makeFlow(0, 0, 1, -1.0, 10.0)}}),
      InvariantViolation);
}

TEST(Network, DisconnectedFlowRejected) {
  NetworkConfig cfg;
  auto t = topo::Topology::fromPositions({{0, 0}, {5000, 0}});
  EXPECT_THROW((Network{std::move(t), cfg, {makeFlow(0, 0, 1, 1.0, 10.0)}}),
               InvariantViolation);
}

TEST(Network, WeightsDoNotAffectPlainDelivery) {
  // Weights are a GMP concept; the substrate itself ignores them.
  NetworkConfig cfg;
  cfg.seed = 13;
  Network net{chainTopo(2), cfg,
              {makeFlow(0, 0, 1, 5.0, 100.0)}};
  net.run(Duration::seconds(5.0));
  EXPECT_NEAR(static_cast<double>(net.delivered(0)), 500.0, 50.0);
}


TEST(Network, StaleBufferAdvertisementExpiresAndSenderProceeds) {
  // Failed-overhearing recovery (§2.2): a cached "full" advertisement
  // only holds the sender for holdStateTimeout, after which it attempts
  // transmission anyway.
  NetworkConfig cfg;
  cfg.seed = 21;
  cfg.holdStateTimeout = Duration::millis(60);
  Network net{chainTopo(2), cfg, {makeFlow(0, 0, 1, 1.0, 200.0)}};

  // Fabricate an overheard frame from node 1 advertising a full queue
  // for destination 1.
  phys::Frame ad;
  ad.kind = phys::FrameKind::kAck;
  ad.transmitter = 1;
  ad.addressee = 0;
  ad.bufferState = {phys::BufferStateAd{1, true}};
  net.stack(0).onFrameDecoded(ad);

  // While the advertisement is fresh, nothing is sent.
  net.run(Duration::millis(40));
  EXPECT_EQ(net.delivered(0), 0);

  // After expiry the sender stops waiting and traffic flows.
  net.run(Duration::seconds(2.0));
  EXPECT_GT(net.delivered(0), 300);
}

TEST(Network, ClearedBufferAdvertisementUnblocksImmediately) {
  NetworkConfig cfg;
  cfg.seed = 22;
  cfg.holdStateTimeout = Duration::seconds(10.0);  // expiry out of reach
  Network net{chainTopo(2), cfg, {makeFlow(0, 0, 1, 1.0, 200.0)}};

  phys::Frame full;
  full.kind = phys::FrameKind::kAck;
  full.transmitter = 1;
  full.addressee = 0;
  full.bufferState = {phys::BufferStateAd{1, true}};
  net.stack(0).onFrameDecoded(full);
  net.run(Duration::millis(100));
  EXPECT_EQ(net.delivered(0), 0);

  phys::Frame clear = full;
  clear.bufferState = {phys::BufferStateAd{1, false}};
  net.stack(0).onFrameDecoded(clear);
  net.run(Duration::millis(500));
  EXPECT_GT(net.delivered(0), 50);
}

TEST(Network, DuplicateSuppressionAccountsForLostAcks) {
  // On a long saturated chain some ACKs collide, causing link-layer
  // retransmissions; duplicate suppression must keep end-to-end
  // delivery consistent with admission.
  NetworkConfig cfg;
  cfg.seed = 23;
  Network net{chainTopo(5), cfg, {makeFlow(0, 0, 4, 1.0, 800.0)}};
  net.run(Duration::seconds(30.0));
  std::int64_t dups = 0;
  for (topo::NodeId n = 0; n < 5; ++n) dups += net.stack(n).duplicatesDropped();
  const auto& counters = net.stack(0).sourceCounters(0);
  const std::int64_t inFlight = counters.admitted - net.delivered(0);
  EXPECT_GE(inFlight, 0) << "delivered more than admitted (missed duplicate)";
  EXPECT_LE(inFlight, 5 * cfg.queueCapacity + 5);
  EXPECT_EQ(net.totalQueueDrops(), 0);
  // The scenario actually exercises the duplicate path.
  EXPECT_GT(dups, 0);
}

TEST(Network, SourceCountersTrackBlockedGeneration) {
  NetworkConfig cfg;
  cfg.seed = 24;
  Network net{chainTopo(4), cfg, {makeFlow(0, 0, 3, 1.0, 800.0)}};
  net.run(Duration::seconds(10.0));
  const auto& c = net.stack(0).sourceCounters(0);
  EXPECT_GT(c.generatedAttempts, 7000);
  EXPECT_GT(c.blockedBySourceQueue, 1000);  // saturated: source gated
  EXPECT_EQ(c.admitted + c.blockedBySourceQueue, c.generatedAttempts);
}

}  // namespace
}  // namespace maxmin::net

