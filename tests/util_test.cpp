#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace maxmin {
namespace {

TEST(Duration, ArithmeticAndComparison) {
  const Duration a = Duration::millis(2);
  const Duration b = Duration::micros(500);
  EXPECT_EQ((a + b).asMicros(), 2500);
  EXPECT_EQ((a - b).asMicros(), 1500);
  EXPECT_EQ((b * 4).asMicros(), 2000);
  EXPECT_EQ((a / 2).asMicros(), 1000);
  EXPECT_LT(b, a);
  EXPECT_DOUBLE_EQ(Duration::seconds(1.5).asSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(b.ratio(a), 0.25);
}

TEST(TimePoint, OffsetAndDifference) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::micros(42);
  EXPECT_EQ((t1 - t0).asMicros(), 42);
  EXPECT_EQ((t1 - Duration::micros(2)).asMicros(), 40);
  EXPECT_GT(t1, t0);
}

TEST(BitRate, TxTimeRoundsUpToWholeMicroseconds) {
  const BitRate r = BitRate::megaBitsPerSecond(11.0);
  // 1052 bytes at 11 Mb/s = 765.09 us -> 766 us.
  EXPECT_EQ(r.txTime(DataSize::bytes(1052)).asMicros(), 766);
  // Exact case: 1 Mb/s, 125 bytes = 1000 us exactly.
  EXPECT_EQ(BitRate::megaBitsPerSecond(1.0).txTime(DataSize::bytes(125)).asMicros(),
            1000);
}

TEST(PacketRate, IntervalInverse) {
  EXPECT_EQ(PacketRate::perSecond(800.0).interval().asMicros(), 1250);
  EXPECT_EQ(PacketRate::perSecond(1.0).interval().asMicros(), 1000000);
}

TEST(RunningStats, MeanVarMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  s.reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(WindowedCounter, RatePerSecond) {
  WindowedCounter c;
  c.add(10);
  c.add(30);
  const TimePoint start = TimePoint::origin();
  const TimePoint end = start + Duration::seconds(4.0);
  EXPECT_DOUBLE_EQ(c.closeWindow(start, end), 10.0);
  EXPECT_EQ(c.pending(), 0);
}

// Regression: a zero-length window used to trip MAXMIN_CHECK (and, before
// that, divide by zero). It now reports a zero rate and still resets the
// counter so the next window starts clean.
TEST(WindowedCounter, ZeroLengthWindowYieldsZeroRate) {
  WindowedCounter c;
  c.add(25);
  const TimePoint t = TimePoint::origin() + Duration::seconds(3.0);
  EXPECT_DOUBLE_EQ(c.closeWindow(t, t), 0.0);
  EXPECT_EQ(c.pending(), 0);  // counter reset despite the degenerate window
  c.add(8);
  EXPECT_DOUBLE_EQ(c.closeWindow(t, t + Duration::seconds(2.0)), 4.0);
}

TEST(Duration, SecondsTruncatesTowardZero) {
  // Sub-microsecond fractions truncate (cast semantics), both signs.
  EXPECT_EQ(Duration::seconds(1.5e-6).asMicros(), 1);
  EXPECT_EQ(Duration::seconds(0.9999e-6).asMicros(), 0);
  EXPECT_EQ(Duration::seconds(-1.5e-6).asMicros(), -1);
  EXPECT_EQ(Duration::seconds(-0.25e-6).asMicros(), 0);
  EXPECT_EQ(Duration::seconds(-2.0).asMicros(), -2000000);
  EXPECT_EQ(Duration::seconds(0.0).asMicros(), 0);
}

TEST(BusyTimeAccumulator, FractionAccounting) {
  BusyTimeAccumulator acc;
  const TimePoint t0 = TimePoint::origin();
  acc.beginWindow(t0);
  acc.set(true, t0 + Duration::micros(100));
  acc.set(false, t0 + Duration::micros(300));
  // 200 of 400 us busy.
  EXPECT_DOUBLE_EQ(acc.fraction(t0, t0 + Duration::micros(400)), 0.5);
  // Still-on interval counts up to 'now'.
  acc.set(true, t0 + Duration::micros(400));
  EXPECT_DOUBLE_EQ(acc.fraction(t0, t0 + Duration::micros(800)),
                   (200.0 + 400.0) / 800.0);
}

TEST(BusyTimeAccumulator, RedundantTransitionsIgnored) {
  BusyTimeAccumulator acc;
  const TimePoint t0 = TimePoint::origin();
  acc.beginWindow(t0);
  acc.set(true, t0 + Duration::micros(10));
  acc.set(true, t0 + Duration::micros(20));  // ignored
  acc.set(false, t0 + Duration::micros(30));
  EXPECT_DOUBLE_EQ(acc.fraction(t0, t0 + Duration::micros(40)), 0.5);
}

TEST(BusyTimeAccumulator, WindowRestartCarriesState) {
  BusyTimeAccumulator acc;
  const TimePoint t0 = TimePoint::origin();
  acc.beginWindow(t0);
  acc.set(true, t0);
  const TimePoint t1 = t0 + Duration::micros(100);
  EXPECT_DOUBLE_EQ(acc.fraction(t0, t1), 1.0);
  acc.beginWindow(t1);
  EXPECT_DOUBLE_EQ(acc.fraction(t1, t1 + Duration::micros(50)), 1.0);
}

TEST(FairnessIndices, JainIndex) {
  EXPECT_DOUBLE_EQ(jainIndex({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(jainIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(jainIndex({0.0, 0.0}), 1.0);
  // One user hogging: index -> 1/n.
  EXPECT_NEAR(jainIndex({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  EXPECT_NEAR(jainIndex({4.0, 1.0, 1.0}), 36.0 / (3.0 * 18.0), 1e-12);
}

TEST(FairnessIndices, MaxminIndex) {
  EXPECT_DOUBLE_EQ(maxminIndex({2.0, 4.0}), 0.5);
  EXPECT_DOUBLE_EQ(maxminIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(maxminIndex({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(maxminIndex({0.0, 5.0}), 0.0);
}

TEST(FairnessIndices, SingleFlowIsPerfectlyFair) {
  // A one-flow network is trivially fair under both indices, including
  // the degenerate zero-rate flow.
  EXPECT_DOUBLE_EQ(jainIndex({123.4}), 1.0);
  EXPECT_DOUBLE_EQ(maxminIndex({123.4}), 1.0);
  EXPECT_DOUBLE_EQ(jainIndex({0.0}), 1.0);
  EXPECT_DOUBLE_EQ(maxminIndex({0.0}), 1.0);
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  Table t({"flow", "rate"});
  t.addRow({"f1", Table::num(563.957)});
  t.addRow({"f2", Table::num(196.0)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("563.96"), std::string::npos);
  EXPECT_NE(out.find("| flow"), std::string::npos);

  std::ostringstream csv;
  t.printCsv(csv);
  EXPECT_NE(csv.str().find("flow,rate\nf1,563.96\n"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), InvariantViolation);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
  }
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng a{7};
  Rng fork1 = a.fork();
  Rng c{7};
  Rng fork2 = c.fork();
  EXPECT_EQ(fork1.uniformInt(0, 1 << 30), fork2.uniformInt(0, 1 << 30));
}

TEST(Rng, UniformIntBounds) {
  Rng r{3};
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r{11};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Check, ThrowsWithMessage) {
  try {
    MAXMIN_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace maxmin
