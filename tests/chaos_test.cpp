// Tests for the chaos-schedule fuzzer (sim::generateChaosSchedule), its
// replayable script serialization, and the invariant-oracle harness
// (analysis::runChaosSchedule). The threaded batch test runs under TSan
// via the sanitizer preset's label filter.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "analysis/chaos_harness.hpp"
#include "baselines/configs.hpp"
#include "gmp/dissemination.hpp"
#include "net/network.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/chaos.hpp"
#include "sim/fault_plane.hpp"
#include "util/rng.hpp"

namespace maxmin {
namespace {

sim::ChaosConfig smallConfig() {
  sim::ChaosConfig cfg;
  cfg.numNodes = 4;
  cfg.relayNodes = {1, 2};
  cfg.links = {{0, 1}, {1, 2}, {2, 3}};
  return cfg;
}

TEST(ChaosSchedule, ScriptTextRoundTripsExactly) {
  // The replay contract: a failing seed's serialized script, fed back
  // through parseFaultScript, reproduces the identical event sequence.
  // 250 ms tick quantization makes every time binary-exact in "%.6f".
  Rng rng = Rng{42}.stream("chaos");
  const auto script = sim::generateChaosSchedule(smallConfig(), rng);
  ASSERT_FALSE(script.events.empty());

  const std::string text = sim::toScriptText(script);
  const auto reparsed = sim::parseFaultScript(text);
  ASSERT_EQ(reparsed.events.size(), script.events.size());
  for (std::size_t i = 0; i < script.events.size(); ++i) {
    const auto& a = script.events[i];
    const auto& b = reparsed.events[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.node, b.node) << "event " << i;
    EXPECT_EQ(a.peer, b.peer) << "event " << i;
    EXPECT_EQ((a.at - TimePoint::origin()).asMicros(),
              (b.at - TimePoint::origin()).asMicros())
        << "event " << i << " time drifted through the text format";
  }
}

TEST(ChaosSchedule, QuantumEdgeTimesRoundTripWithoutRequantizationDrift) {
  // Events scripted exactly on 250 ms quantum edges, plus times whose
  // decimal text has no exact double ("8.1" is 8.0999...96): serialize ->
  // parse must land on the identical microsecond tick, and a second
  // serialize must be byte-identical (the text format is a fixed point,
  // so repeated replay cycles cannot drift an event a tick earlier).
  const auto at = [](std::int64_t us) {
    return TimePoint::origin() + Duration::micros(us);
  };
  sim::FaultScript script;
  script.events.push_back({at(250000), sim::FaultEvent::Kind::kNodeDown, 1});
  script.events.push_back({at(8100000), sim::FaultEvent::Kind::kNodeUp, 1});
  script.events.push_back(
      {at(750000), sim::FaultEvent::Kind::kLinkDown, 0, 1});
  script.events.push_back({at(1000000), sim::FaultEvent::Kind::kClockSkew, 2,
                           -1, Duration::micros(4100)});  // 4.1 ms skew

  const std::string text = sim::toScriptText(script);
  const auto reparsed = sim::parseFaultScript(text);
  ASSERT_EQ(reparsed.events.size(), script.events.size());
  for (std::size_t i = 0; i < script.events.size(); ++i) {
    EXPECT_EQ((reparsed.events[i].at - TimePoint::origin()).asMicros(),
              (script.events[i].at - TimePoint::origin()).asMicros())
        << "event " << i << " re-quantized through the text format";
    EXPECT_EQ(reparsed.events[i].skew.asMicros(),
              script.events[i].skew.asMicros())
        << "event " << i;
  }
  EXPECT_EQ(sim::toScriptText(reparsed), text) << "round-trip not a fixed point";

  // Direct decimal text (the hand-written script case): "8.1" must round
  // to 8100000 us, not truncate to 8099999.
  const auto parsed = sim::parseFaultScript("crash 3 8.1");
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ((parsed.events[0].at - TimePoint::origin()).asMicros(), 8100000);
}

TEST(ChaosSchedule, RespectsWindowAndHealsEverything) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng = Rng{seed}.stream("chaos");
    auto cfg = smallConfig();
    cfg.crashStorms = 2;
    cfg.linkFlaps = 2;
    const auto script = sim::generateChaosSchedule(cfg, rng);

    const TimePoint start =
        TimePoint::origin() + Duration::seconds(cfg.startSeconds);
    const TimePoint healBy =
        TimePoint::origin() + Duration::seconds(cfg.healBySeconds);
    int downs = 0;
    int ups = 0;
    for (const auto& e : script.events) {
      EXPECT_GE(e.at, start) << "seed " << seed << ": fault in the baseline";
      EXPECT_LE(e.at, healBy) << "seed " << seed << ": fault after heal-by";
      const bool isDown = e.kind == sim::FaultEvent::Kind::kNodeDown ||
                          e.kind == sim::FaultEvent::Kind::kLinkDown;
      (isDown ? downs : ups) += 1;
    }
    EXPECT_EQ(downs, ups) << "seed " << seed
                          << ": every outage needs a matching heal";
    EXPECT_TRUE(std::is_sorted(script.events.begin(), script.events.end(),
                               [](const auto& a, const auto& b) {
                                 return a.at < b.at;
                               }));
  }
}

TEST(ChaosSchedule, CrashStormsTargetTheRelayBackbone) {
  Rng rng = Rng{7}.stream("chaos");
  auto cfg = smallConfig();
  cfg.crashStorms = 3;
  cfg.linkFlaps = 0;
  cfg.isolations = 0;
  const auto script = sim::generateChaosSchedule(cfg, rng);
  for (const auto& e : script.events) {
    if (e.kind != sim::FaultEvent::Kind::kNodeDown) continue;
    EXPECT_TRUE(std::find(cfg.relayNodes.begin(), cfg.relayNodes.end(),
                          e.node) != cfg.relayNodes.end())
        << "storm victim " << e.node << " is not a relay";
  }
}

analysis::ChaosParams quickParams() {
  // One storm with short outages healing early. The tail must stay long:
  // re-climbing from the decayed floor at additiveIncreasePps per period
  // takes GMP ~20 periods, so an 80 s tail still reads ~0.85.
  analysis::ChaosParams p;
  p.horizonSeconds = 150.0;
  p.startSeconds = 6.0;
  p.healBySeconds = 20.0;
  p.shape.minOutageSeconds = 1.0;
  p.shape.maxOutageSeconds = 6.0;
  p.tailIeq = 0.9;
  return p;
}

TEST(ChaosHarness, SmokeBatchPassesAllOracles) {
  const auto sc = scenarios::fig3();
  const auto outcomes = analysis::runChaosBatch(sc, 1, 4, quickParams());
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.ok) << "seed " << o.seed << ": "
                      << (o.violations.empty() ? "?" : o.violations.front());
    EXPECT_FALSE(o.script.empty());
    EXPECT_GT(o.periodsRun, 10);
    EXPECT_FALSE(o.coverageByPeriod.empty());
  }
}

TEST(ChaosHarness, OutcomesAreDeterministicPerSeed) {
  const auto sc = scenarios::fig3();
  const auto a = analysis::runChaosSchedule(sc, 5, quickParams());
  const auto b = analysis::runChaosSchedule(sc, 5, quickParams());
  EXPECT_EQ(a.script, b.script);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.periodsRun, b.periodsRun);
  EXPECT_DOUBLE_EQ(a.tailIeq, b.tailIeq);
  EXPECT_EQ(a.relayRepairs, b.relayRepairs);
  EXPECT_EQ(a.retransmits, b.retransmits);
}

TEST(ChaosHarness, CanaryStaticBackboneIsCaughtDeterministically) {
  // The acceptance canary: re-introduce the pre-§13 bug (dominating
  // sets frozen at construction) and the coverage oracle must catch it
  // with a deterministic seed and a replayable script. Sparse chains
  // have trivial relay sets (every neighbor is needed), so the canary
  // only bites on a mesh.
  const auto sc = scenarios::randomMesh(1, 12, 700.0, 5);
  // Default fault window (storms up to 56 s, outages 2-10 s) — the
  // quickParams storm is too gentle to open a mesh coverage hole.
  analysis::ChaosParams params;
  params.repairEnabled = false;
  params.shape.crashStorms = 2;
  // Coverage is the oracle under test; drop the reconvergence bar (and
  // the long tail it needs) so the loop below stays fast.
  params.horizonSeconds = 60.0;
  params.tailIeq = 0.0;

  analysis::ChaosOutcome caught;
  for (std::uint64_t seed = 1; seed <= 8 && caught.violations.empty();
       ++seed) {
    const auto o = analysis::runChaosSchedule(sc, seed, params);
    if (!o.ok) caught = o;
  }
  ASSERT_FALSE(caught.violations.empty())
      << "no seed in 1..8 caught the static backbone";
  const bool coverage = std::any_of(
      caught.violations.begin(), caught.violations.end(),
      [](const std::string& v) { return v.find("coverage") == 0; });
  EXPECT_TRUE(coverage) << caught.violations.front();
  EXPECT_FALSE(caught.script.empty()) << "repro needs the script";

  // Deterministic repro: the same seed fails the same way.
  const auto again = analysis::runChaosSchedule(sc, caught.seed, params);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.script, caught.script);
  EXPECT_EQ(again.violations, caught.violations);

  // And the fix (repair enabled) clears exactly this schedule.
  auto fixed = params;
  fixed.repairEnabled = true;
  const auto healed = analysis::runChaosSchedule(sc, caught.seed, fixed);
  EXPECT_EQ(healed.coverageViolations, 0)
      << "repair must close the hole the canary left open";
}

TEST(ChaosHarness, ThreadedBatchesAreIndependent) {
  // Four harness runs in parallel threads, each with its own Scenario
  // copy and Network: nothing may be shared mutably. Runs in the TSan
  // suite via the chaos_test label filter.
  auto params = quickParams();
  params.horizonSeconds = 40.0;
  params.healBySeconds = 16.0;
  params.tailIeq = 0.0;  // convergence not the point here

  std::vector<analysis::ChaosOutcome> outcomes(4);
  std::vector<std::thread> threads;
  threads.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    threads.emplace_back([i, params, &outcomes] {
      const auto sc = scenarios::fig3();
      outcomes[i] = analysis::runChaosSchedule(
          sc, 10 + static_cast<std::uint64_t>(i), params);
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_GT(outcomes[i].periodsRun, 5) << "thread " << i;
  }
  // Same seed, different thread: still deterministic.
  const auto sc = scenarios::fig3();
  const auto repeat = analysis::runChaosSchedule(sc, 10, params);
  EXPECT_EQ(repeat.script, outcomes[0].script);
}

TEST(ChaosHarness, ChurnAndDisseminationCoexist) {
  // Stochastic churn and the reliable dissemination machinery running
  // together: announcements keep flowing, retransmission state never
  // wedges on nodes that die mid-exchange, and the run stays live.
  const auto sc = scenarios::fig3();
  net::NetworkConfig cfg = baselines::configGmp({});
  cfg.seed = 23;
  net::Network net{sc.topology, cfg, sc.flows};
  net.enableFaults(
      sim::parseFaultScript("churn nodes=1,2 up=6 down=2 from=4 until=30"));

  gmp::LinkStateDissemination diss{net};
  diss.enableReliability({});
  for (int round = 0; round < 40; ++round) {
    for (topo::NodeId n = 0; n < sc.topology.numNodes(); ++n) {
      if (!net.faultPlane()->nodeUp(n)) continue;
      diss.announce(n, {{topo::Link{n, (n + 1) % 4}, 10.0, 0.1}});
    }
    net.run(Duration::seconds(1.0));
  }
  EXPECT_GT(diss.messagesSent(), 100);
  EXPECT_GT(diss.implicitAcks(), 0);
  // Pending-ack state for dead origins is dropped, not retried forever.
  EXPECT_LT(diss.retransmits(), diss.messagesSent() * 4);
}

}  // namespace
}  // namespace maxmin
