#!/usr/bin/env python3
"""trace_summary — per-period digest of a maxmin-sim structured trace.

Reads the JSONL written by `maxmin-sim --trace out.jsonl` and prints one
row per GMP period with the recomputed fairness indices: I_mm (min/max
rate), I_eq (Jain's index), U (sum of rate * hops), plus the decision
counts the controller recorded. This is the Python twin of
analysis::traceReplay — the same reduction, for plotting pipelines.

Usage:
  tools/trace_summary.py out.jsonl            human-readable table
  tools/trace_summary.py out.jsonl --csv      CSV (for gnuplot/pandas)
  tools/trace_summary.py out.jsonl --events   also count event records
"""

from __future__ import annotations

import argparse
import json
import sys


def fairness(flows):
    """-> (imm, ieq, u) over the period's flow records."""
    rates = [f["ratePps"] for f in flows]
    if not rates:
        return 1.0, 1.0, 0.0
    imm = min(rates) / max(rates) if max(rates) > 0 else 1.0
    sq = sum(r * r for r in rates)
    ieq = (sum(rates) ** 2) / (len(rates) * sq) if sq > 0 else 1.0
    u = sum(f["ratePps"] * f["hops"] for f in flows)
    return imm, ieq, u


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSONL trace from maxmin-sim --trace")
    parser.add_argument("--csv", action="store_true", help="emit CSV")
    parser.add_argument("--events", action="store_true",
                        help="append per-record-type event counts")
    args = parser.parse_args(argv)

    periods = []
    event_counts = {}
    partition_recs = []
    try:
        with open(args.trace, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    print(f"{args.trace}:{lineno}: bad JSON: {e}",
                          file=sys.stderr)
                    return 1
                kind = rec.get("record")
                if kind == "period":
                    periods.append(rec)
                else:
                    event_counts[kind] = event_counts.get(kind, 0) + 1
                    if kind == "partition":
                        partition_recs.append(rec)
    except OSError as e:
        print(f"cannot read {args.trace}: {e}", file=sys.stderr)
        return 1

    header = ["period", "time_s", "flows", "I_mm", "I_eq",
              "U_pkt_hops_per_s", "violations", "commands", "stale_nodes",
              "impaired_flows", "partitions", "quarantined"]
    rows = []
    for rec in periods:
        imm, ieq, u = fairness(rec.get("flows", []))
        decision = rec.get("decision", {})
        violations = (decision.get("sourceBufferViolations", 0) +
                      decision.get("bandwidthViolations", 0))
        rows.append([
            rec["period"],
            f"{rec['timeUs'] / 1e6:.3f}",
            len(rec.get("flows", [])),
            f"{imm:.4f}",
            f"{ieq:.4f}",
            f"{u:.1f}",
            violations,
            decision.get("commands", 0),
            len(rec.get("staleNodes", [])),
            len(rec.get("impairedFlows", [])),
            # Fault-free traces omit the partition fields entirely.
            rec.get("partitions", 1),
            len(rec.get("quarantinedFlows", [])),
        ])

    if args.csv:
        print(",".join(header))
        for row in rows:
            print(",".join(str(c) for c in row))
    else:
        widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
                  if rows else len(str(h))
                  for i, h in enumerate(header)]
        print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
        for row in rows:
            print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))

    # Fault/repair digest: the self-healing control plane's event records
    # (relay repairs, dissemination retransmits/failures, partitions).
    fault_kinds = ["fault", "relay_repair", "retransmit", "delivery_failure",
                   "partition", "stale_substitution", "limit_restored"]
    seen_fault = [k for k in fault_kinds if event_counts.get(k)]
    if seen_fault:
        print()
        print("fault/repair events:")
        for kind in seen_fault:
            print(f"  {kind}: {event_counts[kind]}")
        if partition_recs:
            peak = max(r.get("partitions", 1) for r in partition_recs)
            quarantined = sum(len(r.get("quarantinedFlows", []))
                              for r in partition_recs)
            print(f"  peak_partitions: {peak}")
            print(f"  quarantined_flow_periods: {quarantined}")

    if args.events and event_counts:
        print()
        for kind in sorted(event_counts):
            print(f"{kind}: {event_counts[kind]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
