#!/usr/bin/env bash
# Configure and build the ASan+UBSan preset, then run the test suite (or
# a filtered subset) under the sanitizers. Usage:
#
#   tools/run_sanitized_tests.sh                 # full suite
#   tools/run_sanitized_tests.sh 'fault|robust'  # ctest -R filter
#
# The fault-injection and robustness tests exercise the crash/recover
# state machine, whose bugs are exactly the use-after-flush and
# dangling-timer kind that the sanitizers catch.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"

export ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="print_stacktrace=1"

cd build-asan
if [[ -n "$FILTER" ]]; then
  ctest --output-on-failure -j "$(nproc)" -R "$FILTER"
else
  ctest --output-on-failure -j "$(nproc)"
fi
