#!/usr/bin/env bash
# Sanitizer matrix for the test suite.
#
#   tools/run_sanitized_tests.sh [lane] [ctest -R filter]
#
#   lane: asan  ASan+UBSan over the full suite (default). The fault-
#               injection and robustness tests exercise the crash/recover
#               state machine, whose bugs are exactly the use-after-flush
#               and dangling-timer kind these sanitizers catch.
#         tsan  ThreadSanitizer over the concurrent suites — exp_test
#               (SweepRunner's thread pool and atomic work claiming),
#               sim_test and des_property_test (the kernel the workers
#               run run-per-thread; TSan proves the "distinct Simulators
#               share no state" argument, not just asserts it), and
#               shard_test (the sharded PDES runtime: seqlock bounds,
#               SPSC channels, termination snapshot — DESIGN.md §15).
#         all   both lanes in sequence.
#
#   tools/run_sanitized_tests.sh                    # asan, full suite
#   tools/run_sanitized_tests.sh asan 'fault|robust'
#   tools/run_sanitized_tests.sh tsan               # exp/sim/DES suites
#   tools/run_sanitized_tests.sh all
set -euo pipefail
cd "$(dirname "$0")/.."

LANE="${1:-asan}"
FILTER="${2:-}"

run_lane() {
  local preset="$1" filter="$2"
  shift 2
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  (
    cd "build-$preset"
    if [[ -n "$filter" ]]; then
      ctest --output-on-failure -j "$(nproc)" -R "$filter" "$@"
    else
      ctest --output-on-failure -j "$(nproc)" "$@"
    fi
  )
}

case "$LANE" in
  asan)
    export ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1"
    export UBSAN_OPTIONS="print_stacktrace=1"
    run_lane asan "$FILTER"
    ;;
  tsan)
    export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
    # Suites with real concurrency, selected by binary label (see
    # tests/CMakeLists.txt); everything else is single-threaded by design.
    run_lane tsan "$FILTER" -L '^(exp_test|sim_test|des_property_test|shard_test)$'
    ;;
  all)
    "$0" asan "$FILTER"
    "$0" tsan "$FILTER"
    ;;
  *)
    echo "usage: $0 [asan|tsan|all] [ctest -R filter]" >&2
    exit 2
    ;;
esac
