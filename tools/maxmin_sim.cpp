// maxmin_sim — command-line experiment runner.
//
// Runs any built-in scenario (or a random mesh) under 802.11 / 2PP / GMP
// and prints per-flow rates plus the paper's metrics, as a table or CSV.
//
// Examples:
//   maxmin_sim --scenario fig3 --protocol gmp
//   maxmin_sim --scenario fig2w --protocol gmp --duration 400 --seed 9
//   maxmin_sim --scenario mesh --nodes 12 --flows 5 --protocol 802.11 --csv
//   maxmin_sim --scenario fig4 --faults "crash 1 60; recover 1 100"
//   maxmin_sim --scenario fig3 --faults outage.faults --ge 0.05:0.25:1
//       --impair-scope control
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/chaos_harness.hpp"
#include "analysis/experiment.hpp"
#include "analysis/trace_replay.hpp"
#include "exp/sweep.hpp"
#include "obs/profile.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "scenarios/scenarios.hpp"
#include "topology/shard_map.hpp"
#include "util/table.hpp"

namespace {

using namespace maxmin;

struct Options {
  std::string scenario = "fig3";
  std::string protocol = "gmp";
  double durationSeconds = 400.0;
  double warmupSeconds = 200.0;
  std::uint64_t seed = 7;
  int nodes = 12;       // mesh only
  int flows = 5;        // mesh only
  double area = 1000.0; // mesh only
  bool csv = false;
  bool sweep = false;     // run a seed sweep instead of a single run
  int runs = 16;          // sweep size (seeds seed..seed+runs-1)
  int jobs = 0;           // sweep worker threads; 0 = hardware concurrency
  std::string json;       // sweep only: write full JSON report here
  std::string faults;     // file path or inline script; empty = none
  double per = 0.0;       // uniform per-frame loss probability
  std::string ge;         // "pGoodToBad:pBadToGood:lossBad"
  std::string impairScope = "all";
  std::string trace;      // JSONL trace output path; empty = no tracing
  std::string traceLevel = "period";  // period|event
  int shards = 0;         // sharded PDES worker lanes; 0 = serial loop
  bool fastForward = false;  // fluid fast-forward before t=0
  double ffTol = 0.02;       // fast-forward convergence tolerance
  bool hybrid = false;       // fluid background load (needs --foreground)
  std::string foreground;    // "0,3" or "auto:K": packet-simulated flows
  bool profile = false;   // per-site wall-time histograms on stderr
  bool metrics = false;   // metrics-registry dump on stderr (needs
                          // a MAXMIN_OBSERVABILITY=ON build to be non-empty)
  int chaos = 0;          // run N fuzzed fault schedules (0 = off)
  double chaosHorizon = 150.0;
  double chaosHeal = 56.0;
  double chaosTailIeq = 0.99;
  bool chaosCanary = false;  // disable repair: the fuzzer must catch it
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --scenario  fig1|fig2|fig2w|fig3|fig4|chain|mesh|dense  (default fig3)\n"
      << "  --protocol  802.11|2pp|gmp                        (default gmp)\n"
      << "  --duration  seconds                               (default 400)\n"
      << "  --warmup    seconds                               (default 200)\n"
      << "  --seed      integer                               (default 7)\n"
      << "  --nodes/--flows/--area   random-mesh parameters\n"
      << "  --csv       emit CSV instead of a table\n"
      << "  --sweep     run a multi-seed sweep (seeds seed..seed+runs-1)\n"
      << "  --runs      sweep size                            (default 16)\n"
      << "  --jobs      sweep worker threads; 0 = all cores   (default 0)\n"
      << "  --json      sweep only: write the full JSON report to this file\n"
      << "  --faults    fault script: a file path, or inline text like\n"
      << "              \"crash 1 60; recover 1 100\" (see sim/fault_plane.hpp)\n"
      << "  --per       uniform per-frame loss probability      (default 0)\n"
      << "  --ge        Gilbert-Elliott bursty loss, pGoodToBad:pBadToGood:lossBad\n"
      << "  --impair-scope  all|control|data   frames hit by --per/--ge\n"
      << "  --trace FILE        write a structured JSONL trace of every GMP\n"
      << "                      period (fixed seed => byte-identical file)\n"
      << "  --trace-level  period|event        trace granularity (default period)\n"
      << "  --shards K  run the physical layer on K parallel shard workers\n"
      << "              (capped by topology width; any K, including 1, is\n"
      << "              bit-identical to any other K; incompatible with\n"
      << "              --per/--ge)\n"
      << "  --fast-forward      iterate the fluid GMP fixed point before t=0\n"
      << "                      and start the packet run inside its basin\n"
      << "                      (gmp only; see DESIGN.md §16)\n"
      << "  --ff-tol EPS        fast-forward convergence tolerance, as a\n"
      << "                      fraction of clique capacity   (default 0.02)\n"
      << "  --hybrid            advance all non-foreground flows with the\n"
      << "                      fluid solver, re-linearized each GMP period;\n"
      << "                      needs --foreground (gmp only; incompatible\n"
      << "                      with --shards/--faults/--per/--ge)\n"
      << "  --foreground LIST   packet-simulated flows under --hybrid: flow\n"
      << "                      ids like \"0,3\", or auto:K for the first K\n"
      << "  --profile   print per-callback-site wall-time histograms\n"
      << "  --metrics   print the metrics registry (counters are compiled\n"
      << "              in only with -DMAXMIN_OBSERVABILITY=ON)\n"
      << "  --chaos N           fuzz N seeded fault schedules (seeds seed..seed+N-1)\n"
      << "                      against the scenario and check the self-healing\n"
      << "                      invariants; exit 1 and print a replayable script\n"
      << "                      on any violation\n"
      << "  --chaos-horizon S   simulated seconds per schedule    (default 150)\n"
      << "  --chaos-heal S      all faults healed by here         (default 56)\n"
      << "  --chaos-tail-ieq X  re-convergence bar for the tail   (default 0.99)\n"
      << "  --chaos-canary      run with dominating-set repair disabled (the\n"
      << "                      coverage oracle must catch this)\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") {
      o.scenario = value();
    } else if (arg == "--protocol") {
      o.protocol = value();
    } else if (arg == "--duration") {
      o.durationSeconds = std::stod(value());
    } else if (arg == "--warmup") {
      o.warmupSeconds = std::stod(value());
    } else if (arg == "--seed") {
      o.seed = std::stoull(value());
    } else if (arg == "--nodes") {
      o.nodes = std::stoi(value());
    } else if (arg == "--flows") {
      o.flows = std::stoi(value());
    } else if (arg == "--area") {
      o.area = std::stod(value());
    } else if (arg == "--csv") {
      o.csv = true;
    } else if (arg == "--sweep") {
      o.sweep = true;
    } else if (arg == "--runs") {
      o.runs = std::stoi(value());
    } else if (arg == "--jobs") {
      o.jobs = std::stoi(value());
    } else if (arg == "--json") {
      o.json = value();
    } else if (arg == "--faults") {
      o.faults = value();
    } else if (arg == "--per") {
      o.per = std::stod(value());
    } else if (arg == "--ge") {
      o.ge = value();
    } else if (arg == "--impair-scope") {
      o.impairScope = value();
    } else if (arg == "--trace") {
      o.trace = value();
    } else if (arg == "--trace-level") {
      o.traceLevel = value();
    } else if (arg == "--shards") {
      o.shards = std::stoi(value());
    } else if (arg == "--fast-forward") {
      o.fastForward = true;
    } else if (arg == "--ff-tol") {
      o.ffTol = std::stod(value());
    } else if (arg == "--hybrid") {
      o.hybrid = true;
    } else if (arg == "--foreground") {
      o.foreground = value();
    } else if (arg == "--profile") {
      o.profile = true;
    } else if (arg == "--metrics") {
      o.metrics = true;
    } else if (arg == "--chaos") {
      o.chaos = std::stoi(value());
    } else if (arg == "--chaos-horizon") {
      o.chaosHorizon = std::stod(value());
    } else if (arg == "--chaos-heal") {
      o.chaosHeal = std::stod(value());
    } else if (arg == "--chaos-tail-ieq") {
      o.chaosTailIeq = std::stod(value());
    } else if (arg == "--chaos-canary") {
      o.chaosCanary = true;
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

/// `--faults` accepts either a script file or inline text.
sim::FaultScript loadFaultScript(const std::string& arg) {
  std::string text = arg;
  if (std::ifstream file{arg}; file) {
    std::ostringstream contents;
    contents << file.rdbuf();
    text = contents.str();
  }
  try {
    return sim::parseFaultScript(text);
  } catch (const std::exception& e) {
    std::cerr << "bad fault script: " << e.what() << '\n';
    std::exit(2);
  }
}

phys::ImpairmentConfig makeImpairments(const Options& o) {
  phys::ImpairmentConfig cfg;
  cfg.per = o.per;
  if (!o.ge.empty()) {
    char c1 = 0;
    char c2 = 0;
    std::istringstream in{o.ge};
    if (!(in >> cfg.gilbert.pGoodToBad >> c1 >> cfg.gilbert.pBadToGood >> c2 >>
          cfg.gilbert.lossBad) ||
        c1 != ':' || c2 != ':') {
      std::cerr << "--ge expects pGoodToBad:pBadToGood:lossBad\n";
      std::exit(2);
    }
  }
  if (o.impairScope == "all") {
    cfg.scope = phys::ImpairmentConfig::Scope::kAllFrames;
  } else if (o.impairScope == "control") {
    cfg.scope = phys::ImpairmentConfig::Scope::kControlFrames;
  } else if (o.impairScope == "data") {
    cfg.scope = phys::ImpairmentConfig::Scope::kDataFrames;
  } else {
    std::cerr << "unknown --impair-scope '" << o.impairScope << "'\n";
    std::exit(2);
  }
  return cfg;
}

/// `--foreground` accepts an explicit id list ("0,3,5") or "auto:K"
/// (the scenario's first K flows). The background partition must be
/// non-empty — otherwise --hybrid buys nothing.
std::vector<net::FlowId> parseForeground(const std::string& spec,
                                         const scenarios::Scenario& scenario) {
  std::vector<net::FlowId> ids;
  if (spec.rfind("auto:", 0) == 0) {
    int k = 0;
    try {
      k = std::stoi(spec.substr(5));
    } catch (const std::exception&) {
      k = 0;
    }
    if (k <= 0) {
      std::cerr << "--foreground auto:K needs K >= 1\n";
      std::exit(2);
    }
    for (std::size_t i = 0;
         i < std::min<std::size_t>(scenario.flows.size(),
                                   static_cast<std::size_t>(k));
         ++i) {
      ids.push_back(scenario.flows[i].id);
    }
  } else {
    std::istringstream in{spec};
    for (std::string tok; std::getline(in, tok, ',');) {
      try {
        ids.push_back(std::stoi(tok));
      } catch (const std::exception&) {
        std::cerr << "--foreground: bad flow id '" << tok << "'\n";
        std::exit(2);
      }
    }
  }
  if (ids.empty()) {
    std::cerr << "--foreground must name at least one flow\n";
    std::exit(2);
  }
  for (const net::FlowId id : ids) {
    bool known = false;
    for (const auto& f : scenario.flows) known = known || f.id == id;
    if (!known) {
      std::cerr << "--foreground: scenario '" << scenario.name
                << "' has no flow " << id << '\n';
      std::exit(2);
    }
  }
  if (ids.size() >= scenario.flows.size()) {
    std::cerr << "--foreground covers every flow; nothing left to "
                 "background (drop --hybrid for a pure-packet run)\n";
    std::exit(2);
  }
  return ids;
}

scenarios::Scenario pickScenario(const Options& o) {
  if (o.scenario == "fig1") return scenarios::fig1();
  if (o.scenario == "fig2") return scenarios::fig2();
  if (o.scenario == "fig2w") return scenarios::fig2({1, 2, 1, 3});
  if (o.scenario == "fig3") return scenarios::fig3();
  if (o.scenario == "fig4") return scenarios::fig4();
  if (o.scenario == "chain") return scenarios::chain(5);
  if (o.scenario == "mesh") {
    return scenarios::randomMesh(o.seed, o.nodes, o.area, o.flows);
  }
  if (o.scenario == "dense") {
    return scenarios::denseMesh(o.seed, o.nodes, o.flows);
  }
  std::cerr << "unknown scenario '" << o.scenario << "'\n";
  std::exit(2);
}

analysis::Protocol pickProtocol(const Options& o) {
  if (o.protocol == "802.11" || o.protocol == "dcf") {
    return analysis::Protocol::kDcf80211;
  }
  if (o.protocol == "2pp") return analysis::Protocol::kTwoPhase;
  if (o.protocol == "gmp") return analysis::Protocol::kGmp;
  std::cerr << "unknown protocol '" << o.protocol << "'\n";
  std::exit(2);
}

int runChaos(const scenarios::Scenario& scenario, const Options& options) {
  analysis::ChaosParams params;
  params.horizonSeconds = options.chaosHorizon;
  params.healBySeconds = options.chaosHeal;
  params.tailIeq = options.chaosTailIeq;
  params.repairEnabled = !options.chaosCanary;
  if (params.healBySeconds >= params.horizonSeconds) {
    std::cerr << "--chaos-heal must leave a fault-free tail before "
                 "--chaos-horizon\n";
    return 2;
  }

  const auto outcomes = analysis::runChaosBatch(scenario, options.seed,
                                                options.chaos, params);
  int failed = 0;
  for (const auto& o : outcomes) {
    if (o.ok) continue;
    ++failed;
    std::cout << "FAIL seed=" << o.seed << " (" << o.periodsRun
              << " periods, tail I_eq " << o.tailIeq << ")\n";
    for (const auto& v : o.violations) std::cout << "  " << v << '\n';
    std::cout << "  replay with --faults on this script:\n";
    std::istringstream lines{o.script};
    for (std::string line; std::getline(lines, line);) {
      std::cout << "    " << line << '\n';
    }
  }
  std::int64_t repairs = 0;
  std::int64_t retransmits = 0;
  for (const auto& o : outcomes) {
    repairs += o.relayRepairs;
    retransmits += o.retransmits;
  }
  std::cout << (options.chaos - failed) << '/' << options.chaos
            << " chaos schedules ok on " << scenario.name << " (seeds "
            << options.seed << ".." << options.seed + options.chaos - 1
            << ", " << repairs << " relay repairs, " << retransmits
            << " retransmits)\n";
  return failed == 0 ? 0 : 1;
}

int runSweep(const scenarios::Scenario& scenario,
             const analysis::RunConfig& base, const Options& options) {
  if (options.runs <= 0) {
    std::cerr << "--runs must be positive\n";
    return 2;
  }
  // A mesh scenario is itself seed-derived: regenerate the topology per
  // seed so the sweep samples topologies, not just MAC/arrival noise.
  std::vector<exp::SweepJob> jobs;
  if (options.scenario == "mesh" || options.scenario == "dense") {
    for (int i = 0; i < options.runs; ++i) {
      exp::SweepJob job;
      job.config = base;
      job.config.seed = base.seed + static_cast<std::uint64_t>(i);
      job.scenario =
          options.scenario == "dense"
              ? scenarios::denseMesh(job.config.seed, options.nodes,
                                     options.flows)
              : scenarios::randomMesh(job.config.seed, options.nodes,
                                      options.area, options.flows);
      job.label = job.scenario.name + "/" +
                  analysis::protocolName(base.protocol) +
                  "/seed=" + std::to_string(job.config.seed);
      jobs.push_back(std::move(job));
    }
  } else {
    jobs = exp::seedGrid(scenario, base, options.runs);
  }

  const exp::SweepRunner runner{options.jobs};
  const auto outcomes = runner.runAll(jobs);
  const auto summary = exp::summarize(outcomes);

  Table perRun({"run", "seed", "I_mm", "I_eq", "U_pkt_hops_per_s",
                "queue_drops", "wall_s"});
  for (const auto& o : outcomes) {
    if (o.ok) {
      perRun.addRow({o.label, std::to_string(o.seed),
                     Table::num(o.result.summary.imm, 4),
                     Table::num(o.result.summary.ieq, 4),
                     Table::num(o.result.summary.effectiveThroughputPps),
                     std::to_string(o.result.queueDrops),
                     Table::num(o.wallSeconds, 2)});
    } else {
      perRun.addRow({o.label, std::to_string(o.seed), "FAIL", "-", "-", "-",
                     Table::num(o.wallSeconds, 2)});
    }
  }
  Table agg({"metric", "mean", "stddev", "min", "max"});
  const auto statRow = [&agg](const std::string& name,
                              const RunningStats& st) {
    agg.addRow({name, Table::num(st.mean(), 4), Table::num(st.stddev(), 4),
                Table::num(st.min(), 4), Table::num(st.max(), 4)});
  };
  statRow("I_mm", summary.imm);
  statRow("I_eq", summary.ieq);
  statRow("U_pkt_hops_per_s", summary.throughputPps);
  statRow("queue_drops", summary.queueDrops);
  statRow("wall_s", summary.wallSeconds);

  if (options.csv) {
    perRun.printCsv(std::cout);
    std::cout << '\n';
    agg.printCsv(std::cout);
  } else {
    perRun.print(std::cout);
    std::cout << '\n' << summary.total - summary.failed << '/' << summary.total
              << " runs ok, " << runner.jobs() << " jobs\n\n";
    agg.print(std::cout);
  }
  for (const auto& o : outcomes) {
    if (!o.ok) std::cerr << o.label << ": " << o.error << '\n';
  }

  if (!options.json.empty()) {
    std::ofstream out{options.json};
    if (!out) {
      std::cerr << "cannot write " << options.json << '\n';
      return 2;
    }
    exp::writeJson(out, outcomes, summary);
  }
  return summary.failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  const auto scenario = pickScenario(options);

  if (options.chaos > 0) return runChaos(scenario, options);

  if (options.profile) obs::Profiler::setEnabled(true);
  if (options.metrics) obs::Registry::setEnabled(true);
  std::unique_ptr<obs::TraceSink> trace;
  if (!options.trace.empty()) {
    const auto level = obs::parseTraceLevel(options.traceLevel);
    if (!level) {
      std::cerr << "unknown --trace-level '" << options.traceLevel
                << "' (expected period|event)\n";
      return 2;
    }
    trace = obs::TraceSink::openFile(options.trace, *level);
    if (!trace) {
      std::cerr << "cannot write trace file " << options.trace << "\n";
      return 2;
    }
  }

  analysis::RunConfig cfg;
  cfg.protocol = pickProtocol(options);
  cfg.duration = Duration::seconds(options.durationSeconds);
  cfg.warmup = Duration::seconds(options.warmupSeconds);
  cfg.seed = options.seed;
  if (cfg.warmup >= cfg.duration) {
    std::cerr << "warmup must be shorter than duration\n";
    return 2;
  }
  if (!options.faults.empty()) cfg.faults = loadFaultScript(options.faults);
  cfg.netBase.impairments = makeImpairments(options);
  if (options.shards < 0) {
    std::cerr << "--shards must be non-negative\n";
    return 2;
  }
  if (options.shards > 0 && cfg.netBase.impairments.enabled()) {
    std::cerr << "--shards is incompatible with --per/--ge (channel "
                 "impairments draw from one serial RNG stream)\n";
    return 2;
  }
  cfg.netBase.shards = options.shards;

  cfg.hybrid.fastForward = options.fastForward;
  cfg.hybrid.ffTol = options.ffTol;
  cfg.hybrid.background = options.hybrid;
  if (!options.foreground.empty() && !options.hybrid) {
    std::cerr << "--foreground only means something with --hybrid\n";
    return 2;
  }
  if (cfg.hybrid.enabled()) {
    if (cfg.protocol != analysis::Protocol::kGmp) {
      std::cerr << "--fast-forward/--hybrid drive the GMP controller; "
                   "use --protocol gmp\n";
      return 2;
    }
    if (options.shards > 0) {
      std::cerr << "--fast-forward/--hybrid need the serial event loop; "
                   "drop --shards\n";
      return 2;
    }
    if (options.ffTol <= 0.0) {
      std::cerr << "--ff-tol must be positive\n";
      return 2;
    }
  }
  if (options.hybrid) {
    if (options.foreground.empty()) {
      std::cerr << "--hybrid needs --foreground (e.g. --foreground 0,1 "
                   "or --foreground auto:2)\n";
      return 2;
    }
    if (!options.faults.empty() || cfg.netBase.impairments.enabled()) {
      std::cerr << "--hybrid is incompatible with --faults/--per/--ge "
                   "(the fluid background model knows nothing about "
                   "faults or losses)\n";
      return 2;
    }
    cfg.hybrid.foreground = parseForeground(options.foreground, scenario);
  }

  if (options.shards > 0) {
    // Diagnostic on stderr (CSV on stdout stays clean): the carved strip
    // count is what speedup is bounded by, not the requested K.
    const topo::ShardPlan plan =
        topo::makeShardPlan(scenario.topology, options.shards);
    std::int64_t cutNodes = 0;
    for (const auto c : plan.cut) cutNodes += c;
    std::cerr << "shards: requested " << options.shards << ", carved "
              << plan.numShards << " strips, " << cutNodes << " cut nodes, "
              << plan.cutEdges << " cut cs-edges\n";
  }
  cfg.trace = trace.get();

  if (options.sweep) return runSweep(scenario, cfg, options);

  analysis::RunResult result;
  try {
    result = analysis::runScenario(scenario, cfg);
  } catch (const std::exception& e) {
    // A fault script can be well-formed yet invalid for the chosen
    // scenario (e.g. it names a node the topology doesn't have); that
    // is a usage error, not a simulator bug.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  // Background (fluid-advanced) flows are tagged in the name column;
  // with hybrid off the table is byte-identical to earlier builds.
  Table table({"flow", "src>dst", "weight", "hops", "rate_pps", "mu"});
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    const auto& f = result.flows[i];
    const auto& spec = scenario.flows[i];
    table.addRow({f.background ? f.name + " (bg)" : f.name,
                  std::to_string(spec.src) + ">" + std::to_string(spec.dst),
                  Table::num(f.weight, 1), std::to_string(f.hops),
                  Table::num(f.ratePps), Table::num(f.ratePps / f.weight)});
  }
  Table metrics({"metric", "value"});
  metrics.addRow({"protocol", analysis::protocolName(result.protocol)});
  metrics.addRow({"scenario", scenario.name});
  metrics.addRow({"U_pkt_hops_per_s",
                  Table::num(result.summary.effectiveThroughputPps)});
  metrics.addRow({"I_mm", Table::num(result.summary.imm, 4)});
  metrics.addRow({"I_eq", Table::num(result.summary.ieq, 4)});
  metrics.addRow({"I_mm_normalized",
                  Table::num(result.normalizedSummary.imm, 4)});
  metrics.addRow({"queue_drops", std::to_string(result.queueDrops)});
  const bool faulted =
      !options.faults.empty() || cfg.netBase.impairments.enabled();
  if (faulted) {
    metrics.addRow({"crash_drops", std::to_string(result.crashDrops)});
    metrics.addRow(
        {"dead_nexthop_drops", std::to_string(result.deadNeighborDrops)});
    metrics.addRow({"frames_impaired", std::to_string(result.framesImpaired)});
    metrics.addRow(
        {"frames_suppressed", std::to_string(result.framesSuppressed)});
    metrics.addRow({"stale_meas_used",
                    std::to_string(result.staleMeasurementsUsed)});
    metrics.addRow({"limits_restored", std::to_string(result.limitsRestored)});
  }
  if (cfg.hybrid.enabled()) {
    if (cfg.hybrid.fastForward) {
      metrics.addRow({"ff_periods", std::to_string(result.ffPeriods)});
      metrics.addRow({"ff_converged", result.ffConverged ? "1" : "0"});
      metrics.addRow({"seeded_packets", std::to_string(result.seededPackets)});
    }
    if (cfg.hybrid.background) {
      metrics.addRow({"background_flows",
                      std::to_string(result.backgroundFlows)});
      metrics.addRow({"relinearizations",
                      std::to_string(result.relinearizations)});
      metrics.addRow({"phantom_bursts",
                      std::to_string(result.phantomBursts)});
    }
  }

  if (options.csv) {
    table.printCsv(std::cout);
    std::cout << '\n';
    metrics.printCsv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << '\n';
    metrics.print(std::cout);
    if (!result.violationHistory.empty()) {
      std::cout << "\nGMP violations per period:";
      for (int v : result.violationHistory) std::cout << ' ' << v;
      std::cout << '\n';
    }
  }
  // Diagnostics go to stderr so --csv output stays machine-clean.
  if (options.profile) obs::Profiler::global().printTable(std::cerr);
  if (options.metrics) obs::Registry::global().printTable(std::cerr);
  return 0;
}
