// maxmin_sim — command-line experiment runner.
//
// Runs any built-in scenario (or a random mesh) under 802.11 / 2PP / GMP
// and prints per-flow rates plus the paper's metrics, as a table or CSV.
//
// Examples:
//   maxmin_sim --scenario fig3 --protocol gmp
//   maxmin_sim --scenario fig2w --protocol gmp --duration 400 --seed 9
//   maxmin_sim --scenario mesh --nodes 12 --flows 5 --protocol 802.11 --csv
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "analysis/experiment.hpp"
#include "scenarios/scenarios.hpp"
#include "util/table.hpp"

namespace {

using namespace maxmin;

struct Options {
  std::string scenario = "fig3";
  std::string protocol = "gmp";
  double durationSeconds = 400.0;
  double warmupSeconds = 200.0;
  std::uint64_t seed = 7;
  int nodes = 12;       // mesh only
  int flows = 5;        // mesh only
  double area = 1000.0; // mesh only
  bool csv = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --scenario  fig1|fig2|fig2w|fig3|fig4|chain|mesh  (default fig3)\n"
      << "  --protocol  802.11|2pp|gmp                        (default gmp)\n"
      << "  --duration  seconds                               (default 400)\n"
      << "  --warmup    seconds                               (default 200)\n"
      << "  --seed      integer                               (default 7)\n"
      << "  --nodes/--flows/--area   random-mesh parameters\n"
      << "  --csv       emit CSV instead of a table\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") {
      o.scenario = value();
    } else if (arg == "--protocol") {
      o.protocol = value();
    } else if (arg == "--duration") {
      o.durationSeconds = std::stod(value());
    } else if (arg == "--warmup") {
      o.warmupSeconds = std::stod(value());
    } else if (arg == "--seed") {
      o.seed = std::stoull(value());
    } else if (arg == "--nodes") {
      o.nodes = std::stoi(value());
    } else if (arg == "--flows") {
      o.flows = std::stoi(value());
    } else if (arg == "--area") {
      o.area = std::stod(value());
    } else if (arg == "--csv") {
      o.csv = true;
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

scenarios::Scenario pickScenario(const Options& o) {
  if (o.scenario == "fig1") return scenarios::fig1();
  if (o.scenario == "fig2") return scenarios::fig2();
  if (o.scenario == "fig2w") return scenarios::fig2({1, 2, 1, 3});
  if (o.scenario == "fig3") return scenarios::fig3();
  if (o.scenario == "fig4") return scenarios::fig4();
  if (o.scenario == "chain") return scenarios::chain(5);
  if (o.scenario == "mesh") {
    return scenarios::randomMesh(o.seed, o.nodes, o.area, o.flows);
  }
  std::cerr << "unknown scenario '" << o.scenario << "'\n";
  std::exit(2);
}

analysis::Protocol pickProtocol(const Options& o) {
  if (o.protocol == "802.11" || o.protocol == "dcf") {
    return analysis::Protocol::kDcf80211;
  }
  if (o.protocol == "2pp") return analysis::Protocol::kTwoPhase;
  if (o.protocol == "gmp") return analysis::Protocol::kGmp;
  std::cerr << "unknown protocol '" << o.protocol << "'\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  const auto scenario = pickScenario(options);

  analysis::RunConfig cfg;
  cfg.protocol = pickProtocol(options);
  cfg.duration = Duration::seconds(options.durationSeconds);
  cfg.warmup = Duration::seconds(options.warmupSeconds);
  cfg.seed = options.seed;
  if (cfg.warmup >= cfg.duration) {
    std::cerr << "warmup must be shorter than duration\n";
    return 2;
  }

  const auto result = analysis::runScenario(scenario, cfg);

  Table table({"flow", "src>dst", "weight", "hops", "rate_pps", "mu"});
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    const auto& f = result.flows[i];
    const auto& spec = scenario.flows[i];
    table.addRow({f.name,
                  std::to_string(spec.src) + ">" + std::to_string(spec.dst),
                  Table::num(f.weight, 1), std::to_string(f.hops),
                  Table::num(f.ratePps), Table::num(f.ratePps / f.weight)});
  }
  Table metrics({"metric", "value"});
  metrics.addRow({"protocol", analysis::protocolName(result.protocol)});
  metrics.addRow({"scenario", scenario.name});
  metrics.addRow({"U_pkt_hops_per_s",
                  Table::num(result.summary.effectiveThroughputPps)});
  metrics.addRow({"I_mm", Table::num(result.summary.imm, 4)});
  metrics.addRow({"I_eq", Table::num(result.summary.ieq, 4)});
  metrics.addRow({"I_mm_normalized",
                  Table::num(result.normalizedSummary.imm, 4)});
  metrics.addRow({"queue_drops", std::to_string(result.queueDrops)});

  if (options.csv) {
    table.printCsv(std::cout);
    std::cout << '\n';
    metrics.printCsv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << '\n';
    metrics.print(std::cout);
    if (!result.violationHistory.empty()) {
      std::cout << "\nGMP violations per period:";
      for (int v : result.violationHistory) std::cout << ' ' << v;
      std::cout << '\n';
    }
  }
  return 0;
}
