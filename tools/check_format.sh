#!/usr/bin/env bash
# Check-only formatting gate: runs clang-format -n --Werror over all
# first-party C++ sources and fails if any file would be reformatted.
# Never rewrites anything — see the policy note in .clang-format.
#
# Skips (exit 0) when clang-format is not installed, so the tier-1
# build works in minimal containers; CI installs clang-format and runs
# the real check.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping (CI runs the real check)"
  exit 0
fi

mapfile -t files < <(git ls-files 'src/**/*.[ch]pp' 'tools/**/*.[ch]pp' \
  'bench/*.[ch]pp' 'examples/*.[ch]pp' 'tests/*.[ch]pp')

if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_format: no sources found" >&2
  exit 1
fi

echo "check_format: checking ${#files[@]} files with $(clang-format --version)"
if clang-format -n --Werror "${files[@]}"; then
  echo "check_format: clean"
else
  echo "check_format: formatting drift found (fix the reported lines;" \
       "do not mass-reformat)" >&2
  exit 1
fi
