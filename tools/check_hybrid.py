#!/usr/bin/env python3
"""Gate a hybrid maxmin-sim run against its pure-packet reference.

Usage:
    check_hybrid.py pure.csv hybrid.csv [--tol-imm X] [--tol-ieq Y]

Both inputs are `maxmin-sim --csv` outputs for the same scenario and
seed. The gate compares the summary fairness metrics: the hybrid run
(fluid background and/or fluid fast-forward) must reproduce the pure
run's I_mm and I_eq within the documented tolerances (DESIGN.md §16).
Exit 0 on pass, 1 with a diagnostic on failure.
"""
import argparse
import sys


def metrics(path):
    vals = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            parts = line.strip().split(",")
            if len(parts) == 2 and parts[0] in ("I_mm", "I_eq"):
                vals[parts[0]] = float(parts[1])
    missing = {"I_mm", "I_eq"} - vals.keys()
    if missing:
        sys.exit(f"{path}: missing metric rows {sorted(missing)}")
    return vals


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("pure")
    ap.add_argument("hybrid")
    ap.add_argument("--tol-imm", type=float, default=0.10)
    ap.add_argument("--tol-ieq", type=float, default=0.05)
    args = ap.parse_args()

    pure, hyb = metrics(args.pure), metrics(args.hybrid)
    d_imm = abs(hyb["I_mm"] - pure["I_mm"])
    d_ieq = abs(hyb["I_eq"] - pure["I_eq"])
    print(f"I_mm: pure {pure['I_mm']:.4f} hybrid {hyb['I_mm']:.4f} "
          f"(|d| {d_imm:.4f}, tol {args.tol_imm})")
    print(f"I_eq: pure {pure['I_eq']:.4f} hybrid {hyb['I_eq']:.4f} "
          f"(|d| {d_ieq:.4f}, tol {args.tol_ieq})")
    if d_imm > args.tol_imm or d_ieq > args.tol_ieq:
        sys.exit("FAIL: hybrid run outside tolerance of pure reference")
    print("PASS")


if __name__ == "__main__":
    main()
