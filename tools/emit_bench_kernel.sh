#!/usr/bin/env bash
# Run the event-queue microbenchmarks and emit BENCH_kernel.json — the
# kernel performance trajectory artifact. Run after any change to
# src/sim/ and commit the refreshed JSON alongside it. Usage:
#
#   tools/emit_bench_kernel.sh [build-dir] [output.json]
#   tools/emit_bench_kernel.sh --medium [build-dir] [out.json]
#   tools/emit_bench_kernel.sh --topo [build-dir] [out.json]
#   tools/emit_bench_kernel.sh --shards [build-dir] [out.json]
#   tools/emit_bench_kernel.sh --hybrid [build-dir] [out.json]
#   tools/emit_bench_kernel.sh --obs-compare [off-build] [obs-build] [out.json]
#
# Defaults: build/ and BENCH_kernel.json at the repo root. The JSON is
# google-benchmark's machine-readable format (context block with host
# info + one record per benchmark, items_per_second included).
#
# --medium runs the frame-pipeline benchmarks (bench/bench_medium:
# start/finish cycles and dense same-instant bursts at N in {50,200,800},
# plus the dense macro scenario) and writes BENCH_medium.json — the
# Medium performance trajectory artifact. Run after any change to
# src/phys/ or src/topology/ and commit the refreshed JSON alongside it.
#
# --topo runs the large-N topology-construction sweep
# (BM_TopologyConstruct at N in {800, 5000, 20000, 100000}) and writes
# BENCH_topology.json — construction wall time plus the `bytes`
# (memoryFootprintBytes) and `edges` counters per N, proving memory
# stays O(nodes + edges) above the dense-adjacency threshold. Run after
# any change to src/topology/ construction and commit the refreshed
# JSON alongside it.
#
# --shards times the dense-mesh stress workload (N = 800, 20 flows,
# 802.11, fixed seed) serial vs `--shards 8` through maxmin-sim, gates
# on CSV byte-identity between the two, and writes BENCH_shards.json
# with the carved strip count (K_eff), cut-node/edge counts, per-rep
# wall times, and the host's core count. Run after any change to
# src/sim/sharded.hpp, src/topology/shard_map.*, or the Medium export
# path, and commit the refreshed JSON alongside it. Knobs:
# BENCH_SHARDS_REPS (default 3), BENCH_SHARDS_DURATION (default 12).
#
# --hybrid times the long-horizon steady-state estimation workload
# (random mesh N=20, 12 flows, seed 11, gmp) three ways — pure packet,
# --fast-forward, and --hybrid background — gates each accelerated mode
# on |dI_mm|/|dI_eq| against the pure reference, and writes
# BENCH_hybrid.json with wall times, deltas, and speedups. Run after
# any change to src/fluid/ or src/hybrid/ and commit the refreshed
# JSON alongside it. Knobs: BENCH_HYBRID_REPS (default 2).
#
# --obs-compare runs the same filter against two builds — observability
# compiled out (default preset) and compiled in but runtime-disabled
# (obs preset) — and writes BENCH_obs.json with both result sets plus
# the per-benchmark overhead. The dormant instrumentation budget is 2%
# of event throughput; the gate has two tiers:
#
#   1. Code identity (decisive when it holds). The kernel publishes its
#      counters at run boundaries precisely so the inlined hot paths
#      compile identically with observability on or off; the script
#      disassembles the benchmark bodies from both binaries and diffs
#      them with addresses stripped. Identical code is a *structural*
#      zero-overhead proof on the measured paths — stronger than any
#      timing on a shared host — so the gate passes and the timing
#      numbers below are recorded as the host's noise floor.
#   2. Timing (decisive otherwise). The two binaries run back-to-back
#      over many passes and each benchmark scores its *best* pass per
#      build: throughput noise is one-sided (steal time, frequency
#      dips, and co-located load only ever slow a run down), so the
#      per-build ceilings are the clean speeds and their ratio bounds
#      the instrumentation cost. The median of the per-pass paired
#      ratios is reported alongside as a sanity cross-check.
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER='BM_Event(QueueScheduleRun|QueueSteadyState|QueueSameInstantBursts|Cancellation)'
MEDIUM_FILTER='BM_Medium(StartFinish|DenseBurst|DenseMacro|SparseStartFinish)'
TOPO_FILTER='BM_TopologyConstruct'

run_bench() { # build-dir bench-binary filter out.json
  if [[ ! -x "$1/bench/$2" ]]; then
    echo "error: $1/bench/$2 not built" >&2
    echo "hint: cmake -B $1 -S . && cmake --build $1 --target $2" >&2
    exit 1
  fi
  "$1/bench/$2" \
    --benchmark_filter="$3" \
    --benchmark_min_time=0.5 \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_out_format=json \
    --benchmark_out="$4"
}

if [[ "${1:-}" == "--medium" ]]; then
  BUILD_DIR="${2:-build}"
  OUT="${3:-BENCH_medium.json}"
  run_bench "$BUILD_DIR" bench_medium "$MEDIUM_FILTER" "$OUT"
  echo "wrote $OUT"
  exit 0
fi

if [[ "${1:-}" == "--topo" ]]; then
  BUILD_DIR="${2:-build}"
  OUT="${3:-BENCH_topology.json}"
  run_bench "$BUILD_DIR" bench_medium "$TOPO_FILTER" "$OUT"
  echo "wrote $OUT"
  exit 0
fi

if [[ "${1:-}" == "--shards" ]]; then
  # Sharded PDES trajectory (EXPERIMENTS.md E14): dense-mesh wall time,
  # serial vs sharded, with the bit-identity gate inline — a speedup on
  # different numbers would be worthless. Best-of-reps per config
  # (throughput noise is one-sided), carved strip count (K_eff) and
  # host core count recorded so the artifact is interpretable: on a
  # single-core host sharded >= serial is the expected honest result.
  BUILD_DIR="${2:-build}"
  OUT="${3:-BENCH_shards.json}"
  SIM="$BUILD_DIR/tools/maxmin-sim"
  if [[ ! -x "$SIM" ]]; then
    echo "error: $SIM not built" >&2
    echo "hint: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR --target maxmin-sim" >&2
    exit 1
  fi
  TMP="$(mktemp -d)"
  trap 'rm -rf "$TMP"' EXIT
  REPS="${BENCH_SHARDS_REPS:-3}"
  ARGS=(--scenario dense --nodes 800 --flows 20 --protocol 802.11
        --seed 7 --duration "${BENCH_SHARDS_DURATION:-12}" --warmup 4 --csv)
  for k in 1 8; do
    : > "$TMP/times-$k"
    for ((i = 0; i < REPS; ++i)); do
      start=$(date +%s.%N)
      "$SIM" "${ARGS[@]}" --shards "$k" > "$TMP/out-$k.csv" 2> "$TMP/err-$k"
      end=$(date +%s.%N)
      echo "$start $end" >> "$TMP/times-$k"
    done
  done
  if ! cmp -s "$TMP/out-1.csv" "$TMP/out-8.csv"; then
    echo "FAIL: shards 8 CSV differs from shards 1 — PDES ordering bug" >&2
    diff "$TMP/out-1.csv" "$TMP/out-8.csv" >&2 || true
    exit 1
  fi
  echo "bit-identity: shards 8 CSV byte-identical to shards 1"
  python3 - "$TMP" "$OUT" <<'PY'
import json, re, sys

tmp, out_path = sys.argv[1], sys.argv[2]

def times(k):
    secs = []
    with open(f"{tmp}/times-{k}", encoding="utf-8") as fh:
        for line in fh:
            a, b = map(float, line.split())
            secs.append(round(b - a, 4))
    return secs

plan = open(f"{tmp}/err-8", encoding="utf-8").read()
m = re.search(r"requested (\d+), carved (\d+) strips, (\d+) cut nodes, "
              r"(\d+) cut cs-edges", plan)
if not m:
    sys.exit(f"no shard-plan diagnostic on stderr:\n{plan}")
serial, sharded = times(1), times(8)
best_serial, best_sharded = min(serial), min(sharded)
import os
report = {
    "context": {
        "host_hardware_concurrency": os.cpu_count(),
        "note": "speedup requires >= carved_strips cores; on fewer "
                "cores sharded >= serial wall time is expected and "
                "recorded honestly (workers yield, sync cost remains)",
    },
    "workload": "dense mesh N=800 flows=20 802.11 seed=7, CSV run",
    "bit_identity": "shards 8 CSV byte-identical to shards 1 (gated)",
    "shards_requested": int(m.group(1)),
    "carved_strips": int(m.group(2)),
    "cut_nodes": int(m.group(3)),
    "cut_cs_edges": int(m.group(4)),
    "serial_seconds": serial,
    "sharded_seconds": sharded,
    "best_serial_seconds": best_serial,
    "best_sharded_seconds": best_sharded,
    "speedup_best": round(best_serial / best_sharded, 3),
}
with open(out_path, "w", encoding="utf-8") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
print(f"carved {report['carved_strips']} strips "
      f"({report['cut_nodes']} cut nodes); "
      f"serial {best_serial:.2f}s, sharded {best_sharded:.2f}s, "
      f"speedup {report['speedup_best']}x on "
      f"{report['context']['host_hardware_concurrency']} core(s)")
PY
  echo "wrote $OUT"
  exit 0
fi

if [[ "${1:-}" == "--hybrid" ]]; then
  # Hybrid fluid/packet trajectory (EXPERIMENTS.md E15): steady-state
  # I_mm/I_eq estimation on a long-horizon mesh, three ways. The pure
  # run is the reference (1000 s measured window after a 200 s packet
  # warmup). Fast-forward replaces the warmup with the fluid fixed point
  # (same 1000 s window); hybrid-background additionally advances all
  # non-foreground flows with the fluid solver, and because the run
  # starts inside the fixed-point basin a 100 s window suffices. The
  # accuracy gate runs inline — a speedup at unmatched accuracy would be
  # worthless — and the deltas are recorded in the artifact. Best-of-REPS
  # wall time per config (throughput noise is one-sided). Knobs:
  # BENCH_HYBRID_REPS (default 2).
  BUILD_DIR="${2:-build}"
  OUT="${3:-BENCH_hybrid.json}"
  SIM="$BUILD_DIR/tools/maxmin-sim"
  if [[ ! -x "$SIM" ]]; then
    echo "error: $SIM not built" >&2
    echo "hint: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR --target maxmin_sim_cli" >&2
    exit 1
  fi
  TMP="$(mktemp -d)"
  trap 'rm -rf "$TMP"' EXIT
  REPS="${BENCH_HYBRID_REPS:-2}"
  BASE=(--scenario mesh --nodes 20 --flows 12 --seed 11 --csv)
  declare -A MODE_ARGS=(
    [pure]="--duration 1200 --warmup 200"
    [ff]="--duration 1020 --warmup 20 --fast-forward"
    [hybrid]="--duration 120 --warmup 20 --fast-forward --hybrid --foreground auto:3"
  )
  for mode in pure ff hybrid; do
    : > "$TMP/times-$mode"
    # shellcheck disable=SC2086
    for ((i = 0; i < REPS; ++i)); do
      start=$(date +%s.%N)
      "$SIM" "${BASE[@]}" ${MODE_ARGS[$mode]} > "$TMP/out-$mode.csv"
      end=$(date +%s.%N)
      echo "$start $end" >> "$TMP/times-$mode"
    done
  done
  python3 - "$TMP" "$OUT" <<'PY'
import json, os, sys

tmp, out_path = sys.argv[1], sys.argv[2]

def metrics(mode):
    vals = {}
    with open(f"{tmp}/out-{mode}.csv", encoding="utf-8") as fh:
        for line in fh:
            parts = line.strip().split(",")
            if len(parts) == 2 and parts[0] in (
                    "I_mm", "I_eq", "ff_periods", "ff_converged",
                    "background_flows", "relinearizations",
                    "phantom_bursts", "seeded_packets"):
                vals[parts[0]] = float(parts[1])
    return vals

def times(mode):
    secs = []
    with open(f"{tmp}/times-{mode}", encoding="utf-8") as fh:
        for line in fh:
            a, b = map(float, line.split())
            secs.append(round(b - a, 4))
    return secs

# Accuracy tolerances (DESIGN.md §16): fast-forward changes only the
# transient, so it must land essentially on the pure estimate; the
# hybrid background carries the fluid idealization gap plus the shorter
# window's variance.
TOL = {"ff": (0.02, 0.02), "hybrid": (0.05, 0.08)}

pure = metrics("pure")
report = {
    "context": {
        "host_hardware_concurrency": os.cpu_count(),
        "note": "single-threaded runs; speedup is event-count, not "
                "parallelism. The hybrid window is 100 s vs the pure "
                "1000 s: fluid fast-forward starts the run inside the "
                "fixed-point basin, so the short window estimates the "
                "same steady state (gated below).",
    },
    "workload": "random mesh N=20 flows=12 seed=11, gmp; steady-state "
                "I_mm/I_eq estimation",
    "modes": {},
}
best = {}
for mode in ("pure", "ff", "hybrid"):
    vals = metrics(mode)
    secs = times(mode)
    best[mode] = min(secs)
    entry = {"wall_seconds": secs, "best_wall_seconds": best[mode]}
    entry.update({k: vals[k] for k in sorted(vals)})
    if mode != "pure":
        d_imm = abs(vals["I_mm"] - pure["I_mm"])
        d_ieq = abs(vals["I_eq"] - pure["I_eq"])
        tol_imm, tol_ieq = TOL[mode]
        entry["delta_I_mm"] = round(d_imm, 4)
        entry["delta_I_eq"] = round(d_ieq, 4)
        entry["tolerance_I_mm"] = tol_imm
        entry["tolerance_I_eq"] = tol_ieq
        entry["speedup_vs_pure"] = round(best["pure"] / best[mode], 2)
        if d_imm > tol_imm or d_ieq > tol_ieq:
            sys.exit(f"FAIL: {mode} accuracy gate: dI_mm={d_imm:.4f} "
                     f"(tol {tol_imm}), dI_eq={d_ieq:.4f} (tol {tol_ieq})")
    report["modes"][mode] = entry
with open(out_path, "w", encoding="utf-8") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
h = report["modes"]["hybrid"]
f = report["modes"]["ff"]
print(f"pure {best['pure']:.2f}s; ff {best['ff']:.2f}s "
      f"({f['speedup_vs_pure']}x, dI_mm {f['delta_I_mm']}); "
      f"hybrid {best['hybrid']:.2f}s ({h['speedup_vs_pure']}x, "
      f"dI_mm {h['delta_I_mm']}, dI_eq {h['delta_I_eq']})")
PY
  echo "wrote $OUT"
  exit 0
fi

# Long windows on purpose: the per-pass ratio is only as good as each
# run's average, and short runs are at the mercy of host-noise bursts.
bench_pass() { # build-dir out.json
  "$1/bench/bench_micro" \
    --benchmark_filter="$FILTER" \
    --benchmark_min_time="${BENCH_OBS_MIN_TIME:-3}" \
    --benchmark_out_format=json \
    --benchmark_out="$2" >/dev/null
}

if [[ "${1:-}" == "--obs-compare" ]]; then
  OFF_DIR="${2:-build}"
  OBS_DIR="${3:-build-obs}"
  OUT="${4:-BENCH_obs.json}"
  PASSES="${BENCH_OBS_PASSES:-5}"
  for d in "$OFF_DIR" "$OBS_DIR"; do
    if [[ ! -x "$d/bench/bench_micro" ]]; then
      echo "error: $d/bench/bench_micro not built" >&2
      echo "hint: cmake -B $d -S . && cmake --build $d --target bench_micro" >&2
      exit 1
    fi
  done
  TMP="$(mktemp -d)"
  trap 'rm -rf "$TMP"' EXIT
  # Tier 1: structural check. Disassemble the benchmark bodies (which
  # inline the kernel hot paths) from both binaries and compare them
  # with addresses, immediates and symbol operands stripped.
  IDENTICAL=0
  if command -v objdump >/dev/null; then
    for d in "$OFF_DIR" "$OBS_DIR"; do
      objdump -d --no-addresses --no-show-raw-insn "$d/bench/bench_micro" |
        awk '/^<.*BM_Event/{on=1} on{print} /^$/{on=0}' |
        sed -E 's/0x[0-9a-f]+//g; s/<[^>]*>//g' > "$TMP/dis-${d//\//_}.txt"
    done
    if cmp -s "$TMP/dis-${OFF_DIR//\//_}.txt" "$TMP/dis-${OBS_DIR//\//_}.txt"; then
      IDENTICAL=1
      echo "hot-path disassembly identical across builds"
    else
      echo "hot-path disassembly differs; timing gate decides"
    fi
  else
    echo "objdump unavailable; timing gate decides"
  fi
  for ((i = 0; i < PASSES; ++i)); do
    echo "pass $((i + 1))/$PASSES"
    bench_pass "$OFF_DIR" "$TMP/off-$i.json"
    bench_pass "$OBS_DIR" "$TMP/obs-$i.json"
  done
  python3 - "$TMP" "$PASSES" "$OUT" "$IDENTICAL" <<'PY'
import json, statistics, sys

tmp, passes, out_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]
identical = sys.argv[4] == "1"
BUDGET = 0.02  # dormant instrumentation may cost at most 2% throughput

def load(prefix, i):
    with open(f"{tmp}/{prefix}-{i}.json", encoding="utf-8") as fh:
        doc = json.load(fh)
    return doc["context"], {
        b["name"]: b["items_per_second"]
        for b in doc["benchmarks"] if "items_per_second" in b
    }

off_ctx, ratios, off_best, obs_best = None, {}, {}, {}
for i in range(passes):
    off_ctx, off = load("off", i)
    _, obs = load("obs", i)
    for name in off:
        if name not in obs:
            continue
        ratios.setdefault(name, []).append(obs[name] / off[name])
        off_best[name] = max(off_best.get(name, 0.0), off[name])
        obs_best[name] = max(obs_best.get(name, 0.0), obs[name])
rows, worst = [], 0.0
for name in sorted(ratios):
    overhead = 1.0 - obs_best[name] / off_best[name]
    worst = max(worst, overhead)
    rows.append({"benchmark": name,
                 "obs_off_items_per_second": off_best[name],
                 "obs_on_disabled_items_per_second": obs_best[name],
                 "overhead_fraction": round(overhead, 5),
                 "median_pass_ratio_overhead_fraction":
                     round(1.0 - statistics.median(ratios[name]), 5)})
report = {"context": off_ctx, "passes": passes,
          "estimator": "best-of-pass-ceilings",
          "budget_fraction": BUDGET,
          "hot_path_code_identical": identical,
          "instrumentation_overhead_fraction": 0.0 if identical else
              round(worst, 5),
          "worst_timing_delta_fraction": round(worst, 5),
          "benchmarks": rows}
with open(out_path, "w", encoding="utf-8") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
for r in rows:
    print(f"{r['benchmark']}: {r['overhead_fraction'] * 100:+.2f}%")
if identical:
    print(f"PASS: hot-path code identical (structural 0% overhead); "
          f"worst timing delta {worst * 100:.2f}% is host noise floor")
elif worst > BUDGET:
    print(f"FAIL: worst overhead {worst * 100:.2f}% exceeds "
          f"{BUDGET * 100:.0f}% budget", file=sys.stderr)
    sys.exit(1)
else:
    print(f"worst overhead {worst * 100:.2f}% within "
          f"{BUDGET * 100:.0f}% budget")
PY
  echo "wrote $OUT"
  exit 0
fi

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_kernel.json}"
run_bench "$BUILD_DIR" bench_micro "$FILTER" "$OUT"
echo "wrote $OUT"
