#!/usr/bin/env bash
# Run the event-queue microbenchmarks and emit BENCH_kernel.json — the
# kernel performance trajectory artifact. Run after any change to
# src/sim/ and commit the refreshed JSON alongside it. Usage:
#
#   tools/emit_bench_kernel.sh [build-dir] [output.json]
#
# Defaults: build/ and BENCH_kernel.json at the repo root. The JSON is
# google-benchmark's machine-readable format (context block with host
# info + one record per benchmark, items_per_second included).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_kernel.json}"

if [[ ! -x "$BUILD_DIR/bench/bench_micro" ]]; then
  echo "error: $BUILD_DIR/bench/bench_micro not built" >&2
  echo "hint: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR --target bench_micro" >&2
  exit 1
fi

"$BUILD_DIR/bench/bench_micro" \
  --benchmark_filter='BM_Event(QueueScheduleRun|QueueSteadyState|QueueSameInstantBursts|Cancellation)' \
  --benchmark_min_time=0.5 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out_format=json \
  --benchmark_out="$OUT"

echo "wrote $OUT"
