#!/usr/bin/env bash
# One-command local gauntlet: every static/dynamic check the CI runs,
# in cheapest-first order so the fast failures land before the slow
# builds start:
#
#   format      tools/check_format.sh          (clang-format, check-only)
#   lint        tools/lint unit tests + rule fixtures + zero-findings
#               repo sweep (python3)
#   layering    src/ include-graph DAG + acyclicity proof and
#               include_graph.json freshness (python3)
#   tidy        tools/run_clang_tidy.sh        (clang-tidy profile)
#   sanitizers  tools/run_sanitized_tests.sh all  (asan+ubsan, tsan)
#
#   tools/check_all.sh              # all stages
#   tools/check_all.sh lint tidy    # just the named stages
#
# Every stage skips cleanly (with a notice, exit 0) when its tool is
# missing, matching the per-script policy: the tier-1 build needs
# nothing beyond cmake + a C++20 compiler, and CI runs each stage for
# real. The script stops at the first failing stage.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGES=("$@")
[[ ${#STAGES[@]} -eq 0 ]] && STAGES=(format lint layering tidy sanitizers)

banner() { printf '\n=== check_all: %s ===\n' "$1"; }

have_python() {
  command -v python3 >/dev/null 2>&1
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    format)
      banner format
      tools/check_format.sh  # self-skips when clang-format is missing
      ;;
    lint)
      banner lint
      if ! have_python; then
        echo "check_all: python3 not found; skipping lint"
        continue
      fi
      python3 -m unittest discover -s tools/lint -p 'test_*.py'
      python3 tools/lint/maxmin_lint.py --fixtures tests/lint_fixtures
      python3 tools/lint/maxmin_lint.py --root .
      ;;
    layering)
      banner layering
      if ! have_python; then
        echo "check_all: python3 not found; skipping layering"
        continue
      fi
      python3 tools/lint/maxmin_lint.py --layering-only --root .
      ;;
    tidy)
      banner tidy
      tools/run_clang_tidy.sh  # self-skips when clang-tidy is missing
      ;;
    sanitizers)
      banner sanitizers
      if ! command -v cmake >/dev/null 2>&1; then
        echo "check_all: cmake not found; skipping sanitizers"
        continue
      fi
      tools/run_sanitized_tests.sh all
      ;;
    *)
      echo "check_all: unknown stage '$stage'" >&2
      echo "known stages: format lint layering tidy sanitizers" >&2
      exit 2
      ;;
  esac
done

echo
echo "check_all: all requested stages passed (or skipped with notice)"
