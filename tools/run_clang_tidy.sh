#!/usr/bin/env bash
# Run the repo's curated clang-tidy profile (.clang-tidy) over all first-
# party translation units, using the compile database exported by the
# default CMake preset. Zero findings is the enforced baseline: any
# finding exits nonzero (WarningsAsErrors: '*').
#
#   tools/run_clang_tidy.sh            # configure if needed, tidy everything
#   tools/run_clang_tidy.sh src/sim    # only TUs under a subtree
#
# Containers without clang-tidy (the default dev image bakes in only the
# GNU toolchain) skip with exit 0 so ctest/CI lanes stay green; the
# dedicated CI tidy job installs clang-tidy and runs this for real.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (install clang-tidy to enable)"
  exit 0
fi

SUBTREE="${1:-}"

if [[ ! -f build/compile_commands.json ]]; then
  cmake --preset default > /dev/null
fi

# First-party TUs only: the database also holds GTest/benchmark sources.
mapfile -t FILES < <(python3 - "$SUBTREE" <<'EOF'
import json, sys
subtree = sys.argv[1]
for entry in json.load(open("build/compile_commands.json")):
    f = entry["file"]
    rel = f.split("/root/repo/", 1)[-1] if f.startswith("/") else f
    if rel.startswith(("src/", "tools/", "bench/", "examples/", "tests/")):
        if not subtree or rel.startswith(subtree.rstrip("/") + "/"):
            print(f)
EOF
)

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_clang_tidy: no translation units matched '${SUBTREE}'"
  exit 1
fi

echo "run_clang_tidy: ${#FILES[@]} translation units"
FAIL=0
printf '%s\n' "${FILES[@]}" \
  | xargs -P "$(nproc)" -n 4 clang-tidy -p build --quiet || FAIL=1

if [[ $FAIL -ne 0 ]]; then
  echo "run_clang_tidy: findings above — the baseline is zero" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
