"""Rule catalog and the pattern-family rules of maxmin_lint.

Every rule descends from a real bug or a structural invariant of this
codebase; the catalog with bug history lives in DESIGN.md §10. This module
holds the shared rule metadata (ids, messages, path scopes) plus the nine
"pattern" rules that match token-stripped lines. The three structural
families live in sibling modules:

    layering.py     — include-graph DAG conformance and cycle detection
    determinism.py  — unordered-container iteration feeding ordered output
    shared_state.py — mutable-static inventory against shared_state.toml

All rules read source through the shared scanner (cpptok.py): comments,
string/char literals and raw-string contents are blanked before any
pattern looks at a line, so a rule can never fire on (or be hidden by)
literal text, spliced comments, or raw-string bodies.
"""

from __future__ import annotations

import re

# --------------------------------------------------------------------------
# Path scopes
# --------------------------------------------------------------------------

SIM_SCOPE = ("src/sim/", "src/net/", "src/gmp/", "src/mac/", "src/phys/")
HOT_SCOPE = ("src/sim/", "src/net/", "src/mac/", "src/phys/")
HEADER_SUFFIXES = (".hpp", ".h")

# Files where a rule never applies (the one place the primitive belongs).
BAKED_ALLOW = {
    "raw-rng": ("src/util/rng.hpp",),
    # The definition itself, and the one sanctioned call site: per-node
    # stack bring-up, whose fork order is frozen by the seed contract.
    "raw-fork": ("src/util/rng.hpp", "src/net/network.cpp"),
}


def is_header(rel: str) -> bool:
    return rel.endswith(HEADER_SUFFIXES)


class Rule:
    def __init__(self, rule_id, message, patterns, in_scope):
        self.rule_id = rule_id
        self.message = message
        self.patterns = [re.compile(p) for p in patterns]
        self.in_scope = in_scope


class Finding:
    def __init__(self, rel, line, rule_id, message):
        self.rel = rel
        self.line = line
        self.rule_id = rule_id
        self.message = message

    def __str__(self):
        return f"{self.rel}:{self.line}: [{self.rule_id}] {self.message}"

    def as_json(self):
        return {
            "file": self.rel,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }


# --------------------------------------------------------------------------
# The twelve rules. Pattern rules carry regexes (run against stripped
# lines); structural rules carry an empty pattern list and are implemented
# in check functions / sibling modules.
# --------------------------------------------------------------------------

RULES = [
    Rule(
        "raw-rng",
        "raw RNG primitive; draw from a named maxmin::Rng stream "
        "(src/util/rng.hpp) so runs stay reproducible from the seed",
        [
            r"\bstd::mt19937(?:_64)?\b",
            r"\bstd::random_device\b",
            r"\bstd::default_random_engine\b",
            r"\bstd::minstd_rand0?\b",
            r"(?<![\w:.>])s?rand\s*\(",
        ],
        lambda rel: True,
    ),
    Rule(
        "wall-clock",
        "wall-clock read inside a simulation subsystem; use "
        "Simulator::now() so a run is a pure function of its seed",
        [
            r"\bgettimeofday\s*\(",
            r"\bclock_gettime\s*\(",
            r"\bsystem_clock\b",
            r"\bsteady_clock\b",
            r"\bhigh_resolution_clock\b",
            r"(?:\bstd::|(?<![\w.:])::)time\s*\(",
            r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)\s*\)",
            r"\blocaltime(?:_r)?\s*\(",
            r"\bgmtime(?:_r)?\s*\(",
        ],
        lambda rel: rel.startswith(SIM_SCOPE),
    ),
    Rule(
        "hot-map",
        "ordered node-based container in a hot-path header; use "
        "unordered_map/unordered_set and sort at report time "
        "(phys::FrameTrace::sortedLinkStats is the model)",
        [
            r"\bstd::(?:multi)?map\s*<",
            r"\bstd::(?:multi)?set\s*<",
        ],
        lambda rel: rel.startswith(HOT_SCOPE) and is_header(rel),
    ),
    Rule(
        "event-fn",
        "std::function in the DES kernel; event paths use sim::EventFn "
        "(48 B inline budget, no heap traffic on schedule/fire)",
        [
            r"\bstd::function\s*<",
        ],
        lambda rel: rel.startswith("src/sim/"),
    ),
    Rule(
        "chrono-outside-obs",
        "raw std::chrono outside src/obs/; wall time is read through "
        "obs::Profiler::wallNanos() only (src/obs/profile.cpp)",
        [
            r"\bstd::chrono\b",
            r"^\s*#\s*include\s*<chrono>",
        ],
        # SIM_SCOPE is excluded only because the wall-clock rule already
        # owns those paths (one finding per sin, and fixtures require a
        # trigger to fire exactly one rule).
        lambda rel: (
            rel.startswith(("src/", "tools/", "bench/", "examples/"))
            and not rel.startswith("src/obs/")
            and not rel.startswith(SIM_SCOPE)
        ),
    ),
    Rule(
        "nodiscard-handle",
        "handle-returning API without [[nodiscard]]; a dropped EventId "
        "is an uncancellable event",
        [],  # structural: check_nodiscard()
        lambda rel: rel.startswith("src/") and is_header(rel),
    ),
    Rule(
        "raw-fork",
        "Rng::fork() outside the frozen bring-up order; new randomness "
        "draws from a named stream (Rng{seed}.stream(\"...\")) so "
        "inserting a consumer cannot reseed every later fork() child",
        [
            r"\.\s*fork\s*\(\s*\)",
        ],
        lambda rel: rel.startswith("src/"),
    ),
    Rule(
        "nul-byte-in-source",
        "NUL/control byte in source; grep classifies the file as binary "
        "and text tooling silently skips it — use an escaped spelling "
        "(\\u0000) instead",
        [],  # byte-level: the scanner classifies, the driver refuses
        lambda rel: True,
    ),
    Rule(
        "per-frame-distance",
        "geometry query in the frame pipeline; per-frame membership is a "
        "packed AdjacencyMatrix bit test / CSR list walk built at "
        "construction (DESIGN.md §12) — allow() construction-time sites",
        [
            r"\bdistanceBetween\s*\(",
            r"\binCsRange\s*\(",
        ],
        lambda rel: rel.startswith(("src/phys/", "src/mac/")),
    ),
    Rule(
        "layering",
        "include edge violates the documented subsystem DAG "
        "(util < obs < sim < topology < phys < mac < net < gmp < "
        "{analysis, exp, baselines, fluid, scenarios}); see layering.py",
        [],  # structural: layering.check_tree()
        lambda rel: rel.startswith("src/"),
    ),
    Rule(
        "unordered-iter",
        "iteration over an unordered container whose body writes ordered "
        "output (stream/trace/CSV) or a floating-point accumulator; "
        "iterate a sorted snapshot (sortedLinkStats is the model) or "
        "justify with allow(unordered-iter)",
        [],  # structural: determinism.check_file()
        lambda rel: rel.startswith(("src/", "tools/", "bench/", "examples/")),
    ),
    Rule(
        "shared-state",
        "mutable static/singleton not in the audited inventory "
        "(tools/lint/shared_state.toml); shared mutable state must be "
        "deliberately manifested before region workers may exist",
        [],  # structural: shared_state.check_file() / check_manifest()
        lambda rel: rel.startswith("src/"),
    ),
]

RULE_IDS = {r.rule_id for r in RULES}
RULE_BY_ID = {r.rule_id: r for r in RULES}


def message_of(rule_id: str) -> str:
    return RULE_BY_ID[rule_id].message


# --------------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------------

PRAGMA = re.compile(r"maxmin-lint:\s*(allow|allow-file)\(([a-z0-9-]+)\)")


def collect_pragmas(raw_lines, warn):
    """-> (file_allows: set[rule], line_allows: dict[lineno, set[rule]]).

    Pragmas are read from the *raw* text — they live in comments, which
    the scanner blanks.
    """
    file_allows, line_allows = set(), {}
    for lineno, line in enumerate(raw_lines, 1):
        for kind, rule_id in PRAGMA.findall(line):
            if rule_id not in RULE_IDS:
                warn(f"unknown rule '{rule_id}' in pragma at line {lineno}")
                continue
            if kind == "allow-file":
                file_allows.add(rule_id)
            else:
                # An allow() covers its own line and the next one, so the
                # pragma can sit in a comment above a long declaration.
                line_allows.setdefault(lineno, set()).add(rule_id)
                line_allows.setdefault(lineno + 1, set()).add(rule_id)
    return file_allows, line_allows


# --------------------------------------------------------------------------
# Structural pattern helpers
# --------------------------------------------------------------------------

# Declaration of a function returning an event handle. Anchored at the
# line start (after qualifiers) so parameters of type EventId don't match.
NODISCARD_DECL = re.compile(
    r"^\s*(?:(?:static|constexpr|inline|virtual|friend|explicit)\s+)*"
    r"(?:sim::)?EventId\s+\w+\s*\("
)


def check_nodiscard(rel, stripped_lines, findings, allowed):
    prev = ""
    for lineno, line in enumerate(stripped_lines, 1):
        if NODISCARD_DECL.match(line):
            if "[[nodiscard]]" not in line and "[[nodiscard]]" not in prev:
                if not allowed(lineno, "nodiscard-handle"):
                    findings.append(
                        Finding(rel, lineno, "nodiscard-handle",
                                message_of("nodiscard-handle")))
        if line.strip():
            prev = line


def check_patterns(rel, stripped_lines, findings, allowed):
    """Run every pattern rule whose scope covers `rel`."""
    for rule in RULES:
        if not rule.patterns or not rule.in_scope(rel):
            continue
        for lineno, line in enumerate(stripped_lines, 1):
            for pat in rule.patterns:
                if pat.search(line) and not allowed(lineno, rule.rule_id):
                    findings.append(
                        Finding(rel, lineno, rule.rule_id, rule.message))
                    break
