#!/usr/bin/env python3
"""maxmin_lint — project-specific static analysis for the maxmin repo.

The GMP maxmin guarantee rests on determinism invariants the compiler
cannot see. Each rule below descends from a real bug or a structural
invariant of this codebase (the catalog with history lives in
DESIGN.md §10):

  raw-rng          All randomness flows through maxmin::Rng's named,
                   seeded streams (src/util/rng.hpp). A raw std::mt19937,
                   rand() or std::random_device anywhere else silently
                   breaks run-reproducibility-from-seed.
  wall-clock       Simulation subsystems (src/sim|net|gmp|mac|phys) live
                   on Simulator::now(). Any wall-clock read (time(),
                   system_clock, gettimeofday, ...) makes a run depend on
                   the host, not the seed.
  hot-map          Hot-path headers (src/sim|net|mac|phys) must not use
                   std::map: node-based containers cost a pointer chase
                   per packet/frame. Use unordered_map and sort at report
                   time (see phys::FrameTrace::sortedLinkStats). Genuine
                   report/wire types opt out with an allow pragma.
  event-fn         src/sim event paths must use sim::EventFn, not
                   std::function — std::function heap-allocates beyond
                   two captured words and drags copies into the
                   schedule/fire hot path.
  nodiscard-handle Handle-returning APIs (Simulator::schedule and
                   friends returning EventId) must be [[nodiscard]]: a
                   dropped handle is an uncancellable event, the exact
                   shape of the PR-1 cancelled-set leak.
  chrono-outside-obs
                   obs::Profiler::wallNanos() (src/obs/profile.cpp) is
                   the project's single sanctioned wall-clock read; raw
                   std::chrono anywhere else either duplicates it or —
                   worse — leaks host time into results that must be a
                   pure function of the seed. (Simulation subsystems are
                   covered by the stricter wall-clock rule instead.)
  raw-fork         Rng::fork() is order-sensitive: inserting one call
                   shifts every later child's stream, silently reseeding
                   unrelated subsystems. Only the construction-time node
                   bring-up in src/net/network.cpp may fork; everything
                   added later (jitter, backoff, chaos schedules) draws
                   from a position-independent named stream —
                   Rng{seed}.stream("name").
  per-frame-distance
                   The frame pipeline (src/phys|mac) must not query
                   geometry per frame: Topology::distanceBetween() costs
                   a sqrt and inCsRange()/areNeighbors() used to hide
                   per-call distance math behind every frame. Hot paths
                   read the packed AdjacencyMatrix rows / CSR neighbor
                   lists built at construction (DESIGN.md §12);
                   construction-time sites opt out with an allow pragma.
  nul-byte-in-source
                   Tracked sources must be plain text. A stray NUL (or
                   other C0 control byte beyond tab/newline/CR) makes
                   grep/ripgrep classify the file as binary and silently
                   drop it from every text search and text-mode tool —
                   src/analysis/trace_replay.cpp once hid a literal NUL
                   inside a comment and vanished from grep for three
                   PRs. Spell control bytes escaped (e.g. \\u0000).

Suppressions:
  // maxmin-lint: allow(<rule>) <reason>        one line
  // maxmin-lint: allow-file(<rule>) <reason>   whole file

Usage:
  tools/lint/maxmin_lint.py                 lint the repo (exit 1 on findings)
  tools/lint/maxmin_lint.py path...         lint specific files
  tools/lint/maxmin_lint.py --fixtures DIR  run the fixture expectations
  tools/lint/maxmin_lint.py --list-rules    print the rule catalog
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------------

SIM_SCOPE = ("src/sim/", "src/net/", "src/gmp/", "src/mac/", "src/phys/")
HOT_SCOPE = ("src/sim/", "src/net/", "src/mac/", "src/phys/")
HEADER_SUFFIXES = (".hpp", ".h")

# Files where a rule never applies (the one place the primitive belongs).
BAKED_ALLOW = {
    "raw-rng": ("src/util/rng.hpp",),
    # The definition itself, and the one sanctioned call site: per-node
    # stack bring-up, whose fork order is frozen by the seed contract.
    "raw-fork": ("src/util/rng.hpp", "src/net/network.cpp"),
}


class Rule:
    def __init__(self, rule_id, message, patterns, in_scope):
        self.rule_id = rule_id
        self.message = message
        self.patterns = [re.compile(p) for p in patterns]
        self.in_scope = in_scope


def _is_header(rel):
    return rel.endswith(HEADER_SUFFIXES)


RULES = [
    Rule(
        "raw-rng",
        "raw RNG primitive; draw from a named maxmin::Rng stream "
        "(src/util/rng.hpp) so runs stay reproducible from the seed",
        [
            r"\bstd::mt19937(?:_64)?\b",
            r"\bstd::random_device\b",
            r"\bstd::default_random_engine\b",
            r"\bstd::minstd_rand0?\b",
            r"(?<![\w:.>])s?rand\s*\(",
        ],
        lambda rel: True,
    ),
    Rule(
        "wall-clock",
        "wall-clock read inside a simulation subsystem; use "
        "Simulator::now() so a run is a pure function of its seed",
        [
            r"\bgettimeofday\s*\(",
            r"\bclock_gettime\s*\(",
            r"\bsystem_clock\b",
            r"\bsteady_clock\b",
            r"\bhigh_resolution_clock\b",
            r"(?:\bstd::|(?<![\w.:])::)time\s*\(",
            r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)\s*\)",
            r"\blocaltime(?:_r)?\s*\(",
            r"\bgmtime(?:_r)?\s*\(",
        ],
        lambda rel: rel.startswith(SIM_SCOPE),
    ),
    Rule(
        "hot-map",
        "std::map in a hot-path header; use unordered_map and sort at "
        "report time (phys::FrameTrace::sortedLinkStats is the model)",
        [
            r"\bstd::(?:multi)?map\s*<",
        ],
        lambda rel: rel.startswith(HOT_SCOPE) and _is_header(rel),
    ),
    Rule(
        "event-fn",
        "std::function in the DES kernel; event paths use sim::EventFn "
        "(48 B inline budget, no heap traffic on schedule/fire)",
        [
            r"\bstd::function\s*<",
        ],
        lambda rel: rel.startswith("src/sim/"),
    ),
    Rule(
        "chrono-outside-obs",
        "raw std::chrono outside src/obs/; wall time is read through "
        "obs::Profiler::wallNanos() only (src/obs/profile.cpp)",
        [
            r"\bstd::chrono\b",
            r"^\s*#\s*include\s*<chrono>",
        ],
        # SIM_SCOPE is excluded only because the wall-clock rule already
        # owns those paths (one finding per sin, and fixtures require a
        # trigger to fire exactly one rule).
        lambda rel: (
            rel.startswith(("src/", "tools/", "bench/", "examples/"))
            and not rel.startswith("src/obs/")
            and not rel.startswith(SIM_SCOPE)
        ),
    ),
    Rule(
        "nodiscard-handle",
        "handle-returning API without [[nodiscard]]; a dropped EventId "
        "is an uncancellable event",
        [],  # structural rule, see check_nodiscard()
        lambda rel: rel.startswith("src/") and _is_header(rel),
    ),
    Rule(
        "raw-fork",
        "Rng::fork() outside the frozen bring-up order; new randomness "
        "draws from a named stream (Rng{seed}.stream(\"...\")) so "
        "inserting a consumer cannot reseed every later fork() child",
        [
            r"\.\s*fork\s*\(\s*\)",
        ],
        lambda rel: rel.startswith("src/"),
    ),
    Rule(
        "nul-byte-in-source",
        "NUL/control byte in source; grep classifies the file as binary "
        "and text tooling silently skips it — use an escaped spelling "
        "(\\u0000) instead",
        [],  # byte-level rule, see check_control_bytes()
        lambda rel: True,
    ),
    Rule(
        "per-frame-distance",
        "geometry query in the frame pipeline; per-frame membership is a "
        "packed AdjacencyMatrix bit test / CSR list walk built at "
        "construction (DESIGN.md §12) — allow() construction-time sites",
        [
            r"\bdistanceBetween\s*\(",
            r"\binCsRange\s*\(",
        ],
        lambda rel: rel.startswith(("src/phys/", "src/mac/")),
    ),
]

RULE_IDS = {r.rule_id for r in RULES}

# Declaration of a function returning an event handle. Anchored at the
# line start (after qualifiers) so parameters of type EventId don't match.
NODISCARD_DECL = re.compile(
    r"^\s*(?:(?:static|constexpr|inline|virtual|friend|explicit)\s+)*"
    r"(?:sim::)?EventId\s+\w+\s*\("
)

PRAGMA = re.compile(r"maxmin-lint:\s*(allow|allow-file)\(([a-z0-9-]+)\)")

# C0 control bytes that flip grep's binary heuristic, minus the text
# whitespace bytes (tab, newline, carriage return), plus DEL. Checked
# against the *raw* line — a control byte inside a comment or string
# literal hides the file from text tooling just the same.
CONTROL_BYTES = re.compile(r"[\x00-\x08\x0b\x0c\x0e-\x1f\x7f]")


class Finding:
    def __init__(self, rel, line, rule_id, message):
        self.rel = rel
        self.line = line
        self.rule_id = rule_id
        self.message = message

    def __str__(self):
        return f"{self.rel}:{self.line}: [{self.rule_id}] {self.message}"


# --------------------------------------------------------------------------
# Comment / string stripping (pragmas are read from the raw text first)
# --------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving line
    structure so finding line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)


def collect_pragmas(raw_lines):
    """-> (file_allows: set[rule], line_allows: dict[lineno, set[rule]])."""
    file_allows, line_allows = set(), {}
    for lineno, line in enumerate(raw_lines, 1):
        for kind, rule_id in PRAGMA.findall(line):
            if rule_id not in RULE_IDS:
                print(
                    f"warning: unknown rule '{rule_id}' in pragma at "
                    f"line {lineno}",
                    file=sys.stderr,
                )
                continue
            if kind == "allow-file":
                file_allows.add(rule_id)
            else:
                # An allow() covers its own line and the next one, so the
                # pragma can sit in a comment above a long declaration.
                line_allows.setdefault(lineno, set()).add(rule_id)
                line_allows.setdefault(lineno + 1, set()).add(rule_id)
    return file_allows, line_allows


# --------------------------------------------------------------------------
# Checks
# --------------------------------------------------------------------------

def check_nodiscard(rel, stripped_lines, findings, allowed):
    prev = ""
    for lineno, line in enumerate(stripped_lines, 1):
        if NODISCARD_DECL.match(line):
            if "[[nodiscard]]" not in line and "[[nodiscard]]" not in prev:
                if not allowed(lineno, "nodiscard-handle"):
                    findings.append(
                        Finding(rel, lineno, "nodiscard-handle",
                                next(r.message for r in RULES
                                     if r.rule_id == "nodiscard-handle"))
                    )
        if line.strip():
            prev = line


def check_control_bytes(rel, raw_lines, findings, allowed):
    message = next(
        r.message for r in RULES if r.rule_id == "nul-byte-in-source")
    for lineno, line in enumerate(raw_lines, 1):
        if CONTROL_BYTES.search(line):
            if not allowed(lineno, "nul-byte-in-source"):
                findings.append(
                    Finding(rel, lineno, "nul-byte-in-source", message))


def lint_file(path, rel):
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"warning: cannot read {rel}: {e}", file=sys.stderr)
        return []
    raw_lines = raw.splitlines()
    file_allows, line_allows = collect_pragmas(raw_lines)
    stripped_lines = strip_comments_and_strings(raw).splitlines()

    def allowed(lineno, rule_id):
        if rule_id in file_allows:
            return True
        if rule_id in BAKED_ALLOW and rel in BAKED_ALLOW[rule_id]:
            return True
        return rule_id in line_allows.get(lineno, set())

    findings = []
    for rule in RULES:
        if not rule.in_scope(rel):
            continue
        if rule.rule_id == "nodiscard-handle":
            check_nodiscard(rel, stripped_lines, findings, allowed)
            continue
        if rule.rule_id == "nul-byte-in-source":
            check_control_bytes(rel, raw_lines, findings, allowed)
            continue
        for lineno, line in enumerate(stripped_lines, 1):
            for pat in rule.patterns:
                if pat.search(line) and not allowed(lineno, rule.rule_id):
                    findings.append(
                        Finding(rel, lineno, rule.rule_id, rule.message))
                    break
    return findings


SKIP_DIRS = {".git", ".github", "third_party"}
SKIP_REL = ("tests/lint_fixtures/",)


def repo_files(root):
    for path in sorted(root.rglob("*")):
        if path.suffix not in (".hpp", ".h", ".cpp", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        parts = rel.split("/")
        if any(p in SKIP_DIRS or p.startswith("build") for p in parts[:-1]):
            continue
        if rel.startswith(SKIP_REL):
            continue
        yield path, rel


def lint_tree(root, explicit=None):
    findings = []
    if explicit:
        for p in explicit:
            path = Path(p).resolve()
            rel = path.relative_to(root).as_posix()
            findings.extend(lint_file(path, rel))
    else:
        for path, rel in repo_files(root):
            findings.extend(lint_file(path, rel))
    return findings


# --------------------------------------------------------------------------
# Fixture mode: trigger_<rule>* must fire exactly that rule, clean_* must
# be silent. Fixtures mirror the repo layout under the fixture root so the
# path-scoping logic is exercised too.
# --------------------------------------------------------------------------

def run_fixtures(fixture_root):
    failures = 0
    cases = 0
    for path, rel in repo_files(fixture_root):
        name = path.stem
        if name.startswith("trigger_"):
            expect = name[len("trigger_"):]
        elif name.startswith("clean_"):
            expect = None
        else:
            continue
        cases += 1
        findings = lint_file(path, rel)
        if expect is None:
            if findings:
                failures += 1
                print(f"FAIL {rel}: expected clean, got:")
                for f in findings:
                    print(f"  {f}")
            else:
                print(f"PASS {rel} (clean)")
            continue
        # trigger_<rule>_variant → rule id uses dashes
        rule_id = None
        for r in sorted(RULE_IDS, key=len, reverse=True):
            if expect.replace("-", "_").startswith(r.replace("-", "_")):
                rule_id = r
                break
        if rule_id is None:
            failures += 1
            print(f"FAIL {rel}: fixture names unknown rule '{expect}'")
            continue
        fired = {f.rule_id for f in findings}
        if rule_id not in fired:
            failures += 1
            print(f"FAIL {rel}: expected [{rule_id}] to fire, got {sorted(fired) or 'nothing'}")
        elif fired != {rule_id}:
            failures += 1
            print(f"FAIL {rel}: unexpected extra rules fired: {sorted(fired - {rule_id})}")
        else:
            print(f"PASS {rel} ([{rule_id}] fired)")
    if cases == 0:
        print(f"FAIL: no fixtures found under {fixture_root}")
        return 1
    print(f"{cases - failures}/{cases} fixtures passed")
    return 1 if failures else 0


# --------------------------------------------------------------------------


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="files to lint (default: repo)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repo root (default: two levels up from this script)")
    parser.add_argument("--fixtures", type=Path,
                        help="run fixture expectations under this directory")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(f"{r.rule_id:18} {r.message}")
        return 0

    if args.fixtures:
        return run_fixtures(args.fixtures.resolve())

    findings = lint_tree(args.root.resolve(), args.paths)
    for f in findings:
        print(f)
    if findings:
        print(f"maxmin-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("maxmin-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
