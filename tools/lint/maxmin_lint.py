#!/usr/bin/env python3
"""maxmin_lint — project static analysis for the maxmin repo.

The GMP maxmin guarantee rests on determinism invariants the compiler
cannot see, and the sharded-PDES roadmap adds concurrency-readiness
invariants TSan can only check at runtime. This package encodes both as
mechanical rules (catalog with bug history: DESIGN.md §10):

  pattern rules (rules.py, matched over token-stripped lines):
    raw-rng            all randomness via named maxmin::Rng streams
    wall-clock         sim subsystems live on Simulator::now()
    hot-map            no std::map/set/multimap/multiset in hot headers
    event-fn           src/sim uses sim::EventFn, not std::function
    nodiscard-handle   EventId-returning APIs are [[nodiscard]]
    chrono-outside-obs obs::Profiler::wallNanos() is the one wall clock
    raw-fork           Rng::fork() only in the frozen bring-up order
    per-frame-distance no geometry queries on the frame pipeline
    nul-byte-in-source sources stay text; binary-classified files are
                       refused loudly by every rule (cpptok front-end)

  structural rules (token/graph level):
    layering           src/ include graph conforms to the documented DAG
                       and is acyclic (layering.py; committed dump in
                       tools/lint/include_graph.json)
    unordered-iter     no unordered-container iteration feeding ordered
                       output or float accumulators (determinism.py)
    shared-state       every mutable static/singleton is audited in
                       tools/lint/shared_state.toml (shared_state.py)

Suppressions:
  // maxmin-lint: allow(<rule>) <reason>        one line (and the next)
  // maxmin-lint: allow-file(<rule>) <reason>   whole file

Usage:
  tools/lint/maxmin_lint.py                 lint the repo (exit 1 on findings)
  tools/lint/maxmin_lint.py path...         lint specific files
  tools/lint/maxmin_lint.py --fixtures DIR  run the fixture expectations
  tools/lint/maxmin_lint.py --list-rules    print the rule catalog
  tools/lint/maxmin_lint.py --json          findings as JSON (CI annotation)
  tools/lint/maxmin_lint.py --dump-graph    rewrite include_graph.json
  tools/lint/maxmin_lint.py --layering-only just the include-graph checks
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import cpptok  # noqa: E402
import determinism  # noqa: E402
import layering  # noqa: E402
import shared_state  # noqa: E402
from rules import (  # noqa: E402
    BAKED_ALLOW, RULES, RULE_BY_ID, Finding, check_nodiscard,
    check_patterns, collect_pragmas, message_of,
)

# --------------------------------------------------------------------------
# Per-file linting
# --------------------------------------------------------------------------


def _paired_header_tokens(path: Path):
    """Token streams of the .hpp/.h sibling of a .cpp/.cc (member
    declarations live there; the unordered-iter symbol table needs them)."""
    if path.suffix not in (".cpp", ".cc"):
        return []
    streams = []
    for suffix in (".hpp", ".h"):
        sibling = path.with_suffix(suffix)
        if sibling.exists():
            text = sibling.read_text(encoding="utf-8", errors="replace")
            streams.append(cpptok.scan(text).tokens)
    return streams


def lint_file(path, rel, manifest=None, statics_out=None):
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"warning: cannot read {rel}: {e}", file=sys.stderr)
        return []
    raw_lines = raw.splitlines()
    file_allows, line_allows = collect_pragmas(
        raw_lines,
        lambda msg: print(f"warning: {rel}: {msg}", file=sys.stderr))

    def allowed(lineno, rule_id):
        if rule_id in file_allows:
            return True
        if rule_id in BAKED_ALLOW and rel in BAKED_ALLOW[rule_id]:
            return True
        return rule_id in line_allows.get(lineno, set())

    scanned = cpptok.scan(raw)
    findings = []

    # Binary classification is a front-end property: a control byte makes
    # grep drop the whole file from text tooling, so no other rule gets a
    # trustworthy view. Refuse loudly instead of linting garbage.
    if scanned.is_binary:
        msg = message_of("nul-byte-in-source")
        for lineno in scanned.control_lines:
            if not allowed(lineno, "nul-byte-in-source"):
                findings.append(
                    Finding(rel, lineno, "nul-byte-in-source", msg))
        if findings:
            print(f"warning: {rel}: binary-classified (control bytes); "
                  "all other rules refused for this file", file=sys.stderr)
        return findings

    stripped_lines = scanned.stripped_lines()
    check_patterns(rel, stripped_lines, findings, allowed)
    if RULE_BY_ID["nodiscard-handle"].in_scope(rel):
        check_nodiscard(rel, stripped_lines, findings, allowed)
    if RULE_BY_ID["unordered-iter"].in_scope(rel):
        determinism.check_file(rel, scanned.tokens,
                               _paired_header_tokens(path), findings, allowed)
    if manifest is not None and RULE_BY_ID["shared-state"].in_scope(rel):
        seen = shared_state.check_file(rel, scanned.tokens, manifest,
                                       findings, allowed)
        if statics_out is not None:
            statics_out.extend(seen)
    return findings


SKIP_DIRS = {".git", ".github", "third_party"}
SKIP_REL = ("tests/lint_fixtures/",)


def repo_files(root):
    for path in sorted(root.rglob("*")):
        if path.suffix not in (".hpp", ".h", ".cpp", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        parts = rel.split("/")
        if any(p in SKIP_DIRS or p.startswith("build") for p in parts[:-1]):
            continue
        if rel.startswith(SKIP_REL):
            continue
        yield path, rel


def lint_tree(root, explicit=None):
    findings = []
    if explicit:
        # Explicit file list: per-file rules only (the tree-wide layering
        # and manifest-staleness checks need the whole repo view).
        manifest = shared_state.load_manifest(root)
        for p in explicit:
            path = Path(p).resolve()
            rel = path.relative_to(root).as_posix()
            findings.extend(lint_file(path, rel, manifest))
        return findings
    manifest = shared_state.load_manifest(root)
    statics = []
    for path, rel in repo_files(root):
        findings.extend(lint_file(path, rel, manifest, statics))
    layer_findings, _ = layering.check_tree(root)
    findings.extend(layer_findings)
    shared_state.check_manifest(manifest, statics, findings)
    return findings


# --------------------------------------------------------------------------
# Fixture mode: trigger_<rule>* must fire exactly that rule, clean_* must
# be silent. Fixtures mirror the repo layout under the fixture root so the
# path-scoping logic is exercised too. Directories under
# <fixtures>/layering/ hold synthetic src/ trees for the tree-wide
# layering checks (trigger_* trees must yield layering findings, clean_*
# trees none).
# --------------------------------------------------------------------------

RULE_IDS_SORTED = sorted((r.rule_id for r in RULES), key=len, reverse=True)


def _expected_rule(name):
    for r in RULE_IDS_SORTED:
        if name.replace("-", "_").startswith(r.replace("-", "_")):
            return r
    return None


def run_fixtures(fixture_root):
    failures = 0
    cases = 0
    manifest = shared_state.load_manifest(
        Path(__file__).resolve().parents[2])
    for path, rel in repo_files(fixture_root):
        if rel.startswith("layering/"):
            continue  # members of the synthetic layering trees below
        name = path.stem
        if name.startswith("trigger_"):
            expect = name[len("trigger_"):]
        elif name.startswith("clean_"):
            expect = None
        else:
            continue
        cases += 1
        findings = lint_file(path, rel, manifest)
        if expect is None:
            if findings:
                failures += 1
                print(f"FAIL {rel}: expected clean, got:")
                for f in findings:
                    print(f"  {f}")
            else:
                print(f"PASS {rel} (clean)")
            continue
        rule_id = _expected_rule(expect)
        if rule_id is None:
            failures += 1
            print(f"FAIL {rel}: fixture names unknown rule '{expect}'")
            continue
        fired = {f.rule_id for f in findings}
        if rule_id not in fired:
            failures += 1
            print(f"FAIL {rel}: expected [{rule_id}] to fire, "
                  f"got {sorted(fired) or 'nothing'}")
        elif fired != {rule_id}:
            failures += 1
            print(f"FAIL {rel}: unexpected extra rules fired: "
                  f"{sorted(fired - {rule_id})}")
        else:
            print(f"PASS {rel} ([{rule_id}] fired)")

    layering_root = fixture_root / "layering"
    if layering_root.is_dir():
        for case in sorted(layering_root.iterdir()):
            if not case.is_dir() or not (case / "src").is_dir():
                continue
            cases += 1
            includes, known = layering.scan_includes(case / "src")
            findings = layering.check_graph(includes, known)
            rel = f"layering/{case.name}"
            if case.name.startswith("clean_"):
                if findings:
                    failures += 1
                    print(f"FAIL {rel}: expected clean, got:")
                    for f in findings:
                        print(f"  {f}")
                else:
                    print(f"PASS {rel} (clean)")
            elif case.name.startswith("trigger_"):
                bad = [f for f in findings if f.rule_id != "layering"]
                if not findings:
                    failures += 1
                    print(f"FAIL {rel}: expected [layering] to fire, "
                          "got nothing")
                elif bad:
                    failures += 1
                    print(f"FAIL {rel}: non-layering findings: {bad}")
                else:
                    print(f"PASS {rel} ([layering] fired, "
                          f"{len(findings)} finding(s))")

    if cases == 0:
        print(f"FAIL: no fixtures found under {fixture_root}")
        return 1
    print(f"{cases - failures}/{cases} fixtures passed")
    return 1 if failures else 0


# --------------------------------------------------------------------------


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: repo)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repo root (default: two levels up from this "
                             "script)")
    parser.add_argument("--fixtures", type=Path,
                        help="run fixture expectations under this directory")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON on stdout (for CI "
                             "annotation)")
    parser.add_argument("--dump-graph", action="store_true",
                        help="regenerate tools/lint/include_graph.json "
                             "from the current src/ include graph")
    parser.add_argument("--layering-only", action="store_true",
                        help="run only the include-graph layering checks")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            kind = "pattern" if r.patterns else "structural"
            print(f"{r.rule_id:20} [{kind:10}] {r.message}")
        return 0

    if args.fixtures:
        return run_fixtures(args.fixtures.resolve())

    root = args.root.resolve()

    if args.dump_graph:
        src_root = root / "src"
        includes, known = layering.scan_includes(src_root)
        summary = layering.build_summary(includes, known)
        dump = root / layering.GRAPH_DUMP
        dump.write_text(layering.render_summary(summary), encoding="utf-8")
        print(f"wrote {dump.relative_to(root).as_posix()} "
              f"({summary['file_count']} files, "
              f"{summary['file_edge_count']} edges)")
        return 0

    if args.layering_only:
        findings, _ = layering.check_tree(root)
    else:
        findings = lint_tree(root, args.paths)

    findings.sort(key=lambda f: (f.rel, f.line, f.rule_id))
    if args.json:
        print(json.dumps([f.as_json() for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
    if findings:
        print(f"maxmin-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if not args.json:
        print("maxmin-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
