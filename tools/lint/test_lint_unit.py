"""Unit tests for the lint package internals (ctest entry: lint_unit).

The fixture suite (tests/lint_fixtures) proves each rule end-to-end
through the driver; these tests pin the internal contracts the fixtures
cannot see — scanner state transitions, the pure graph checker on
synthetic include maps, and the static classifier on tricky
declarations.
"""

from __future__ import annotations

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import cpptok
import determinism
import layering
import shared_state


class ScannerTest(unittest.TestCase):
    def test_raw_string_contents_blanked_and_resynced(self):
        text = 'auto s = R"(has " quote and std::mt19937)"; std::mt19937 g;\n'
        stripped = cpptok.scan(text).stripped
        # Exactly one live mention survives: the real declaration.
        self.assertEqual(stripped.count("mt19937"), 1)
        self.assertIn("; std::mt19937 g;", stripped)

    def test_raw_string_custom_delimiter(self):
        text = 'auto s = R"xy(text )" still raw )xy"; int after = 1;\n'
        stripped = cpptok.scan(text).stripped
        self.assertNotIn("still raw", stripped)
        self.assertIn("int after = 1;", stripped)

    def test_identifier_ending_in_r_is_not_a_raw_prefix(self):
        text = 'auto s = UPPER"just a string"; std::mt19937 g;\n'
        stripped = cpptok.scan(text).stripped
        self.assertIn("mt19937", stripped)
        self.assertNotIn("just a string", stripped)

    def test_line_spliced_comment_continues(self):
        text = "// spliced \\\nstd::mt19937 hidden;\nint real;\n"
        stripped = cpptok.scan(text).stripped
        self.assertNotIn("mt19937", stripped)
        self.assertIn("int real;", stripped)
        # Line structure intact: finding lines stay 1:1 with the raw file.
        self.assertEqual(stripped.count("\n"), text.count("\n"))

    def test_spliced_string_stays_string(self):
        text = 'const char* s = "abc \\\nstd::mt19937 still";\nint x;\n'
        stripped = cpptok.scan(text).stripped
        self.assertNotIn("mt19937", stripped)
        self.assertIn("int x;", stripped)

    def test_include_header_names_survive(self):
        text = '#include "util/log.hpp"\n#include <chrono>\n'
        result = cpptok.scan(text)
        headers = [t.text for t in result.tokens if t.kind == "header"]
        self.assertEqual(headers, ['"util/log.hpp"', "<chrono>"])
        self.assertIn('"util/log.hpp"', result.stripped)

    def test_control_bytes_classify_binary(self):
        result = cpptok.scan("ok\nbad\x00line\nok\n")
        self.assertTrue(result.is_binary)
        self.assertEqual(result.control_lines, [2])

    def test_digit_separator_is_not_a_char_literal(self):
        stripped = cpptok.scan("int n = 1'000'000; int m = 2;\n").stripped
        self.assertIn("int m = 2;", stripped)


class LayeringTest(unittest.TestCase):
    def _check(self, includes):
        known = set(includes)
        return layering.check_graph({k: v for k, v in includes.items()},
                                    known)

    def test_synthetic_include_cycle_detected(self):
        includes = {
            "topology/a.hpp": [(1, "topology/b.hpp")],
            "topology/b.hpp": [(1, "topology/c.hpp")],
            "topology/c.hpp": [(1, "topology/a.hpp")],
        }
        findings = self._check(includes)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule_id, "layering")
        self.assertIn("include cycle", findings[0].message)
        self.assertIn("topology/a.hpp -> topology/b.hpp -> topology/c.hpp "
                      "-> topology/a.hpp", findings[0].message)

    def test_upward_include_detected(self):
        includes = {
            "util/low.hpp": [(3, "gmp/high.hpp")],
            "gmp/high.hpp": [],
        }
        findings = self._check(includes)
        self.assertEqual(len(findings), 1)
        self.assertIn("upward include", findings[0].message)
        self.assertEqual(findings[0].rel, "src/util/low.hpp")
        self.assertEqual(findings[0].line, 3)

    def test_downward_and_top_peer_edges_clean(self):
        includes = {
            "util/base.hpp": [],
            "net/mid.hpp": [(1, "util/base.hpp")],
            "exp/driver.cpp": [(1, "analysis/report.hpp")],
            "analysis/report.hpp": [(1, "net/mid.hpp")],
        }
        self.assertEqual(self._check(includes), [])

    def test_unknown_module_and_unresolved_include(self):
        includes = {
            "mystery/new.hpp": [],
            "util/ok.hpp": [(2, "util/gone.hpp")],
        }
        findings = self._check(includes)
        details = sorted(f.message for f in findings)
        self.assertEqual(len(findings), 2)
        self.assertTrue(any("no rank" in m for m in details))
        self.assertTrue(any("unresolved include" in m for m in details))

    def test_repo_graph_summary_is_deterministic(self):
        includes = {
            "util/a.hpp": [(1, "util/b.hpp")],
            "util/b.hpp": [],
        }
        s1 = layering.render_summary(
            layering.build_summary(includes, set(includes)))
        s2 = layering.render_summary(
            layering.build_summary(dict(reversed(list(includes.items()))),
                                   set(includes)))
        self.assertEqual(s1, s2)


class SharedStateTest(unittest.TestCase):
    def _statics(self, code):
        tokens = cpptok.scan(code).tokens
        return [d.name for d in shared_state.find_statics("src/x.cpp",
                                                          tokens)]

    def test_mutable_statics_found(self):
        code = """
        static LogLevel level = LogLevel::kOff;
        static std::atomic<bool> flag{false};
        void f() { static Registry instance; }
        static std::ostream* sink = nullptr;
        """
        self.assertEqual(self._statics(code),
                         ["level", "flag", "instance", "sink"])

    def test_functions_and_immutables_skipped(self):
        code = """
        static std::vector<int> intersect(const std::vector<int>& a);
        static constexpr int kBits = 7;
        static const char* const kName = "x";
        static bool earlier(const Key& a, const Key& b) { return a < b; }
        static_assert(sizeof(int) == 4);
        auto x = static_cast<double>(3);
        """
        self.assertEqual(self._statics(code), [])

    def test_template_member_not_confused_by_angles(self):
        code = "static std::unordered_map<int, std::vector<int>> cache;"
        self.assertEqual(self._statics(code), ["cache"])

    def test_thread_local_counts_as_shared(self):
        code = "thread_local std::int64_t scratch = 0;"
        self.assertEqual(self._statics(code), ["scratch"])


class DeterminismTest(unittest.TestCase):
    def _findings(self, code, rel="src/net/x.cpp"):
        sc = cpptok.scan(code)
        out = []
        determinism.check_file(rel, sc.tokens, [], out,
                               lambda line, rule: False)
        return out

    def test_stream_write_in_unordered_loop_fires(self):
        code = """
        std::unordered_map<int, double> m_;
        void dump(std::ostream& os) {
          for (const auto& [k, v] : m_) os << k;
        }
        """
        self.assertEqual(len(self._findings(code)), 1)

    def test_collect_then_sort_is_silent(self):
        code = """
        std::unordered_map<int, double> m_;
        std::vector<int> keys() {
          std::vector<int> out;
          for (const auto& [k, v] : m_) out.push_back(k);
          std::sort(out.begin(), out.end());
          return out;
        }
        """
        self.assertEqual(self._findings(code), [])

    def test_push_back_without_sort_fires(self):
        code = """
        std::unordered_set<int> s_;
        void fill(std::vector<int>& out) {
          for (int v : s_) out.push_back(v);
        }
        """
        self.assertEqual(len(self._findings(code)), 1)

    def test_accessor_return_iteration_fires(self):
        code = """
        struct T {
          const std::unordered_map<int, int>& linkStats() { return m_; }
          std::unordered_map<int, int> m_;
        };
        void dump(T& t, std::ostream& os) {
          for (const auto& [k, v] : t.linkStats()) os << k;
        }
        """
        self.assertEqual(len(self._findings(code)), 1)

    def test_integer_counter_accumulation_is_silent(self):
        code = """
        std::unordered_map<int, long> m_;
        long total_ = 0;
        void tally() {
          for (const auto& [k, v] : m_) total_ += v;
        }
        """
        self.assertEqual(self._findings(code), [])


if __name__ == "__main__":
    unittest.main()
