"""cpptok — the shared lightweight C++ scanner behind every lint rule.

One scanner, three products, so every rule sees the same view of a file:

  * ``stripped``  — the source text with comments and string/char/raw-string
    *contents* blanked to spaces, preserving line structure exactly (finding
    line numbers stay 1:1 with the raw file). Quote characters are kept so
    the token pass can still see that a literal sat there. The header-name
    of an ``#include "..."`` directive is kept verbatim — it is a
    preprocessing token, not a string, and the layering checker reads it.
  * ``tokens``    — a flat token stream (identifiers, numbers, literals,
    punctuators) with line numbers, for the structural rules that need to
    reason about declarations and loop bodies instead of line regexes.
  * ``control_lines`` — raw lines carrying C0 control bytes (beyond
    tab/newline/CR) or DEL. One such byte makes grep classify the whole
    file as binary and silently drop it from text tooling, so the scanner
    classifies the file *before* any rule runs and the driver refuses it
    loudly instead of linting garbage.

Correctness notes the old regex stripper got wrong (regression-pinned in
``tests/lint_fixtures`` and ``test_lint_unit.py``):

  * Raw string literals: ``R"delim( ... )delim"`` contents are blanked up
    to the matching ``)delim"`` — an embedded ``"`` no longer desyncs the
    scanner into treating literal contents as code.
  * Line-spliced comments: a ``//`` comment ending in a backslash
    continues onto the next physical line (phase-2 splicing happens before
    comment recognition in real translation), so code-looking text on the
    continuation line is still comment.
  * Splices inside ordinary string literals likewise keep the string
    state across the newline.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple


class Token(NamedTuple):
    kind: str  # id | num | str | chr | punct | header
    text: str
    line: int


class ScanResult(NamedTuple):
    stripped: str            # comment/literal-blanked text, same line structure
    tokens: List[Token]
    control_lines: List[int]  # 1-based raw lines holding control bytes

    @property
    def is_binary(self) -> bool:
        return bool(self.control_lines)

    def stripped_lines(self) -> List[str]:
        return self.stripped.splitlines()


# C0 control bytes minus tab/newline/CR, plus DEL: the set that flips
# grep's binary heuristic. Checked against the raw text — a control byte
# inside a comment hides the file from text tooling just the same.
_CONTROL = re.compile(r"[\x00-\x08\x0b\x0c\x0e-\x1f\x7f]")

# The *entire* preceding identifier must be a raw-string prefix: UPPER"x"
# is macro/string concatenation, not a raw literal, despite ending in R.
_RAW_PREFIX = re.compile(r'^(?:u8|[uUL])?R$')

# Longest-match-first punctuators, then any single char as fallback.
_TOKEN = re.compile(
    r"""
      (?P<id>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<num>\.?\d(?:[0-9a-zA-Z_.]|[eEpP][+-])*)
    | (?P<str>"[^"\n]*")
    | (?P<chr>'[^'\n]*')
    | (?P<punct><<=|>>=|\.\.\.|->\*|\#\#|<<|>>|<=|>=|==|!=|&&|\|\||\+\+|--|
       \+=|-=|\*=|/=|%=|&=|\|=|\^=|::|->|[^\sA-Za-z0-9_])
    """,
    re.VERBOSE,
)


def control_byte_lines(text: str) -> List[int]:
    """1-based line numbers whose raw text contains binary-classifying bytes."""
    return [
        lineno
        for lineno, line in enumerate(text.splitlines(), 1)
        if _CONTROL.search(line)
    ]


def strip(text: str) -> str:
    """Blank comments and literal contents, preserving line structure.

    State machine over the raw characters. Backslash-newline splices are
    honoured inside line comments and string/char literals (the cases that
    change classification); inside code the backslash is blanked and the
    newline kept, so line numbers never shift.
    """
    out: List[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_terminator = ""  # for state == raw: the )delim" that ends the literal
    # Preprocessor context: at the start of a logical line, '#' begins a
    # directive; after '# include' the next "..." is a header-name and is
    # kept verbatim for the include-graph rules.
    logical_line_start = True
    pp_directive: List[str] = []  # identifier chars of the directive name
    in_pp_include = False

    def emit(ch: str) -> None:
        out.append(ch)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "\\" and nxt == "\n":
                # Splice in code: blank the backslash, keep the newline.
                emit(" ")
                emit("\n")
                i += 2
                # The logical line continues: do not reset pp context.
                continue
            if c == "/" and nxt == "/":
                state = "line_comment"
                emit("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                emit("  ")
                i += 2
                continue
            if c == '"':
                # Raw string? Look back at the immediately preceding
                # identifier characters for an R prefix (R, uR, u8R, LR, UR).
                j = len(out) - 1
                prefix = []
                while j >= 0 and (out[j].isalnum() or out[j] == "_"):
                    prefix.append(out[j])
                    j -= 1
                joined = "".join(reversed(prefix))
                if _RAW_PREFIX.fullmatch(joined):
                    # R"delim( ... )delim"  — find the delimiter.
                    k = i + 1
                    delim = []
                    while k < n and text[k] != "(" and text[k] not in ')\\ \n"':
                        delim.append(text[k])
                        k += 1
                    if k < n and text[k] == "(":
                        state = "raw"
                        raw_terminator = ")" + "".join(delim) + '"'
                        emit('"')  # stand-in opening quote
                        # blank the delimiter and opening paren
                        emit(" " * (k - i))
                        i = k + 1
                        continue
                if in_pp_include:
                    # Header-name: keep verbatim up to the closing quote.
                    emit('"')
                    i += 1
                    while i < n and text[i] not in '"\n':
                        emit(text[i])
                        i += 1
                    if i < n and text[i] == '"':
                        emit('"')
                        i += 1
                    continue
                state = "string"
                emit('"')
                i += 1
                continue
            if c == "'":
                # Digit separators (1'000'000) are part of pp-numbers, not
                # char literals: treat ' as a separator when sandwiched by
                # alphanumerics right after a digit-ish token.
                prev = out[-1] if out else ""
                if prev.isdigit() and nxt.isalnum():
                    emit("'")
                    i += 1
                    continue
                state = "char"
                emit("'")
                i += 1
                continue
            if c == "\n":
                emit("\n")
                logical_line_start = True
                pp_directive = []
                in_pp_include = False
                i += 1
                continue
            if c == "#" and logical_line_start:
                pp_directive = ["#"]
                emit("#")
                i += 1
                continue
            if pp_directive is not None and pp_directive:
                # Collect the directive name; spaces allowed after '#'.
                if c.isspace():
                    if len(pp_directive) > 1:
                        name = "".join(pp_directive[1:])
                        in_pp_include = name == "include"
                        pp_directive = []
                    emit(c)
                    i += 1
                    continue
                if c.isalpha():
                    pp_directive.append(c)
                    emit(c)
                    i += 1
                    if i < n and not text[i].isalpha():
                        name = "".join(pp_directive[1:])
                        in_pp_include = name == "include"
                        pp_directive = []
                    continue
                pp_directive = []
            if not c.isspace():
                logical_line_start = False
            emit(c)
            i += 1
            continue
        if state == "line_comment":
            if c == "\\" and nxt == "\n":
                # Spliced comment: the next physical line is still comment.
                emit(" ")
                emit("\n")
                i += 2
                continue
            if c == "\n":
                state = "code"
                emit("\n")
                logical_line_start = True
                pp_directive = []
                in_pp_include = False
            else:
                emit(" ")
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                emit("  ")
                i += 2
                continue
            emit("\n" if c == "\n" else " ")
            i += 1
            continue
        if state == "raw":
            if c == raw_terminator[0] and text.startswith(raw_terminator, i):
                emit('"')
                emit(" " * (len(raw_terminator) - 1))
                i += len(raw_terminator)
                state = "code"
                continue
            emit("\n" if c == "\n" else " ")
            i += 1
            continue
        # state in (string, char)
        quote = '"' if state == "string" else "'"
        if c == "\\" and nxt == "\n":
            emit(" ")
            emit("\n")
            i += 2
            continue
        if c == "\\":
            emit("  ")
            i += 2
            continue
        if c == quote:
            state = "code"
            emit(quote)
            i += 1
            continue
        if c == "\n":
            # Unterminated literal on this line: fail open back to code so
            # one typo does not blank the rest of the file.
            state = "code"
            emit("\n")
            logical_line_start = True
            in_pp_include = False
            i += 1
            continue
        emit(" ")
        i += 1
    return "".join(out)


_INCLUDE_LINE = re.compile(r"^\s*#\s*include\s*(?:(<[^>\n]*>)|(\"[^\"\n]*\"))")


def _tokenize(stripped: str) -> List[Token]:
    tokens: List[Token] = []
    for line, raw_line in enumerate(stripped.split("\n"), 1):
        inc = _INCLUDE_LINE.match(raw_line)
        if inc:
            # The header-name after #include is one token, not a chain of
            # '<' punctuators (or a string literal). strip() preserved the
            # quoted form's contents for exactly this.
            tokens.append(Token("punct", "#", line))
            tokens.append(Token("id", "include", line))
            tokens.append(Token("header", inc.group(1) or inc.group(2), line))
            continue
        for m in _TOKEN.finditer(raw_line):
            tokens.append(Token(m.lastgroup or "punct", m.group(), line))
    return tokens


def scan(text: str) -> ScanResult:
    """Scan a source file. If control bytes classify it binary, the token
    stream and stripped text are still produced from the raw text (escaped
    replacement is the caller's problem); the driver is expected to refuse
    the file loudly based on ``control_lines``."""
    control = control_byte_lines(text)
    stripped = strip(text)
    return ScanResult(stripped, _tokenize(stripped), control)
