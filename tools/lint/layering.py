"""layering — include-graph DAG conformance for src/.

The subsystems of src/ form a documented layering (DESIGN.md §4/§10):

    util < obs < sim < topology < phys < mac < net < gmp < fluid
         < {analysis, exp, baselines, hybrid, scenarios}

A file may include its own module and any strictly lower-ranked module;
the five top-rank modules may also include each other as long as the
*file-level* include graph stays acyclic (checked globally — a cycle
anywhere, including inside one module, is a finding). Violations:

    * upward include — a lower-ranked module reaching into a higher one
      (the dependency inversion that makes subsystems untestable alone)
    * unknown module — a new src/ directory not added to the rank table
      (forces the layering decision to be made, not defaulted)
    * unresolved include — a quoted include that matches no src/ file
      (would silently drop an edge from the graph)
    * include cycle — any cycle in the file-level graph

The checker also renders a machine-readable summary (module ranks, file
counts, collapsed module-edge counts) that is committed as
``tools/lint/include_graph.json``; the repo sweep fails when the
committed dump is stale so the artifact in the tree always matches the
code (regenerate with ``maxmin_lint.py --dump-graph``).

All include directives are read through the shared scanner (cpptok), so
commented-out includes and includes inside raw strings never add edges.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Set, Tuple

import cpptok
from rules import Finding, message_of

# Rank table. Equal ranks (the top set) may include each other; everyone
# may include strictly lower ranks and itself.
LAYERS: Dict[str, int] = {
    "util": 0,
    "obs": 1,
    "sim": 2,
    "topology": 3,
    "phys": 4,
    "mac": 5,
    "net": 6,
    "gmp": 7,
    "fluid": 8,
    "analysis": 9,
    "exp": 9,
    "baselines": 9,
    "hybrid": 9,
    "scenarios": 9,
}
TOP_RANK = max(LAYERS.values())

SOURCE_SUFFIXES = (".hpp", ".h", ".cpp", ".cc")

# rel (relative to src/) -> list of (line, include-target rel)
IncludeMap = Dict[str, List[Tuple[int, str]]]


def scan_includes(src_root: Path) -> Tuple[IncludeMap, Set[str]]:
    """Parse every quoted #include under src_root via the shared scanner."""
    includes: IncludeMap = {}
    known: Set[str] = set()
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
            continue
        rel = path.relative_to(src_root).as_posix()
        known.add(rel)
        edges: List[Tuple[int, str]] = []
        text = path.read_text(encoding="utf-8", errors="replace")
        for tok in cpptok.scan(text).tokens:
            if tok.kind == "header" and tok.text.startswith('"'):
                edges.append((tok.line, tok.text.strip('"')))
        includes[rel] = edges
    return includes, known


def module_of(rel: str) -> str:
    return rel.split("/", 1)[0] if "/" in rel else ""


def check_graph(includes: IncludeMap, known: Set[str],
                prefix: str = "src/") -> List[Finding]:
    """Pure graph check, separated from the filesystem for unit testing."""
    findings: List[Finding] = []
    base = message_of("layering")

    def finding(rel, line, detail):
        findings.append(Finding(prefix + rel, line, "layering",
                                f"{base} — {detail}"))

    for rel in sorted(includes):
        mod = module_of(rel)
        if mod not in LAYERS:
            finding(rel, 1, f"module '{mod or '<src root>'}' has no rank in "
                    "the layer table (tools/lint/layering.py); place the "
                    "file or extend the documented DAG")
            continue
        for line, target in includes[rel]:
            if target not in known:
                finding(rel, line, f'unresolved include "{target}" — not a '
                        "src/ file, so its edge would silently vanish from "
                        "the layering graph")
                continue
            tmod = module_of(target)
            if tmod == mod or tmod not in LAYERS:
                continue  # intra-module always fine; unknown reported above
            r_from, r_to = LAYERS[mod], LAYERS[tmod]
            if r_to < r_from:
                continue
            if r_to == r_from == TOP_RANK:
                continue  # top-set peers; acyclicity enforced below
            finding(rel, line, f"upward include: {mod} (rank {r_from}) must "
                    f'not include "{target}" ({tmod}, rank {r_to})')

    findings.extend(_find_cycles(includes, known, prefix, base))
    return findings


def _find_cycles(includes: IncludeMap, known: Set[str], prefix: str,
                 base: str) -> List[Finding]:
    """Iterative DFS; reports each distinct file-level cycle once."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {rel: WHITE for rel in includes}
    findings: List[Finding] = []
    for root in sorted(includes):
        if color[root] != WHITE:
            continue
        # stack of (node, iterator over resolved include targets)
        path: List[str] = []
        stack = [(root, iter([t for _, t in includes.get(root, [])
                              if t in known]))]
        color[root] = GREY
        path.append(root)
        while stack:
            node, it = stack[-1]
            advanced = False
            for target in it:
                if color.get(target, BLACK) == GREY:
                    cycle = path[path.index(target):] + [target]
                    line = next((ln for ln, t in includes[node]
                                 if t == target), 1)
                    findings.append(Finding(
                        prefix + node, line, "layering",
                        f"{base} — include cycle: {' -> '.join(cycle)}"))
                elif color.get(target, BLACK) == WHITE:
                    color[target] = GREY
                    path.append(target)
                    stack.append((target,
                                  iter([t for _, t in includes.get(target, [])
                                        if t in known])))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return findings


def build_summary(includes: IncludeMap, known: Set[str]) -> dict:
    """Deterministic, machine-readable dump of the module-level graph."""
    mod_files: Dict[str, int] = {}
    mod_edges: Dict[str, Dict[str, int]] = {}
    for rel in includes:
        mod = module_of(rel)
        mod_files[mod] = mod_files.get(mod, 0) + 1
        for _, target in includes[rel]:
            if target not in known:
                continue
            tmod = module_of(target)
            mod_edges.setdefault(mod, {})
            mod_edges[mod][tmod] = mod_edges[mod].get(tmod, 0) + 1
    file_edge_count = sum(
        1 for rel in includes for _, t in includes[rel] if t in known)
    return {
        "schema": 1,
        "generated_by": "tools/lint/maxmin_lint.py --dump-graph",
        "layers": dict(sorted(LAYERS.items(), key=lambda kv: (kv[1], kv[0]))),
        "modules": {
            mod: {
                "rank": LAYERS.get(mod, -1),
                "files": mod_files[mod],
                "includes": dict(sorted(mod_edges.get(mod, {}).items())),
            }
            for mod in sorted(mod_files)
        },
        "file_count": len(includes),
        "file_edge_count": file_edge_count,
    }


def render_summary(summary: dict) -> str:
    return json.dumps(summary, indent=2, sort_keys=False) + "\n"


GRAPH_DUMP = "tools/lint/include_graph.json"


def check_tree(root: Path) -> Tuple[List[Finding], dict]:
    """Scan <root>/src, return (findings, summary). Adds a staleness
    finding when the committed graph dump no longer matches the code."""
    src_root = root / "src"
    if not src_root.is_dir():
        return [], {}
    includes, known = scan_includes(src_root)
    findings = check_graph(includes, known)
    summary = build_summary(includes, known)
    dump = root / GRAPH_DUMP
    if dump.exists():
        if dump.read_text(encoding="utf-8") != render_summary(summary):
            findings.append(Finding(
                GRAPH_DUMP, 1, "layering",
                "committed include-graph dump is stale; regenerate with "
                "`python3 tools/lint/maxmin_lint.py --dump-graph`"))
    return findings, summary
