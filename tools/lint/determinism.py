"""determinism — unordered-container iteration feeding ordered output.

The bug class: ``std::unordered_map`` iteration order is an artifact of
hashing and insertion history, not of the data. A loop over one that
writes a trace record, a CSV row, a stream, or a floating-point
accumulator bakes that artifact into results that must be a pure
function of the seed — today it silently pins results to one standard
library; under sharded PDES it becomes a replay divergence the moment
insertion interleaving changes. The PR 3 zero-findings sweep fixed this
class by hand at every report site; this rule keeps it fixed.

Token-level analysis, per file (plus its paired header, so loops in a
.cpp over members declared in the .hpp resolve):

  1. collect identifiers declared with an unordered container type, and
     accessor functions returning references to one;
  2. find range-for / ``.begin()`` iterator loops whose sequence is such
     an identifier (directly, as a member chain tail, or via accessor);
  3. flag the loop if its body contains an order-sensitive write:
       * stream insertion (``x << ...`` where x looks stream-ish, or
         ``<< "literal"`` chains),
       * an output call (printf family, ``write*``/``print*``/``emit*``/
         ``trace*``, MAXMIN_TRACE*),
       * a compound assignment onto a float/double-typed accumulator
         (float addition does not commute — summation order is visible
         in the last ulp and grows under parallel reduction),
       * ``push_back``/``emplace_back`` into a sequence that is *not*
         passed to ``sort`` afterwards (collect-then-sort is the
         sanctioned "sorted snapshot" idiom and stays silent).

Order-independent writes stay silent by construction: inserting into a
``std::map`` keyed by the loop key, bumping integer counters, or
erasing from the container itself do not match any predicate — so the
rule's findings are actionable, not pragma-fodder.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Set, Tuple

from cpptok import Token
from rules import Finding, message_of

UNORDERED_TYPES = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}
FLOAT_TYPES = {"double", "float"}

_STREAMISH = re.compile(
    r"(os|out|stream|sink|cout|cerr|clog|csv|file|log)$", re.IGNORECASE)
_OUTPUT_CALL = re.compile(r"^(write|print|emit|trace|fprintf|printf|fputs|"
                          r"fwrite|MAXMIN_TRACE)\w*$")
_COMPOUND_ASSIGN = {"+=", "-=", "*=", "/="}
_PUSH = {"push_back", "emplace_back"}

# How far past a loop body to look for the sort() that blesses a
# collect-then-sort snapshot. Generous: report functions sort immediately.
_SORT_WINDOW = 600


class Symbols(NamedTuple):
    unordered_vars: Set[str]
    unordered_accessors: Set[str]
    float_vars: Set[str]


def _skip_angles(tokens: List[Token], i: int) -> int:
    """tokens[i] is '<'; return index just past the matching close."""
    depth = 0
    prev: Optional[str] = None
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.text == "<" and (prev in ("id", ">") or depth == 0):
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth <= 0:
                    return i + 1
                prev = ">"
                i += 1
                continue
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
                prev = ">"
                i += 1
                continue
            prev = t.text
        else:
            prev = "id" if t.kind == "id" else t.kind
        i += 1
    return i


def collect_symbols(token_streams: List[List[Token]]) -> Symbols:
    unordered_vars: Set[str] = set()
    accessors: Set[str] = set()
    float_vars: Set[str] = set()
    for tokens in token_streams:
        n = len(tokens)
        for i, tok in enumerate(tokens):
            if tok.kind != "id":
                continue
            if tok.text in UNORDERED_TYPES:
                j = i + 1
                if j < n and tokens[j].text == "<":
                    j = _skip_angles(tokens, j)
                while j < n and tokens[j].kind == "punct" and \
                        tokens[j].text in ("&", "*"):
                    j += 1
                if j < n and tokens[j].kind == "id":
                    name, term = tokens[j].text, \
                        tokens[j + 1].text if j + 1 < n else ";"
                    if term == "(":
                        accessors.add(name)
                    elif term in (";", "=", "{", ",", ")"):
                        unordered_vars.add(name)
            elif tok.text in FLOAT_TYPES:
                j = i + 1
                while j < n and tokens[j].kind == "punct" and \
                        tokens[j].text in ("&", "*"):
                    j += 1
                if j < n and tokens[j].kind == "id" and j + 1 < n and \
                        tokens[j + 1].text in (";", "=", "{", ",", ")"):
                    float_vars.add(tokens[j].text)
    return Symbols(unordered_vars, accessors, float_vars)


def _match_paren(tokens: List[Token], i: int, open_: str, close: str) -> int:
    """tokens[i] is `open_`; return index of matching `close` (or len)."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if tokens[i].kind == "punct":
            if t == open_:
                depth += 1
            elif t == close:
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n


def _sequence_target(header: List[Token], syms: Symbols) -> Optional[str]:
    """The container a range-for iterates, if it is known-unordered.

    `header` is the token slice between ':' and the closing ')'."""
    ids = [t for t in header if t.kind == "id"]
    if not ids:
        return None
    last = ids[-1].text
    # trailing call: obj.accessor()
    if header and header[-1].text == ")" and last in syms.unordered_accessors:
        return last + "()"
    if last in syms.unordered_vars:
        return last
    return None


def _iterator_target(header: List[Token], syms: Symbols) -> Optional[str]:
    """`X.begin()` / `X->begin()` inside a classic for header."""
    for k in range(len(header) - 2):
        if header[k].kind == "id" and \
                header[k + 1].text in (".", "->") and \
                header[k + 2].kind == "id" and \
                header[k + 2].text in ("begin", "cbegin"):
            if header[k].text in syms.unordered_vars:
                return header[k].text
    return None


def _body_span(tokens: List[Token], after: int) -> Tuple[int, int]:
    """Token span [start, end) of the loop body starting at `after`."""
    n = len(tokens)
    if after < n and tokens[after].text == "{":
        return after, _match_paren(tokens, after, "{", "}") + 1
    # single statement: to the ';' at zero brace/paren depth
    i = after
    depth = 0
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.text in ("{", "("):
                depth += 1
            elif t.text in ("}", ")"):
                depth -= 1
            elif t.text == ";" and depth == 0:
                return after, i + 1
        i += 1
    return after, n


def _order_sensitive_write(tokens: List[Token], start: int, end: int,
                           syms: Symbols) -> Optional[Tuple[str, int]]:
    """(reason, line) of the first order-sensitive write in the body."""
    for k in range(start, end):
        t = tokens[k]
        if t.kind == "punct" and t.text == "<<":
            prev = tokens[k - 1] if k > start else None
            nxt = tokens[k + 1] if k + 1 < end else None
            if prev is not None and prev.kind == "id" and \
                    _STREAMISH.search(prev.text):
                return f"stream write '{prev.text} <<'", t.line
            if nxt is not None and nxt.kind in ("str", "chr"):
                return "stream write of a literal", t.line
        elif t.kind == "punct" and t.text in _COMPOUND_ASSIGN:
            prev = tokens[k - 1] if k > start else None
            if prev is not None and prev.kind == "id" and \
                    prev.text in syms.float_vars:
                return (f"float accumulation '{prev.text} {t.text}'",
                        t.line)
        elif t.kind == "id" and _OUTPUT_CALL.match(t.text) and \
                k + 1 < end and tokens[k + 1].text == "(":
            return f"output call '{t.text}(...)'", t.line
        elif t.kind == "id" and t.text in _PUSH and k >= 2 and \
                tokens[k - 1].text in (".", "->") and \
                tokens[k - 2].kind == "id":
            target = tokens[k - 2].text
            if not _sorted_later(tokens, end, target):
                return (f"'{target}.{t.text}(...)' without a sort of "
                        f"'{target}' afterwards", t.line)
    return None


def _sorted_later(tokens: List[Token], from_idx: int, var: str) -> bool:
    """True if `var` is passed to a sort(...) call shortly after the loop
    (the collect-then-sort snapshot idiom)."""
    n = min(len(tokens), from_idx + _SORT_WINDOW)
    k = from_idx
    while k < n:
        if tokens[k].kind == "id" and tokens[k].text in \
                ("sort", "stable_sort") and k + 1 < n and \
                tokens[k + 1].text == "(":
            close = _match_paren(tokens, k + 1, "(", ")")
            if any(t.kind == "id" and t.text == var
                   for t in tokens[k + 1:min(close + 1, len(tokens))]):
                return True
            k = close
        k += 1
    return False


def check_file(rel: str, tokens: List[Token], paired: List[List[Token]],
               findings: List[Finding], allowed) -> None:
    syms = collect_symbols([tokens] + paired)
    if not syms.unordered_vars and not syms.unordered_accessors:
        return
    base = message_of("unordered-iter")
    n = len(tokens)
    i = 0
    while i < n:
        t = tokens[i]
        if not (t.kind == "id" and t.text == "for" and i + 1 < n and
                tokens[i + 1].text == "("):
            i += 1
            continue
        close = _match_paren(tokens, i + 1, "(", ")")
        header = tokens[i + 2:close]
        colon = next((k for k, h in enumerate(header)
                      if h.kind == "punct" and h.text == ":"), None)
        target = None
        if colon is not None:
            target = _sequence_target(header[colon + 1:], syms)
        else:
            target = _iterator_target(header, syms)
        if target is None:
            i = close + 1
            continue
        start, end = _body_span(tokens, close + 1)
        hit = _order_sensitive_write(tokens, start, end, syms)
        if hit is not None and not allowed(t.line, "unordered-iter"):
            reason, line = hit
            findings.append(Finding(
                rel, t.line, "unordered-iter",
                f"{base} — loop over unordered '{target}' (line {t.line}) "
                f"contains {reason} (line {line})"))
        i = close + 1
    return
