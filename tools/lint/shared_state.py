"""shared_state — mutable-static inventory against an audited manifest.

The sharded-PDES roadmap item puts region workers inside one simulation;
at that point every namespace-scope or function-local mutable ``static``
(and every singleton behind one) is a candidate data race, and every one
that feeds results is a determinism hazard. This rule makes the set of
such objects *finite and deliberate*: the token scanner enumerates every
mutable static in ``src/``, and each must appear in the checked-in
manifest ``tools/lint/shared_state.toml`` with an owner note and a
concurrency plan. A new static fails ``repo_lint`` until someone writes
it down; a deleted static fails until the manifest entry is removed, so
the manifest can never rot into fiction.

What counts as mutable static state (token-level classification):

    static LogLevel level = LogLevel::kOff;      -> variable "level"
    static std::atomic<bool> flag{false};        -> variable "flag"
    static Registry instance;                    -> variable "instance"
    static std::vector<int> intersect(...)       -> function, skipped
    static constexpr int kBits = 7;              -> immutable, skipped
    static const char* const kName = "x";        -> immutable, skipped
    static_assert(...) / static_cast<...>        -> distinct tokens, skipped

``static const T*`` (mutable pointer to const) is treated as immutable by
this classifier; the repo spells genuinely-mutable pointers without const
and the conservative direction here is noise-free. ``thread_local`` is
classified the same as ``static`` — per-thread copies still break the
"outcome independent of worker count" bar when workers are sharded by
region rather than by run.
"""

from __future__ import annotations

import tomllib
from pathlib import Path
from typing import Dict, List, NamedTuple, Set, Tuple

from cpptok import Token
from rules import Finding, message_of

MANIFEST_REL = "tools/lint/shared_state.toml"


class StaticDecl(NamedTuple):
    rel: str
    name: str
    line: int


# --------------------------------------------------------------------------
# Detection
# --------------------------------------------------------------------------

_IMMUTABLE_QUALIFIERS = {"constexpr", "constinit", "consteval", "const"}
_STORAGE_KEYWORDS = {"static", "thread_local"}


def find_statics(rel: str, tokens: List[Token]) -> List[StaticDecl]:
    """Enumerate mutable static/thread_local *variables* in a token stream."""
    decls: List[StaticDecl] = []
    i, n = 0, len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.kind != "id" or tok.text not in _STORAGE_KEYWORDS:
            i += 1
            continue
        # `static thread_local` / `thread_local static`: swallow the pair.
        j = i + 1
        while j < n and tokens[j].kind == "id" and \
                tokens[j].text in _STORAGE_KEYWORDS:
            j += 1
        # Scan the declaration: classify at the first ; = { ( at zero
        # bracket depth. '(' => function declaration/definition, skip.
        # Track <> depth so template arguments don't terminate the scan;
        # '<' only opens a template after an identifier or '>'.
        angle = 0
        immutable = False
        last_id = None
        prev_kind = None
        k = j
        while k < n:
            t = tokens[k]
            if t.kind == "id":
                if t.text in _IMMUTABLE_QUALIFIERS and angle == 0:
                    immutable = True
                last_id = t if angle == 0 else last_id
                prev_kind = "id"
                k += 1
                continue
            if t.kind == "punct":
                if t.text == "<" and prev_kind in ("id", ">"):
                    angle += 1
                elif t.text == ">" and angle > 0:
                    angle -= 1
                    prev_kind = ">"
                    k += 1
                    continue
                elif t.text == ">>" and angle > 0:
                    # map<int, vector<int>> lexes the double close as one
                    # shift token.
                    angle = max(0, angle - 2)
                    prev_kind = ">"
                    k += 1
                    continue
                elif t.text == "<<" and angle == 0:
                    pass  # stream op can't appear in a declarator prefix
                elif angle == 0 and t.text in (";", "=", "{", "("):
                    break
            prev_kind = t.kind if t.kind != "punct" else t.text
            k += 1
        if k < n and tokens[k].text != "(" and not immutable \
                and last_id is not None:
            decls.append(StaticDecl(rel, last_id.text, tokens[i].line))
        i = k if k > i else i + 1
    return decls


# --------------------------------------------------------------------------
# Manifest
# --------------------------------------------------------------------------

class Manifest(NamedTuple):
    entries: Set[Tuple[str, str]]  # (file, name)
    path: Path


def load_manifest(root: Path) -> Manifest:
    path = root / MANIFEST_REL
    entries: Set[Tuple[str, str]] = set()
    if path.exists():
        data = tomllib.loads(path.read_text(encoding="utf-8"))
        for entry in data.get("static", []):
            entries.add((entry["file"], entry["name"]))
    return Manifest(entries, path)


def check_file(rel: str, tokens: List[Token], manifest: Manifest,
               findings: List[Finding], allowed) -> List[StaticDecl]:
    """Per-file half: every detected static must be manifested."""
    found = find_statics(rel, tokens)
    base = message_of("shared-state")
    for decl in found:
        if (decl.rel, decl.name) in manifest.entries:
            continue
        if allowed(decl.line, "shared-state"):
            continue
        findings.append(Finding(
            decl.rel, decl.line, "shared-state",
            f"{base} — static '{decl.name}' is not in {MANIFEST_REL}; "
            "add an entry with an owner note and concurrency plan (or "
            "convert it to non-shared state)"))
    return found


def check_manifest(manifest: Manifest, seen: List[StaticDecl],
                   findings: List[Finding]) -> None:
    """Tree-wide half: every manifest entry must still exist in code."""
    live = {(d.rel, d.name) for d in seen}
    base = message_of("shared-state")
    for file, name in sorted(manifest.entries - live):
        findings.append(Finding(
            MANIFEST_REL, 1, "shared-state",
            f"{base} — stale manifest entry: no mutable static '{name}' "
            f"found in {file}; remove the entry so the inventory stays "
            "exact"))
