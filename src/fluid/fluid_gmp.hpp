// Drives the (unmodified) gmp::Engine over a FluidNetwork: the same
// period loop as gmp::Controller, with the Snapshot assembled from fluid
// steady states instead of packet-level measurements.
#pragma once

#include <vector>

#include "fluid/fluid_network.hpp"
#include "gmp/engine.hpp"

namespace maxmin::fluid {

class FluidGmpHarness {
 public:
  FluidGmpHarness(FluidNetwork& network, gmp::GmpParams params);

  /// Run one measurement+adjustment period; returns the engine's report.
  gmp::DecisionReport step();

  /// Run `periods` periods and return the final realized rates.
  std::map<net::FlowId, double> run(int periods);

  const gmp::Snapshot& lastSnapshot() const { return lastSnapshot_; }
  const std::vector<int>& violationHistory() const {
    return violationHistory_;
  }

 private:
  [[nodiscard]] gmp::Snapshot buildSnapshot(const FluidState& state) const;

  FluidNetwork& network_;
  gmp::GmpParams params_;
  gmp::Engine engine_;
  gmp::Snapshot lastSnapshot_;
  std::vector<int> violationHistory_;
};

}  // namespace maxmin::fluid
