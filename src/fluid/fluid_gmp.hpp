// Drives the (unmodified) gmp::Engine over a FluidNetwork: the same
// period loop as gmp::Controller, with the Snapshot assembled from fluid
// steady states instead of packet-level measurements.
#pragma once

#include <vector>

#include "fluid/fluid_network.hpp"
#include "gmp/engine.hpp"

namespace maxmin::fluid {

/// Outcome of runToFixedPoint: how many fluid periods ran and how far
/// the rates were still moving when it stopped.
struct FixedPointResult {
  int periods = 0;
  bool converged = false;
  /// Smoothed per-period rate movement as a fraction of clique capacity
  /// (GMP's additive probing never stops exactly, so "fixed point" means
  /// this EWMA fell below the tolerance).
  double residual = 1.0;
};

class FluidGmpHarness {
 public:
  FluidGmpHarness(FluidNetwork& network, gmp::GmpParams params);

  /// Run one measurement+adjustment period; returns the engine's report.
  gmp::DecisionReport step();

  /// Run `periods` periods and return the final realized rates.
  std::map<net::FlowId, double> run(int periods);

  /// Iterate periods until the smoothed max per-flow rate change per
  /// period drops below `tol` (relative to clique capacity) or
  /// `maxPeriods` elapse. The hybrid fast-forward path uses this to
  /// reach the steady-state basin before packet injection.
  FixedPointResult runToFixedPoint(double tol, int maxPeriods);

  const gmp::Snapshot& lastSnapshot() const { return lastSnapshot_; }
  const std::vector<int>& violationHistory() const {
    return violationHistory_;
  }

 private:
  [[nodiscard]] gmp::Snapshot buildSnapshot(const FluidState& state) const;

  FluidNetwork& network_;
  gmp::GmpParams params_;
  gmp::Engine engine_;
  gmp::Snapshot lastSnapshot_;
  std::vector<int> violationHistory_;
};

}  // namespace maxmin::fluid
