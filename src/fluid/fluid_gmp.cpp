#include "fluid/fluid_gmp.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace maxmin::fluid {

FluidGmpHarness::FluidGmpHarness(FluidNetwork& network, gmp::GmpParams params)
    : network_{network},
      params_{params},
      engine_{network.contention(), params} {}

gmp::Snapshot FluidGmpHarness::buildSnapshot(const FluidState& state) const {
  gmp::Snapshot snap;
  const auto& flows = network_.flows();
  const auto& paths = network_.paths();

  for (const net::FlowSpec& f : flows) {
    gmp::FlowState fs;
    fs.id = f.id;
    fs.src = f.src;
    fs.dst = f.dst;
    fs.weight = f.weight;
    fs.desiredPps = f.desiredRate.asPerSecond();
    fs.ratePps = state.rates.at(f.id);
    fs.limitPps = network_.rateLimit(f.id);
    snap.flows.push_back(fs);
  }

  snap.saturated = state.saturated;
  // Every virtual node on a path gets an explicit entry (unsaturated when
  // not in the backpressure chain), mirroring the controller.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (std::size_t h = 0; h + 1 < paths[i].size(); ++h) {
      snap.saturated.try_emplace({paths[i][h], flows[i].dst}, false);
    }
  }

  // Virtual links: one per (link, dest) traversed by any flow.
  std::map<gmp::VirtualLinkKey, std::vector<std::size_t>> flowsOnVlink;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (std::size_t h = 0; h + 1 < paths[i].size(); ++h) {
      flowsOnVlink[{paths[i][h], paths[i][h + 1], flows[i].dst}].push_back(i);
    }
  }
  const gmp::BetaCompare cmp{params_.beta};
  for (const auto& [key, flowIdxs] : flowsOnVlink) {
    gmp::VLinkState vl;
    vl.key = key;
    const bool senderSat = snap.saturated.at({key.from, key.dest});
    const bool receiverSat =
        snap.saturated.contains({key.to, key.dest}) &&
        snap.saturated.at({key.to, key.dest});
    vl.type = gmp::classifyLink(senderSat, receiverSat);
    double maxMu = 0.0;
    for (std::size_t i : flowIdxs) {
      vl.ratePps += state.rates.at(flows[i].id);
      maxMu = std::max(maxMu, state.rates.at(flows[i].id) / flows[i].weight);
    }
    vl.normRate = maxMu;
    for (std::size_t i : flowIdxs) {
      if (cmp.equal(state.rates.at(flows[i].id) / flows[i].weight, maxMu)) {
        vl.primaryFlows.push_back(flows[i].id);
      }
    }
    snap.vlinks.push_back(vl);
  }

  for (const topo::Link& l : network_.contention().links) {
    gmp::WLinkState wl;
    wl.link = l;
    wl.occupancy = state.occupancy.at(l);
    for (const gmp::VLinkState& vl : snap.vlinks) {
      if (vl.key.wireless() == l)
        wl.normRate = std::max(wl.normRate, vl.normRate);
    }
    snap.wlinks.push_back(wl);
  }
  return snap;
}

gmp::DecisionReport FluidGmpHarness::step() {
  lastSnapshot_ = buildSnapshot(network_.evaluate());
  const gmp::DecisionReport report = engine_.decide(lastSnapshot_);
  for (const gmp::Command& cmd : report.commands) {
    switch (cmd.kind) {
      case gmp::Command::Kind::kSetLimit:
        network_.setRateLimit(cmd.flow, cmd.limitPps);
        break;
      case gmp::Command::Kind::kRemoveLimit:
        network_.setRateLimit(cmd.flow, std::nullopt);
        break;
    }
  }
  violationHistory_.push_back(report.sourceBufferViolations +
                              report.bandwidthViolations);
  return report;
}

std::map<net::FlowId, double> FluidGmpHarness::run(int periods) {
  MAXMIN_CHECK(periods > 0);
  for (int p = 0; p < periods; ++p) step();
  return network_.evaluate().rates;
}

FixedPointResult FluidGmpHarness::runToFixedPoint(double tol, int maxPeriods) {
  MAXMIN_CHECK(tol > 0.0);
  MAXMIN_CHECK(maxPeriods > 0);
  FixedPointResult out;
  std::map<net::FlowId, double> prev;
  double smoothed = 1.0;
  for (int p = 0; p < maxPeriods; ++p) {
    step();
    ++out.periods;
    double delta = 0.0;
    for (const gmp::FlowState& f : lastSnapshot_.flows) {
      if (const auto it = prev.find(f.id); it != prev.end()) {
        delta = std::max(delta, std::abs(f.ratePps - it->second));
      }
      prev[f.id] = f.ratePps;
    }
    if (p == 0) continue;  // no previous period to diff against
    smoothed = 0.5 * smoothed + 0.5 * delta / network_.cliqueCapacity();
    out.residual = smoothed;
    if (smoothed < tol) {
      out.converged = true;
      break;
    }
  }
  return out;
}

}  // namespace maxmin::fluid
