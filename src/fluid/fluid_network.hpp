// Deterministic fluid approximation of the wireless substrate.
//
// Replaces the packet-level 802.11 pipeline with a steady-state flow
// computation per period:
//   * every flow offers min(desired, rate limit);
//   * clique airtime constraints are enforced by repeatedly scaling the
//     flows crossing the most-overloaded clique (a work-conserving,
//     demand-proportional share, close to what DCF converges to over a
//     4 s period);
//   * buffer-based backpressure is emulated structurally: a constrained
//     flow saturates every queue from its source up to (and including)
//     the sender of its bottleneck link, exactly the saturated-buffer
//     chain of paper §3.
//
// The point is speed and determinism: the same gmp::Engine that drives
// the packet simulator can be exercised over hundreds of random
// topologies in milliseconds, and its fixed point compared against the
// centralized maxmin reference. The hybrid engine (DESIGN.md §16) leans
// on two extensions: per-link *external occupancy* terms fold
// packet-measured foreground airtime into the clique constraints, and
// `extraLinks` lets the contention structure span links the fluid flows
// never cross (the foreground's links), so a mixed clique constrains the
// background correctly.
//
// The solver core is allocation-free after the first evaluate(): clique
// and flow incidence is stored in CSR form and the iteration workspace is
// reused across calls, so an N=5k fixed point costs no per-iteration heap
// traffic (see bench/bench_fluid.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "gmp/engine.hpp"
#include "net/flow.hpp"
#include "topology/routing.hpp"
#include "topology/topology.hpp"

namespace maxmin::fluid {

struct FluidState {
  /// Realized end-to-end rate per flow (pkts/s).
  std::map<net::FlowId, double> rates;
  /// Saturated virtual nodes (node, dest), per the backpressure chain.
  std::map<std::pair<topo::NodeId, topo::NodeId>, bool> saturated;
  /// Airtime occupancy per wireless link (fraction of clique capacity,
  /// external occupancy included).
  std::map<topo::Link, double> occupancy;
};

/// Knobs for the demand-proportional scaling iteration.
struct SolverOptions {
  /// Fraction of the exact rescale step applied each iteration; 1.0 is
  /// the undamped historical behavior, smaller values trade iterations
  /// for smoother trajectories when external occupancy jumps per period.
  double damping = 1.0;
  int maxIterations = 10000;
  /// A clique is considered overloaded when utilization > 1 + slack.
  double utilizationSlack = 1e-9;
};

/// Diagnostics for the most recent evaluate().
struct SolveStats {
  int iterations = 0;
  bool converged = false;
  /// Worst clique utilization (including external occupancy) at exit,
  /// recomputed from scratch (not the incrementally-updated loads).
  double maxUtilization = 0.0;
};

class FluidNetwork {
 public:
  /// `extraLinks` join the contention structure without carrying fluid
  /// flows; they exist so external (packet-measured) occupancy can be
  /// charged against the cliques the fluid flows share with them.
  FluidNetwork(const topo::Topology& topo, std::vector<net::FlowSpec> flows,
               double cliqueCapacityPps,
               std::vector<topo::Link> extraLinks = {});

  /// Steady state under the current rate limits and external occupancy.
  [[nodiscard]] FluidState evaluate() const;

  void setRateLimit(net::FlowId id, std::optional<double> pps);
  [[nodiscard]] std::optional<double> rateLimit(net::FlowId id) const;

  /// Airtime fraction consumed on `l` by traffic outside the fluid model
  /// (the hybrid engine's packet-measured foreground). Charged against
  /// every clique containing `l`; `l` must be a contention link.
  void setExternalOccupancy(topo::Link l, double fraction);
  void clearExternalOccupancy();

  void setSolverOptions(SolverOptions opts);
  [[nodiscard]] const SolverOptions& solverOptions() const { return opts_; }
  [[nodiscard]] const SolveStats& lastSolveStats() const { return stats_; }

  const std::vector<net::FlowSpec>& flows() const { return flows_; }
  const std::vector<std::vector<topo::NodeId>>& paths() const { return paths_; }
  const gmp::ContentionStructure& contention() const { return contention_; }
  [[nodiscard]] double cliqueCapacity() const { return capacity_; }

 private:
  std::vector<net::FlowSpec> flows_;
  std::vector<std::vector<topo::NodeId>> paths_;
  std::map<net::FlowId, std::optional<double>> limits_;
  gmp::ContentionStructure contention_;
  double capacity_;
  SolverOptions opts_;

  /// pathLinks_[flowIdx][hop] = contention link index of that hop.
  std::vector<std::vector<std::int32_t>> pathLinks_;

  // CSR incidence, built once in the constructor. Entries with zero
  // traversal count are never stored.
  std::vector<std::int32_t> cliqueFlowOff_;   ///< cliques + 1
  std::vector<std::int32_t> cliqueFlowIdx_;   ///< flow index per entry
  std::vector<std::int32_t> cliqueFlowCnt_;   ///< traversal multiplicity
  std::vector<std::int32_t> flowCliqueOff_;   ///< flows + 1
  std::vector<std::int32_t> flowCliqueIdx_;   ///< clique index per entry
  std::vector<std::int32_t> flowCliqueCnt_;   ///< traversal multiplicity
  std::vector<std::int32_t> linkFlowOff_;     ///< links + 1
  std::vector<std::int32_t> linkFlowIdx_;     ///< flow index per entry
  std::vector<std::int32_t> linkFlowCnt_;     ///< traversal multiplicity

  /// External occupancy per contention link index and its per-clique sum.
  std::vector<double> extLink_;
  std::vector<double> extClique_;

  /// Iteration workspace, reused across evaluate() calls.
  struct Workspace {
    std::vector<double> offered;
    std::vector<double> rate;
    std::vector<double> load;          ///< per clique, pps
    std::vector<std::int32_t> bottleneck;  ///< per flow, clique idx or -1
  };
  mutable Workspace ws_;
  mutable SolveStats stats_;
};

}  // namespace maxmin::fluid
