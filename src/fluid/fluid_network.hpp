// Deterministic fluid approximation of the wireless substrate.
//
// Replaces the packet-level 802.11 pipeline with a steady-state flow
// computation per period:
//   * every flow offers min(desired, rate limit);
//   * clique airtime constraints are enforced by repeatedly scaling the
//     flows crossing the most-overloaded clique (a work-conserving,
//     demand-proportional share, close to what DCF converges to over a
//     4 s period);
//   * buffer-based backpressure is emulated structurally: a constrained
//     flow saturates every queue from its source up to (and including)
//     the sender of its bottleneck link, exactly the saturated-buffer
//     chain of paper §3.
//
// The point is speed and determinism: the same gmp::Engine that drives
// the packet simulator can be exercised over hundreds of random
// topologies in milliseconds, and its fixed point compared against the
// centralized maxmin reference.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "gmp/engine.hpp"
#include "net/flow.hpp"
#include "topology/routing.hpp"
#include "topology/topology.hpp"

namespace maxmin::fluid {

struct FluidState {
  /// Realized end-to-end rate per flow (pkts/s).
  std::map<net::FlowId, double> rates;
  /// Saturated virtual nodes (node, dest), per the backpressure chain.
  std::map<std::pair<topo::NodeId, topo::NodeId>, bool> saturated;
  /// Airtime occupancy per wireless link (fraction of clique capacity).
  std::map<topo::Link, double> occupancy;
};

class FluidNetwork {
 public:
  FluidNetwork(const topo::Topology& topo, std::vector<net::FlowSpec> flows,
               double cliqueCapacityPps);

  /// Steady state under the current rate limits.
  [[nodiscard]] FluidState evaluate() const;

  void setRateLimit(net::FlowId id, std::optional<double> pps);
  [[nodiscard]] std::optional<double> rateLimit(net::FlowId id) const;

  const std::vector<net::FlowSpec>& flows() const { return flows_; }
  const std::vector<std::vector<topo::NodeId>>& paths() const { return paths_; }
  const gmp::ContentionStructure& contention() const { return contention_; }
  [[nodiscard]] double cliqueCapacity() const { return capacity_; }

 private:
  std::vector<net::FlowSpec> flows_;
  std::vector<std::vector<topo::NodeId>> paths_;
  std::map<net::FlowId, std::optional<double>> limits_;
  gmp::ContentionStructure contention_;
  double capacity_;
  /// traversalsByClique_[c][flowIdx]
  std::vector<std::vector<int>> traversals_;
};

}  // namespace maxmin::fluid
