#include "fluid/fluid_network.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace maxmin::fluid {
namespace {

/// Builds one CSR side from (outer, inner, count) triples sorted by outer.
void buildCsr(std::size_t outerSize,
              const std::map<std::pair<std::int32_t, std::int32_t>,
                             std::int32_t>& counts,
              std::vector<std::int32_t>& off, std::vector<std::int32_t>& idx,
              std::vector<std::int32_t>& cnt) {
  off.assign(outerSize + 1, 0);
  for (const auto& [key, c] : counts) {
    ++off[static_cast<std::size_t>(key.first) + 1];
  }
  for (std::size_t i = 1; i < off.size(); ++i) off[i] += off[i - 1];
  idx.resize(counts.size());
  cnt.resize(counts.size());
  std::size_t pos = 0;
  for (const auto& [key, c] : counts) {
    idx[pos] = key.second;
    cnt[pos] = c;
    ++pos;
  }
}

}  // namespace

FluidNetwork::FluidNetwork(const topo::Topology& topo,
                           std::vector<net::FlowSpec> flows,
                           double cliqueCapacityPps,
                           std::vector<topo::Link> extraLinks)
    : flows_{std::move(flows)}, capacity_{cliqueCapacityPps} {
  MAXMIN_CHECK(capacity_ > 0.0);
  net::validateFlows(flows_, topo.numNodes());

  std::set<topo::Link> linkSet{extraLinks.begin(), extraLinks.end()};
  for (const net::FlowSpec& f : flows_) {
    const auto tree = topo::RoutingTree::shortestPaths(topo, f.dst);
    MAXMIN_CHECK_MSG(tree.reaches(f.src), "flow " << f.id << " unroutable");
    paths_.push_back(tree.pathFrom(f.src));
    limits_[f.id] = std::nullopt;
    for (std::size_t i = 0; i + 1 < paths_.back().size(); ++i) {
      linkSet.insert(topo::Link{paths_.back()[i], paths_.back()[i + 1]});
    }
  }
  contention_ = gmp::ContentionStructure::build(
      topo, {linkSet.begin(), linkSet.end()});

  // Hop -> contention link index, then the three CSR incidence views.
  pathLinks_.resize(paths_.size());
  std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> cliqueFlow;
  std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> flowClique;
  std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> linkFlow;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const auto fi = static_cast<std::int32_t>(i);
    for (std::size_t h = 0; h + 1 < paths_[i].size(); ++h) {
      const int li =
          contention_.linkIndex(topo::Link{paths_[i][h], paths_[i][h + 1]});
      MAXMIN_CHECK(li >= 0);
      pathLinks_[i].push_back(li);
      ++linkFlow[{li, fi}];
      for (int c : contention_.cliquesOfLink[static_cast<std::size_t>(li)]) {
        ++cliqueFlow[{c, fi}];
        ++flowClique[{fi, c}];
      }
    }
  }
  buildCsr(contention_.cliques.size(), cliqueFlow, cliqueFlowOff_,
           cliqueFlowIdx_, cliqueFlowCnt_);
  buildCsr(paths_.size(), flowClique, flowCliqueOff_, flowCliqueIdx_,
           flowCliqueCnt_);
  buildCsr(contention_.links.size(), linkFlow, linkFlowOff_, linkFlowIdx_,
           linkFlowCnt_);

  extLink_.assign(contention_.links.size(), 0.0);
  extClique_.assign(contention_.cliques.size(), 0.0);
}

void FluidNetwork::setRateLimit(net::FlowId id, std::optional<double> pps) {
  MAXMIN_CHECK(limits_.contains(id));
  if (pps) MAXMIN_CHECK(*pps > 0.0);
  limits_[id] = pps;
}

std::optional<double> FluidNetwork::rateLimit(net::FlowId id) const {
  return limits_.at(id);
}

void FluidNetwork::setExternalOccupancy(topo::Link l, double fraction) {
  MAXMIN_CHECK(fraction >= 0.0);
  const int li = contention_.linkIndex(l);
  MAXMIN_CHECK_MSG(li >= 0, "external occupancy on unknown link " << l);
  const double delta = fraction - extLink_[static_cast<std::size_t>(li)];
  extLink_[static_cast<std::size_t>(li)] = fraction;
  for (int c : contention_.cliquesOfLink[static_cast<std::size_t>(li)]) {
    extClique_[static_cast<std::size_t>(c)] += delta;
  }
}

void FluidNetwork::clearExternalOccupancy() {
  std::ranges::fill(extLink_, 0.0);
  std::ranges::fill(extClique_, 0.0);
}

void FluidNetwork::setSolverOptions(SolverOptions opts) {
  MAXMIN_CHECK(opts.damping > 0.0 && opts.damping <= 1.0);
  MAXMIN_CHECK(opts.maxIterations > 0);
  MAXMIN_CHECK(opts.utilizationSlack > 0.0);
  opts_ = opts;
}

FluidState FluidNetwork::evaluate() const {
  const std::size_t n = flows_.size();
  const std::size_t m = contention_.cliques.size();

  ws_.offered.resize(n);
  ws_.rate.resize(n);
  ws_.bottleneck.assign(n, -1);
  ws_.load.assign(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double offered = flows_[i].desiredRate.asPerSecond();
    if (const auto& lim = limits_.at(flows_[i].id)) {
      offered = std::min(offered, *lim);
    }
    ws_.offered[i] = offered;
    ws_.rate[i] = offered;
  }
  for (std::size_t c = 0; c < m; ++c) {
    for (std::int32_t e = cliqueFlowOff_[c]; e < cliqueFlowOff_[c + 1]; ++e) {
      ws_.load[c] += ws_.rate[static_cast<std::size_t>(cliqueFlowIdx_[e])] *
                     cliqueFlowCnt_[e];
    }
  }

  // Demand-proportional scaling until every clique fits. Track, per flow,
  // the clique that last constrained it: that clique holds the flow's
  // bottleneck link. Loads are maintained incrementally — only the
  // cliques of the flows just rescaled are touched — so an iteration is
  // O(|worst clique| x path length) and allocation-free.
  const double slack = opts_.utilizationSlack;
  // A clique whose own fluid load is this small cannot be rescued by
  // scaling (its overload is all external occupancy); skip it so the
  // loop terminates.
  const double minScalableLoad = capacity_ * 1e-15;
  stats_ = SolveStats{};
  for (; stats_.iterations < opts_.maxIterations; ++stats_.iterations) {
    double worst = 1.0 + slack;
    std::int64_t worstClique = -1;
    for (std::size_t c = 0; c < m; ++c) {
      const double utilization = ws_.load[c] / capacity_ + extClique_[c];
      if (utilization > worst && ws_.load[c] > minScalableLoad) {
        worst = utilization;
        worstClique = static_cast<std::int64_t>(c);
      }
    }
    if (worstClique < 0) {
      stats_.converged = true;
      break;
    }
    const auto wc = static_cast<std::size_t>(worstClique);
    const double avail = std::max(0.0, 1.0 - extClique_[wc]);
    double factor = std::min(1.0, avail * capacity_ / ws_.load[wc]);
    factor = 1.0 - opts_.damping * (1.0 - factor);
    for (std::int32_t e = cliqueFlowOff_[wc]; e < cliqueFlowOff_[wc + 1];
         ++e) {
      const auto i = static_cast<std::size_t>(cliqueFlowIdx_[e]);
      const double delta = ws_.rate[i] * (factor - 1.0);
      ws_.rate[i] += delta;
      ws_.bottleneck[i] = static_cast<std::int32_t>(wc);
      for (std::int32_t fe = flowCliqueOff_[i]; fe < flowCliqueOff_[i + 1];
           ++fe) {
        ws_.load[static_cast<std::size_t>(flowCliqueIdx_[fe])] +=
            delta * flowCliqueCnt_[fe];
      }
    }
  }

  // Diagnostics: recompute the worst utilization from scratch so the
  // reported figure is free of incremental-update drift.
  for (std::size_t c = 0; c < m; ++c) {
    double load = 0.0;
    for (std::int32_t e = cliqueFlowOff_[c]; e < cliqueFlowOff_[c + 1]; ++e) {
      load += ws_.rate[static_cast<std::size_t>(cliqueFlowIdx_[e])] *
              cliqueFlowCnt_[e];
    }
    stats_.maxUtilization =
        std::max(stats_.maxUtilization, load / capacity_ + extClique_[c]);
  }

  FluidState state;
  for (std::size_t i = 0; i < n; ++i) {
    state.rates[flows_[i].id] = ws_.rate[i];
  }

  // Backpressure chain: a constrained flow saturates the queues from its
  // source through the sender of its first link inside the bottleneck
  // clique (paper §3.2: everything upstream of the bandwidth-saturated
  // link is buffer-saturated).
  constexpr double kEps = 1e-9;
  for (std::size_t i = 0; i < n; ++i) {
    const bool constrained = ws_.rate[i] < ws_.offered[i] - kEps;
    if (!constrained) continue;
    MAXMIN_CHECK(ws_.bottleneck[i] >= 0);
    const int bc = ws_.bottleneck[i];
    const auto& path = paths_[i];
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      state.saturated[{path[h], flows_[i].dst}] = true;
      const auto& cliques = contention_.cliquesOfLink[static_cast<std::size_t>(
          pathLinks_[i][h])];
      if (std::ranges::find(cliques, bc) != cliques.end()) break;
    }
  }

  // Link occupancies: airtime fraction consumed by the traffic on each
  // wireless link, plus any external (packet-measured) share.
  for (std::size_t li = 0; li < contention_.links.size(); ++li) {
    double load = 0.0;
    for (std::int32_t e = linkFlowOff_[li]; e < linkFlowOff_[li + 1]; ++e) {
      load += ws_.rate[static_cast<std::size_t>(linkFlowIdx_[e])] *
              linkFlowCnt_[e];
    }
    state.occupancy[contention_.links[li]] = load / capacity_ + extLink_[li];
  }
  return state;
}

}  // namespace maxmin::fluid
