#include "fluid/fluid_network.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace maxmin::fluid {

FluidNetwork::FluidNetwork(const topo::Topology& topo,
                           std::vector<net::FlowSpec> flows,
                           double cliqueCapacityPps)
    : flows_{std::move(flows)}, capacity_{cliqueCapacityPps} {
  MAXMIN_CHECK(capacity_ > 0.0);
  net::validateFlows(flows_, topo.numNodes());

  std::set<topo::Link> linkSet;
  for (const net::FlowSpec& f : flows_) {
    const auto tree = topo::RoutingTree::shortestPaths(topo, f.dst);
    MAXMIN_CHECK_MSG(tree.reaches(f.src), "flow " << f.id << " unroutable");
    paths_.push_back(tree.pathFrom(f.src));
    limits_[f.id] = std::nullopt;
    for (std::size_t i = 0; i + 1 < paths_.back().size(); ++i) {
      linkSet.insert(topo::Link{paths_.back()[i], paths_.back()[i + 1]});
    }
  }
  contention_ = gmp::ContentionStructure::build(
      topo, {linkSet.begin(), linkSet.end()});

  traversals_.assign(contention_.cliques.size(),
                     std::vector<int>(flows_.size(), 0));
  for (std::size_t c = 0; c < contention_.cliques.size(); ++c) {
    std::set<topo::Link> members;
    for (int li : contention_.cliques[c].linkIndices) {
      members.insert(contention_.links[static_cast<std::size_t>(li)]);
    }
    for (std::size_t i = 0; i < paths_.size(); ++i) {
      for (std::size_t h = 0; h + 1 < paths_[i].size(); ++h) {
        if (members.contains(topo::Link{paths_[i][h], paths_[i][h + 1]})) {
          ++traversals_[c][i];
        }
      }
    }
  }
}

void FluidNetwork::setRateLimit(net::FlowId id, std::optional<double> pps) {
  MAXMIN_CHECK(limits_.contains(id));
  if (pps) MAXMIN_CHECK(*pps > 0.0);
  limits_[id] = pps;
}

std::optional<double> FluidNetwork::rateLimit(net::FlowId id) const {
  return limits_.at(id);
}

FluidState FluidNetwork::evaluate() const {
  const std::size_t n = flows_.size();
  const std::size_t m = contention_.cliques.size();

  std::vector<double> offered(n);
  std::vector<double> rate(n);
  for (std::size_t i = 0; i < n; ++i) {
    offered[i] = flows_[i].desiredRate.asPerSecond();
    if (const auto& lim = limits_.at(flows_[i].id)) {
      offered[i] = std::min(offered[i], *lim);
    }
    rate[i] = offered[i];
  }

  // Demand-proportional scaling until every clique fits. Track, per flow,
  // the clique that last constrained it: that clique holds the flow's
  // bottleneck link.
  std::vector<int> bottleneckClique(n, -1);
  constexpr double kEps = 1e-9;
  for (int iter = 0; iter < 10000; ++iter) {
    double worst = 1.0 + kEps;
    int worstClique = -1;
    for (std::size_t c = 0; c < m; ++c) {
      double load = 0.0;
      for (std::size_t i = 0; i < n; ++i) load += rate[i] * traversals_[c][i];
      const double utilization = load / capacity_;
      if (utilization > worst) {
        worst = utilization;
        worstClique = static_cast<int>(c);
      }
    }
    if (worstClique < 0) break;
    const double factor = 1.0 / worst;
    for (std::size_t i = 0; i < n; ++i) {
      if (traversals_[static_cast<std::size_t>(worstClique)][i] > 0) {
        rate[i] *= factor;
        bottleneckClique[i] = worstClique;
      }
    }
  }

  FluidState state;
  for (std::size_t i = 0; i < n; ++i) {
    state.rates[flows_[i].id] = rate[i];
  }

  // Backpressure chain: a constrained flow saturates the queues from its
  // source through the sender of its first link inside the bottleneck
  // clique (paper §3.2: everything upstream of the bandwidth-saturated
  // link is buffer-saturated).
  for (std::size_t i = 0; i < n; ++i) {
    const bool constrained = rate[i] < offered[i] - kEps;
    if (!constrained) continue;
    MAXMIN_CHECK(bottleneckClique[i] >= 0);
    std::set<topo::Link> members;
    for (int li :
         contention_.cliques[static_cast<std::size_t>(bottleneckClique[i])]
             .linkIndices) {
      members.insert(contention_.links[static_cast<std::size_t>(li)]);
    }
    const auto& path = paths_[i];
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      state.saturated[{path[h], flows_[i].dst}] = true;
      if (members.contains(topo::Link{path[h], path[h + 1]})) break;
    }
  }

  // Link occupancies: airtime fraction consumed by the traffic on each
  // wireless link.
  for (const topo::Link& l : contention_.links) {
    double load = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& path = paths_[i];
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        if (topo::Link{path[h], path[h + 1]} == l) load += rate[i];
      }
    }
    state.occupancy[l] = load / capacity_;
  }
  return state;
}

}  // namespace maxmin::fluid
