// Distributed clique discovery (paper §6.2 Step 2 / §6.3 preamble).
//
// "After deployment, we assume each node i discovers the wireless
// topology in its two-hop neighborhood ... From the topology, it
// pre-computes the set of cliques it belongs to."
//
// This module implements exactly that per-node computation: a node's
// local view is its two-hop neighborhood plus the (active) links with
// both endpoints inside it; from the conflict graph restricted to the
// view it enumerates the maximal cliques containing at least one of its
// own adjacent links, and assigns the paper's clique identifiers
// (smallest node id + sequence).
//
// The paper's implicit locality assumption — every link contending with
// one of mine is visible within my two-hop neighborhood — is NOT a
// theorem under a 550 m carrier-sense / 250 m transmission model (two
// radio hops reach at most 500 m). localViewIsExact() checks it for a
// given topology, and the tests verify it holds for every evaluation
// scenario in the paper while quantifying how often it fails on sparse
// random meshes.
#pragma once

#include <vector>

#include "topology/cliques.hpp"
#include "topology/conflict_graph.hpp"
#include "topology/link.hpp"

namespace maxmin::gmp {

struct LocalView {
  topo::NodeId self = topo::kNoNode;
  /// self + its two-hop neighborhood, ascending.
  std::vector<topo::NodeId> members;
  /// Active links with both endpoints in `members`, sorted.
  std::vector<topo::Link> knownLinks;
  /// Maximal cliques (over knownLinks' conflict graph) that contain at
  /// least one link adjacent to self. Ids follow the paper's scheme.
  std::vector<topo::Clique> cliques;

  /// Member links of clique `index`, resolved to Link values.
  [[nodiscard]] std::vector<topo::Link> cliqueLinks(int index) const;
};

/// Build node `self`'s local view over the network's active links.
LocalView buildLocalView(const topo::Topology& topo, topo::NodeId self,
                         const std::vector<topo::Link>& activeLinks);

/// True when `view` agrees with the global enumeration: every global
/// maximal clique containing a link adjacent to `view.self` appears in
/// the view with the same member links.
bool localViewIsExact(const topo::Topology& topo,
                      const std::vector<topo::Link>& activeLinks,
                      const LocalView& view);

}  // namespace maxmin::gmp
