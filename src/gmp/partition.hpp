// Reachability summary for partition-aware GMP (DESIGN.md §13).
//
// At each period boundary the controller computes a cheap connected-
// component labelling of the *alive* graph: nodes that are up, edges
// whose links are not cut. Flows whose path crosses a cut link are
// quarantined — their measured rates describe a path that no longer
// exists — and each surviving component degrades to a locally-
// consistent maxmin among the flows it can still see. When partitions
// re-merge, the controller's existing restore machinery reconciles the
// limits (pre-impairment limits come back, then normal adjustment
// resumes).
//
// Deliberately O(V + E) per period: one BFS sweep, no allocation beyond
// the component vector.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fault_plane.hpp"
#include "topology/topology.hpp"

namespace maxmin::gmp {

/// Connected-component labelling of the alive graph.
struct ReachabilitySummary {
  /// component[node]: dense component id (0-based), or -1 for a node
  /// that is down.
  std::vector<std::int32_t> component;
  std::int32_t components = 0;

  [[nodiscard]] bool partitioned() const { return components > 1; }
  [[nodiscard]] bool connected(topo::NodeId a, topo::NodeId b) const {
    const auto ca = component.at(static_cast<std::size_t>(a));
    const auto cb = component.at(static_cast<std::size_t>(b));
    return ca >= 0 && ca == cb;
  }
};

/// Label the alive graph's connected components. With no fault plane
/// (nullptr) every node lands in component 0 of a connected topology.
ReachabilitySummary computeReachability(const topo::Topology& topo,
                                        const sim::FaultPlane* faults);

}  // namespace maxmin::gmp
