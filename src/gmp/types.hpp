// Core GMP vocabulary: link classification (paper §3), the beta-tolerant
// comparisons of §6.3, and the per-period state snapshot the condition
// checks run against.
//
// Everything in a Snapshot is information a node either measures itself
// or receives from its 2-hop neighborhood via the paper's dissemination
// protocol; the Engine consults only the parts a given node would hold.
#pragma once

#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <utility>
#include <vector>

#include "net/flow.hpp"
#include "topology/cliques.hpp"
#include "topology/link.hpp"

namespace maxmin::gmp {

/// Paper §3.2. Classification of a (virtual) link (i, j) from the buffer
/// states of its endpoints.
enum class LinkType {
  kUnsaturated,        ///< sender buffer unsaturated
  kBufferSaturated,    ///< both saturated: downstream bottleneck backpressure
  kBandwidthSaturated  ///< sender saturated, receiver not: channel is the
                       ///< bottleneck here
};

const char* linkTypeName(LinkType t);

LinkType classifyLink(bool senderSaturated, bool receiverSaturated);

/// "Equal"/"smaller" with the paper's beta-percentage tolerance (§6.3):
/// two values are equal when their difference is below beta percent (of
/// the larger); smaller means smaller by at least that much.
class BetaCompare {
 public:
  explicit BetaCompare(double beta);

  [[nodiscard]] double beta() const { return beta_; }
  [[nodiscard]] bool equal(double a, double b) const;
  [[nodiscard]] bool smaller(double a, double b) const { return a < b && !equal(a, b); }

 private:
  double beta_;
};

/// A virtual link (i_t, j_t): wireless link (from, to) within the virtual
/// network of destination `dest` (paper §5.2).
struct VirtualLinkKey {
  topo::NodeId from = topo::kNoNode;
  topo::NodeId to = topo::kNoNode;
  topo::NodeId dest = topo::kNoNode;

  friend auto operator<=>(const VirtualLinkKey&, const VirtualLinkKey&) =
      default;

  [[nodiscard]] topo::Link wireless() const { return topo::Link{from, to}; }
};

inline std::ostream& operator<<(std::ostream& os, const VirtualLinkKey& k) {
  return os << '(' << k.from << ',' << k.to << ")@" << k.dest;
}

/// Per-period state of one virtual link, as known to its end nodes.
struct VLinkState {
  VirtualLinkKey key;
  LinkType type = LinkType::kUnsaturated;
  double ratePps = 0.0;   ///< measured forwarding rate
  double normRate = 0.0;  ///< mu(i_t, j_t): largest mu carried by packets
  std::vector<net::FlowId> primaryFlows;  ///< flows attaining normRate
};

/// Per-period state of one flow, as known at its source.
struct FlowState {
  net::FlowId id = net::kNoFlow;
  topo::NodeId src = topo::kNoNode;
  topo::NodeId dst = topo::kNoNode;
  double weight = 1.0;
  double desiredPps = 0.0;
  double ratePps = 0.0;  ///< r(f) measured at the source this period
  std::optional<double> limitPps;

  [[nodiscard]] double mu() const { return ratePps / weight; }
};

/// Per-period state of one wireless link, as disseminated 2 hops.
struct WLinkState {
  topo::Link link;
  double occupancy = 0.0;  ///< fraction of the period on the air
  double normRate = 0.0;   ///< max over the link's virtual links
};

/// Everything measured in one period.
struct Snapshot {
  std::vector<FlowState> flows;
  std::vector<VLinkState> vlinks;
  std::vector<WLinkState> wlinks;
  /// Virtual-node saturation: (node, dest) -> Omega above threshold.
  /// Missing entries mean unsaturated.
  std::map<std::pair<topo::NodeId, topo::NodeId>, bool> saturated;

  /// Nodes whose measurements are missing and whose cached values have
  /// outlived the staleness TTL (fault runs only). The engine must not
  /// act on anything derived from them.
  std::set<topo::NodeId> staleNodes;
  /// Flows whose path crosses a stale node: their measured rates are
  /// ghosts, so the engine falls back to conservative rate-limit decay.
  std::set<net::FlowId> impairedFlows;

  /// Connected components of the alive graph this period (1 = whole
  /// network reachable; fault runs only).
  int partitions = 1;
  /// Flows whose path crosses a *cut link*: the path is severed outright
  /// (not merely unmeasured), so their measurements are quarantined.
  /// Always a subset of impairedFlows. Node crashes do not quarantine —
  /// staleness bridging handles those.
  std::set<net::FlowId> quarantinedFlows;
  /// Component id of each flow's source (-1 = source down). Flows in the
  /// same component see a locally-consistent maxmin while partitioned.
  std::map<net::FlowId, std::int32_t> flowPartition;

  [[nodiscard]] bool degraded() const {
    return !staleNodes.empty() || !impairedFlows.empty();
  }
};

/// Rate-limit change for one flow source.
struct Command {
  enum class Kind { kSetLimit, kRemoveLimit };
  net::FlowId flow = net::kNoFlow;
  Kind kind = Kind::kSetLimit;
  double limitPps = 0.0;  ///< meaningful for kSetLimit
};

/// What one adjustment period decided, with diagnostics for tests and
/// convergence monitoring.
struct DecisionReport {
  std::vector<Command> commands;
  int sourceBufferViolations = 0;  ///< source + buffer-saturated conditions
  int bandwidthViolations = 0;
  int reduceRequests = 0;
  int increaseRequests = 0;
  int additiveIncreases = 0;
  int limitsRemoved = 0;
  int staleDecays = 0;  ///< conservative decays of flows on stale paths

  [[nodiscard]] bool conditionsSatisfied() const {
    return sourceBufferViolations == 0 && bandwidthViolations == 0;
  }
};

/// Protocol parameters (paper §6/§7 defaults).
struct GmpParams {
  Duration period = Duration::seconds(4.0);  ///< measurement/adjustment
  double beta = 0.10;                        ///< equality tolerance
  double omegaThreshold = 0.25;              ///< buffer-saturation cutoff
  double bigGapFactor = 3.0;  ///< L1 > 3*S1 triggers halve/double
  double additiveIncreasePps = 10.0;
  double minRatePps = 2.0;  ///< floor for rate limits and adjust bases

  /// A rate limit is removed as unnecessary only when the flow's actual
  /// rate falls below limit * this factor (and the source queue is
  /// unsaturated). Plain beta slack is too twitchy: additive probing
  /// routinely leaves the limit ~beta above a fluctuating actual rate,
  /// and removing a limit that is in fact mediating a congested queue
  /// lets the local source capture it for several periods.
  double removeLimitSlackFactor = 0.5;

  // --- graceful degradation under faults (no effect in fault-free runs) ---

  /// How many periods a node's last good measurement may stand in for a
  /// missing one before the node is declared stale. One period of grace
  /// absorbs a lost report; two distinguishes transient control-plane
  /// loss from a real crash at the paper's 4 s period.
  int measurementTtlPeriods = 2;

  /// Per-period multiplicative decay applied to the rate limit of a flow
  /// whose path crosses a stale node (floored at minRatePps). Acting on
  /// ghost measurements would freeze the old equilibrium in place;
  /// decaying instead cheaply frees the bandwidth the broken path cannot
  /// use while staying ready to ramp back after recovery.
  double staleDecayFactor = 0.5;
};

}  // namespace maxmin::gmp
