#include "gmp/controller.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "util/check.hpp"

namespace maxmin::gmp {

Controller::Controller(net::Network& net, GmpParams params)
    : net_{net},
      params_{params},
      contention_{ContentionStructure::build(net.topology(),
                                             net.activeLinks())},
      engine_{contention_, params},
      timer_{net.simulator()},
      assembleTimer_{net.simulator()} {
  MAXMIN_CHECK_MSG(net.config().discipline ==
                       net::QueueDiscipline::kPerDestination,
                   "GMP requires per-destination queueing (paper §5.1)");
  MAXMIN_CHECK_MSG(net.config().congestionAvoidance,
                   "GMP requires the congestion-avoidance backpressure");

  std::set<std::pair<topo::NodeId, topo::NodeId>> vnodes;
  for (const net::FlowSpec& f : net_.flows()) {
    const auto path = net_.pathOf(f.id);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      flowsOnVlink_[VirtualLinkKey{path[i], path[i + 1], f.dst}].push_back(
          f.id);
      vnodes.insert({path[i], f.dst});
    }
  }
  virtualNodes_.assign(vnodes.begin(), vnodes.end());
}

void Controller::start() {
  timer_.start(params_.period, [this] { tick(); });
}

Snapshot Controller::takeSnapshot() {
  std::map<topo::NodeId, net::NodePeriodMeasurement> meas;
  for (topo::NodeId n = 0; n < net_.topology().numNodes(); ++n) {
    meas.emplace(n, net_.closeMeasurementWindow(n));
  }
  return assembleSnapshot(meas);
}

Snapshot Controller::assembleSnapshot(
    std::map<topo::NodeId, net::NodePeriodMeasurement>& meas) {
  Snapshot snap;

  // Staleness pass: a node that is down at the period boundary produced
  // no real measurements this period. Substitute its last good
  // measurement while that is within the TTL; past the TTL declare the
  // node stale so the engine stops acting on anything derived from it.
  if (const sim::FaultPlane* faults = net_.faultPlane()) {
    for (topo::NodeId n = 0; n < net_.topology().numNodes(); ++n) {
      if (faults->nodeUp(n)) {
        lastGoodMeas_[n] = meas.at(n);
        lastGoodPeriod_[n] = periods_;
        continue;
      }
      const auto it = lastGoodPeriod_.find(n);
      if (it != lastGoodPeriod_.end() &&
          periods_ - it->second <= params_.measurementTtlPeriods) {
        meas.at(n) = lastGoodMeas_.at(n);
        ++staleMeasurementsUsed_;
      } else {
        snap.staleNodes.insert(n);
      }
    }
    for (const net::FlowSpec& f : net_.flows()) {
      const auto path = net_.pathOf(f.id);
      if (std::any_of(path.begin(), path.end(), [&](topo::NodeId n) {
            return snap.staleNodes.contains(n);
          })) {
        snap.impairedFlows.insert(f.id);
      }
    }
  }

  // Each node closes its own window, so under clock skew (or after a
  // mid-period recovery) period lengths differ per node.
  const auto periodSecondsOf = [&](topo::NodeId n) {
    const double s = meas.at(n).periodSeconds;
    MAXMIN_CHECK_MSG(s > 0.0, "empty measurement window at node " << n);
    return s;
  };

  // Flow states, measured at the sources.
  for (const net::FlowSpec& f : net_.flows()) {
    FlowState fs;
    fs.id = f.id;
    fs.src = f.src;
    fs.dst = f.dst;
    fs.weight = f.weight;
    fs.desiredPps = f.desiredRate.asPerSecond();
    const auto& local = meas.at(f.src).localFlowRate;
    if (const auto it = local.find(f.id); it != local.end()) {
      fs.ratePps = it->second;
    }
    fs.limitPps = net_.rateLimit(f.id);
    snap.flows.push_back(fs);
  }

  // Virtual-node saturation from Omega (paper §6.2: threshold 25%).
  for (const auto& [node, dest] : virtualNodes_) {
    const auto& omega = meas.at(node).queueFullFraction;
    bool sat = false;
    if (const auto it = omega.find(dest); it != omega.end()) {
      sat = it->second > params_.omegaThreshold;
    }
    snap.saturated[{node, dest}] = sat;
  }

  // Virtual links.
  for (const auto& [key, flowIds] : flowsOnVlink_) {
    VLinkState vl;
    vl.key = key;
    const bool senderSat = snap.saturated.contains({key.from, key.dest}) &&
                           snap.saturated.at({key.from, key.dest});
    const bool receiverSat = snap.saturated.contains({key.to, key.dest}) &&
                             snap.saturated.at({key.to, key.dest});
    vl.type = classifyLink(senderSat, receiverSat);

    // Per-flow normalized rates on the link. The paper measures each
    // flow's mu in the first half of a period and piggybacks it on that
    // period's remaining packets, so the mu a link reads is same-epoch
    // with the flow's current rate. We reproduce that by taking the set
    // of flows observed on the link from the piggyback samples and their
    // mu values from this period's source measurements. If the link
    // moved no traffic at all this period, fall back to every flow
    // routed across it.
    auto currentMu = [&](net::FlowId id) {
      for (const FlowState& fs : snap.flows) {
        if (fs.id == id) return fs.mu();
      }
      return 0.0;
    };
    std::map<net::FlowId, double> mus;
    const auto& down = meas.at(key.from).downstream;
    if (const auto it = down.find(key.dest);
        it != down.end() && !it->second.flowMu.empty()) {
      vl.ratePps = it->second.packets / periodSecondsOf(key.from);
      for (const auto& [id, staleMu] : it->second.flowMu) {
        mus[id] = currentMu(id);
      }
    } else {
      for (net::FlowId id : flowIds) mus[id] = currentMu(id);
    }
    double maxMu = 0.0;
    for (const auto& [id, mu] : mus) maxMu = std::max(maxMu, mu);
    vl.normRate = maxMu;
    const BetaCompare cmp{params_.beta};
    for (const auto& [id, mu] : mus) {
      if (cmp.equal(mu, maxMu)) vl.primaryFlows.push_back(id);
    }
    snap.vlinks.push_back(vl);
  }

  // Wireless links: occupancy from the MAC, normalized rate as the max
  // over the link's virtual links.
  for (const topo::Link& l : contention_.links) {
    WLinkState wl;
    wl.link = l;
    wl.occupancy =
        net_.takeLinkOccupancy(l.from, l.to).asSeconds() / periodSecondsOf(l.from);
    for (const VLinkState& vl : snap.vlinks) {
      if (vl.key.wireless() == l) wl.normRate = std::max(wl.normRate, vl.normRate);
    }
    snap.wlinks.push_back(wl);
  }

  return snap;
}

void Controller::tick() {
  if (const sim::FaultPlane* faults = net_.faultPlane();
      faults != nullptr && faults->maxClockSkew() > Duration::zero()) {
    beginSkewedClose(*faults);
    return;
  }
  finishPeriod(takeSnapshot());
}

void Controller::beginSkewedClose(const sim::FaultPlane& faults) {
  // Nodes do not share a clock: each closes its window at the nominal
  // boundary plus its own skew, and the adjustment decision waits until
  // the last close. The skews must fit well inside one period.
  const Duration maxSkew = faults.maxClockSkew();
  MAXMIN_CHECK_MSG(maxSkew + maxSkew < params_.period,
                   "clock skew " << maxSkew << " too large for period "
                                 << params_.period);
  ++skewedPeriods_;
  pendingMeas_.clear();

  const int n = net_.topology().numNodes();
  while (static_cast<int>(skewTimers_.size()) < n) {
    skewTimers_.push_back(std::make_unique<sim::Timer>(net_.simulator()));
  }
  for (topo::NodeId node = 0; node < n; ++node) {
    const Duration skew = faults.clockSkew(node);
    if (skew <= Duration::zero()) {
      pendingMeas_.emplace(node, net_.closeMeasurementWindow(node));
    } else {
      skewTimers_[static_cast<std::size_t>(node)]->arm(skew, [this, node] {
        pendingMeas_.emplace(node, net_.closeMeasurementWindow(node));
      });
    }
  }
  assembleTimer_.arm(maxSkew + Duration::millis(1), [this] {
    auto meas = std::move(pendingMeas_);
    pendingMeas_.clear();
    finishPeriod(assembleSnapshot(meas));
  });
}

void Controller::finishPeriod(Snapshot snapshot) {
  lastSnapshot_ = std::move(snapshot);
  const Snapshot& snap = lastSnapshot_;
  lastReport_ = engine_.decide(snap);

  // Remember each flow's limit as it was just before its path went
  // stale, so recovery can restore the old operating point directly
  // instead of re-climbing from the decayed floor at ~10 pps/period.
  for (net::FlowId id : snap.impairedFlows) {
    if (impairedPrev_.contains(id)) continue;
    for (const FlowState& fs : snap.flows) {
      if (fs.id == id) {
        preImpairmentLimit_[id] = fs.limitPps;
        break;
      }
    }
  }

  for (const Command& cmd : lastReport_.commands) {
    switch (cmd.kind) {
      case Command::Kind::kSetLimit:
        net_.setRateLimit(cmd.flow, cmd.limitPps);
        break;
      case Command::Kind::kRemoveLimit:
        net_.setRateLimit(cmd.flow, std::nullopt);
        break;
    }
  }

  // Flows whose paths recovered this period: put back the pre-fault
  // limit (engine commands for them, if any, acted on ghost rates).
  for (const net::FlowId id : impairedPrev_) {
    if (snap.impairedFlows.contains(id)) continue;
    if (const auto it = preImpairmentLimit_.find(id);
        it != preImpairmentLimit_.end()) {
      net_.setRateLimit(id, it->second);
      preImpairmentLimit_.erase(it);
      ++limitsRestored_;
    }
  }
  impairedPrev_ = snap.impairedFlows;

  // Re-stamp each source's normalized rate for the coming period's
  // piggybacking (paper §6.2, "Normalized Rate").
  for (const FlowState& fs : snap.flows) {
    net_.setSourceMu(fs.id, fs.mu());
  }

  violationHistory_.push_back(lastReport_.sourceBufferViolations +
                              lastReport_.bandwidthViolations);
  std::map<net::FlowId, double> rates;
  for (const FlowState& fs : snap.flows) rates[fs.id] = fs.ratePps;
  rateHistory_.push_back(std::move(rates));
  ++periods_;
}

}  // namespace maxmin::gmp
