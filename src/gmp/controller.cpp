#include "gmp/controller.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "gmp/partition.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace maxmin::gmp {

Controller::Controller(net::Network& net, GmpParams params)
    : net_{net},
      params_{params},
      contention_{ContentionStructure::build(net.topology(),
                                             net.activeLinks())},
      engine_{contention_, params},
      timer_{net.simulator()},
      assembleTimer_{net.simulator()} {
  MAXMIN_CHECK_MSG(net.config().discipline ==
                       net::QueueDiscipline::kPerDestination,
                   "GMP requires per-destination queueing (paper §5.1)");
  MAXMIN_CHECK_MSG(net.config().congestionAvoidance,
                   "GMP requires the congestion-avoidance backpressure");

  std::set<std::pair<topo::NodeId, topo::NodeId>> vnodes;
  for (const net::FlowSpec& f : net_.flows()) {
    const auto path = net_.pathOf(f.id);
    flowHops_[f.id] = static_cast<int>(path.size()) - 1;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      flowsOnVlink_[VirtualLinkKey{path[i], path[i + 1], f.dst}].push_back(
          f.id);
      vnodes.insert({path[i], f.dst});
    }
  }
  virtualNodes_.assign(vnodes.begin(), vnodes.end());

  const auto n = static_cast<std::size_t>(net_.topology().numNodes());
  lastGoodMeas_.resize(n);
  lastGoodPeriod_.assign(n, -1);
}

void Controller::start() {
  timer_.start(params_.period, [this] { tick(); });
}

std::size_t Controller::cachedMeasurements() const {
  return static_cast<std::size_t>(
      std::count_if(lastGoodPeriod_.begin(), lastGoodPeriod_.end(),
                    [](int p) { return p >= 0; }));
}

void Controller::warmStart(
    const std::vector<net::NodePeriodMeasurement>& perNode) {
  MAXMIN_CHECK_MSG(periods_ == 0, "warmStart after periods already ran");
  MAXMIN_CHECK(perNode.size() == lastGoodMeas_.size());
  for (std::size_t ni = 0; ni < perNode.size(); ++ni) {
    if (perNode[ni].periodSeconds <= 0.0) continue;
    lastGoodMeas_[ni] = perNode[ni];
    lastGoodPeriod_[ni] = 0;
  }
}

Snapshot Controller::takeSnapshot() {
  const int n = net_.topology().numNodes();
  std::vector<net::NodePeriodMeasurement> meas;
  meas.reserve(static_cast<std::size_t>(n));
  for (topo::NodeId node = 0; node < n; ++node) {
    meas.push_back(net_.closeMeasurementWindow(node));
  }
  return assembleSnapshot(meas);
}

Snapshot Controller::assembleSnapshot(
    std::vector<net::NodePeriodMeasurement>& meas) {
  MAXMIN_PROFILE_SCOPE("gmp.assemble_snapshot");
  Snapshot snap;
  const int numNodes = net_.topology().numNodes();
  MAXMIN_CHECK(static_cast<int>(meas.size()) == numNodes);
  const auto measOf = [&](topo::NodeId n) -> net::NodePeriodMeasurement& {
    return meas[static_cast<std::size_t>(n)];
  };

  // Staleness pass: a node that is down at the period boundary — or that
  // closed an empty window because it recovered exactly on the boundary —
  // produced no usable measurements this period. Substitute its last
  // good measurement while that is within the TTL; past the TTL declare
  // the node stale so the engine stops acting on anything derived from
  // it. Runs with or without a fault plane: a zero-length window is a
  // missing measurement however it came about.
  const sim::FaultPlane* faults = net_.faultPlane();
  std::set<topo::NodeId> bridgedNodes;
  for (topo::NodeId n = 0; n < numNodes; ++n) {
    const auto ni = static_cast<std::size_t>(n);
    const bool up = faults == nullptr || faults->nodeUp(n);
    if (up && measOf(n).periodSeconds > 0.0) {
      lastGoodMeas_[ni] = measOf(n);
      lastGoodPeriod_[ni] = periods_;
      continue;
    }
    if (lastGoodPeriod_[ni] >= 0 &&
        periods_ - lastGoodPeriod_[ni] <= params_.measurementTtlPeriods) {
      measOf(n) = lastGoodMeas_[ni];
      bridgedNodes.insert(n);
      ++staleMeasurementsUsed_;
      MAXMIN_COUNT("gmp.stale_substitutions", 1);
      if (trace_ != nullptr && trace_->wantsEvents()) {
        obs::JsonWriter w;
        w.beginObject();
        w.key("record").value("stale_substitution");
        w.key("period").value(periods_);
        w.key("node").value(n);
        w.key("measuredPeriod").value(lastGoodPeriod_[ni]);
        w.endObject();
        trace_->writeRecord(w.str());
      }
    } else {
      snap.staleNodes.insert(n);
    }
  }
  // Prune cached measurements that have aged past the TTL: they can
  // never be substituted again, so holding them only leaks memory across
  // long churn runs (and would mis-report cachedMeasurements()).
  for (std::size_t ni = 0; ni < lastGoodPeriod_.size(); ++ni) {
    if (lastGoodPeriod_[ni] >= 0 &&
        periods_ - lastGoodPeriod_[ni] > params_.measurementTtlPeriods) {
      lastGoodPeriod_[ni] = -1;
      lastGoodMeas_[ni] = net::NodePeriodMeasurement{};
    }
  }
  // A flow whose path crosses a stale node is computing on ghosts. So is
  // a flow *sourced* at a bridged node: its "measured" rate this period
  // is the cached localFlowRate from before the outage, reported as if
  // it were live. Both go to the engine as impaired.
  for (const net::FlowSpec& f : net_.flows()) {
    const auto path = net_.pathOf(f.id);
    const bool crossesStale =
        std::any_of(path.begin(), path.end(), [&](topo::NodeId n) {
          return snap.staleNodes.contains(n);
        });
    if (crossesStale || bridgedNodes.contains(f.src)) {
      snap.impairedFlows.insert(f.id);
    }
  }

  // Partition pass (fault runs only). Quarantine keys on *cut links*
  // alone: a severed path is structurally gone, while a crashed node on
  // an intact path is a measurement outage that staleness bridging
  // already rides out without impairing the flows across it.
  if (faults != nullptr) {
    const ReachabilitySummary reach =
        computeReachability(net_.topology(), faults);
    snap.partitions = reach.components;
    for (const net::FlowSpec& f : net_.flows()) {
      const auto path = net_.pathOf(f.id);
      bool severed = false;
      for (std::size_t i = 0; i + 1 < path.size() && !severed; ++i) {
        severed = faults->linkCut(path[i], path[i + 1]);
      }
      if (severed) {
        snap.quarantinedFlows.insert(f.id);
        snap.impairedFlows.insert(f.id);
      }
      snap.flowPartition[f.id] =
          reach.component[static_cast<std::size_t>(f.src)];
    }
    if (reach.partitioned() || !snap.quarantinedFlows.empty()) {
      ++partitionedPeriods_;
      flowsQuarantined_ +=
          static_cast<std::int64_t>(snap.quarantinedFlows.size());
      MAXMIN_COUNT("gmp.quarantined_flow_periods",
                   static_cast<std::int64_t>(snap.quarantinedFlows.size()));
      if (trace_ != nullptr && trace_->wantsEvents()) {
        obs::JsonWriter w;
        w.beginObject();
        w.key("record").value("partition");
        w.key("period").value(periods_);
        w.key("partitions").value(snap.partitions);
        w.key("quarantinedFlows").beginArray();
        for (const net::FlowId id : snap.quarantinedFlows) {
          w.value(static_cast<std::int64_t>(id));
        }
        w.endArray();
        w.endObject();
        trace_->writeRecord(w.str());
      }
    }
  }

  // Each node closes its own window, so under clock skew (or after a
  // mid-period recovery) period lengths differ per node. Nodes left
  // stale above may carry an empty (zero-length) window; callers must
  // guard the division.
  const auto periodSecondsOf = [&](topo::NodeId n) {
    return measOf(n).periodSeconds;
  };

  // Flow states, measured at the sources.
  for (const net::FlowSpec& f : net_.flows()) {
    FlowState fs;
    fs.id = f.id;
    fs.src = f.src;
    fs.dst = f.dst;
    fs.weight = f.weight;
    fs.desiredPps = f.desiredRate.asPerSecond();
    const auto& local = measOf(f.src).localFlowRate;
    if (const auto it = local.find(f.id); it != local.end()) {
      fs.ratePps = it->second;
    }
    fs.limitPps = net_.rateLimit(f.id);
    snap.flows.push_back(fs);
  }

  // Virtual-node saturation from Omega (paper §6.2: threshold 25%).
  for (const auto& [node, dest] : virtualNodes_) {
    const auto& omega = measOf(node).queueFullFraction;
    bool sat = false;
    if (const auto it = omega.find(dest); it != omega.end()) {
      sat = it->second > params_.omegaThreshold;
    }
    snap.saturated[{node, dest}] = sat;
  }

  // Virtual links.
  for (const auto& [key, flowIds] : flowsOnVlink_) {
    VLinkState vl;
    vl.key = key;
    const bool senderSat = snap.saturated.contains({key.from, key.dest}) &&
                           snap.saturated.at({key.from, key.dest});
    const bool receiverSat = snap.saturated.contains({key.to, key.dest}) &&
                             snap.saturated.at({key.to, key.dest});
    vl.type = classifyLink(senderSat, receiverSat);

    // Per-flow normalized rates on the link. The paper measures each
    // flow's mu in the first half of a period and piggybacks it on that
    // period's remaining packets, so the mu a link reads is same-epoch
    // with the flow's current rate. We reproduce that by taking the set
    // of flows observed on the link from the piggyback samples and their
    // mu values from this period's source measurements. If the link
    // moved no traffic at all this period, fall back to every flow
    // routed across it.
    auto currentMu = [&](net::FlowId id) {
      for (const FlowState& fs : snap.flows) {
        if (fs.id == id) return fs.mu();
      }
      return 0.0;
    };
    std::map<net::FlowId, double> mus;
    const auto& down = measOf(key.from).downstream;
    const double fromSeconds = periodSecondsOf(key.from);
    if (const auto it = down.find(key.dest);
        it != down.end() && !it->second.flowMu.empty() && fromSeconds > 0.0) {
      vl.ratePps = it->second.packets / fromSeconds;
      for (const auto& [id, staleMu] : it->second.flowMu) {
        mus[id] = currentMu(id);
      }
    } else {
      for (net::FlowId id : flowIds) mus[id] = currentMu(id);
    }
    double maxMu = 0.0;
    for (const auto& [id, mu] : mus) maxMu = std::max(maxMu, mu);
    vl.normRate = maxMu;
    const BetaCompare cmp{params_.beta};
    for (const auto& [id, mu] : mus) {
      if (cmp.equal(mu, maxMu)) vl.primaryFlows.push_back(id);
    }
    snap.vlinks.push_back(vl);
  }

  // Wireless links: occupancy from the MAC, normalized rate as the max
  // over the link's virtual links. A sender with an empty window has no
  // airtime to report; its occupancy is zero, not a division by zero.
  for (const topo::Link& l : contention_.links) {
    WLinkState wl;
    wl.link = l;
    const double airtime = net_.takeLinkOccupancy(l.from, l.to).asSeconds();
    const double seconds = periodSecondsOf(l.from);
    wl.occupancy = seconds > 0.0 ? airtime / seconds : 0.0;
    for (const VLinkState& vl : snap.vlinks) {
      if (vl.key.wireless() == l) wl.normRate = std::max(wl.normRate, vl.normRate);
    }
    snap.wlinks.push_back(wl);
  }

  return snap;
}

void Controller::tick() {
  MAXMIN_PROFILE_SCOPE("gmp.tick");
  if (const sim::FaultPlane* faults = net_.faultPlane();
      faults != nullptr && faults->maxClockSkew() > Duration::zero()) {
    beginSkewedClose(*faults);
    return;
  }
  finishPeriod(takeSnapshot());
}

void Controller::beginSkewedClose(const sim::FaultPlane& faults) {
  // Nodes do not share a clock: each closes its window at the nominal
  // boundary plus its own skew, and the adjustment decision waits until
  // the last close. The skews must fit well inside one period.
  const Duration maxSkew = faults.maxClockSkew();
  MAXMIN_CHECK_MSG(maxSkew + maxSkew < params_.period,
                   "clock skew " << maxSkew << " too large for period "
                                 << params_.period);
  ++skewedPeriods_;

  const int n = net_.topology().numNodes();
  pendingMeas_.assign(static_cast<std::size_t>(n),
                      net::NodePeriodMeasurement{});
  while (static_cast<int>(skewTimers_.size()) < n) {
    skewTimers_.push_back(std::make_unique<sim::Timer>(net_.simulator()));
  }
  for (topo::NodeId node = 0; node < n; ++node) {
    const Duration skew = faults.clockSkew(node);
    if (skew <= Duration::zero()) {
      pendingMeas_[static_cast<std::size_t>(node)] =
          net_.closeMeasurementWindow(node);
    } else {
      skewTimers_[static_cast<std::size_t>(node)]->arm(skew, [this, node] {
        pendingMeas_[static_cast<std::size_t>(node)] =
            net_.closeMeasurementWindow(node);
      });
    }
  }
  assembleTimer_.arm(maxSkew + Duration::millis(1), [this] {
    Snapshot snap = assembleSnapshot(pendingMeas_);
    pendingMeas_.clear();
    finishPeriod(std::move(snap));
  });
}

void Controller::finishPeriod(Snapshot snapshot) {
  lastSnapshot_ = std::move(snapshot);
  const Snapshot& snap = lastSnapshot_;
  lastReport_ = engine_.decide(snap);
  MAXMIN_GAUGE("gmp.commands_per_period",
               static_cast<std::int64_t>(lastReport_.commands.size()));

  // Remember each flow's limit as it was just before its path went
  // stale, so recovery can restore the old operating point directly
  // instead of re-climbing from the decayed floor at ~10 pps/period.
  for (net::FlowId id : snap.impairedFlows) {
    if (impairedPrev_.contains(id)) continue;
    for (const FlowState& fs : snap.flows) {
      if (fs.id == id) {
        preImpairmentLimit_[id] = fs.limitPps;
        break;
      }
    }
  }

  for (const Command& cmd : lastReport_.commands) {
    switch (cmd.kind) {
      case Command::Kind::kSetLimit:
        net_.setRateLimit(cmd.flow, cmd.limitPps);
        break;
      case Command::Kind::kRemoveLimit:
        net_.setRateLimit(cmd.flow, std::nullopt);
        break;
    }
    if (trace_ != nullptr && trace_->wantsEvents()) {
      obs::JsonWriter w;
      w.beginObject();
      w.key("record").value("command");
      w.key("period").value(periods_);
      w.key("flow").value(static_cast<std::int64_t>(cmd.flow));
      w.key("kind").value(cmd.kind == Command::Kind::kSetLimit
                              ? "set_limit"
                              : "remove_limit");
      if (cmd.kind == Command::Kind::kSetLimit) {
        w.key("limitPps").value(cmd.limitPps);
      }
      w.endObject();
      trace_->writeRecord(w.str());
    }
  }

  // Flows whose paths recovered this period: put back the pre-fault
  // limit (engine commands for them, if any, acted on ghost rates).
  for (const net::FlowId id : impairedPrev_) {
    if (snap.impairedFlows.contains(id)) continue;
    if (const auto it = preImpairmentLimit_.find(id);
        it != preImpairmentLimit_.end()) {
      net_.setRateLimit(id, it->second);
      ++limitsRestored_;
      MAXMIN_COUNT("gmp.limits_restored", 1);
      if (trace_ != nullptr && trace_->wantsEvents()) {
        obs::JsonWriter w;
        w.beginObject();
        w.key("record").value("limit_restored");
        w.key("period").value(periods_);
        w.key("flow").value(static_cast<std::int64_t>(id));
        if (it->second) w.key("limitPps").value(*it->second);
        w.endObject();
        trace_->writeRecord(w.str());
      }
      preImpairmentLimit_.erase(it);
    }
  }
  impairedPrev_ = snap.impairedFlows;

  // Re-stamp each source's normalized rate for the coming period's
  // piggybacking (paper §6.2, "Normalized Rate").
  for (const FlowState& fs : snap.flows) {
    net_.setSourceMu(fs.id, fs.mu());
  }

  violationHistory_.push_back(lastReport_.sourceBufferViolations +
                              lastReport_.bandwidthViolations);
  partitionHistory_.push_back(snap.flowPartition);
  std::map<net::FlowId, double> rates;
  for (const FlowState& fs : snap.flows) rates[fs.id] = fs.ratePps;
  rateHistory_.push_back(std::move(rates));
  emitPeriodTrace();
  if (periodHook_) periodHook_(snap, periods_);
  ++periods_;
}

void Controller::emitPeriodTrace() {
  if (trace_ == nullptr) return;
  const Snapshot& snap = lastSnapshot_;
  obs::JsonWriter w;
  w.beginObject();
  w.key("record").value("period");
  w.key("period").value(periods_);
  w.key("timeUs").value(net_.simulator().now().asMicros());
  w.key("flows").beginArray();
  for (const FlowState& fs : snap.flows) {
    w.beginObject();
    w.key("id").value(static_cast<std::int64_t>(fs.id));
    w.key("src").value(fs.src);
    w.key("dst").value(fs.dst);
    w.key("weight").value(fs.weight);
    w.key("hops").value(flowHops_.at(fs.id));
    w.key("desiredPps").value(fs.desiredPps);
    w.key("ratePps").value(fs.ratePps);
    w.key("mu").value(fs.mu());
    if (fs.limitPps) w.key("limitPps").value(*fs.limitPps);
    w.endObject();
  }
  w.endArray();
  w.key("vlinks").beginArray();
  for (const VLinkState& vl : snap.vlinks) {
    w.beginObject();
    w.key("from").value(vl.key.from);
    w.key("to").value(vl.key.to);
    w.key("dest").value(vl.key.dest);
    w.key("type").value(linkTypeName(vl.type));
    w.key("ratePps").value(vl.ratePps);
    w.key("normRate").value(vl.normRate);
    w.key("primaryFlows").beginArray();
    for (const net::FlowId id : vl.primaryFlows) {
      w.value(static_cast<std::int64_t>(id));
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.key("wlinks").beginArray();
  for (const WLinkState& wl : snap.wlinks) {
    w.beginObject();
    w.key("from").value(wl.link.from);
    w.key("to").value(wl.link.to);
    w.key("occupancy").value(wl.occupancy);
    w.key("normRate").value(wl.normRate);
    w.endObject();
  }
  w.endArray();
  w.key("saturatedVnodes").beginArray();
  for (const auto& [nodeDest, sat] : snap.saturated) {
    if (!sat) continue;
    w.beginObject();
    w.key("node").value(nodeDest.first);
    w.key("dest").value(nodeDest.second);
    w.endObject();
  }
  w.endArray();
  w.key("staleNodes").beginArray();
  for (const topo::NodeId n : snap.staleNodes) w.value(n);
  w.endArray();
  w.key("impairedFlows").beginArray();
  for (const net::FlowId id : snap.impairedFlows) {
    w.value(static_cast<std::int64_t>(id));
  }
  w.endArray();
  // Partition fields only when something is actually severed, keeping
  // fault-free period records byte-identical to the pre-§13 format.
  if (snap.partitions > 1 || !snap.quarantinedFlows.empty()) {
    w.key("partitions").value(snap.partitions);
    w.key("quarantinedFlows").beginArray();
    for (const net::FlowId id : snap.quarantinedFlows) {
      w.value(static_cast<std::int64_t>(id));
    }
    w.endArray();
  }
  w.key("decision").beginObject();
  w.key("sourceBufferViolations").value(lastReport_.sourceBufferViolations);
  w.key("bandwidthViolations").value(lastReport_.bandwidthViolations);
  w.key("reduceRequests").value(lastReport_.reduceRequests);
  w.key("increaseRequests").value(lastReport_.increaseRequests);
  w.key("additiveIncreases").value(lastReport_.additiveIncreases);
  w.key("limitsRemoved").value(lastReport_.limitsRemoved);
  w.key("staleDecays").value(lastReport_.staleDecays);
  w.key("commands").value(
      static_cast<std::int64_t>(lastReport_.commands.size()));
  w.endObject();
  w.endObject();
  trace_->writeRecord(w.str());
}

}  // namespace maxmin::gmp
