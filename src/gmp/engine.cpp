#include "gmp/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace maxmin::gmp {

const char* linkTypeName(LinkType t) {
  switch (t) {
    case LinkType::kUnsaturated: return "unsaturated";
    case LinkType::kBufferSaturated: return "buffer-saturated";
    case LinkType::kBandwidthSaturated: return "bandwidth-saturated";
  }
  return "?";
}

LinkType classifyLink(bool senderSaturated, bool receiverSaturated) {
  if (!senderSaturated) return LinkType::kUnsaturated;
  return receiverSaturated ? LinkType::kBufferSaturated
                           : LinkType::kBandwidthSaturated;
}

BetaCompare::BetaCompare(double beta) : beta_{beta} {
  MAXMIN_CHECK(beta >= 0.0 && beta < 1.0);
}

bool BetaCompare::equal(double a, double b) const {
  const double larger = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= beta_ * larger;
}

ContentionStructure ContentionStructure::build(const topo::Topology& topo,
                                               std::vector<topo::Link> links) {
  topo::ConflictGraph graph{topo, std::move(links)};
  ContentionStructure cs;
  cs.links = graph.links();
  cs.cliques = topo::enumerateMaximalCliques(graph);
  cs.cliquesOfLink = topo::cliquesByLink(graph, cs.cliques);
  return cs;
}

int ContentionStructure::linkIndex(topo::Link l) const {
  const auto it = std::lower_bound(links.begin(), links.end(), l);
  if (it == links.end() || *it != l) return -1;
  return static_cast<int>(it - links.begin());
}

Engine::Engine(ContentionStructure contention, GmpParams params)
    : contention_{std::move(contention)}, params_{params}, cmp_{params.beta} {}

double Engine::adjustBase(const FlowState& f) const {
  // Requests scale the flow's current measured rate; floor it so a
  // starved flow can still be lifted.
  return std::max(f.ratePps, params_.minRatePps);
}

DecisionReport Engine::decide(const Snapshot& snapshot) const {
  DecisionReport report;
  RequestMap requests;
  if (snapshot.degraded()) {
    // Graceful degradation: run the unmodified condition checks on the
    // healthy remainder of the network, and only decay the flows whose
    // measurements are ghosts.
    const Snapshot filtered = filterDegraded(snapshot);
    checkSourceAndBufferConditions(filtered, requests, report);
    checkBandwidthCondition(filtered, requests, report);
    resolveRequests(filtered, requests, report);
    decayImpairedFlows(snapshot, report);
    return report;
  }
  checkSourceAndBufferConditions(snapshot, requests, report);
  checkBandwidthCondition(snapshot, requests, report);
  resolveRequests(snapshot, requests, report);
  return report;
}

Snapshot Engine::filterDegraded(const Snapshot& s) const {
  Snapshot out;
  const auto staleNode = [&](topo::NodeId n) { return s.staleNodes.contains(n); };

  for (const FlowState& f : s.flows) {
    if (!s.impairedFlows.contains(f.id)) out.flows.push_back(f);
  }
  for (const VLinkState& vl : s.vlinks) {
    if (staleNode(vl.key.from) || staleNode(vl.key.to) ||
        staleNode(vl.key.dest)) {
      continue;
    }
    VLinkState copy = vl;
    std::erase_if(copy.primaryFlows, [&](net::FlowId id) {
      return s.impairedFlows.contains(id);
    });
    out.vlinks.push_back(std::move(copy));
  }
  for (const WLinkState& wl : s.wlinks) {
    if (!staleNode(wl.link.from) && !staleNode(wl.link.to)) {
      out.wlinks.push_back(wl);
    }
  }
  for (const auto& [nodeDest, sat] : s.saturated) {
    if (!staleNode(nodeDest.first) && !staleNode(nodeDest.second)) {
      out.saturated.emplace(nodeDest, sat);
    }
  }
  return out;
}

void Engine::decayImpairedFlows(const Snapshot& s,
                                DecisionReport& report) const {
  // A flow crossing a stale node may be pushing packets into a black
  // hole at its old equilibrium rate. Freezing the limit would hold that
  // equilibrium on ghost data; removing it would let the source flood.
  // Multiplicative decay toward the floor frees the bandwidth quickly
  // while leaving a probe rate alive to notice recovery.
  for (const FlowState& f : s.flows) {
    if (!s.impairedFlows.contains(f.id)) continue;
    const double base =
        f.limitPps ? *f.limitPps : std::max(f.ratePps, params_.minRatePps);
    const double target =
        std::max(params_.minRatePps, base * params_.staleDecayFactor);
    report.commands.push_back(Command{f.id, Command::Kind::kSetLimit, target});
    ++report.staleDecays;
    MAXMIN_COUNT("gmp.adjust.stale_decay", 1);
  }
}

namespace {

const FlowState* findFlow(const Snapshot& s, net::FlowId id) {
  for (const FlowState& f : s.flows) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Source condition + buffer-saturated condition (§5.3, tested as in §6.3)
// ---------------------------------------------------------------------------
//
// For every saturated virtual node i_t:
//   L1 = max mu over { upstream virtual links of i_t, local flows at i_t }
//   S1 = min mu over { local flows at i_t, buffer-saturated upstream links }
// The conditions hold iff S1 == L1 (beta-equal). Otherwise the node asks
// the mu==L1 parties to reduce and the mu==S1 buffer-saturated/local
// parties to increase, by halving/doubling while the gap is wide
// (L1 > bigGap*S1) and by beta-percentage steps once it is narrow.

void Engine::checkSourceAndBufferConditions(const Snapshot& s,
                                            RequestMap& requests,
                                            DecisionReport& report) const {
  for (const auto& [nodeDest, saturated] : s.saturated) {
    if (!saturated) continue;
    const auto [node, dest] = nodeDest;

    // Gather this virtual node's upstream links and local flows.
    std::vector<const VLinkState*> upstream;
    for (const VLinkState& vl : s.vlinks) {
      if (vl.key.to == node && vl.key.dest == dest) upstream.push_back(&vl);
    }
    std::vector<const FlowState*> localFlows;
    for (const FlowState& f : s.flows) {
      if (f.src == node && f.dst == dest) localFlows.push_back(&f);
    }

    double l1 = -std::numeric_limits<double>::infinity();
    for (const VLinkState* vl : upstream) l1 = std::max(l1, vl->normRate);
    for (const FlowState* f : localFlows) l1 = std::max(l1, f->mu());

    double s1 = std::numeric_limits<double>::infinity();
    for (const FlowState* f : localFlows) s1 = std::min(s1, f->mu());
    for (const VLinkState* vl : upstream) {
      if (vl->type == LinkType::kBufferSaturated)
        s1 = std::min(s1, vl->normRate);
    }

    if (!std::isfinite(l1) || !std::isfinite(s1)) continue;  // nothing to equalize
    if (cmp_.equal(s1, l1)) continue;                        // satisfied
    ++report.sourceBufferViolations;
    MAXMIN_COUNT("gmp.violations.source_buffer", 1);

    const bool wideGap = l1 > params_.bigGapFactor * s1;
    const double reduceFactor = wideGap ? 0.5 : 1.0 - params_.beta;
    const double increaseFactor = wideGap ? 2.0 : 1.0 + params_.beta;

    // One call site per metric name: the instrumentation macros cache
    // their registry handle in a per-site static, so the counter picked
    // must be compile-time fixed at each site.
    auto countReduce = [&] {
      if (wideGap) {
        MAXMIN_COUNT("gmp.adjust.halve", 1);
      } else {
        MAXMIN_COUNT("gmp.adjust.beta_down", 1);
      }
    };
    auto countIncrease = [&] {
      if (wideGap) {
        MAXMIN_COUNT("gmp.adjust.double", 1);
      } else {
        MAXMIN_COUNT("gmp.adjust.beta_up", 1);
      }
    };
    auto reducePrimaries = [&](const VLinkState& vl) {
      for (net::FlowId id : vl.primaryFlows) {
        if (const FlowState* f = findFlow(s, id)) {
          requests[id].push_back(Request{true, adjustBase(*f) * reduceFactor});
          ++report.reduceRequests;
          countReduce();
        }
      }
    };
    auto increasePrimaries = [&](const VLinkState& vl) {
      for (net::FlowId id : vl.primaryFlows) {
        const FlowState* f = findFlow(s, id);
        if (f != nullptr && f->limitPps.has_value()) {
          requests[id].push_back(
              Request{false, adjustBase(*f) * increaseFactor});
          ++report.increaseRequests;
          countIncrease();
        }
      }
    };

    for (const VLinkState* vl : upstream) {
      if (cmp_.equal(vl->normRate, l1)) reducePrimaries(*vl);
      if (vl->type == LinkType::kBufferSaturated &&
          cmp_.equal(vl->normRate, s1)) {
        increasePrimaries(*vl);
      }
    }
    for (const FlowState* f : localFlows) {
      if (cmp_.equal(f->mu(), l1)) {
        requests[f->id].push_back(Request{true, adjustBase(*f) * reduceFactor});
        ++report.reduceRequests;
        countReduce();
      }
      if (cmp_.equal(f->mu(), s1) && f->limitPps.has_value()) {
        requests[f->id].push_back(
            Request{false, adjustBase(*f) * increaseFactor});
        ++report.increaseRequests;
        countIncrease();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Bandwidth-saturated condition (§5.3, tested as in §6.3)
// ---------------------------------------------------------------------------
//
// For each wireless link (i,j) with a bandwidth-saturated virtual link:
// take its bandwidth-saturated virtual link with the smallest mu; treat
// the cliques of (i,j) with the largest channel occupancy as saturated.
// The condition holds iff that mu is the largest normalized rate in at
// least one saturated clique. Otherwise every link in those saturated
// cliques reduces primaries at L2 (the cliques' largest wireless-link mu)
// by beta, and raises bandwidth-saturated virtual links whose mu equals
// the deprived link's mu by beta.

void Engine::checkBandwidthCondition(const Snapshot& s, RequestMap& requests,
                                     DecisionReport& report) const {
  // Index the snapshot.
  std::map<topo::Link, std::vector<const VLinkState*>> vlinksByWireless;
  for (const VLinkState& vl : s.vlinks) {
    vlinksByWireless[vl.key.wireless()].push_back(&vl);
  }
  std::map<topo::Link, const WLinkState*> wlinkByLink;
  for (const WLinkState& wl : s.wlinks) wlinkByLink[wl.link] = &wl;

  // Clique channel occupancies (sum over member links present in the
  // snapshot; absent links contribute zero airtime).
  std::vector<double> cliqueOccupancy(contention_.cliques.size(), 0.0);
  for (std::size_t c = 0; c < contention_.cliques.size(); ++c) {
    for (int li : contention_.cliques[c].linkIndices) {
      const topo::Link l = contention_.links[static_cast<std::size_t>(li)];
      if (const auto it = wlinkByLink.find(l); it != wlinkByLink.end()) {
        cliqueOccupancy[c] += it->second->occupancy;
      }
    }
  }

  for (const auto& [wireless, vlinks] : vlinksByWireless) {
    // Smallest-mu bandwidth-saturated virtual link of this wireless link.
    const VLinkState* deprived = nullptr;
    for (const VLinkState* vl : vlinks) {
      if (vl->type != LinkType::kBandwidthSaturated) continue;
      if (deprived == nullptr || vl->normRate < deprived->normRate)
        deprived = vl;
    }
    if (deprived == nullptr) continue;

    const int li = contention_.linkIndex(wireless);
    MAXMIN_CHECK_MSG(li >= 0, "snapshot link " << wireless
                                               << " not in contention structure");
    const auto& cliqueIdxs =
        contention_.cliquesOfLink[static_cast<std::size_t>(li)];
    MAXMIN_CHECK(!cliqueIdxs.empty());

    // Saturated cliques: those whose occupancy beta-equals the maximum.
    double maxOcc = 0.0;
    for (int c : cliqueIdxs) {
      maxOcc = std::max(maxOcc, cliqueOccupancy[static_cast<std::size_t>(c)]);
    }
    std::vector<int> saturatedCliques;
    for (int c : cliqueIdxs) {
      if (cmp_.equal(cliqueOccupancy[static_cast<std::size_t>(c)], maxOcc)) {
        saturatedCliques.push_back(c);
      }
    }

    // Does the deprived virtual link top at least one saturated clique?
    auto cliqueMaxMu = [&](int c) {
      double m = 0.0;
      for (int memberIdx : contention_.cliques[static_cast<std::size_t>(c)]
                               .linkIndices) {
        const topo::Link member =
            contention_.links[static_cast<std::size_t>(memberIdx)];
        if (const auto it = wlinkByLink.find(member); it != wlinkByLink.end())
          m = std::max(m, it->second->normRate);
      }
      return m;
    };
    bool satisfiedSomewhere = false;
    double l2 = 0.0;
    for (int c : saturatedCliques) {
      const double m = cliqueMaxMu(c);
      l2 = std::max(l2, m);
      if (!cmp_.smaller(deprived->normRate, m)) satisfiedSomewhere = true;
    }
    if (satisfiedSomewhere) continue;
    ++report.bandwidthViolations;
    MAXMIN_COUNT("gmp.violations.bandwidth", 1);

    // Collect the member links of all saturated cliques.
    std::vector<topo::Link> members;
    for (int c : saturatedCliques) {
      for (int memberIdx : contention_.cliques[static_cast<std::size_t>(c)]
                               .linkIndices) {
        members.push_back(
            contention_.links[static_cast<std::size_t>(memberIdx)]);
      }
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());

    for (const topo::Link& km : members) {
      const auto it = vlinksByWireless.find(km);
      if (it == vlinksByWireless.end()) continue;
      for (const VLinkState* vl : it->second) {
        if (cmp_.equal(vl->normRate, l2)) {
          for (net::FlowId id : vl->primaryFlows) {
            if (const FlowState* f = findFlow(s, id)) {
              requests[id].push_back(
                  Request{true, adjustBase(*f) * (1.0 - params_.beta)});
              ++report.reduceRequests;
              MAXMIN_COUNT("gmp.adjust.beta_down", 1);
            }
          }
        }
        if (vl->type == LinkType::kBandwidthSaturated &&
            cmp_.equal(vl->normRate, deprived->normRate)) {
          for (net::FlowId id : vl->primaryFlows) {
            const FlowState* f = findFlow(s, id);
            if (f != nullptr && f->limitPps.has_value()) {
              requests[id].push_back(
                  Request{false, adjustBase(*f) * (1.0 + params_.beta)});
              ++report.increaseRequests;
              MAXMIN_COUNT("gmp.adjust.beta_up", 1);
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Request resolution (control-packet sweep, §6.3) + rate-limit condition
// ---------------------------------------------------------------------------
//
// The control packet keeps a single request per flow: any reduction
// discards all increases, and among reductions the largest one (smallest
// target) wins; among increases the smallest wins.
//
// For sources with a rate limit and no request at all:
//   * limit binding (actual rate beta-equal to it): additively probe
//     upward (rate-limit condition);
//   * limit slack and the source's virtual node unsaturated: the limit is
//     genuinely unnecessary — remove it (§6.3);
//   * limit slack but the source's virtual node saturated: keep it. The
//     flow shares a congested queue with relayed traffic, and an ungated
//     local source refills every freed buffer slot ahead of upstream
//     senders, so dropping the limit here would let the local flow
//     capture the queue and defeat the equalization the conditions just
//     established.

void Engine::resolveRequests(const Snapshot& s, const RequestMap& requests,
                             DecisionReport& report) const {
  for (const FlowState& f : s.flows) {
    const auto it = requests.find(f.id);
    if (it != requests.end() && !it->second.empty()) {
      bool anyReduce = false;
      double reduceTarget = std::numeric_limits<double>::infinity();
      double increaseTarget = std::numeric_limits<double>::infinity();
      for (const Request& r : it->second) {
        if (r.reduce) {
          anyReduce = true;
          reduceTarget = std::min(reduceTarget, r.targetPps);
        } else {
          increaseTarget = std::min(increaseTarget, r.targetPps);
        }
      }
      if (anyReduce) {
        const double limit = std::max(reduceTarget, params_.minRatePps);
        report.commands.push_back(
            Command{f.id, Command::Kind::kSetLimit, limit});
      } else {
        // An increase never tightens an existing limit.
        double limit = increaseTarget;
        if (f.limitPps) limit = std::max(limit, *f.limitPps);
        report.commands.push_back(
            Command{f.id, Command::Kind::kSetLimit, limit});
      }
      continue;
    }

    if (!f.limitPps.has_value()) continue;

    const bool binding = !cmp_.smaller(f.ratePps, *f.limitPps);
    if (binding) {
      // Rate-limit condition: probe upward.
      report.commands.push_back(Command{
          f.id, Command::Kind::kSetLimit,
          *f.limitPps + params_.additiveIncreasePps});
      ++report.additiveIncreases;
      MAXMIN_COUNT("gmp.adjust.additive", 1);
    } else {
      const auto satIt = s.saturated.find({f.src, f.dst});
      const bool sourceSaturated = satIt != s.saturated.end() && satIt->second;
      const bool clearlySlack =
          f.ratePps < *f.limitPps * params_.removeLimitSlackFactor;
      if (!sourceSaturated && clearlySlack) {
        report.commands.push_back(Command{f.id, Command::Kind::kRemoveLimit});
        ++report.limitsRemoved;
        MAXMIN_COUNT("gmp.adjust.remove_limit", 1);
      }
    }
  }
}

}  // namespace maxmin::gmp
