#include "gmp/partition.hpp"

namespace maxmin::gmp {

ReachabilitySummary computeReachability(const topo::Topology& topo,
                                        const sim::FaultPlane* faults) {
  const std::int32_t n = topo.numNodes();
  ReachabilitySummary out;
  out.component.assign(static_cast<std::size_t>(n), -1);

  std::vector<topo::NodeId> frontier;
  frontier.reserve(static_cast<std::size_t>(n));
  for (topo::NodeId start = 0; start < n; ++start) {
    if (out.component[static_cast<std::size_t>(start)] != -1) continue;
    if (faults != nullptr && !faults->nodeUp(start)) continue;
    const std::int32_t label = out.components++;
    out.component[static_cast<std::size_t>(start)] = label;
    frontier.assign(1, start);
    while (!frontier.empty()) {
      const topo::NodeId u = frontier.back();
      frontier.pop_back();
      for (const topo::NodeId v : topo.neighbors(u)) {
        if (out.component[static_cast<std::size_t>(v)] != -1) continue;
        if (faults != nullptr &&
            (!faults->nodeUp(v) || !faults->linkUp(u, v))) {
          continue;
        }
        out.component[static_cast<std::size_t>(v)] = label;
        frontier.push_back(v);
      }
    }
  }
  return out;
}

}  // namespace maxmin::gmp
