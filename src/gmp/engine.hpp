// The GMP decision engine: tests the four local conditions of §5.3
// against a period Snapshot and emits the rate-limit commands the paper's
// rate-adjustment machinery (§6.3) would deliver to flow sources.
//
// The engine is deliberately substrate-agnostic — it never touches the
// simulator. Both the packet-level controller (gmp/controller.hpp) and
// the fluid-model harness (fluid/) drive the same engine, which is what
// lets fast property tests exercise the exact production decision logic.
#pragma once

#include <map>
#include <vector>

#include "gmp/types.hpp"
#include "topology/cliques.hpp"
#include "topology/conflict_graph.hpp"

namespace maxmin::gmp {

/// Static contention structure shared by all periods: the conflict graph
/// over the network's active wireless links and its maximal cliques
/// (paper §3.3; precomputed from 2-hop topology after deployment, §6.3).
struct ContentionStructure {
  std::vector<topo::Link> links;                  ///< sorted
  std::vector<topo::Clique> cliques;              ///< over indices in links
  std::vector<std::vector<int>> cliquesOfLink;    ///< link idx -> clique idxs

  static ContentionStructure build(const topo::Topology& topo,
                                   std::vector<topo::Link> links);

  [[nodiscard]] int linkIndex(topo::Link l) const;
};

class Engine {
 public:
  Engine(ContentionStructure contention, GmpParams params);

  const GmpParams& params() const { return params_; }

  /// Run one adjustment period against the measured snapshot.
  [[nodiscard]] DecisionReport decide(const Snapshot& snapshot) const;

 private:
  struct Request {
    bool reduce = false;
    double targetPps = 0.0;
  };
  using RequestMap = std::map<net::FlowId, std::vector<Request>>;

  void checkSourceAndBufferConditions(const Snapshot& s, RequestMap& requests,
                                      DecisionReport& report) const;
  void checkBandwidthCondition(const Snapshot& s, RequestMap& requests,
                               DecisionReport& report) const;
  void resolveRequests(const Snapshot& s, const RequestMap& requests,
                       DecisionReport& report) const;

  /// Strip everything touched by stale nodes / impaired flows so the
  /// condition checks never act on ghost measurements; the dropped flows
  /// are handled by decayImpairedFlows instead.
  [[nodiscard]] Snapshot filterDegraded(const Snapshot& s) const;
  void decayImpairedFlows(const Snapshot& s, DecisionReport& report) const;

  [[nodiscard]] double adjustBase(const FlowState& f) const;

  ContentionStructure contention_;
  GmpParams params_;
  BetaCompare cmp_;
};

}  // namespace maxmin::gmp
