#include "gmp/neighborhood.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace maxmin::gmp {
namespace {

bool adjacentTo(const topo::Link& l, topo::NodeId node) {
  return l.from == node || l.to == node;
}

std::set<std::vector<topo::Link>> cliquesAsLinkSets(
    const topo::ConflictGraph& graph, const std::vector<topo::Clique>& cliques,
    topo::NodeId mustTouch) {
  std::set<std::vector<topo::Link>> sets;
  for (const topo::Clique& c : cliques) {
    std::vector<topo::Link> links;
    bool touches = false;
    for (int idx : c.linkIndices) {
      const topo::Link& l = graph.links()[static_cast<std::size_t>(idx)];
      links.push_back(l);
      touches = touches || adjacentTo(l, mustTouch);
    }
    if (!touches) continue;
    std::sort(links.begin(), links.end());
    sets.insert(std::move(links));
  }
  return sets;
}

}  // namespace

std::vector<topo::Link> LocalView::cliqueLinks(int index) const {
  MAXMIN_CHECK(index >= 0 && index < static_cast<int>(cliques.size()));
  std::vector<topo::Link> links;
  for (int idx : cliques[static_cast<std::size_t>(index)].linkIndices) {
    links.push_back(knownLinks.at(static_cast<std::size_t>(idx)));
  }
  return links;
}

LocalView buildLocalView(const topo::Topology& topo, topo::NodeId self,
                         const std::vector<topo::Link>& activeLinks) {
  LocalView view;
  view.self = self;
  view.members = topo.twoHopNeighborhood(self);
  view.members.insert(
      std::lower_bound(view.members.begin(), view.members.end(), self), self);

  const std::set<topo::NodeId> memberSet{view.members.begin(),
                                         view.members.end()};
  for (const topo::Link& l : activeLinks) {
    if (memberSet.contains(l.from) && memberSet.contains(l.to)) {
      view.knownLinks.push_back(l);
    }
  }
  std::sort(view.knownLinks.begin(), view.knownLinks.end());

  if (view.knownLinks.empty()) return view;
  const topo::ConflictGraph graph{topo, view.knownLinks};
  MAXMIN_CHECK(graph.links() == view.knownLinks);  // both sorted

  for (topo::Clique& c : topo::enumerateMaximalCliques(graph)) {
    const bool touchesSelf = std::any_of(
        c.linkIndices.begin(), c.linkIndices.end(), [&](int idx) {
          return adjacentTo(view.knownLinks[static_cast<std::size_t>(idx)],
                            self);
        });
    if (touchesSelf) view.cliques.push_back(std::move(c));
  }
  return view;
}

bool localViewIsExact(const topo::Topology& topo,
                      const std::vector<topo::Link>& activeLinks,
                      const LocalView& view) {
  const topo::ConflictGraph global{topo, activeLinks};
  const auto globalCliques = topo::enumerateMaximalCliques(global);
  const auto expected = cliquesAsLinkSets(global, globalCliques, view.self);

  std::set<std::vector<topo::Link>> actual;
  for (int i = 0; i < static_cast<int>(view.cliques.size()); ++i) {
    auto links = view.cliqueLinks(i);
    std::sort(links.begin(), links.end());
    actual.insert(std::move(links));
  }
  return actual == expected;
}

}  // namespace maxmin::gmp
