// Drives the GMP engine over a live packet-level network: the
// measurement/adjustment period loop of §6.
//
// Each period boundary it (a) closes every node's measurement window,
// (b) assembles the Snapshot exactly as the nodes' own measurements and
// the 2-hop dissemination protocol would, (c) runs the four-condition
// engine, and (d) applies the resulting rate-limit commands at the flow
// sources and re-stamps each source's normalized rate for piggybacking.
//
// Control signalling is delivered out-of-band (see DESIGN.md §2,
// substitution 3): the paper's control traffic is a handful of tiny
// packets per node per 4-second period, negligible against saturated
// data traffic.
#pragma once

#include <map>
#include <vector>

#include "gmp/engine.hpp"
#include "net/network.hpp"
#include "sim/timer.hpp"

namespace maxmin::gmp {

class Controller {
 public:
  Controller(net::Network& net, GmpParams params);

  /// Begin the period loop (first adjustment after one full period).
  void start();
  void stop() { timer_.stop(); }

  int periodsRun() const { return periods_; }
  const DecisionReport& lastReport() const { return lastReport_; }
  const Snapshot& lastSnapshot() const { return lastSnapshot_; }
  const ContentionStructure& contention() const { return contention_; }

  /// Total condition violations seen in each period, oldest first. A
  /// converged run trends to (and hovers near) zero.
  const std::vector<int>& violationHistory() const {
    return violationHistory_;
  }

  /// Per-period measured flow rates (pkts/s), oldest first — the raw
  /// material for convergence analysis (analysis/convergence.hpp).
  const std::vector<std::map<net::FlowId, double>>& rateHistory() const {
    return rateHistory_;
  }

  /// Assemble a snapshot from the current measurement windows without
  /// adjusting anything (also used by tests).
  Snapshot takeSnapshot();

 private:
  void tick();

  net::Network& net_;
  GmpParams params_;
  ContentionStructure contention_;
  Engine engine_;
  sim::PeriodicTimer timer_;

  /// All virtual links any flow traverses, with the flows on each.
  std::map<VirtualLinkKey, std::vector<net::FlowId>> flowsOnVlink_;
  /// All (node, dest) virtual nodes on any flow path (dest excluded).
  std::vector<std::pair<topo::NodeId, topo::NodeId>> virtualNodes_;

  Snapshot lastSnapshot_;
  DecisionReport lastReport_;
  std::vector<int> violationHistory_;
  std::vector<std::map<net::FlowId, double>> rateHistory_;
  int periods_ = 0;
};

}  // namespace maxmin::gmp
