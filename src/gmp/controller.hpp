// Drives the GMP engine over a live packet-level network: the
// measurement/adjustment period loop of §6.
//
// Each period boundary it (a) closes every node's measurement window,
// (b) assembles the Snapshot exactly as the nodes' own measurements and
// the 2-hop dissemination protocol would, (c) runs the four-condition
// engine, and (d) applies the resulting rate-limit commands at the flow
// sources and re-stamps each source's normalized rate for piggybacking.
//
// Control signalling is delivered out-of-band (see DESIGN.md §2,
// substitution 3): the paper's control traffic is a handful of tiny
// packets per node per 4-second period, negligible against saturated
// data traffic.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "gmp/engine.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "sim/fault_plane.hpp"
#include "sim/timer.hpp"

namespace maxmin::gmp {

class Controller {
 public:
  Controller(net::Network& net, GmpParams params);

  /// Begin the period loop (first adjustment after one full period).
  void start();
  void stop() {
    timer_.stop();
    assembleTimer_.cancel();
    for (auto& t : skewTimers_) t->cancel();
  }

  [[nodiscard]] int periodsRun() const { return periods_; }
  const DecisionReport& lastReport() const { return lastReport_; }
  const Snapshot& lastSnapshot() const { return lastSnapshot_; }
  const ContentionStructure& contention() const { return contention_; }

  /// Attach a structured trace sink (not owned; may be nullptr to
  /// detach). Period records — and with TraceLevel::kEvent the
  /// per-decision events — are appended at every period boundary.
  void setTraceSink(obs::TraceSink* sink) { trace_ = sink; }

  /// Total condition violations seen in each period, oldest first. A
  /// converged run trends to (and hovers near) zero.
  const std::vector<int>& violationHistory() const {
    return violationHistory_;
  }

  /// Per-period measured flow rates (pkts/s), oldest first — the raw
  /// material for convergence analysis (analysis/convergence.hpp).
  const std::vector<std::map<net::FlowId, double>>& rateHistory() const {
    return rateHistory_;
  }

  /// Assemble a snapshot from the current measurement windows without
  /// adjusting anything (also used by tests).
  Snapshot takeSnapshot();

  /// Import externally-synthesized per-node measurements (the hybrid
  /// fast-forward injection, DESIGN.md §16): seeds the staleness-bridging
  /// cache as if period 0 had measured them, so a node whose first real
  /// window comes up empty bridges from the fluid estimate instead of
  /// going stale. Must be called before any period has run.
  void warmStart(const std::vector<net::NodePeriodMeasurement>& perNode);

  /// Invoked at the end of every adjustment period with the snapshot the
  /// engine just acted on and the period index (the hybrid engine's
  /// re-linearization hook; pass nullptr to detach).
  void setPeriodHook(std::function<void(const Snapshot&, int)> hook) {
    periodHook_ = std::move(hook);
  }

  // --- robustness diagnostics (fault runs; all zero otherwise) -------------
  /// Periods in which a node's cached measurement stood in for a missing
  /// or empty one (within the staleness TTL).
  [[nodiscard]] std::int64_t staleMeasurementsUsed() const { return staleMeasurementsUsed_; }
  /// Rate limits restored to their pre-fault value after a path recovered.
  [[nodiscard]] std::int64_t limitsRestored() const { return limitsRestored_; }
  /// Periods whose measurement closes were staggered by clock skew.
  [[nodiscard]] std::int64_t skewedPeriods() const { return skewedPeriods_; }
  /// Nodes whose last good measurement is currently cached (bridgeable).
  /// Entries are pruned once they age past the staleness TTL.
  [[nodiscard]] std::size_t cachedMeasurements() const;
  /// Periods during which the alive graph was partitioned or some flow
  /// path was severed by a cut link.
  [[nodiscard]] std::int64_t partitionedPeriods() const { return partitionedPeriods_; }
  /// Flow-periods spent quarantined (path crossing a cut link).
  [[nodiscard]] std::int64_t flowsQuarantined() const { return flowsQuarantined_; }
  /// Per-period component id of each flow's source, oldest first —
  /// feeds analysis::analyzeDisruption's per-partition fairness.
  const std::vector<std::map<net::FlowId, std::int32_t>>& partitionHistory()
      const {
    return partitionHistory_;
  }

 private:
  void tick();
  /// Stagger each node's window close by its clock skew, then assemble.
  void beginSkewedClose(const sim::FaultPlane& faults);
  /// Build the Snapshot from per-node measurements (indexed by NodeId,
  /// each with its own period length), substituting cached values for
  /// nodes without a usable window and marking expired ones stale.
  Snapshot assembleSnapshot(std::vector<net::NodePeriodMeasurement>& meas);
  /// Everything tick() does after the snapshot exists: decide, apply,
  /// restore recovered flows, record histories.
  void finishPeriod(Snapshot snapshot);
  /// Append this period's JSONL record (and, at kEvent level, one record
  /// per applied command) to the attached trace sink.
  void emitPeriodTrace();

  net::Network& net_;
  GmpParams params_;
  ContentionStructure contention_;
  Engine engine_;
  sim::PeriodicTimer timer_;
  sim::Timer assembleTimer_;
  std::vector<std::unique_ptr<sim::Timer>> skewTimers_;
  obs::TraceSink* trace_ = nullptr;
  std::function<void(const Snapshot&, int)> periodHook_;

  /// All virtual links any flow traverses, with the flows on each.
  std::map<VirtualLinkKey, std::vector<net::FlowId>> flowsOnVlink_;
  /// All (node, dest) virtual nodes on any flow path (dest excluded).
  std::vector<std::pair<topo::NodeId, topo::NodeId>> virtualNodes_;
  /// Hop count of each flow's path (trace records carry it so replay
  /// can recompute the paper's hop-weighted indices).
  std::map<net::FlowId, int> flowHops_;

  Snapshot lastSnapshot_;
  DecisionReport lastReport_;
  std::vector<int> violationHistory_;
  std::vector<std::map<net::FlowId, double>> rateHistory_;
  int periods_ = 0;

  // --- graceful-degradation state (untouched in fault-free runs) -----------
  // Nodes are dense ids 0..numNodes, so the per-node stores are plain
  // vectors indexed by NodeId (the per-period map was all rb-tree walks).
  /// Measurements collected so far in a skew-staggered period.
  std::vector<net::NodePeriodMeasurement> pendingMeas_;
  /// Last measurement taken while the node had a usable window, and the
  /// period index it was taken in (-1 = none cached).
  std::vector<net::NodePeriodMeasurement> lastGoodMeas_;
  std::vector<int> lastGoodPeriod_;
  /// Flows impaired in the previous period, and the limit each carried
  /// just before its path went stale (nullopt = was unlimited).
  std::set<net::FlowId> impairedPrev_;
  std::map<net::FlowId, std::optional<double>> preImpairmentLimit_;
  std::vector<std::map<net::FlowId, std::int32_t>> partitionHistory_;
  std::int64_t staleMeasurementsUsed_ = 0;
  std::int64_t limitsRestored_ = 0;
  std::int64_t skewedPeriods_ = 0;
  std::int64_t partitionedPeriods_ = 0;
  std::int64_t flowsQuarantined_ = 0;
};

}  // namespace maxmin::gmp
