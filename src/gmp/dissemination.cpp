#include "gmp/dissemination.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "topology/dominating_set.hpp"
#include "util/check.hpp"

namespace maxmin::gmp {

DataSize LinkStateDissemination::messageSize(std::size_t states) {
  // origin + seq + count (8 B) plus 12 B per entry (two node ids, two
  // quantized values) — a deliberately compact wire format.
  return DataSize::bytes(8 + 12 * static_cast<std::int64_t>(states));
}

bool LinkStateDissemination::seqNewer(std::int64_t a, std::int64_t b) {
  // RFC 1982 serial-number arithmetic: a is newer than b iff it lies in
  // the half of the sequence space "ahead" of b. Survives wraparound:
  // seq 3 is newer than seq 65534.
  const std::int64_t d = ((a - b) % kSeqModulus + kSeqModulus) % kSeqModulus;
  return d != 0 && d < kSeqModulus / 2;
}

LinkStateDissemination::LinkStateDissemination(net::Network& net) : net_{net} {
  const int n = net.topology().numNodes();
  relays_.reserve(static_cast<std::size_t>(n));
  for (topo::NodeId id = 0; id < n; ++id) {
    relays_.push_back(topo::computeDominatingSet(net.topology(), id));
  }
  stores_.assign(static_cast<std::size_t>(n), {});
  heardAt_.assign(static_cast<std::size_t>(n), {});
  seen_.assign(static_cast<std::size_t>(n), {});
  latest_.assign(static_cast<std::size_t>(n), {});
  for (topo::NodeId id = 0; id < n; ++id) {
    net_.stack(id).setControlHandler(
        [this, id](const phys::Frame& frame) { onControl(id, frame); });
  }
  attachFaultPlane();
}

void LinkStateDissemination::attachFaultPlane() {
  if (faults_ != nullptr) return;
  faults_ = net_.faultPlane();
  if (faults_ != nullptr) faults_->addListener(this);
}

void LinkStateDissemination::enableReliability(const ReliabilityParams& params) {
  MAXMIN_CHECK(params.maxRetransmits >= 0);
  MAXMIN_CHECK(params.ackTimeout > Duration::zero());
  MAXMIN_CHECK(params.backoffFactor >= 1.0 && params.jitterFrac >= 0.0);
  reliability_ = params;
  if (!rng_) rng_.emplace(Rng{net_.config().seed}.stream("dissemination"));
}

bool LinkStateDissemination::nodeAlive(topo::NodeId n) const {
  return faults_ == nullptr || faults_->nodeUp(n);
}

bool LinkStateDissemination::linkAlive(topo::NodeId a, topo::NodeId b) const {
  return faults_ == nullptr || faults_->linkUp(a, b);
}

std::vector<topo::NodeId> LinkStateDissemination::expectedEchoes(
    topo::NodeId origin) const {
  std::vector<topo::NodeId> expected;
  for (const topo::NodeId r : relays_.at(static_cast<std::size_t>(origin))) {
    if (nodeAlive(r) && linkAlive(origin, r)) expected.push_back(r);
  }
  return expected;
}

// ---------------------------------------------------------------------------
// Dominating-set repair
// ---------------------------------------------------------------------------

void LinkStateDissemination::repairCenters(
    const std::vector<topo::NodeId>& centers) {
  const topo::Topology& topo = net_.topology();
  std::vector<char> alive(static_cast<std::size_t>(topo.numNodes()), 1);
  for (topo::NodeId n = 0; n < topo.numNodes(); ++n) {
    alive[static_cast<std::size_t>(n)] = faults_->nodeUp(n) ? 1 : 0;
  }
  const auto link = [this](topo::NodeId a, topo::NodeId b) {
    return faults_->linkUp(a, b);
  };
  for (const topo::NodeId c : centers) {
    auto repaired = topo::computeDominatingSet(topo, c, alive, link);
    auto& current = relays_.at(static_cast<std::size_t>(c));
    if (repaired == current) continue;
    current = std::move(repaired);
    ++relayRepairs_;
    MAXMIN_COUNT("gmp.relay_repairs", 1);
    if (trace_ != nullptr && trace_->wantsEvents()) {
      obs::JsonWriter w;
      w.beginObject();
      w.key("record").value("relay_repair");
      w.key("timeUs").value(net_.now().asMicros());
      w.key("center").value(c);
      w.key("relays").beginArray();
      for (const topo::NodeId r : current) w.value(r);
      w.endArray();
      w.endObject();
      trace_->writeRecord(w.str());
    }
  }
}

void LinkStateDissemination::onNodeDown(std::int32_t node) {
  if (!repairEnabled_ || faults_ == nullptr) return;
  std::vector<topo::NodeId> centers{node};
  const auto& scope = net_.topology().twoHopNeighborhood(node);
  centers.insert(centers.end(), scope.begin(), scope.end());
  repairCenters(centers);
}

void LinkStateDissemination::onNodeUp(std::int32_t node) { onNodeDown(node); }

void LinkStateDissemination::onLinkChanged(std::int32_t a, std::int32_t b,
                                           bool /*up*/) {
  if (!repairEnabled_ || faults_ == nullptr) return;
  std::set<topo::NodeId> centers{a, b};
  for (const topo::NodeId n : net_.topology().twoHopNeighborhood(a)) {
    centers.insert(n);
  }
  for (const topo::NodeId n : net_.topology().twoHopNeighborhood(b)) {
    centers.insert(n);
  }
  repairCenters({centers.begin(), centers.end()});
}

// ---------------------------------------------------------------------------
// Announce / receive
// ---------------------------------------------------------------------------

void LinkStateDissemination::announce(topo::NodeId origin,
                                      std::vector<LinkStateAd> states) {
  auto msg = std::make_shared<LinkStateMessage>();
  msg->origin = origin;
  msg->seq = nextSeq_[origin] % kSeqModulus;
  nextSeq_[origin] = (msg->seq + 1) % kSeqModulus;
  msg->states = std::move(states);

  // The origin knows its own announcement.
  recordState(origin, *msg);
  seen_.at(static_cast<std::size_t>(origin)).insert({origin, msg->seq});
  latest_.at(static_cast<std::size_t>(origin))[origin] =
      OriginFreshness{msg->seq, net_.now()};

  const DataSize size = messageSize(msg->states.size());
  if (reliability_) {
    // Track the announcement until every currently-alive relay has been
    // overheard echoing it (or the retransmit budget runs out).
    const auto expected = expectedEchoes(origin);
    if (!expected.empty()) {
      const PendingKey key{origin, msg->seq};
      PendingAck& p = pending_[key];
      p.msg = msg;
      p.attempts = 0;
      p.acked.clear();
      p.wait = reliability_->ackTimeout;
      if (!p.timer) p.timer = std::make_unique<sim::Timer>(net_.simulator());
      armPendingTimer(key);
    }
  }
  net_.macOf(origin).enqueueBroadcast(std::move(msg), size);
  ++messagesSent_;
}

void LinkStateDissemination::armPendingTimer(const PendingKey& key) {
  PendingAck& p = pending_.at(key);
  const double jitter =
      1.0 + reliability_->jitterFrac * rng_->uniformReal(0.0, 1.0);
  const Duration wait = Duration::seconds(p.wait.asSeconds() * jitter);
  p.timer->arm(wait, [this, key] { onAckTimeout(key); });
}

void LinkStateDissemination::onAckTimeout(const PendingKey& key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  PendingAck& p = it->second;
  const topo::NodeId origin = key.first;
  if (!nodeAlive(origin)) {
    pending_.erase(it);  // a dead origin retransmits nothing
    return;
  }
  // Re-evaluate against the *current* relay set: repair may have removed
  // a dead relay (whose echo will never come) or added a new one.
  const auto expected = expectedEchoes(origin);
  const bool missing =
      std::any_of(expected.begin(), expected.end(), [&](topo::NodeId r) {
        return !p.acked.contains(r);
      });
  if (!missing) {
    pending_.erase(it);
    return;
  }
  if (p.attempts >= reliability_->maxRetransmits) {
    ++deliveryFailures_;
    MAXMIN_COUNT("gmp.delivery_failures", 1);
    if (trace_ != nullptr && trace_->wantsEvents()) {
      obs::JsonWriter w;
      w.beginObject();
      w.key("record").value("delivery_failure");
      w.key("timeUs").value(net_.now().asMicros());
      w.key("origin").value(origin);
      w.key("seq").value(key.second);
      w.endObject();
      trace_->writeRecord(w.str());
    }
    pending_.erase(it);
    return;
  }
  ++p.attempts;
  ++retransmits_;
  MAXMIN_COUNT("gmp.retransmits", 1);
  if (trace_ != nullptr && trace_->wantsEvents()) {
    obs::JsonWriter w;
    w.beginObject();
    w.key("record").value("retransmit");
    w.key("timeUs").value(net_.now().asMicros());
    w.key("origin").value(origin);
    w.key("seq").value(key.second);
    w.key("attempt").value(p.attempts);
    w.endObject();
    trace_->writeRecord(w.str());
  }
  auto copy = std::make_shared<LinkStateMessage>(*p.msg);
  net_.macOf(origin).enqueueBroadcast(std::move(copy),
                                      messageSize(p.msg->states.size()));
  p.wait = Duration::seconds(p.wait.asSeconds() * reliability_->backoffFactor);
  armPendingTimer(key);
}

void LinkStateDissemination::recordState(topo::NodeId receiver,
                                         const LinkStateMessage& msg) {
  auto& store = stores_.at(static_cast<std::size_t>(receiver));
  auto& heard = heardAt_.at(static_cast<std::size_t>(receiver));
  const TimePoint now = net_.now();
  for (const LinkStateAd& ad : msg.states) {
    store[ad.link] = ad;
    heard[ad.link] = now;
  }
}

void LinkStateDissemination::onControl(topo::NodeId receiver,
                                       const phys::Frame& frame) {
  const auto* msg =
      dynamic_cast<const LinkStateMessage*>(frame.control.get());
  if (msg == nullptr) return;  // someone else's control traffic

  // Implicit ack (serval-style): the origin overhearing a relay's
  // rebroadcast of its own message is the delivery confirmation. Runs
  // before dedup — the echo is by definition a duplicate at the origin.
  if (!pending_.empty() && receiver == msg->origin) {
    if (const auto it = pending_.find({msg->origin, msg->seq});
        it != pending_.end()) {
      it->second.acked.insert(frame.transmitter);
      ++implicitAcks_;
      const auto expected = expectedEchoes(msg->origin);
      const bool allAcked =
          std::all_of(expected.begin(), expected.end(), [&](topo::NodeId r) {
            return it->second.acked.contains(r);
          });
      if (allAcked) pending_.erase(it);  // Timer dtor cancels the backoff
    }
  }

  auto& seen = seen_.at(static_cast<std::size_t>(receiver));
  if (!seen.insert({msg->origin, msg->seq}).second) {
    ++duplicatesDropped_;  // exact duplicate (relay echo or retransmit)
    return;
  }

  // Freshness: only serially-newer announcements update the store and
  // get relayed; a reordered older one must not overwrite newer state.
  // The high water mark itself expires after freshnessTtl_, so an origin
  // that rebooted and restarted at seq 0 is accepted once its old
  // (higher) sequence numbers have gone quiet.
  auto& fresh = latest_.at(static_cast<std::size_t>(receiver));
  const TimePoint now = net_.now();
  if (const auto it = fresh.find(msg->origin); it != fresh.end()) {
    if (!seqNewer(msg->seq, it->second.lastSeq)) {
      if (now - it->second.heardAt <= freshnessTtl_) {
        ++staleDropped_;  // reordered or stale announcement
        return;
      }
      ++rebootAccepts_;
    }
  }
  fresh[msg->origin] = OriginFreshness{msg->seq, now};

  recordState(receiver, *msg);

  // Relay once if this receiver is in the *transmitter's* dominating set
  // (paper §6.2: "When a node in their dominating sets overhears this
  // information, the node rebroadcasts it to its neighbors").
  const auto& relaySet =
      relays_.at(static_cast<std::size_t>(frame.transmitter));
  if (std::binary_search(relaySet.begin(), relaySet.end(), receiver)) {
    auto copy = std::make_shared<LinkStateMessage>(*msg);
    net_.macOf(receiver).enqueueBroadcast(std::move(copy),
                                          messageSize(msg->states.size()));
    ++rebroadcasts_;
  }
}

// ---------------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------------

void LinkStateDissemination::pruneExpired(topo::NodeId at) {
  auto& heard = heardAt_.at(static_cast<std::size_t>(at));
  auto& store = stores_.at(static_cast<std::size_t>(at));
  const TimePoint now = net_.now();
  for (auto it = heard.begin(); it != heard.end();) {
    if (now - it->second > stateTtl_) {
      store.erase(it->first);
      it = heard.erase(it);
      ++expiredStates_;
    } else {
      ++it;
    }
  }
}

const std::map<topo::Link, LinkStateAd>& LinkStateDissemination::knownStates(
    topo::NodeId at) {
  pruneExpired(at);
  return stores_.at(static_cast<std::size_t>(at));
}

std::vector<topo::NodeId> LinkStateDissemination::reachedBy(
    topo::NodeId origin, std::int64_t seq) const {
  std::vector<topo::NodeId> reached;
  for (topo::NodeId id = 0; id < net_.topology().numNodes(); ++id) {
    if (seen_.at(static_cast<std::size_t>(id)).contains({origin, seq})) {
      reached.push_back(id);
    }
  }
  return reached;
}

}  // namespace maxmin::gmp
