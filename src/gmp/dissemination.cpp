#include "gmp/dissemination.hpp"

#include <algorithm>
#include <memory>

#include "topology/dominating_set.hpp"
#include "util/check.hpp"

namespace maxmin::gmp {

DataSize LinkStateDissemination::messageSize(std::size_t states) {
  // origin + seq + count (8 B) plus 12 B per entry (two node ids, two
  // quantized values) — a deliberately compact wire format.
  return DataSize::bytes(8 + 12 * static_cast<std::int64_t>(states));
}

bool LinkStateDissemination::seqNewer(std::int64_t a, std::int64_t b) {
  // RFC 1982 serial-number arithmetic: a is newer than b iff it lies in
  // the half of the sequence space "ahead" of b. Survives wraparound:
  // seq 3 is newer than seq 65534.
  const std::int64_t d = ((a - b) % kSeqModulus + kSeqModulus) % kSeqModulus;
  return d != 0 && d < kSeqModulus / 2;
}

LinkStateDissemination::LinkStateDissemination(net::Network& net) : net_{net} {
  const int n = net.topology().numNodes();
  relays_.reserve(static_cast<std::size_t>(n));
  for (topo::NodeId id = 0; id < n; ++id) {
    relays_.push_back(topo::computeDominatingSet(net.topology(), id));
  }
  stores_.assign(static_cast<std::size_t>(n), {});
  seen_.assign(static_cast<std::size_t>(n), {});
  latest_.assign(static_cast<std::size_t>(n), {});
  for (topo::NodeId id = 0; id < n; ++id) {
    net_.stack(id).setControlHandler(
        [this, id](const phys::Frame& frame) { onControl(id, frame); });
  }
}

void LinkStateDissemination::announce(topo::NodeId origin,
                                      std::vector<LinkStateAd> states) {
  auto msg = std::make_shared<LinkStateMessage>();
  msg->origin = origin;
  msg->seq = nextSeq_[origin] % kSeqModulus;
  nextSeq_[origin] = (msg->seq + 1) % kSeqModulus;
  msg->states = std::move(states);

  // The origin knows its own announcement.
  auto& store = stores_.at(static_cast<std::size_t>(origin));
  for (const LinkStateAd& ad : msg->states) store[ad.link] = ad;
  seen_.at(static_cast<std::size_t>(origin)).insert({origin, msg->seq});
  latest_.at(static_cast<std::size_t>(origin))[origin] =
      OriginFreshness{msg->seq, net_.now()};

  const DataSize size = messageSize(msg->states.size());
  net_.macOf(origin).enqueueBroadcast(std::move(msg), size);
  ++messagesSent_;
}

void LinkStateDissemination::onControl(topo::NodeId receiver,
                                       const phys::Frame& frame) {
  const auto* msg =
      dynamic_cast<const LinkStateMessage*>(frame.control.get());
  if (msg == nullptr) return;  // someone else's control traffic

  auto& seen = seen_.at(static_cast<std::size_t>(receiver));
  if (!seen.insert({msg->origin, msg->seq}).second) {
    ++duplicatesDropped_;  // exact duplicate (relay echo)
    return;
  }

  // Freshness: only serially-newer announcements update the store and
  // get relayed; a reordered older one must not overwrite newer state.
  // The high water mark itself expires after freshnessTtl_, so an origin
  // that rebooted and restarted at seq 0 is accepted once its old
  // (higher) sequence numbers have gone quiet.
  auto& fresh = latest_.at(static_cast<std::size_t>(receiver));
  const TimePoint now = net_.now();
  if (const auto it = fresh.find(msg->origin); it != fresh.end()) {
    if (!seqNewer(msg->seq, it->second.lastSeq)) {
      if (now - it->second.heardAt <= freshnessTtl_) {
        ++staleDropped_;  // reordered or stale announcement
        return;
      }
      ++rebootAccepts_;
    }
  }
  fresh[msg->origin] = OriginFreshness{msg->seq, now};

  auto& store = stores_.at(static_cast<std::size_t>(receiver));
  for (const LinkStateAd& ad : msg->states) store[ad.link] = ad;

  // Relay once if this receiver is in the *transmitter's* dominating set
  // (paper §6.2: "When a node in their dominating sets overhears this
  // information, the node rebroadcasts it to its neighbors").
  const auto& relaySet =
      relays_.at(static_cast<std::size_t>(frame.transmitter));
  if (std::binary_search(relaySet.begin(), relaySet.end(), receiver)) {
    auto copy = std::make_shared<LinkStateMessage>(*msg);
    net_.macOf(receiver).enqueueBroadcast(std::move(copy),
                                          messageSize(msg->states.size()));
    ++rebroadcasts_;
  }
}

std::vector<topo::NodeId> LinkStateDissemination::reachedBy(
    topo::NodeId origin, std::int64_t seq) const {
  std::vector<topo::NodeId> reached;
  for (topo::NodeId id = 0; id < net_.topology().numNodes(); ++id) {
    if (seen_.at(static_cast<std::size_t>(id)).contains({origin, seq})) {
      reached.push_back(id);
    }
  }
  return reached;
}

}  // namespace maxmin::gmp
