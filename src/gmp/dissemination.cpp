#include "gmp/dissemination.hpp"

#include <algorithm>
#include <memory>

#include "topology/dominating_set.hpp"
#include "util/check.hpp"

namespace maxmin::gmp {

DataSize LinkStateDissemination::messageSize(std::size_t states) {
  // origin + seq + count (8 B) plus 12 B per entry (two node ids, two
  // quantized values) — a deliberately compact wire format.
  return DataSize::bytes(8 + 12 * static_cast<std::int64_t>(states));
}

LinkStateDissemination::LinkStateDissemination(net::Network& net) : net_{net} {
  const int n = net.topology().numNodes();
  relays_.reserve(static_cast<std::size_t>(n));
  for (topo::NodeId id = 0; id < n; ++id) {
    relays_.push_back(topo::computeDominatingSet(net.topology(), id));
  }
  stores_.assign(static_cast<std::size_t>(n), {});
  seen_.assign(static_cast<std::size_t>(n), {});
  for (topo::NodeId id = 0; id < n; ++id) {
    net_.stack(id).setControlHandler(
        [this, id](const phys::Frame& frame) { onControl(id, frame); });
  }
}

void LinkStateDissemination::announce(topo::NodeId origin,
                                      std::vector<LinkStateAd> states) {
  auto msg = std::make_shared<LinkStateMessage>();
  msg->origin = origin;
  msg->seq = nextSeq_[origin]++;
  msg->states = std::move(states);

  // The origin knows its own announcement.
  auto& store = stores_.at(static_cast<std::size_t>(origin));
  for (const LinkStateAd& ad : msg->states) store[ad.link] = ad;
  seen_.at(static_cast<std::size_t>(origin)).insert({origin, msg->seq});

  const DataSize size = messageSize(msg->states.size());
  net_.macOf(origin).enqueueBroadcast(std::move(msg), size);
  ++messagesSent_;
}

void LinkStateDissemination::onControl(topo::NodeId receiver,
                                       const phys::Frame& frame) {
  const auto* msg =
      dynamic_cast<const LinkStateMessage*>(frame.control.get());
  if (msg == nullptr) return;  // someone else's control traffic

  auto& seen = seen_.at(static_cast<std::size_t>(receiver));
  if (!seen.insert({msg->origin, msg->seq}).second) return;  // duplicate

  auto& store = stores_.at(static_cast<std::size_t>(receiver));
  for (const LinkStateAd& ad : msg->states) store[ad.link] = ad;

  // Relay once if this receiver is in the *transmitter's* dominating set
  // (paper §6.2: "When a node in their dominating sets overhears this
  // information, the node rebroadcasts it to its neighbors").
  const auto& relaySet =
      relays_.at(static_cast<std::size_t>(frame.transmitter));
  if (std::binary_search(relaySet.begin(), relaySet.end(), receiver)) {
    auto copy = std::make_shared<LinkStateMessage>(*msg);
    net_.macOf(receiver).enqueueBroadcast(std::move(copy),
                                          messageSize(msg->states.size()));
    ++rebroadcasts_;
  }
}

std::vector<topo::NodeId> LinkStateDissemination::reachedBy(
    topo::NodeId origin, std::int64_t seq) const {
  std::vector<topo::NodeId> reached;
  for (topo::NodeId id = 0; id < net_.topology().numNodes(); ++id) {
    if (seen_.at(static_cast<std::size_t>(id)).contains({origin, seq})) {
      reached.push_back(id);
    }
  }
  return reached;
}

}  // namespace maxmin::gmp
