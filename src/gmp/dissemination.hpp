// In-band link-state dissemination (paper §6.2, Step 2).
//
// At the end of each measurement period a node broadcasts the state
// (normalized rate + channel occupancy) of its adjacent wireless links
// whose state changed. Nodes in the *transmitter's dominating set* — a
// minimal subset of its one-hop neighbors whose neighborhoods cover its
// two-hop neighborhood — rebroadcast once, so every node within two hops
// of the origin receives the state.
//
// Broadcasts ride the real MAC (kControl frames: DIFS + backoff, no
// RTS/CTS, no ACK) and can be lost to collisions; receivers keep the
// last value heard. The dissemination tests measure the latency and
// delivery ratio of this machinery under saturated data load, which is
// what justifies running the default GMP controller with out-of-band
// control (DESIGN.md §2, substitution 3).
//
// Self-healing (DESIGN.md §13). Three additions make the backbone
// survive churn, all inert in fault-free runs:
//
//   * Dominating-set repair: when the network has a FaultPlane, the
//     service subscribes to node/link transitions and greedily re-covers
//     only the affected 2-hop neighborhoods — no global rebuild — so a
//     crashed relay's coverage hole closes as soon as the fault lands.
//   * Reliable announcements (opt-in, enableReliability): a relay's
//     overheard rebroadcast is an implicit ack (serval-style); origins
//     retransmit a bounded number of times under exponential backoff
//     with seeded jitter (named stream "dissemination") until every
//     currently-alive relay has echoed.
//   * Origin-death TTL: per-link cached state expires `stateTtl` after
//     it was last refreshed, so a crashed origin's "last value heard"
//     ages out instead of poisoning rate computation forever.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "obs/trace.hpp"
#include "phys/frame.hpp"
#include "sim/fault_plane.hpp"
#include "sim/timer.hpp"
#include "topology/link.hpp"
#include "util/rng.hpp"

namespace maxmin::gmp {

/// State of one wireless link as carried in dissemination messages.
struct LinkStateAd {
  topo::Link link;
  double normRate = 0.0;
  double occupancy = 0.0;
};

/// The broadcast payload: origin + per-origin sequence number for
/// duplicate suppression, plus the advertised link states.
struct LinkStateMessage final : phys::ControlMessage {
  topo::NodeId origin = topo::kNoNode;
  std::int64_t seq = 0;
  std::vector<LinkStateAd> states;
};

/// Retransmission policy for reliable announcements. The ack timeout
/// doubles per attempt (exponential backoff) and every wait is stretched
/// by a seeded jitter draw so synchronized origins do not retransmit in
/// lockstep.
struct ReliabilityParams {
  int maxRetransmits = 3;
  Duration ackTimeout = Duration::millis(80);
  double backoffFactor = 2.0;
  double jitterFrac = 0.5;  ///< wait *= 1 + jitterFrac * U(0,1)
};

class LinkStateDissemination final : public sim::FaultListener {
 public:
  /// Sequence numbers live in a small wrapping space (a real header
  /// would carry 16 bits); freshness uses RFC 1982 serial-number
  /// comparison so the protocol survives wraparound.
  static constexpr std::int64_t kSeqModulus = std::int64_t{1} << 16;

  /// True iff `a` is a newer sequence number than `b` under serial
  /// arithmetic modulo kSeqModulus.
  static bool seqNewer(std::int64_t a, std::int64_t b);

  /// Attaches a control handler to every node's stack. The service must
  /// outlive the network's control traffic. If the network already has a
  /// FaultPlane, the relay backbone subscribes to it for repair; enable
  /// faults first (or call attachFaultPlane() afterwards).
  explicit LinkStateDissemination(net::Network& net);

  /// Subscribe to the network's FaultPlane for dominating-set repair.
  /// Idempotent; no-op when the network has no fault plane.
  void attachFaultPlane();

  /// Broadcast `states` from `origin` (one kControl frame; relays fire
  /// as receptions happen).
  void announce(topo::NodeId origin, std::vector<LinkStateAd> states);

  /// Link states node `at` currently knows (latest value heard per
  /// link), including its own announcements. Entries older than
  /// stateTtl() are expired on read.
  const std::map<topo::Link, LinkStateAd>& knownStates(topo::NodeId at);

  /// Nodes that have received origin's announcement with sequence `seq`.
  std::vector<topo::NodeId> reachedBy(topo::NodeId origin,
                                      std::int64_t seq) const;

  /// The current relay (dominating) set of `origin` — repaired in place
  /// on fault transitions when a fault plane is attached.
  [[nodiscard]] const std::vector<topo::NodeId>& relaysOf(
      topo::NodeId origin) const {
    return relays_.at(static_cast<std::size_t>(origin));
  }

  /// Turn on implicit-ack retransmissions for subsequent announce()
  /// calls. Jitter and backoff draws come from the named Rng stream
  /// "dissemination" of the network's seed, so enabling reliability
  /// never perturbs other seeded subsystems.
  void enableReliability(const ReliabilityParams& params);

  /// On-air bytes of a message carrying `n` link states (header + n
  /// compact entries); determines the broadcast airtime.
  static DataSize messageSize(std::size_t states);

  [[nodiscard]] std::int64_t messagesSent() const { return messagesSent_; }
  [[nodiscard]] std::int64_t rebroadcasts() const { return rebroadcasts_; }
  [[nodiscard]] std::int64_t duplicatesDropped() const { return duplicatesDropped_; }
  [[nodiscard]] std::int64_t staleDropped() const { return staleDropped_; }
  [[nodiscard]] std::int64_t rebootAccepts() const { return rebootAccepts_; }
  /// Relay-set recomputations performed by fault-transition repair.
  [[nodiscard]] std::int64_t relayRepairs() const { return relayRepairs_; }
  /// Overheard rebroadcasts credited as delivery confirmations.
  [[nodiscard]] std::int64_t implicitAcks() const { return implicitAcks_; }
  [[nodiscard]] std::int64_t retransmits() const { return retransmits_; }
  /// Announcements abandoned after maxRetransmits without full acks.
  [[nodiscard]] std::int64_t deliveryFailures() const { return deliveryFailures_; }
  /// Cached link-state entries expired by the origin-death TTL.
  [[nodiscard]] std::int64_t expiredStates() const { return expiredStates_; }

  /// How long a receiver trusts its recorded per-origin sequence high
  /// water mark. After this long without hearing the origin, any
  /// sequence number is accepted again — the path by which an origin
  /// that rebooted (and restarted at seq 0) re-enters the network
  /// despite receivers holding a higher stale seq.
  void setFreshnessTtl(Duration ttl) { freshnessTtl_ = ttl; }
  [[nodiscard]] Duration freshnessTtl() const { return freshnessTtl_; }

  /// How long a cached link-state entry stays valid without being
  /// refreshed by a new announcement (the origin-death TTL).
  void setStateTtl(Duration ttl) { stateTtl_ = ttl; }
  [[nodiscard]] Duration stateTtl() const { return stateTtl_; }

  /// Attach a structured trace sink (not owned; nullptr detaches).
  /// Repair/retransmission events are appended at TraceLevel::kEvent.
  void setTraceSink(obs::TraceSink* sink) { trace_ = sink; }

  /// Test hooks: place an origin's counter near wraparound, or reset it
  /// to simulate a reboot that lost the counter.
  void setNextSeqForTest(topo::NodeId origin, std::int64_t seq) {
    nextSeq_[origin] = seq % kSeqModulus;
  }
  /// Canary hook: freeze the dominating sets as computed at construction
  /// (the pre-PR static-backbone behavior). The chaos fuzzer's coverage
  /// oracle must catch this deterministically.
  void disableRepairForTest() { repairEnabled_ = false; }

  // --- sim::FaultListener --------------------------------------------------
  void onNodeDown(std::int32_t node) override;
  void onNodeUp(std::int32_t node) override;
  void onLinkChanged(std::int32_t a, std::int32_t b, bool up) override;

 private:
  void onControl(topo::NodeId receiver, const phys::Frame& frame);

  /// Per-origin freshness at one receiver: the newest sequence accepted
  /// and when it was heard.
  struct OriginFreshness {
    std::int64_t lastSeq = 0;
    TimePoint heardAt;
  };

  /// One announcement awaiting implicit acks at its origin.
  struct PendingAck {
    std::shared_ptr<const LinkStateMessage> msg;
    std::set<topo::NodeId> acked;
    int attempts = 0;
    Duration wait = Duration::zero();
    std::unique_ptr<sim::Timer> timer;
  };
  using PendingKey = std::pair<topo::NodeId, std::int64_t>;

  [[nodiscard]] bool nodeAlive(topo::NodeId n) const;
  [[nodiscard]] bool linkAlive(topo::NodeId a, topo::NodeId b) const;
  /// Alive relays of `origin` whose echo the origin can expect to hear.
  [[nodiscard]] std::vector<topo::NodeId> expectedEchoes(
      topo::NodeId origin) const;
  /// Greedily re-cover the 2-hop neighborhoods of every given center.
  void repairCenters(const std::vector<topo::NodeId>& centers);
  void armPendingTimer(const PendingKey& key);
  void onAckTimeout(const PendingKey& key);
  void pruneExpired(topo::NodeId at);
  void recordState(topo::NodeId receiver, const LinkStateMessage& msg);

  net::Network& net_;
  sim::FaultPlane* faults_ = nullptr;
  bool repairEnabled_ = true;
  obs::TraceSink* trace_ = nullptr;
  std::optional<ReliabilityParams> reliability_;
  std::optional<Rng> rng_;  ///< named stream "dissemination"; reliability only
  /// relays_[transmitter]: the transmitter's dominating set.
  std::vector<std::vector<topo::NodeId>> relays_;
  /// stores_[node]: latest link states known to the node.
  std::vector<std::map<topo::Link, LinkStateAd>> stores_;
  /// heardAt_[node]: when each stored entry was last refreshed (the
  /// origin-death TTL clock; pruned together with stores_).
  std::vector<std::map<topo::Link, TimePoint>> heardAt_;
  /// seen_[node]: (origin, seq) pairs already processed (dedup).
  std::vector<std::set<std::pair<topo::NodeId, std::int64_t>>> seen_;
  /// latest_[node]: per-origin serial-number high water mark.
  std::vector<std::map<topo::NodeId, OriginFreshness>> latest_;
  std::map<topo::NodeId, std::int64_t> nextSeq_;
  std::map<PendingKey, PendingAck> pending_;
  Duration freshnessTtl_ = Duration::seconds(12.0);  ///< 3 GMP periods
  Duration stateTtl_ = Duration::seconds(12.0);      ///< 3 GMP periods
  std::int64_t messagesSent_ = 0;
  std::int64_t rebroadcasts_ = 0;
  std::int64_t duplicatesDropped_ = 0;
  std::int64_t staleDropped_ = 0;
  std::int64_t rebootAccepts_ = 0;
  std::int64_t relayRepairs_ = 0;
  std::int64_t implicitAcks_ = 0;
  std::int64_t retransmits_ = 0;
  std::int64_t deliveryFailures_ = 0;
  std::int64_t expiredStates_ = 0;
};

}  // namespace maxmin::gmp
