// In-band link-state dissemination (paper §6.2, Step 2).
//
// At the end of each measurement period a node broadcasts the state
// (normalized rate + channel occupancy) of its adjacent wireless links
// whose state changed. Nodes in the *transmitter's dominating set* — a
// minimal subset of its one-hop neighbors whose neighborhoods cover its
// two-hop neighborhood — rebroadcast once, so every node within two hops
// of the origin receives the state.
//
// Broadcasts ride the real MAC (kControl frames: DIFS + backoff, no
// RTS/CTS, no ACK) and can be lost to collisions; receivers keep the
// last value heard. The dissemination tests measure the latency and
// delivery ratio of this machinery under saturated data load, which is
// what justifies running the default GMP controller with out-of-band
// control (DESIGN.md §2, substitution 3).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "phys/frame.hpp"
#include "topology/link.hpp"

namespace maxmin::gmp {

/// State of one wireless link as carried in dissemination messages.
struct LinkStateAd {
  topo::Link link;
  double normRate = 0.0;
  double occupancy = 0.0;
};

/// The broadcast payload: origin + per-origin sequence number for
/// duplicate suppression, plus the advertised link states.
struct LinkStateMessage final : phys::ControlMessage {
  topo::NodeId origin = topo::kNoNode;
  std::int64_t seq = 0;
  std::vector<LinkStateAd> states;
};

class LinkStateDissemination {
 public:
  /// Sequence numbers live in a small wrapping space (a real header
  /// would carry 16 bits); freshness uses RFC 1982 serial-number
  /// comparison so the protocol survives wraparound.
  static constexpr std::int64_t kSeqModulus = std::int64_t{1} << 16;

  /// True iff `a` is a newer sequence number than `b` under serial
  /// arithmetic modulo kSeqModulus.
  static bool seqNewer(std::int64_t a, std::int64_t b);

  /// Attaches a control handler to every node's stack. The service must
  /// outlive the network's control traffic.
  explicit LinkStateDissemination(net::Network& net);

  /// Broadcast `states` from `origin` (one kControl frame; relays fire
  /// as receptions happen).
  void announce(topo::NodeId origin, std::vector<LinkStateAd> states);

  /// Link states node `at` currently knows (latest value heard per
  /// link), including its own announcements.
  const std::map<topo::Link, LinkStateAd>& knownStates(topo::NodeId at) const {
    return stores_.at(static_cast<std::size_t>(at));
  }

  /// Nodes that have received origin's announcement with sequence `seq`.
  std::vector<topo::NodeId> reachedBy(topo::NodeId origin,
                                      std::int64_t seq) const;

  /// On-air bytes of a message carrying `n` link states (header + n
  /// compact entries); determines the broadcast airtime.
  static DataSize messageSize(std::size_t states);

  [[nodiscard]] std::int64_t messagesSent() const { return messagesSent_; }
  [[nodiscard]] std::int64_t rebroadcasts() const { return rebroadcasts_; }
  [[nodiscard]] std::int64_t duplicatesDropped() const { return duplicatesDropped_; }
  [[nodiscard]] std::int64_t staleDropped() const { return staleDropped_; }
  [[nodiscard]] std::int64_t rebootAccepts() const { return rebootAccepts_; }

  /// How long a receiver trusts its recorded per-origin sequence high
  /// water mark. After this long without hearing the origin, any
  /// sequence number is accepted again — the path by which an origin
  /// that rebooted (and restarted at seq 0) re-enters the network
  /// despite receivers holding a higher stale seq.
  void setFreshnessTtl(Duration ttl) { freshnessTtl_ = ttl; }
  [[nodiscard]] Duration freshnessTtl() const { return freshnessTtl_; }

  /// Test hooks: place an origin's counter near wraparound, or reset it
  /// to simulate a reboot that lost the counter.
  void setNextSeqForTest(topo::NodeId origin, std::int64_t seq) {
    nextSeq_[origin] = seq % kSeqModulus;
  }

 private:
  void onControl(topo::NodeId receiver, const phys::Frame& frame);

  /// Per-origin freshness at one receiver: the newest sequence accepted
  /// and when it was heard.
  struct OriginFreshness {
    std::int64_t lastSeq = 0;
    TimePoint heardAt;
  };

  net::Network& net_;
  /// relays_[transmitter]: the transmitter's dominating set.
  std::vector<std::vector<topo::NodeId>> relays_;
  /// stores_[node]: latest link states known to the node.
  std::vector<std::map<topo::Link, LinkStateAd>> stores_;
  /// seen_[node]: (origin, seq) pairs already processed (dedup).
  std::vector<std::set<std::pair<topo::NodeId, std::int64_t>>> seen_;
  /// latest_[node]: per-origin serial-number high water mark.
  std::vector<std::map<topo::NodeId, OriginFreshness>> latest_;
  std::map<topo::NodeId, std::int64_t> nextSeq_;
  Duration freshnessTtl_ = Duration::seconds(12.0);  ///< 3 GMP periods
  std::int64_t messagesSent_ = 0;
  std::int64_t rebroadcasts_ = 0;
  std::int64_t duplicatesDropped_ = 0;
  std::int64_t staleDropped_ = 0;
  std::int64_t rebootAccepts_ = 0;
};

}  // namespace maxmin::gmp
