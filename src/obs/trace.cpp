#include "obs/trace.hpp"

namespace maxmin::obs {

std::optional<TraceLevel> parseTraceLevel(std::string_view name) {
  if (name == "period") return TraceLevel::kPeriod;
  if (name == "event") return TraceLevel::kEvent;
  return std::nullopt;
}

const char* traceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kPeriod: return "period";
    case TraceLevel::kEvent: return "event";
  }
  return "?";
}

std::unique_ptr<TraceSink> TraceSink::openFile(const std::string& path,
                                               TraceLevel level) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file) return nullptr;
  return std::unique_ptr<TraceSink>{new TraceSink{std::move(file), level}};
}

}  // namespace maxmin::obs
