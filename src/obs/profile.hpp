// Self-profiling: per-callback-site wall-time histograms.
//
// A *site* is a static instrumentation point (MAXMIN_PROFILE_SCOPE at the
// top of a callback, or the kernel's own hook around every event in
// sim::Simulator::step). Sites register once — a function-local static
// holding a small integer id — and every subsequent pass records one
// nanosecond-scaled duration into that site's fixed-bucket histogram.
//
// This is the only code in the repository allowed to touch the host
// clock: simulation logic lives on sim::Simulator::now(), and the lint
// rule [chrono-outside-obs] keeps std::chrono out of every other src/
// subsystem. Profiling reads wall time but never writes anything a
// simulation reads, so a profiled run's results are bit-identical to an
// unprofiled one.
//
// Runtime-gated, always compiled: `maxmin-sim --profile` must work in the
// default build. Disabled cost is one relaxed atomic load per scope.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

#include "obs/registry.hpp"

namespace maxmin::obs {

using SiteId = int;

class Profiler {
 public:
  static constexpr int kMaxSites = 256;

  static Profiler& global();

  static bool enabled() {
    return enabledFlag().load(std::memory_order_relaxed);
  }
  static void setEnabled(bool on) {
    enabledFlag().store(on, std::memory_order_relaxed);
  }

  /// Register a site (idempotent per name); returns its stable id.
  /// `name` must be a string literal or otherwise outlive the profiler.
  SiteId site(const char* name);

  void record(SiteId id, std::int64_t nanos) {
    if (id >= 0 && id < kMaxSites) sites_[id].hist.record(nanos);
  }

  /// Current wall clock in nanoseconds (monotonic). The single chrono
  /// read of the repository; exp::SweepRunner times jobs through it too.
  static std::int64_t wallNanos();

  void reset();

  /// The --profile table: site, calls, total ms, mean us, p50/p99 us,
  /// sorted by total time descending (name breaks ties).
  void printTable(std::ostream& os) const;

 private:
  struct Site {
    const char* name = nullptr;
    Histogram hist;
  };

  static std::atomic<bool>& enabledFlag();

  std::atomic<int> siteCount_{0};
  Site sites_[kMaxSites];
};

/// RAII sampler: reads the clock on entry/exit when profiling is enabled.
class ScopedProfile {
 public:
  explicit ScopedProfile(SiteId id)
      : id_{id}, start_{Profiler::enabled() ? Profiler::wallNanos() : -1} {}
  ~ScopedProfile() {
    if (start_ >= 0) {
      Profiler::global().record(id_, Profiler::wallNanos() - start_);
    }
  }
  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

 private:
  SiteId id_;
  std::int64_t start_;
};

}  // namespace maxmin::obs

/// Time the rest of the enclosing scope under a named site.
#define MAXMIN_PROFILE_SCOPE(name)                                         \
  static const ::maxmin::obs::SiteId MAXMIN_OBS_CONCAT(maxminProfSite,     \
                                                       __LINE__) =         \
      ::maxmin::obs::Profiler::global().site(name);                        \
  const ::maxmin::obs::ScopedProfile MAXMIN_OBS_CONCAT(maxminProfScope,    \
                                                       __LINE__) {         \
    MAXMIN_OBS_CONCAT(maxminProfSite, __LINE__)                            \
  }
