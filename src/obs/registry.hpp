// Metrics registry: named monotonic counters, gauges, and fixed-bucket
// histograms, with zero-cost-when-disabled instrumentation macros.
//
// Two gates, by design:
//   * compile time — the MAXMIN_COUNT / MAXMIN_GAUGE / MAXMIN_HIST macros
//     expand to nothing unless the build sets MAXMIN_OBSERVABILITY=1
//     (CMake option MAXMIN_OBSERVABILITY), so the default build carries
//     no instrumentation at all in its hot paths;
//   * run time — even when compiled in, every macro first checks
//     Registry::enabled() (one relaxed atomic load and a branch), so an
//     instrumented binary that nobody asked to measure stays quiet.
//
// Metrics never feed back into simulation state: enabling or disabling
// observability cannot change a run's results, only record them. All
// mutators are atomic with relaxed ordering — exp::SweepRunner runs one
// simulation per thread and they all share this process-wide registry.
//
// Instrumented values are process-global, not per-Simulator: the registry
// answers "what did this process do", which is the right granularity for
// the CLI and for overhead benches. Tests reset() between cases.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace maxmin::obs {

/// Monotonic event count. add() is relaxed-atomic: counts from concurrent
/// sweep workers interleave, totals stay exact.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written level (queue depth, pending events, ...). Also tracks the
/// high-water mark, which is usually the number a report wants.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t maxValue() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram over non-negative integer samples. Bucket i
/// holds samples whose value v satisfies 2^(i-1) <= v < 2^i (bucket 0
/// holds v == 0), so the geometry is static — no rebalancing, and
/// percentile queries are a prefix scan over 64 counters.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t v);
  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const;
  /// Upper bound of the bucket containing the p-quantile (p in [0,1]).
  [[nodiscard]] std::int64_t percentile(double p) const;
  void reset();

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// Process-wide named-metric registry. Registration (the first hit of an
/// instrumentation site) takes a mutex; after that the site holds a
/// stable reference and never looks the name up again.
class Registry {
 public:
  static Registry& global();

  static bool enabled() {
    return enabledFlag().load(std::memory_order_relaxed);
  }
  static void setEnabled(bool on) {
    enabledFlag().store(on, std::memory_order_relaxed);
  }

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zero every metric (registration survives). Tests and back-to-back
  /// CLI phases use this to scope measurements.
  void reset();

  /// Sorted (name, value) view of all counters — the deterministic
  /// report form.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>>
  counterValues() const;

  /// Human-readable dump of everything, sorted by name within each kind.
  void printTable(std::ostream& os) const;

 private:
  static std::atomic<bool>& enabledFlag();

  mutable std::mutex mu_;
  // Sorted maps: iteration order is the deterministic dump order.
  // unique_ptr values pin addresses across rehashing-free inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace maxmin::obs

// --------------------------------------------------------------------------
// Instrumentation macros. `name` must be a string literal; the looked-up
// metric is cached in a function-local static so the steady-state cost is
// one relaxed load, one branch, one relaxed add.
// --------------------------------------------------------------------------

#define MAXMIN_OBS_CONCAT_INNER(a, b) a##b
#define MAXMIN_OBS_CONCAT(a, b) MAXMIN_OBS_CONCAT_INNER(a, b)

// Instrumentation is dormant in the common case; the hint keeps the
// recording path out of line so a disabled site costs one predicted
// branch in the hot code.
#define MAXMIN_OBS_UNLIKELY(x) __builtin_expect(static_cast<bool>(x), 0)

#if defined(MAXMIN_OBSERVABILITY) && MAXMIN_OBSERVABILITY

#define MAXMIN_COUNT(name, delta)                                       \
  do {                                                                  \
    if (MAXMIN_OBS_UNLIKELY(::maxmin::obs::Registry::enabled())) {      \
      static ::maxmin::obs::Counter& MAXMIN_OBS_CONCAT(                 \
          maxminObsCounter, __LINE__) =                                 \
          ::maxmin::obs::Registry::global().counter(name);              \
      MAXMIN_OBS_CONCAT(maxminObsCounter, __LINE__).add(delta);         \
    }                                                                   \
  } while (false)

#define MAXMIN_GAUGE(name, value)                                       \
  do {                                                                  \
    if (MAXMIN_OBS_UNLIKELY(::maxmin::obs::Registry::enabled())) {      \
      static ::maxmin::obs::Gauge& MAXMIN_OBS_CONCAT(maxminObsGauge,    \
                                                     __LINE__) =        \
          ::maxmin::obs::Registry::global().gauge(name);                \
      MAXMIN_OBS_CONCAT(maxminObsGauge, __LINE__).set(value);           \
    }                                                                   \
  } while (false)

#define MAXMIN_HIST(name, value)                                        \
  do {                                                                  \
    if (MAXMIN_OBS_UNLIKELY(::maxmin::obs::Registry::enabled())) {      \
      static ::maxmin::obs::Histogram& MAXMIN_OBS_CONCAT(               \
          maxminObsHist, __LINE__) =                                    \
          ::maxmin::obs::Registry::global().histogram(name);            \
      MAXMIN_OBS_CONCAT(maxminObsHist, __LINE__).record(value);         \
    }                                                                   \
  } while (false)

#else  // observability compiled out: the macros vanish entirely.

// sizeof() keeps the operands syntactically checked without evaluating
// them, so a site can't bit-rot while the option is off.
#define MAXMIN_COUNT(name, delta) \
  do {                            \
    (void)sizeof(name);           \
    (void)sizeof(delta);          \
  } while (false)
#define MAXMIN_GAUGE(name, value) \
  do {                            \
    (void)sizeof(name);           \
    (void)sizeof(value);          \
  } while (false)
#define MAXMIN_HIST(name, value) \
  do {                           \
    (void)sizeof(name);          \
    (void)sizeof(value);         \
  } while (false)

#endif  // MAXMIN_OBSERVABILITY
