// Minimal streaming JSON builder for trace records.
//
// Deterministic by construction: fields are emitted in call order, doubles
// are printed with max_digits10 significant digits (lossless round-trip,
// identical text for identical bits), and nothing depends on locale or
// pointer order. Numbers go through util's to_chars wrappers, not the
// stream, so a host locale with a ',' decimal separator or digit grouping
// cannot corrupt the bytes. Two runs that produce the same values produce
// the same bytes — the property the fixed-seed trace tests pin down.
#pragma once

#include <charconv>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/num_text.hpp"

namespace maxmin::obs {

class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& beginObject() {
    comma();
    os_ << '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& endObject() {
    os_ << '}';
    pop();
    return *this;
  }
  JsonWriter& beginArray() {
    comma();
    os_ << '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& endArray() {
    os_ << ']';
    pop();
    return *this;
  }

  /// Key inside an object; must be followed by exactly one value.
  JsonWriter& key(std::string_view k) {
    comma();
    escaped(k);
    os_ << ':';
    pendingKey_ = true;
    return *this;
  }

  JsonWriter& value(double v) {
    comma();
    char buf[64];
    os_ << formatDouble(buf, sizeof buf, v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    os_ << std::string_view(buf, static_cast<std::size_t>(res.ptr - buf));
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(std::string_view v) {
    comma();
    escaped(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }

  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  void comma() {
    if (pendingKey_) {
      pendingKey_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) os_ << ',';
      stack_.back() = true;
    }
  }
  void pop() {
    if (!stack_.empty()) stack_.pop_back();
  }
  void escaped(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            os_ << "\\u0000";  // control chars never appear in our names
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostringstream os_;
  std::vector<bool> stack_;  ///< per open container: "wrote an element"
  bool pendingKey_ = false;
};

}  // namespace maxmin::obs
