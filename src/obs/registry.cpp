#include "obs/registry.hpp"

#include <bit>
#include <ostream>

namespace maxmin::obs {

void Histogram::record(std::int64_t v) {
  if (v < 0) v = 0;
  const int bucket =
      v == 0 ? 0
             : std::min(kBuckets - 1,
                        64 - std::countl_zero(static_cast<std::uint64_t>(v)));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::int64_t n = count();
  return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

std::int64_t Histogram::percentile(double p) const {
  const std::int64_t n = count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const auto rank = static_cast<std::int64_t>(p * static_cast<double>(n - 1));
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) {
      // Upper bound of bucket i: 0 for bucket 0, else 2^i - 1.
      return i == 0 ? 0 : (std::int64_t{1} << i) - 1;
    }
  }
  return std::int64_t{1} << (kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

std::atomic<bool>& Registry::enabledFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock{mu_};
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string{name}, std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock{mu_};
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string{name}, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock{mu_};
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string{name}, std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock{mu_};
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<std::pair<std::string, std::int64_t>> Registry::counterValues()
    const {
  const std::lock_guard<std::mutex> lock{mu_};
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

void Registry::printTable(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock{mu_};
  if (!counters_.empty()) {
    os << "counters:\n";
    for (const auto& [name, c] : counters_) {
      os << "  " << name << " = " << c->value() << '\n';
    }
  }
  if (!gauges_.empty()) {
    os << "gauges (last / max):\n";
    for (const auto& [name, g] : gauges_) {
      os << "  " << name << " = " << g->value() << " / " << g->maxValue()
         << '\n';
    }
  }
  if (!histograms_.empty()) {
    os << "histograms (n / mean / p50 / p99):\n";
    for (const auto& [name, h] : histograms_) {
      os << "  " << name << " = " << h->count() << " / " << h->mean() << " / "
         << h->percentile(0.5) << " / " << h->percentile(0.99) << '\n';
    }
  }
}

}  // namespace maxmin::obs
