// Structured trace sink: one JSON record per line (JSONL).
//
// The sink is deliberately dumb — producers (gmp::Controller is the main
// one) format complete records with obs::JsonWriter and hand over the
// finished line. Determinism therefore lives with the producer: records
// are emitted in simulation order from already-sorted state, so a
// fixed-seed run writes a byte-identical file every time.
//
// Levels:
//   kPeriod — one record per GMP measurement/adjustment period.
//   kEvent  — period records plus fine-grained decision events (each
//             engine command, stale-measurement substitution, and
//             post-recovery limit restore as its own record).
#pragma once

#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

namespace maxmin::obs {

enum class TraceLevel {
  kPeriod,
  kEvent,
};

/// Parse "period" / "event"; nullopt for anything else.
std::optional<TraceLevel> parseTraceLevel(std::string_view name);
const char* traceLevelName(TraceLevel level);

class TraceSink {
 public:
  /// Write to a caller-owned stream (tests use an ostringstream).
  TraceSink(std::ostream& os, TraceLevel level) : os_{&os}, level_{level} {}

  /// Open `path` for writing; returns nullptr (with no side effects) if
  /// the file cannot be created.
  static std::unique_ptr<TraceSink> openFile(const std::string& path,
                                             TraceLevel level);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  [[nodiscard]] TraceLevel level() const { return level_; }
  [[nodiscard]] bool wantsEvents() const {
    return level_ == TraceLevel::kEvent;
  }

  /// Append one complete JSON record as its own line.
  void writeRecord(std::string_view line) {
    *os_ << line << '\n';
    ++records_;
  }

  [[nodiscard]] std::int64_t recordsWritten() const { return records_; }

 private:
  TraceSink(std::unique_ptr<std::ofstream> owned, TraceLevel level)
      : owned_{std::move(owned)}, os_{owned_.get()}, level_{level} {}

  std::unique_ptr<std::ofstream> owned_;  ///< null when stream is borrowed
  std::ostream* os_;
  TraceLevel level_;
  std::int64_t records_ = 0;
};

}  // namespace maxmin::obs
