#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <vector>

namespace maxmin::obs {

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

std::atomic<bool>& Profiler::enabledFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}

SiteId Profiler::site(const char* name) {
  // Linear probe over the registered prefix: registration happens once
  // per static site, so O(sites) here is irrelevant.
  const int n = siteCount_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    if (sites_[i].name == name) return i;
  }
  const int id = siteCount_.fetch_add(1, std::memory_order_acq_rel);
  if (id >= kMaxSites) return kMaxSites - 1;  // overflow bucket
  sites_[id].name = name;
  return id;
}

std::int64_t Profiler::wallNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Profiler::reset() {
  const int n = std::min(siteCount_.load(std::memory_order_acquire),
                         static_cast<int>(kMaxSites));
  for (int i = 0; i < n; ++i) sites_[i].hist.reset();
}

void Profiler::printTable(std::ostream& os) const {
  const int n = std::min(siteCount_.load(std::memory_order_acquire),
                         static_cast<int>(kMaxSites));
  struct Row {
    const char* name;
    std::int64_t calls;
    std::int64_t totalNs;
    double meanNs;
    std::int64_t p50;
    std::int64_t p99;
  };
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    const Site& s = sites_[i];
    if (s.name == nullptr || s.hist.count() == 0) continue;
    rows.push_back(Row{s.name, s.hist.count(), s.hist.sum(), s.hist.mean(),
                       s.hist.percentile(0.5), s.hist.percentile(0.99)});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.totalNs != b.totalNs) return a.totalNs > b.totalNs;
    return std::string_view{a.name} < std::string_view{b.name};
  });
  os << "self-profile (wall time per callback site)\n";
  os << "site                          calls     total_ms   mean_us   "
        "p50_us    p99_us\n";
  for (const Row& r : rows) {
    os << r.name;
    for (std::size_t pad = std::char_traits<char>::length(r.name); pad < 30;
         ++pad) {
      os << ' ';
    }
    os << r.calls << "  " << static_cast<double>(r.totalNs) * 1e-6 << "  "
       << r.meanNs * 1e-3 << "  " << static_cast<double>(r.p50) * 1e-3 << "  "
       << static_cast<double>(r.p99) * 1e-3 << '\n';
  }
  if (rows.empty()) os << "(no samples; was --profile set before the run?)\n";
}

}  // namespace maxmin::obs
