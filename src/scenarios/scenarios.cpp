#include "scenarios/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>
#include <unordered_map>

#include "topology/routing.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace maxmin::scenarios {
namespace {

net::FlowSpec flow(net::FlowId id, topo::NodeId src, topo::NodeId dst,
                   double weight, double desiredPps, std::string name) {
  net::FlowSpec f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.weight = weight;
  f.desiredRate = PacketRate::perSecond(desiredPps);
  f.name = std::move(name);
  return f;
}

}  // namespace

Scenario fig2(std::vector<double> weights) {
  MAXMIN_CHECK(weights.size() == 4);
  // Coordinates chosen so that:
  //   * consecutive chain nodes are neighbors (<= 250 m);
  //   * (1,2) contends with (3,4) via dist(2,3)=350 and with (4,5) via
  //     dist(2,4)=545 (both <= 550);
  //   * (0,1) contends with nothing across the gap: dist(1,3)=570 > 550.
  Scenario s;
  const bool weighted =
      std::any_of(weights.begin(), weights.end(), [](double w) { return w != 1.0; });
  s.name = weighted ? "fig2-weighted" : "fig2";
  s.topology = topo::Topology::fromPositions({
      {0, 0},     // 0
      {220, 0},   // 1
      {440, 0},   // 2
      {790, 0},   // 3
      {985, 0},   // 4
      {1205, 0},  // 5
  });
  s.flows = {
      flow(0, 0, 1, weights[0], 800.0, "f1"),
      flow(1, 1, 2, weights[1], 800.0, "f2"),
      flow(2, 3, 4, weights[2], 800.0, "f3"),
      flow(3, 4, 5, weights[3], 800.0, "f4"),
  };
  return s;
}

Scenario fig3() {
  Scenario s;
  s.name = "fig3";
  s.topology = topo::Topology::fromPositions({
      {0, 0},
      {200, 0},
      {400, 0},
      {600, 0},
  });
  s.flows = {
      flow(0, 0, 3, 1.0, 800.0, "<0,3>"),
      flow(1, 1, 3, 1.0, 800.0, "<1,3>"),
      flow(2, 2, 3, 1.0, 800.0, "<2,3>"),
  };
  return s;
}

Scenario fig4() {
  // Four horizontal chains at vertical spacing 300: adjacent chains are
  // within carrier-sense range (300 <= 550), chains two apart are not
  // (600 > 550), so middle chains contend with two neighbors and side
  // chains with one.
  Scenario s;
  s.name = "fig4";
  std::vector<topo::Point> pts;
  for (int k = 0; k < 4; ++k) {
    const double y = 300.0 * k;
    pts.push_back({0, y});
    pts.push_back({200, y});
    pts.push_back({400, y});
  }
  s.topology = topo::Topology::fromPositions(std::move(pts));
  int id = 0;
  for (int k = 0; k < 4; ++k) {
    const topo::NodeId a = 3 * k;
    s.flows.push_back(
        flow(id, a, a + 2, 1.0, 800.0, "f" + std::to_string(id + 1)));
    ++id;
    s.flows.push_back(
        flow(id, a + 1, a + 2, 1.0, 800.0, "f" + std::to_string(id + 1)));
    ++id;
  }
  return s;
}

Scenario fig1() {
  // x=0, y=1, i=2, j=3, z=4, t=5, v=6 — the two flows of the paper's
  // Figure 1: f1: x->i->j->z->t and f2: y->i->j->v, sharing relay nodes
  // i and j. f1's four mutually-contending hops make its end-to-end rate
  // structurally low (its last link (z,t) is the bandwidth bottleneck:
  // everything upstream backpressures), while f2's shorter path could
  // carry far more — if queueing at i and j does not chain it to f1.
  // x and y sit symmetrically about the chain axis so they compete for
  // node i on equal MAC terms — the premise of the paper's Fig. 1(b)
  // analysis ("the source nodes x and y compete fairly for transmission
  // to i"). See EXPERIMENTS.md (E5) for why the full quantitative
  // contrast of Fig. 1 cannot be realized under a 2.2x carrier-sense
  // range, and for the source-queue variant that realizes it exactly.
  Scenario s;
  s.name = "fig1";
  s.topology = topo::Topology::fromPositions({
      {-170, 100},   // 0 = x
      {-170, -100},  // 1 = y
      {0, 0},        // 2 = i
      {200, 0},      // 3 = j
      {400, 0},      // 4 = z
      {600, 0},      // 5 = t
      {200, -200},   // 6 = v
  });
  s.flows = {
      flow(0, 0, 5, 1.0, 800.0, "f1"),  // x -> t
      flow(1, 1, 6, 1.0, 800.0, "f2"),  // y -> v
  };
  return s;
}

Scenario chain(int nodes, double spacing, double desiredPps) {
  MAXMIN_CHECK(nodes >= 2);
  Scenario s;
  s.name = "chain" + std::to_string(nodes);
  std::vector<topo::Point> pts;
  for (int i = 0; i < nodes; ++i) pts.push_back({spacing * i, 0});
  s.topology = topo::Topology::fromPositions(std::move(pts));
  s.flows = {flow(0, 0, nodes - 1, 1.0, desiredPps, "f1")};
  return s;
}

Scenario randomMesh(std::uint64_t seed, int nodes, double areaSide,
                    int numFlows, double desiredPps) {
  MAXMIN_CHECK(nodes >= 2);
  MAXMIN_CHECK(numFlows >= 1);
  Rng rng{seed};
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<topo::Point> pts;
    for (int i = 0; i < nodes; ++i) {
      pts.push_back({rng.uniformReal(0, areaSide), rng.uniformReal(0, areaSide)});
    }
    topo::Topology topo = topo::Topology::fromPositions(pts);

    // Sample distinct multi-hop connected (src, dst) pairs. The guard
    // counts *distinct* candidate pairs only: self-pairs and repeat
    // draws are pure rejections and must not burn the budget, or high
    // flow counts on small node sets spuriously fail (at numFlows near
    // n(n-1) the last few pairs each take O(n^2) draws to hit). Routing
    // trees are cached per destination — they depend only on the
    // topology, and recomputing a BFS per candidate made sampling
    // O(candidates * (n + edges)). Neither change touches the RNG draw
    // order, so fixed-seed meshes stay bit-identical.
    std::vector<net::FlowSpec> flows;
    std::set<std::pair<topo::NodeId, topo::NodeId>> tried;
    std::unordered_map<topo::NodeId, topo::RoutingTree> trees;
    const auto maxDistinct =
        static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes - 1);
    while (static_cast<int>(flows.size()) < numFlows &&
           tried.size() < std::min<std::size_t>(1000, maxDistinct)) {
      const auto src = static_cast<topo::NodeId>(rng.uniformInt(0, nodes - 1));
      const auto dst = static_cast<topo::NodeId>(rng.uniformInt(0, nodes - 1));
      if (src == dst || !tried.insert({src, dst}).second) continue;
      auto it = trees.find(dst);
      if (it == trees.end()) {
        it = trees.emplace(dst, topo::RoutingTree::shortestPaths(topo, dst))
                 .first;
      }
      if (!it->second.reaches(src)) continue;
      const auto id = static_cast<net::FlowId>(flows.size());
      flows.push_back(flow(id, src, dst, 1.0, desiredPps,
                           "f" + std::to_string(id + 1)));
    }
    if (static_cast<int>(flows.size()) == numFlows) {
      Scenario s;
      s.name = "mesh" + std::to_string(seed);
      s.topology = std::move(topo);
      s.flows = std::move(flows);
      return s;
    }
  }
  MAXMIN_CHECK_MSG(false, "could not sample a connected random mesh");
  throw InvariantViolation("unreachable");
}

double meshSideForDegree(int nodes, double targetDegree) {
  MAXMIN_CHECK(nodes >= 2);
  MAXMIN_CHECK(targetDegree > 0.0);
  const double txRange = topo::RadioRanges{}.txRange;
  return std::sqrt(nodes * std::numbers::pi * txRange * txRange /
                   targetDegree);
}

Scenario denseMesh(std::uint64_t seed, int nodes, int numFlows,
                   double desiredPps) {
  Scenario s = randomMesh(seed, nodes, meshSideForDegree(nodes, 12.0),
                          numFlows, desiredPps);
  s.name = "dense" + std::to_string(nodes) + "-" + std::to_string(seed);
  return s;
}

topo::NodeId firstRelayNode(const Scenario& scenario) {
  for (const net::FlowSpec& f : scenario.flows) {
    const auto tree = topo::RoutingTree::shortestPaths(scenario.topology, f.dst);
    const auto path = tree.pathFrom(f.src);
    if (path.size() >= 3) return path[1];
  }
  MAXMIN_CHECK_MSG(false,
                   "scenario " << scenario.name << " has no multi-hop flow");
  throw InvariantViolation("unreachable");
}

sim::FaultScript midSessionRelayCrash(const Scenario& scenario,
                                      Duration crashAt, Duration outage) {
  MAXMIN_CHECK(outage > Duration::zero());
  const topo::NodeId victim = firstRelayNode(scenario);
  sim::FaultScript script;
  sim::FaultEvent crash;
  crash.at = TimePoint::origin() + crashAt;
  crash.kind = sim::FaultEvent::Kind::kNodeDown;
  crash.node = victim;
  sim::FaultEvent recover = crash;
  recover.at = crash.at + outage;
  recover.kind = sim::FaultEvent::Kind::kNodeUp;
  script.events = {crash, recover};
  return script;
}

}  // namespace maxmin::scenarios
