// Canned evaluation scenarios: the paper's Figures 1-4 plus generic
// chains, grids and random meshes for wider testing.
//
// Geometry notes. All scenarios use the default radio model (250 m tx,
// 550 m carrier sense) unless stated. The paper gives topologies as
// abstract figures; node coordinates here are chosen so that the link
// contention structure matches the figures exactly, and scenario tests
// assert that (e.g. Fig. 2's two cliques).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "sim/fault_plane.hpp"
#include "topology/topology.hpp"

namespace maxmin::scenarios {

struct Scenario {
  std::string name;
  topo::Topology topology;
  std::vector<net::FlowSpec> flows;
};

/// Paper Fig. 2: chains 0-1-2 and 3-4-5 with cliques
/// {(0,1),(1,2)} (clique 0) and {(1,2),(3,4),(4,5)} (clique 1).
/// Flows (all single-hop): f1: 0->1, f2: 1->2, f3: 3->4, f4: 4->5.
/// `weights` are applied in flow order f1..f4 (Table 1 uses all ones,
/// Table 2 uses {1,2,1,3}).
Scenario fig2(std::vector<double> weights = {1, 1, 1, 1});

/// Paper Fig. 3: four-node chain 0-1-2-3 with flows <0,3>, <1,3>, <2,3>.
Scenario fig3();

/// Paper Fig. 4: four parallel three-node chains; adjacent chains
/// contend, chains two apart do not. Per chain k (0-based), the odd flow
/// f_{2k+1} runs the full chain (2 hops) and the even flow f_{2k+2} is
/// the last hop (1 hop). Eight flows total.
Scenario fig4();

/// Paper Fig. 1: f1: x->i->j->z->t crosses a bottleneck at (z,t)
/// (created by a heavy contending one-hop flow f3: a->b near z-t);
/// f2: y->i->j->v shares nodes i, j with f1 but has an idle path.
/// Node ids: x=0, y=1, i=2, j=3, z=4, t=5, v=6, a=7, b=8.
Scenario fig1();

/// A straight chain of `nodes` nodes spaced `spacing` meters, with a
/// single end-to-end flow 0 -> nodes-1.
Scenario chain(int nodes, double spacing = 200.0,
               double desiredPps = 800.0);

/// Random connected mesh: `nodes` nodes uniform in a square of side
/// `areaSide`, `numFlows` random multi-hop flows. Retries seeds until the
/// sampled src/dst pairs are connected.
Scenario randomMesh(std::uint64_t seed, int nodes, double areaSide,
                    int numFlows, double desiredPps = 800.0);

/// Square side that gives a random mesh of `nodes` nodes an average
/// one-hop (tx-range) degree of ~`targetDegree` under the default radio
/// model — constant density regardless of scale, unlike a fixed side.
[[nodiscard]] double meshSideForDegree(int nodes, double targetDegree);

/// Dense random mesh: constant-density placement with average tx-range
/// degree ~12 (carrier-sense degree ~58 under the default 2.2x radio
/// model), so nearly every transmission contends with a large share of
/// the network. The frame-pipeline stress preset: saturated high-
/// contention meshes are where per-frame Medium costs dominate.
Scenario denseMesh(std::uint64_t seed, int nodes, int numFlows,
                   double desiredPps = 800.0);

/// First intermediate hop on the path of the scenario's first multi-hop
/// flow — the canonical victim for relay-crash robustness experiments
/// (crashing it severs that flow while the rest of the network keeps
/// running). Throws if every flow is single-hop.
topo::NodeId firstRelayNode(const Scenario& scenario);

/// Fault script that crashes firstRelayNode(scenario) at `crashAt` and
/// recovers it `outage` later (measured from the simulation origin).
sim::FaultScript midSessionRelayCrash(const Scenario& scenario,
                                      Duration crashAt, Duration outage);

}  // namespace maxmin::scenarios
