#include "sim/simulator.hpp"

#include <utility>

#include "util/check.hpp"

namespace maxmin::sim {

EventId Simulator::schedule(Duration delay, std::function<void()> fn) {
  MAXMIN_CHECK(delay >= Duration::zero());
  return scheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::scheduleAt(TimePoint when, std::function<void()> fn) {
  MAXMIN_CHECK_MSG(when >= now_, "event scheduled in the past: " << when
                                     << " < now " << now_);
  MAXMIN_CHECK(fn != nullptr);
  const EventId id = nextId_++;
  queue_.push(Entry{when, id, nextSeq_++, std::move(fn)});
  return id;
}

void Simulator::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  // Lazy deletion: remember the id; skip the entry when it surfaces.
  cancelled_.insert(id);
}

bool Simulator::popLive(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top is const; the function object must be moved out,
    // so copy the POD parts first and const_cast for the move. The entry is
    // popped immediately after, so no observer can see the moved-from state.
    Entry& top = const_cast<Entry&>(queue_.top());
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    out = Entry{top.when, top.id, top.seq, std::move(top.fn)};
    queue_.pop();
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry e;
  if (!popLive(e)) return false;
  MAXMIN_CHECK(e.when >= now_);
  now_ = e.when;
  ++executed_;
  e.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::runUntil(TimePoint until) {
  MAXMIN_CHECK(until >= now_);
  while (!queue_.empty()) {
    // Peek past cancelled entries without executing.
    if (cancelled_.contains(queue_.top().id)) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
      continue;
    }
    if (queue_.top().when > until) break;
    step();
  }
  now_ = until;
}

}  // namespace maxmin::sim
