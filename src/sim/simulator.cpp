// Cold paths of the calendar event queue: tier refills, window sizing,
// tombstone compaction. The per-event hot path lives in simulator.hpp.
#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>

namespace maxmin::sim {

// Sorted insert at or beyond the run cursor. The key was just issued, so
// its seq is the largest outstanding; upper_bound on (when, seq) therefore
// lands after every pending key at the same instant, preserving FIFO.
void Simulator::insertIntoRun(const Key& key) {
  const auto it = std::upper_bound(
      run_.begin() + static_cast<std::ptrdiff_t>(runPos_), run_.end(), key,
      earlier);
  run_.insert(it, key);
}

// The active run is spent: activate the next non-empty bucket, rebuilding
// the window from the far pool when the current one is exhausted. Caller
// guarantees at least one live key remains somewhere.
void Simulator::refillRun() {
  run_.clear();
  runPos_ = 0;
  for (;;) {
    while (nextBucket_ < activeBuckets_) {
      std::vector<Key>& b = buckets_[nextBucket_++];
      if (b.empty()) continue;
      run_.swap(b);  // the bucket inherits the spent run's capacity
      std::sort(run_.begin(), run_.end(), earlier);
      runEnd_ = nextBucket_ == activeBuckets_
                    ? windowEnd_
                    : windowStart_ +
                          Duration::micros(
                              bucketWidthUs_ *
                              static_cast<std::int64_t>(nextBucket_));
      return;
    }
    runEnd_ = windowEnd_;
    rebuildWindow();
  }
}

// Carve a fresh bucket window spanning exactly the far pool's live keys:
// power-of-two bucket count targeting ~kBucketLoad keys per bucket (sorts
// of that size are trivial, and fewer buckets means fewer allocations and
// a shorter skip over empty ones), capped so the bucket array stays
// modest. Tombstones are dropped for free during the span scan.
void Simulator::rebuildWindow() {
  std::size_t w = 0;
  TimePoint minW;
  TimePoint maxW;
  for (const Key& k : far_) {
    if (!isLive(k)) {
      --dead_;
      continue;
    }
    if (w == 0 || k.when < minW) minW = k.when;
    if (w == 0 || k.when > maxW) maxW = k.when;
    far_[w++] = k;
  }
  far_.resize(w);
  MAXMIN_CHECK(w > 0);  // live_ > 0 and every other tier is drained
  const std::int64_t spanUs = (maxW - minW).asMicros() + 1;
  constexpr std::size_t kBucketLoad = 8;
  const auto nb = static_cast<std::int64_t>(std::bit_ceil(
      std::min<std::size_t>(std::max<std::size_t>(w / kBucketLoad, 1),
                            std::size_t{1} << 16)));
  bucketWidthUs_ = (spanUs + nb - 1) / nb;
  if (bucketWidthUs_ <= 0) bucketWidthUs_ = 1;
  windowStart_ = minW;
  windowEnd_ = maxW + Duration::micros(1);
  // Grow-only: a narrower window just uses a prefix of the bucket array,
  // so per-bucket capacity from earlier windows is recycled rather than
  // freed — steady-state window rebuilds perform no heap allocation.
  activeBuckets_ = static_cast<std::size_t>(nb);
  if (buckets_.size() < activeBuckets_) buckets_.resize(activeBuckets_);
  nextBucket_ = 0;
  for (const Key& k : far_) {
    buckets_[bucketIndex(k.when)].push_back(k);
  }
  far_.clear();
}

// The queue is fully drained: anything left in any tier is a tombstone.
// Collapse the window so the next push routes to the far pool and the next
// refill sizes a window around whatever is pending then.
void Simulator::resetTiers() {
  run_.clear();
  runPos_ = 0;
  for (std::vector<Key>& b : buckets_) b.clear();
  far_.clear();
  nextBucket_ = activeBuckets_;
  dead_ = 0;
  runEnd_ = now_;
  windowStart_ = now_;
  windowEnd_ = now_;
}

// Reconcile the kernel's plain member counts with the metrics registry
// (deltas since the previous publish; see the header declaration for the
// boundary semantics). Out of line so both observability configurations
// compile the header's hot paths identically.
void Simulator::publishObsMetrics() {
  MAXMIN_COUNT("sim.events_scheduled",
               static_cast<std::int64_t>(nextSeq_ - pubScheduled_));
  MAXMIN_COUNT("sim.events_fired",
               static_cast<std::int64_t>(executed_ - pubExecuted_));
  MAXMIN_COUNT("sim.events_cancelled",
               static_cast<std::int64_t>(cancelled_ - pubCancelled_));
  MAXMIN_GAUGE("sim.pending_events", static_cast<std::int64_t>(maxLive_));
  pubScheduled_ = nextSeq_;
  pubExecuted_ = executed_;
  pubCancelled_ = cancelled_;
}

// Sweep tombstones out of every tier. Triggered when dead keys outnumber
// live ones, which bounds queue memory to O(live) and keeps the amortized
// cost per cancel constant. erase_if is stable, so live run order — and
// with it pop order — is untouched.
void Simulator::compact() {
  MAXMIN_COUNT("sim.queue_compactions", 1);
  const auto dead = [this](const Key& k) { return !isLive(k); };
  run_.erase(run_.begin(), run_.begin() + static_cast<std::ptrdiff_t>(runPos_));
  runPos_ = 0;
  std::erase_if(run_, dead);
  for (std::vector<Key>& b : buckets_) std::erase_if(b, dead);
  std::erase_if(far_, dead);
  dead_ = 0;
}

}  // namespace maxmin::sim
