// Seeded chaos-schedule fuzzer for the fault plane.
//
// Generates randomized *adversarial* fault scripts rather than benign
// averages: crash storms aimed at the nodes the control plane leans on
// (dominating-set relays), links that flap several times in a row, and
// partition-then-heal cuts that isolate a node entirely. Every schedule
// is a plain FaultScript, so a failing run replays exactly from the
// serialized script text (sim::toScriptText) with no fuzzer involved.
//
// Determinism: all draws come from the caller-supplied Rng (derive it
// from a named stream, e.g. Rng{seed}.stream("chaos")). Event times are
// quantized to 250 ms ticks — exactly representable in binary, so the
// text round-trips through parseFaultScript microsecond-exact. Every
// fault is healed by `healBySeconds`, leaving a fault-free tail for the
// re-convergence oracle.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/fault_plane.hpp"
#include "util/rng.hpp"

namespace maxmin::sim {

/// Shape of one generated schedule. The caller fills the topology-derived
/// fields (numNodes, relayNodes, links); the counts say how much of each
/// kind of adversity to inject.
struct ChaosConfig {
  std::int32_t numNodes = 0;
  /// Preferred crash victims — dominating-set members, i.e. the relay
  /// backbone. Empty = any node may be hit.
  std::vector<std::int32_t> relayNodes;
  /// Real links of the topology (for flaps and isolation cuts).
  std::vector<std::pair<std::int32_t, std::int32_t>> links;

  double startSeconds = 8.0;    ///< no faults before (baseline window)
  double healBySeconds = 56.0;  ///< every fault healed by here

  int crashStorms = 1;  ///< simultaneous multi-node crash bursts
  int stormSize = 2;    ///< victims per storm
  int linkFlaps = 1;    ///< links that flap repeatedly
  int flapCycles = 2;   ///< down/up cycles per flapping link
  int isolations = 1;   ///< nodes whose links are all cut (partition)

  double minOutageSeconds = 2.0;
  double maxOutageSeconds = 10.0;
};

/// Generate one schedule. Events come out sorted by time. Requires
/// numNodes > 0 and startSeconds + maxOutageSeconds < healBySeconds.
FaultScript generateChaosSchedule(const ChaosConfig& config, Rng& rng);

}  // namespace maxmin::sim
