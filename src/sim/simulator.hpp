// Discrete-event simulation kernel.
//
// Single-threaded, deterministic: events at equal timestamps execute in
// scheduling order (FIFO by sequence number), so a run is a pure function of
// the scenario and its RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace maxmin::sim {

/// Token identifying a scheduled event; usable to cancel it.
/// Value 0 is reserved and never issued.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run `delay` from now. Zero delay runs after all
  /// events already scheduled for the current instant.
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedule `fn` at an absolute instant; must not be in the past.
  EventId scheduleAt(TimePoint when, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op, which lets callers keep stale
  /// handles without bookkeeping.
  void cancel(EventId id);

  /// Execute the single next event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains.
  void run();

  /// Run events with timestamp <= `until`, then set the clock to `until`.
  void runUntil(TimePoint until);

  /// Number of pending (non-cancelled) events.
  std::size_t pendingEvents() const { return queue_.size() - cancelled_.size(); }

  /// Total events executed since construction (diagnostics / benches).
  std::uint64_t executedEvents() const { return executed_; }

 private:
  struct Entry {
    TimePoint when;
    EventId id;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pop entries until a live one surfaces; returns false if none remain.
  bool popLive(Entry& out);

  TimePoint now_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  EventId nextId_ = 1;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace maxmin::sim
