// Discrete-event simulation kernel.
//
// Single-threaded, deterministic: events at equal timestamps execute in
// scheduling order (FIFO by sequence number), so a run is a pure function of
// the scenario and its RNG seed. Distinct Simulator instances share no state,
// which is what makes exp::SweepRunner's run-per-thread parallelism safe.
//
// Internals (see DESIGN.md §8): event callbacks live in a slab indexed by a
// free list; an EventId packs {slot, generation} so cancelling a fired or
// stale id is a two-compare no-op — there is no tombstone *set* to leak.
// Cancel is an O(1) generation bump that strands a dead key in the queue;
// dead keys are skipped (and accounted) when they surface and swept out
// whenever they outnumber live ones, so memory stays O(live events) and
// pendingEvents() — live keys exactly — can never underflow.
//
// Pending event keys {when, seq, slot, gen} sit in a three-tier calendar:
// an unsorted far pool beyond the current time window, time buckets
// partitioning the window, and a sorted active run that pops by cursor.
// Every tier partitions by timestamp and the active run is sorted by the
// full (when, seq) key, so pop order is the exact total order regardless
// of window or bucket geometry — determinism is structural, not tuned.
// Push and pop are amortized O(1) against the heap's O(log n).
//
// The hot path (schedule / step) is defined inline in this header: the
// kernel is the innermost loop of every simulation and benches run
// without LTO.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/profile.hpp"
#include "obs/registry.hpp"
#include "sim/event_fn.hpp"
#include "util/check.hpp"
#include "util/time.hpp"

namespace maxmin::sim {

/// Token identifying a scheduled event; usable to cancel it. Packs a slab
/// slot (low 32 bits) and that slot's generation (high 32 bits); the
/// generation is bumped whenever the slot's event fires or is cancelled,
/// so stale handles can never alias a later event. Value 0 is reserved and
/// never issued (generations start at 1).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Total-order position of an event: (when, seq) lexicographic — exactly
/// the order step() pops. In canonical-order mode (see below) `seq` packs
/// {owner, per-owner counter}, which makes the key of an event identical
/// across any sharding of the simulation: per-owner counters advance in
/// the same order no matter which lane executes the owner. The sharded
/// runtime ships these keys across lanes as null-message lower bounds and
/// as the exact positions at which imported boundary frames apply.
struct EventKey {
  TimePoint when;
  std::uint64_t seq = 0;

  friend bool operator==(const EventKey& a, const EventKey& b) {
    return a.when == b.when && a.seq == b.seq;
  }
  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  friend bool operator<=(const EventKey& a, const EventKey& b) {
    return !(b < a);
  }
  friend bool operator>(const EventKey& a, const EventKey& b) { return b < a; }
  friend bool operator>=(const EventKey& a, const EventKey& b) {
    return !(a < b);
  }
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run `delay` from now. Zero delay runs after all
  /// events already scheduled for the current instant. Discarding the
  /// returned id forfeits the only way to cancel.
  [[nodiscard]] EventId schedule(Duration delay, EventFn fn) {
    MAXMIN_CHECK(delay >= Duration::zero());
    return emplaceEvent(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute instant; must not be in the past.
  [[nodiscard]] EventId scheduleAt(TimePoint when, EventFn fn) {
    return emplaceEvent(when, std::move(fn));
  }

  /// Fire-and-forget variants for events that are never cancelled — the
  /// explicit opt-out from schedule()'s [[nodiscard]] handle.
  void post(Duration delay, EventFn fn) {
    static_cast<void>(schedule(delay, std::move(fn)));
  }
  void postAt(TimePoint when, EventFn fn) {
    static_cast<void>(scheduleAt(when, std::move(fn)));
  }

  /// Cancel a pending event: an O(1) generation bump. Cancelling an
  /// already-fired, already-cancelled or never-issued id is a harmless
  /// no-op, which lets callers keep stale handles without bookkeeping
  /// (and without the kernel accumulating any per-stale-cancel state).
  void cancel(EventId id) {
    if (id == kInvalidEventId) return;
    const std::uint32_t slot = slotOf(id);
    if (slot >= slotCount_) return;  // never issued
    Record& r = record(slot);
    // A fired or cancelled event bumped the generation; a reused slot
    // holds a different generation. Either way the stale handle matches
    // nothing. A matching generation means the event is pending.
    if (r.gen != genOf(id)) return;
    retire(slot);
    --live_;
    ++dead_;  // its queue key is now a tombstone; dropped at pop/compact
    ++cancelled_;
    if (dead_ > kCompactMinDead && dead_ > live_) compact();
  }

  /// Execute the single next event. Returns false if the queue is empty.
  bool step() {
    if (!ensureRunFront()) return false;
    const Key top = run_[runPos_++];
    MAXMIN_CHECK(top.when >= now_);
    now_ = top.when;
    if (canonical_) {
      // Every event carries its owner in the key; schedules made during
      // the callback are attributed to it unless an OwnerScope narrows
      // the attribution (cross-node synchronous callbacks do).
      currentKey_ = EventKey{top.when, top.seq};
      currentOwner_ = static_cast<std::uint32_t>(top.seq >> kOwnerShift);
    }
    Record& r = record(top.slot);
    // The run is time-ordered while the slab is allocation-ordered, so the
    // next record is rarely in cache; overlap its fetch with this callback.
    if (runPos_ < run_.size()) {
      __builtin_prefetch(&record(run_[runPos_].slot));
    }
    // Bump the generation *before* invoking so outstanding ids (including
    // a self-cancel from inside the callback) are already stale. Chunked
    // slab storage never moves, so the callback runs in place — no move
    // out — and may schedule or cancel freely while it does.
    ++r.gen;
    --live_;
    ++executed_;
    if (MAXMIN_OBS_UNLIKELY(obs::Profiler::enabled())) {
      // Kernel-level catch-all site; callbacks refine attribution with
      // their own MAXMIN_PROFILE_SCOPE sites (nested times overlap).
      static const obs::SiteId kStepSite =
          obs::Profiler::global().site("sim.step");
      const std::int64_t t0 = obs::Profiler::wallNanos();
      r.fn();
      obs::Profiler::global().record(kStepSite,
                                     obs::Profiler::wallNanos() - t0);
    } else {
      r.fn();
    }
    r.fn.reset();
    r.nextFree = freeHead_;  // freed only now: the callback can't reuse it
    freeHead_ = top.slot;
    return true;
  }

  /// Run until the queue drains.
  void run() {
    while (step()) {
    }
    publishObsMetrics();
  }

  /// Run events with timestamp <= `until`, then set the clock to `until`.
  /// The clock never moves backwards: `until` must be >= now().
  void runUntil(TimePoint until) {
    MAXMIN_CHECK_MSG(until >= now_,
                     "runUntil would move the clock backwards: "
                         << until << " < now " << now_);
    // Single pop path: step() pops the true next event once
    // ensureRunFront() has surfaced it at the run cursor.
    while (ensureRunFront() && run_[runPos_].when <= until) {
      step();
    }
    MAXMIN_CHECK(now_ <= until);  // monotonic: step never overshoots
    now_ = until;
    publishObsMetrics();
  }

  /// Number of pending (non-cancelled) events.
  std::size_t pendingEvents() const { return live_; }

  /// Total events executed since construction (diagnostics / benches).
  std::uint64_t executedEvents() const { return executed_; }

  // --- canonical owner ordering (sharded PDES support) ----------------------
  // In canonical mode every scheduled event is attributed to an *owner*
  // (the node whose state machine scheduled it) and sequenced as
  // {owner << kOwnerShift | per-owner counter} instead of a global FIFO
  // counter. Because each owner's schedules happen in the same relative
  // order regardless of how owners are partitioned into lanes, the
  // resulting (when, seq) keys — and therefore pop order among
  // interacting events — are identical for any shard count. Legacy mode
  // (the default) is untouched: one global FIFO counter.

  /// Per-owner counter width: owners are node ids (< 2^24 for any
  /// supported topology), counters count one owner's schedules (< 2^40).
  static constexpr std::uint32_t kOwnerShift = 40;

  /// Switch this (empty, unstarted) simulator to canonical ordering with
  /// owners 0..numOwners-1. Must be called before any event is scheduled.
  void enableCanonicalOrder(std::uint32_t numOwners) {
    MAXMIN_CHECK_MSG(nextSeq_ == 0 && live_ == 0 && executed_ == 0,
                     "canonical order must be enabled on a fresh simulator");
    MAXMIN_CHECK(numOwners > 0 && numOwners < (1u << 24));
    canonical_ = true;
    ownerCounters_.assign(numOwners, 0);
    trackedOwner_.assign(numOwners, 0);
  }
  bool canonicalOrder() const { return canonical_; }

  /// Attribute subsequent schedules to `owner`. Callers use OwnerScope;
  /// step() re-derives the owner of each popped event from its key, so
  /// the scope only matters for schedules made from *outside* an event of
  /// the correct owner (construction, control-plane calls at barriers,
  /// cross-node synchronous callbacks).
  void setCurrentOwner(std::uint32_t owner) { currentOwner_ = owner; }
  std::uint32_t currentOwner() const { return currentOwner_; }

  /// Key of the event currently executing (canonical mode): step() and
  /// beginExternalEvent() maintain it. The medium stamps exported
  /// boundary transmissions with this key.
  EventKey currentEventKey() const { return currentKey_; }

  /// Key assigned by the most recent schedule()/scheduleAt()/
  /// scheduleImported() — how the medium learns the exact position of the
  /// finish event it just posted, to ship alongside an exported frame.
  EventKey lastScheduledKey() const { return lastScheduledKey_; }

  /// Peek the key of the next live event without executing it. Returns
  /// false when the queue is empty.
  bool nextEventKey(EventKey& out) {
    if (!ensureRunFront()) return false;
    out = EventKey{run_[runPos_].when, run_[runPos_].seq};
    return true;
  }

  /// Schedule `fn` at an exact foreign key (canonical mode): the position
  /// another lane's event occupies in the global order, replayed here so
  /// receiver-side effects of a boundary frame interleave with local
  /// events exactly as an unsharded run would. The foreign owner's
  /// counters are *not* advanced — they live in the exporting lane.
  [[nodiscard]] EventId scheduleImported(EventKey key, EventFn fn) {
    MAXMIN_CHECK(canonical_);
    MAXMIN_CHECK_MSG(key.when >= now_, "imported event in the past");
    return emplaceRaw(key.when, key.seq, std::move(fn));
  }

  /// Mark `owner`'s queued events as tracked: minTrackedKey() reports the
  /// earliest live key over all tracked owners. The sharded runtime
  /// tracks cut-node owners — the only events that can export — and
  /// publishes the result as part of its outbound lower bound.
  void trackOwner(std::uint32_t owner) {
    MAXMIN_CHECK(canonical_ && owner < trackedOwner_.size());
    trackedOwner_[owner] = 1;
  }

  /// Earliest queued live key belonging to a tracked owner; false when
  /// none are queued. Amortized O(log n): stale heap tops (fired or
  /// cancelled events) are dropped lazily here.
  bool minTrackedKey(EventKey& out) {
    while (!trackedHeap_.empty()) {
      const Key& top = trackedHeap_.front();
      if (record(top.slot).gen == top.gen) {
        out = EventKey{top.when, top.seq};
        return true;
      }
      std::pop_heap(trackedHeap_.begin(), trackedHeap_.end(), laterKey);
      trackedHeap_.pop_back();
    }
    return false;
  }

  /// Move the clock forward without running anything — the window barrier
  /// for parked shard lanes (events scheduled *at* `t` stay queued and
  /// run in the next window).
  void advanceClockTo(TimePoint t) {
    MAXMIN_CHECK_MSG(t >= now_, "clock would move backwards");
    now_ = t;
  }

  /// Enter the context of a foreign event being applied from an import:
  /// clock and current key move to the foreign key so everything the
  /// apply touches (timestamps, nested schedules, export stamps) behaves
  /// as if the foreign event executed here.
  void beginExternalEvent(EventKey key) {
    MAXMIN_CHECK(canonical_);
    advanceClockTo(key.when);
    currentKey_ = key;
    currentOwner_ = static_cast<std::uint32_t>(key.seq >> kOwnerShift);
  }

  /// Flush kernel counters to the metrics registry (sharded runs step()
  /// lanes directly and never pass through run()/runUntil(); the
  /// coordinator calls this serially after workers join).
  void flushMetrics() { publishObsMetrics(); }

 private:
  /// Below this many tombstones, compaction isn't worth the sweep.
  static constexpr std::size_t kCompactMinDead = 64;
  static constexpr std::uint32_t kFreeListEnd = 0xffffffffu;
  /// Records per slab chunk. Chunks are allocated once and never move,
  /// which is what lets step() invoke callbacks in place.
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  /// Slab-resident event record. `gen` is the slot's current generation;
  /// a queue key is live iff its stored generation matches. Free slots
  /// are chained through `nextFree`. Exactly one cache line (4 + 4 + 56
  /// bytes, line-aligned), so touching a record never splits lines.
  struct alignas(64) Record {
    std::uint32_t gen = 1;
    std::uint32_t nextFree = kFreeListEnd;
    EventFn fn;
  };
  static_assert(sizeof(Record) == 64);

  /// Queue element. Carries the ordering key (when, seq) inline so sorts
  /// and scans stay within contiguous arrays instead of chasing slab
  /// pointers, plus the {slot, gen} identity of the event.
  struct Key {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  [[nodiscard]] static constexpr EventId makeId(std::uint32_t slot,
                                                std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }
  static constexpr std::uint32_t slotOf(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static constexpr std::uint32_t genOf(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// (when, seq) lexicographic order. seq is globally unique, so the
  /// order is total and FIFO within an instant.
  static bool earlier(const Key& a, const Key& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  /// Inverted order for the tracked-owner min-heap (std::push_heap keeps
  /// the comparator's maximum at the front).
  static bool laterKey(const Key& a, const Key& b) { return earlier(b, a); }

  Record& record(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  const Record& record(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  bool isLive(const Key& k) const { return record(k.slot).gen == k.gen; }

  /// Sequence the event (global FIFO counter, or {owner, counter} in
  /// canonical mode) and store it; shared tail of schedule()/scheduleAt().
  [[nodiscard]] EventId emplaceEvent(TimePoint when, EventFn&& fn) {
    std::uint64_t seq;
    if (canonical_) {
      MAXMIN_CHECK_MSG(currentOwner_ < ownerCounters_.size(),
                       "schedule with no owner in scope");
      std::uint64_t& counter = ownerCounters_[currentOwner_];
      MAXMIN_CHECK(counter < (std::uint64_t{1} << kOwnerShift));
      seq = (static_cast<std::uint64_t>(currentOwner_) << kOwnerShift) |
            counter++;
    } else {
      seq = nextSeq_++;
    }
    return emplaceRaw(when, seq, std::move(fn));
  }

  /// Allocate a slab slot and queue {when, seq}. Imported events land
  /// here directly with their foreign key (no counter is advanced).
  [[nodiscard]] EventId emplaceRaw(TimePoint when, std::uint64_t seq,
                                   EventFn&& fn) {
    MAXMIN_CHECK_MSG(when >= now_, "event scheduled in the past: "
                                       << when << " < now " << now_);
    MAXMIN_CHECK(static_cast<bool>(fn));
    std::uint32_t slot;
    if (freeHead_ != kFreeListEnd) {
      slot = freeHead_;
      freeHead_ = record(slot).nextFree;
    } else {
      MAXMIN_CHECK(slotCount_ < kFreeListEnd - 1);
      if ((slotCount_ & (kChunkSize - 1)) == 0) {
        chunks_.emplace_back(new Record[kChunkSize]);
      }
      slot = slotCount_++;
    }
    Record& r = record(slot);
    r.fn = std::move(fn);
    const Key key{when, seq, slot, r.gen};
    pushKey(key);
    lastScheduledKey_ = EventKey{when, seq};
    if (canonical_) {
      const auto owner = static_cast<std::uint32_t>(seq >> kOwnerShift);
      if (owner < trackedOwner_.size() && trackedOwner_[owner] != 0) {
        trackedHeap_.push_back(key);
        std::push_heap(trackedHeap_.begin(), trackedHeap_.end(), laterKey);
      }
    }
    ++live_;
    if (live_ > maxLive_) maxLive_ = live_;
    return makeId(slot, r.gen);
  }

  /// Bump the slot's generation (invalidating outstanding ids), release
  /// the callback, return the slot to the free list. Used by cancel();
  /// step() inlines the same sequence around the in-place invoke.
  void retire(std::uint32_t slot) {
    Record& r = record(slot);
    ++r.gen;
    r.fn.reset();
    r.nextFree = freeHead_;
    freeHead_ = slot;
  }

  /// Route a key to the tier covering its timestamp.
  void pushKey(const Key& key) {
    if (key.when >= windowEnd_) {
      far_.push_back(key);
    } else if (key.when >= runEnd_) {
      buckets_[bucketIndex(key.when)].push_back(key);
    } else {
      insertIntoRun(key);
    }
  }

  std::size_t bucketIndex(TimePoint when) const {
    return static_cast<std::size_t>((when - windowStart_).asMicros() /
                                    bucketWidthUs_);
  }

  /// Advance tiers until the next live key sits at run_[runPos_].
  /// Returns false when no live events remain.
  bool ensureRunFront() {
    for (;;) {
      while (runPos_ < run_.size()) {
        if (isLive(run_[runPos_])) return true;
        ++runPos_;  // drop tombstone
        --dead_;
      }
      if (live_ == 0) {
        resetTiers();
        return false;
      }
      refillRun();  // a refilled run may still lead with tombstones
    }
  }

  /// Publish kernel activity to the metrics registry as deltas since the
  /// last publish. Per-op instrumentation would bloat the inlined hot
  /// paths even when dormant, so the kernel counts in plain members and
  /// run()/runUntil() reconcile at their exit — counters therefore cover
  /// activity up to the last completed run boundary, and enabling the
  /// registry mid-run takes effect at that boundary. The markers advance
  /// unconditionally so a later enable never back-credits earlier runs.
  /// Defined out of line so the header's inline hot paths compile to the
  /// same code whether or not observability is built in.
  void publishObsMetrics();

  void insertIntoRun(const Key& key);
  void refillRun();
  void rebuildWindow();
  void resetTiers();
  void compact();

  TimePoint now_;
  std::vector<std::unique_ptr<Record[]>> chunks_;  ///< stable slab storage
  std::uint32_t slotCount_ = 0;            ///< slots handed out so far
  std::uint32_t freeHead_ = kFreeListEnd;  ///< head of the free-slot chain

  // --- calendar tiers ------------------------------------------------------
  // Invariant time partition: run_ covers [now_, runEnd_), buckets_ cover
  // [windowStart_, windowEnd_) beyond the run, far_ covers [windowEnd_, inf).
  std::vector<Key> run_;    ///< sorted active run; popped via runPos_
  std::size_t runPos_ = 0;  ///< cursor into run_
  TimePoint runEnd_;        ///< run_ holds every pending key before this
  std::vector<std::vector<Key>> buckets_;  ///< unsorted per-interval keys
  std::size_t activeBuckets_ = 0;  ///< buckets in the current window; the
                                   ///< array itself only ever grows, so
                                   ///< bucket capacity survives window
                                   ///< rebuilds and steady-state windows
                                   ///< never re-allocate
  std::size_t nextBucket_ = 0;             ///< first bucket not yet drained
  TimePoint windowStart_;
  TimePoint windowEnd_;  ///< == windowStart_ when no window is active
  std::int64_t bucketWidthUs_ = 1;
  std::vector<Key> far_;  ///< unsorted keys at/after windowEnd_

  std::size_t live_ = 0;     ///< pending (non-cancelled) events
  std::size_t dead_ = 0;     ///< tombstone keys still in some tier
  std::size_t maxLive_ = 0;  ///< high-water mark of live_
  std::uint64_t nextSeq_ = 0;

  // --- canonical owner ordering --------------------------------------------
  bool canonical_ = false;
  std::uint32_t currentOwner_ = 0;
  EventKey currentKey_;
  EventKey lastScheduledKey_;
  std::vector<std::uint64_t> ownerCounters_;  ///< per-owner schedule counts
  std::vector<std::uint8_t> trackedOwner_;    ///< owners minTrackedKey covers
  std::vector<Key> trackedHeap_;  ///< min-heap of tracked queued keys
                                  ///< (lazily pruned of fired/cancelled)
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  // Publish markers: portion of each count already sent to the registry.
  std::uint64_t pubScheduled_ = 0;
  std::uint64_t pubExecuted_ = 0;
  std::uint64_t pubCancelled_ = 0;
};

/// RAII owner attribution: node state machines (mac::Dcf, net::NodeStack)
/// open one at every externally-callable entry point so anything they
/// schedule is sequenced under their own node id, no matter which event's
/// callback chain invoked them. A no-op in legacy (non-canonical) mode
/// beyond two stores.
class OwnerScope {
 public:
  OwnerScope(Simulator& sim, std::uint32_t owner)
      : sim_{sim}, prev_{sim.currentOwner()} {
    sim_.setCurrentOwner(owner);
  }
  OwnerScope(const OwnerScope&) = delete;
  OwnerScope& operator=(const OwnerScope&) = delete;
  ~OwnerScope() { sim_.setCurrentOwner(prev_); }

 private:
  Simulator& sim_;
  std::uint32_t prev_;
};

}  // namespace maxmin::sim
