// One-shot and periodic timers layered over the Simulator.
//
// A Timer owns its pending event: destroying or restarting it cancels the
// previous schedule, which removes the classic dangling-callback hazard of
// raw schedule()/cancel() pairs. The callback lives in the Timer itself;
// the kernel only ever sees a one-pointer thunk, so arming never allocates.
#pragma once

#include "sim/event_fn.hpp"
#include "sim/simulator.hpp"

namespace maxmin::sim {

/// One-shot cancellable timer.
class Timer {
 public:
  explicit Timer(Simulator& sim) : sim_{&sim} {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arm to fire `delay` from now. A pending schedule is cancelled.
  void arm(Duration delay, EventFn fn);

  void cancel();

  [[nodiscard]] bool pending() const { return id_ != kInvalidEventId; }

 private:
  void fire();

  Simulator* sim_;
  EventId id_ = kInvalidEventId;
  EventFn fn_;
};

/// Fixed-interval periodic timer. The callback runs once per period until
/// stop() or destruction.
class PeriodicTimer {
 public:
  explicit PeriodicTimer(Simulator& sim) : timer_{sim}, sim_{&sim} {}

  /// Start with the first firing `period` from now.
  void start(Duration period, EventFn fn);

  /// Start with the first firing after `initialDelay`, then every `period`.
  void start(Duration initialDelay, Duration period, EventFn fn);

  void stop() { timer_.cancel(); }

  [[nodiscard]] bool running() const { return timer_.pending(); }

 private:
  void fire();

  Timer timer_;
  Simulator* sim_;
  Duration period_ = Duration::zero();
  EventFn fn_;
};

}  // namespace maxmin::sim
