#include "sim/timer.hpp"

#include <utility>

#include "util/check.hpp"

namespace maxmin::sim {

void Timer::arm(Duration delay, std::function<void()> fn) {
  cancel();
  id_ = sim_->schedule(delay, [this, fn = std::move(fn)] {
    id_ = kInvalidEventId;  // clear before user code so it may re-arm
    fn();
  });
}

void Timer::cancel() {
  if (id_ != kInvalidEventId) {
    sim_->cancel(id_);
    id_ = kInvalidEventId;
  }
}

void PeriodicTimer::start(Duration period, std::function<void()> fn) {
  start(period, period, std::move(fn));
}

void PeriodicTimer::start(Duration initialDelay, Duration period,
                          std::function<void()> fn) {
  MAXMIN_CHECK(period > Duration::zero());
  period_ = period;
  fn_ = std::move(fn);
  timer_.arm(initialDelay, [this] { fire(); });
}

void PeriodicTimer::fire() {
  timer_.arm(period_, [this] { fire(); });
  fn_();  // may call stop(); the re-arm above is then cancelled
}

}  // namespace maxmin::sim
