#include "sim/timer.hpp"

#include <utility>

#include "util/check.hpp"

namespace maxmin::sim {

void Timer::arm(Duration delay, EventFn fn) {
  cancel();
  fn_ = std::move(fn);
  id_ = sim_->schedule(delay, [this] { fire(); });
}

void Timer::fire() {
  id_ = kInvalidEventId;  // clear before user code so it may re-arm
  EventFn fn = std::move(fn_);
  fn();
}

void Timer::cancel() {
  if (id_ != kInvalidEventId) {
    sim_->cancel(id_);
    id_ = kInvalidEventId;
    fn_.reset();
  }
}

void PeriodicTimer::start(Duration period, EventFn fn) {
  start(period, period, std::move(fn));
}

void PeriodicTimer::start(Duration initialDelay, Duration period,
                          EventFn fn) {
  MAXMIN_CHECK(period > Duration::zero());
  period_ = period;
  fn_ = std::move(fn);
  timer_.arm(initialDelay, [this] { fire(); });
}

void PeriodicTimer::fire() {
  timer_.arm(period_, [this] { fire(); });
  fn_();  // may call stop(); the re-arm above is then cancelled
}

}  // namespace maxmin::sim
