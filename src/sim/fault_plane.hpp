// Fault injection for the simulation substrate.
//
// A FaultPlane holds the ground truth about which nodes and links are
// currently alive and how far each node's clock is skewed, and mutates
// that state over simulated time from a script (deterministic, explicit
// events) and/or a seeded stochastic churn process (exponential up/down
// sojourns). Consumers query it:
//
//   * phys::Medium suppresses transmissions from dead nodes and
//     receptions at dead nodes / over cut links;
//   * net::Network listens for crash/recover transitions to flush a
//     crashed stack's volatile state;
//   * gmp::Controller staggers period-boundary measurement closes by
//     each node's clock skew.
//
// The plane lives in the sim layer so every layer above can depend on
// it; node ids are plain int32 here (the same representation topo::NodeId
// uses) because sim must not depend on the topology library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace maxmin::sim {

/// One scripted fault transition.
struct FaultEvent {
  enum class Kind {
    kNodeDown,   ///< crash: node stops transmitting, receiving, forwarding
    kNodeUp,     ///< recover: node rejoins with empty volatile state
    kLinkDown,   ///< cut the (undirected) link between `node` and `peer`
    kLinkUp,     ///< restore the link
    kClockSkew,  ///< set node's period-boundary clock offset to `skew`
  };

  TimePoint at;
  Kind kind = Kind::kNodeDown;
  std::int32_t node = -1;
  std::int32_t peer = -1;            ///< second endpoint for kLink*
  Duration skew = Duration::zero();  ///< for kClockSkew
};

const char* faultEventKindName(FaultEvent::Kind kind);

/// Seeded stochastic churn: each listed node alternates exponential up
/// and down sojourns, starting up at `start`. Disabled unless both means
/// are positive and `nodes` is non-empty.
struct ChurnConfig {
  std::vector<std::int32_t> nodes;
  double meanUpSeconds = 0.0;
  double meanDownSeconds = 0.0;
  TimePoint start;
  /// No new outages begin after `stop`; a node that is down at `stop`
  /// recovers at its already-scheduled instant and then stays up.
  TimePoint stop = TimePoint::max();

  [[nodiscard]] bool enabled() const {
    return !nodes.empty() && meanUpSeconds > 0.0 && meanDownSeconds > 0.0;
  }
};

/// A full fault schedule: scripted events plus optional churn.
struct FaultScript {
  std::vector<FaultEvent> events;
  ChurnConfig churn;

  [[nodiscard]] bool empty() const { return events.empty() && !churn.enabled(); }
};

/// Parse the line-oriented fault-script format used by `maxmin-sim
/// --faults` (either inline text or file contents). Lines are separated
/// by newlines or ';'; '#' starts a comment. Grammar (times in simulated
/// seconds, skews in milliseconds):
///
///   crash <node> <t>
///   recover <node> <t>
///   linkdown <a> <b> <t>
///   linkup <a> <b> <t>
///   skew <node> <ms> [<t>]
///   churn nodes=<a,b,...> up=<sec> down=<sec> [from=<sec>] [until=<sec>]
///
/// Throws std::invalid_argument on malformed input.
FaultScript parseFaultScript(std::string_view text);

/// Serialize a script back into the exact grammar parseFaultScript
/// accepts, one statement per line — the replay format the chaos fuzzer
/// emits alongside a failing seed. Round-trips exactly for every event
/// time on the microsecond grid: "%.6f" names the tick exactly and the
/// parser rounds the decimal text to the nearest microsecond, so a value
/// like 8.1 s (no exact double) cannot re-quantize one tick low — chaos
/// schedules on 250 ms quantum edges included.
std::string toScriptText(const FaultScript& script);

/// Observer of fault transitions (e.g. net::Network flushing a crashed
/// node's volatile state). Callbacks fire after the plane's own state has
/// been updated, in listener registration order.
class FaultListener {
 public:
  virtual ~FaultListener() = default;
  virtual void onNodeDown(std::int32_t node) { (void)node; }
  virtual void onNodeUp(std::int32_t node) { (void)node; }
  virtual void onLinkChanged(std::int32_t a, std::int32_t b, bool up) {
    (void)a;
    (void)b;
    (void)up;
  }
};

class FaultPlane {
 public:
  /// The rng is only drawn from when the script's churn is enabled, so a
  /// scripted-only plane stays bit-identical across seeds.
  FaultPlane(Simulator& sim, int numNodes, FaultScript script, Rng rng);

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  /// Register an observer; must outlive the plane's scheduled events.
  void addListener(FaultListener* listener);

  /// Schedule every scripted event (and the churn process) on the
  /// simulator. Call once, before running.
  void start();

  // --- state queries ------------------------------------------------------
  [[nodiscard]] bool nodeUp(std::int32_t node) const;
  /// True iff both endpoints are up and the undirected link is not cut.
  [[nodiscard]] bool linkUp(std::int32_t a, std::int32_t b) const;
  /// True iff the undirected link is explicitly cut (independent of the
  /// endpoints' up/down state). The partition-aware controller keys its
  /// quarantine decisions on cuts alone: node crashes are handled by the
  /// measurement-staleness machinery, which deliberately bridges short
  /// outages instead of quarantining them.
  [[nodiscard]] bool linkCut(std::int32_t a, std::int32_t b) const;
  [[nodiscard]] std::size_t cutLinkCount() const { return cutLinks_.size(); }
  [[nodiscard]] Duration clockSkew(std::int32_t node) const;
  /// Largest skew across all nodes (the controller's assembly delay).
  [[nodiscard]] Duration maxClockSkew() const;

  // --- diagnostics --------------------------------------------------------
  [[nodiscard]] std::int64_t crashesInjected() const { return crashesInjected_; }
  [[nodiscard]] std::int64_t recoveriesInjected() const { return recoveriesInjected_; }
  [[nodiscard]] std::int64_t linkCutsInjected() const { return linkCutsInjected_; }

 private:
  void apply(const FaultEvent& e);
  void setNodeUp(std::int32_t node, bool up);
  /// Schedule the next churn transition for `node`.
  void scheduleChurn(std::int32_t node);
  std::pair<std::int32_t, std::int32_t> normalized(std::int32_t a,
                                                   std::int32_t b) const;
  void checkNode(std::int32_t node) const;

  Simulator& sim_;
  FaultScript script_;
  Rng rng_;
  std::vector<FaultListener*> listeners_;
  bool started_ = false;

  std::vector<bool> up_;
  std::vector<Duration> skew_;
  // Hashed: membership-only (insert/erase/contains, never iterated), so
  // the probe is O(1) on the per-frame linkUp path and no iteration order
  // can leak into results.
  std::unordered_set<std::pair<std::int32_t, std::int32_t>, IdPairHash>
      cutLinks_;

  std::int64_t crashesInjected_ = 0;
  std::int64_t recoveriesInjected_ = 0;
  std::int64_t linkCutsInjected_ = 0;
};

std::ostream& operator<<(std::ostream& os, const FaultEvent& e);

}  // namespace maxmin::sim
