// Small-buffer move-only callback for the event queue.
//
// std::function allocates for any capture larger than ~2 pointers and
// drags in copy-constructibility; nearly every event callback in this
// codebase captures a `this` pointer and at most a couple of values.
// EventFn stores callables up to kInlineSize bytes in place (no heap
// traffic on the schedule/fire hot path) and falls back to the heap only
// for oversized or throwing-move captures. Trivially-relocatable payloads
// (plain capture lambdas, the heap fallback's pointer) move via a
// constant-size memcpy — a handful of vector stores, no indirect call.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace maxmin::sim {

class EventFn {
 public:
  /// Inline capture budget. 48 bytes holds a `this` pointer plus five
  /// words of captured state — every callback in src/ fits.
  static constexpr std::size_t kInlineSize = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (kInlinable<Fn>) {
      if constexpr (kTrivialRelocate<Fn>) {
        // Trivial payloads relocate by whole-buffer memcpy; define every
        // byte up front so the tail beyond sizeof(Fn) is legal to read.
        std::memset(storage_, 0, kInlineSize);
      }
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      std::memset(storage_, 0, kInlineSize);
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { moveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct `dst` from `src`'s payload and destroy `src`'s.
    /// nullptr means the payload relocates by whole-buffer memcpy.
    void (*relocate)(void* src, void* dst) noexcept;
    /// nullptr means the payload needs no destruction.
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr bool kInlinable =
      sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(void*) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr bool kTrivialRelocate =
      std::is_trivially_move_constructible_v<Fn> &&
      std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      kTrivialRelocate<Fn>
          ? nullptr
          : +[](void* src, void* dst) noexcept {
              Fn* f = std::launder(reinterpret_cast<Fn*>(src));
              ::new (dst) Fn(std::move(*f));
              f->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  /// Heap payload is a single owning pointer: trivially relocatable, but
  /// must be deleted on destroy.
  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      nullptr,
      [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  void moveFrom(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate != nullptr) {
        other.ops_->relocate(other.storage_, storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineSize);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  // Pointer alignment (not max_align_t) keeps sizeof(EventFn) at 56, so a
  // slab Record fits exactly one cache line; over-aligned callables take
  // the heap path via kInlinable.
  alignas(void*) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace maxmin::sim
