#include "sim/chaos.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace maxmin::sim {

namespace {

constexpr double kTickSeconds = 0.25;  // binary-exact quantum

/// Quantize to the 250 ms grid (toward zero; draws are positive).
double quantize(double seconds) {
  return static_cast<double>(static_cast<std::int64_t>(seconds / kTickSeconds)) *
         kTickSeconds;
}

TimePoint at(double seconds) {
  return TimePoint::origin() + Duration::seconds(seconds);
}

FaultEvent nodeEvent(FaultEvent::Kind kind, std::int32_t node, double t) {
  FaultEvent e;
  e.kind = kind;
  e.node = node;
  e.at = at(t);
  return e;
}

FaultEvent linkEvent(FaultEvent::Kind kind, std::int32_t a, std::int32_t b,
                     double t) {
  FaultEvent e = nodeEvent(kind, a, t);
  e.peer = b;
  return e;
}

}  // namespace

FaultScript generateChaosSchedule(const ChaosConfig& config, Rng& rng) {
  MAXMIN_CHECK(config.numNodes > 0);
  MAXMIN_CHECK(config.minOutageSeconds > 0.0 &&
               config.minOutageSeconds <= config.maxOutageSeconds);
  MAXMIN_CHECK_MSG(
      config.startSeconds + config.maxOutageSeconds < config.healBySeconds,
      "chaos window too short for the configured outages");

  const double lastStart = config.healBySeconds - config.maxOutageSeconds;
  const auto drawStart = [&] {
    return std::max(config.startSeconds,
                    quantize(rng.uniformReal(config.startSeconds, lastStart)));
  };
  const auto drawOutage = [&] {
    return std::max(kTickSeconds,
                    quantize(rng.uniformReal(config.minOutageSeconds,
                                             config.maxOutageSeconds)));
  };

  FaultScript script;

  // Crash storms: a burst of simultaneous crashes biased toward the
  // relay backbone, each victim recovering independently.
  const std::vector<std::int32_t>& victims = config.relayNodes;
  for (int s = 0; s < config.crashStorms; ++s) {
    const double t = drawStart();
    std::set<std::int32_t> storm;
    const int want =
        std::min<int>(config.stormSize,
                      victims.empty() ? config.numNodes
                                      : static_cast<int>(victims.size()));
    // Bounded rejection sampling keeps the draw count deterministic-ish
    // without shuffling the whole candidate list.
    for (int tries = 0; static_cast<int>(storm.size()) < want && tries < 64;
         ++tries) {
      const std::int32_t v =
          victims.empty()
              ? static_cast<std::int32_t>(
                    rng.uniformInt(0, config.numNodes - 1))
              : victims[static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(victims.size()) - 1))];
      storm.insert(v);
    }
    for (const std::int32_t v : storm) {
      const double outage = drawOutage();
      script.events.push_back(nodeEvent(FaultEvent::Kind::kNodeDown, v, t));
      script.events.push_back(
          nodeEvent(FaultEvent::Kind::kNodeUp, v, t + outage));
    }
  }

  // Flapping links: several short down/up cycles in a row on one link.
  for (int f = 0; f < config.linkFlaps && !config.links.empty(); ++f) {
    const auto& [a, b] = config.links[static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(config.links.size()) - 1))];
    double t = drawStart();
    for (int c = 0; c < config.flapCycles; ++c) {
      const double down = std::max(
          kTickSeconds, quantize(rng.uniformReal(config.minOutageSeconds,
                                                 config.maxOutageSeconds) /
                                 config.flapCycles));
      if (t + down > config.healBySeconds) break;
      script.events.push_back(linkEvent(FaultEvent::Kind::kLinkDown, a, b, t));
      script.events.push_back(
          linkEvent(FaultEvent::Kind::kLinkUp, a, b, t + down));
      t += down + kTickSeconds;  // brief up-gap between cycles
    }
  }

  // Partition-then-heal: cut every link of one node at once, restoring
  // them together. Isolating a node splits the alive graph — flows into
  // or through it lose their paths until the heal.
  for (int i = 0; i < config.isolations && !config.links.empty(); ++i) {
    const std::int32_t victim =
        static_cast<std::int32_t>(rng.uniformInt(0, config.numNodes - 1));
    const double t = drawStart();
    const double outage = drawOutage();
    for (const auto& [a, b] : config.links) {
      if (a != victim && b != victim) continue;
      script.events.push_back(linkEvent(FaultEvent::Kind::kLinkDown, a, b, t));
      script.events.push_back(
          linkEvent(FaultEvent::Kind::kLinkUp, a, b, t + outage));
    }
  }

  std::stable_sort(script.events.begin(), script.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  return script;
}

}  // namespace maxmin::sim
