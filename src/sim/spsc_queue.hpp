// Single-producer single-consumer ring for shard boundary traffic.
//
// Each pair of adjacent shard lanes exchanges boundary transmissions over
// two of these (one per direction), so every queue has exactly one
// producer thread (the exporting lane's worker) and one consumer thread
// (the importing lane's worker). Power-of-two capacity, release/acquire
// head/tail — the standard wait-free ring, except that push() *waits* on
// a full ring instead of failing: the consumer drains its inboxes on
// every iteration of its scheduling loop (even while blocked on
// null-message bounds or parked at the window barrier), so the wait is
// short and cannot deadlock. The coordinator's termination detector reads
// both indices with seq_cst to pair with the workers' parked flags.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace maxmin::sim {

/// One polite spin-wait step (PAUSE on x86, plain yield elsewhere).
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity = 1024)
      : mask_{capacity - 1}, slots_(capacity) {
    MAXMIN_CHECK_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                     "SpscQueue capacity must be a power of two");
  }
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Blocks (spinning) while the ring is full.
  void push(T value) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    while (t - head_.load(std::memory_order_acquire) > mask_) {
      cpuRelax();
    }
    slots_[static_cast<std::size_t>(t & mask_)] = std::move(value);
    tail_.store(t + 1, std::memory_order_release);
  }

  /// Consumer side. Returns false when the ring is empty.
  bool pop(T& out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[static_cast<std::size_t>(h & mask_)]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side cheap emptiness probe (no element access).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Termination-detector probe: seq_cst so it totally orders with the
  /// workers' parked-flag and work-counter stores (see ShardedRuntime).
  [[nodiscard]] bool emptySeqCst() const {
    return head_.load(std::memory_order_seq_cst) ==
           tail_.load(std::memory_order_seq_cst);
  }

 private:
  std::uint64_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace maxmin::sim
