// Conservative parallel-DES runtime over spatially sharded lanes
// (DESIGN.md §15).
//
// Each *lane* wraps one canonical-order sim::Simulator plus an
// apply-import callback, and exchanges boundary messages with its two
// neighbors in a chain — the shape the strip carving in topo::ShardPlan
// guarantees (non-adjacent strips cannot interact). Synchronization is
// Chandy–Misra–Bryant with a positive lookahead λ and null messages
// folded into one continuously republished *bound* per lane:
//
//   bound(k) = min( earliest queued cut-owner key,
//                   (min(next local key, earliest pending import).when + λ, 0),
//                   (neighbor bound.when + λ, 0) for each neighbor )
//
// which lower-bounds every key lane k can ever export from now on: queued
// cut events are tracked from birth and export at their own key; anything
// a future local execution or import application spawns lies at least λ
// later than the event that spawned it (λ = SIFS for the 802.11 MAC: every
// cross-node reaction passes through a timer of at least SIFS). A lane
// executes its earliest candidate (local event or pending import) only
// when both neighbors' bounds lie strictly *after* the candidate's key —
// strict, because keys are globally unique under canonical owner
// sequencing, so the totally ordered (when, seq) keys make the classic
// same-timestamp CMB deadlock impossible: the lane holding the globally
// smallest key always finds both neighbor bounds beyond it.
//
// Bounds are enduring promises, not monotone streams: each published
// value is valid from its publication forever (within a window), so a
// reader acting on a stale read is merely conservative. Publication order
// makes the promise airtight against in-flight traffic: a worker reads
// neighbor bounds first, then drains its inboxes, then computes its own
// bound from the drained pending set plus those bound reads — an export
// not yet covered by the read bound is necessarily visible in the drain
// (the exporter pushes before it republishes).
//
// Windows: the coordinator (Network) alternates parallel windows with
// serial control-plane barriers. Because the barrier schedules new lane
// events, bounds published at the end of one window are unsound at the
// start of the next; runWindow() therefore re-initializes every lane's
// bound serially (local terms, then one relaxation sweep each direction —
// the fixpoint on a chain) before releasing the workers. Termination of a
// window is detected by a double snapshot of parked flags + per-lane work
// counters + channel emptiness, all seq_cst: any activity between the two
// snapshots bumps a counter, and the unpark-before-pop / push-before-park
// worker discipline makes in-flight messages visible to the snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "obs/profile.hpp"
#include "sim/simulator.hpp"
#include "sim/spsc_queue.hpp"
#include "util/check.hpp"
#include "util/time.hpp"

// ThreadSanitizer cannot instrument standalone atomic_thread_fence (GCC
// promotes the -Wtsan warning to an error), so sanitizer builds run the
// seqlock below on all-seq_cst accesses instead: the single total order
// makes the same version-stability argument go through, and sanitizer
// builds don't care about the extra store cost.
#if defined(__SANITIZE_THREAD__)
#define MAXMIN_SEQLOCK_SEQCST 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MAXMIN_SEQLOCK_SEQCST 1
#endif
#endif
#ifndef MAXMIN_SEQLOCK_SEQCST
#define MAXMIN_SEQLOCK_SEQCST 0
#endif

namespace maxmin::sim {

/// Ordered-after-everything sentinel ("no constraint").
inline constexpr EventKey kInfiniteKey{TimePoint::max(), ~std::uint64_t{0}};

/// One lane's published export lower bound: a (when, seq) pair written by
/// its worker and read by both neighbors. A seqlock over relaxed atomics
/// — a torn 128-bit read could fabricate a pair above both the old and
/// new value, which is exactly the unsound direction, so readers retry
/// until they see a version-stable pair. Single writer per instance.
class PublishedBound {
 public:
  void store(EventKey k) {
    const std::uint32_t v = version_.load(std::memory_order_relaxed);
#if MAXMIN_SEQLOCK_SEQCST
    version_.store(v + 1, std::memory_order_seq_cst);  // odd: in progress
    whenUs_.store(k.when.asMicros(), std::memory_order_seq_cst);
    seq_.store(k.seq, std::memory_order_seq_cst);
    version_.store(v + 2, std::memory_order_seq_cst);
#else
    version_.store(v + 1, std::memory_order_relaxed);  // odd: in progress
    std::atomic_thread_fence(std::memory_order_release);
    whenUs_.store(k.when.asMicros(), std::memory_order_relaxed);
    seq_.store(k.seq, std::memory_order_relaxed);
    version_.store(v + 2, std::memory_order_release);
#endif
  }

  [[nodiscard]] EventKey load() const {
    for (;;) {
#if MAXMIN_SEQLOCK_SEQCST
      const std::uint32_t v1 = version_.load(std::memory_order_seq_cst);
      const std::int64_t w = whenUs_.load(std::memory_order_seq_cst);
      const std::uint64_t s = seq_.load(std::memory_order_seq_cst);
      if ((v1 & 1u) == 0 &&
          version_.load(std::memory_order_seq_cst) == v1) {
        return EventKey{TimePoint::fromMicros(w), s};
      }
#else
      const std::uint32_t v1 = version_.load(std::memory_order_acquire);
      const std::int64_t w = whenUs_.load(std::memory_order_relaxed);
      const std::uint64_t s = seq_.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if ((v1 & 1u) == 0 &&
          version_.load(std::memory_order_relaxed) == v1) {
        return EventKey{TimePoint::fromMicros(w), s};
      }
#endif
      cpuRelax();
    }
  }

 private:
  std::atomic<std::uint32_t> version_{0};
  std::atomic<std::int64_t> whenUs_{TimePoint::max().asMicros()};
  std::atomic<std::uint64_t> seq_{~std::uint64_t{0}};
};

template <typename Message>
class ShardedRuntime {
 public:
  struct LaneSetup {
    Simulator* sim = nullptr;
    /// Apply one imported boundary message at `key` (the exporting
    /// event's canonical position). The runtime has already entered the
    /// foreign event's context via Simulator::beginExternalEvent.
    // maxmin-lint: allow(event-fn) once per boundary crossing, not per event
    std::function<void(const Message&, EventKey key)> applyImport;
  };

  ShardedRuntime(std::vector<LaneSetup> setups, Duration lookahead)
      : lookahead_{lookahead} {
    MAXMIN_CHECK(!setups.empty());
    MAXMIN_CHECK(lookahead > Duration::zero());
    lanes_.reserve(setups.size());
    for (LaneSetup& s : setups) {
      MAXMIN_CHECK(s.sim != nullptr && s.sim->canonicalOrder());
      MAXMIN_CHECK(static_cast<bool>(s.applyImport));
      auto lane = std::make_unique<Lane>();
      lane->sim = s.sim;
      lane->applyImport = std::move(s.applyImport);
      lanes_.push_back(std::move(lane));
    }
    for (std::size_t k = 0; k < lanes_.size(); ++k) {
      if (k > 0) lanes_[k]->fromLeft = std::make_unique<Channel>();
      if (k + 1 < lanes_.size()) {
        lanes_[k]->fromRight = std::make_unique<Channel>();
      }
    }
  }

  [[nodiscard]] int numLanes() const {
    return static_cast<int>(lanes_.size());
  }

  /// Ship `msg`, occurring at `key`, from lane `fromLane` to both
  /// adjacent lanes. Called from inside the exporting lane's event
  /// execution (its own worker thread), which is what makes each channel
  /// single-producer.
  void exportFrom(int fromLane, const Message& msg, EventKey key) {
    const auto k = static_cast<std::size_t>(fromLane);
    if (k > 0) lanes_[k - 1]->fromRight->push(Envelope{msg, key});
    if (k + 1 < lanes_.size()) {
      lanes_[k + 1]->fromLeft->push(Envelope{msg, key});
    }
    ++lanes_[k]->exported;
  }

  /// Run every lane's events with key.when < `limit` (local and
  /// imported), then advance all lane clocks to `limit`. On return all
  /// channels and pending sets are empty. One lane runs inline; more
  /// spawn one worker thread per lane for the window.
  void runWindow(TimePoint limit) {
    if (lanes_.size() == 1) {
      Lane& lane = *lanes_[0];
      EventKey key;
      while (lane.sim->nextEventKey(key) && key.when < limit) {
        lane.sim->step();
        ++lane.executed;
      }
      lane.sim->advanceClockTo(limit);
      return;
    }
    initBounds();
    globalDone_.store(false, std::memory_order_seq_cst);
    for (auto& lane : lanes_) {
      lane->parked.store(false, std::memory_order_relaxed);
    }
    std::vector<std::thread> workers;
    workers.reserve(lanes_.size());
    for (std::size_t k = 0; k < lanes_.size(); ++k) {
      workers.emplace_back([this, k, limit] { workerLoop(k, limit); });
    }
    terminationLoop();
    for (std::thread& w : workers) w.join();
    for (auto& lane : lanes_) {
      MAXMIN_CHECK(lane->pending.empty());
      MAXMIN_CHECK(lane->fromLeft == nullptr || lane->fromLeft->empty());
      MAXMIN_CHECK(lane->fromRight == nullptr || lane->fromRight->empty());
      lane->sim->advanceClockTo(limit);
    }
  }

  // --- diagnostics (read between windows / after runs only) ---------------
  [[nodiscard]] std::uint64_t localEvents(int lane) const {
    return lanes_[static_cast<std::size_t>(lane)]->executed;
  }
  [[nodiscard]] std::uint64_t importedEvents(int lane) const {
    return lanes_[static_cast<std::size_t>(lane)]->imported;
  }
  [[nodiscard]] std::uint64_t exportedEvents(int lane) const {
    return lanes_[static_cast<std::size_t>(lane)]->exported;
  }

 private:
  struct Envelope {
    Message msg;
    EventKey key;
  };
  struct EnvelopeAfter {
    bool operator()(const Envelope& a, const Envelope& b) const {
      return b.key < a.key;  // min-heap by key
    }
  };
  using Channel = SpscQueue<Envelope>;

  struct Lane {
    Simulator* sim = nullptr;
    // maxmin-lint: allow(event-fn) per boundary crossing, see LaneSetup
    std::function<void(const Message&, EventKey)> applyImport;
    std::unique_ptr<Channel> fromLeft;   ///< inbox fed by lane k-1
    std::unique_ptr<Channel> fromRight;  ///< inbox fed by lane k+1
    std::priority_queue<Envelope, std::vector<Envelope>, EnvelopeAfter>
        pending;  ///< drained, not-yet-applied imports (worker-local)
    PublishedBound bound;
    EventKey lastPublished = kInfiniteKey;  ///< skip redundant stores
    std::uint64_t executed = 0;  ///< local events run (worker-owned)
    std::uint64_t imported = 0;  ///< foreign events applied
    std::uint64_t exported = 0;  ///< boundary messages shipped
    alignas(64) std::atomic<bool> parked{false};
    std::atomic<std::uint64_t> work{0};  ///< bumps on every unit of work
  };

  [[nodiscard]] EventKey neighborBound(std::size_t k, int dir) const {
    const std::size_t n = k + static_cast<std::size_t>(dir);
    // k == 0 with dir == -1 wraps to SIZE_MAX, caught by the range test.
    return n < lanes_.size() ? lanes_[n]->bound.load() : kInfiniteKey;
  }

  /// Recompute and publish lane k's bound from its own state plus the
  /// given (already read) neighbor bounds. See the file comment for why
  /// the caller must read neighbors *before* draining its inboxes.
  void publishBound(std::size_t k, EventKey inLeft, EventKey inRight) {
    Lane& lane = *lanes_[k];
    EventKey b = kInfiniteKey;
    EventKey tracked;
    if (lane.sim->minTrackedKey(tracked) && tracked < b) b = tracked;
    EventKey next = kInfiniteKey;
    EventKey peek;
    if (lane.sim->nextEventKey(peek)) next = peek;
    if (!lane.pending.empty() && lane.pending.top().key < next) {
      next = lane.pending.top().key;
    }
    if (next.when != TimePoint::max()) {
      const EventKey spawn{next.when + lookahead_, 0};
      if (spawn < b) b = spawn;
    }
    for (const EventKey& in : {inLeft, inRight}) {
      if (in.when != TimePoint::max()) {
        const EventKey relay{in.when + lookahead_, 0};
        if (relay < b) b = relay;
      }
    }
    if (!(b == lane.lastPublished)) {
      lane.bound.store(b);
      lane.lastPublished = b;
    }
  }

  /// Serial bound (re-)initialization at window start: end-of-window
  /// bounds are unsound once the control barrier has scheduled new lane
  /// events beneath them. Local terms first, then one relaxation sweep
  /// per direction reaches the chain fixpoint (further sweeps only ever
  /// re-derive values ≥ the existing minimum).
  void initBounds() {
    const std::size_t n = lanes_.size();
    for (std::size_t k = 0; k < n; ++k) {
      publishBound(k, kInfiniteKey, kInfiniteKey);
    }
    for (std::size_t k = 0; k < n; ++k) {
      publishBound(k, neighborBound(k, -1), neighborBound(k, +1));
    }
    for (std::size_t k = n; k-- > 0;) {
      publishBound(k, neighborBound(k, -1), neighborBound(k, +1));
    }
  }

  /// Max events executed per bounds-read (see the burst loop below).
  static constexpr int kBurst = 128;

  void workerLoop(std::size_t k, TimePoint limit) {
    MAXMIN_PROFILE_SCOPE("sim.shard.worker");
    Lane& lane = *lanes_[k];
    Simulator& sim = *lane.sim;
    bool parked = false;  // local mirror of lane.parked
    int spins = 0;
    // On a single hardware thread, spinning only steals the core from
    // whichever lane could actually make progress — hand it back at once.
    const bool yieldWhenBlocked = std::thread::hardware_concurrency() <= 1;
    for (;;) {
      // Read neighbor bounds BEFORE draining (soundness: see file
      // comment), then drain — unparking first so the termination
      // snapshot can never observe "parked with consumed messages".
      const EventKey inLeft = neighborBound(k, -1);
      const EventKey inRight = neighborBound(k, +1);
      if ((lane.fromLeft != nullptr && !lane.fromLeft->empty()) ||
          (lane.fromRight != nullptr && !lane.fromRight->empty())) {
        if (parked) {
          parked = false;
          lane.parked.store(false, std::memory_order_seq_cst);
        }
        lane.work.fetch_add(1, std::memory_order_seq_cst);
        Envelope env;
        if (lane.fromLeft != nullptr) {
          while (lane.fromLeft->pop(env)) lane.pending.push(std::move(env));
        }
        if (lane.fromRight != nullptr) {
          while (lane.fromRight->pop(env)) lane.pending.push(std::move(env));
        }
      }

      // Earliest candidate: next local event or earliest pending import.
      EventKey cand = kInfiniteKey;
      bool candIsImport = false;
      EventKey localKey;
      if (sim.nextEventKey(localKey)) cand = localKey;
      if (!lane.pending.empty() && lane.pending.top().key < cand) {
        cand = lane.pending.top().key;
        candIsImport = true;
      }

      publishBound(k, inLeft, inRight);

      if (cand.when >= limit) {  // also covers "no candidate at all"
        if (!parked) {
          parked = true;
          lane.parked.store(true, std::memory_order_seq_cst);
        }
        if (globalDone_.load(std::memory_order_seq_cst)) return;
        if (yieldWhenBlocked) {
          std::this_thread::yield();
        } else {
          cpuRelax();
        }
        continue;
      }
      if (!(inLeft > cand && inRight > cand)) {
        // Blocked on a neighbor; the republish above keeps the bound
        // chain relaxing while we wait.
        if (yieldWhenBlocked || ++spins >= 256) {
          spins = 0;
          std::this_thread::yield();
        }
        continue;
      }

      if (parked) {  // unreachable without an import, but keep the
        parked = false;  // parked flag honest around any execution
        lane.parked.store(false, std::memory_order_seq_cst);
      }
      spins = 0;
      lane.work.fetch_add(1, std::memory_order_seq_cst);
      // Execute a burst under the bounds already read. Both are enduring
      // promises: anything a neighbor exports while we run carries a key
      // >= the value we read, and every burst candidate is strictly
      // below it, so neither a re-read nor an inbox drain can change the
      // verdict mid-burst. Capped so our own republish (which the
      // neighbors' progress rides on) never lags far behind.
      for (int burst = 0; burst < kBurst; ++burst) {
        if (candIsImport) {
          const Envelope env = lane.pending.top();
          lane.pending.pop();
          sim.beginExternalEvent(env.key);
          lane.applyImport(env.msg, env.key);
          ++lane.imported;
        } else {
          sim.step();
          ++lane.executed;
        }
        cand = kInfiniteKey;
        candIsImport = false;
        if (sim.nextEventKey(localKey)) cand = localKey;
        if (!lane.pending.empty() && lane.pending.top().key < cand) {
          cand = lane.pending.top().key;
          candIsImport = true;
        }
        if (cand.when >= limit || !(inLeft > cand && inRight > cand)) break;
      }
    }
  }

  /// Sum of work counters iff every lane is parked and every channel
  /// empty; kNotQuiescent otherwise. Read order (parked, work, channels)
  /// matters: a parked=true read synchronizes with that worker's prior
  /// pushes, making them visible to the later channel probes.
  static constexpr std::uint64_t kNotQuiescent = ~std::uint64_t{0};
  [[nodiscard]] std::uint64_t snapshotIfQuiescent() const {
    for (const auto& lane : lanes_) {
      if (!lane->parked.load(std::memory_order_seq_cst)) return kNotQuiescent;
    }
    std::uint64_t sum = 0;
    for (const auto& lane : lanes_) {
      sum += lane->work.load(std::memory_order_seq_cst);
    }
    for (const auto& lane : lanes_) {
      if (lane->fromLeft != nullptr && !lane->fromLeft->emptySeqCst()) {
        return kNotQuiescent;
      }
      if (lane->fromRight != nullptr && !lane->fromRight->emptySeqCst()) {
        return kNotQuiescent;
      }
    }
    return sum;
  }

  void terminationLoop() {
    for (;;) {
      const std::uint64_t w1 = snapshotIfQuiescent();
      if (w1 != kNotQuiescent && snapshotIfQuiescent() == w1) {
        globalDone_.store(true, std::memory_order_seq_cst);
        return;
      }
      std::this_thread::yield();
    }
  }

  Duration lookahead_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<bool> globalDone_{false};
};

}  // namespace maxmin::sim
