#include "sim/fault_plane.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/num_text.hpp"

namespace maxmin::sim {

const char* faultEventKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kNodeDown: return "crash";
    case FaultEvent::Kind::kNodeUp: return "recover";
    case FaultEvent::Kind::kLinkDown: return "linkdown";
    case FaultEvent::Kind::kLinkUp: return "linkup";
    case FaultEvent::Kind::kClockSkew: return "skew";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const FaultEvent& e) {
  os << faultEventKindName(e.kind) << ' ' << e.node;
  if (e.kind == FaultEvent::Kind::kLinkDown ||
      e.kind == FaultEvent::Kind::kLinkUp) {
    os << '-' << e.peer;
  }
  if (e.kind == FaultEvent::Kind::kClockSkew) os << " +" << e.skew;
  return os << " @" << e.at;
}

namespace {

/// Event/churn times in the script grammar are seconds; six fixed decimals
/// name the microsecond tick exactly, and the to_chars wrapper keeps the
/// '.' separator regardless of the host locale (snprintf "%.6f" would emit
/// ',' under e.g. de_DE and break the replay contract).
void appendSeconds(std::ostringstream& os, double seconds) {
  char buf[40];
  os << formatDoubleFixed(buf, sizeof buf, seconds, 6);
}

}  // namespace

std::string toScriptText(const FaultScript& script) {
  std::ostringstream os;
  for (const FaultEvent& e : script.events) {
    os << faultEventKindName(e.kind) << ' ' << e.node;
    if (e.kind == FaultEvent::Kind::kLinkDown ||
        e.kind == FaultEvent::Kind::kLinkUp) {
      os << ' ' << e.peer;
    }
    if (e.kind == FaultEvent::Kind::kClockSkew) {
      os << ' ';
      appendSeconds(os, e.skew.asSeconds() * 1e3);  // grammar wants ms
    }
    os << ' ';
    appendSeconds(os, e.at.asSeconds());
    os << '\n';
  }
  if (script.churn.enabled()) {
    os << "churn nodes=";
    for (std::size_t i = 0; i < script.churn.nodes.size(); ++i) {
      if (i > 0) os << ',';
      os << script.churn.nodes[i];
    }
    os << " up=";
    appendSeconds(os, script.churn.meanUpSeconds);
    os << " down=";
    appendSeconds(os, script.churn.meanDownSeconds);
    if (script.churn.start != TimePoint::origin()) {
      os << " from=";
      appendSeconds(os, script.churn.start.asSeconds());
    }
    if (script.churn.stop != TimePoint::max()) {
      os << " until=";
      appendSeconds(os, script.churn.stop.asSeconds());
    }
    os << '\n';
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Script parsing
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void parseError(const std::string& line, const char* why) {
  throw std::invalid_argument("bad fault-script line '" + line + "': " + why);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is{line};
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

std::int32_t parseNode(const std::string& line, const std::string& tok) {
  try {
    const int v = std::stoi(tok);
    if (v < 0) parseError(line, "node id must be non-negative");
    return v;
  } catch (const std::invalid_argument&) {
    parseError(line, "expected a node id");
  } catch (const std::out_of_range&) {
    parseError(line, "node id out of range");
  }
}

double parseNum(const std::string& line, const std::string& tok) {
  double v = 0.0;
  if (!parseDouble(tok, v)) parseError(line, "expected a number");
  return v;
}

/// Seconds-as-text → microsecond tick, rounding to nearest. Script times
/// like "8.100000" have no exact double ("8.1" is 8.0999999999999996...),
/// so the truncating Duration::seconds() would land one tick low and each
/// serialize/parse cycle would drift the event earlier by a microsecond.
/// Rounding makes every "%.6f"-printed tick a fixed point of the text
/// round-trip — including the chaos generator's 250 ms quantum edges.
Duration secondsRounded(double seconds) {
  return Duration::micros(static_cast<std::int64_t>(std::llround(seconds * 1e6)));
}

void parseChurnLine(const std::string& line,
                    const std::vector<std::string>& tokens, ChurnConfig& out) {
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) parseError(line, "churn wants key=value");
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    if (key == "nodes") {
      std::istringstream is{value};
      std::string part;
      while (std::getline(is, part, ',')) {
        if (!part.empty()) out.nodes.push_back(parseNode(line, part));
      }
    } else if (key == "up") {
      out.meanUpSeconds = parseNum(line, value);
    } else if (key == "down") {
      out.meanDownSeconds = parseNum(line, value);
    } else if (key == "from") {
      out.start = TimePoint::origin() + secondsRounded(parseNum(line, value));
    } else if (key == "until") {
      out.stop = TimePoint::origin() + secondsRounded(parseNum(line, value));
    } else {
      parseError(line, "unknown churn key");
    }
  }
  if (!out.enabled()) parseError(line, "churn needs nodes=, up= and down=");
}

}  // namespace

FaultScript parseFaultScript(std::string_view text) {
  FaultScript script;
  // ';' and newlines both end a statement, so one-liners work on a CLI.
  std::string normalized{text};
  std::replace(normalized.begin(), normalized.end(), ';', '\n');
  std::istringstream lines{normalized};
  std::string line;
  while (std::getline(lines, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& verb = tokens[0];

    auto at = [&](const std::string& tok) {
      return TimePoint::origin() + secondsRounded(parseNum(line, tok));
    };

    FaultEvent e;
    if (verb == "crash" || verb == "recover") {
      if (tokens.size() != 3) parseError(line, "want: <node> <t>");
      e.kind = verb == "crash" ? FaultEvent::Kind::kNodeDown
                               : FaultEvent::Kind::kNodeUp;
      e.node = parseNode(line, tokens[1]);
      e.at = at(tokens[2]);
    } else if (verb == "linkdown" || verb == "linkup") {
      if (tokens.size() != 4) parseError(line, "want: <a> <b> <t>");
      e.kind = verb == "linkdown" ? FaultEvent::Kind::kLinkDown
                                  : FaultEvent::Kind::kLinkUp;
      e.node = parseNode(line, tokens[1]);
      e.peer = parseNode(line, tokens[2]);
      e.at = at(tokens[3]);
    } else if (verb == "skew") {
      if (tokens.size() != 3 && tokens.size() != 4) {
        parseError(line, "want: <node> <ms> [<t>]");
      }
      e.kind = FaultEvent::Kind::kClockSkew;
      e.node = parseNode(line, tokens[1]);
      const double ms = parseNum(line, tokens[2]);
      if (ms < 0.0) parseError(line, "skew must be non-negative");
      e.skew = secondsRounded(ms * 1e-3);
      if (tokens.size() == 4) e.at = at(tokens[3]);
    } else if (verb == "churn") {
      parseChurnLine(line, tokens, script.churn);
      continue;
    } else {
      parseError(line, "unknown verb");
    }
    script.events.push_back(e);
  }
  return script;
}

// ---------------------------------------------------------------------------
// FaultPlane
// ---------------------------------------------------------------------------

FaultPlane::FaultPlane(Simulator& sim, int numNodes, FaultScript script,
                       Rng rng)
    : sim_{sim}, script_{std::move(script)}, rng_{rng} {
  MAXMIN_CHECK(numNodes > 0);
  up_.assign(static_cast<std::size_t>(numNodes), true);
  skew_.assign(static_cast<std::size_t>(numNodes), Duration::zero());
  for (const FaultEvent& e : script_.events) {
    checkNode(e.node);
    if (e.kind == FaultEvent::Kind::kLinkDown ||
        e.kind == FaultEvent::Kind::kLinkUp) {
      checkNode(e.peer);
      MAXMIN_CHECK_MSG(e.node != e.peer, "link fault needs two nodes");
    }
  }
  for (const std::int32_t n : script_.churn.nodes) checkNode(n);
}

void FaultPlane::checkNode(std::int32_t node) const {
  MAXMIN_CHECK_MSG(node >= 0 && node < static_cast<std::int32_t>(up_.size()),
                   "fault references unknown node " << node);
}

void FaultPlane::addListener(FaultListener* listener) {
  MAXMIN_CHECK(listener != nullptr);
  listeners_.push_back(listener);
}

void FaultPlane::start() {
  MAXMIN_CHECK_MSG(!started_, "FaultPlane::start called twice");
  started_ = true;
  for (const FaultEvent& e : script_.events) {
    // Skew events at the origin apply immediately so the first period is
    // already staggered; everything else waits for its instant.
    if (e.kind == FaultEvent::Kind::kClockSkew && e.at == TimePoint::origin() &&
        sim_.now() == TimePoint::origin()) {
      apply(e);
      continue;
    }
    MAXMIN_CHECK_MSG(e.at >= sim_.now(), "fault event in the past");
    // Fire-and-forget: scripted faults are never cancelled and the plane
    // outlives the simulation, so the handle is deliberately dropped.
    static_cast<void>(sim_.scheduleAt(e.at, [this, e] { apply(e); }));
  }
  if (script_.churn.enabled()) {
    for (const std::int32_t n : script_.churn.nodes) {
      static_cast<void>(sim_.scheduleAt(std::max(script_.churn.start, sim_.now()),
                                        [this, n] { scheduleChurn(n); }));
    }
  }
}

void FaultPlane::apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultEvent::Kind::kNodeDown:
      setNodeUp(e.node, false);
      break;
    case FaultEvent::Kind::kNodeUp:
      setNodeUp(e.node, true);
      break;
    case FaultEvent::Kind::kLinkDown: {
      if (cutLinks_.insert(normalized(e.node, e.peer)).second) {
        ++linkCutsInjected_;
        for (FaultListener* l : listeners_) {
          l->onLinkChanged(e.node, e.peer, false);
        }
      }
      break;
    }
    case FaultEvent::Kind::kLinkUp: {
      if (cutLinks_.erase(normalized(e.node, e.peer)) > 0) {
        for (FaultListener* l : listeners_) {
          l->onLinkChanged(e.node, e.peer, true);
        }
      }
      break;
    }
    case FaultEvent::Kind::kClockSkew:
      skew_[static_cast<std::size_t>(e.node)] = e.skew;
      break;
  }
}

void FaultPlane::setNodeUp(std::int32_t node, bool up) {
  auto state = up_.begin() + node;
  if (*state == up) return;  // idempotent: scripted + churn may overlap
  *state = up;
  if (up) {
    ++recoveriesInjected_;
    for (FaultListener* l : listeners_) l->onNodeUp(node);
  } else {
    ++crashesInjected_;
    for (FaultListener* l : listeners_) l->onNodeDown(node);
  }
}

void FaultPlane::scheduleChurn(std::int32_t node) {
  const ChurnConfig& churn = script_.churn;
  const bool isUp = nodeUp(node);
  if (isUp && sim_.now() >= churn.stop) return;  // no new outages
  const double meanSeconds =
      isUp ? churn.meanUpSeconds : churn.meanDownSeconds;
  const Duration sojourn = std::max(
      Duration::micros(1), Duration::seconds(rng_.exponential(meanSeconds)));
  // Fire-and-forget: churn reschedules itself until `stop` and is never
  // cancelled mid-run.
  static_cast<void>(sim_.schedule(sojourn, [this, node] {
    setNodeUp(node, !nodeUp(node));
    scheduleChurn(node);
  }));
}

std::pair<std::int32_t, std::int32_t> FaultPlane::normalized(
    std::int32_t a, std::int32_t b) const {
  return {std::min(a, b), std::max(a, b)};
}

bool FaultPlane::nodeUp(std::int32_t node) const {
  return up_.at(static_cast<std::size_t>(node));
}

bool FaultPlane::linkUp(std::int32_t a, std::int32_t b) const {
  return nodeUp(a) && nodeUp(b) && !cutLinks_.contains(normalized(a, b));
}

bool FaultPlane::linkCut(std::int32_t a, std::int32_t b) const {
  return cutLinks_.contains(normalized(a, b));
}

Duration FaultPlane::clockSkew(std::int32_t node) const {
  return skew_.at(static_cast<std::size_t>(node));
}

Duration FaultPlane::maxClockSkew() const {
  Duration m = Duration::zero();
  for (const Duration d : skew_) m = std::max(m, d);
  return m;
}

}  // namespace maxmin::sim
