// Parallel experiment sweeps.
//
// A sweep is a list of fully-specified, independent runs — seeds ×
// scenarios × parameter grids. Each run constructs its own Simulator and
// network from its RunConfig and shares no mutable state with any other
// (the kernel is single-threaded but self-contained), so SweepRunner can
// fan runs out across a thread pool with no locking beyond the work
// queue. Results come back in input order regardless of the number of
// workers or their scheduling, which is what makes `--jobs 8` output
// byte-identical to a serial run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "scenarios/scenarios.hpp"
#include "util/stats.hpp"

namespace maxmin::exp {

/// One unit of sweep work: a scenario plus the exact config to run it
/// under. `label` identifies the run in reports ("fig4/gmp/seed=7").
struct SweepJob {
  std::string label;
  scenarios::Scenario scenario;
  analysis::RunConfig config;
};

/// Outcome of one job. A run that throws (bad fault script for the
/// topology, solver failure, ...) is captured here rather than tearing
/// down the sweep: `ok` is false and `error` holds the exception text.
struct SweepOutcome {
  std::string label;
  std::uint64_t seed = 0;
  bool ok = false;
  analysis::RunResult result;  ///< valid iff ok
  std::string error;           ///< exception text iff !ok
  double wallSeconds = 0.0;    ///< host wall-clock time of this run
};

/// Fans independent runs across `jobs` worker threads (clamped to >= 1;
/// pass 0 for hardware concurrency). Workers pull jobs from a shared
/// index and write outcomes by position, so the result vector is in
/// input order and bit-identical for any worker count.
class SweepRunner {
 public:
  explicit SweepRunner(int jobs);

  [[nodiscard]] std::vector<SweepOutcome> runAll(const std::vector<SweepJob>& jobs) const;

  [[nodiscard]] int jobs() const { return jobs_; }

 private:
  int jobs_;
};

/// `count` copies of (scenario, base) differing only in seed:
/// base.seed, base.seed + 1, ... — the standard confidence-interval
/// sweep for a single configuration.
std::vector<SweepJob> seedGrid(const scenarios::Scenario& scenario,
                               const analysis::RunConfig& base, int count);

/// Cross-run aggregates over the successful outcomes.
struct SweepSummary {
  int total = 0;
  int failed = 0;
  RunningStats imm;             ///< maxmin fairness index per run
  RunningStats ieq;             ///< equality (Jain) index per run
  RunningStats throughputPps;   ///< U = sum r(f) * hops(f) per run
  RunningStats queueDrops;
  RunningStats wallSeconds;
};

SweepSummary summarize(const std::vector<SweepOutcome>& outcomes);

/// Full sweep report as JSON: one record per run (in input order) plus
/// the summary block. Stable field order; no external dependencies.
void writeJson(std::ostream& os, const std::vector<SweepOutcome>& outcomes,
               const SweepSummary& summary);

}  // namespace maxmin::exp
