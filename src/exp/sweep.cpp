#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <ostream>
#include <thread>
#include <utility>

#include "obs/profile.hpp"
#include "util/check.hpp"

namespace maxmin::exp {
namespace {

SweepOutcome runOne(const SweepJob& job) {
  SweepOutcome out;
  out.label = job.label;
  out.seed = job.config.seed;
  // obs::Profiler::wallNanos is the project's one sanctioned wall-clock
  // read (see tools/lint rule chrono-outside-obs).
  const std::int64_t start = obs::Profiler::wallNanos();
  try {
    out.result = analysis::runScenario(job.scenario, job.config);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown exception";
  }
  out.wallSeconds =
      static_cast<double>(obs::Profiler::wallNanos() - start) * 1e-9;
  return out;
}

}  // namespace

SweepRunner::SweepRunner(int jobs) : jobs_{jobs} {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
}

std::vector<SweepOutcome> SweepRunner::runAll(
    const std::vector<SweepJob>& jobs) const {
  std::vector<SweepOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  const int workers =
      std::min(jobs_, static_cast<int>(jobs.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) outcomes[i] = runOne(jobs[i]);
    return outcomes;
  }

  // Work-stealing by shared counter: each worker claims the next
  // unclaimed job and writes its outcome by index. Job order in the
  // result is the input order; which thread ran a job is invisible.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      outcomes[i] = runOne(jobs[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return outcomes;
}

std::vector<SweepJob> seedGrid(const scenarios::Scenario& scenario,
                               const analysis::RunConfig& base, int count) {
  MAXMIN_CHECK(count >= 0);
  std::vector<SweepJob> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    SweepJob job;
    job.scenario = scenario;
    job.config = base;
    job.config.seed = base.seed + static_cast<std::uint64_t>(i);
    job.label = scenario.name + "/" +
                analysis::protocolName(base.protocol) + "/seed=" +
                std::to_string(job.config.seed);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

SweepSummary summarize(const std::vector<SweepOutcome>& outcomes) {
  SweepSummary s;
  s.total = static_cast<int>(outcomes.size());
  for (const SweepOutcome& o : outcomes) {
    if (!o.ok) {
      ++s.failed;
      continue;
    }
    s.imm.add(o.result.summary.imm);
    s.ieq.add(o.result.summary.ieq);
    s.throughputPps.add(o.result.summary.effectiveThroughputPps);
    s.queueDrops.add(static_cast<double>(o.result.queueDrops));
    s.wallSeconds.add(o.wallSeconds);
  }
  return s;
}

namespace {

void jsonEscape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u001f";  // control chars never appear in our labels
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void jsonStats(std::ostream& os, const char* name, const RunningStats& st) {
  os << '"' << name << "\":{\"mean\":" << st.mean()
     << ",\"stddev\":" << st.stddev() << ",\"min\":" << st.min()
     << ",\"max\":" << st.max() << ",\"n\":" << st.count() << '}';
}

}  // namespace

void writeJson(std::ostream& os, const std::vector<SweepOutcome>& outcomes,
               const SweepSummary& summary) {
  os << "{\"runs\":[";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const SweepOutcome& o = outcomes[i];
    if (i > 0) os << ',';
    os << "{\"label\":";
    jsonEscape(os, o.label);
    os << ",\"seed\":" << o.seed << ",\"ok\":" << (o.ok ? "true" : "false");
    if (o.ok) {
      os << ",\"i_mm\":" << o.result.summary.imm
         << ",\"i_eq\":" << o.result.summary.ieq
         << ",\"u_pkt_hops_per_s\":"
         << o.result.summary.effectiveThroughputPps
         << ",\"total_rate_pps\":" << o.result.summary.totalRatePps
         << ",\"queue_drops\":" << o.result.queueDrops << ",\"flows\":[";
      for (std::size_t f = 0; f < o.result.flows.size(); ++f) {
        const auto& flow = o.result.flows[f];
        if (f > 0) os << ',';
        os << "{\"name\":";
        jsonEscape(os, flow.name);
        os << ",\"rate_pps\":" << flow.ratePps << ",\"hops\":" << flow.hops
           << '}';
      }
      os << ']';
    } else {
      os << ",\"error\":";
      jsonEscape(os, o.error);
    }
    os << ",\"wall_seconds\":" << o.wallSeconds << '}';
  }
  os << "],\"summary\":{\"total\":" << summary.total
     << ",\"failed\":" << summary.failed << ',';
  jsonStats(os, "i_mm", summary.imm);
  os << ',';
  jsonStats(os, "i_eq", summary.ieq);
  os << ',';
  jsonStats(os, "u_pkt_hops_per_s", summary.throughputPps);
  os << ',';
  jsonStats(os, "queue_drops", summary.queueDrops);
  os << ',';
  jsonStats(os, "wall_seconds", summary.wallSeconds);
  os << "}}\n";
}

}  // namespace maxmin::exp
