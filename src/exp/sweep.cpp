#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <ostream>
#include <string>
#include <thread>
#include <utility>

#include "obs/profile.hpp"
#include "util/check.hpp"
#include "util/num_text.hpp"

namespace maxmin::exp {
namespace {

SweepOutcome runOne(const SweepJob& job) {
  SweepOutcome out;
  out.label = job.label;
  out.seed = job.config.seed;
  // obs::Profiler::wallNanos is the project's one sanctioned wall-clock
  // read (see tools/lint rule chrono-outside-obs).
  const std::int64_t start = obs::Profiler::wallNanos();
  try {
    out.result = analysis::runScenario(job.scenario, job.config);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown exception";
  }
  out.wallSeconds =
      static_cast<double>(obs::Profiler::wallNanos() - start) * 1e-9;
  return out;
}

}  // namespace

SweepRunner::SweepRunner(int jobs) : jobs_{jobs} {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
}

std::vector<SweepOutcome> SweepRunner::runAll(
    const std::vector<SweepJob>& jobs) const {
  std::vector<SweepOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  const int workers =
      std::min(jobs_, static_cast<int>(jobs.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) outcomes[i] = runOne(jobs[i]);
    return outcomes;
  }

  // Work-stealing by shared counter: each worker claims the next
  // unclaimed job and writes its outcome by index. Job order in the
  // result is the input order; which thread ran a job is invisible.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      outcomes[i] = runOne(jobs[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return outcomes;
}

std::vector<SweepJob> seedGrid(const scenarios::Scenario& scenario,
                               const analysis::RunConfig& base, int count) {
  MAXMIN_CHECK(count >= 0);
  std::vector<SweepJob> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    SweepJob job;
    job.scenario = scenario;
    job.config = base;
    job.config.seed = base.seed + static_cast<std::uint64_t>(i);
    job.label = scenario.name + "/" +
                analysis::protocolName(base.protocol) + "/seed=" +
                std::to_string(job.config.seed);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

SweepSummary summarize(const std::vector<SweepOutcome>& outcomes) {
  SweepSummary s;
  s.total = static_cast<int>(outcomes.size());
  for (const SweepOutcome& o : outcomes) {
    if (!o.ok) {
      ++s.failed;
      continue;
    }
    s.imm.add(o.result.summary.imm);
    s.ieq.add(o.result.summary.ieq);
    s.throughputPps.add(o.result.summary.effectiveThroughputPps);
    s.queueDrops.add(static_cast<double>(o.result.queueDrops));
    s.wallSeconds.add(o.wallSeconds);
  }
  return s;
}

namespace {

// The report is assembled into a std::string with locale-independent
// appends (util's to_chars wrappers for doubles, std::to_string for ints)
// instead of streaming values through operator<<: a caller-imbued or
// globally-set locale with ',' decimal separator / digit grouping must not
// change the bytes. Doubles keep the 6-significant-digit format the old
// stream-based writer produced, so existing output is byte-identical.
void jsonEscape(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u001f";  // control chars never appear in our labels
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void jsonNum(std::string& out, double v) { appendDouble(out, v, 6); }

void jsonStats(std::string& out, const char* name, const RunningStats& st) {
  out += '"';
  out += name;
  out += "\":{\"mean\":";
  jsonNum(out, st.mean());
  out += ",\"stddev\":";
  jsonNum(out, st.stddev());
  out += ",\"min\":";
  jsonNum(out, st.min());
  out += ",\"max\":";
  jsonNum(out, st.max());
  out += ",\"n\":";
  out += std::to_string(st.count());
  out += '}';
}

}  // namespace

void writeJson(std::ostream& os, const std::vector<SweepOutcome>& outcomes,
               const SweepSummary& summary) {
  std::string out;
  out += "{\"runs\":[";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const SweepOutcome& o = outcomes[i];
    if (i > 0) out += ',';
    out += "{\"label\":";
    jsonEscape(out, o.label);
    out += ",\"seed\":";
    out += std::to_string(o.seed);
    out += ",\"ok\":";
    out += o.ok ? "true" : "false";
    if (o.ok) {
      out += ",\"i_mm\":";
      jsonNum(out, o.result.summary.imm);
      out += ",\"i_eq\":";
      jsonNum(out, o.result.summary.ieq);
      out += ",\"u_pkt_hops_per_s\":";
      jsonNum(out, o.result.summary.effectiveThroughputPps);
      out += ",\"total_rate_pps\":";
      jsonNum(out, o.result.summary.totalRatePps);
      out += ",\"queue_drops\":";
      out += std::to_string(o.result.queueDrops);
      out += ",\"flows\":[";
      for (std::size_t f = 0; f < o.result.flows.size(); ++f) {
        const auto& flow = o.result.flows[f];
        if (f > 0) out += ',';
        out += "{\"name\":";
        jsonEscape(out, flow.name);
        out += ",\"rate_pps\":";
        jsonNum(out, flow.ratePps);
        out += ",\"hops\":";
        out += std::to_string(flow.hops);
        out += '}';
      }
      out += ']';
    } else {
      out += ",\"error\":";
      jsonEscape(out, o.error);
    }
    out += ",\"wall_seconds\":";
    jsonNum(out, o.wallSeconds);
    out += '}';
  }
  out += "],\"summary\":{\"total\":";
  out += std::to_string(summary.total);
  out += ",\"failed\":";
  out += std::to_string(summary.failed);
  out += ',';
  jsonStats(out, "i_mm", summary.imm);
  out += ',';
  jsonStats(out, "i_eq", summary.ieq);
  out += ',';
  jsonStats(out, "u_pkt_hops_per_s", summary.throughputPps);
  out += ',';
  jsonStats(out, "queue_drops", summary.queueDrops);
  out += ',';
  jsonStats(out, "wall_seconds", summary.wallSeconds);
  out += "}}\n";
  os << out;
}

}  // namespace maxmin::exp
