// The paper's evaluation metrics (§7.2): maxmin fairness index I_mm,
// equality fairness index I_eq (Chiu-Jain), and effective network
// throughput U = sum over flows of rate * path length.
#pragma once

#include <map>
#include <vector>

#include "net/flow.hpp"

namespace maxmin::analysis {

struct FairnessSummary {
  double imm = 1.0;  ///< min rate / max rate
  double ieq = 1.0;  ///< Jain's index over rates
  double effectiveThroughputPps = 0.0;  ///< U: sum r(f) * hops(f)
  double totalRatePps = 0.0;
};

/// `hops[id]` must exist for every rate entry.
FairnessSummary summarize(const std::map<net::FlowId, double>& ratesPps,
                          const std::map<net::FlowId, int>& hops);

/// Weighted variant: indices computed over normalized rates r(f)/w(f),
/// for weighted-maxmin experiments.
FairnessSummary summarizeNormalized(
    const std::map<net::FlowId, double>& ratesPps,
    const std::map<net::FlowId, double>& weights,
    const std::map<net::FlowId, int>& hops);

}  // namespace maxmin::analysis
