#include "analysis/metrics.hpp"

#include "util/check.hpp"
#include "util/stats.hpp"

namespace maxmin::analysis {

FairnessSummary summarize(const std::map<net::FlowId, double>& ratesPps,
                          const std::map<net::FlowId, int>& hops) {
  FairnessSummary s;
  std::vector<double> rates;
  for (const auto& [id, r] : ratesPps) {
    rates.push_back(r);
    s.totalRatePps += r;
    s.effectiveThroughputPps += r * hops.at(id);
  }
  s.imm = maxminIndex(rates);
  s.ieq = jainIndex(rates);
  return s;
}

FairnessSummary summarizeNormalized(
    const std::map<net::FlowId, double>& ratesPps,
    const std::map<net::FlowId, double>& weights,
    const std::map<net::FlowId, int>& hops) {
  FairnessSummary s;
  std::vector<double> normalized;
  for (const auto& [id, r] : ratesPps) {
    const double w = weights.at(id);
    MAXMIN_CHECK(w > 0.0);
    normalized.push_back(r / w);
    s.totalRatePps += r;
    s.effectiveThroughputPps += r * hops.at(id);
  }
  s.imm = maxminIndex(normalized);
  s.ieq = jainIndex(normalized);
  return s;
}

}  // namespace maxmin::analysis
