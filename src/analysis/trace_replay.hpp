// Offline replay of a structured trace (obs::TraceSink JSONL): rebuild
// the per-period flow rates a run recorded and recompute the paper's
// fairness trajectories (I_mm, I_eq, U) from them — without re-running
// the simulation. The CLI's --trace output and this replay closing the
// loop is also what pins the trace schema down in tests.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "net/flow.hpp"

namespace maxmin::analysis {

/// One period record reduced to what the fairness indices need.
struct ReplayPeriod {
  int period = 0;
  std::int64_t timeUs = 0;
  std::map<net::FlowId, double> ratesPps;
  std::map<net::FlowId, int> hops;
  FairnessSummary summary;  ///< recomputed from ratesPps/hops
};

struct TraceReplay {
  std::vector<ReplayPeriod> periods;

  /// Convergence trajectory: I_mm per period, oldest first.
  [[nodiscard]] std::vector<double> immTrajectory() const;
  /// Convergence trajectory: I_eq per period, oldest first.
  [[nodiscard]] std::vector<double> ieqTrajectory() const;
};

/// Parse a JSONL trace stream, keeping records with "record":"period"
/// (event-level records are skipped). Malformed lines throw
/// util::InvariantViolation with the offending line number.
TraceReplay traceReplay(std::istream& in);

/// Convenience: open and replay a trace file (throws if unreadable).
TraceReplay traceReplayFile(const std::string& path);

}  // namespace maxmin::analysis
