// Chaos-schedule fuzz harness: run one seeded adversarial fault script
// against the full GMP stack and check the self-healing invariants
// (DESIGN.md §13; driven by `maxmin-sim --chaos` and the chaos-smoke CI
// lane).
//
// Oracles checked after each run:
//   * liveness — the controller ran (almost) every period boundary of
//     the horizon; a stalled event queue or deadlocked period loop fails
//     immediately;
//   * sanity — no flow's delivered rate exceeds the nominal single-link
//     MAC capacity (with a small slack for measurement quantization);
//   * self-healing — 2-hop relay coverage, probed once per period, is
//     complete whenever the fault plane has been quiescent longer than
//     the grace window;
//   * re-convergence — the mean hop-weighted equality index over the
//     fault-free tail reaches tailIeq.
//
// A violated run reports ok=false with human-readable violations, the
// failing seed, and the full fault script serialized as replayable text
// (sim::parseFaultScript grammar) — reproduction needs no fuzzer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gmp/types.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/chaos.hpp"

namespace maxmin::analysis {

struct ChaosParams {
  /// Total simulated time. The ~94 s fault-free tail after healBySeconds
  /// is what the worst adversarial schedules need to climb back to
  /// I_eq >= 0.99 (empirically: 34 s strands a few seeds near 0.95).
  double horizonSeconds = 150.0;
  double startSeconds = 8.0;     ///< fault-free head (baseline)
  double healBySeconds = 56.0;   ///< all faults healed by here
  gmp::GmpParams gmp;
  sim::ChaosConfig shape;  ///< counts only; topology fields are filled
                           ///< from the scenario

  double capacitySlack = 1.05;  ///< delivered <= nominal * slack
  double tailIeq = 0.99;        ///< re-convergence bar, fault-free tail
  int tailPeriods = 4;          ///< periods averaged for the tail I_eq
  /// Coverage deficits are tolerated until the fault plane has been
  /// quiescent this long (repair is event-driven, but a probe can land
  /// between a fault and the next period's repair-completing announce).
  double coverageGraceSeconds = 4.0;

  bool repairEnabled = true;       ///< false = canary (static backbone)
  bool reliabilityEnabled = true;  ///< implicit-ack retransmissions
};

struct ChaosOutcome {
  std::uint64_t seed = 0;
  bool ok = true;
  std::vector<std::string> violations;
  /// Replayable fault script (parseFaultScript grammar).
  std::string script;
  int periodsRun = 0;
  double tailIeq = 0.0;
  /// Fraction of alive centers with full 2-hop cover, one probe/period.
  std::vector<double> coverageByPeriod;
  int coverageViolations = 0;
  double maxFlowRatePps = 0.0;
  std::int64_t relayRepairs = 0;
  std::int64_t retransmits = 0;
};

/// Generate one chaos schedule from `seed` (named stream "chaos") and
/// run it on `scenario`, checking every oracle.
ChaosOutcome runChaosSchedule(const scenarios::Scenario& scenario,
                              std::uint64_t seed, const ChaosParams& params);

/// Run `count` schedules with consecutive seeds starting at `firstSeed`.
std::vector<ChaosOutcome> runChaosBatch(const scenarios::Scenario& scenario,
                                        std::uint64_t firstSeed, int count,
                                        const ChaosParams& params);

}  // namespace maxmin::analysis
