#include "analysis/experiment.hpp"

#include "baselines/configs.hpp"
#include "baselines/two_phase.hpp"
#include "gmp/controller.hpp"
#include "net/network.hpp"
#include "util/check.hpp"

namespace maxmin::analysis {

const char* protocolName(Protocol p) {
  switch (p) {
    case Protocol::kDcf80211: return "802.11";
    case Protocol::kTwoPhase: return "2PP";
    case Protocol::kGmp: return "GMP";
  }
  return "?";
}

double RunResult::rateOf(net::FlowId id) const {
  for (const FlowOutcome& f : flows) {
    if (f.id == id) return f.ratePps;
  }
  MAXMIN_CHECK_MSG(false, "unknown flow " << id);
  return 0.0;
}

RunResult runScenario(const scenarios::Scenario& scenario,
                      const RunConfig& config) {
  MAXMIN_CHECK(config.warmup < config.duration);

  net::NetworkConfig nc = config.netBase;
  nc.seed = config.seed;
  switch (config.protocol) {
    case Protocol::kDcf80211: nc = baselines::config80211(nc); break;
    case Protocol::kTwoPhase: nc = baselines::config2pp(nc); break;
    case Protocol::kGmp: nc = baselines::configGmp(nc); break;
  }

  net::Network net{scenario.topology, nc, scenario.flows};
  if (!config.faults.empty()) net.enableFaults(config.faults);

  std::optional<gmp::Controller> controller;
  if (config.protocol == Protocol::kGmp) {
    controller.emplace(net, config.gmpParams);
    controller->setTraceSink(config.trace);
    controller->start();
  } else if (config.protocol == Protocol::kTwoPhase) {
    std::vector<std::vector<topo::NodeId>> paths;
    for (const net::FlowSpec& f : scenario.flows) {
      paths.push_back(net.pathOf(f.id));
    }
    const baselines::TwoPhaseAllocator allocator{
        scenario.topology, scenario.flows, paths,
        baselines::nominalLinkCapacityPps(nc.mac, nc.packetSize)};
    const auto allocation = allocator.allocate();
    for (const net::FlowSpec& f : scenario.flows) {
      net.setRateLimit(f.id, allocation.totalPps.at(f.id));
    }
  }

  net.run(config.warmup);
  const auto start = net.snapshotDeliveries();
  net.run(config.duration - config.warmup);
  const auto rates = net::Network::ratesBetween(start, net.snapshotDeliveries());

  RunResult result;
  result.protocol = config.protocol;
  std::map<net::FlowId, int> hops;
  std::map<net::FlowId, double> weights;
  for (const net::FlowSpec& f : scenario.flows) {
    FlowOutcome out;
    out.id = f.id;
    out.name = f.name;
    out.ratePps = rates.at(f.id);
    out.weight = f.weight;
    out.hops = net.hopCount(f.id);
    result.flows.push_back(out);
    hops[f.id] = out.hops;
    weights[f.id] = f.weight;
  }
  result.summary = summarize(rates, hops);
  result.normalizedSummary = summarizeNormalized(rates, weights, hops);
  result.queueDrops = net.totalQueueDrops();
  result.crashDrops = net.totalCrashDrops();
  result.deadNeighborDrops = net.totalDeadNeighborDrops();
  result.framesSuppressed = net.framesSuppressed();
  if (const phys::ChannelImpairments* imp = net.impairments()) {
    result.framesImpaired = imp->framesDropped();
  }
  if (controller) {
    result.violationHistory = controller->violationHistory();
    result.rateHistory = controller->rateHistory();
    result.staleMeasurementsUsed = controller->staleMeasurementsUsed();
    result.limitsRestored = controller->limitsRestored();
  }
  return result;
}

}  // namespace maxmin::analysis
