#include "analysis/experiment.hpp"

#include "baselines/configs.hpp"
#include "baselines/two_phase.hpp"
#include "gmp/controller.hpp"
#include "hybrid/engine.hpp"
#include "net/network.hpp"
#include "util/check.hpp"

namespace maxmin::analysis {

const char* protocolName(Protocol p) {
  switch (p) {
    case Protocol::kDcf80211: return "802.11";
    case Protocol::kTwoPhase: return "2PP";
    case Protocol::kGmp: return "GMP";
  }
  return "?";
}

double RunResult::rateOf(net::FlowId id) const {
  for (const FlowOutcome& f : flows) {
    if (f.id == id) return f.ratePps;
  }
  MAXMIN_CHECK_MSG(false, "unknown flow " << id);
  return 0.0;
}

RunResult runScenario(const scenarios::Scenario& scenario,
                      const RunConfig& config) {
  MAXMIN_CHECK(config.warmup < config.duration);
  MAXMIN_CHECK_MSG(!config.hybrid.enabled() ||
                       config.protocol == Protocol::kGmp,
                   "hybrid modes drive the GMP controller; use --protocol gmp");

  net::NetworkConfig nc = config.netBase;
  nc.seed = config.seed;
  switch (config.protocol) {
    case Protocol::kDcf80211: nc = baselines::config80211(nc); break;
    case Protocol::kTwoPhase: nc = baselines::config2pp(nc); break;
    case Protocol::kGmp: nc = baselines::configGmp(nc); break;
  }

  // Under hybrid background mode only the foreground partition exists as
  // packet flows; the rest lives in the engine's fluid model.
  const std::vector<net::FlowSpec> packetFlows =
      hybrid::Engine::foregroundFlows(scenario.flows, config.hybrid);
  net::Network net{scenario.topology, nc, packetFlows};
  if (!config.faults.empty()) net.enableFaults(config.faults);

  std::optional<gmp::Controller> controller;
  std::optional<hybrid::Engine> hybridEngine;
  if (config.protocol == Protocol::kGmp) {
    controller.emplace(net, config.gmpParams);
    controller->setTraceSink(config.trace);
    controller->start();
    if (config.hybrid.enabled()) {
      hybridEngine.emplace(net, *controller, scenario.flows, config.gmpParams,
                           config.hybrid);
      hybridEngine->fastForward();
      hybridEngine->start();
    }
  } else if (config.protocol == Protocol::kTwoPhase) {
    std::vector<std::vector<topo::NodeId>> paths;
    for (const net::FlowSpec& f : scenario.flows) {
      paths.push_back(net.pathOf(f.id));
    }
    const baselines::TwoPhaseAllocator allocator{
        scenario.topology, scenario.flows, paths,
        baselines::nominalLinkCapacityPps(nc.mac, nc.packetSize)};
    const auto allocation = allocator.allocate();
    for (const net::FlowSpec& f : scenario.flows) {
      net.setRateLimit(f.id, allocation.totalPps.at(f.id));
    }
  }

  net.run(config.warmup);
  const auto start = net.snapshotDeliveries();
  std::optional<hybrid::Engine::BackgroundSnapshot> bgStart;
  if (hybridEngine) bgStart = hybridEngine->snapshotBackground();
  net.run(config.duration - config.warmup);
  auto rates = net::Network::ratesBetween(start, net.snapshotDeliveries());
  if (hybridEngine) {
    // Fold the fluid background deliveries over the same measured window
    // into the rate map; the summary then spans the whole scenario.
    const auto bgRates = hybrid::Engine::ratesBetween(
        *bgStart, hybridEngine->snapshotBackground());
    for (const auto& [id, pps] : bgRates) rates[id] = pps;
    hybridEngine->stop();
  }

  RunResult result;
  result.protocol = config.protocol;
  std::map<net::FlowId, int> hops;
  std::map<net::FlowId, double> weights;
  const auto bgSpecs =
      hybrid::Engine::backgroundFlows(scenario.flows, config.hybrid);
  const auto isBackground = [&bgSpecs](net::FlowId id) {
    for (const net::FlowSpec& b : bgSpecs) {
      if (b.id == id) return true;
    }
    return false;
  };
  for (const net::FlowSpec& f : scenario.flows) {
    FlowOutcome out;
    out.id = f.id;
    out.name = f.name;
    out.ratePps = rates.at(f.id);
    out.weight = f.weight;
    out.background = isBackground(f.id);
    out.hops = out.background ? hybridEngine->backgroundHops(f.id)
                              : net.hopCount(f.id);
    result.flows.push_back(out);
    hops[f.id] = out.hops;
    weights[f.id] = f.weight;
  }
  result.summary = summarize(rates, hops);
  result.normalizedSummary = summarizeNormalized(rates, weights, hops);
  result.queueDrops = net.totalQueueDrops();
  result.crashDrops = net.totalCrashDrops();
  result.deadNeighborDrops = net.totalDeadNeighborDrops();
  result.framesSuppressed = net.framesSuppressed();
  if (const phys::ChannelImpairments* imp = net.impairments()) {
    result.framesImpaired = imp->framesDropped();
  }
  if (controller) {
    result.violationHistory = controller->violationHistory();
    result.rateHistory = controller->rateHistory();
    result.staleMeasurementsUsed = controller->staleMeasurementsUsed();
    result.limitsRestored = controller->limitsRestored();
  }
  if (hybridEngine) {
    const hybrid::HybridStats& hs = hybridEngine->stats();
    result.ffPeriods = hs.ffPeriods;
    result.ffConverged = hs.ffConverged;
    result.seededPackets = hs.seededPackets;
    result.relinearizations = hs.relinearizations;
    result.backgroundFlows = hs.backgroundFlows;
    result.phantomBursts = hybridEngine->phantomBursts();
  }
  return result;
}

}  // namespace maxmin::analysis
