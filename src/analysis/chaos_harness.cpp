#include "analysis/chaos_harness.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/metrics.hpp"
#include "baselines/configs.hpp"
#include "baselines/two_phase.hpp"
#include "gmp/controller.hpp"
#include "gmp/dissemination.hpp"
#include "net/network.hpp"
#include "sim/timer.hpp"
#include "topology/dominating_set.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace maxmin::analysis {

namespace {

/// Records when the fault plane last changed anything, so coverage
/// probes know whether the repair machinery has had time to act.
struct QuiescenceTracker final : sim::FaultListener {
  sim::Simulator* sim = nullptr;
  TimePoint lastChange = TimePoint::origin();

  void onNodeDown(std::int32_t) override { lastChange = sim->now(); }
  void onNodeUp(std::int32_t) override { lastChange = sim->now(); }
  void onLinkChanged(std::int32_t, std::int32_t, bool) override {
    lastChange = sim->now();
  }
};

/// Everything the per-period timers need, reachable through one pointer
/// (EventFn's 48-byte inline budget rules out fat captures).
struct HarnessCtx {
  net::Network* net = nullptr;
  const topo::Topology* topo = nullptr;
  sim::FaultPlane* faults = nullptr;
  gmp::LinkStateDissemination* diss = nullptr;
  QuiescenceTracker* quiet = nullptr;
  Duration grace = Duration::zero();
  std::vector<double>* coverage = nullptr;
  int* coverageViolations = nullptr;

  /// One announcement per alive node per period: its adjacent link
  /// states, which keeps dissemination (and its reliability machinery)
  /// under load for the whole horizon.
  void pumpAnnouncements() const {
    for (topo::NodeId n = 0; n < topo->numNodes(); ++n) {
      if (!faults->nodeUp(n)) continue;
      std::vector<gmp::LinkStateAd> states;
      for (const topo::NodeId nbr : topo->neighbors(n)) {
        if (!faults->linkUp(n, nbr)) continue;
        states.push_back(gmp::LinkStateAd{topo::Link{n, nbr}, 0.0, 0.0});
      }
      diss->announce(n, std::move(states));
    }
  }

  /// Fraction of alive centers whose reachable 2-hop scope the current
  /// relay sets fully cover; a deficit outside the grace window after
  /// the last fault transition is an oracle violation.
  void probeCoverage() const {
    std::vector<char> alive(static_cast<std::size_t>(topo->numNodes()), 1);
    for (topo::NodeId n = 0; n < topo->numNodes(); ++n) {
      alive[static_cast<std::size_t>(n)] = faults->nodeUp(n) ? 1 : 0;
    }
    sim::FaultPlane* f = faults;
    const topo::LinkAliveFn link = [f](topo::NodeId a, topo::NodeId b) {
      return f->linkUp(a, b);
    };
    int centers = 0;
    int covered = 0;
    for (topo::NodeId c = 0; c < topo->numNodes(); ++c) {
      if (!alive[static_cast<std::size_t>(c)]) continue;
      ++centers;
      const auto targets = topo::reachableTwoHop(*topo, c, alive, link);
      const auto reach =
          topo::relayCoverage(*topo, c, diss->relaysOf(c), alive, link);
      if (std::includes(reach.begin(), reach.end(), targets.begin(),
                        targets.end())) {
        ++covered;
      }
    }
    const double frac = centers > 0 ? static_cast<double>(covered) / centers
                                    : 1.0;
    coverage->push_back(frac);
    if (frac < 1.0 && net->now() - quiet->lastChange >= grace) {
      ++*coverageViolations;
    }
  }
};

}  // namespace

ChaosOutcome runChaosSchedule(const scenarios::Scenario& scenario,
                              std::uint64_t seed, const ChaosParams& params) {
  ChaosOutcome out;
  out.seed = seed;
  const topo::Topology& topo = scenario.topology;

  // Shape the schedule from the topology: crash storms aim at the
  // union of all static dominating sets (the relay backbone), flaps and
  // isolation cuts draw from the real link list.
  sim::ChaosConfig shape = params.shape;
  shape.numNodes = topo.numNodes();
  shape.startSeconds = params.startSeconds;
  shape.healBySeconds = params.healBySeconds;
  if (shape.relayNodes.empty()) {
    std::set<std::int32_t> backbone;
    for (topo::NodeId id = 0; id < topo.numNodes(); ++id) {
      for (const topo::NodeId r : topo::computeDominatingSet(topo, id)) {
        backbone.insert(r);
      }
    }
    shape.relayNodes.assign(backbone.begin(), backbone.end());
  }
  if (shape.links.empty()) {
    for (topo::NodeId n = 0; n < topo.numNodes(); ++n) {
      for (const topo::NodeId nbr : topo.neighbors(n)) {
        if (nbr > n) shape.links.emplace_back(n, nbr);
      }
    }
  }
  Rng chaosRng = Rng{seed}.stream("chaos");
  const sim::FaultScript script = sim::generateChaosSchedule(shape, chaosRng);
  out.script = sim::toScriptText(script);

  net::NetworkConfig nc;
  nc.seed = seed;
  nc = baselines::configGmp(nc);

  net::Network net{topo, nc, scenario.flows};
  sim::FaultPlane& faults = net.enableFaults(script);

  QuiescenceTracker quiet;
  quiet.sim = &net.simulator();
  faults.addListener(&quiet);

  gmp::Controller controller{net, params.gmp};
  controller.start();

  gmp::LinkStateDissemination diss{net};
  if (!params.repairEnabled) diss.disableRepairForTest();
  if (params.reliabilityEnabled) diss.enableReliability({});

  HarnessCtx ctx;
  ctx.net = &net;
  ctx.topo = &topo;
  ctx.faults = &faults;
  ctx.diss = &diss;
  ctx.quiet = &quiet;
  ctx.grace = Duration::seconds(params.coverageGraceSeconds);
  ctx.coverage = &out.coverageByPeriod;
  ctx.coverageViolations = &out.coverageViolations;
  HarnessCtx* ctxPtr = &ctx;

  const Duration period = params.gmp.period;
  sim::PeriodicTimer pump{net.simulator()};
  pump.start(Duration::micros(period.asMicros() / 2), period,
             [ctxPtr] { ctxPtr->pumpAnnouncements(); });
  sim::PeriodicTimer probe{net.simulator()};
  probe.start(period + Duration::millis(1), period,
              [ctxPtr] { ctxPtr->probeCoverage(); });

  const auto t0 = net.snapshotDeliveries();
  net.run(Duration::seconds(params.horizonSeconds));
  const auto rates = net::Network::ratesBetween(t0, net.snapshotDeliveries());

  pump.stop();
  probe.stop();
  controller.stop();

  out.periodsRun = controller.periodsRun();
  out.relayRepairs = diss.relayRepairs();
  out.retransmits = diss.retransmits();

  // Oracle 1: liveness — a stalled event queue or deadlocked period
  // loop shows up as missing period boundaries.
  const int expectedPeriods = static_cast<int>(params.horizonSeconds /
                                               period.asSeconds()) -
                              1;
  if (out.periodsRun < expectedPeriods) {
    std::ostringstream os;
    os << "liveness: only " << out.periodsRun << " periods ran, expected >= "
       << expectedPeriods;
    out.violations.push_back(os.str());
  }

  // Oracle 2: sanity — delivered rate can never beat the channel.
  const double capacity =
      baselines::nominalLinkCapacityPps(nc.mac, nc.packetSize);
  for (const auto& [id, rate] : rates) {
    out.maxFlowRatePps = std::max(out.maxFlowRatePps, rate);
    if (rate > capacity * params.capacitySlack) {
      std::ostringstream os;
      os << "capacity: flow " << id << " delivered " << rate
         << " pps > nominal " << capacity << " * " << params.capacitySlack;
      out.violations.push_back(os.str());
    }
  }

  // Oracle 3: self-healing — coverage deficits outside the grace window.
  if (out.coverageViolations > 0) {
    std::ostringstream os;
    os << "coverage: " << out.coverageViolations
       << " quiescent probes found incomplete 2-hop relay coverage";
    out.violations.push_back(os.str());
  }

  // Oracle 4: re-convergence — mean I_eq over the fault-free tail.
  std::map<net::FlowId, int> hops;
  for (const net::FlowSpec& f : scenario.flows) {
    hops[f.id] = net.hopCount(f.id);
  }
  // Per-period 4 s windows are noisy; pool the tail's rates per flow
  // (mean over the last tailPeriods) and score fairness once, matching
  // how the steady-state experiments measure I_eq over a long window.
  const auto& history = controller.rateHistory();
  const int tail = std::min<int>(params.tailPeriods,
                                 static_cast<int>(history.size()));
  if (tail > 0) {
    std::map<net::FlowId, double> pooled;
    for (int i = 0; i < tail; ++i) {
      const auto& r = history[history.size() - 1 - static_cast<std::size_t>(i)];
      for (const auto& [id, rate] : r) pooled[id] += rate / tail;
    }
    out.tailIeq = summarize(pooled, hops).ieq;
    if (out.tailIeq < params.tailIeq) {
      std::ostringstream os;
      os << "reconvergence: tail I_eq " << out.tailIeq << " < "
         << params.tailIeq;
      out.violations.push_back(os.str());
    }
  }

  out.ok = out.violations.empty();
  return out;
}

std::vector<ChaosOutcome> runChaosBatch(const scenarios::Scenario& scenario,
                                        std::uint64_t firstSeed, int count,
                                        const ChaosParams& params) {
  std::vector<ChaosOutcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    outcomes.push_back(
        runChaosSchedule(scenario, firstSeed + static_cast<std::uint64_t>(i),
                         params));
  }
  return outcomes;
}

}  // namespace maxmin::analysis
