#include "analysis/disruption.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace maxmin::analysis {

DisruptionReport analyzeDisruption(const RateHistory& history,
                                   const std::map<net::FlowId, int>& hops,
                                   const DisruptionConfig& config) {
  MAXMIN_CHECK(!history.empty());
  MAXMIN_CHECK(config.faultPeriod >= 0 &&
               config.faultPeriod < static_cast<int>(history.size()));
  MAXMIN_CHECK(config.recoveryPeriod < static_cast<int>(history.size()));
  MAXMIN_CHECK(config.baselineWindow > 0);

  DisruptionReport report;
  report.ieqByPeriod.reserve(history.size());
  for (const auto& rates : history) {
    report.ieqByPeriod.push_back(summarize(rates, hops).ieq);
  }

  const int baselineFrom =
      std::max(0, config.faultPeriod - config.baselineWindow);
  double sum = 0.0;
  int count = 0;
  for (int p = baselineFrom; p < config.faultPeriod; ++p) {
    sum += report.ieqByPeriod[static_cast<std::size_t>(p)];
    ++count;
  }
  report.baselineIeq = count > 0 ? sum / count : 0.0;

  for (int p = config.faultPeriod; p < static_cast<int>(history.size()); ++p) {
    const double ieq = report.ieqByPeriod[static_cast<std::size_t>(p)];
    if (ieq < report.dipIeq) {
      report.dipIeq = ieq;
      report.dipPeriod = p;
    }
  }

  const int searchFrom =
      config.recoveryPeriod >= 0 ? config.recoveryPeriod : config.faultPeriod;
  for (int p = searchFrom; p < static_cast<int>(history.size()); ++p) {
    if (report.ieqByPeriod[static_cast<std::size_t>(p)] >=
        config.reconvergeIeq) {
      report.reconvergedAtPeriod = p;
      report.periodsToReconverge = p - searchFrom;
      break;
    }
  }
  return report;
}

}  // namespace maxmin::analysis
