#include "analysis/disruption.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace maxmin::analysis {

DisruptionReport analyzeDisruption(const RateHistory& history,
                                   const std::map<net::FlowId, int>& hops,
                                   const DisruptionConfig& config) {
  MAXMIN_CHECK(!history.empty());
  MAXMIN_CHECK(config.faultPeriod >= 0 &&
               config.faultPeriod < static_cast<int>(history.size()));
  MAXMIN_CHECK(config.recoveryPeriod < static_cast<int>(history.size()));
  MAXMIN_CHECK(config.baselineWindow > 0);

  DisruptionReport report;
  report.ieqByPeriod.reserve(history.size());
  for (const auto& rates : history) {
    report.ieqByPeriod.push_back(summarize(rates, hops).ieq);
  }

  const int baselineFrom =
      std::max(0, config.faultPeriod - config.baselineWindow);
  double sum = 0.0;
  int count = 0;
  for (int p = baselineFrom; p < config.faultPeriod; ++p) {
    sum += report.ieqByPeriod[static_cast<std::size_t>(p)];
    ++count;
  }
  report.baselineIeq = count > 0 ? sum / count : 0.0;

  for (int p = config.faultPeriod; p < static_cast<int>(history.size()); ++p) {
    const double ieq = report.ieqByPeriod[static_cast<std::size_t>(p)];
    if (ieq < report.dipIeq) {
      report.dipIeq = ieq;
      report.dipPeriod = p;
    }
  }

  const int searchFrom =
      config.recoveryPeriod >= 0 ? config.recoveryPeriod : config.faultPeriod;
  for (int p = searchFrom; p < static_cast<int>(history.size()); ++p) {
    if (report.ieqByPeriod[static_cast<std::size_t>(p)] >=
        config.reconvergeIeq) {
      report.reconvergedAtPeriod = p;
      report.periodsToReconverge = p - searchFrom;
      break;
    }
  }

  // Time to coverage restoration: find the first coverage deficit at or
  // after the fault, then the first period back at the threshold. A run
  // whose coverage never dipped (repair landed within the same period)
  // restored instantly.
  if (!config.coverageByPeriod.empty()) {
    const auto& cov = config.coverageByPeriod;
    int deficit = -1;
    for (int p = config.faultPeriod; p < static_cast<int>(cov.size()); ++p) {
      if (cov[static_cast<std::size_t>(p)] <
          config.coverageRestoredThreshold) {
        deficit = p;
        break;
      }
    }
    if (deficit < 0) {
      report.coverageRestoredAtPeriod = config.faultPeriod;
      report.periodsToCoverageRestoration = 0;
    } else {
      for (int p = deficit + 1; p < static_cast<int>(cov.size()); ++p) {
        if (cov[static_cast<std::size_t>(p)] >=
            config.coverageRestoredThreshold) {
          report.coverageRestoredAtPeriod = p;
          report.periodsToCoverageRestoration = p - config.faultPeriod;
          break;
        }
      }
    }
  }

  // Per-partition I_eq: during a partition each surviving component can
  // only be locally consistent, so fairness is scored inside each
  // component (flows whose source is down, component -1, are skipped).
  if (!config.partitionHistory.empty()) {
    const auto periods =
        std::min(history.size(), config.partitionHistory.size());
    std::set<std::int32_t> componentIds;
    for (std::size_t p = 0; p < periods; ++p) {
      for (const auto& [id, comp] : config.partitionHistory[p]) {
        if (comp >= 0) componentIds.insert(comp);
      }
    }
    for (const std::int32_t comp : componentIds) {
      auto& series = report.partitionIeqByPeriod[comp];
      series.assign(history.size(), 1.0);
      for (std::size_t p = 0; p < periods; ++p) {
        std::map<net::FlowId, double> subRates;
        for (const auto& [id, c] : config.partitionHistory[p]) {
          if (c != comp) continue;
          if (const auto it = history[p].find(id); it != history[p].end()) {
            subRates[id] = it->second;
          }
        }
        if (!subRates.empty()) series[p] = summarize(subRates, hops).ieq;
      }
    }
  }
  return report;
}

}  // namespace maxmin::analysis
