#include "analysis/convergence.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace maxmin::analysis {

ConvergenceReport analyzeConvergence(const RateHistory& history, double band,
                                     int tailWindow) {
  MAXMIN_CHECK(band > 0.0);
  MAXMIN_CHECK(tailWindow > 0);
  MAXMIN_CHECK_MSG(static_cast<int>(history.size()) >= tailWindow,
                   "history shorter than the tail window");

  ConvergenceReport report;
  const std::size_t n = history.size();
  const std::size_t tailStart = n - static_cast<std::size_t>(tailWindow);

  // Tail means per flow.
  std::map<net::FlowId, double> sum;
  for (std::size_t p = tailStart; p < n; ++p) {
    for (const auto& [id, r] : history[p]) sum[id] += r;
  }
  for (const auto& [id, s] : sum) {
    report.finalRates[id] = s / tailWindow;
  }

  // Tail oscillation: worst relative peak-to-peak swing.
  for (const auto& [id, mean] : report.finalRates) {
    if (mean <= 0.0) continue;
    double lo = mean;
    double hi = mean;
    for (std::size_t p = tailStart; p < n; ++p) {
      const auto it = history[p].find(id);
      if (it == history[p].end()) continue;
      lo = std::min(lo, it->second);
      hi = std::max(hi, it->second);
    }
    report.tailOscillation = std::max(report.tailOscillation, (hi - lo) / mean);
  }

  // Settling period: first p such that all later samples of every flow
  // are within the band of the tail mean.
  auto inBand = [&](std::size_t p) {
    for (const auto& [id, mean] : report.finalRates) {
      const auto it = history[p].find(id);
      if (it == history[p].end()) return false;
      if (mean <= 0.0) continue;
      if (std::abs(it->second - mean) > band * mean) return false;
    }
    return true;
  };
  int settled = -1;
  for (std::size_t p = 0; p < n; ++p) {
    if (inBand(p)) {
      if (settled < 0) settled = static_cast<int>(p);
    } else {
      settled = -1;
    }
  }
  report.convergedAtPeriod = settled;
  return report;
}

}  // namespace maxmin::analysis
