// Convergence analysis over per-period rate histories.
//
// GMP has no termination signal — it keeps probing additively and
// correcting by beta steps — so "converged" means: from some period on,
// every flow's rate stays inside a relative band around its eventual
// (tail-mean) value. These utilities turn a gmp::Controller or
// fluid::FluidGmpHarness rate history into the convergence period and
// the residual oscillation amplitude.
#pragma once

#include <map>
#include <vector>

#include "net/packet.hpp"

namespace maxmin::analysis {

using RateHistory = std::vector<std::map<net::FlowId, double>>;

struct ConvergenceReport {
  /// First period index from which every flow stays within `band` of its
  /// tail mean; -1 if the history never settles.
  int convergedAtPeriod = -1;
  /// Mean rate per flow over the tail window.
  std::map<net::FlowId, double> finalRates;
  /// Largest relative peak-to-peak swing, over flows, within the tail
  /// window: max_f (max - min) / mean. The steady-state "wobble".
  double tailOscillation = 0.0;
};

/// `band`: relative half-width of the settling band (e.g. 0.15 = ±15 %).
/// `tailWindow`: number of final periods used to define the settled value
/// and the oscillation measure. The history must have at least
/// `tailWindow` entries.
ConvergenceReport analyzeConvergence(const RateHistory& history,
                                     double band = 0.15, int tailWindow = 10);

}  // namespace maxmin::analysis
