// Centralized weighted maxmin reference solver.
//
// Models the wireless network the same way the paper reasons about it:
// each maximal contention clique is a serial resource of capacity C_c
// (pkts/s); a flow consumes one capacity unit of clique c per link of its
// path inside c. Weighted water-filling raises all flows' normalized
// rates together, freezing flows as their bottleneck cliques fill or
// their desirable rates are reached — the classical construction whose
// fixed point is exactly the global maxmin objective of §2.1.
//
// GMP never sees this solver; it exists to validate that the distributed
// protocol converges to (near) the true maxmin allocation, and to power
// property tests.
#pragma once

#include <map>
#include <vector>

#include "net/flow.hpp"
#include "topology/topology.hpp"

namespace maxmin::analysis {

struct CliqueModel {
  struct FlowEntry {
    net::FlowId id = net::kNoFlow;
    double weight = 1.0;
    double desiredPps = 0.0;
  };
  std::vector<FlowEntry> flows;
  /// traversals[c][i]: number of links of flows[i]'s path inside clique c.
  std::vector<std::vector<int>> traversals;
  /// capacity[c]: serial packet capacity of clique c (pkts/s).
  std::vector<double> capacity;
};

/// Build the model from a topology and flow set (shortest-path routes),
/// assigning every maximal clique the same capacity.
CliqueModel buildCliqueModel(const topo::Topology& topo,
                             const std::vector<net::FlowSpec>& flows,
                             double cliqueCapacityPps);

/// Weighted maxmin rates (pkts/s) by water-filling.
std::map<net::FlowId, double> solveWeightedMaxmin(const CliqueModel& model);

/// Certificate check used by property tests: rates are feasible, and
/// every flow is either at its desirable rate or has a bottleneck — a
/// tight clique on its path where no crossing flow has a smaller
/// normalized rate... i.e. the flow's normalized rate is within
/// `tolerance` of the largest in that clique. This is the classical
/// bottleneck characterization of maxmin optimality.
bool satisfiesBottleneckCondition(const CliqueModel& model,
                                  const std::map<net::FlowId, double>& rates,
                                  double tolerance = 1e-6);

/// Feasibility only: all clique loads within capacity (+ tolerance) and
/// rates within [0, desired].
bool isFeasible(const CliqueModel& model,
                const std::map<net::FlowId, double>& rates,
                double tolerance = 1e-6);

}  // namespace maxmin::analysis
