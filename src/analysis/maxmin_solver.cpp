#include "analysis/maxmin_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "topology/cliques.hpp"
#include "topology/conflict_graph.hpp"
#include "topology/routing.hpp"
#include "util/check.hpp"

namespace maxmin::analysis {

CliqueModel buildCliqueModel(const topo::Topology& topo,
                             const std::vector<net::FlowSpec>& flows,
                             double cliqueCapacityPps) {
  MAXMIN_CHECK(cliqueCapacityPps > 0.0);
  CliqueModel model;

  std::vector<std::vector<topo::NodeId>> paths;
  std::set<topo::Link> linkSet;
  for (const net::FlowSpec& f : flows) {
    const auto tree = topo::RoutingTree::shortestPaths(topo, f.dst);
    MAXMIN_CHECK_MSG(tree.reaches(f.src), "flow " << f.id << " unroutable");
    paths.push_back(tree.pathFrom(f.src));
    for (std::size_t i = 0; i + 1 < paths.back().size(); ++i) {
      linkSet.insert(topo::Link{paths.back()[i], paths.back()[i + 1]});
    }
    model.flows.push_back(CliqueModel::FlowEntry{
        f.id, f.weight, f.desiredRate.asPerSecond()});
  }

  const topo::ConflictGraph graph{topo, {linkSet.begin(), linkSet.end()}};
  const auto cliques = topo::enumerateMaximalCliques(graph);

  model.traversals.assign(cliques.size(),
                          std::vector<int>(flows.size(), 0));
  model.capacity.assign(cliques.size(), cliqueCapacityPps);
  for (std::size_t c = 0; c < cliques.size(); ++c) {
    std::set<topo::Link> members;
    for (int li : cliques[c].linkIndices) {
      members.insert(graph.links()[static_cast<std::size_t>(li)]);
    }
    for (std::size_t i = 0; i < paths.size(); ++i) {
      for (std::size_t h = 0; h + 1 < paths[i].size(); ++h) {
        if (members.contains(topo::Link{paths[i][h], paths[i][h + 1]})) {
          ++model.traversals[c][i];
        }
      }
    }
  }
  return model;
}

std::map<net::FlowId, double> solveWeightedMaxmin(const CliqueModel& model) {
  const std::size_t n = model.flows.size();
  const std::size_t m = model.capacity.size();
  std::vector<double> rate(n, 0.0);
  std::vector<bool> active(n, true);
  for (std::size_t i = 0; i < n; ++i) {
    MAXMIN_CHECK(model.flows[i].weight > 0.0);
    if (model.flows[i].desiredPps <= 0.0) active[i] = false;
  }

  constexpr double kEps = 1e-9;
  for (std::size_t round = 0; round <= n + m; ++round) {
    if (std::none_of(active.begin(), active.end(), [](bool b) { return b; }))
      break;

    // Largest uniform normalized-rate increment all active flows admit.
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < m; ++c) {
      double load = 0.0;
      double weightSum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        load += rate[i] * model.traversals[c][i];
        if (active[i]) {
          weightSum += model.flows[i].weight * model.traversals[c][i];
        }
      }
      if (weightSum > 0.0) {
        delta = std::min(delta, (model.capacity[c] - load) / weightSum);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      delta = std::min(delta, (model.flows[i].desiredPps - rate[i]) /
                                  model.flows[i].weight);
    }
    MAXMIN_CHECK(std::isfinite(delta));
    delta = std::max(delta, 0.0);

    for (std::size_t i = 0; i < n; ++i) {
      if (active[i]) rate[i] += delta * model.flows[i].weight;
    }

    // Freeze flows at their desirable rate or crossing a now-tight clique.
    bool froze = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i] && rate[i] >= model.flows[i].desiredPps - kEps) {
        active[i] = false;
        froze = true;
      }
    }
    for (std::size_t c = 0; c < m; ++c) {
      double load = 0.0;
      bool anyActive = false;
      for (std::size_t i = 0; i < n; ++i) {
        load += rate[i] * model.traversals[c][i];
        if (active[i] && model.traversals[c][i] > 0) anyActive = true;
      }
      if (anyActive && load >= model.capacity[c] - kEps) {
        for (std::size_t i = 0; i < n; ++i) {
          if (active[i] && model.traversals[c][i] > 0) {
            active[i] = false;
            froze = true;
          }
        }
      }
    }
    MAXMIN_CHECK_MSG(
        froze || std::none_of(active.begin(), active.end(),
                              [](bool b) { return b; }),
        "water-filling made no progress");
  }

  std::map<net::FlowId, double> result;
  for (std::size_t i = 0; i < n; ++i) {
    result[model.flows[i].id] = rate[i];
  }
  return result;
}

bool isFeasible(const CliqueModel& model,
                const std::map<net::FlowId, double>& rates,
                double tolerance) {
  for (std::size_t i = 0; i < model.flows.size(); ++i) {
    const double r = rates.at(model.flows[i].id);
    if (r < -tolerance || r > model.flows[i].desiredPps + tolerance) {
      return false;
    }
  }
  for (std::size_t c = 0; c < model.capacity.size(); ++c) {
    double load = 0.0;
    for (std::size_t i = 0; i < model.flows.size(); ++i) {
      load += rates.at(model.flows[i].id) * model.traversals[c][i];
    }
    if (load > model.capacity[c] + tolerance) return false;
  }
  return true;
}

bool satisfiesBottleneckCondition(const CliqueModel& model,
                                  const std::map<net::FlowId, double>& rates,
                                  double tolerance) {
  if (!isFeasible(model, rates, tolerance)) return false;
  for (std::size_t i = 0; i < model.flows.size(); ++i) {
    const double r = rates.at(model.flows[i].id);
    if (r >= model.flows[i].desiredPps - tolerance) continue;  // demand-capped
    const double mu = r / model.flows[i].weight;

    bool hasBottleneck = false;
    for (std::size_t c = 0; c < model.capacity.size(); ++c) {
      if (model.traversals[c][i] == 0) continue;
      double load = 0.0;
      double maxMu = 0.0;
      for (std::size_t j = 0; j < model.flows.size(); ++j) {
        load += rates.at(model.flows[j].id) * model.traversals[c][j];
        if (model.traversals[c][j] > 0) {
          maxMu = std::max(maxMu,
                           rates.at(model.flows[j].id) / model.flows[j].weight);
        }
      }
      if (load >= model.capacity[c] - tolerance && mu >= maxMu - tolerance) {
        hasBottleneck = true;
        break;
      }
    }
    if (!hasBottleneck) return false;
  }
  return true;
}

}  // namespace maxmin::analysis
