// One-call experiment runner: build the network for a protocol, run it,
// measure steady-state flow rates, and summarize — the loop behind every
// table reproduction in bench/.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/convergence.hpp"
#include "analysis/metrics.hpp"
#include "gmp/types.hpp"
#include "hybrid/config.hpp"
#include "net/config.hpp"
#include "obs/trace.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/fault_plane.hpp"

namespace maxmin::analysis {

enum class Protocol {
  kDcf80211,  ///< plain 802.11 DCF, shared drop-overwrite buffer
  kTwoPhase,  ///< 2PP [11]: per-flow queues + offline two-phase rates
  kGmp,       ///< the paper's protocol
};

const char* protocolName(Protocol p);

struct RunConfig {
  Protocol protocol = Protocol::kGmp;
  /// Total simulated time. The paper runs 400 s sessions.
  Duration duration = Duration::seconds(400.0);
  /// Rates are measured over [warmup, duration].
  Duration warmup = Duration::seconds(200.0);
  std::uint64_t seed = 1;
  gmp::GmpParams gmpParams;
  /// Applied before the protocol-specific queueing configuration.
  /// Channel impairments (PER / Gilbert-Elliott) ride in
  /// netBase.impairments; node/link faults in `faults` below.
  net::NetworkConfig netBase;
  /// Fault schedule injected before the run starts; empty = no faults.
  sim::FaultScript faults;
  /// Structured trace sink (not owned; nullptr = no tracing). GMP runs
  /// attach it to the controller, which appends one JSONL record per
  /// period (plus per-decision events at TraceLevel::kEvent).
  obs::TraceSink* trace = nullptr;
  /// Hybrid fluid/packet coupling (DESIGN.md §16); GMP only. With both
  /// modes off this config is inert and runs are byte-identical to
  /// builds that predate it.
  hybrid::HybridConfig hybrid;
};

struct FlowOutcome {
  net::FlowId id = net::kNoFlow;
  std::string name;
  double ratePps = 0.0;
  double weight = 1.0;
  int hops = 0;
  /// True when the flow was advanced by the fluid solver (hybrid
  /// background mode) rather than packet-simulated.
  bool background = false;
};

struct RunResult {
  Protocol protocol = Protocol::kGmp;
  std::vector<FlowOutcome> flows;
  FairnessSummary summary;             ///< over raw rates
  FairnessSummary normalizedSummary;   ///< over r(f)/w(f)
  std::int64_t queueDrops = 0;
  /// GMP only: total condition violations per period.
  std::vector<int> violationHistory;
  /// GMP only: per-period measured flow rates (for convergence and
  /// disruption analysis).
  RateHistory rateHistory;

  // --- fault-run accounting (all zero in fault-free runs) ------------------
  std::int64_t crashDrops = 0;         ///< queue contents lost at crashes
  std::int64_t deadNeighborDrops = 0;  ///< dropped after next-hop declared dead
  std::int64_t framesImpaired = 0;     ///< lost to PER / Gilbert-Elliott
  std::int64_t framesSuppressed = 0;   ///< silenced by down nodes / cut links
  std::int64_t staleMeasurementsUsed = 0;  ///< controller TTL substitutions
  std::int64_t limitsRestored = 0;         ///< post-recovery limit restores

  // --- hybrid-run accounting (all zero when hybrid modes are off) ----------
  int ffPeriods = 0;          ///< fluid fast-forward periods iterated
  bool ffConverged = false;   ///< fixed point reached within tolerance
  std::int64_t seededPackets = 0;   ///< backlog packets injected at t=0
  int relinearizations = 0;   ///< background re-couplings (one per period)
  int backgroundFlows = 0;    ///< flows advanced by the fluid solver
  std::int64_t phantomBursts = 0;   ///< background NAV reservations emitted

  [[nodiscard]] double rateOf(net::FlowId id) const;
};

RunResult runScenario(const scenarios::Scenario& scenario,
                      const RunConfig& config);

}  // namespace maxmin::analysis
