#include "analysis/trace_replay.hpp"

#include <fstream>
#include <istream>
#include <utility>

#include "util/check.hpp"
#include "util/num_text.hpp"

namespace maxmin::analysis {
namespace {

// Minimal recursive-descent JSON reader, just enough for the trace
// schema (objects, arrays, strings with the writer's escapes, numbers,
// booleans, null). The writer is ours, so unsupported JSON (exponents
// are fine; \uXXXX beyond the writer's \u0000 is not) simply fails the
// parse and surfaces as a malformed-line error with context.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& k) const {
    const auto it = object.find(k);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_{text} {}

  JsonValue parse() {
    JsonValue v = value();
    skipWs();
    MAXMIN_CHECK_MSG(pos_ == text_.size(), "trailing bytes after JSON value");
    return v;
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }
  char peek() {
    MAXMIN_CHECK_MSG(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }
  void expect(char c) {
    MAXMIN_CHECK_MSG(peek() == c, "expected '" << c << "' at byte " << pos_);
    ++pos_;
  }

  JsonValue value() {
    skipWs();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't':
      case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skipWs();
      JsonValue key = string();
      skipWs();
      expect(':');
      v.object.emplace(std::move(key.string), value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string() {
    expect('"');
    JsonValue v;
    v.type = JsonValue::Type::kString;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c != '\\') {
        v.string.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': v.string.push_back('"'); break;
        case '\\': v.string.push_back('\\'); break;
        case 'n': v.string.push_back('\n'); break;
        case 't': v.string.push_back('\t'); break;
        case 'u':
          MAXMIN_CHECK_MSG(text_.substr(pos_, 4) == "0000",
                           "unsupported \\u escape");
          pos_ += 4;
          v.string.push_back('\0');
          break;
        default: MAXMIN_CHECK_MSG(false, "bad escape '\\" << esc << "'");
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
    } else {
      MAXMIN_CHECK_MSG(text_.substr(pos_, 5) == "false", "bad literal");
      pos_ += 5;
    }
    return v;
  }

  JsonValue null() {
    MAXMIN_CHECK_MSG(text_.substr(pos_, 4) == "null", "bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue number() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    MAXMIN_CHECK_MSG(pos_ > start, "expected a number at byte " << start);
    const std::string_view tok = text_.substr(start, pos_ - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    // parseDouble (std::from_chars) keeps the parse locale-independent:
    // strtod under a ',' decimal-separator locale would stop at the '.'
    // and silently truncate the mantissa.
    MAXMIN_CHECK_MSG(parseDouble(tok, v.number), "bad number " << tok);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

double numberField(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  MAXMIN_CHECK_MSG(v != nullptr && v->type == JsonValue::Type::kNumber,
                   "trace record missing numeric field \"" << key << "\"");
  return v->number;
}

}  // namespace

std::vector<double> TraceReplay::immTrajectory() const {
  std::vector<double> out;
  out.reserve(periods.size());
  for (const ReplayPeriod& p : periods) out.push_back(p.summary.imm);
  return out;
}

std::vector<double> TraceReplay::ieqTrajectory() const {
  std::vector<double> out;
  out.reserve(periods.size());
  for (const ReplayPeriod& p : periods) out.push_back(p.summary.ieq);
  return out;
}

TraceReplay traceReplay(std::istream& in) {
  TraceReplay replay;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    JsonValue root;
    try {
      root = JsonParser{line}.parse();
    } catch (const InvariantViolation& e) {
      MAXMIN_CHECK_MSG(false, "trace line " << lineNo << ": " << e.what());
    }
    const JsonValue* record = root.find("record");
    MAXMIN_CHECK_MSG(record != nullptr &&
                         record->type == JsonValue::Type::kString,
                     "trace line " << lineNo << ": no \"record\" field");
    if (record->string != "period") continue;  // event-level detail

    ReplayPeriod p;
    p.period = static_cast<int>(numberField(root, "period"));
    p.timeUs = static_cast<std::int64_t>(numberField(root, "timeUs"));
    const JsonValue* flows = root.find("flows");
    MAXMIN_CHECK_MSG(flows != nullptr &&
                         flows->type == JsonValue::Type::kArray,
                     "trace line " << lineNo << ": no \"flows\" array");
    for (const JsonValue& f : flows->array) {
      const auto id = static_cast<net::FlowId>(numberField(f, "id"));
      p.ratesPps[id] = numberField(f, "ratePps");
      p.hops[id] = static_cast<int>(numberField(f, "hops"));
    }
    p.summary = summarize(p.ratesPps, p.hops);
    replay.periods.push_back(std::move(p));
  }
  return replay;
}

TraceReplay traceReplayFile(const std::string& path) {
  std::ifstream in{path};
  MAXMIN_CHECK_MSG(in.good(), "cannot open trace file " << path);
  return traceReplay(in);
}

}  // namespace maxmin::analysis
