// Disruption metrics for fault-injection runs: how deep fairness dips
// when a fault hits and how many adjustment periods GMP needs to climb
// back after recovery.
//
// The input is the same per-period rate history convergence.hpp works
// on; the fault/recovery instants are given as period indices (the
// caller knows when its FaultScript fired relative to the controller's
// period boundaries).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/convergence.hpp"
#include "analysis/metrics.hpp"

namespace maxmin::analysis {

struct DisruptionConfig {
  /// Period index (into the history) at which the fault took effect.
  int faultPeriod = 0;
  /// Period index of the recovery; -1 for a permanent fault, in which
  /// case re-convergence is measured from the fault itself.
  int recoveryPeriod = -1;
  /// Equality-index level that counts as re-converged (the acceptance
  /// bar for the robustness experiments is 0.9).
  double reconvergeIeq = 0.9;
  /// Number of pre-fault periods whose mean I_eq forms the baseline.
  int baselineWindow = 3;

  /// Optional: per-period fraction of alive nodes whose 2-hop
  /// neighborhood is covered by their current relay sets (same length
  /// as the rate history; empty = coverage not tracked). Feeds the
  /// time-to-coverage-restoration metric.
  std::vector<double> coverageByPeriod;
  /// Coverage level that counts as restored (1.0 = full 2-hop cover).
  double coverageRestoredThreshold = 1.0;

  /// Optional: per-period component id of each flow's source (the
  /// controller's partitionHistory()); empty = partitions not tracked.
  std::vector<std::map<net::FlowId, std::int32_t>> partitionHistory;
};

struct DisruptionReport {
  /// Mean I_eq over the baselineWindow periods before the fault.
  double baselineIeq = 0.0;
  /// Lowest I_eq at or after the fault, and the period it occurred in.
  double dipIeq = 1.0;
  int dipPeriod = -1;
  /// How far fairness fell: baselineIeq - dipIeq (>= 0 in practice).
  [[nodiscard]] double dipDepth() const { return baselineIeq - dipIeq; }
  /// First period at/after recovery (or the fault, when permanent) with
  /// I_eq >= reconvergeIeq; -1 if the run never got back.
  int reconvergedAtPeriod = -1;
  /// reconvergedAtPeriod relative to the recovery period; -1 if never.
  int periodsToReconverge = -1;
  /// Packets lost to the disruption (crash flushes + dead-next-hop
  /// drops + queue drops); filled by the experiment runner, not from
  /// the rate history.
  std::int64_t packetsLost = 0;
  /// I_eq per period over the whole history (diagnostic trace).
  std::vector<double> ieqByPeriod;

  /// First period at/after the fault where relay coverage was back at
  /// the threshold following a deficit; -1 = never restored, or
  /// faultPeriod when coverage never dipped. Only set when
  /// coverageByPeriod was supplied.
  int coverageRestoredAtPeriod = -1;
  /// coverageRestoredAtPeriod - faultPeriod; -1 if never restored.
  int periodsToCoverageRestoration = -1;

  /// Per-component I_eq per period: component id -> one value per
  /// period of the history (1.0 where the component had no flows that
  /// period). Only filled when partitionHistory was supplied.
  std::map<std::int32_t, std::vector<double>> partitionIeqByPeriod;
};

/// `hops[id]` must exist for every flow in the history.
DisruptionReport analyzeDisruption(const RateHistory& history,
                                   const std::map<net::FlowId, int>& hops,
                                   const DisruptionConfig& config);

}  // namespace maxmin::analysis
