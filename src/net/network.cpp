#include "net/network.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace maxmin::net {

Network::Network(topo::Topology topology, NetworkConfig config,
                 std::vector<FlowSpec> flows)
    : topo_{std::move(topology)},
      config_{config},
      flows_{std::move(flows)},
      medium_{sim_, topo_} {
  validateFlows(flows_, topo_.numNodes());

  // Routing first: sources start generating as soon as flows are added.
  for (const FlowSpec& f : flows_) {
    if (!routes_.contains(f.dst)) {
      routes_.emplace(f.dst, topo::RoutingTree::shortestPaths(topo_, f.dst));
    }
    MAXMIN_CHECK_MSG(routes_.at(f.dst).reaches(f.src),
                     "flow " << f.id << " source cannot reach destination");
  }

  if (config_.impairments.enabled()) {
    impairments_.emplace(config_.impairments,
                         Rng{config_.seed}.stream("phys-impairment"));
    medium_.setImpairments(&*impairments_);
  }

  Rng root{config_.seed};
  stacks_.reserve(static_cast<std::size_t>(topo_.numNodes()));
  macs_.reserve(static_cast<std::size_t>(topo_.numNodes()));
  for (topo::NodeId n = 0; n < topo_.numNodes(); ++n) {
    stacks_.push_back(std::make_unique<NodeStack>(*this, n, root.fork()));
    macs_.push_back(std::make_unique<mac::Dcf>(sim_, medium_, n, *stacks_.back(),
                                               config_.mac, root.fork()));
    stacks_.back()->attachMac(macs_.back().get());
  }

  for (const FlowSpec& f : flows_) {
    stacks_[static_cast<std::size_t>(f.src)]->addLocalFlow(f);
    delivered_[f.id] = 0;
  }
}

Network::~Network() = default;

sim::FaultPlane& Network::enableFaults(const sim::FaultScript& script) {
  MAXMIN_CHECK_MSG(faultPlane_ == nullptr, "fault injection already enabled");
  faultPlane_ = std::make_unique<sim::FaultPlane>(
      sim_, topo_.numNodes(), script, Rng{config_.seed}.stream("faults"));
  faultPlane_->addListener(this);
  medium_.setFaultPlane(faultPlane_.get());
  faultPlane_->start();
  return *faultPlane_;
}

void Network::onNodeDown(std::int32_t node) {
  stack(node).setOperational(false);
}

void Network::onNodeUp(std::int32_t node) { stack(node).setOperational(true); }

topo::NodeId Network::nextHop(topo::NodeId from, topo::NodeId dest) {
  const auto it = routes_.find(dest);
  if (it == routes_.end()) return topo::kNoNode;
  return it->second.nextHop(from);
}

void Network::recordDelivery(const Packet& packet) {
  ++delivered_.at(packet.flow);
  latencySeconds_[packet.flow].add((sim_.now() - packet.created).asSeconds());
}

const RunningStats& Network::latencyStats(FlowId id) const {
  static const RunningStats kEmpty;
  const auto it = latencySeconds_.find(id);
  return it == latencySeconds_.end() ? kEmpty : it->second;
}

const FlowSpec& Network::flow(FlowId id) const {
  for (const FlowSpec& f : flows_) {
    if (f.id == id) return f;
  }
  MAXMIN_CHECK_MSG(false, "unknown flow " << id);
  throw InvariantViolation("unreachable");
}

NodeStack& Network::stack(topo::NodeId node) {
  return *stacks_.at(static_cast<std::size_t>(node));
}

mac::Dcf& Network::macOf(topo::NodeId node) {
  return *macs_.at(static_cast<std::size_t>(node));
}

const topo::RoutingTree& Network::routeTo(topo::NodeId dest) const {
  const auto it = routes_.find(dest);
  MAXMIN_CHECK_MSG(it != routes_.end(), "no route computed to " << dest);
  return it->second;
}

std::vector<topo::NodeId> Network::pathOf(FlowId id) const {
  const FlowSpec& f = flow(id);
  return routeTo(f.dst).pathFrom(f.src);
}

int Network::hopCount(FlowId id) const {
  return static_cast<int>(pathOf(id).size()) - 1;
}

std::vector<topo::Link> Network::activeLinks() const {
  std::set<topo::Link> links;
  for (const FlowSpec& f : flows_) {
    const auto path = pathOf(f.id);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      links.insert(topo::Link{path[i], path[i + 1]});
    }
  }
  return {links.begin(), links.end()};
}

void Network::setRateLimit(FlowId id, std::optional<double> pps) {
  stack(flow(id).src).setRateLimit(id, pps);
}

std::optional<double> Network::rateLimit(FlowId id) const {
  const FlowSpec& f = flow(id);
  return stacks_.at(static_cast<std::size_t>(f.src))->rateLimit(id);
}

void Network::setSourceMu(FlowId id, double mu) {
  stack(flow(id).src).setSourceMu(id, mu);
}

std::int64_t Network::delivered(FlowId id) const { return delivered_.at(id); }

Network::DeliverySnapshot Network::snapshotDeliveries() const {
  return DeliverySnapshot{sim_.now(),
                          {delivered_.begin(), delivered_.end()}};
}

std::map<FlowId, double> Network::ratesBetween(const DeliverySnapshot& from,
                                               const DeliverySnapshot& to) {
  const double seconds = (to.at - from.at).asSeconds();
  MAXMIN_CHECK(seconds > 0.0);
  std::map<FlowId, double> rates;
  for (const auto& [id, count] : to.counts) {
    const auto it = from.counts.find(id);
    const std::int64_t before = it == from.counts.end() ? 0 : it->second;
    rates[id] = static_cast<double>(count - before) / seconds;
  }
  return rates;
}

std::int64_t Network::totalQueueDrops() const {
  std::int64_t total = 0;
  for (const auto& s : stacks_) total += s->dropsTail();
  return total;
}

std::int64_t Network::totalDeadNeighborDrops() const {
  std::int64_t total = 0;
  for (const auto& s : stacks_) total += s->dropsDeadNextHop();
  return total;
}

std::int64_t Network::totalCrashDrops() const {
  std::int64_t total = 0;
  for (const auto& s : stacks_) total += s->dropsAtCrash();
  return total;
}

NodePeriodMeasurement Network::closeMeasurementWindow(topo::NodeId node) {
  return stack(node).closeMeasurementWindow();
}

Duration Network::takeLinkOccupancy(topo::NodeId from, topo::NodeId to) {
  return macOf(from).takeOccupancy(to);
}

}  // namespace maxmin::net
