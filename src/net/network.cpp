#include "net/network.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace maxmin::net {

Network::Network(topo::Topology topology, NetworkConfig config,
                 std::vector<FlowSpec> flows)
    : topo_{std::move(topology)},
      config_{config},
      flows_{std::move(flows)},
      medium_{sim_, topo_} {
  validateFlows(flows_, topo_.numNodes());
  MAXMIN_CHECK_MSG(config_.shards >= 0, "shards must be non-negative");
  MAXMIN_CHECK_MSG(config_.shards == 0 || !config_.impairments.enabled(),
                   "channel impairments draw from one serial RNG stream and "
                   "cannot run sharded");

  // Routing first: sources start generating as soon as flows are added.
  for (const FlowSpec& f : flows_) {
    if (!routes_.contains(f.dst)) {
      routes_.emplace(f.dst, topo::RoutingTree::shortestPaths(topo_, f.dst));
    }
    MAXMIN_CHECK_MSG(routes_.at(f.dst).reaches(f.src),
                     "flow " << f.id << " source cannot reach destination");
  }

  if (config_.impairments.enabled()) {
    impairments_.emplace(config_.impairments,
                         Rng{config_.seed}.stream("phys-impairment"));
    medium_.setImpairments(&*impairments_);
  }

  // Lanes must exist before the stacks: each stack/MAC binds to its
  // node's lane simulator and medium at construction.
  if (config_.shards > 0) setupShards();

  Rng root{config_.seed};
  stacks_.reserve(static_cast<std::size_t>(topo_.numNodes()));
  macs_.reserve(static_cast<std::size_t>(topo_.numNodes()));
  for (topo::NodeId n = 0; n < topo_.numNodes(); ++n) {
    phys::Medium& medium =
        sharded() ? lanes_[static_cast<std::size_t>(plan_.shard(n))]->medium
                  : medium_;
    stacks_.push_back(std::make_unique<NodeStack>(*this, n, root.fork()));
    macs_.push_back(std::make_unique<mac::Dcf>(simulatorFor(n), medium, n,
                                               *stacks_.back(), config_.mac,
                                               root.fork()));
    stacks_.back()->attachMac(macs_.back().get());
  }

  for (const FlowSpec& f : flows_) {
    stacks_[static_cast<std::size_t>(f.src)]->addLocalFlow(f);
    delivered_[f.id] = 0;
    // Pre-inserted so sharded delivery recording never rehashes: each
    // flow's entry is written by exactly one lane worker (its sink's).
    latencySeconds_[f.id];
  }
}

void Network::setupShards() {
  plan_ = topo::makeShardPlan(topo_, config_.shards);
  const auto n = static_cast<std::size_t>(topo_.numNodes());
  lanes_.reserve(static_cast<std::size_t>(plan_.numShards));
  for (int i = 0; i < plan_.numShards; ++i) {
    auto lane = std::make_unique<ShardLane>(topo_);
    lane->sim.enableCanonicalOrder(static_cast<std::uint32_t>(n));
    lane->owned.assign(n, 0);
    for (const topo::NodeId id : plan_.members[static_cast<std::size_t>(i)]) {
      lane->owned[static_cast<std::size_t>(id)] = 1;
      // Cut nodes are the only possible exporters; tracking them gives
      // the runtime the exact lower bound on future exports.
      if (plan_.isCut(id)) lane->sim.trackOwner(static_cast<std::uint32_t>(id));
    }
    lanes_.push_back(std::move(lane));
  }

  std::vector<sim::ShardedRuntime<BoundaryTx>::LaneSetup> setups;
  setups.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    setups.push_back(
        {&lane->sim,
         [medium = &lane->medium](const BoundaryTx& tx, sim::EventKey) {
           medium->applyImportedStart(tx.frame, tx.finish);
         }});
  }
  // Lookahead = SIFS: every cross-node reaction in the MAC goes through
  // a timer of at least one SIFS (DESIGN.md §15).
  runtime_ = std::make_unique<sim::ShardedRuntime<BoundaryTx>>(
      std::move(setups), config_.mac.sifs);

  for (int i = 0; i < plan_.numShards; ++i) {
    ShardLane& lane = *lanes_[static_cast<std::size_t>(i)];
    lane.medium.bindShard(phys::Medium::ShardBinding{
        lane.owned.data(), plan_.cut.data(),
        [this, i](const phys::Frame& frame, sim::EventKey start,
                  sim::EventKey finish) { onExport(i, frame, start, finish); }});
  }
}

void Network::onExport(int lane, const phys::Frame& frame, sim::EventKey start,
                       sim::EventKey finish) {
  if (inWindow_) {
    runtime_->exportFrom(lane, BoundaryTx{frame, finish}, start);
    return;
  }
  // Control-barrier transmission (e.g. a broadcast triggered by a serial
  // control call finding the channel idle): every lane clock already sits
  // at the barrier time, so apply the import on the adjacent lanes right
  // now, in control-call order — exactly as the exporting lane just
  // applied its own half. The synthetic key only stamps the clock/owner
  // context; the finish event still lands at the exporting lane's
  // canonical key, which is valid under any shard count.
  const TimePoint at = lanes_[static_cast<std::size_t>(lane)]->sim.now();
  for (const int nb : {lane - 1, lane + 1}) {
    if (nb < 0 || nb >= static_cast<int>(lanes_.size())) continue;
    ShardLane& other = *lanes_[static_cast<std::size_t>(nb)];
    other.sim.beginExternalEvent(sim::EventKey{at, 0});
    other.medium.applyImportedStart(frame, finish);
  }
}

void Network::run(Duration d) {
  if (!sharded()) {
    sim_.runUntil(sim_.now() + d);
    return;
  }
  const TimePoint target = sim_.now() + d;
  for (;;) {
    // One window per control-plane event: lanes run in parallel strictly
    // below the next serial barrier, then the barrier runs serially with
    // every lane clock parked at it.
    sim::EventKey ck;
    const bool hasControl = sim_.nextEventKey(ck);
    const TimePoint w = hasControl && ck.when < target ? ck.when : target;
    inWindow_ = true;
    runtime_->runWindow(w);
    inWindow_ = false;
    sim_.runUntil(w);
    if (w >= target) break;
  }
  for (auto& lane : lanes_) lane->sim.flushMetrics();
  publishShardCounters();
}

void Network::publishShardCounters() {
  if (!obs::Registry::enabled()) return;
  std::uint64_t events = 0;
  std::uint64_t imports = 0;
  for (int i = 0; i < plan_.numShards; ++i) {
    const std::uint64_t e = runtime_->localEvents(i);
    const std::uint64_t m = runtime_->importedEvents(i);
    events += e;
    imports += m;
    const std::string prefix = "sim.shard." + std::to_string(i);
    obs::Registry::global()
        .gauge(prefix + ".events")
        .set(static_cast<std::int64_t>(e));
    obs::Registry::global()
        .gauge(prefix + ".imported")
        .set(static_cast<std::int64_t>(m));
  }
  MAXMIN_COUNT("sim.shard.events",
               static_cast<std::int64_t>(events - publishedLaneEvents_));
  MAXMIN_COUNT("sim.shard.imported",
               static_cast<std::int64_t>(imports - publishedLaneImports_));
  publishedLaneEvents_ = events;
  publishedLaneImports_ = imports;
}

sim::Simulator& Network::simulatorFor(topo::NodeId node) {
  if (!sharded()) return sim_;
  return lanes_[static_cast<std::size_t>(plan_.shard(node))]->sim;
}

std::uint64_t Network::laneLocalEvents(int lane) const {
  MAXMIN_CHECK(sharded());
  return runtime_->localEvents(lane);
}

std::uint64_t Network::laneImportedEvents(int lane) const {
  MAXMIN_CHECK(sharded());
  return runtime_->importedEvents(lane);
}

std::uint64_t Network::laneExportedEvents(int lane) const {
  MAXMIN_CHECK(sharded());
  return runtime_->exportedEvents(lane);
}

std::uint64_t Network::framesDelivered() const {
  if (!sharded()) return medium_.framesDelivered();
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->medium.framesDelivered();
  return total;
}

std::uint64_t Network::framesCorrupted() const {
  if (!sharded()) return medium_.framesCorrupted();
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->medium.framesCorrupted();
  return total;
}

std::uint64_t Network::framesImpaired() const {
  if (!sharded()) return medium_.framesImpaired();
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->medium.framesImpaired();
  return total;
}

std::uint64_t Network::framesSuppressed() const {
  if (!sharded()) return medium_.framesSuppressed();
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->medium.framesSuppressed();
  return total;
}

Network::~Network() = default;

sim::FaultPlane& Network::enableFaults(const sim::FaultScript& script) {
  MAXMIN_CHECK_MSG(faultPlane_ == nullptr, "fault injection already enabled");
  faultPlane_ = std::make_unique<sim::FaultPlane>(
      sim_, topo_.numNodes(), script, Rng{config_.seed}.stream("faults"));
  faultPlane_->addListener(this);
  medium_.setFaultPlane(faultPlane_.get());
  // Lane mediums gate on the same plane: its state only changes inside
  // serial control barriers, so lane workers read it race-free.
  for (auto& lane : lanes_) lane->medium.setFaultPlane(faultPlane_.get());
  faultPlane_->start();
  return *faultPlane_;
}

void Network::onNodeDown(std::int32_t node) {
  stack(node).setOperational(false);
}

void Network::onNodeUp(std::int32_t node) { stack(node).setOperational(true); }

topo::NodeId Network::nextHop(topo::NodeId from, topo::NodeId dest) {
  const auto it = routes_.find(dest);
  if (it == routes_.end()) return topo::kNoNode;
  return it->second.nextHop(from);
}

void Network::recordDelivery(const Packet& packet, TimePoint at) {
  // May run on a lane worker. Both maps were pre-populated per flow at
  // construction (no rehash) and a flow's sink lives on exactly one lane,
  // so each entry has a single writer.
  ++delivered_.at(packet.flow);
  latencySeconds_.at(packet.flow).add((at - packet.created).asSeconds());
}

const RunningStats& Network::latencyStats(FlowId id) const {
  static const RunningStats kEmpty;
  const auto it = latencySeconds_.find(id);
  return it == latencySeconds_.end() ? kEmpty : it->second;
}

const FlowSpec& Network::flow(FlowId id) const {
  for (const FlowSpec& f : flows_) {
    if (f.id == id) return f;
  }
  MAXMIN_CHECK_MSG(false, "unknown flow " << id);
  throw InvariantViolation("unreachable");
}

NodeStack& Network::stack(topo::NodeId node) {
  return *stacks_.at(static_cast<std::size_t>(node));
}

mac::Dcf& Network::macOf(topo::NodeId node) {
  return *macs_.at(static_cast<std::size_t>(node));
}

const topo::RoutingTree& Network::routeTo(topo::NodeId dest) const {
  const auto it = routes_.find(dest);
  MAXMIN_CHECK_MSG(it != routes_.end(), "no route computed to " << dest);
  return it->second;
}

std::vector<topo::NodeId> Network::pathOf(FlowId id) const {
  const FlowSpec& f = flow(id);
  return routeTo(f.dst).pathFrom(f.src);
}

int Network::hopCount(FlowId id) const {
  return static_cast<int>(pathOf(id).size()) - 1;
}

std::vector<topo::Link> Network::activeLinks() const {
  std::set<topo::Link> links;
  for (const FlowSpec& f : flows_) {
    const auto path = pathOf(f.id);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      links.insert(topo::Link{path[i], path[i + 1]});
    }
  }
  return {links.begin(), links.end()};
}

void Network::setRateLimit(FlowId id, std::optional<double> pps) {
  stack(flow(id).src).setRateLimit(id, pps);
}

std::optional<double> Network::rateLimit(FlowId id) const {
  const FlowSpec& f = flow(id);
  return stacks_.at(static_cast<std::size_t>(f.src))->rateLimit(id);
}

void Network::setSourceMu(FlowId id, double mu) {
  stack(flow(id).src).setSourceMu(id, mu);
}

std::int64_t Network::delivered(FlowId id) const { return delivered_.at(id); }

Network::DeliverySnapshot Network::snapshotDeliveries() const {
  return DeliverySnapshot{sim_.now(),
                          {delivered_.begin(), delivered_.end()}};
}

std::map<FlowId, double> Network::ratesBetween(const DeliverySnapshot& from,
                                               const DeliverySnapshot& to) {
  const double seconds = (to.at - from.at).asSeconds();
  MAXMIN_CHECK(seconds > 0.0);
  std::map<FlowId, double> rates;
  for (const auto& [id, count] : to.counts) {
    const auto it = from.counts.find(id);
    const std::int64_t before = it == from.counts.end() ? 0 : it->second;
    rates[id] = static_cast<double>(count - before) / seconds;
  }
  return rates;
}

std::int64_t Network::totalQueueDrops() const {
  std::int64_t total = 0;
  for (const auto& s : stacks_) total += s->dropsTail();
  return total;
}

std::int64_t Network::totalDeadNeighborDrops() const {
  std::int64_t total = 0;
  for (const auto& s : stacks_) total += s->dropsDeadNextHop();
  return total;
}

std::int64_t Network::totalCrashDrops() const {
  std::int64_t total = 0;
  for (const auto& s : stacks_) total += s->dropsAtCrash();
  return total;
}

NodePeriodMeasurement Network::closeMeasurementWindow(topo::NodeId node) {
  return stack(node).closeMeasurementWindow();
}

Duration Network::takeLinkOccupancy(topo::NodeId from, topo::NodeId to) {
  return macOf(from).takeOccupancy(to);
}

}  // namespace maxmin::net
