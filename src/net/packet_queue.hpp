// A bounded packet queue with full-time accounting.
//
// "Full" is the paper's buffer-state bit: no free slot. The queue tracks
// the fraction of time it spends full (Omega, §6.2 Measurement) via a
// BusyTimeAccumulator maintained on every mutation.
//
// Overflow policy is the caller's concern (it differs per protocol);
// pushFront/pushBack never refuse — the node stack checks full() first
// and applies its protocol's drop/hold rule.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"
#include "util/stats.hpp"

namespace maxmin::net {

class PacketQueue {
 public:
  PacketQueue(int capacity, TimePoint now);

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return packets_.size(); }
  [[nodiscard]] bool empty() const { return packets_.empty(); }

  /// No free slot. (Size can exceed capacity transiently when a packet was
  /// in flight while the last slot filled; it still reads as full.)
  [[nodiscard]] bool full() const { return static_cast<int>(size()) >= capacity_; }

  const PacketPtr& front() const { return packets_.front(); }

  void pushBack(PacketPtr p, TimePoint now);
  /// Reinsert at the head (MAC retry-failure re-offer).
  void pushFront(PacketPtr p, TimePoint now);
  PacketPtr popFront(TimePoint now);
  /// Replace the tail packet (802.11 baseline "overwrite at tail").
  void overwriteTail(PacketPtr p);

  /// Fraction of [windowStart, now] this queue was full.
  [[nodiscard]] double fullFraction(TimePoint windowStart, TimePoint now) const {
    return fullTime_.fraction(windowStart, now);
  }
  void beginWindow(TimePoint now) { fullTime_.beginWindow(now); }

  [[nodiscard]] std::int64_t maxSizeSeen() const { return maxSizeSeen_; }

 private:
  void noteState(TimePoint now);

  int capacity_;
  std::deque<PacketPtr> packets_;
  BusyTimeAccumulator fullTime_;
  std::int64_t maxSizeSeen_ = 0;
};

}  // namespace maxmin::net
