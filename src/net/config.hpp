// Network-layer configuration shared by all protocols under study.
//
// The three protocols of the paper's §7.2 map to:
//   * GMP:    kPerDestination + congestionAvoidance (+ the gmp::Engine)
//   * 2PP:    kPerFlow, no congestion avoidance (+ baselines::TwoPhase)
//   * 802.11: kSharedFifo drop-overwrite, no congestion avoidance
#pragma once

#include <cstdint>

#include "mac/params.hpp"
#include "phys/impairment.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace maxmin::net {

enum class QueueDiscipline {
  kPerDestination,  ///< one queue per served destination (GMP, §5.1)
  kPerFlow,         ///< one queue per passing flow (2PP [11])
  kSharedFifo,      ///< one queue for everything (plain 802.11)
};

const char* queueDisciplineName(QueueDiscipline d);

struct NetworkConfig {
  QueueDiscipline discipline = QueueDiscipline::kPerDestination;

  /// Capacity of each per-destination or per-flow queue (paper §7.2: 10).
  int queueCapacity = 10;

  /// Capacity of the single shared queue (paper §7: 300-packet buffer).
  int sharedBufferCapacity = 300;

  /// Hold packets for a next hop whose queue is advertised full (the
  /// congestion-avoidance scheme of [3], §2.2).
  bool congestionAvoidance = true;

  /// How long a cached "buffer full" advertisement blocks transmission
  /// before the sender stops waiting and tries anyway ("failed
  /// overhearing" recovery, §2.2).
  Duration holdStateTimeout = Duration::millis(60);

  DataSize packetSize = DataSize::bytes(1024);

  mac::MacParams mac;

  std::uint64_t seed = 1;

  /// Channel impairments (packet error rate / bursty loss); disabled by
  /// default. Drawn from a dedicated RNG stream, so enabling them does
  /// not perturb the MAC or source randomness of a seeded run.
  phys::ImpairmentConfig impairments;

  /// Spatial sharding (DESIGN.md §15). Zero runs the original serial
  /// event loop. K >= 1 partitions the topology into at most K
  /// cs-range-sided strips, gives each its own simulator + medium on a
  /// worker thread, and synchronizes them conservatively with
  /// lookahead = SIFS. Any K (including 1) produces bit-identical
  /// results to any other K; K = 0 differs only in end-of-run boundary
  /// semantics. Incompatible with channel impairments and in-band
  /// control dissemination (both share serial RNG/state across nodes).
  int shards = 0;

  /// Dead-neighbor detection: when positive, a next hop whose unicast
  /// transmissions have failed continuously for this long is declared
  /// dead; packets routed through it are dropped (and counted) instead
  /// of being requeued forever, and its cached buffer-state ads are
  /// flushed so backpressure cannot deadlock behind a crashed node. Any
  /// successful exchange with the neighbor clears the verdict. Zero
  /// (default) disables detection — the paper's protocols are lossless
  /// above the MAC, and routine MAC-level failure bursts must not drop
  /// packets in fault-free runs.
  Duration neighborDeadTtl = Duration::zero();
};

}  // namespace maxmin::net
