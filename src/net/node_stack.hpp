// Per-node network layer: queueing, congestion-avoidance backpressure,
// forwarding, local flow sources, and measurement.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mac/dcf.hpp"
#include "mac/frame_client.hpp"
#include "net/config.hpp"
#include "net/flow.hpp"
#include "net/measurement.hpp"
#include "net/packet_queue.hpp"
#include "sim/timer.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace maxmin::net {

/// Services the stack needs from the surrounding network. Implemented by
/// net::Network; a test double suffices for unit tests.
class NetContext {
 public:
  virtual ~NetContext() = default;
  virtual sim::Simulator& simulator() = 0;
  /// The simulator that hosts `node`'s events. Identical to simulator()
  /// except in sharded runs (DESIGN.md §15), where each node lives on its
  /// shard lane's simulator while simulator() is the serial control clock.
  virtual sim::Simulator& simulatorFor(topo::NodeId node) {
    (void)node;
    return simulator();
  }
  virtual const NetworkConfig& config() const = 0;
  /// Next hop from `from` toward `dest` (routing); kNoNode if none.
  virtual topo::NodeId nextHop(topo::NodeId from, topo::NodeId dest) = 0;
  /// An end-to-end delivery reached its destination at time `at` (the
  /// destination node's clock — its lane clock in sharded runs).
  virtual void recordDelivery(const Packet& packet, TimePoint at) = 0;
};

struct SourceCounters {
  std::int64_t generatedAttempts = 0;  ///< timer fires
  std::int64_t admitted = 0;           ///< packets that entered the queue
  std::int64_t blockedBySourceQueue = 0;
};

class NodeStack final : public mac::FrameClient {
 public:
  NodeStack(NetContext& ctx, topo::NodeId self, Rng rng);

  NodeStack(const NodeStack&) = delete;
  NodeStack& operator=(const NodeStack&) = delete;

  void attachMac(mac::Dcf* mac) { mac_ = mac; }
  topo::NodeId self() const { return self_; }

  // --- flow sources --------------------------------------------------------
  /// Register a flow whose source is this node and start generating at
  /// min(desiredRate, rate limit).
  void addLocalFlow(const FlowSpec& spec);

  /// Set/replace the self-imposed rate limit (GMP's control knob), or
  /// remove it with nullopt. Takes effect immediately.
  void setRateLimit(FlowId flow, std::optional<double> pps);
  std::optional<double> rateLimit(FlowId flow) const;

  /// Update the normalized rate the source stamps on new packets.
  void setSourceMu(FlowId flow, double mu);
  double sourceMu(FlowId flow) const;

  const SourceCounters& sourceCounters(FlowId flow) const;
  /// Ids of flows sourced here, sorted (the backing store is hashed).
  std::vector<FlowId> localFlows() const;

  // --- measurement (paper §6.2) ---------------------------------------------
  /// Close the current measurement window: returns everything measured
  /// since the last close and restarts all accumulators.
  NodePeriodMeasurement closeMeasurementWindow();

  /// Instantaneous saturation check used by tests.
  bool queueExistsFor(topo::NodeId dest) const;

  /// Inject an in-transit packet directly into the forwarding queue (the
  /// hybrid fast-forward backlog injection, DESIGN.md §16). Bypasses
  /// source admission — the packet is treated as already accepted
  /// upstream — and never overflows: seeding stops at capacity. The
  /// caller owns sequence-number consistency with the flow's source
  /// (seeded packets use negative sequence numbers so duplicate
  /// suppression at the sink stays monotone).
  void seedPacket(PacketPtr p);

  std::int64_t dropsTail() const { return dropsTail_; }
  std::int64_t duplicatesDropped() const { return duplicatesDropped_; }

  // --- fault handling --------------------------------------------------------
  /// Crash (`false`) or recover (`true`) this node's network layer. A
  /// crash loses all volatile state: queued packets (counted in
  /// dropsAtCrash), cached neighbor buffer states, neighbor-health
  /// verdicts, and the source generators stop. Recovery restarts the
  /// sources with empty queues. The MAC keeps running — the fault plane
  /// makes its transmissions silent — so timing invariants hold.
  void setOperational(bool up);
  bool operational() const { return operational_; }

  /// True when dead-neighbor detection has currently written off `nh`.
  bool neighborDead(topo::NodeId nh) const;

  /// Packets dropped because their next hop was declared dead.
  std::int64_t dropsDeadNextHop() const { return dropsDeadNextHop_; }
  /// Packets lost from queues when this node crashed.
  std::int64_t dropsAtCrash() const { return dropsAtCrash_; }

  /// Route decoded broadcast control frames to a control-plane module
  /// (e.g. gmp::LinkStateDissemination). At most one handler. Refused in
  /// sharded runs: handlers mutate cross-node state from receive events,
  /// which only the serial event loop can order.
  void setControlHandler(std::function<void(const phys::Frame&)> handler);

  // --- mac::FrameClient ------------------------------------------------------
  std::optional<mac::TxRequest> nextTxRequest() override;
  void onTxSuccess(const mac::TxRequest& request) override;
  void onTxFailure(const mac::TxRequest& request) override;
  void onDataReceived(const phys::Frame& frame) override;
  std::vector<phys::BufferStateAd> currentBufferState() override;
  void onFrameDecoded(const phys::Frame& frame) override;
  void onControlReceived(const phys::Frame& frame) override;

 private:
  struct SourceState {
    FlowSpec spec;
    std::optional<double> limitPps;
    double mu = 0.0;
    SourceCounters counters;
    std::int64_t seq = 0;
    std::unique_ptr<sim::Timer> timer;
  };

  /// Queue key: destination (per-destination), flow id (per-flow), or the
  /// shared sentinel.
  using QueueKey = std::int64_t;
  static constexpr QueueKey kSharedKey = -1;

  QueueKey keyFor(const Packet& p) const;
  PacketQueue& queueFor(QueueKey key);
  topo::NodeId destOf(QueueKey key, const PacketQueue& q) const;

  /// Per-virtual-link measurement accumulator. Hashed flowMu for the
  /// per-packet update; closeMeasurementWindow() converts to the sorted
  /// VirtualLinkSample report form.
  struct LinkAccumulator {
    int packets = 0;
    std::unordered_map<FlowId, double, IdHash> flowMu;
  };
  static VirtualLinkSample toSample(const LinkAccumulator& acc);

  void generate(SourceState& s);
  void scheduleNextGeneration(SourceState& s);
  double effectiveRate(const SourceState& s) const;
  void enqueue(PacketPtr p);

  /// Dead-neighbor bookkeeping (active only when neighborDeadTtl > 0).
  void noteNeighborFailure(topo::NodeId nh);
  void noteNeighborAlive(topo::NodeId nh);
  /// Drop every front packet of `q` whose next hop is dead; returns the
  /// number dropped.
  std::int64_t drainDeadFront(QueueKey key, PacketQueue& q);

  /// True when congestion avoidance currently forbids sending to
  /// `nextHopNode` for `dest`. Sets `expiry` to when the verdict lapses.
  bool heldByBackpressure(topo::NodeId nextHopNode, topo::NodeId dest,
                          TimePoint& expiry) const;
  void armHoldRetry(TimePoint earliestExpiry);

  TimePoint now() const;

  NetContext& ctx_;
  /// This node's event host: ctx.simulatorFor(self). Every timer and
  /// clock read goes through this, never ctx_.simulator(), so the stack
  /// runs unchanged on a shard lane.
  sim::Simulator& sim_;
  const topo::NodeId self_;
  Rng rng_;
  mac::Dcf* mac_ = nullptr;

  std::unordered_map<QueueKey, PacketQueue, IdHash> queues_;
  std::vector<QueueKey> serviceOrder_;  ///< round-robin ring
  std::size_t nextService_ = 0;

  std::unordered_map<FlowId, SourceState, IdHash> sources_;

  /// Cached piggybacked buffer state: (neighbor, dest) -> (full, heard at).
  struct CachedBufferState {
    bool full = false;
    TimePoint heard;
  };
  std::unordered_map<std::pair<topo::NodeId, topo::NodeId>, CachedBufferState,
                     IdPairHash>
      neighborBufferState_;

  /// Consecutive-failure tracking per next hop for dead-neighbor
  /// detection. `failingSince` is the start of the current unbroken
  /// failure run; `dead` latches once the run exceeds the TTL.
  struct NeighborHealth {
    TimePoint failingSince;
    bool failing = false;
    bool dead = false;
  };
  std::unordered_map<topo::NodeId, NeighborHealth, IdHash> neighborHealth_;

  bool operational_ = true;
  std::int64_t dropsDeadNextHop_ = 0;
  std::int64_t dropsAtCrash_ = 0;

  sim::Timer holdRetryTimer_;
  std::function<void(const phys::Frame&)> controlHandler_;

  // Measurement accumulators (reset per window). Hashed: these take a
  // per-forwarded-packet / per-received-packet update; the sorted report
  // form is built once per period in closeMeasurementWindow().
  TimePoint windowStart_;
  std::unordered_map<topo::NodeId, LinkAccumulator, IdHash> downSample_;
  std::unordered_map<std::pair<topo::NodeId, topo::NodeId>, LinkAccumulator,
                     IdPairHash>
      upSample_;
  std::unordered_map<FlowId, std::int64_t, IdHash> admittedInWindow_;

  std::int64_t dropsTail_ = 0;

  /// 802.11-style duplicate suppression: a lost ACK makes the sender
  /// retransmit a DATA frame the receiver already has. Per-flow delivery
  /// is in order (one path, FIFO queues), so a non-increasing sequence
  /// number identifies the duplicate.
  std::unordered_map<FlowId, std::int64_t, IdHash> lastSeqAccepted_;
  std::int64_t duplicatesDropped_ = 0;
};

}  // namespace maxmin::net
