#include "net/packet_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace maxmin::net {

PacketQueue::PacketQueue(int capacity, TimePoint now) : capacity_{capacity} {
  MAXMIN_CHECK(capacity > 0);
  fullTime_.beginWindow(now);
}

void PacketQueue::noteState(TimePoint now) {
  fullTime_.set(full(), now);
  maxSizeSeen_ = std::max(maxSizeSeen_, static_cast<std::int64_t>(size()));
}

void PacketQueue::pushBack(PacketPtr p, TimePoint now) {
  MAXMIN_CHECK(p != nullptr);
  packets_.push_back(std::move(p));
  noteState(now);
}

void PacketQueue::pushFront(PacketPtr p, TimePoint now) {
  MAXMIN_CHECK(p != nullptr);
  packets_.push_front(std::move(p));
  noteState(now);
}

PacketPtr PacketQueue::popFront(TimePoint now) {
  MAXMIN_CHECK(!packets_.empty());
  PacketPtr p = std::move(packets_.front());
  packets_.pop_front();
  noteState(now);
  return p;
}

void PacketQueue::overwriteTail(PacketPtr p) {
  MAXMIN_CHECK(!packets_.empty());
  packets_.back() = std::move(p);
}

}  // namespace maxmin::net
