// Network-layer data packet.
#pragma once

#include <cstdint>
#include <memory>

#include "topology/topology.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace maxmin::net {

using FlowId = int;
inline constexpr FlowId kNoFlow = -1;

struct Packet {
  FlowId flow = kNoFlow;
  topo::NodeId src = topo::kNoNode;
  topo::NodeId dst = topo::kNoNode;
  std::int64_t seq = 0;
  DataSize size = DataSize::bytes(1024);
  TimePoint created;

  /// Piggybacked normalized rate of the flow, mu(f) = r(f)/w(f), as
  /// measured at the source for the period in which this packet was
  /// generated (paper §4.2/§6.2). Links take the max over passing packets
  /// as the link's normalized rate, and the packets carrying that max
  /// identify the primary flows.
  double normalizedRate = 0.0;
};

using PacketPtr = std::shared_ptr<const Packet>;

}  // namespace maxmin::net
