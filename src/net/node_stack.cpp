#include "net/node_stack.hpp"

#include "obs/registry.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace maxmin::net {

const char* queueDisciplineName(QueueDiscipline d) {
  switch (d) {
    case QueueDiscipline::kPerDestination: return "per-destination";
    case QueueDiscipline::kPerFlow: return "per-flow";
    case QueueDiscipline::kSharedFifo: return "shared-fifo";
  }
  return "?";
}

void validateFlows(const std::vector<FlowSpec>& flows, int numNodes) {
  std::vector<FlowId> ids;
  for (const FlowSpec& f : flows) {
    MAXMIN_CHECK_MSG(f.id >= 0, "flow id must be non-negative");
    MAXMIN_CHECK_MSG(f.src >= 0 && f.src < numNodes, "bad flow source");
    MAXMIN_CHECK_MSG(f.dst >= 0 && f.dst < numNodes, "bad flow destination");
    MAXMIN_CHECK_MSG(f.src != f.dst, "flow source equals destination");
    MAXMIN_CHECK_MSG(f.weight > 0.0, "flow weight must be positive");
    MAXMIN_CHECK_MSG(f.desiredRate.asPerSecond() > 0.0,
                     "flow desired rate must be positive");
    ids.push_back(f.id);
  }
  std::sort(ids.begin(), ids.end());
  MAXMIN_CHECK_MSG(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
                   "duplicate flow ids");
}

NodeStack::NodeStack(NetContext& ctx, topo::NodeId self, Rng rng)
    : ctx_{ctx},
      sim_{ctx.simulatorFor(self)},
      self_{self},
      rng_{rng},
      holdRetryTimer_{sim_},
      windowStart_{sim_.now()} {}

TimePoint NodeStack::now() const { return sim_.now(); }

// ---------------------------------------------------------------------------
// Queues
// ---------------------------------------------------------------------------

NodeStack::QueueKey NodeStack::keyFor(const Packet& p) const {
  switch (ctx_.config().discipline) {
    case QueueDiscipline::kPerDestination: return p.dst;
    case QueueDiscipline::kPerFlow: return p.flow;
    case QueueDiscipline::kSharedFifo: return kSharedKey;
  }
  return kSharedKey;
}

PacketQueue& NodeStack::queueFor(QueueKey key) {
  auto it = queues_.find(key);
  if (it == queues_.end()) {
    const int capacity = key == kSharedKey
                             ? ctx_.config().sharedBufferCapacity
                             : ctx_.config().queueCapacity;
    it = queues_.emplace(key, PacketQueue{capacity, now()}).first;
    serviceOrder_.push_back(key);
  }
  return it->second;
}

topo::NodeId NodeStack::destOf(QueueKey key, const PacketQueue& q) const {
  if (ctx_.config().discipline == QueueDiscipline::kPerDestination) {
    return static_cast<topo::NodeId>(key);
  }
  MAXMIN_CHECK(!q.empty());
  return q.front()->dst;
}

bool NodeStack::queueExistsFor(topo::NodeId dest) const {
  return queues_.contains(static_cast<QueueKey>(dest));
}

void NodeStack::enqueue(PacketPtr p) {
  const QueueKey key = keyFor(*p);
  PacketQueue& q = queueFor(key);
  MAXMIN_HIST("net.queue_occupancy", static_cast<std::int64_t>(q.size()));
  if (q.full()) {
    switch (ctx_.config().discipline) {
      case QueueDiscipline::kPerDestination:
        // Congestion avoidance should have held the sender; a transient
        // overshoot happens only for packets already in flight when the
        // last slot filled. Accept (soft limit) — the paper's scheme is
        // lossless.
        q.pushBack(std::move(p), now());
        break;
      case QueueDiscipline::kPerFlow:
        ++dropsTail_;  // drop-tail on the arriving packet
        MAXMIN_COUNT("net.drops_tail", 1);
        return;
      case QueueDiscipline::kSharedFifo:
        ++dropsTail_;  // "overwrite the packet at the tail of the queue"
        MAXMIN_COUNT("net.drops_tail", 1);
        q.overwriteTail(std::move(p));
        return;
    }
  } else {
    q.pushBack(std::move(p), now());
  }
  if (mac_ != nullptr) mac_->notifyTrafficPending();
}

void NodeStack::seedPacket(PacketPtr p) {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  MAXMIN_CHECK(operational_);
  MAXMIN_CHECK(p != nullptr);
  PacketQueue& q = queueFor(keyFor(*p));
  if (q.full()) return;
  q.pushBack(std::move(p), now());
  if (mac_ != nullptr) mac_->notifyTrafficPending();
}

// ---------------------------------------------------------------------------
// Flow sources
// ---------------------------------------------------------------------------

void NodeStack::addLocalFlow(const FlowSpec& spec) {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  MAXMIN_CHECK_MSG(spec.src == self_, "flow source is a different node");
  MAXMIN_CHECK(!sources_.contains(spec.id));
  auto [it, inserted] = sources_.emplace(spec.id, SourceState{});
  MAXMIN_CHECK(inserted);
  SourceState& s = it->second;
  s.spec = spec;
  s.timer = std::make_unique<sim::Timer>(sim_);
  scheduleNextGeneration(s);
}

double NodeStack::effectiveRate(const SourceState& s) const {
  const double desired = s.spec.desiredRate.asPerSecond();
  return s.limitPps ? std::min(desired, *s.limitPps) : desired;
}

void NodeStack::scheduleNextGeneration(SourceState& s) {
  if (!operational_) return;  // crashed: sources restart on recovery
  const double rate = effectiveRate(s);
  MAXMIN_CHECK(rate > 0.0);
  // +/-10% jitter decorrelates sources that share a rate, as real traffic
  // generators would; without it, synchronized arrivals beat against the
  // MAC in lockstep and create artificial phase effects.
  const double seconds = (1.0 / rate) * rng_.uniformReal(0.9, 1.1);
  s.timer->arm(Duration::seconds(seconds), [this, flow = s.spec.id] {
    auto it = sources_.find(flow);
    MAXMIN_CHECK(it != sources_.end());
    generate(it->second);
  });
}

void NodeStack::generate(SourceState& s) {
  ++s.counters.generatedAttempts;
  auto probe = Packet{};
  probe.flow = s.spec.id;
  probe.dst = s.spec.dst;
  PacketQueue& q = queueFor(keyFor(probe));
  // The source is subject to its own buffer: when the local queue is
  // full it slows down (paper §2.1: "the flow source will generate new
  // packets at a smaller rate if the network cannot deliver its desirable
  // rate") and the would-be packet is simply not generated. Under the
  // congestion-avoidance scheme this is the backpressure endpoint of
  // §2.2; under the baselines it models the same source adaptation (an
  // ungated 800 pkt/s source into a tail-overwrite buffer would
  // degenerately erase all relayed traffic).
  if (q.full()) {
    ++s.counters.blockedBySourceQueue;
  } else {
    auto p = std::make_shared<Packet>();
    p->flow = s.spec.id;
    p->src = self_;
    p->dst = s.spec.dst;
    p->seq = s.seq++;
    p->size = ctx_.config().packetSize;
    p->created = now();
    p->normalizedRate = s.mu;
    ++s.counters.admitted;
    ++admittedInWindow_[s.spec.id];
    enqueue(std::move(p));
  }
  scheduleNextGeneration(s);
}

void NodeStack::setRateLimit(FlowId flow, std::optional<double> pps) {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  auto it = sources_.find(flow);
  MAXMIN_CHECK_MSG(it != sources_.end(), "no local flow " << flow);
  if (pps) MAXMIN_CHECK(*pps > 0.0);
  it->second.limitPps = pps;
  // Re-arm so a large reduction takes effect now, not after the previously
  // scheduled (possibly much earlier) tick.
  scheduleNextGeneration(it->second);
}

std::optional<double> NodeStack::rateLimit(FlowId flow) const {
  const auto it = sources_.find(flow);
  MAXMIN_CHECK(it != sources_.end());
  return it->second.limitPps;
}

void NodeStack::setSourceMu(FlowId flow, double mu) {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  auto it = sources_.find(flow);
  MAXMIN_CHECK(it != sources_.end());
  it->second.mu = mu;
}

double NodeStack::sourceMu(FlowId flow) const {
  const auto it = sources_.find(flow);
  MAXMIN_CHECK(it != sources_.end());
  return it->second.mu;
}

const SourceCounters& NodeStack::sourceCounters(FlowId flow) const {
  const auto it = sources_.find(flow);
  MAXMIN_CHECK(it != sources_.end());
  return it->second.counters;
}

std::vector<FlowId> NodeStack::localFlows() const {
  std::vector<FlowId> ids;
  ids.reserve(sources_.size());
  for (const auto& [id, s] : sources_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// ---------------------------------------------------------------------------
// Fault handling
// ---------------------------------------------------------------------------

void NodeStack::setOperational(bool up) {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  if (operational_ == up) return;
  operational_ = up;
  if (!up) {
    // A crash loses everything held in RAM: queued packets, cached
    // neighbor state, health verdicts, in-window measurements. The
    // queues themselves stay registered (their identity is config, not
    // state) but are emptied, which also releases any backpressure this
    // node's "full" advertisements were about to justify.
    for (auto& [key, q] : queues_) {
      dropsAtCrash_ += static_cast<std::int64_t>(q.size());
      MAXMIN_COUNT("net.drops_at_crash", static_cast<std::int64_t>(q.size()));
      while (!q.empty()) q.popFront(now());
    }
    for (auto& [id, s] : sources_) s.timer->cancel();
    holdRetryTimer_.cancel();
    neighborBufferState_.clear();
    neighborHealth_.clear();
    downSample_.clear();
    upSample_.clear();
    admittedInWindow_.clear();
  } else {
    // Everything accumulated before the crash was lost with it, so the
    // measurement window restarts here: rates must be averaged over the
    // node's live time only, not the span that includes the outage. A
    // recovery landing exactly on a period boundary therefore yields a
    // zero-length window, which closeMeasurementWindow reports as
    // periodSeconds == 0 for the control plane to bridge.
    windowStart_ = now();
    for (auto& [key, q] : queues_) q.beginWindow(now());
    // Sorted flow order: each restart draws jitter from rng_, so the
    // iteration order is part of the deterministic replay.
    for (const FlowId id : localFlows()) {
      scheduleNextGeneration(sources_.at(id));
    }
    if (mac_ != nullptr) mac_->notifyTrafficPending();
  }
}

bool NodeStack::neighborDead(topo::NodeId nh) const {
  const auto it = neighborHealth_.find(nh);
  return it != neighborHealth_.end() && it->second.dead;
}

void NodeStack::noteNeighborFailure(topo::NodeId nh) {
  NeighborHealth& h = neighborHealth_[nh];
  if (!h.failing) {
    h.failing = true;
    h.failingSince = now();
    return;
  }
  if (!h.dead && now() - h.failingSince >= ctx_.config().neighborDeadTtl) {
    h.dead = true;
    // Stale "buffer full" advertisements from a dead neighbor must not
    // keep holding backpressure; age them out immediately.
    for (auto it = neighborBufferState_.begin();
         it != neighborBufferState_.end();) {
      it = it->first.first == nh ? neighborBufferState_.erase(it)
                                 : std::next(it);
    }
  }
}

void NodeStack::noteNeighborAlive(topo::NodeId nh) {
  const auto it = neighborHealth_.find(nh);
  if (it == neighborHealth_.end()) return;
  const bool wasDead = it->second.dead;
  neighborHealth_.erase(it);
  // A resurrected next hop unblocks queues that were draining to drops.
  if (wasDead && mac_ != nullptr) mac_->notifyTrafficPending();
}

std::int64_t NodeStack::drainDeadFront(QueueKey key, PacketQueue& q) {
  std::int64_t dropped = 0;
  while (!q.empty()) {
    const topo::NodeId dest = destOf(key, q);
    const topo::NodeId nh = ctx_.nextHop(self_, dest);
    if (nh == topo::kNoNode || !neighborDead(nh)) break;
    q.popFront(now());
    ++dropped;
  }
  return dropped;
}

// ---------------------------------------------------------------------------
// Backpressure (congestion avoidance of [3])
// ---------------------------------------------------------------------------

bool NodeStack::heldByBackpressure(topo::NodeId nextHopNode,
                                   topo::NodeId dest,
                                   TimePoint& expiry) const {
  const auto it = neighborBufferState_.find({nextHopNode, dest});
  if (it == neighborBufferState_.end() || !it->second.full) return false;
  const TimePoint lapse = it->second.heard + ctx_.config().holdStateTimeout;
  if (now() >= lapse) return false;  // stale advertisement: try anyway
  expiry = lapse;
  return true;
}

void NodeStack::armHoldRetry(TimePoint earliestExpiry) {
  const Duration wait =
      std::max(earliestExpiry - now(), Duration::micros(1));
  holdRetryTimer_.arm(wait, [this] {
    if (mac_ != nullptr) mac_->notifyTrafficPending();
  });
}

// ---------------------------------------------------------------------------
// mac::FrameClient
// ---------------------------------------------------------------------------

std::optional<mac::TxRequest> NodeStack::nextTxRequest() {
  if (!operational_ || serviceOrder_.empty()) return std::nullopt;
  const std::size_t n = serviceOrder_.size();
  bool anyHeld = false;
  TimePoint earliestExpiry = TimePoint::max();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = (nextService_ + step) % n;
    const QueueKey key = serviceOrder_[idx];
    PacketQueue& q = queues_.at(key);
    if (q.empty()) continue;
    if (!neighborHealth_.empty()) {
      // Dead-neighbor liveness: packets routed through a written-off
      // next hop drain to drops here rather than wedging the queue (and
      // everything upstream of it) forever.
      {
        const std::int64_t drained = drainDeadFront(key, q);
        dropsDeadNextHop_ += drained;
        if (drained > 0) MAXMIN_COUNT("net.drops_dead_next_hop", drained);
      }
      if (q.empty()) continue;
    }
    const topo::NodeId dest = destOf(key, q);
    const topo::NodeId nh = ctx_.nextHop(self_, dest);
    MAXMIN_CHECK_MSG(nh != topo::kNoNode,
                     "no route from " << self_ << " to " << dest);
    if (ctx_.config().congestionAvoidance) {
      // The advertised buffer-state key: the destination for per-
      // destination queueing, the shared sentinel otherwise.
      const topo::NodeId bpKey =
          ctx_.config().discipline == QueueDiscipline::kPerDestination
              ? dest
              : topo::kNoNode;
      TimePoint expiry;
      if (heldByBackpressure(nh, bpKey, expiry)) {
        MAXMIN_COUNT("net.backpressure_stalls", 1);
        anyHeld = true;
        earliestExpiry = std::min(earliestExpiry, expiry);
        continue;
      }
    }
    nextService_ = (idx + 1) % n;
    PacketPtr p = q.popFront(now());
    return mac::TxRequest{nh, p, p->size};
  }
  if (anyHeld) armHoldRetry(earliestExpiry);
  return std::nullopt;
}

void NodeStack::onTxSuccess(const mac::TxRequest& request) {
  if (!neighborHealth_.empty()) noteNeighborAlive(request.nextHop);
  LinkAccumulator& s = downSample_[request.packet->dst];
  ++s.packets;
  double& mu = s.flowMu[request.packet->flow];
  mu = std::max(mu, request.packet->normalizedRate);
  (void)request;
}

void NodeStack::onTxFailure(const mac::TxRequest& request) {
  if (!operational_) return;  // crashed mid-exchange: queues are gone
  if (ctx_.config().neighborDeadTtl > Duration::zero()) {
    noteNeighborFailure(request.nextHop);
    if (neighborDead(request.nextHop)) {
      // The next hop has been unreachable past the TTL: report a drop
      // instead of requeueing into a guaranteed retry loop. The MAC is
      // freed to serve other queues immediately.
      ++dropsDeadNextHop_;
      MAXMIN_COUNT("net.drops_dead_next_hop", 1);
      if (mac_ != nullptr) mac_->notifyTrafficPending();
      return;
    }
  }
  // Keep the packet: the paper's protocols are lossless above the MAC.
  // Re-offer it at the head of its queue; the MAC will retry with a fresh
  // contention round.
  queueFor(keyFor(*request.packet)).pushFront(request.packet, now());
  if (mac_ != nullptr) mac_->notifyTrafficPending();
}

void NodeStack::onDataReceived(const phys::Frame& frame) {
  MAXMIN_CHECK(frame.packet != nullptr);
  const Packet& p = *frame.packet;
  // Duplicate suppression (the MAC still ACKed the retransmission).
  if (auto it = lastSeqAccepted_.find(p.flow);
      it != lastSeqAccepted_.end() && p.seq <= it->second) {
    ++duplicatesDropped_;
    return;
  }
  lastSeqAccepted_[p.flow] = p.seq;
  LinkAccumulator& s = upSample_[{frame.transmitter, p.dst}];
  ++s.packets;
  double& mu = s.flowMu[p.flow];
  mu = std::max(mu, p.normalizedRate);
  if (p.dst == self_) {
    ctx_.recordDelivery(p, now());
  } else {
    enqueue(frame.packet);
  }
}

std::vector<phys::BufferStateAd> NodeStack::currentBufferState() {
  std::vector<phys::BufferStateAd> ads;
  switch (ctx_.config().discipline) {
    case QueueDiscipline::kPerDestination:
      ads.reserve(queues_.size());
      for (const auto& [key, q] : queues_) {
        ads.push_back(
            phys::BufferStateAd{static_cast<topo::NodeId>(key), q.full()});
      }
      // Destination order: the ads ride on every frame, so their order is
      // part of the deterministic replay (the store is hashed).
      std::sort(ads.begin(), ads.end(),
                [](const phys::BufferStateAd& a, const phys::BufferStateAd& b) {
                  return a.destination < b.destination;
                });
      break;
    case QueueDiscipline::kSharedFifo:
      // One buffer for everything (Fig. 1(b) mode): a single state bit,
      // keyed by the "any destination" sentinel.
      if (const auto it = queues_.find(kSharedKey); it != queues_.end()) {
        ads.push_back(phys::BufferStateAd{topo::kNoNode, it->second.full()});
      }
      break;
    case QueueDiscipline::kPerFlow:
      break;  // 2PP does not use the congestion-avoidance scheme
  }
  return ads;
}

void NodeStack::setControlHandler(
    std::function<void(const phys::Frame&)> handler) {
  MAXMIN_CHECK_MSG(ctx_.config().shards == 0,
                   "in-band control handlers mutate cross-node state from "
                   "receive events and cannot run sharded");
  controlHandler_ = std::move(handler);
}

void NodeStack::onControlReceived(const phys::Frame& frame) {
  if (controlHandler_) controlHandler_(frame);
}

void NodeStack::onFrameDecoded(const phys::Frame& frame) {
  // Decoding anything from a neighbor proves it is alive again.
  if (!neighborHealth_.empty()) noteNeighborAlive(frame.transmitter);
  if (frame.bufferState.empty()) return;
  bool anyCleared = false;
  for (const phys::BufferStateAd& ad : frame.bufferState) {
    auto& entry = neighborBufferState_[{frame.transmitter, ad.destination}];
    if (entry.full && !ad.full) anyCleared = true;
    entry.full = ad.full;
    entry.heard = now();
  }
  if (anyCleared && mac_ != nullptr) mac_->notifyTrafficPending();
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

VirtualLinkSample NodeStack::toSample(const LinkAccumulator& acc) {
  VirtualLinkSample s;
  s.packets = acc.packets;
  s.flowMu.insert(acc.flowMu.begin(), acc.flowMu.end());
  return s;
}

NodePeriodMeasurement NodeStack::closeMeasurementWindow() {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  NodePeriodMeasurement m;
  m.node = self_;
  const TimePoint end = now();
  m.periodSeconds = (end - windowStart_).asSeconds();
  MAXMIN_CHECK(m.periodSeconds >= 0.0);
  if (m.periodSeconds <= 0.0) {
    // Recovery landed exactly on the period boundary: there was no live
    // time to measure. Hand back an explicitly empty window (rates are
    // undefined, not zero) and let the controller's staleness machinery
    // bridge or mark this node.
    downSample_.clear();
    upSample_.clear();
    admittedInWindow_.clear();
    return m;
  }

  if (ctx_.config().discipline == QueueDiscipline::kPerDestination) {
    for (auto& [key, q] : queues_) {
      m.queueFullFraction[static_cast<topo::NodeId>(key)] =
          q.fullFraction(windowStart_, end);
      q.beginWindow(end);
    }
  }
  // Convert the hashed accumulators into the sorted report form the
  // control plane consumes (its iteration order feeds the deterministic
  // GMP computation). Once per period, so the n log n is off the per-
  // packet path.
  for (const auto& [dest, acc] : downSample_) {
    m.downstream.emplace(dest, toSample(acc));
  }
  for (const auto& [key, acc] : upSample_) {
    m.upstream.emplace(key, toSample(acc));
  }
  downSample_.clear();
  upSample_.clear();
  for (auto& [flow, count] : admittedInWindow_) {
    m.localFlowRate[flow] = static_cast<double>(count) / m.periodSeconds;
  }
  admittedInWindow_.clear();
  windowStart_ = end;
  return m;
}

}  // namespace maxmin::net
