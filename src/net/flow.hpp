// End-to-end flow specification.
#pragma once

#include <string>
#include <vector>

#include "net/packet.hpp"
#include "topology/topology.hpp"
#include "util/units.hpp"

namespace maxmin::net {

struct FlowSpec {
  FlowId id = kNoFlow;
  topo::NodeId src = topo::kNoNode;
  topo::NodeId dst = topo::kNoNode;
  double weight = 1.0;
  /// Desirable rate d(f): the source never generates faster than this.
  PacketRate desiredRate = PacketRate::perSecond(800.0);
  std::string name;  ///< label for tables ("f1", "<0,3>", ...)
};

/// Validate a flow set: unique ids, positive weights, src != dst.
void validateFlows(const std::vector<FlowSpec>& flows, int numNodes);

}  // namespace maxmin::net
