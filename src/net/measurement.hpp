// Per-period measurement records a node reports (paper §6.2, Step 1).
//
// These are strictly locally measurable quantities: the node's own queue
// full-fractions, the packets it forwarded on its downstream virtual
// links, the packets it received on upstream virtual links, and its local
// flows' admitted rates.
//
// Sorted report types by design: the GMP control plane iterates these
// maps when it rebuilds virtual-link state, and that iteration order
// feeds the deterministic maxmin computation. Nodes accumulate into
// hashed maps on the packet path (NodeStack::LinkAccumulator) and convert
// here once per period.
// maxmin-lint: allow-file(hot-map) sorted report/wire format, built once per period
#pragma once

#include <map>
#include <utility>

#include "net/packet.hpp"
#include "topology/topology.hpp"

namespace maxmin::net {

/// Traffic seen on one virtual link during a period.
struct VirtualLinkSample {
  int packets = 0;
  /// Per flow, the largest piggybacked normalized rate observed.
  std::map<FlowId, double> flowMu;
};

struct NodePeriodMeasurement {
  topo::NodeId node = topo::kNoNode;

  /// Omega per served destination: fraction of the period the queue for
  /// that destination was full.
  std::map<topo::NodeId, double> queueFullFraction;

  /// Downstream virtual links, keyed by destination (next hop is implied
  /// by routing). Counted at link-layer success (ACK received).
  std::map<topo::NodeId, VirtualLinkSample> downstream;

  /// Upstream virtual links, keyed by (upstream neighbor, destination).
  /// Counted at DATA reception.
  std::map<std::pair<topo::NodeId, topo::NodeId>, VirtualLinkSample> upstream;

  /// Local flows: admitted packet rate (pkts/s) over the period. This is
  /// r(f) measured at the source.
  std::map<FlowId, double> localFlowRate;

  double periodSeconds = 0.0;
};

}  // namespace maxmin::net
