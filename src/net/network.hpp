// Assembles a complete simulated network: topology, medium, one 802.11
// MAC and one network stack per node, static routing, and the end-to-end
// flows. This is the substrate all three protocols (GMP / 2PP / 802.11)
// run on; they differ only in NetworkConfig and in the controller driving
// source rate limits.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mac/dcf.hpp"
#include "net/config.hpp"
#include "net/flow.hpp"
#include "net/node_stack.hpp"
#include "phys/impairment.hpp"
#include "phys/medium.hpp"
#include "sim/fault_plane.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "topology/link.hpp"
#include "topology/shard_map.hpp"
#include "util/hash.hpp"
#include "util/stats.hpp"
#include "topology/routing.hpp"
#include "topology/topology.hpp"

namespace maxmin::net {

class Network final : public NetContext, public sim::FaultListener {
 public:
  Network(topo::Topology topology, NetworkConfig config,
          std::vector<FlowSpec> flows);
  ~Network() override;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- NetContext ----------------------------------------------------------
  /// The control-plane simulator. In a sharded run this clock only hosts
  /// serial subsystems (controller, fault plane); node events live on the
  /// lane simulators returned by simulatorFor().
  sim::Simulator& simulator() override { return sim_; }
  sim::Simulator& simulatorFor(topo::NodeId node) override;
  const NetworkConfig& config() const override { return config_; }
  topo::NodeId nextHop(topo::NodeId from, topo::NodeId dest) override;
  void recordDelivery(const Packet& packet, TimePoint at) override;

  // --- structure -----------------------------------------------------------
  const topo::Topology& topology() const { return topo_; }
  const std::vector<FlowSpec>& flows() const { return flows_; }
  const FlowSpec& flow(FlowId id) const;
  NodeStack& stack(topo::NodeId node);
  mac::Dcf& macOf(topo::NodeId node);
  /// The single shared medium of an unsharded run. Sharded runs have one
  /// medium per lane; use the frames*() aggregates instead.
  phys::Medium& medium() { return medium_; }
  const topo::RoutingTree& routeTo(topo::NodeId dest) const;

  // --- spatial sharding (DESIGN.md §15) -------------------------------------
  [[nodiscard]] bool sharded() const { return !lanes_.empty(); }
  /// Effective worker count: min(config.shards, strip columns available).
  [[nodiscard]] int shardCount() const {
    return sharded() ? plan_.numShards : 0;
  }
  [[nodiscard]] const topo::ShardPlan& shardPlan() const { return plan_; }
  /// Per-lane event diagnostics (sharded runs only).
  [[nodiscard]] std::uint64_t laneLocalEvents(int lane) const;
  [[nodiscard]] std::uint64_t laneImportedEvents(int lane) const;
  [[nodiscard]] std::uint64_t laneExportedEvents(int lane) const;

  /// Medium counters summed across lanes (== medium().counters when
  /// unsharded). These are what experiments and reports should read.
  [[nodiscard]] std::uint64_t framesDelivered() const;
  [[nodiscard]] std::uint64_t framesCorrupted() const;
  [[nodiscard]] std::uint64_t framesImpaired() const;
  [[nodiscard]] std::uint64_t framesSuppressed() const;

  /// The flow's full routing path, source to destination inclusive.
  std::vector<topo::NodeId> pathOf(FlowId id) const;
  int hopCount(FlowId id) const;

  /// All directed wireless links used by at least one flow, sorted.
  std::vector<topo::Link> activeLinks() const;

  // --- execution -------------------------------------------------------------
  /// Advance the whole network by `d`. Unsharded: one serial event loop.
  /// Sharded: alternates parallel lane windows (bounded by the next
  /// control-plane event) with serial control barriers.
  void run(Duration d);
  TimePoint now() const { return sim_.now(); }

  // --- fault injection --------------------------------------------------------
  /// Enable fault injection from `script`. Call at most once, before
  /// run(). The network subscribes to crash/recover transitions (to
  /// flush the crashed stack's volatile state) and gates the medium.
  /// Stochastic churn draws from the dedicated "faults" RNG stream, so a
  /// scripted schedule leaves all other randomness untouched.
  sim::FaultPlane& enableFaults(const sim::FaultScript& script);
  sim::FaultPlane* faultPlane() { return faultPlane_.get(); }
  const sim::FaultPlane* faultPlane() const { return faultPlane_.get(); }
  phys::ChannelImpairments* impairments() {
    return impairments_ ? &*impairments_ : nullptr;
  }

  // --- sim::FaultListener -----------------------------------------------------
  void onNodeDown(std::int32_t node) override;
  void onNodeUp(std::int32_t node) override;

  // --- rate control (the GMP knob) -------------------------------------------
  void setRateLimit(FlowId id, std::optional<double> pps);
  std::optional<double> rateLimit(FlowId id) const;
  void setSourceMu(FlowId id, double mu);

  // --- end-to-end statistics ---------------------------------------------------
  std::int64_t delivered(FlowId id) const;

  /// End-to-end latency statistics (generation to sink) per flow.
  const RunningStats& latencyStats(FlowId id) const;

  struct DeliverySnapshot {
    TimePoint at;
    /// Sorted report type: snapshots are diffed and printed in flow order.
    // maxmin-lint: allow(hot-map) report type, copied once per snapshot
    std::map<FlowId, std::int64_t> counts;
  };
  DeliverySnapshot snapshotDeliveries() const;

  /// Per-flow delivered packet rate (pkts/s) between two snapshots.
  /// Sorted so tables/CSVs iterate in flow order.
  // maxmin-lint: allow(hot-map) report type, built once per interval
  static std::map<FlowId, double> ratesBetween(const DeliverySnapshot& from,
                                               const DeliverySnapshot& to);

  /// Total packets dropped at network queues (802.11 overwrite / 2PP tail
  /// drops; zero for the lossless per-destination scheme).
  std::int64_t totalQueueDrops() const;

  /// Packets dropped because a next hop was declared dead (fault runs).
  std::int64_t totalDeadNeighborDrops() const;
  /// Packets lost from queues at node crashes (fault runs).
  std::int64_t totalCrashDrops() const;

  // --- measurement plumbing for the GMP driver ---------------------------------
  NodePeriodMeasurement closeMeasurementWindow(topo::NodeId node);
  Duration takeLinkOccupancy(topo::NodeId from, topo::NodeId to);

 private:
  /// A cut transmission crossing a strip boundary: the frame plus the
  /// exporting lane's canonical finish key, replayed verbatim by the
  /// importing lane so deliveries land in the global event order.
  struct BoundaryTx {
    phys::Frame frame;
    sim::EventKey finish;
  };

  /// One shard lane: its own simulator and full-topology medium
  /// restricted (via Medium::bindShard) to the lane's node strip.
  struct ShardLane {
    sim::Simulator sim;
    phys::Medium medium;
    std::vector<std::uint8_t> owned;  ///< per node: 1 = this lane's
    explicit ShardLane(const topo::Topology& topo) : medium{sim, topo} {}
  };

  void setupShards();
  /// Medium export hook for lane `lane`. Windowed exports ride the SPSC
  /// channels; serial-phase (control barrier) transmissions are applied
  /// to the adjacent lanes synchronously, in control-call order.
  void onExport(int lane, const phys::Frame& frame, sim::EventKey start,
                sim::EventKey finish);
  void publishShardCounters();

  sim::Simulator sim_;
  topo::Topology topo_;
  NetworkConfig config_;
  std::vector<FlowSpec> flows_;
  phys::Medium medium_;
  std::optional<phys::ChannelImpairments> impairments_;
  std::unique_ptr<sim::FaultPlane> faultPlane_;
  topo::ShardPlan plan_;
  std::vector<std::unique_ptr<ShardLane>> lanes_;
  std::unique_ptr<sim::ShardedRuntime<BoundaryTx>> runtime_;
  /// True while lane workers run a window (set/cleared around the spawn/
  /// join in run(), so workers observe it without synchronization).
  bool inWindow_ = false;
  std::uint64_t publishedLaneEvents_ = 0;
  std::uint64_t publishedLaneImports_ = 0;
  std::vector<std::unique_ptr<NodeStack>> stacks_;
  std::vector<std::unique_ptr<mac::Dcf>> macs_;
  // Hashed: nextHop() runs per forwarded packet, recordDelivery() per
  // delivered packet. Report forms (DeliverySnapshot, ratesBetween) sort.
  std::unordered_map<topo::NodeId, topo::RoutingTree, IdHash> routes_;
  std::unordered_map<FlowId, std::int64_t, IdHash> delivered_;
  std::unordered_map<FlowId, RunningStats, IdHash> latencySeconds_;
};

}  // namespace maxmin::net
