// Assembles a complete simulated network: topology, medium, one 802.11
// MAC and one network stack per node, static routing, and the end-to-end
// flows. This is the substrate all three protocols (GMP / 2PP / 802.11)
// run on; they differ only in NetworkConfig and in the controller driving
// source rate limits.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mac/dcf.hpp"
#include "net/config.hpp"
#include "net/flow.hpp"
#include "net/node_stack.hpp"
#include "phys/impairment.hpp"
#include "phys/medium.hpp"
#include "sim/fault_plane.hpp"
#include "sim/simulator.hpp"
#include "topology/link.hpp"
#include "util/hash.hpp"
#include "util/stats.hpp"
#include "topology/routing.hpp"
#include "topology/topology.hpp"

namespace maxmin::net {

class Network final : public NetContext, public sim::FaultListener {
 public:
  Network(topo::Topology topology, NetworkConfig config,
          std::vector<FlowSpec> flows);
  ~Network() override;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- NetContext ----------------------------------------------------------
  sim::Simulator& simulator() override { return sim_; }
  const NetworkConfig& config() const override { return config_; }
  topo::NodeId nextHop(topo::NodeId from, topo::NodeId dest) override;
  void recordDelivery(const Packet& packet) override;

  // --- structure -----------------------------------------------------------
  const topo::Topology& topology() const { return topo_; }
  const std::vector<FlowSpec>& flows() const { return flows_; }
  const FlowSpec& flow(FlowId id) const;
  NodeStack& stack(topo::NodeId node);
  mac::Dcf& macOf(topo::NodeId node);
  phys::Medium& medium() { return medium_; }
  const topo::RoutingTree& routeTo(topo::NodeId dest) const;

  /// The flow's full routing path, source to destination inclusive.
  std::vector<topo::NodeId> pathOf(FlowId id) const;
  int hopCount(FlowId id) const;

  /// All directed wireless links used by at least one flow, sorted.
  std::vector<topo::Link> activeLinks() const;

  // --- execution -------------------------------------------------------------
  void run(Duration d) { sim_.runUntil(sim_.now() + d); }
  TimePoint now() const { return sim_.now(); }

  // --- fault injection --------------------------------------------------------
  /// Enable fault injection from `script`. Call at most once, before
  /// run(). The network subscribes to crash/recover transitions (to
  /// flush the crashed stack's volatile state) and gates the medium.
  /// Stochastic churn draws from the dedicated "faults" RNG stream, so a
  /// scripted schedule leaves all other randomness untouched.
  sim::FaultPlane& enableFaults(const sim::FaultScript& script);
  sim::FaultPlane* faultPlane() { return faultPlane_.get(); }
  const sim::FaultPlane* faultPlane() const { return faultPlane_.get(); }
  phys::ChannelImpairments* impairments() {
    return impairments_ ? &*impairments_ : nullptr;
  }

  // --- sim::FaultListener -----------------------------------------------------
  void onNodeDown(std::int32_t node) override;
  void onNodeUp(std::int32_t node) override;

  // --- rate control (the GMP knob) -------------------------------------------
  void setRateLimit(FlowId id, std::optional<double> pps);
  std::optional<double> rateLimit(FlowId id) const;
  void setSourceMu(FlowId id, double mu);

  // --- end-to-end statistics ---------------------------------------------------
  std::int64_t delivered(FlowId id) const;

  /// End-to-end latency statistics (generation to sink) per flow.
  const RunningStats& latencyStats(FlowId id) const;

  struct DeliverySnapshot {
    TimePoint at;
    /// Sorted report type: snapshots are diffed and printed in flow order.
    // maxmin-lint: allow(hot-map) report type, copied once per snapshot
    std::map<FlowId, std::int64_t> counts;
  };
  DeliverySnapshot snapshotDeliveries() const;

  /// Per-flow delivered packet rate (pkts/s) between two snapshots.
  /// Sorted so tables/CSVs iterate in flow order.
  // maxmin-lint: allow(hot-map) report type, built once per interval
  static std::map<FlowId, double> ratesBetween(const DeliverySnapshot& from,
                                               const DeliverySnapshot& to);

  /// Total packets dropped at network queues (802.11 overwrite / 2PP tail
  /// drops; zero for the lossless per-destination scheme).
  std::int64_t totalQueueDrops() const;

  /// Packets dropped because a next hop was declared dead (fault runs).
  std::int64_t totalDeadNeighborDrops() const;
  /// Packets lost from queues at node crashes (fault runs).
  std::int64_t totalCrashDrops() const;

  // --- measurement plumbing for the GMP driver ---------------------------------
  NodePeriodMeasurement closeMeasurementWindow(topo::NodeId node);
  Duration takeLinkOccupancy(topo::NodeId from, topo::NodeId to);

 private:
  sim::Simulator sim_;
  topo::Topology topo_;
  NetworkConfig config_;
  std::vector<FlowSpec> flows_;
  phys::Medium medium_;
  std::optional<phys::ChannelImpairments> impairments_;
  std::unique_ptr<sim::FaultPlane> faultPlane_;
  std::vector<std::unique_ptr<NodeStack>> stacks_;
  std::vector<std::unique_ptr<mac::Dcf>> macs_;
  // Hashed: nextHop() runs per forwarded packet, recordDelivery() per
  // delivered packet. Report forms (DeliverySnapshot, ratesBetween) sort.
  std::unordered_map<topo::NodeId, topo::RoutingTree, IdHash> routes_;
  std::unordered_map<FlowId, std::int64_t, IdHash> delivered_;
  std::unordered_map<FlowId, RunningStats, IdHash> latencySeconds_;
};

}  // namespace maxmin::net
