// Interface between the MAC and the layer above it (the network layer's
// queue scheduler).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "phys/frame.hpp"
#include "topology/topology.hpp"
#include "util/units.hpp"

namespace maxmin::mac {

/// One unicast link-layer delivery the upper layer wants performed.
struct TxRequest {
  topo::NodeId nextHop = topo::kNoNode;
  std::shared_ptr<const net::Packet> packet;
  DataSize payloadSize;  ///< bytes on air (packet payload)
};

class FrameClient {
 public:
  virtual ~FrameClient() = default;

  /// Pull the next packet to transmit, or nullopt if nothing is currently
  /// eligible. Called whenever the MAC becomes able to take new work; the
  /// upper layer must call Dcf::notifyTrafficPending() when eligibility
  /// appears later.
  virtual std::optional<TxRequest> nextTxRequest() = 0;

  /// Link-layer delivery confirmed (ACK received).
  virtual void onTxSuccess(const TxRequest& request) = 0;

  /// Retry limit exhausted. The packet was NOT delivered; the upper layer
  /// decides whether to drop or re-offer it.
  virtual void onTxFailure(const TxRequest& request) = 0;

  /// A DATA frame addressed to this node arrived.
  virtual void onDataReceived(const phys::Frame& frame) = 0;

  /// Current per-destination buffer-state bits to piggyback on outgoing
  /// frames (paper §2.2).
  virtual std::vector<phys::BufferStateAd> currentBufferState() = 0;

  /// Any successfully decoded frame (own or overheard, all kinds).
  /// Used to cache neighbors' piggybacked buffer state.
  virtual void onFrameDecoded(const phys::Frame& frame) = 0;

  /// A broadcast control frame was decoded (control-plane traffic,
  /// e.g. GMP link-state dissemination). Default: ignore.
  virtual void onControlReceived(const phys::Frame& frame) { (void)frame; }
};

}  // namespace maxmin::mac
