// IEEE 802.11 DCF timing and frame parameters.
//
// Defaults model 802.11b DSSS with short preambles: 11 Mb/s data rate
// (the paper's channel capacity), 2 Mb/s basic rate for control frames,
// 20 us slots, SIFS 10 us, 96 us PLCP preamble+header.
#pragma once

#include "util/time.hpp"
#include "util/units.hpp"

namespace maxmin::mac {

struct MacParams {
  BitRate dataRate = BitRate::megaBitsPerSecond(11.0);
  BitRate basicRate = BitRate::megaBitsPerSecond(2.0);

  Duration slotTime = Duration::micros(20);
  Duration sifs = Duration::micros(10);
  Duration plcpOverhead = Duration::micros(96);

  DataSize rtsBytes = DataSize::bytes(20);
  DataSize ctsBytes = DataSize::bytes(14);
  DataSize ackBytes = DataSize::bytes(14);
  DataSize macHeaderBytes = DataSize::bytes(28);  // header + FCS

  int cwMin = 31;
  int cwMax = 1023;
  int shortRetryLimit = 7;  // RTS attempts
  int longRetryLimit = 4;   // DATA attempts

  [[nodiscard]] Duration difs() const { return sifs + slotTime + slotTime; }

  /// Deferral after a corrupted reception (802.11 EIFS):
  /// SIFS + ACK-at-basic-rate + DIFS.
  [[nodiscard]] Duration eifs() const { return sifs + ackDuration() + difs(); }

  [[nodiscard]] Duration rtsDuration() const { return plcpOverhead + basicRate.txTime(rtsBytes); }
  [[nodiscard]] Duration ctsDuration() const { return plcpOverhead + basicRate.txTime(ctsBytes); }
  [[nodiscard]] Duration ackDuration() const { return plcpOverhead + basicRate.txTime(ackBytes); }
  [[nodiscard]] Duration dataDuration(DataSize payload) const {
    return plcpOverhead + dataRate.txTime(payload + macHeaderBytes);
  }

  /// NAV reservation carried by an RTS: the rest of the four-way exchange.
  [[nodiscard]] Duration rtsNav(DataSize payload) const {
    return sifs + ctsDuration() + sifs + dataDuration(payload) + sifs +
           ackDuration();
  }
  [[nodiscard]] Duration ctsNav(DataSize payload) const {
    return sifs + dataDuration(payload) + sifs + ackDuration();
  }
  [[nodiscard]] Duration dataNav() const { return sifs + ackDuration(); }

  /// How long a sender waits for the expected response before declaring a
  /// timeout (response start is one SIFS after our frame; allow two slots
  /// of slack).
  [[nodiscard]] Duration ctsTimeout() const {
    return sifs + ctsDuration() + slotTime + slotTime;
  }
  [[nodiscard]] Duration ackTimeout() const {
    return sifs + ackDuration() + slotTime + slotTime;
  }

  /// Total channel airtime of one successful four-way exchange, including
  /// the SIFS gaps. Used for channel-occupancy accounting.
  [[nodiscard]] Duration exchangeAirtime(DataSize payload) const {
    return rtsDuration() + rtsNav(payload);
  }
};

}  // namespace maxmin::mac
