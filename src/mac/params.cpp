#include "mac/params.hpp"

// MacParams is header-only arithmetic; this translation unit exists so the
// library has a stable archive member and the header stays ODR-clean if
// out-of-line definitions become necessary later.
namespace maxmin::mac {}
