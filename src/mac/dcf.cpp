#include "mac/dcf.hpp"

#include "obs/registry.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace maxmin::mac {

Dcf::Dcf(sim::Simulator& sim, phys::Medium& medium, topo::NodeId self,
         FrameClient& client, MacParams params, Rng rng)
    : sim_{sim},
      medium_{medium},
      self_{self},
      client_{client},
      params_{params},
      rng_{rng},
      wakeTimer_{sim},
      accessTimer_{sim},
      cw_{params.cwMin},
      txEndTimer_{sim},
      responseTimeout_{sim},
      responderTimer_{sim} {
  medium_.attachRadio(self_, this);
}

void Dcf::notifyTrafficPending() {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  tryAccess();
}

void Dcf::enqueueBroadcast(std::shared_ptr<const phys::ControlMessage> message,
                           DataSize sizeBytes) {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  MAXMIN_CHECK(message != nullptr);
  MAXMIN_CHECK(sizeBytes.asBytes() > 0);
  broadcasts_.emplace_back(std::move(message), sizeBytes);
  tryAccess();
}

Duration Dcf::takeOccupancy(topo::NodeId nextHop) {
  const auto it = occupancy_.find(nextHop);
  if (it == occupancy_.end()) return Duration::zero();
  const Duration d = it->second;
  it->second = Duration::zero();
  return d;
}

void Dcf::accrueOccupancy(topo::NodeId nextHop, Duration airtime) {
  occupancy_[nextHop] += airtime;
}

void Dcf::occupyChannel(Duration busyFor) {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  MAXMIN_CHECK(busyFor > Duration::zero());
  navEnd_ = std::max(navEnd_, sim_.now() + busyFor);
  // Lazy wake: if a wake is already pending it was armed for an earlier
  // (or equal) deadline, and its callback chains armWakeTimer() to cover
  // the extension — re-arming here would churn one tombstoned event per
  // phantom burst per reached node, the dominant event-queue cost of
  // hybrid runs.
  if (!wakeTimer_.pending()) armWakeTimer();
  refreshChannelState();
}

// ---------------------------------------------------------------------------
// Channel state
// ---------------------------------------------------------------------------

bool Dcf::virtuallyBusy() const {
  return medium_.senseBusy(self_) || medium_.isTransmitting(self_) ||
         sim_.now() < navEnd_ || sim_.now() < deferUntil_;
}

void Dcf::refreshChannelState() {
  const bool busy = virtuallyBusy();
  if (busy && idle_) {
    idle_ = false;
    freezeBackoff();
  } else if (!busy && !idle_) {
    idle_ = true;
    idleSince_ = sim_.now();
    tryAccess();
  }
}

void Dcf::armWakeTimer() {
  const TimePoint wake = std::max(navEnd_, deferUntil_);
  if (wake > sim_.now()) {
    // The chained armWakeTimer() covers reservations extended while this
    // wake was pending (occupyChannel's lazy path). When nothing was
    // extended, wake == now at fire time and the chain no-ops, so
    // non-hybrid runs schedule exactly the events they always did.
    wakeTimer_.arm(wake - sim_.now(), [this] {
      refreshChannelState();
      armWakeTimer();
    });
  }
}

void Dcf::freezeBackoff() {
  if (!accessTimer_.pending()) return;
  accessTimer_.cancel();
  MAXMIN_COUNT("mac.backoff_freezes", 1);
  // Credit whole slots elapsed since the countdown cleared DIFS.
  if (sim_.now() > countdownStart_) {
    const auto elapsed = static_cast<int>(
        (sim_.now() - countdownStart_).asMicros() /
        params_.slotTime.asMicros());
    backoffSlots_ -= std::min(elapsed, backoffSlots_);
  }
}

// Radio callbacks and the traffic notification above are the points where
// another node's event (a transmission start/end, an upper-layer push)
// calls into this state machine synchronously; the owner scope attributes
// everything scheduled beneath them to this node so the event keys are
// identical under any lane partition (canonical order, DESIGN.md §15).
void Dcf::onChannelBusy() {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  refreshChannelState();
}
void Dcf::onChannelIdle() {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  refreshChannelState();
}

// ---------------------------------------------------------------------------
// Contention
// ---------------------------------------------------------------------------

void Dcf::drawBackoff() {
  backoffSlots_ = static_cast<int>(rng_.uniformInt(0, cw_));
  MAXMIN_COUNT("mac.backoff_draws", 1);
  MAXMIN_HIST("mac.backoff_cw", cw_);
}

void Dcf::tryAccess() {
  if (phase_ != Phase::kNone || responsePending_) return;
  if (!current_ && broadcasts_.empty()) {
    current_ = client_.nextTxRequest();
    if (!current_) return;
    MAXMIN_CHECK(current_->nextHop != topo::kNoNode);
    MAXMIN_CHECK(current_->packet != nullptr);
  }
  if (!idle_) return;
  if (accessTimer_.pending()) return;

  const Duration sinceIdle = sim_.now() - idleSince_;
  if (!haveBackoff_) {
    if (sinceIdle >= params_.difs()) {
      // Medium idle longer than DIFS and no backoff owed: transmit now.
      transmitNext();
      return;
    }
    // Arrived while the channel was busy or within DIFS of it: back off.
    drawBackoff();
    haveBackoff_ = true;
  }
  countdownStart_ = idleSince_ + params_.difs();
  const Duration target =
      params_.difs() + params_.slotTime * backoffSlots_;
  if (sinceIdle >= target) {
    accessGranted();
  } else {
    accessTimer_.arm(target - sinceIdle, [this] { accessGranted(); });
  }
}

void Dcf::accessGranted() {
  MAXMIN_CHECK(idle_);
  MAXMIN_CHECK(phase_ == Phase::kNone);
  MAXMIN_CHECK(current_.has_value() || !broadcasts_.empty());
  haveBackoff_ = false;
  backoffSlots_ = 0;
  transmitNext();
}

void Dcf::transmitNext() {
  if (!broadcasts_.empty()) {
    transmitBroadcast();
  } else {
    transmitRts();
  }
}

void Dcf::transmitBroadcast() {
  phase_ = Phase::kSendingBroadcast;
  auto [message, size] = std::move(broadcasts_.front());
  broadcasts_.pop_front();
  phys::Frame f;
  f.kind = phys::FrameKind::kControl;
  f.transmitter = self_;
  f.addressee = topo::kNoNode;
  // Control frames go at the basic rate, like other management traffic.
  f.duration = params_.plcpOverhead + params_.basicRate.txTime(size);
  f.navAfterEnd = Duration::zero();
  f.control = std::move(message);
  f.bufferState = client_.currentBufferState();
  medium_.startTransmission(f);
  ++counters_.broadcastsSent;
  refreshChannelState();
  txEndTimer_.arm(f.duration, [this] { onOwnTxEnd(); });
}

// ---------------------------------------------------------------------------
// Sender-side exchange
// ---------------------------------------------------------------------------

void Dcf::transmitRts() {
  phase_ = Phase::kSendingRts;
  phys::Frame f;
  f.kind = phys::FrameKind::kRts;
  f.transmitter = self_;
  f.addressee = current_->nextHop;
  f.duration = params_.rtsDuration();
  f.navAfterEnd = params_.rtsNav(current_->payloadSize);
  f.bufferState = client_.currentBufferState();
  medium_.startTransmission(f);
  ++counters_.rtsSent;
  accrueOccupancy(current_->nextHop, f.duration);
  refreshChannelState();
  txEndTimer_.arm(f.duration, [this] { onOwnTxEnd(); });
}

void Dcf::transmitData() {
  phase_ = Phase::kSendingData;
  phys::Frame f;
  f.kind = phys::FrameKind::kData;
  f.transmitter = self_;
  f.addressee = current_->nextHop;
  f.duration = params_.dataDuration(current_->payloadSize);
  f.navAfterEnd = params_.dataNav();
  f.packet = current_->packet;
  f.bufferState = client_.currentBufferState();
  medium_.startTransmission(f);
  ++counters_.dataSent;
  accrueOccupancy(current_->nextHop, f.duration);
  refreshChannelState();
  txEndTimer_.arm(f.duration, [this] { onOwnTxEnd(); });
}

void Dcf::onOwnTxEnd() {
  switch (phase_) {
    case Phase::kSendingRts:
      phase_ = Phase::kAwaitCts;
      responseTimeout_.arm(params_.ctsTimeout(), [this] { onCtsTimeout(); });
      break;
    case Phase::kSendingData:
      phase_ = Phase::kAwaitAck;
      responseTimeout_.arm(params_.ackTimeout(), [this] { onAckTimeout(); });
      break;
    case Phase::kSendingBroadcast:
      // Fire and forget: no response, no retry (802.11 broadcast rules).
      phase_ = Phase::kNone;
      drawBackoff();
      haveBackoff_ = true;
      refreshChannelState();
      tryAccess();
      return;
    default:
      MAXMIN_CHECK_MSG(false, "own tx ended in unexpected phase");
  }
  refreshChannelState();
}

void Dcf::onCtsTimeout() {
  ++counters_.ctsTimeouts;
  MAXMIN_COUNT("mac.cts_timeouts", 1);
  retryAfterTimeout(/*longRetry=*/false);
}

void Dcf::onAckTimeout() {
  ++counters_.ackTimeouts;
  MAXMIN_COUNT("mac.ack_timeouts", 1);
  retryAfterTimeout(/*longRetry=*/true);
}

void Dcf::retryAfterTimeout(bool longRetry) {
  phase_ = Phase::kNone;
  int& retries = longRetry ? longRetries_ : shortRetries_;
  const int limit =
      longRetry ? params_.longRetryLimit : params_.shortRetryLimit;
  if (++retries > limit) {
    ++counters_.macDrops;
    MAXMIN_COUNT("mac.retry_limit_drops", 1);
    finishCurrent(/*success=*/false);
    return;
  }
  cw_ = std::min(2 * cw_ + 1, params_.cwMax);
  MAXMIN_COUNT("mac.backoff_stage_escalations", 1);
  drawBackoff();
  haveBackoff_ = true;
  refreshChannelState();
  tryAccess();
}

void Dcf::finishCurrent(bool success) {
  phase_ = Phase::kNone;
  const TxRequest request = *current_;
  current_.reset();
  cw_ = params_.cwMin;
  shortRetries_ = 0;
  longRetries_ = 0;
  drawBackoff();  // post-transmission backoff (802.11 §9.2.5.2)
  haveBackoff_ = true;
  if (success) {
    ++counters_.txSuccesses;
    client_.onTxSuccess(request);
  } else {
    client_.onTxFailure(request);
  }
  tryAccess();
}

// ---------------------------------------------------------------------------
// Reception
// ---------------------------------------------------------------------------

void Dcf::onFrameReceived(const phys::Frame& frame) {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  client_.onFrameDecoded(frame);
  if (frame.kind == phys::FrameKind::kControl) {
    client_.onControlReceived(frame);
    return;
  }
  if (frame.addressee == self_) {
    handleAddressedFrame(frame);
  } else {
    // Virtual carrier sense: honor the overheard reservation.
    navEnd_ = std::max(navEnd_, sim_.now() + frame.navAfterEnd);
    armWakeTimer();
    refreshChannelState();
  }
}

void Dcf::onFrameCorrupted(const phys::Frame&) {
  const sim::OwnerScope scope{sim_, static_cast<std::uint32_t>(self_)};
  // Could not decode: defer EIFS so the (inaudible) ACK of the collided
  // exchange is protected. This is where hidden-terminal unfairness bites.
  MAXMIN_COUNT("mac.eifs_deferrals", 1);
  deferUntil_ = std::max(deferUntil_, sim_.now() + params_.eifs());
  armWakeTimer();
  refreshChannelState();
}

void Dcf::handleAddressedFrame(const phys::Frame& frame) {
  switch (frame.kind) {
    case phys::FrameKind::kRts: {
      if (sim_.now() < navEnd_) return;  // NAV forbids responding
      if (phase_ != Phase::kNone || responsePending_ ||
          medium_.isTransmitting(self_)) {
        return;  // busy with our own exchange; sender will retry
      }
      // Reserve the whole incoming exchange locally so our own contention
      // stays frozen until it completes.
      deferUntil_ = std::max(deferUntil_, sim_.now() + frame.navAfterEnd);
      armWakeTimer();
      refreshChannelState();
      responsePending_ = true;
      const Duration nav =
          frame.navAfterEnd - params_.sifs - params_.ctsDuration();
      responderTimer_.arm(params_.sifs,
                          [this, to = frame.transmitter, nav] {
                            sendResponse(phys::FrameKind::kCts, to, nav);
                          });
      break;
    }
    case phys::FrameKind::kCts: {
      if (phase_ != Phase::kAwaitCts || frame.transmitter != current_->nextHop)
        return;
      responseTimeout_.cancel();
      accrueOccupancy(current_->nextHop, frame.duration);
      phase_ = Phase::kWaitSifsData;
      txEndTimer_.arm(params_.sifs, [this] { transmitData(); });
      break;
    }
    case phys::FrameKind::kData: {
      client_.onDataReceived(frame);
      if (!responsePending_ && !medium_.isTransmitting(self_)) {
        responsePending_ = true;
        responderTimer_.arm(params_.sifs, [this, to = frame.transmitter] {
          sendResponse(phys::FrameKind::kAck, to, Duration::zero());
        });
      }
      break;
    }
    case phys::FrameKind::kAck: {
      if (phase_ != Phase::kAwaitAck || frame.transmitter != current_->nextHop)
        return;
      responseTimeout_.cancel();
      accrueOccupancy(current_->nextHop, frame.duration);
      finishCurrent(/*success=*/true);
      break;
    }
    case phys::FrameKind::kControl:
      break;  // broadcasts are dispatched before addressed handling
  }
}

void Dcf::sendResponse(phys::FrameKind kind, topo::NodeId to,
                       Duration navAfterEnd) {
  if (medium_.isTransmitting(self_)) {
    responsePending_ = false;  // pathological overlap; let the sender retry
    return;
  }
  phys::Frame f;
  f.kind = kind;
  f.transmitter = self_;
  f.addressee = to;
  f.duration = kind == phys::FrameKind::kCts ? params_.ctsDuration()
                                             : params_.ackDuration();
  f.navAfterEnd = navAfterEnd;
  f.bufferState = client_.currentBufferState();
  medium_.startTransmission(f);
  refreshChannelState();
  responderTimer_.arm(f.duration, [this] {
    responsePending_ = false;
    refreshChannelState();
    tryAccess();
  });
}

}  // namespace maxmin::mac
