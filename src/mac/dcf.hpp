// IEEE 802.11 DCF with RTS/CTS, per node.
//
// Implements the distributed coordination function as modelled by
// ns-2-era simulators and assumed by the paper:
//   * physical carrier sense (medium energy) + virtual carrier sense (NAV
//     from overheard RTS/CTS/DATA duration fields);
//   * DIFS deferral and slotted binary-exponential backoff with freezing;
//   * RTS -> CTS -> DATA -> ACK four-way exchange, SIFS-spaced responses;
//   * EIFS deferral after corrupted receptions (the mechanism behind the
//     hidden-terminal unfairness the paper's Table 3 exhibits);
//   * short (RTS) and long (DATA) retry limits with CW doubling.
//
// The backoff scheme of 802.11 is deliberately NOT modified: GMP's whole
// point (paper §1) is to sit above stock DCF.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "mac/frame_client.hpp"
#include "mac/params.hpp"
#include "phys/medium.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "util/rng.hpp"

namespace maxmin::mac {

struct DcfCounters {
  std::uint64_t rtsSent = 0;
  std::uint64_t dataSent = 0;
  std::uint64_t broadcastsSent = 0;
  std::uint64_t txSuccesses = 0;
  std::uint64_t ctsTimeouts = 0;
  std::uint64_t ackTimeouts = 0;
  std::uint64_t macDrops = 0;  ///< retry limit exceeded
};

class Dcf final : public phys::RadioListener {
 public:
  Dcf(sim::Simulator& sim, phys::Medium& medium, topo::NodeId self,
      FrameClient& client, MacParams params, Rng rng);

  Dcf(const Dcf&) = delete;
  Dcf& operator=(const Dcf&) = delete;

  /// Upper layer signals that nextTxRequest() may now return work.
  void notifyTrafficPending();

  /// Queue a broadcast control frame (sent once after normal DIFS/backoff
  /// contention; no RTS/CTS, no ACK, no retry — 802.11 broadcast rules).
  /// Broadcasts take priority over pending unicast work.
  void enqueueBroadcast(std::shared_ptr<const phys::ControlMessage> message,
                        DataSize sizeBytes);

  [[nodiscard]] topo::NodeId self() const { return self_; }
  const MacParams& params() const { return params_; }
  const DcfCounters& counters() const { return counters_; }

  /// Channel airtime attributed to exchanges this node initiated toward
  /// `nextHop` since the last call; resets the accumulator. This is the
  /// per-wireless-link channel occupancy source for GMP (paper §6.2).
  Duration takeOccupancy(topo::NodeId nextHop);

  /// Reserve the channel for `busyFor` from now, exactly as if a frame
  /// carrying that NAV had been overheard: transmissions defer and
  /// backoff freezes until the reservation expires. The hybrid engine
  /// radiates fluid background load through this (DESIGN.md §16); such
  /// phantom reservations never count toward takeOccupancy().
  void occupyChannel(Duration busyFor);

  /// True while this node's physical or virtual carrier sense is busy.
  /// The hybrid background trains consult this so phantom reservations
  /// serialize after real exchanges instead of overlapping them.
  [[nodiscard]] bool channelBusy() const { return virtuallyBusy(); }
  /// When the current NAV/EIFS reservation clears from this node's view;
  /// physical medium energy may keep the channel busy past this.
  [[nodiscard]] TimePoint reservedUntil() const {
    return std::max(navEnd_, deferUntil_);
  }

  // phys::RadioListener
  void onChannelBusy() override;
  void onChannelIdle() override;
  void onFrameReceived(const phys::Frame& frame) override;
  void onFrameCorrupted(const phys::Frame& frame) override;

 private:
  enum class Phase {
    kNone,         // no exchange in progress (may be contending)
    kSendingRts,
    kAwaitCts,
    kWaitSifsData,  // CTS received, DATA scheduled after SIFS
    kSendingData,
    kAwaitAck,
    kSendingBroadcast,
  };

  // --- channel state -----------------------------------------------------
  [[nodiscard]] bool virtuallyBusy() const;
  void refreshChannelState();   ///< maintain idleSince_ and freeze/resume
  void armWakeTimer();          ///< wake at NAV/EIFS expiry
  void freezeBackoff();

  // --- contention --------------------------------------------------------
  void tryAccess();
  void accessGranted();
  void drawBackoff();

  // --- sender-side exchange ----------------------------------------------
  void transmitNext();  ///< broadcast (priority) or RTS
  void transmitRts();
  void transmitData();
  void transmitBroadcast();
  void onOwnTxEnd();
  void onCtsTimeout();
  void onAckTimeout();
  void retryAfterTimeout(bool longRetry);
  void finishCurrent(bool success);

  // --- responder side ------------------------------------------------------
  void handleAddressedFrame(const phys::Frame& frame);
  void sendResponse(phys::FrameKind kind, topo::NodeId to, Duration navAfterEnd);

  void accrueOccupancy(topo::NodeId nextHop, Duration airtime);

  sim::Simulator& sim_;
  phys::Medium& medium_;
  const topo::NodeId self_;
  FrameClient& client_;
  const MacParams params_;
  Rng rng_;

  // Channel / contention state.
  bool idle_ = true;
  TimePoint idleSince_;
  TimePoint navEnd_;
  TimePoint deferUntil_;  // EIFS and local reservations
  sim::Timer wakeTimer_;

  bool haveBackoff_ = false;
  int backoffSlots_ = 0;
  TimePoint countdownStart_;  // idleSince_ + DIFS at arming time
  sim::Timer accessTimer_;
  int cw_;

  // Current exchange.
  Phase phase_ = Phase::kNone;
  std::optional<TxRequest> current_;
  std::deque<std::pair<std::shared_ptr<const phys::ControlMessage>, DataSize>>
      broadcasts_;
  int shortRetries_ = 0;
  int longRetries_ = 0;
  sim::Timer txEndTimer_;
  sim::Timer responseTimeout_;

  // Responder state: a CTS/ACK is scheduled or on the air.
  bool responsePending_ = false;
  sim::Timer responderTimer_;

  DcfCounters counters_;
  std::unordered_map<topo::NodeId, Duration> occupancy_;
};

}  // namespace maxmin::mac
