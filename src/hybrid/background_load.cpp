#include "hybrid/background_load.hpp"

#include <algorithm>

#include "mac/dcf.hpp"
#include "util/check.hpp"

namespace maxmin::hybrid {
namespace {

/// Below this rate a sender's timer parks instead of scheduling
/// multi-hour gaps; setSenderRate rearms it when the rate comes back.
constexpr double kMinRatePps = 1e-3;

/// A deferred sender may owe at most this many bursts of catch-up;
/// older debt is forgiven (mirrors a real station's finite queue).
constexpr int kMaxDebtBursts = 4;

/// Deterministic per-node phase in [0, 1): staggers burst trains so
/// co-located senders do not start in lockstep.
double phaseOf(topo::NodeId node) {
  const auto h = static_cast<std::uint32_t>(node) * 2654435761u;
  return static_cast<double>(h % 997u) / 997.0;
}

}  // namespace

BackgroundLoad::BackgroundLoad(net::Network& net, Duration perPacket,
                               int batch)
    : net_{net}, perPacket_{perPacket}, batch_{batch} {
  MAXMIN_CHECK(perPacket_ > Duration::zero());
  MAXMIN_CHECK(batch_ >= 1);
  MAXMIN_CHECK_MSG(!net.sharded(),
                   "background load needs the serial event loop");
}

void BackgroundLoad::addSender(topo::NodeId node) {
  MAXMIN_CHECK(!running_);
  for (const Source& s : sources_) {
    if (s.node == node) return;
  }
  Source s;
  s.node = node;
  s.reach.push_back(node);
  for (const topo::NodeId nb : net_.topology().csNeighbors(node)) {
    s.reach.push_back(nb);
  }
  s.timer = std::make_unique<sim::Timer>(net_.simulator());
  sources_.push_back(std::move(s));
}

void BackgroundLoad::setSenderRate(topo::NodeId node, double pps) {
  MAXMIN_CHECK(pps >= 0.0);
  for (Source& s : sources_) {
    if (s.node != node) continue;
    const bool wasParked = s.pps < kMinRatePps;
    s.pps = pps;
    if (running_ && wasParked && pps >= kMinRatePps && !s.timer->pending()) {
      const Duration iv = interval(s);
      s.due = net_.simulator().now() + iv;
      arm(s, iv);
    }
    return;
  }
  MAXMIN_CHECK_MSG(false, "unregistered background sender " << node);
}

Duration BackgroundLoad::interval(const Source& s) const {
  // `batch` phantom packets per batch/pps seconds; a feasible fluid
  // solution keeps pps * perPacket <= 1, but clamp so occupancy never
  // exceeds the channel even transiently.
  return std::max(perPacket_ * batch_,
                  Duration::seconds(batch_ / s.pps));
}

void BackgroundLoad::arm(Source& s, Duration delay) {
  Source* sp = &s;
  s.timer->arm(delay, [this, sp] { fire(*sp); });
}

void BackgroundLoad::fire(Source& s) {
  if (s.pps < kMinRatePps) return;  // parked until the rate returns
  const TimePoint now = net_.simulator().now();
  mac::Dcf& mac = net_.macOf(s.node);
  if (mac.channelBusy()) {
    // A real station defers to the ongoing exchange (or a neighbour's
    // reservation — including other phantom senders, whose bursts
    // charge this MAC too), then re-contends with DIFS + backoff. The
    // countdown persists across lost contentions exactly like DCF
    // freezing (Dcf::freezeBackoff): whole slots elapsed since the
    // last countdown cleared DIFS are credited, so a sender that keeps
    // losing ages toward zero backoff and soon wins — redrawing every
    // time would hand the foreground strict priority. The draw is a
    // deterministic hash so fixed-seed runs stay bit-identical; the
    // due time stays put, so the burst is delayed, not dropped. When
    // only physical energy is visible (reservedUntil in the past),
    // poll at a coarse fraction of the burst length rather than slot
    // granularity.
    const mac::MacParams& mp = mac.params();
    if (s.backoffSlots >= 0 && now > s.countdownStart) {
      const auto elapsed =
          static_cast<int>((now - s.countdownStart).asMicros() /
                           mp.slotTime.asMicros());
      s.backoffSlots -= std::min(elapsed, s.backoffSlots);
    }
    if (s.backoffSlots < 0) {
      const auto h = (static_cast<std::uint32_t>(s.node) * 2654435761u) ^
                     (++s.deferrals * 0x9E3779B9u);
      s.backoffSlots =
          static_cast<int>(h % static_cast<std::uint32_t>(mp.cwMin + 1));
    }
    const TimePoint until = mac.reservedUntil();
    const Duration clear =
        until > now ? until - now
                    : std::max(Duration::micros(1), perPacket_ * batch_ / 4);
    s.countdownStart = now + clear + mp.difs();
    arm(s, clear + mp.difs() + mp.slotTime * s.backoffSlots);
    return;
  }
  for (const topo::NodeId t : s.reach) {
    net_.macOf(t).occupyChannel(perPacket_ * batch_);
  }
  ++bursts_;
  s.backoffSlots = -1;  // countdown consumed by this emission
  const Duration iv = interval(s);
  // Advance the schedule from the *due* time so deferred bursts catch
  // up, but forgive debt beyond kMaxDebtBursts intervals.
  TimePoint next = s.due + iv;
  const TimePoint floor = now - iv * kMaxDebtBursts;
  if (next < floor) next = floor;
  s.due = next;
  arm(s, next > now ? next - now : Duration::micros(1));
}

void BackgroundLoad::start() {
  MAXMIN_CHECK(!running_);
  running_ = true;
  for (Source& s : sources_) {
    if (s.pps < kMinRatePps) continue;
    const Duration iv = interval(s);
    const Duration delay =
        std::max(Duration::micros(1),
                 Duration::seconds(iv.asSeconds() * phaseOf(s.node)));
    s.due = net_.simulator().now() + delay;
    arm(s, delay);
  }
}

void BackgroundLoad::stop() {
  running_ = false;
  for (Source& s : sources_) s.timer->cancel();
}

}  // namespace maxmin::hybrid
