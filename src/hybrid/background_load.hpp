// Deterministic phantom occupancy sources: the packet world's view of
// fluid background traffic (DESIGN.md §16).
//
// Each background *sender* node radiates periodic channel reservations —
// one per phantom packet, sized to the full nominal per-packet channel
// time (DIFS + mean backoff + RTS/CTS/DATA/ACK exchange) — into its own
// MAC and every MAC within carrier-sense range. Before emitting, the
// sender consults its own MAC's carrier sense exactly like a real DCF
// station: if the channel is busy (a foreground exchange, or another
// phantom sender's reservation — each burst charges the emitter too),
// the burst defers and re-contends after DIFS plus a deterministic
// backoff. This serializes phantom senders within carrier-sense range
// of each other and yields correct aggregate airtime, while keeping
// busy windows *correlated* across the sender's whole reach (one fire
// charges every reached MAC at the same instant) — the property that
// lets a foreground receiver's NAV clear exactly when its sender's
// does, as in a real channel. Deferred bursts catch up against a
// due-time schedule with bounded debt, so load is delayed, not lost.
//
// Foreground DCF sees the channel busy exactly as if a neighbor held it
// for a real exchange: transmissions defer, backoff freezes, and the
// residual airtime is what the foreground can win. No frames enter the
// Medium, so there is no collision coupling with the phantom traffic
// (the documented re-linearization approximation), and phantom
// reservations never count toward GMP's measured link occupancy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/timer.hpp"
#include "topology/topology.hpp"

namespace maxmin::hybrid {

class BackgroundLoad {
 public:
  /// `perPacket` is the channel time one phantom packet reserves;
  /// `batch` phantom packets are folded into each emitted reservation
  /// (longer bursts, proportionally longer gaps — same airtime).
  BackgroundLoad(net::Network& net, Duration perPacket, int batch = 1);

  BackgroundLoad(const BackgroundLoad&) = delete;
  BackgroundLoad& operator=(const BackgroundLoad&) = delete;

  /// Register a sender node before start(); idempotent.
  void addSender(topo::NodeId node);

  /// Aggregate background packet rate originating at `node` (sum over
  /// the background-flow hops whose transmitter is `node`). Takes effect
  /// at the sender's next burst boundary.
  void setSenderRate(topo::NodeId node, double pps);

  void start();
  void stop();

  [[nodiscard]] std::int64_t burstsEmitted() const { return bursts_; }

 private:
  struct Source {
    topo::NodeId node = topo::kNoNode;
    double pps = 0.0;
    /// This sender plus everything in its carrier-sense range: the MACs
    /// that defer while the phantom packet is on the air.
    std::vector<topo::NodeId> reach;
    TimePoint due;                ///< next scheduled emission
    std::uint32_t deferrals = 0;  ///< drives the deterministic backoff
    /// Persistent contention countdown, mirroring DCF freezing: the
    /// remainder survives lost contentions (aging priority) instead of
    /// being redrawn, and -1 means no countdown is pending.
    int backoffSlots = -1;
    TimePoint countdownStart;  ///< when the armed countdown cleared DIFS
    std::unique_ptr<sim::Timer> timer;
  };

  [[nodiscard]] Duration interval(const Source& s) const;
  void fire(Source& s);
  void arm(Source& s, Duration delay);

  net::Network& net_;
  const Duration perPacket_;
  const int batch_;
  std::vector<Source> sources_;  ///< ordered by registration
  bool running_ = false;
  std::int64_t bursts_ = 0;
};

}  // namespace maxmin::hybrid
