// Hybrid fluid/packet engine (DESIGN.md §16): couples the fluid GMP
// model to the packet simulator.
//
// Two composable modes:
//
//  * Fast-forward — before t=0, iterate the fluid GMP fixed point to
//    near-convergence and inject the result into the packet world: each
//    foreground flow's rate limit and piggybacked normalized rate, the
//    controller's staleness-bridging measurement cache, and per-node
//    queue backlogs along every fluid-saturated backpressure chain. The
//    packet simulation starts inside the steady-state basin instead of
//    spending many measurement periods converging to it.
//
//  * Background load — the scenario's flows are partitioned into
//    foreground (packet-simulated end to end; the gmp::Controller runs
//    over exactly these) and background (advanced by the fluid solver).
//    At every measurement-period boundary the engine re-linearizes:
//    packet-measured foreground airtime per wireless link folds into the
//    fluid model as external per-clique occupancy, one fluid GMP period
//    advances the background allocation, and the updated background
//    rates are radiated back into the MACs as deterministic phantom
//    reservations (BackgroundLoad) the foreground DCF defers to.
//
// The engine runs entirely on the network's serial control clock, so
// fixed-seed hybrid runs are bit-reproducible. Sharded runs, fault
// scripts, and channel impairments are refused: phantom occupancy
// bypasses the lane-ownership protocol and the fluid model knows nothing
// about faults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "fluid/fluid_gmp.hpp"
#include "fluid/fluid_network.hpp"
#include "gmp/controller.hpp"
#include "hybrid/background_load.hpp"
#include "hybrid/config.hpp"
#include "net/network.hpp"

namespace maxmin::hybrid {

struct HybridStats {
  int ffPeriods = 0;
  bool ffConverged = false;
  double ffResidual = 0.0;
  std::int64_t seededPackets = 0;
  int relinearizations = 0;
  int backgroundFlows = 0;
};

class Engine {
 public:
  /// `allFlows` is the full scenario flow list; `net` must have been
  /// built over exactly foregroundFlows(allFlows, cfg).
  Engine(net::Network& net, gmp::Controller& controller,
         std::vector<net::FlowSpec> allFlows, gmp::GmpParams gmpParams,
         HybridConfig cfg);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The packet-simulated subset of `all` under `cfg` (== `all` when
  /// background mode is off).
  static std::vector<net::FlowSpec> foregroundFlows(
      const std::vector<net::FlowSpec>& all, const HybridConfig& cfg);
  static std::vector<net::FlowSpec> backgroundFlows(
      const std::vector<net::FlowSpec>& all, const HybridConfig& cfg);

  /// Run the fluid fixed point and inject its state (no-op unless
  /// cfg.fastForward). Call before the first net.run().
  void fastForward();

  /// Engage the background machinery: initial fluid solve, phantom
  /// occupancy sources, and the controller period hook (no-op unless
  /// cfg.background). Call after controller.start(), before net.run().
  void start();
  void stop();

  /// Cumulative fluid background delivery estimate, diffable across the
  /// measured window exactly like net::Network::DeliverySnapshot.
  struct BackgroundSnapshot {
    TimePoint at;
    // maxmin-lint: allow(hot-map) report type, copied once per snapshot
    std::map<net::FlowId, double> packets;
  };
  [[nodiscard]] BackgroundSnapshot snapshotBackground();
  // maxmin-lint: allow(hot-map) report type, built once per interval
  static std::map<net::FlowId, double> ratesBetween(
      const BackgroundSnapshot& from, const BackgroundSnapshot& to);

  /// Routed hop count of a background flow (foreground hops come from
  /// the Network).
  [[nodiscard]] int backgroundHops(net::FlowId id) const;

  [[nodiscard]] const HybridStats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t phantomBursts() const {
    return bgLoad_ ? bgLoad_->burstsEmitted() : 0;
  }

 private:
  /// Synthesize per-node period-0 measurements from a fluid state for
  /// the controller's warm start (foreground flows only).
  [[nodiscard]] std::vector<net::NodePeriodMeasurement> buildMeasurements(
      const fluid::FluidState& state,
      const std::vector<std::vector<topo::NodeId>>& ffPaths) const;
  /// Fill the queues along every fluid-saturated foreground backpressure
  /// chain with synthetic in-transit packets.
  void seedQueues(const fluid::FluidState& state,
                  const std::vector<std::vector<topo::NodeId>>& ffPaths);
  /// Controller period hook: fold measured foreground occupancy into the
  /// fluid model, advance it one GMP period, push new phantom rates.
  void relinearize(const gmp::Snapshot& snap);
  /// Install `rates` as the current background rates: update the
  /// delivery integral baseline and the per-sender phantom rates.
  void applyBackgroundRates(const std::map<net::FlowId, double>& rates);
  void accumulateTo(TimePoint t);

  net::Network& net_;
  gmp::Controller& controller_;
  std::vector<net::FlowSpec> allFlows_;
  gmp::GmpParams gmpParams_;
  HybridConfig cfg_;
  double capacityPps_;

  std::vector<net::FlowSpec> bgFlows_;
  std::vector<topo::NodeId> bgSenders_;  ///< registered phantom senders
  std::optional<fluid::FluidNetwork> bgFluid_;
  std::optional<fluid::FluidGmpHarness> bgHarness_;
  std::optional<BackgroundLoad> bgLoad_;

  /// Fluid delivery integral per background flow (packets), advanced at
  /// the current rates between re-linearizations.
  // maxmin-lint: allow(hot-map) few background flows, touched once per period
  std::map<net::FlowId, double> integral_;
  // maxmin-lint: allow(hot-map) few background flows, touched once per period
  std::map<net::FlowId, double> currentRates_;
  TimePoint integralAt_;

  HybridStats stats_;
};

}  // namespace maxmin::hybrid
