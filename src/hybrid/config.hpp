// Configuration for the hybrid fluid/packet engine (DESIGN.md §16).
#pragma once

#include <vector>

#include "net/flow.hpp"

namespace maxmin::hybrid {

struct HybridConfig {
  /// Iterate the fluid GMP fixed point before t=0 and inject the
  /// resulting rate limits, source normalized rates, controller
  /// measurement cache, and queue backlogs into the packet world.
  bool fastForward = false;
  /// Fast-forward convergence tolerance: smoothed per-period rate
  /// movement as a fraction of clique capacity (GMP's additive probing
  /// never stops exactly, so this is an EWMA threshold).
  double ffTol = 0.02;
  int ffMaxPeriods = 400;

  /// Partition flows: `foreground` ids are packet-simulated end to end,
  /// everything else is advanced by the fluid solver and radiated into
  /// the MACs as deterministic channel occupancy, re-linearized at every
  /// measurement-period boundary.
  bool background = false;
  std::vector<net::FlowId> foreground;
  /// Phantom packets folded into one channel reservation. Larger values
  /// cut the background event rate proportionally at the cost of
  /// coarser busy/idle granularity the foreground MAC sees.
  int bgBatch = 4;

  [[nodiscard]] bool enabled() const { return fastForward || background; }
};

}  // namespace maxmin::hybrid
