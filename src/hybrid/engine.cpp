#include "hybrid/engine.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "baselines/two_phase.hpp"
#include "net/packet.hpp"
#include "util/check.hpp"

namespace maxmin::hybrid {
namespace {

bool isForeground(const HybridConfig& cfg, net::FlowId id) {
  if (!cfg.background) return true;
  return std::ranges::find(cfg.foreground, id) != cfg.foreground.end();
}

}  // namespace

std::vector<net::FlowSpec> Engine::foregroundFlows(
    const std::vector<net::FlowSpec>& all, const HybridConfig& cfg) {
  std::vector<net::FlowSpec> out;
  for (const net::FlowSpec& f : all) {
    if (isForeground(cfg, f.id)) out.push_back(f);
  }
  return out;
}

std::vector<net::FlowSpec> Engine::backgroundFlows(
    const std::vector<net::FlowSpec>& all, const HybridConfig& cfg) {
  std::vector<net::FlowSpec> out;
  for (const net::FlowSpec& f : all) {
    if (!isForeground(cfg, f.id)) out.push_back(f);
  }
  return out;
}

Engine::Engine(net::Network& net, gmp::Controller& controller,
               std::vector<net::FlowSpec> allFlows, gmp::GmpParams gmpParams,
               HybridConfig cfg)
    : net_{net},
      controller_{controller},
      allFlows_{std::move(allFlows)},
      gmpParams_{gmpParams},
      cfg_{std::move(cfg)},
      capacityPps_{baselines::nominalLinkCapacityPps(net.config().mac,
                                                     net.config().packetSize)} {
  MAXMIN_CHECK(cfg_.enabled());
  MAXMIN_CHECK_MSG(!net_.sharded(),
                   "hybrid engine needs the serial event loop (no --shards)");
  if (cfg_.background) {
    MAXMIN_CHECK_MSG(net_.faultPlane() == nullptr,
                     "fluid background load is incompatible with faults");
    MAXMIN_CHECK_MSG(net_.impairments() == nullptr,
                     "fluid background load is incompatible with impairments");
    MAXMIN_CHECK_MSG(!cfg_.foreground.empty(),
                     "background mode needs a foreground flow list");
    for (const net::FlowId id : cfg_.foreground) {
      MAXMIN_CHECK_MSG(
          std::ranges::any_of(allFlows_,
                              [&](const net::FlowSpec& f) { return f.id == id; }),
          "foreground flow " << id << " is not in the scenario");
    }
    bgFlows_ = backgroundFlows(allFlows_, cfg_);
    MAXMIN_CHECK_MSG(!bgFlows_.empty(),
                     "background mode with every flow foreground is a "
                     "pure-packet run");
  }
  // The packet network must hold exactly the foreground subset.
  {
    std::set<net::FlowId> want;
    for (const net::FlowSpec& f : foregroundFlows(allFlows_, cfg_)) {
      want.insert(f.id);
    }
    std::set<net::FlowId> have;
    for (const net::FlowSpec& f : net_.flows()) have.insert(f.id);
    MAXMIN_CHECK_MSG(want == have,
                     "network flows do not match the foreground partition");
  }

  if (cfg_.background) {
    bgFluid_.emplace(net_.topology(), bgFlows_, capacityPps_,
                     net_.activeLinks());
    bgHarness_.emplace(*bgFluid_, gmpParams_);
    // The NAV burst covers only the channel *hold* time of one exchange
    // (RTS..ACK with SIFS gaps). The contention overhead that the
    // nominal capacity also prices in — DIFS plus a single station's
    // mean backoff — must NOT be reserved: with several contenders the
    // real inter-exchange gap is the minimum of their countdowns, and
    // the phantom's own deferral/backoff path already supplies its
    // share of idle time dynamically. Reserving the nominal per-packet
    // time instead overcharges dense neighbourhoods by ~25%.
    const mac::MacParams& mp = net_.config().mac;
    MAXMIN_CHECK_MSG(cfg_.bgBatch >= 1, "bgBatch must be at least 1");
    bgLoad_.emplace(net_,
                    mp.exchangeAirtime(net_.config().packetSize) +
                        mp.difs() + mp.slotTime * 2,
                    cfg_.bgBatch);
    std::set<topo::NodeId> senders;
    for (const auto& path : bgFluid_->paths()) {
      for (std::size_t h = 0; h + 1 < path.size(); ++h) senders.insert(path[h]);
    }
    bgSenders_.assign(senders.begin(), senders.end());
    for (const topo::NodeId n : bgSenders_) bgLoad_->addSender(n);
    for (const net::FlowSpec& f : bgFlows_) {
      integral_[f.id] = 0.0;
      currentRates_[f.id] = 0.0;
    }
    stats_.backgroundFlows = static_cast<int>(bgFlows_.size());
  }
}

void Engine::fastForward() {
  if (!cfg_.fastForward) return;
  fluid::FluidNetwork all{net_.topology(), allFlows_, capacityPps_};
  fluid::FluidGmpHarness harness{all, gmpParams_};
  const fluid::FixedPointResult fp =
      harness.runToFixedPoint(cfg_.ffTol, cfg_.ffMaxPeriods);
  stats_.ffPeriods = fp.periods;
  stats_.ffConverged = fp.converged;
  stats_.ffResidual = fp.residual;

  const fluid::FluidState state = all.evaluate();

  // Inject the foreground operating point: rate limits and piggybacked
  // normalized rates at the sources.
  for (const net::FlowSpec& f : net_.flows()) {
    if (const auto lim = all.rateLimit(f.id)) net_.setRateLimit(f.id, lim);
    net_.setSourceMu(f.id, state.rates.at(f.id) / f.weight);
  }
  // Background flows inherit the jointly-converged limits so the first
  // re-linearization starts from the same operating point.
  if (bgFluid_) {
    for (const net::FlowSpec& f : bgFlows_) {
      bgFluid_->setRateLimit(f.id, all.rateLimit(f.id));
    }
  }

  controller_.warmStart(buildMeasurements(state, all.paths()));
  seedQueues(state, all.paths());
}

std::vector<net::NodePeriodMeasurement> Engine::buildMeasurements(
    const fluid::FluidState& state,
    const std::vector<std::vector<topo::NodeId>>& ffPaths) const {
  const auto numNodes = static_cast<std::size_t>(net_.topology().numNodes());
  std::vector<net::NodePeriodMeasurement> meas(numNodes);
  const double periodSeconds = gmpParams_.period.asSeconds();
  for (std::size_t n = 0; n < numNodes; ++n) {
    meas[n].node = static_cast<topo::NodeId>(n);
    meas[n].periodSeconds = periodSeconds;
  }
  for (std::size_t i = 0; i < allFlows_.size(); ++i) {
    const net::FlowSpec& f = allFlows_[i];
    if (!isForeground(cfg_, f.id)) continue;
    const double rate = state.rates.at(f.id);
    const double mu = rate / f.weight;
    const auto& path = ffPaths[i];
    meas[static_cast<std::size_t>(path.front())].localFlowRate[f.id] = rate;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      auto& m = meas[static_cast<std::size_t>(path[h])];
      net::VirtualLinkSample& vs = m.downstream[f.dst];
      vs.packets += static_cast<int>(rate * periodSeconds);
      vs.flowMu[f.id] = mu;
      const auto sat = state.saturated.find({path[h], f.dst});
      const bool full = sat != state.saturated.end() && sat->second;
      auto [it, inserted] = m.queueFullFraction.try_emplace(f.dst, 0.0);
      if (full) it->second = 1.0;
    }
  }
  return meas;
}

void Engine::seedQueues(const fluid::FluidState& state,
                        const std::vector<std::vector<topo::NodeId>>& ffPaths) {
  const int queueCap = net_.config().queueCapacity;
  if (queueCap <= 0) return;

  // Which foreground flows cross each saturated (node, dest) virtual
  // node, in flow-id order (allFlows_ is id-ordered per validateFlows).
  using VNode = std::pair<topo::NodeId, topo::NodeId>;
  std::map<VNode, std::vector<net::FlowId>> crossing;
  std::map<net::FlowId, const net::FlowSpec*> specOf;
  std::map<net::FlowId, double> muOf;
  for (std::size_t i = 0; i < allFlows_.size(); ++i) {
    const net::FlowSpec& f = allFlows_[i];
    if (!isForeground(cfg_, f.id)) continue;
    specOf[f.id] = &f;
    muOf[f.id] = state.rates.at(f.id) / f.weight;
    for (std::size_t h = 0; h + 1 < ffPaths[i].size(); ++h) {
      const VNode vn{ffPaths[i][h], f.dst};
      if (const auto it = state.saturated.find(vn);
          it != state.saturated.end() && it->second) {
        crossing[vn].push_back(f.id);
      }
    }
  }

  // Fill each saturated queue round-robin across its flows, then assign
  // per-flow sequence numbers in end-to-end delivery order — the hop
  // nearest the destination drains first — so the sink's duplicate
  // suppression sees a monotone sequence. Seeded packets use negative
  // sequence numbers; real source packets start at 0.
  std::map<VNode, std::vector<net::FlowId>> contents;
  std::map<VNode, std::vector<std::int64_t>> seqs;
  for (const auto& [vn, flows] : crossing) {
    auto& slots = contents[vn];
    for (int s = 0; s < queueCap; ++s) {
      slots.push_back(flows[static_cast<std::size_t>(s) % flows.size()]);
    }
    seqs[vn].assign(slots.size(), 0);
  }
  for (std::size_t i = 0; i < allFlows_.size(); ++i) {
    const net::FlowSpec& f = allFlows_[i];
    if (!isForeground(cfg_, f.id)) continue;
    const auto& path = ffPaths[i];
    std::vector<std::pair<const VNode*, std::size_t>> order;
    for (std::size_t h = path.size() - 1; h-- > 0;) {
      const VNode vn{path[h], f.dst};
      const auto it = contents.find(vn);
      if (it == contents.end()) continue;
      for (std::size_t s = 0; s < it->second.size(); ++s) {
        if (it->second[s] == f.id) order.emplace_back(&it->first, s);
      }
    }
    const auto k = static_cast<std::int64_t>(order.size());
    for (std::int64_t j = 0; j < k; ++j) {
      seqs.at(*order[static_cast<std::size_t>(j)].first)
          [order[static_cast<std::size_t>(j)].second] = -k + j;
    }
  }

  const TimePoint now = net_.simulator().now();
  for (const auto& [vn, slots] : contents) {
    const auto& slotSeqs = seqs.at(vn);
    for (std::size_t s = 0; s < slots.size(); ++s) {
      const net::FlowSpec& f = *specOf.at(slots[s]);
      auto p = std::make_shared<net::Packet>();
      p->flow = f.id;
      p->src = f.src;
      p->dst = f.dst;
      p->seq = slotSeqs[s];
      p->size = net_.config().packetSize;
      p->created = now;
      p->normalizedRate = muOf.at(f.id);
      net_.stack(vn.first).seedPacket(std::move(p));
      ++stats_.seededPackets;
    }
  }
}

void Engine::start() {
  if (!cfg_.background) return;
  applyBackgroundRates(bgFluid_->evaluate().rates);
  integralAt_ = net_.simulator().now();
  controller_.setPeriodHook(
      [this](const gmp::Snapshot& snap, int) { relinearize(snap); });
  bgLoad_->start();
}

void Engine::stop() {
  if (!cfg_.background) return;
  bgLoad_->stop();
  controller_.setPeriodHook(nullptr);
}

void Engine::relinearize(const gmp::Snapshot& snap) {
  accumulateTo(net_.simulator().now());
  // Fold the packet-measured foreground airtime into the fluid model's
  // clique constraints. The controller's contention links are exactly
  // the extraLinks the background fluid network was built with.
  for (const gmp::WLinkState& wl : snap.wlinks) {
    bgFluid_->setExternalOccupancy(wl.link, std::min(wl.occupancy, 1.0));
  }
  bgHarness_->step();
  std::map<net::FlowId, double> rates;
  for (const gmp::FlowState& fs : bgHarness_->lastSnapshot().flows) {
    rates[fs.id] = fs.ratePps;
  }
  applyBackgroundRates(rates);
  ++stats_.relinearizations;
}

void Engine::applyBackgroundRates(const std::map<net::FlowId, double>& rates) {
  currentRates_ = rates;
  // maxmin-lint: allow(hot-map) few senders, rebuilt once per period
  std::map<topo::NodeId, double> senderPps;
  for (const topo::NodeId n : bgSenders_) senderPps[n] = 0.0;
  const auto& paths = bgFluid_->paths();
  for (std::size_t i = 0; i < bgFlows_.size(); ++i) {
    const double r = rates.at(bgFlows_[i].id);
    for (std::size_t h = 0; h + 1 < paths[i].size(); ++h) {
      senderPps[paths[i][h]] += r;
    }
  }
  for (const auto& [node, pps] : senderPps) {
    bgLoad_->setSenderRate(node, pps);
  }
}

void Engine::accumulateTo(TimePoint t) {
  const double dt = (t - integralAt_).asSeconds();
  if (dt <= 0.0) return;
  for (auto& [id, packets] : integral_) {
    packets += currentRates_.at(id) * dt;
  }
  integralAt_ = t;
}

Engine::BackgroundSnapshot Engine::snapshotBackground() {
  accumulateTo(net_.simulator().now());
  return BackgroundSnapshot{net_.simulator().now(), integral_};
}

std::map<net::FlowId, double> Engine::ratesBetween(
    const BackgroundSnapshot& from, const BackgroundSnapshot& to) {
  const double dt = (to.at - from.at).asSeconds();
  MAXMIN_CHECK(dt > 0.0);
  std::map<net::FlowId, double> rates;
  for (const auto& [id, packets] : to.packets) {
    rates[id] = (packets - from.packets.at(id)) / dt;
  }
  return rates;
}

int Engine::backgroundHops(net::FlowId id) const {
  MAXMIN_CHECK(bgFluid_.has_value());
  const auto& flows = bgFluid_->flows();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].id == id) {
      return static_cast<int>(bgFluid_->paths()[i].size()) - 1;
    }
  }
  MAXMIN_CHECK_MSG(false, "unknown background flow " << id);
  return 0;
}

}  // namespace maxmin::hybrid
