// Interface the MAC implements to hear from the medium.
#pragma once

#include "phys/frame.hpp"

namespace maxmin::phys {

class RadioListener {
 public:
  virtual ~RadioListener() = default;

  /// Sensed energy rose above zero (channel busy). Own transmissions are
  /// not reported; the MAC knows when it is transmitting.
  virtual void onChannelBusy() = 0;

  /// Sensed energy fell to zero (channel idle).
  virtual void onChannelIdle() = 0;

  /// A frame within decode range completed without overlap. Delivered to
  /// every node in decode range, not just the addressee — overhearing
  /// drives NAV and the paper's buffer-state caching.
  virtual void onFrameReceived(const Frame& frame) = 0;

  /// A frame within decode range completed but was corrupted by overlap
  /// (collision / hidden terminal). Triggers EIFS deferral.
  virtual void onFrameCorrupted(const Frame& frame) = 0;
};

}  // namespace maxmin::phys
