// ns-2-style frame trace: records every transmission, delivery and
// corruption on the medium, with filtering, a text dump, and per-link
// summary statistics (exchange counts, corruption ratios).
//
// Attach with medium.setObserver(&trace). Tracing a long saturated run
// records millions of events; use the filters or the bounded capacity.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "phys/medium.hpp"
#include "topology/link.hpp"

namespace maxmin::phys {

class FrameTrace final : public MediumObserver {
 public:
  enum class EventKind { kTxStart, kDelivery, kCorruption };

  struct Event {
    TimePoint at;
    EventKind kind;
    FrameKind frame;
    topo::NodeId transmitter = topo::kNoNode;
    topo::NodeId addressee = topo::kNoNode;  // kNoNode = broadcast
    topo::NodeId receiver = topo::kNoNode;   // for delivery/corruption
  };

  /// `capacity`: maximum retained events; older events are discarded
  /// (the summary statistics keep counting regardless).
  explicit FrameTrace(std::size_t capacity = 100000);

  /// Record only events involving this node (as transmitter or receiver).
  void filterNode(std::optional<topo::NodeId> node) { nodeFilter_ = node; }
  /// Record only events of this frame kind.
  void filterKind(std::optional<FrameKind> kind) { kindFilter_ = kind; }

  const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::uint64_t totalObserved() const { return totalObserved_; }

  /// Per directed wireless link (transmitter -> addressee): frames
  /// delivered and corrupted at the addressee.
  struct LinkStats {
    std::int64_t delivered = 0;
    std::int64_t corrupted = 0;
    [[nodiscard]] double corruptionRatio() const {
      const auto total = delivered + corrupted;
      return total == 0 ? 0.0
                        : static_cast<double>(corrupted) / total;
    }
  };
  /// Hashed for O(1) per-frame updates on the observer hot path; use
  /// sortedLinkStats() when a deterministic order is needed.
  const std::unordered_map<topo::Link, LinkStats, topo::LinkHash>& linkStats()
      const {
    return linkStats_;
  }

  /// Link stats ordered by (transmitter, addressee) — for reports and any
  /// output that must be reproducible. Sorting happens here, once, instead
  /// of on every frame.
  [[nodiscard]] std::vector<std::pair<topo::Link, LinkStats>> sortedLinkStats() const;

  /// One line per retained event: "t=<us> KIND FRAME tx>addr [rx=...]".
  void dump(std::ostream& os) const;

  void clear();

  // MediumObserver
  void onTransmissionStart(const Frame& frame, TimePoint at) override;
  void onDelivery(const Frame& frame, topo::NodeId receiver,
                  TimePoint at) override;
  void onCorruption(const Frame& frame, topo::NodeId receiver,
                    TimePoint at) override;

 private:
  [[nodiscard]] bool passes(const Frame& frame, topo::NodeId receiver) const;
  void record(Event event);

  std::size_t capacity_;
  std::vector<Event> events_;
  std::optional<topo::NodeId> nodeFilter_;
  std::optional<FrameKind> kindFilter_;
  std::unordered_map<topo::Link, LinkStats, topo::LinkHash> linkStats_;
  std::uint64_t totalObserved_ = 0;
};

}  // namespace maxmin::phys
