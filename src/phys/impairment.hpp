// Stochastic channel impairments, layered under the protocol-interference
// collision model: frames that would decode cleanly can still be lost to
// channel error. Two processes compose per directed link:
//
//   * an independent per-frame packet error rate (PER), and
//   * a Gilbert–Elliott two-state Markov channel (good/bad) advanced once
//     per frame, with a per-state loss probability — the standard model
//     for bursty wireless loss.
//
// Impairments can target all frames, only broadcast control frames, or
// only data-path frames, which is what lets experiments stress GMP's
// control plane (dissemination, piggybacked buffer states) separately
// from the data plane.
//
// A dropped frame is reported to the receiver as a corrupted frame (CRC
// failure), exactly like a collision: the MAC's EIFS defer and retry
// machinery see nothing new.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "phys/frame.hpp"
#include "topology/link.hpp"
#include "util/rng.hpp"

namespace maxmin::phys {

/// Gilbert–Elliott channel parameters. The defaults (see DESIGN.md) give
/// ~20% average loss in bursts a few frames long when enabled with
/// pGoodToBad > 0.
struct GilbertElliottParams {
  double pGoodToBad = 0.0;  ///< per-frame transition probability
  double pBadToGood = 0.25;
  double lossGood = 0.0;
  double lossBad = 1.0;

  [[nodiscard]] bool enabled() const { return pGoodToBad > 0.0; }
  /// Long-run average loss probability of the two-state chain.
  [[nodiscard]] double steadyStateLoss() const;
};

struct ImpairmentConfig {
  enum class Scope {
    kAllFrames,
    kControlFrames,  ///< broadcast kControl frames only
    kDataFrames,     ///< kData frames only (MAC handshakes unaffected)
  };

  double per = 0.0;  ///< independent per-frame error rate
  GilbertElliottParams gilbert;
  Scope scope = Scope::kAllFrames;

  [[nodiscard]] bool enabled() const { return per > 0.0 || gilbert.enabled(); }
};

const char* impairmentScopeName(ImpairmentConfig::Scope scope);

class ChannelImpairments {
 public:
  ChannelImpairments(ImpairmentConfig config, Rng rng);

  const ImpairmentConfig& config() const { return config_; }

  /// Decide the fate of one frame on the directed link from -> to.
  /// Advances the link's Gilbert–Elliott state; draws from the
  /// impairment RNG stream only (never perturbs other subsystems).
  bool shouldDrop(topo::NodeId from, topo::NodeId to, FrameKind kind);

  [[nodiscard]] std::int64_t framesDropped() const { return framesDropped_; }

 private:
  [[nodiscard]] bool inScope(FrameKind kind) const;

  ImpairmentConfig config_;
  Rng rng_;
  /// Per-directed-link channel state: true = bad.
  std::unordered_map<topo::Link, bool, topo::LinkHash> badState_;
  std::int64_t framesDropped_ = 0;
};

}  // namespace maxmin::phys
