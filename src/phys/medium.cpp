#include "phys/medium.hpp"

#include "util/check.hpp"

namespace maxmin::phys {

const char* frameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kRts: return "RTS";
    case FrameKind::kCts: return "CTS";
    case FrameKind::kData: return "DATA";
    case FrameKind::kAck: return "ACK";
    case FrameKind::kControl: return "CTRL";
  }
  return "?";
}

Medium::Medium(sim::Simulator& sim, const topo::Topology& topo)
    : sim_{sim}, topo_{topo} {
  const auto n = static_cast<std::size_t>(topo.numNodes());
  radios_.assign(n, nullptr);
  energy_.assign(n, 0);
  transmitting_.assign(n, false);
  inTxRange_.assign(n, {});
  inCsRange_.assign(n, {});
  for (topo::NodeId a = 0; a < topo.numNodes(); ++a) {
    for (topo::NodeId b = 0; b < topo.numNodes(); ++b) {
      if (a == b) continue;
      if (topo.areNeighbors(a, b))
        inTxRange_[static_cast<std::size_t>(a)].push_back(b);
      if (topo.inCsRange(a, b))
        inCsRange_[static_cast<std::size_t>(a)].push_back(b);
    }
  }
}

void Medium::attachRadio(topo::NodeId id, RadioListener* listener) {
  MAXMIN_CHECK(listener != nullptr);
  auto& slot = radios_.at(static_cast<std::size_t>(id));
  MAXMIN_CHECK_MSG(slot == nullptr, "radio " << id << " attached twice");
  slot = listener;
}

void Medium::raiseEnergy(topo::NodeId at) {
  auto& e = energy_.at(static_cast<std::size_t>(at));
  if (++e == 1) {
    if (auto* r = radios_[static_cast<std::size_t>(at)]) r->onChannelBusy();
  }
}

void Medium::lowerEnergy(topo::NodeId at) {
  auto& e = energy_.at(static_cast<std::size_t>(at));
  MAXMIN_CHECK(e > 0);
  if (--e == 0) {
    if (auto* r = radios_[static_cast<std::size_t>(at)]) r->onChannelIdle();
  }
}

void Medium::startTransmission(const Frame& frame) {
  const topo::NodeId sender = frame.transmitter;
  MAXMIN_CHECK(sender >= 0 && sender < topo_.numNodes());
  MAXMIN_CHECK_MSG(!transmitting_.at(static_cast<std::size_t>(sender)),
                   "node " << sender << " already transmitting");
  MAXMIN_CHECK(frame.duration > Duration::zero());
  MAXMIN_CHECK(radios_.at(static_cast<std::size_t>(sender)) != nullptr);

  transmitting_[static_cast<std::size_t>(sender)] = true;

  ActiveTx tx;
  tx.frame = frame;
  tx.end = sim_.now() + frame.duration;

  // A crashed sender's MAC still walks its transmit state machine (it
  // cannot know it is dead), but its radio emits nothing: no energy, no
  // receptions, no interference. The timing of the null transmission is
  // preserved so the MAC's busy/idle invariants survive recovery.
  tx.silent = faults_ != nullptr && !faults_->nodeUp(sender);
  if (tx.silent) {
    ++framesSuppressed_;
    std::size_t silentSlot = active_.size();
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i].frame.transmitter == topo::kNoNode) {
        silentSlot = i;
        break;
      }
    }
    if (silentSlot == active_.size()) {
      active_.push_back(std::move(tx));
    } else {
      active_[silentSlot] = std::move(tx);
    }
    // Fire-and-forget: a transmission always runs to completion (a crash
    // makes it silent, never cancels it).
    static_cast<void>(sim_.schedule(
        frame.duration, [this, silentSlot] { finishTransmission(silentSlot); }));
    return;
  }

  // Pending receptions: every node in decode range. Corrupt on arrival if
  // the receiver already senses other energy or is itself transmitting.
  for (topo::NodeId r : inTxRange_[static_cast<std::size_t>(sender)]) {
    const bool corrupted = transmitting_[static_cast<std::size_t>(r)] ||
                           energy_[static_cast<std::size_t>(r)] > 0;
    tx.receptions.push_back(PendingRx{r, corrupted});
  }

  // This transmission corrupts any in-flight reception at a node that
  // senses it.
  for (ActiveTx& other : active_) {
    if (other.frame.transmitter == topo::kNoNode) continue;  // finished slot
    for (PendingRx& rx : other.receptions) {
      if (!rx.corrupted && topo_.inCsRange(sender, rx.receiver)) {
        rx.corrupted = true;
      }
    }
  }

  // A node beginning to transmit loses anything it was receiving.
  for (ActiveTx& other : active_) {
    if (other.frame.transmitter == topo::kNoNode) continue;
    for (PendingRx& rx : other.receptions) {
      if (rx.receiver == sender) rx.corrupted = true;
    }
  }

  for (topo::NodeId n : inCsRange_[static_cast<std::size_t>(sender)]) {
    raiseEnergy(n);
  }

  // Find or create a slot for the active transmission.
  std::size_t slot = active_.size();
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].frame.transmitter == topo::kNoNode) {
      slot = i;
      break;
    }
  }
  if (slot == active_.size()) {
    active_.push_back(std::move(tx));
  } else {
    active_[slot] = std::move(tx);
  }
  if (observer_ != nullptr) observer_->onTransmissionStart(frame, sim_.now());
  // Fire-and-forget: completion is unconditional (see above).
  static_cast<void>(
      sim_.schedule(frame.duration, [this, slot] { finishTransmission(slot); }));
}

void Medium::finishTransmission(std::size_t slot) {
  // Move the record out and free the slot before running callbacks, which
  // may start new transmissions immediately (SIFS=0 is not allowed, but
  // zero-delay follow-ups in tests are).
  ActiveTx tx = std::move(active_.at(slot));
  active_[slot].frame.transmitter = topo::kNoNode;
  active_[slot].receptions.clear();

  const topo::NodeId sender = tx.frame.transmitter;
  MAXMIN_CHECK(sender != topo::kNoNode);
  transmitting_[static_cast<std::size_t>(sender)] = false;

  if (tx.silent) return;  // nothing was radiated

  for (topo::NodeId n : inCsRange_[static_cast<std::size_t>(sender)]) {
    lowerEnergy(n);
  }

  for (const PendingRx& rx : tx.receptions) {
    auto* radio = radios_[static_cast<std::size_t>(rx.receiver)];
    if (radio == nullptr) continue;
    // A crashed receiver (or a cut link) hears nothing at all — no
    // decode, no CRC failure, no EIFS. The receiver's node state was
    // checked at delivery time, so a crash mid-flight loses the frame.
    if (faults_ != nullptr && (!faults_->nodeUp(rx.receiver) ||
                               !faults_->linkUp(sender, rx.receiver))) {
      ++framesSuppressed_;
      continue;
    }
    // Receptions that end while the receiver transmits are lost even if
    // the overlap began after the corruption scan (same-instant starts).
    bool corrupt =
        rx.corrupted || transmitting_[static_cast<std::size_t>(rx.receiver)];
    // Channel impairment: a frame that survived interference can still
    // fail its CRC. Decided per (link, frame) so loss is bursty per link.
    if (!corrupt && impairments_ != nullptr &&
        impairments_->shouldDrop(sender, rx.receiver, tx.frame.kind)) {
      ++framesImpaired_;
      corrupt = true;
    }
    if (corrupt) {
      ++framesCorrupted_;
      if (observer_ != nullptr) {
        observer_->onCorruption(tx.frame, rx.receiver, sim_.now());
      }
      radio->onFrameCorrupted(tx.frame);
    } else {
      ++framesDelivered_;
      if (observer_ != nullptr) {
        observer_->onDelivery(tx.frame, rx.receiver, sim_.now());
      }
      radio->onFrameReceived(tx.frame);
    }
  }
}

}  // namespace maxmin::phys
