#include "phys/medium.hpp"

#include <algorithm>
#include <bit>
#include <span>

#include "util/check.hpp"

namespace maxmin::phys {

const char* frameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kRts: return "RTS";
    case FrameKind::kCts: return "CTS";
    case FrameKind::kData: return "DATA";
    case FrameKind::kAck: return "ACK";
    case FrameKind::kControl: return "CTRL";
  }
  return "?";
}

Medium::Medium(sim::Simulator& sim, const topo::Topology& topo)
    : sim_{sim}, topo_{topo} {
  const auto n = static_cast<std::size_t>(topo.numNodes());
  radios_.assign(n, nullptr);
  energy_.assign(n, 0);
  transmitting_.assign(n, 0);

  // Range relations are read straight from the topology's CSR rows; the
  // only derived quantity is the largest tx out-degree (spill sizing).
  for (std::size_t a = 0; a < n; ++a) {
    maxTxDegree_ = std::max(
        maxTxDegree_, topo.neighbors(static_cast<topo::NodeId>(a)).size());
  }

  // Preallocate every per-frame structure to its lifetime bound: at most
  // one active transmission per node, at most in-degree concurrent
  // receptions per receiver. Steady-state start/finish never allocates.
  active_.reserve(n);
  freeSlots_.reserve(n);
  rxAt_.resize(n);
  for (std::size_t a = 0; a < n; ++a) {
    rxAt_[a].reserve(topo.neighbors(static_cast<topo::NodeId>(a)).size());
  }
  rxPendingBits_.assign((n + 63) / 64, 0);
  finishScratch_.reserve(maxTxDegree_);
}

void Medium::attachRadio(topo::NodeId id, RadioListener* listener) {
  MAXMIN_CHECK(listener != nullptr);
  auto& slot = radios_.at(static_cast<std::size_t>(id));
  MAXMIN_CHECK_MSG(slot == nullptr, "radio " << id << " attached twice");
  slot = listener;
}

void Medium::bindShard(ShardBinding binding) {
  MAXMIN_CHECK(binding.owned != nullptr && binding.cut != nullptr);
  MAXMIN_CHECK(static_cast<bool>(binding.exportTx));
  shard_ = std::move(binding);
}

void Medium::raiseEnergy(topo::NodeId at) {
  auto& e = energy_[static_cast<std::size_t>(at)];
  if (++e == 1) {
    if (auto* r = radios_[static_cast<std::size_t>(at)]) r->onChannelBusy();
  }
}

void Medium::lowerEnergy(topo::NodeId at) {
  auto& e = energy_[static_cast<std::size_t>(at)];
  MAXMIN_CHECK(e > 0);
  if (--e == 0) {
    if (auto* r = radios_[static_cast<std::size_t>(at)]) r->onChannelIdle();
  }
}

std::uint32_t Medium::acquireSlot() {
  if (!freeSlots_.empty()) {
    const std::uint32_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    return slot;
  }
  MAXMIN_CHECK_MSG(active_.size() < active_.capacity(),
                   "more concurrent transmissions than nodes");
  active_.emplace_back();
  return static_cast<std::uint32_t>(active_.size() - 1);
}

Medium::PendingRx* Medium::acquireRxStorage(ActiveTx& tx,
                                            std::uint32_t degree) {
  if (degree <= kInlineRx) {
    tx.spillBlock = kNoBlock;
    return tx.inlineRx.data();
  }
  if (freeBlocks_.empty()) {
    tx.spillBlock = static_cast<std::uint32_t>(spillArena_.size() / maxTxDegree_);
    spillArena_.resize(spillArena_.size() + maxTxDegree_);
  } else {
    tx.spillBlock = freeBlocks_.back();
    freeBlocks_.pop_back();
  }
  return receptions(tx);
}

void Medium::releaseRxStorage(ActiveTx& tx) {
  if (tx.spillBlock != kNoBlock) {
    freeBlocks_.push_back(tx.spillBlock);
    tx.spillBlock = kNoBlock;
  }
  tx.rxCount = 0;
}

void Medium::indexReceptions(std::uint32_t slot) {
  ActiveTx& tx = active_[slot];
  const PendingRx* rxs = receptions(tx);
  for (std::uint32_t i = 0; i < tx.rxCount; ++i) {
    const auto r = static_cast<std::size_t>(rxs[i].receiver);
    if (rxAt_[r].empty()) {
      rxPendingBits_[r / 64] |= std::uint64_t{1} << (r % 64);
    }
    rxAt_[r].push_back(RxRef{slot, i});
  }
}

void Medium::unindexReception(topo::NodeId receiver, std::uint32_t slot) {
  auto& refs = rxAt_[static_cast<std::size_t>(receiver)];
  for (auto& ref : refs) {
    if (ref.slot == slot) {
      ref = refs.back();
      refs.pop_back();
      break;
    }
  }
  if (refs.empty()) {
    const auto r = static_cast<std::size_t>(receiver);
    rxPendingBits_[r / 64] &= ~(std::uint64_t{1} << (r % 64));
  }
}

void Medium::startTransmission(const Frame& frame) {
  const topo::NodeId sender = frame.transmitter;
  MAXMIN_CHECK(sender >= 0 && sender < topo_.numNodes());
  MAXMIN_CHECK_MSG(transmitting_[static_cast<std::size_t>(sender)] == 0,
                   "node " << sender << " already transmitting");
  MAXMIN_CHECK(frame.duration > Duration::zero());
  MAXMIN_CHECK(radios_[static_cast<std::size_t>(sender)] != nullptr);

  transmitting_[static_cast<std::size_t>(sender)] = 1;

  const std::uint32_t slot = acquireSlot();
  ActiveTx& tx = active_[slot];
  tx.frame = frame;
  tx.end = sim_.now() + frame.duration;
  tx.rxCount = 0;
  tx.spillBlock = kNoBlock;

  // A crashed sender's MAC still walks its transmit state machine (it
  // cannot know it is dead), but its radio emits nothing: no energy, no
  // receptions, no interference. The timing of the null transmission is
  // preserved so the MAC's busy/idle invariants survive recovery.
  tx.silent = faults_ != nullptr && !faults_->nodeUp(sender);
  if (tx.silent) {
    ++framesSuppressed_;
    // Fire-and-forget: a transmission always runs to completion (a crash
    // makes it silent, never cancels it).
    sim_.post(frame.duration, [this, slot] { finishTransmission(slot); });
    return;
  }

  applyStartEffects(slot, sender);

  if (observer_ != nullptr) observer_->onTransmissionStart(frame, sim_.now());
  // Fire-and-forget: completion is unconditional (see above).
  sim_.post(frame.duration, [this, slot] { finishTransmission(slot); });

  // A cut sender's radiation reaches nodes owned by adjacent lanes: ship
  // the frame with the exact keys of this (start) event and the finish
  // event just posted, so the importing lane replays both at their
  // canonical positions. Non-cut senders are invisible off-strip by
  // construction (strips are >= csRange wide) — nothing to export.
  if (shard_.cut != nullptr &&
      shard_.cut[static_cast<std::size_t>(sender)] != 0) {
    shard_.exportTx(frame, sim_.currentEventKey(), sim_.lastScheduledKey());
  }
}

void Medium::corruptReceptionsSensing(topo::NodeId sender) {
  // This transmission corrupts any in-flight reception at a node that
  // senses it — never a scan of every active transmission's reception
  // list. Dense topologies intersect the sender's packed carrier-sense
  // row with the pending-reception bitset (word-wise AND); sparse ones
  // (no n²-bit matrices) probe one pending bit per cs CSR neighbor,
  // O(cs-degree) regardless of N. In sharded mode the pending bitset
  // only ever holds owned nodes' bits, so no ownership filter is needed.
  if (topo_.hasDenseAdjacency()) {
    const std::uint64_t* csRow = topo_.csAdjacency().row(sender);
    for (std::size_t w = 0; w < rxPendingBits_.size(); ++w) {
      std::uint64_t hits = csRow[w] & rxPendingBits_[w];
      while (hits != 0) {
        const auto r = static_cast<std::size_t>(w * 64) +
                       static_cast<std::size_t>(std::countr_zero(hits));
        hits &= hits - 1;
        for (const RxRef& ref : rxAt_[r]) {
          receptions(active_[ref.slot])[ref.index].corrupted = true;
        }
      }
    }
  } else {
    for (const topo::NodeId nb : topo_.csNeighbors(sender)) {
      const auto r = static_cast<std::size_t>(nb);
      if ((rxPendingBits_[r / 64] & (std::uint64_t{1} << (r % 64))) == 0) {
        continue;
      }
      for (const RxRef& ref : rxAt_[r]) {
        receptions(active_[ref.slot])[ref.index].corrupted = true;
      }
    }
  }
}

void Medium::applyStartEffects(std::uint32_t slot, topo::NodeId sender) {
  ActiveTx& tx = active_[slot];

  // Pending receptions: every owned node in decode range. Corrupt on
  // arrival if the receiver already senses other energy or is itself
  // transmitting. Receivers owned by other lanes are filled in by those
  // lanes' imports of this same transmission.
  const std::span<const topo::NodeId> txNb = topo_.neighbors(sender);
  PendingRx* rxs =
      acquireRxStorage(tx, static_cast<std::uint32_t>(txNb.size()));
  std::uint32_t count = 0;
  for (const topo::NodeId r : txNb) {
    if (!ownsNode(r)) continue;
    const bool corrupted = transmitting_[static_cast<std::size_t>(r)] != 0 ||
                           energy_[static_cast<std::size_t>(r)] > 0;
    rxs[count++] = PendingRx{r, corrupted};
  }
  tx.rxCount = count;

  corruptReceptionsSensing(sender);

  // A node beginning to transmit loses anything it was receiving (empty
  // for a foreign sender: its receptions live in the exporting lane).
  for (const RxRef& ref : rxAt_[static_cast<std::size_t>(sender)]) {
    receptions(active_[ref.slot])[ref.index].corrupted = true;
  }

  for (const topo::NodeId nb : topo_.csNeighbors(sender)) {
    if (ownsNode(nb)) raiseEnergy(nb);
  }

  indexReceptions(slot);
}

void Medium::applyImportedStart(const Frame& frame, sim::EventKey finishKey) {
  MAXMIN_CHECK(shard_.owned != nullptr);
  const topo::NodeId sender = frame.transmitter;
  MAXMIN_CHECK(sender >= 0 && sender < topo_.numNodes());
  MAXMIN_CHECK_MSG(!ownsNode(sender), "imported frame from an owned sender");
  MAXMIN_CHECK(frame.duration > Duration::zero());

  // The foreign sender's busy flag is kept for state symmetry with the
  // exporting lane (nothing in this lane reads it: a foreign node is
  // never a local receiver and never transmits locally).
  transmitting_[static_cast<std::size_t>(sender)] = 1;

  const std::uint32_t slot = acquireSlot();
  ActiveTx& tx = active_[slot];
  tx.frame = frame;
  tx.end = sim_.now() + frame.duration;
  tx.rxCount = 0;
  tx.spillBlock = kNoBlock;
  tx.silent = false;  // silent (crashed-sender) transmissions never export

  applyStartEffects(slot, sender);

  // Finish at the exported key: deliveries at owned receivers interleave
  // with local events exactly as the unsharded total order dictates.
  static_cast<void>(sim_.scheduleImported(
      finishKey, [this, slot] { finishTransmission(slot); }));
}

void Medium::finishTransmission(std::size_t slot) {
  ActiveTx& tx = active_[slot];
  const topo::NodeId sender = tx.frame.transmitter;
  MAXMIN_CHECK(sender != topo::kNoNode);
  transmitting_[static_cast<std::size_t>(sender)] = 0;

  // Move the frame and receptions out and recycle the record before
  // running callbacks, which may start new transmissions immediately
  // (SIFS=0 is not allowed, but zero-delay follow-ups in tests are) and
  // reuse this slot or its spill block.
  const bool silent = tx.silent;
  const Frame frame = std::move(tx.frame);
  tx.frame.transmitter = topo::kNoNode;
  const PendingRx* rxs = receptions(tx);
  finishScratch_.assign(rxs, rxs + tx.rxCount);
  for (const PendingRx& rx : finishScratch_) {
    unindexReception(rx.receiver, static_cast<std::uint32_t>(slot));
  }
  releaseRxStorage(tx);
  freeSlots_.push_back(static_cast<std::uint32_t>(slot));

  if (silent) return;  // nothing was radiated

  for (const topo::NodeId nb : topo_.csNeighbors(sender)) {
    if (ownsNode(nb)) lowerEnergy(nb);
  }

  for (const PendingRx& rx : finishScratch_) {
    auto* radio = radios_[static_cast<std::size_t>(rx.receiver)];
    if (radio == nullptr) continue;
    // A crashed receiver (or a cut link) hears nothing at all — no
    // decode, no CRC failure, no EIFS. The receiver's node state was
    // checked at delivery time, so a crash mid-flight loses the frame.
    if (faults_ != nullptr && (!faults_->nodeUp(rx.receiver) ||
                               !faults_->linkUp(sender, rx.receiver))) {
      ++framesSuppressed_;
      continue;
    }
    // Receptions that end while the receiver transmits are lost even if
    // the overlap began after the corruption scan (same-instant starts).
    bool corrupt =
        rx.corrupted || transmitting_[static_cast<std::size_t>(rx.receiver)] != 0;
    // Channel impairment: a frame that survived interference can still
    // fail its CRC. Decided per (link, frame) so loss is bursty per link.
    if (!corrupt && impairments_ != nullptr &&
        impairments_->shouldDrop(sender, rx.receiver, frame.kind)) {
      ++framesImpaired_;
      corrupt = true;
    }
    if (corrupt) {
      ++framesCorrupted_;
      if (observer_ != nullptr) {
        observer_->onCorruption(frame, rx.receiver, sim_.now());
      }
      radio->onFrameCorrupted(frame);
    } else {
      ++framesDelivered_;
      if (observer_ != nullptr) {
        observer_->onDelivery(frame, rx.receiver, sim_.now());
      }
      radio->onFrameReceived(frame);
    }
  }
}

}  // namespace maxmin::phys
