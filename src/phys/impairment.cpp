#include "phys/impairment.hpp"

#include "util/check.hpp"

namespace maxmin::phys {

double GilbertElliottParams::steadyStateLoss() const {
  if (!enabled()) return 0.0;
  const double denom = pGoodToBad + pBadToGood;
  MAXMIN_CHECK(denom > 0.0);
  const double piBad = pGoodToBad / denom;
  return (1.0 - piBad) * lossGood + piBad * lossBad;
}

const char* impairmentScopeName(ImpairmentConfig::Scope scope) {
  switch (scope) {
    case ImpairmentConfig::Scope::kAllFrames: return "all";
    case ImpairmentConfig::Scope::kControlFrames: return "control";
    case ImpairmentConfig::Scope::kDataFrames: return "data";
  }
  return "?";
}

namespace {

void checkProbability(double p) { MAXMIN_CHECK(p >= 0.0 && p <= 1.0); }

}  // namespace

ChannelImpairments::ChannelImpairments(ImpairmentConfig config, Rng rng)
    : config_{config}, rng_{rng} {
  checkProbability(config_.per);
  checkProbability(config_.gilbert.pGoodToBad);
  checkProbability(config_.gilbert.pBadToGood);
  checkProbability(config_.gilbert.lossGood);
  checkProbability(config_.gilbert.lossBad);
  if (config_.gilbert.enabled()) {
    MAXMIN_CHECK_MSG(config_.gilbert.pBadToGood > 0.0,
                     "a bad state with no exit absorbs the link forever");
  }
}

bool ChannelImpairments::inScope(FrameKind kind) const {
  switch (config_.scope) {
    case ImpairmentConfig::Scope::kAllFrames: return true;
    case ImpairmentConfig::Scope::kControlFrames:
      return kind == FrameKind::kControl;
    case ImpairmentConfig::Scope::kDataFrames:
      return kind == FrameKind::kData;
  }
  return true;
}

bool ChannelImpairments::shouldDrop(topo::NodeId from, topo::NodeId to,
                                    FrameKind kind) {
  if (!inScope(kind)) return false;

  double lossProbability = config_.per;
  if (config_.gilbert.enabled()) {
    bool& bad = badState_[topo::Link{from, to}];
    bad = rng_.chance(bad ? 1.0 - config_.gilbert.pBadToGood
                          : config_.gilbert.pGoodToBad);
    const double stateLoss =
        bad ? config_.gilbert.lossBad : config_.gilbert.lossGood;
    // Independent processes: lost if either one strikes.
    lossProbability = lossProbability + stateLoss - lossProbability * stateLoss;
  }
  if (lossProbability <= 0.0) return false;
  const bool drop = rng_.chance(lossProbability);
  if (drop) ++framesDropped_;
  return drop;
}

}  // namespace maxmin::phys
