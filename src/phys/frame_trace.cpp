#include "phys/frame_trace.hpp"

#include <algorithm>
#include <ostream>

namespace maxmin::phys {
namespace {

const char* eventName(FrameTrace::EventKind kind) {
  switch (kind) {
    case FrameTrace::EventKind::kTxStart: return "TX  ";
    case FrameTrace::EventKind::kDelivery: return "RX  ";
    case FrameTrace::EventKind::kCorruption: return "COLL";
  }
  return "?";
}

}  // namespace

FrameTrace::FrameTrace(std::size_t capacity) : capacity_{capacity} {}

bool FrameTrace::passes(const Frame& frame, topo::NodeId receiver) const {
  if (kindFilter_ && frame.kind != *kindFilter_) return false;
  if (nodeFilter_ && frame.transmitter != *nodeFilter_ &&
      frame.addressee != *nodeFilter_ && receiver != *nodeFilter_) {
    return false;
  }
  return true;
}

void FrameTrace::record(Event event) {
  ++totalObserved_;
  if (events_.size() >= capacity_) {
    // Drop the oldest half to amortize (keeps the trace bounded without
    // per-event shifting).
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(capacity_ / 2));
  }
  events_.push_back(event);
}

void FrameTrace::onTransmissionStart(const Frame& frame, TimePoint at) {
  if (!passes(frame, topo::kNoNode)) return;
  record(Event{at, EventKind::kTxStart, frame.kind, frame.transmitter,
               frame.addressee, topo::kNoNode});
}

void FrameTrace::onDelivery(const Frame& frame, topo::NodeId receiver,
                            TimePoint at) {
  if (receiver == frame.addressee) {
    ++linkStats_[topo::Link{frame.transmitter, frame.addressee}].delivered;
  }
  if (!passes(frame, receiver)) return;
  record(Event{at, EventKind::kDelivery, frame.kind, frame.transmitter,
               frame.addressee, receiver});
}

void FrameTrace::onCorruption(const Frame& frame, topo::NodeId receiver,
                              TimePoint at) {
  if (receiver == frame.addressee) {
    ++linkStats_[topo::Link{frame.transmitter, frame.addressee}].corrupted;
  }
  if (!passes(frame, receiver)) return;
  record(Event{at, EventKind::kCorruption, frame.kind, frame.transmitter,
               frame.addressee, receiver});
}

std::vector<std::pair<topo::Link, FrameTrace::LinkStats>>
FrameTrace::sortedLinkStats() const {
  std::vector<std::pair<topo::Link, LinkStats>> out{linkStats_.begin(),
                                                    linkStats_.end()};
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void FrameTrace::dump(std::ostream& os) const {
  for (const Event& e : events_) {
    os << "t=" << e.at.asMicros() << "us " << eventName(e.kind) << ' '
       << frameKindName(e.frame) << ' ' << e.transmitter << '>';
    if (e.addressee == topo::kNoNode) {
      os << '*';
    } else {
      os << e.addressee;
    }
    if (e.receiver != topo::kNoNode) os << " rx=" << e.receiver;
    os << '\n';
  }
}

void FrameTrace::clear() {
  events_.clear();
  linkStats_.clear();
  totalObserved_ = 0;
}

}  // namespace maxmin::phys
