// The unit of transmission on the medium.
//
// A Frame is "what is on the air": 802.11 frame kind, addressing, airtime,
// the NAV reservation overhearers should honor, the encapsulated network
// packet (DATA only), and the piggyback fields the paper's congestion
// avoidance and measurement machinery rides on (buffer-state bits per
// destination queue, per §2.2/§6.2).
#pragma once

#include <memory>
#include <vector>

#include "topology/topology.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace maxmin::net {
struct Packet;  // defined in net/packet.hpp; opaque at this layer
}

namespace maxmin::phys {

enum class FrameKind {
  kRts,
  kCts,
  kData,
  kAck,
  kControl,  ///< broadcast control frame (no RTS/CTS, no ACK)
};

const char* frameKindName(FrameKind kind);

/// Base class for payloads of kControl broadcast frames. Control-plane
/// modules (e.g. GMP's link-state dissemination) derive their message
/// types from this and downcast on reception.
struct ControlMessage {
  virtual ~ControlMessage() = default;
};

/// Buffer state advertised by the transmitter: one bit per destination
/// queue ("full" = no free slot). The paper piggybacks exactly this on
/// every RTS/CTS/DATA/ACK so upstream neighbors can hold packets.
struct BufferStateAd {
  topo::NodeId destination = topo::kNoNode;
  bool full = false;
};

struct Frame {
  FrameKind kind = FrameKind::kData;
  topo::NodeId transmitter = topo::kNoNode;
  topo::NodeId addressee = topo::kNoNode;

  /// Airtime of this frame including PLCP preamble/header.
  Duration duration = Duration::zero();

  /// Remaining reservation after this frame ends (802.11 duration field):
  /// overhearers set NAV to frame-end + navAfterEnd.
  Duration navAfterEnd = Duration::zero();

  /// Payload packet; non-null only for DATA frames.
  std::shared_ptr<const net::Packet> packet;

  /// Control payload; non-null only for kControl broadcast frames.
  std::shared_ptr<const ControlMessage> control;

  /// Piggybacked per-destination buffer-state bits of the transmitter.
  std::vector<BufferStateAd> bufferState;
};

}  // namespace maxmin::phys
