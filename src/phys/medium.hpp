// Shared wireless medium with the protocol-interference collision model
// used by ns-2-era 802.11 studies (and by the paper):
//
//  * frames decode within txRange;
//  * energy is sensed within csRange (>= txRange);
//  * a reception is corrupted iff any other transmission whose sender is
//    within csRange of the receiver overlaps it in time, or the receiver
//    itself transmits during it (half-duplex). No capture effect.
//
// Propagation delay is zero: at 250 m it is under 1 us, below our clock
// resolution and irrelevant to the rate dynamics studied here.
#pragma once

#include <cstdint>
#include <vector>

#include "phys/frame.hpp"
#include "phys/impairment.hpp"
#include "phys/radio.hpp"
#include "sim/fault_plane.hpp"
#include "sim/simulator.hpp"
#include "topology/topology.hpp"

namespace maxmin::phys {

/// Passive observer of everything that happens on the medium; the hook
/// behind phys::FrameTrace. All callbacks are optional.
class MediumObserver {
 public:
  virtual ~MediumObserver() = default;
  virtual void onTransmissionStart(const Frame& frame, TimePoint at) {
    (void)frame;
    (void)at;
  }
  virtual void onDelivery(const Frame& frame, topo::NodeId receiver,
                          TimePoint at) {
    (void)frame;
    (void)receiver;
    (void)at;
  }
  virtual void onCorruption(const Frame& frame, topo::NodeId receiver,
                            TimePoint at) {
    (void)frame;
    (void)receiver;
    (void)at;
  }
};

class Medium {
 public:
  Medium(sim::Simulator& sim, const topo::Topology& topo);

  /// Attach a passive observer (nullptr detaches). Must outlive traffic.
  void setObserver(MediumObserver* observer) { observer_ = observer; }

  /// Attach the MAC for node `id`. Must be called for every node before
  /// the first transmission. The listener must outlive the medium.
  void attachRadio(topo::NodeId id, RadioListener* listener);

  /// Attach a fault plane (nullptr detaches). A down sender's frames
  /// radiate nothing (a "null transmission" that keeps the MAC's timing
  /// invariants); a down receiver — or a cut link — silently hears
  /// nothing. Energy sensing is still delivered to down nodes so their
  /// idle/busy bookkeeping stays consistent for recovery.
  void setFaultPlane(const sim::FaultPlane* plane) { faults_ = plane; }

  /// Attach a channel impairment model (nullptr detaches). An impaired
  /// frame reaches the receiver as a corrupted frame (CRC failure).
  void setImpairments(ChannelImpairments* impairments) {
    impairments_ = impairments;
  }

  /// Begin transmitting `frame` from `frame.transmitter` now, for
  /// `frame.duration`. The sender must not already be transmitting.
  void startTransmission(const Frame& frame);

  /// True if node `id` currently senses energy from another transmitter.
  [[nodiscard]] bool senseBusy(topo::NodeId id) const {
    return energy_.at(static_cast<std::size_t>(id)) > 0;
  }

  [[nodiscard]] bool isTransmitting(topo::NodeId id) const {
    return transmitting_.at(static_cast<std::size_t>(id));
  }

  const topo::Topology& topology() const { return topo_; }

  // --- diagnostics -------------------------------------------------------
  [[nodiscard]] std::uint64_t framesDelivered() const { return framesDelivered_; }
  [[nodiscard]] std::uint64_t framesCorrupted() const { return framesCorrupted_; }
  /// Frames dropped by the channel impairment model.
  [[nodiscard]] std::uint64_t framesImpaired() const { return framesImpaired_; }
  /// Transmissions/receptions suppressed by the fault plane.
  [[nodiscard]] std::uint64_t framesSuppressed() const { return framesSuppressed_; }

 private:
  struct PendingRx {
    topo::NodeId receiver;
    bool corrupted;
  };
  struct ActiveTx {
    Frame frame;
    TimePoint end;
    bool silent = false;  ///< sender was down: nothing radiated
    std::vector<PendingRx> receptions;
  };

  void finishTransmission(std::size_t slot);
  void raiseEnergy(topo::NodeId at);
  void lowerEnergy(topo::NodeId at);

  sim::Simulator& sim_;
  const topo::Topology& topo_;
  std::vector<RadioListener*> radios_;
  std::vector<int> energy_;          // sensed transmitter count per node
  std::vector<bool> transmitting_;
  std::vector<ActiveTx> active_;     // slot reused when frame.transmitter == kNoNode
  std::vector<std::vector<topo::NodeId>> inTxRange_;  // per node, ascending
  std::vector<std::vector<topo::NodeId>> inCsRange_;
  std::uint64_t framesDelivered_ = 0;
  std::uint64_t framesCorrupted_ = 0;
  std::uint64_t framesImpaired_ = 0;
  std::uint64_t framesSuppressed_ = 0;
  MediumObserver* observer_ = nullptr;
  const sim::FaultPlane* faults_ = nullptr;
  ChannelImpairments* impairments_ = nullptr;
};

}  // namespace maxmin::phys
