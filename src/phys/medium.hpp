// Shared wireless medium with the protocol-interference collision model
// used by ns-2-era 802.11 studies (and by the paper):
//
//  * frames decode within txRange;
//  * energy is sensed within csRange (>= txRange);
//  * a reception is corrupted iff any other transmission whose sender is
//    within csRange of the receiver overlaps it in time, or the receiver
//    itself transmits during it (half-duplex). No capture effect.
//
// Propagation delay is zero: at 250 m it is under 1 us, below our clock
// resolution and irrelevant to the rate dynamics studied here.
//
// Hot-path layout (see DESIGN.md §12). All per-frame state is
// preallocated at construction so steady-state start/finish perform zero
// heap allocations:
//
//  * range relations are the topology's own CSR neighbor rows, consumed
//    in place (no per-Medium copy) — membership comes precomputed,
//    never from a distance computation;
//  * a reverse per-receiver reception index (rxAt_ + the rxPendingBits_
//    bitset) lets a new transmission corrupt exactly the nodes that both
//    sense it and hold in-flight receptions. Below the topology's dense
//    threshold that is a word-wise AND of the packed csAdjacency row
//    with the pending bitset; above it (no n²-bit matrices) the scan
//    walks the sender's sorted cs CSR row and tests one pending bit per
//    cs-neighbor — O(cs-degree), independent of N (DESIGN.md §14);
//  * pending receptions live inline in the transmission record (<= 8
//    receivers) or in a pooled spill arena block; records are recycled
//    through a free list shared by the silent and radiating paths.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "phys/frame.hpp"
#include "phys/impairment.hpp"
#include "phys/radio.hpp"
#include "sim/fault_plane.hpp"
#include "sim/simulator.hpp"
#include "topology/topology.hpp"

namespace maxmin::phys {

/// Passive observer of everything that happens on the medium; the hook
/// behind phys::FrameTrace. All callbacks are optional.
class MediumObserver {
 public:
  virtual ~MediumObserver() = default;
  virtual void onTransmissionStart(const Frame& frame, TimePoint at) {
    (void)frame;
    (void)at;
  }
  virtual void onDelivery(const Frame& frame, topo::NodeId receiver,
                          TimePoint at) {
    (void)frame;
    (void)receiver;
    (void)at;
  }
  virtual void onCorruption(const Frame& frame, topo::NodeId receiver,
                            TimePoint at) {
    (void)frame;
    (void)receiver;
    (void)at;
  }
};

class Medium {
 public:
  Medium(sim::Simulator& sim, const topo::Topology& topo);

  /// Attach a passive observer (nullptr detaches). Must outlive traffic.
  void setObserver(MediumObserver* observer) { observer_ = observer; }

  /// Attach the MAC for node `id`. Must be called for every node before
  /// the first transmission. The listener must outlive the medium.
  void attachRadio(topo::NodeId id, RadioListener* listener);

  /// Attach a fault plane (nullptr detaches). A down sender's frames
  /// radiate nothing (a "null transmission" that keeps the MAC's timing
  /// invariants); a down receiver — or a cut link — silently hears
  /// nothing. Energy sensing is still delivered to down nodes so their
  /// idle/busy bookkeeping stays consistent for recovery.
  void setFaultPlane(const sim::FaultPlane* plane) { faults_ = plane; }

  /// Attach a channel impairment model (nullptr detaches). An impaired
  /// frame reaches the receiver as a corrupted frame (CRC failure).
  void setImpairments(ChannelImpairments* impairments) {
    impairments_ = impairments;
  }

  /// Begin transmitting `frame` from `frame.transmitter` now, for
  /// `frame.duration`. The sender must not already be transmitting.
  void startTransmission(const Frame& frame);

  // --- sharded PDES binding (DESIGN.md §15) ------------------------------
  /// In a sharded run each lane owns a strip of nodes and holds its own
  /// Medium over the full topology. The binding restricts every
  /// state-mutating loop (receptions, energy, callbacks) to owned nodes,
  /// and routes transmissions by *cut* senders — the only ones whose
  /// radiation crosses a strip boundary — to `exportTx` along with the
  /// exact event keys at which the transmission starts and finishes.
  struct ShardBinding {
    const std::uint8_t* owned = nullptr;  ///< per node: 1 = this lane's
    const std::uint8_t* cut = nullptr;    ///< per node: 1 = radiates across
    std::function<void(const Frame&, sim::EventKey start, sim::EventKey finish)>
        exportTx;
  };
  void bindShard(ShardBinding binding);

  /// Receiver-side replay of a foreign cut transmission: apply exactly the
  /// owned-node effects (pending receptions, corruption of overlapping
  /// receptions, energy) the exporting lane's startTransmission applied to
  /// its own nodes, and schedule the finish at the exported foreign key so
  /// deliveries interleave with local events in the canonical order. The
  /// caller (the shard runtime) has already entered the foreign event's
  /// context via Simulator::beginExternalEvent.
  void applyImportedStart(const Frame& frame, sim::EventKey finishKey);

  /// True if node `id` currently senses energy from another transmitter.
  [[nodiscard]] bool senseBusy(topo::NodeId id) const {
    return energy_.at(static_cast<std::size_t>(id)) > 0;
  }

  [[nodiscard]] bool isTransmitting(topo::NodeId id) const {
    return transmitting_.at(static_cast<std::size_t>(id)) != 0;
  }

  const topo::Topology& topology() const { return topo_; }

  // --- diagnostics -------------------------------------------------------
  [[nodiscard]] std::uint64_t framesDelivered() const { return framesDelivered_; }
  [[nodiscard]] std::uint64_t framesCorrupted() const { return framesCorrupted_; }
  /// Frames dropped by the channel impairment model.
  [[nodiscard]] std::uint64_t framesImpaired() const { return framesImpaired_; }
  /// Transmissions/receptions suppressed by the fault plane.
  [[nodiscard]] std::uint64_t framesSuppressed() const { return framesSuppressed_; }

  /// Pool high-water marks, exposed so tests can assert the steady state
  /// recycles rather than allocates.
  [[nodiscard]] std::size_t activeSlotHighWater() const { return active_.size(); }
  [[nodiscard]] std::size_t spillBlockHighWater() const {
    return maxTxDegree_ == 0 ? 0 : spillArena_.size() / maxTxDegree_;
  }

 private:
  struct PendingRx {
    topo::NodeId receiver;
    bool corrupted;
  };
  /// Reverse-index entry: active_[slot]'s reception #index targets the
  /// node whose rxAt_ list holds this entry.
  struct RxRef {
    std::uint32_t slot;
    std::uint32_t index;
  };

  static constexpr std::uint32_t kInlineRx = 8;
  static constexpr std::uint32_t kNoBlock = UINT32_MAX;

  struct ActiveTx {
    Frame frame;
    TimePoint end;
    bool silent = false;  ///< sender was down: nothing radiated
    std::uint32_t rxCount = 0;
    std::uint32_t spillBlock = kNoBlock;  ///< arena block when degree > kInlineRx
    std::array<PendingRx, kInlineRx> inlineRx;
  };

  void finishTransmission(std::size_t slot);
  void raiseEnergy(topo::NodeId at);
  void lowerEnergy(topo::NodeId at);

  /// True when this Medium simulates `id` (always true unsharded).
  [[nodiscard]] bool ownsNode(topo::NodeId id) const {
    return shard_.owned == nullptr ||
           shard_.owned[static_cast<std::size_t>(id)] != 0;
  }

  /// Corrupt every in-flight reception at a node that senses `sender`
  /// (dense: packed cs-row AND pending bitset; sparse: per-cs-neighbor
  /// bit probe). Shared by the local and imported start paths.
  void corruptReceptionsSensing(topo::NodeId sender);

  /// Shared receiver-side tail of the local and imported start paths:
  /// fill pending receptions over owned decode-range nodes, corrupt
  /// overlapping receptions, raise energy at owned cs-neighbors, index.
  void applyStartEffects(std::uint32_t slot, topo::NodeId sender);

  /// Pop a recycled transmission record (or extend within the reserved
  /// capacity). One helper for the silent and radiating paths.
  std::uint32_t acquireSlot();

  /// Reception storage for `tx`: inline for <= kInlineRx receivers, a
  /// pooled spill-arena block otherwise. `degree` is the sender's
  /// tx-range out-degree (known before filling).
  PendingRx* acquireRxStorage(ActiveTx& tx, std::uint32_t degree);
  [[nodiscard]] PendingRx* receptions(ActiveTx& tx) {
    return tx.spillBlock == kNoBlock
               ? tx.inlineRx.data()
               : spillArena_.data() +
                     static_cast<std::size_t>(tx.spillBlock) * maxTxDegree_;
  }
  void releaseRxStorage(ActiveTx& tx);

  /// Register / drop the reverse-index entries for a transmission's
  /// pending receptions, maintaining the rxPendingBits_ bitset.
  void indexReceptions(std::uint32_t slot);
  void unindexReception(topo::NodeId receiver, std::uint32_t slot);

  sim::Simulator& sim_;
  const topo::Topology& topo_;
  std::vector<RadioListener*> radios_;
  std::vector<int> energy_;               // sensed transmitter count per node
  std::vector<std::uint8_t> transmitting_;

  // Transmission records: indexed by slot, recycled via freeSlots_.
  // Reserved to numNodes at construction (<= one active tx per node), so
  // neither ever reallocates.
  std::vector<ActiveTx> active_;
  std::vector<std::uint32_t> freeSlots_;

  // Spill arena for receptions of high-degree senders: fixed-size blocks
  // of maxTxDegree_ PendingRx, recycled via freeBlocks_. Grows only while
  // the concurrent spill population sets a new high-water mark.
  std::vector<PendingRx> spillArena_;
  std::vector<std::uint32_t> freeBlocks_;
  std::size_t maxTxDegree_ = 0;

  // Reverse reception index: per receiver, the in-flight receptions
  // targeting it (capacity = in-degree, reserved at construction); plus
  // one bit per node saying "this node holds pending receptions", so the
  // corruption scan is csRow(sender) AND rxPendingBits_ (dense) or a
  // per-cs-neighbor bit probe (sparse). The range relations themselves
  // are read straight from topo_'s CSR rows — the Medium holds no copy.
  std::vector<std::vector<RxRef>> rxAt_;
  std::vector<std::uint64_t> rxPendingBits_;

  // Scratch for finishTransmission: receptions are copied out before the
  // slot is recycled because delivery callbacks may start transmissions
  // that reuse it. Reserved to maxTxDegree_; finish never nests (it only
  // runs from the event loop), so one buffer suffices.
  std::vector<PendingRx> finishScratch_;

  std::uint64_t framesDelivered_ = 0;
  std::uint64_t framesCorrupted_ = 0;
  std::uint64_t framesImpaired_ = 0;
  std::uint64_t framesSuppressed_ = 0;
  MediumObserver* observer_ = nullptr;
  const sim::FaultPlane* faults_ = nullptr;
  ChannelImpairments* impairments_ = nullptr;
  ShardBinding shard_;  ///< owned == nullptr when unsharded
};

}  // namespace maxmin::phys
