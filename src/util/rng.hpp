// Deterministic random number generation.
//
// Every stochastic component draws from an Rng seeded from the scenario
// configuration, so a run is fully reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>

#include "util/check.hpp"

namespace maxmin {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    MAXMIN_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniformReal(double lo, double hi) {
    MAXMIN_CHECK(lo <= hi);
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    MAXMIN_CHECK(mean > 0.0);
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Derive an independent child generator (e.g. one per node) such that
  /// adding components does not perturb existing streams.
  Rng fork() { return Rng{engine_() ^ 0x9e3779b97f4a7c15ULL}; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace maxmin
