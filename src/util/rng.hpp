// Deterministic random number generation.
//
// Every stochastic component draws from an Rng seeded from the scenario
// configuration, so a run is fully reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

#include "util/check.hpp"

namespace maxmin {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_{seed}, engine_{seed} {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    MAXMIN_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniformReal(double lo, double hi) {
    MAXMIN_CHECK(lo <= hi);
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    MAXMIN_CHECK(mean > 0.0);
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Derive an independent child generator (e.g. one per node) such that
  /// adding components does not perturb existing streams.
  ///
  /// Draws from this generator, so fork order matters: inserting a new
  /// fork() call shifts every later child. For subsystems added after the
  /// original fork sequence was frozen (fault injection, channel
  /// impairments) use stream() instead, which leaves this generator's
  /// state untouched.
  Rng fork() { return Rng{engine_() ^ 0x9e3779b97f4a7c15ULL}; }

  /// Derive an independent named stream from this generator's *seed*
  /// without consuming any randomness from it. Two streams with different
  /// names (or indices) are decorrelated; the same (seed, name, index)
  /// always yields the same stream. This is what lets optional subsystems
  /// draw randomness without perturbing existing seeded runs.
  [[nodiscard]] Rng stream(std::string_view name, std::uint64_t index = 0) const {
    // FNV-1a over the name, finalized with splitmix64 — cheap and plenty
    // for decorrelating mt19937_64 seeds.
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : name) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 1099511628211ULL;
    }
    h ^= index + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    std::uint64_t z = seed_ ^ h;
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng{z ^ (z >> 31)};
  }

  /// The seed this generator was constructed with (stream derivation key).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace maxmin
