// Locale-independent number <-> text conversion.
//
// Every serialized number in the project (JSONL traces, sweep JSON, fault
// scripts) must be byte-identical across hosts, so none of them may go
// through iostream/printf/strtod with the process locale: a host configured
// with a ',' decimal separator would corrupt fixed-seed byte-identity. These
// helpers wrap std::to_chars / std::from_chars, which are defined to use
// "C"-locale semantics unconditionally.
//
// formatDouble with chars_format::general and an explicit precision produces
// exactly the digits printf("%.<precision>g") produces in the C locale —
// which is also what a classic-locale ostream with the same precision
// prints. Switching a writer from `os << v` to these helpers therefore
// preserves existing golden bytes while removing the locale dependence.
#pragma once

#include <charconv>
#include <cstddef>
#include <string>
#include <string_view>
#include <system_error>

#include "util/check.hpp"

namespace maxmin {

/// Format `v` like printf "%.<precision>g" in the C locale. Returns a view
/// over `buf`, which must stay alive while the view is used.
inline std::string_view formatDouble(char* buf, std::size_t size, double v,
                                     int precision = 17) {
  const auto res = std::to_chars(buf, buf + size, v,
                                 std::chars_format::general, precision);
  MAXMIN_CHECK_MSG(res.ec == std::errc{}, "double format buffer too small");
  return {buf, static_cast<std::size_t>(res.ptr - buf)};
}

/// Format `v` like printf "%.<precision>f" in the C locale.
inline std::string_view formatDoubleFixed(char* buf, std::size_t size,
                                          double v, int precision) {
  const auto res =
      std::to_chars(buf, buf + size, v, std::chars_format::fixed, precision);
  MAXMIN_CHECK_MSG(res.ec == std::errc{}, "double format buffer too small");
  return {buf, static_cast<std::size_t>(res.ptr - buf)};
}

inline void appendDouble(std::string& out, double v, int precision = 17) {
  char buf[64];
  out.append(formatDouble(buf, sizeof buf, v, precision));
}

/// Parse the entire `text` as a double ("C"-locale grammar). Returns false
/// on any trailing garbage or malformed input.
inline bool parseDouble(std::string_view text, double& out) {
  const auto res = std::from_chars(text.data(), text.data() + text.size(), out);
  return res.ec == std::errc{} && res.ptr == text.data() + text.size();
}

}  // namespace maxmin
