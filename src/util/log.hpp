// Minimal leveled logger. Off by default so simulations stay quiet; tests
// and debugging sessions can raise the level per component.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

#include "util/time.hpp"

namespace maxmin {

enum class LogLevel { kOff = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

class Logger {
 public:
  /// Global level shared by all components.
  static LogLevel level();
  static void setLevel(LogLevel level);

  /// Redirect output (default: std::cerr). Pass nullptr to restore default.
  static void setSink(std::ostream* sink);

  static bool enabled(LogLevel at) { return at <= level(); }

  static void write(LogLevel at, const std::string& component, TimePoint when,
                    const std::string& message);
};

}  // namespace maxmin

#define MAXMIN_LOG(level_, component_, when_, expr_)                       \
  do {                                                                     \
    if (::maxmin::Logger::enabled(level_)) {                               \
      std::ostringstream maxmin_log_os;                                    \
      maxmin_log_os << expr_;                                              \
      ::maxmin::Logger::write(level_, component_, when_,                   \
                              maxmin_log_os.str());                        \
    }                                                                      \
  } while (false)
