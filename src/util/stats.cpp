#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace maxmin {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double WindowedCounter::closeWindow(TimePoint windowStart, TimePoint now) {
  MAXMIN_CHECK(now >= windowStart);
  const std::int64_t count = count_;
  count_ = 0;
  // A zero-length window (e.g. a measurement period cut short by node
  // departure or a runUntil landing exactly on the period boundary) has no
  // meaningful rate; report 0 rather than dividing by zero.
  if (now == windowStart) return 0.0;
  const double seconds = (now - windowStart).asSeconds();
  return static_cast<double>(count) / seconds;
}

void BusyTimeAccumulator::set(bool on, TimePoint now) {
  if (on == on_) return;
  if (on_) accumulated_ += now - onSince_;
  on_ = on;
  onSince_ = now;
}

double BusyTimeAccumulator::fraction(TimePoint windowStart, TimePoint now) const {
  if (now <= windowStart) return 0.0;
  Duration busy = accumulated_;
  if (on_) busy += now - std::max(onSince_, windowStart);
  const double f = busy.ratio(now - windowStart);
  return std::clamp(f, 0.0, 1.0);
}

void BusyTimeAccumulator::beginWindow(TimePoint now) {
  accumulated_ = Duration::zero();
  windowStart_ = now;
  if (on_) onSince_ = now;
}

double jainIndex(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sumSq = 0.0;
  for (double x : xs) {
    sum += x;
    sumSq += x * x;
  }
  if (sumSq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sumSq);
}

double maxminIndex(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  if (*hi == 0.0) return 1.0;
  return *lo / *hi;
}

}  // namespace maxmin
