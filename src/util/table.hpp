// Plain-text result tables in the style of the paper's Tables 1-4, plus a
// CSV emitter for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace maxmin {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with two decimals, matching the paper.
  static std::string num(double v, int decimals = 2);

  /// Render with box-drawing-free ASCII, columns padded to content width.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (no quoting of embedded commas needed for
  /// our numeric content; commas in cells are replaced by semicolons).
  void printCsv(std::ostream& os) const;

  std::size_t rowCount() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace maxmin
