// Always-on invariant checks.
//
// Simulation bugs manifest as silently wrong results, so internal invariants
// are checked in all build types. Violations throw (rather than abort) so the
// test suite can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace maxmin {

/// Thrown when an internal invariant is violated. Indicates a bug in this
/// library, not bad user input (bad input throws std::invalid_argument).
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void failCheck(const char* expr, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace maxmin

#define MAXMIN_CHECK(expr)                                                \
  do {                                                                    \
    if (!(expr)) ::maxmin::detail::failCheck(#expr, __FILE__, __LINE__, {}); \
  } while (false)

#define MAXMIN_CHECK_MSG(expr, msg)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream maxmin_check_os;                                 \
      maxmin_check_os << msg;                                             \
      ::maxmin::detail::failCheck(#expr, __FILE__, __LINE__,              \
                                  maxmin_check_os.str());                 \
    }                                                                     \
  } while (false)
