// Data-size and bit-rate units, and the airtime arithmetic that connects
// them to simulated time.
#pragma once

#include <cstdint>
#include <compare>

#include "util/time.hpp"

namespace maxmin {

/// A payload / frame size in bytes.
class [[nodiscard]] DataSize {
 public:
  constexpr DataSize() = default;
  static constexpr DataSize bytes(std::int64_t b) { return DataSize{b}; }

  constexpr std::int64_t asBytes() const { return bytes_; }
  constexpr std::int64_t asBits() const { return bytes_ * 8; }

  constexpr friend auto operator<=>(DataSize, DataSize) = default;
  constexpr DataSize operator+(DataSize o) const { return DataSize{bytes_ + o.bytes_}; }

 private:
  constexpr explicit DataSize(std::int64_t b) : bytes_{b} {}
  std::int64_t bytes_ = 0;
};

/// A channel or flow bit rate in bits per second.
class [[nodiscard]] BitRate {
 public:
  constexpr BitRate() = default;
  static constexpr BitRate bitsPerSecond(double bps) { return BitRate{bps}; }
  static constexpr BitRate kiloBitsPerSecond(double kbps) { return BitRate{kbps * 1e3}; }
  static constexpr BitRate megaBitsPerSecond(double mbps) { return BitRate{mbps * 1e6}; }

  constexpr double asBitsPerSecond() const { return bps_; }
  constexpr double asMegaBitsPerSecond() const { return bps_ * 1e-6; }

  constexpr friend auto operator<=>(BitRate, BitRate) = default;

  /// Time to serialize `size` on the medium at this rate, rounded up to
  /// the next whole microsecond (transmissions never finish early).
  constexpr Duration txTime(DataSize size) const {
    const double seconds = static_cast<double>(size.asBits()) / bps_;
    const auto us = static_cast<std::int64_t>(seconds * 1e6);
    const bool exact = static_cast<double>(us) * 1e-6 * bps_ >=
                       static_cast<double>(size.asBits());
    return Duration::micros(exact ? us : us + 1);
  }

 private:
  constexpr explicit BitRate(double bps) : bps_{bps} {}
  double bps_ = 0.0;
};

/// A packet rate in packets per second; the unit the paper reports flows in.
class [[nodiscard]] PacketRate {
 public:
  constexpr PacketRate() = default;
  static constexpr PacketRate perSecond(double pps) { return PacketRate{pps}; }
  static constexpr PacketRate unlimited() { return PacketRate{1e18}; }

  constexpr double asPerSecond() const { return pps_; }

  /// Inter-packet gap at this rate.
  constexpr Duration interval() const {
    return Duration::micros(static_cast<std::int64_t>(1e6 / pps_));
  }

  constexpr friend auto operator<=>(PacketRate, PacketRate) = default;
  constexpr PacketRate operator*(double k) const { return PacketRate{pps_ * k}; }
  constexpr PacketRate operator/(double k) const { return PacketRate{pps_ / k}; }
  constexpr PacketRate operator+(PacketRate o) const { return PacketRate{pps_ + o.pps_}; }

 private:
  constexpr explicit PacketRate(double pps) : pps_{pps} {}
  double pps_ = 0.0;
};

}  // namespace maxmin
