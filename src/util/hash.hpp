// Hash helpers for hot-path unordered containers.
//
// std::unordered_map has no std::hash for pairs, and the per-packet maps
// in net::NodeStack key on (neighbor, destination) pairs. Packing two
// 32-bit ids into one 64-bit word and running splitmix64's finalizer
// gives full avalanche for a couple of multiplies — identity-style
// hashes cluster consecutive NodeIds into consecutive buckets, which is
// exactly the id pattern scenario generators produce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

namespace maxmin {

/// splitmix64 finalizer: cheap, statistically solid bit mixing.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash for pairs of integral ids (NodeId, FlowId, ...) up to 32 bits
/// each, e.g. the (upstream neighbor, destination) virtual-link keys.
struct IdPairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.first))
         << 32) |
        static_cast<std::uint32_t>(p.second);
    return static_cast<std::size_t>(mix64(packed));
  }
};

/// Hash for single integral ids; mixes so consecutive ids spread.
struct IdHash {
  template <typename T>
  std::size_t operator()(T v) const {
    return static_cast<std::size_t>(
        mix64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))));
  }
};

}  // namespace maxmin
