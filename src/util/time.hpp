// Strong time types for the simulation kernel.
//
// All simulation time is integral microseconds. Integral ticks make event
// ordering exact and runs bit-reproducible across platforms; a microsecond
// resolves every IEEE 802.11 interval we model (slot = 20 us, SIFS = 10 us).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <ostream>

namespace maxmin {

/// A span of simulated time. Internally a signed 64-bit count of microseconds.
/// Class-level [[nodiscard]]: a discarded Duration (or any unit value) is
/// always a dropped computation, never a side effect.
class [[nodiscard]] Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors. Prefer these over the raw-tick constructor.
  static constexpr Duration micros(std::int64_t us) { return Duration{us}; }
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1000}; }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t asMicros() const { return us_; }
  constexpr double asSeconds() const { return static_cast<double>(us_) * 1e-6; }

  constexpr friend auto operator<=>(Duration, Duration) = default;

  constexpr Duration operator+(Duration o) const { return Duration{us_ + o.us_}; }
  constexpr Duration operator-(Duration o) const { return Duration{us_ - o.us_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{us_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{us_ / k}; }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }
  constexpr Duration operator-() const { return Duration{-us_}; }

  /// Ratio of two durations as a real number (e.g. airtime fractions).
  constexpr double ratio(Duration denom) const {
    return static_cast<double>(us_) / static_cast<double>(denom.us_);
  }

 private:
  constexpr explicit Duration(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// An absolute instant on the simulation clock (microseconds since start).
class [[nodiscard]] TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint origin() { return TimePoint{}; }
  static constexpr TimePoint fromMicros(std::int64_t us) { return TimePoint{us}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t asMicros() const { return us_; }
  constexpr double asSeconds() const { return static_cast<double>(us_) * 1e-6; }

  constexpr friend auto operator<=>(TimePoint, TimePoint) = default;

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{us_ + d.asMicros()};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{us_ - d.asMicros()};
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::micros(us_ - o.us_);
  }
  constexpr TimePoint& operator+=(Duration d) { us_ += d.asMicros(); return *this; }

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.asMicros() << "us";
}
inline std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << "t+" << t.asMicros() << "us";
}

}  // namespace maxmin
