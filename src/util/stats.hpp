// Streaming statistics accumulators used by measurement code throughout
// the simulator (rates, occupancies, queue lengths).
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace maxmin {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< Sample variance; 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Counts discrete events over an explicit window; yields a rate when the
/// window is closed. Used for per-period link-rate and flow-rate measurement.
class WindowedCounter {
 public:
  void add(std::int64_t k = 1) { count_ += k; }

  /// Close the window that started at `windowStart` and ended at `now`;
  /// returns events/second and resets the counter.
  double closeWindow(TimePoint windowStart, TimePoint now);

  [[nodiscard]] std::int64_t pending() const { return count_; }

 private:
  std::int64_t count_ = 0;
};

/// Accumulates the total time a boolean condition held, sampled via explicit
/// rise/fall edges. Used for buffer-full fraction (Omega) and channel
/// occupancy measurement.
class BusyTimeAccumulator {
 public:
  /// Mark the condition as on/off at time `now`. Redundant transitions are
  /// ignored.
  void set(bool on, TimePoint now);

  /// Fraction of [windowStart, now] during which the condition held.
  /// Does not reset state; `beginWindow` starts the next window.
  [[nodiscard]] double fraction(TimePoint windowStart, TimePoint now) const;

  /// Start a new measurement window at `now`, carrying the current on/off
  /// state into it.
  void beginWindow(TimePoint now);

  [[nodiscard]] bool isOn() const { return on_; }

 private:
  bool on_ = false;
  TimePoint onSince_;
  Duration accumulated_ = Duration::zero();
  TimePoint windowStart_;
};

/// Jain's fairness (equality) index: (sum x)^2 / (n * sum x^2).
/// Returns 1.0 for an empty or all-zero input by convention.
[[nodiscard]] double jainIndex(const std::vector<double>& xs);

/// Maxmin fairness index: min(x) / max(x). Returns 1.0 for empty input and
/// 0.0 when max > 0 but min == 0.
[[nodiscard]] double maxminIndex(const std::vector<double>& xs);

}  // namespace maxmin
