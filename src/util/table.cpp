#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace maxmin {

Table::Table(std::vector<std::string> header) : header_{std::move(header)} {
  MAXMIN_CHECK(!header_.empty());
}

void Table::addRow(std::vector<std::string> cells) {
  MAXMIN_CHECK_MSG(cells.size() == header_.size(),
                   "row arity " << cells.size() << " != header arity "
                                << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emitRow = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 < row.size() ? " | " : " |\n");
    }
  };

  emitRow(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emitRow(row);
}

void Table::printCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      std::replace(cell.begin(), cell.end(), ',', ';');
      os << cell << (c + 1 < row.size() ? "," : "\n");
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace maxmin
