#include "util/log.hpp"

#include <iostream>

namespace maxmin {
namespace {

LogLevel& levelRef() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

std::ostream*& sinkRef() {
  static std::ostream* sink = nullptr;
  return sink;
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    default: return "?    ";
  }
}

}  // namespace

LogLevel Logger::level() { return levelRef(); }
void Logger::setLevel(LogLevel level) { levelRef() = level; }
void Logger::setSink(std::ostream* sink) { sinkRef() = sink; }

void Logger::write(LogLevel at, const std::string& component, TimePoint when,
                   const std::string& message) {
  std::ostream& os = sinkRef() != nullptr ? *sinkRef() : std::cerr;
  os << '[' << levelName(at) << "] [" << when.asMicros() << "us] ["
     << component << "] " << message << '\n';
}

}  // namespace maxmin
