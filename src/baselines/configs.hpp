// Network configurations for the three protocols compared in §7.2.
#pragma once

#include "net/config.hpp"

namespace maxmin::baselines {

/// Plain IEEE 802.11 DCF: one shared buffer per node; an arriving packet
/// overwrites the tail when the buffer is full; no backpressure, no rate
/// control.
net::NetworkConfig config80211(net::NetworkConfig base = {});

/// 2PP (Li, ICDCS'05): per-flow queues of 10 packets, no congestion
/// avoidance; rates are enforced at the sources by TwoPhaseAllocator.
net::NetworkConfig config2pp(net::NetworkConfig base = {});

/// GMP: per-destination queues of 10 packets with the congestion-
/// avoidance backpressure; rates adapted by gmp::Controller.
net::NetworkConfig configGmp(net::NetworkConfig base = {});

}  // namespace maxmin::baselines
