#include "baselines/configs.hpp"

namespace maxmin::baselines {

// Queue capacities are NOT overridden here: NetworkConfig's defaults are
// already the paper's §7 values (10-packet per-flow/per-destination
// queues, 300-packet shared buffer), and callers doing capacity
// ablations must keep their overrides.

net::NetworkConfig config80211(net::NetworkConfig base) {
  base.discipline = net::QueueDiscipline::kSharedFifo;
  base.congestionAvoidance = false;
  return base;
}

net::NetworkConfig config2pp(net::NetworkConfig base) {
  base.discipline = net::QueueDiscipline::kPerFlow;
  base.congestionAvoidance = false;
  return base;
}

net::NetworkConfig configGmp(net::NetworkConfig base) {
  base.discipline = net::QueueDiscipline::kPerDestination;
  base.congestionAvoidance = true;
  return base;
}

}  // namespace maxmin::baselines
