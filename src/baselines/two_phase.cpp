#include "baselines/two_phase.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "topology/conflict_graph.hpp"
#include "util/check.hpp"

namespace maxmin::baselines {

double nominalLinkCapacityPps(const mac::MacParams& mac, DataSize payload) {
  const Duration perPacket = mac.difs() +
                             mac.slotTime * (mac.cwMin / 2) +
                             mac.exchangeAirtime(payload);
  return 1e6 / static_cast<double>(perPacket.asMicros());
}

TwoPhaseAllocator::TwoPhaseAllocator(
    const topo::Topology& topo, std::vector<net::FlowSpec> flows,
    std::vector<std::vector<topo::NodeId>> paths, double cliqueCapacityPps,
    double basicShareConservatism)
    : flows_{std::move(flows)},
      capacity_{cliqueCapacityPps},
      conservatism_{basicShareConservatism} {
  MAXMIN_CHECK(capacity_ > 0.0);
  MAXMIN_CHECK(conservatism_ > 0.0 && conservatism_ <= 1.0);
  MAXMIN_CHECK(flows_.size() == paths.size());

  std::set<topo::Link> linkSet;
  for (const auto& path : paths) {
    MAXMIN_CHECK(path.size() >= 2);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      linkSet.insert(topo::Link{path[i], path[i + 1]});
    }
  }
  const topo::ConflictGraph graph{topo, {linkSet.begin(), linkSet.end()}};
  cliques_ = topo::enumerateMaximalCliques(graph);

  traversals_.assign(cliques_.size(),
                     std::vector<int>(flows_.size(), 0));
  for (std::size_t c = 0; c < cliques_.size(); ++c) {
    std::set<topo::Link> members;
    for (int li : cliques_[c].linkIndices) {
      members.insert(graph.links()[static_cast<std::size_t>(li)]);
    }
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      const auto& path = paths[i];
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        if (members.contains(topo::Link{path[h], path[h + 1]})) {
          ++traversals_[c][i];
        }
      }
    }
  }
}

TwoPhaseAllocation TwoPhaseAllocator::allocate() const {
  const std::size_t n = flows_.size();
  TwoPhaseAllocation alloc;

  // Phase one: the basic fair share. Each clique's capacity is divided
  // equally over every flow-link traversal inside it; a flow's guarantee
  // is the worst such division along its path. Conservative by design —
  // a flow crossing a busy clique several times still gets only one
  // share of it.
  std::vector<double> basic(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < traversals_.size(); ++c) {
      if (traversals_[c][i] == 0) continue;
      const int total =
          std::accumulate(traversals_[c].begin(), traversals_[c].end(), 0);
      share = std::min(share, capacity_ / total);
    }
    MAXMIN_CHECK(std::isfinite(share));
    basic[i] =
        std::min(share * conservatism_, flows_[i].desiredRate.asPerSecond());
  }

  // Residual clique capacity after the guarantees.
  std::vector<double> residual(traversals_.size(), 0.0);
  for (std::size_t c = 0; c < traversals_.size(); ++c) {
    double used = 0.0;
    for (std::size_t i = 0; i < n; ++i) used += basic[i] * traversals_[c][i];
    residual[c] = std::max(0.0, capacity_ - used);
  }

  // Phase two: maximize aggregate throughput. Cheapest flows first
  // (fewest total clique traversals, then fewer hops, then id).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  auto cost = [&](std::size_t i) {
    int total = 0;
    for (std::size_t c = 0; c < traversals_.size(); ++c)
      total += traversals_[c][i];
    return total;
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int ca = cost(a);
    const int cb = cost(b);
    if (ca != cb) return ca < cb;
    return flows_[a].id < flows_[b].id;
  });

  std::vector<double> total = basic;
  for (std::size_t i : order) {
    double extra = flows_[i].desiredRate.asPerSecond() - total[i];
    for (std::size_t c = 0; c < traversals_.size(); ++c) {
      if (traversals_[c][i] == 0) continue;
      extra = std::min(extra, residual[c] / traversals_[c][i]);
    }
    extra = std::max(0.0, extra);
    total[i] += extra;
    for (std::size_t c = 0; c < traversals_.size(); ++c) {
      residual[c] -= extra * traversals_[c][i];
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    alloc.basicSharePps[flows_[i].id] = basic[i];
    alloc.totalPps[flows_[i].id] = total[i];
  }
  return alloc;
}

}  // namespace maxmin::baselines
