// Reimplementation of the two-phase protocol (2PP) of
//   B. Li, "End-to-End Fair Bandwidth Allocation in Multi-hop Wireless
//   Ad Hoc Networks", ICDCS 2005,
// as characterized by the paper under reproduction (§1, §7.2): per-flow
// queueing; phase one guarantees every flow a conservative *basic fair
// share* derived from clique capacities; phase two distributes the
// remaining capacity to maximize aggregate throughput via a linear
// program, which biases the remainder heavily toward short (one-hop)
// flows.
//
// Phase two is solved greedily cheapest-flow-first (fewest clique
// traversals, i.e. shortest path). For the max-throughput LP over clique
// capacity constraints this greedy is the textbook optimal order: giving
// a unit of rate to a flow consumes `traversals` units of clique
// capacity, so throughput per capacity unit is maximized by ascending
// traversal count.
#pragma once

#include <map>
#include <vector>

#include "mac/params.hpp"
#include "net/flow.hpp"
#include "topology/cliques.hpp"
#include "topology/topology.hpp"

namespace maxmin::baselines {

struct TwoPhaseAllocation {
  std::map<net::FlowId, double> basicSharePps;  ///< phase-one guarantee
  std::map<net::FlowId, double> totalPps;       ///< basic + phase-two extra
};

/// Nominal saturated throughput (pkts/s) of a single contention-free
/// link: one DIFS + mean initial backoff + a full RTS/CTS/DATA/ACK
/// exchange per packet. Used as the per-clique capacity estimate.
double nominalLinkCapacityPps(const mac::MacParams& mac, DataSize payload);

class TwoPhaseAllocator {
 public:
  /// `paths[i]` is the routing path (nodes, inclusive) of `flows[i]`.
  /// `cliqueCapacityPps` is the serial packet capacity of any maximal
  /// contention clique. `basicShareConservatism` scales the phase-one
  /// guarantee below the plain equal split — [11]'s basic share is
  /// deliberately conservative ("can be far below the maxmin rate", §1),
  /// and the slack it leaves is what phase two then biases toward short
  /// flows.
  TwoPhaseAllocator(const topo::Topology& topo,
                    std::vector<net::FlowSpec> flows,
                    std::vector<std::vector<topo::NodeId>> paths,
                    double cliqueCapacityPps,
                    double basicShareConservatism = 0.5);

  [[nodiscard]] TwoPhaseAllocation allocate() const;

  [[nodiscard]] int numCliques() const { return static_cast<int>(cliques_.size()); }

 private:
  std::vector<net::FlowSpec> flows_;
  double capacity_;
  double conservatism_;
  /// traversals_[c][i]: links of flow i inside clique c.
  std::vector<std::vector<int>> traversals_;
  std::vector<topo::Clique> cliques_;
};

}  // namespace maxmin::baselines
