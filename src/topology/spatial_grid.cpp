#include "topology/spatial_grid.hpp"

#include "topology/topology.hpp"
#include "util/check.hpp"

namespace maxmin::topo {

SpatialGrid::SpatialGrid(const std::vector<Point>& positions,
                         double cellSide) {
  MAXMIN_CHECK(cellSide > 0.0);
  cellSide_ = cellSide;
  const std::size_t n = positions.size();
  if (n == 0) {
    cellsX_ = cellsY_ = 1;
    cellOff_.assign(2, 0);
    return;
  }
  double maxX = positions[0].x;
  double maxY = positions[0].y;
  minX_ = positions[0].x;
  minY_ = positions[0].y;
  for (const Point& p : positions) {
    minX_ = p.x < minX_ ? p.x : minX_;
    minY_ = p.y < minY_ ? p.y : minY_;
    maxX = p.x > maxX ? p.x : maxX;
    maxY = p.y > maxY ? p.y : maxY;
  }
  // Cells larger than the query radius keep the 3x3-block coverage
  // invariant, so when positions are spread out relative to cellSide
  // (cells >> nodes) we coarsen the grid until the cell table is O(n):
  // memory stays O(nodes + edges) no matter the coordinate extent.
  const double cellLimit = 4.0 * static_cast<double>(n) + 1.0;
  for (;;) {
    const double fx = (maxX - minX_) / cellSide_;
    const double fy = (maxY - minY_) / cellSide_;
    if ((fx + 1.0) * (fy + 1.0) <= cellLimit) {
      cellsX_ = static_cast<int>(fx) + 1;
      cellsY_ = static_cast<int>(fy) + 1;
      break;
    }
    cellSide_ *= 2.0;
  }
  const std::size_t cells = static_cast<std::size_t>(cellsX_) *
                            static_cast<std::size_t>(cellsY_);

  // Counting sort by cell: one pass to count occupants, one prefix sum,
  // one fill pass in ascending id order (so each bucket is ascending).
  cellOff_.assign(cells + 1, 0);
  std::vector<std::uint32_t> cellOf(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int cx = cellCoord(positions[i].x, minX_, cellsX_);
    const int cy = cellCoord(positions[i].y, minY_, cellsY_);
    const auto c = static_cast<std::uint32_t>(
        static_cast<std::size_t>(cy) * static_cast<std::size_t>(cellsX_) +
        static_cast<std::size_t>(cx));
    cellOf[i] = c;
    ++cellOff_[c + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) cellOff_[c + 1] += cellOff_[c];
  cellNodes_.resize(n);
  std::vector<std::uint32_t> fill(cellOff_.begin(), cellOff_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    cellNodes_[fill[cellOf[i]]++] = static_cast<NodeId>(i);
  }
}

}  // namespace maxmin::topo
