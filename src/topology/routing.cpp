#include "topology/routing.hpp"

#include <deque>

#include "util/check.hpp"

namespace maxmin::topo {

RoutingTree RoutingTree::shortestPaths(const Topology& topo, NodeId dest) {
  MAXMIN_CHECK(dest >= 0 && dest < topo.numNodes());
  RoutingTree tree;
  tree.dest_ = dest;
  tree.nextHop_.assign(static_cast<std::size_t>(topo.numNodes()), kNoNode);

  // BFS outward from the destination; the first (lowest-id, because
  // neighbor lists are ascending and the queue is FIFO) discoverer of a
  // node becomes its next hop toward the destination.
  std::vector<int> dist(static_cast<std::size_t>(topo.numNodes()), -1);
  dist[static_cast<std::size_t>(dest)] = 0;
  std::deque<NodeId> queue{dest};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : topo.neighbors(u)) {
      auto vi = static_cast<std::size_t>(v);
      if (dist[vi] == -1) {
        dist[vi] = dist[static_cast<std::size_t>(u)] + 1;
        tree.nextHop_[vi] = u;
        queue.push_back(v);
      }
    }
  }
  return tree;
}

std::vector<NodeId> RoutingTree::pathFrom(NodeId from) const {
  if (!reaches(from)) return {};
  std::vector<NodeId> path{from};
  NodeId cur = from;
  while (cur != dest_) {
    cur = nextHop(cur);
    MAXMIN_CHECK(cur != kNoNode);
    path.push_back(cur);
    MAXMIN_CHECK_MSG(path.size() <= nextHop_.size(), "routing loop detected");
  }
  return path;
}

int RoutingTree::hopCount(NodeId from) const {
  if (!reaches(from)) return -1;
  return static_cast<int>(pathFrom(from).size()) - 1;
}

}  // namespace maxmin::topo
