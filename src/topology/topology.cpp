#include "topology/topology.hpp"

#include <algorithm>
#include <cmath>

namespace maxmin::topo {

double distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Topology Topology::fromPositions(std::vector<Point> positions,
                                 RadioRanges ranges) {
  MAXMIN_CHECK(ranges.txRange > 0.0);
  MAXMIN_CHECK_MSG(ranges.csRange >= ranges.txRange,
                   "carrier-sense range must cover the transmission range");
  Topology t;
  t.positions_ = std::move(positions);
  t.ranges_ = ranges;
  const int n = t.numNodes();
  t.neighbors_.assign(static_cast<std::size_t>(n), {});
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (distance(t.positions_[static_cast<std::size_t>(a)],
                   t.positions_[static_cast<std::size_t>(b)]) <=
          ranges.txRange) {
        t.neighbors_[static_cast<std::size_t>(a)].push_back(b);
        t.neighbors_[static_cast<std::size_t>(b)].push_back(a);
      }
    }
  }
  return t;
}

double Topology::distanceBetween(NodeId a, NodeId b) const {
  return distance(positions_.at(checkId(a)), positions_.at(checkId(b)));
}

bool Topology::areNeighbors(NodeId a, NodeId b) const {
  if (a == b) return false;
  return distanceBetween(a, b) <= ranges_.txRange;
}

bool Topology::inCsRange(NodeId a, NodeId b) const {
  if (a == b) return false;
  return distanceBetween(a, b) <= ranges_.csRange;
}

std::vector<NodeId> Topology::twoHopNeighborhood(NodeId id) const {
  std::vector<bool> seen(static_cast<std::size_t>(numNodes()), false);
  seen[checkId(id)] = true;
  std::vector<NodeId> result;
  for (NodeId h1 : neighbors(id)) {
    if (!seen[static_cast<std::size_t>(h1)]) {
      seen[static_cast<std::size_t>(h1)] = true;
      result.push_back(h1);
    }
    for (NodeId h2 : neighbors(h1)) {
      if (!seen[static_cast<std::size_t>(h2)]) {
        seen[static_cast<std::size_t>(h2)] = true;
        result.push_back(h2);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace maxmin::topo
