#include "topology/topology.hpp"

#include <algorithm>
#include <cmath>

namespace maxmin::topo {

double distance(Point a, Point b) {
  return std::sqrt(distanceSquared(a, b));
}

double distanceSquared(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

Topology Topology::fromPositions(std::vector<Point> positions,
                                 RadioRanges ranges) {
  MAXMIN_CHECK(ranges.txRange > 0.0);
  MAXMIN_CHECK_MSG(ranges.csRange >= ranges.txRange,
                   "carrier-sense range must cover the transmission range");
  Topology t;
  t.positions_ = std::move(positions);
  t.ranges_ = ranges;
  const int n = t.numNodes();
  t.neighbors_.assign(static_cast<std::size_t>(n), {});
  t.txAdj_ = AdjacencyMatrix{n};
  t.csAdj_ = AdjacencyMatrix{n};
  // One pass over unordered pairs, comparing squared distances: no sqrt
  // anywhere in construction (the old per-pair distance() made topology
  // building at N = 800 a third of a million sqrt calls).
  const double txSq = ranges.txRange * ranges.txRange;
  const double csSq = ranges.csRange * ranges.csRange;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const double dSq = distanceSquared(t.positions_[static_cast<std::size_t>(a)],
                                         t.positions_[static_cast<std::size_t>(b)]);
      if (dSq <= txSq) {
        t.neighbors_[static_cast<std::size_t>(a)].push_back(b);
        t.neighbors_[static_cast<std::size_t>(b)].push_back(a);
        t.txAdj_.set(a, b);
        t.txAdj_.set(b, a);
      }
      if (dSq <= csSq) {
        t.csAdj_.set(a, b);
        t.csAdj_.set(b, a);
      }
    }
  }
  // Memoize the two-hop neighborhoods (GMP dissemination queries them
  // every period; recomputing allocated on every call).
  t.twoHop_.reserve(static_cast<std::size_t>(n));
  std::vector<bool> seen;
  for (NodeId id = 0; id < n; ++id) {
    seen.assign(static_cast<std::size_t>(n), false);
    seen[static_cast<std::size_t>(id)] = true;
    std::vector<NodeId> result;
    for (NodeId h1 : t.neighbors_[static_cast<std::size_t>(id)]) {
      if (!seen[static_cast<std::size_t>(h1)]) {
        seen[static_cast<std::size_t>(h1)] = true;
        result.push_back(h1);
      }
      for (NodeId h2 : t.neighbors_[static_cast<std::size_t>(h1)]) {
        if (!seen[static_cast<std::size_t>(h2)]) {
          seen[static_cast<std::size_t>(h2)] = true;
          result.push_back(h2);
        }
      }
    }
    std::sort(result.begin(), result.end());
    t.twoHop_.push_back(std::move(result));
  }
  return t;
}

double Topology::distanceBetween(NodeId a, NodeId b) const {
  return distance(positions_.at(checkId(a)), positions_.at(checkId(b)));
}

}  // namespace maxmin::topo
