#include "topology/topology.hpp"

#include <algorithm>
#include <cmath>

#include "topology/spatial_grid.hpp"

namespace maxmin::topo {

double distance(Point a, Point b) {
  return std::sqrt(distanceSquared(a, b));
}

double distanceSquared(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

bool Topology::rowContains(std::span<const NodeId> row, NodeId b) {
  return std::binary_search(row.begin(), row.end(), b);
}

Topology Topology::fromPositions(std::vector<Point> positions,
                                 RadioRanges ranges,
                                 TopologyOptions options) {
  MAXMIN_CHECK(ranges.txRange > 0.0);
  MAXMIN_CHECK_MSG(ranges.csRange >= ranges.txRange,
                   "carrier-sense range must cover the transmission range");
  Topology t;
  t.positions_ = std::move(positions);
  t.ranges_ = ranges;
  const int n = t.numNodes();
  const auto un = static_cast<std::size_t>(n);

  // Discover both relations through the spatial grid: each node examines
  // only the occupants of the 3x3 cell block around it (cell side =
  // csRange, so the block covers both ranges) instead of all n-1 other
  // nodes. Squared-distance compares keep construction sqrt-free, and
  // sorting each gathered row reproduces byte-for-byte the ascending
  // neighbor order of the old O(n^2) pair scan.
  const double txSq = ranges.txRange * ranges.txRange;
  const double csSq = ranges.csRange * ranges.csRange;
  const SpatialGrid grid{t.positions_, ranges.csRange};

  t.txOff_.assign(un + 1, 0);
  t.csOff_.assign(un + 1, 0);
  std::vector<NodeId> csRow;   // scratch, reused per node
  std::vector<NodeId> txRow;
  for (NodeId a = 0; a < n; ++a) {
    const Point pa = t.positions_[static_cast<std::size_t>(a)];
    csRow.clear();
    txRow.clear();
    grid.forEachCandidate(pa.x, pa.y, [&](NodeId b) {
      if (b == a) return;
      const double dSq =
          distanceSquared(pa, t.positions_[static_cast<std::size_t>(b)]);
      if (dSq > csSq) return;
      csRow.push_back(b);
      if (dSq <= txSq) txRow.push_back(b);
    });
    std::sort(csRow.begin(), csRow.end());
    std::sort(txRow.begin(), txRow.end());
    t.txOff_[static_cast<std::size_t>(a) + 1] =
        t.txOff_[static_cast<std::size_t>(a)] +
        static_cast<std::uint32_t>(txRow.size());
    t.csOff_[static_cast<std::size_t>(a) + 1] =
        t.csOff_[static_cast<std::size_t>(a)] +
        static_cast<std::uint32_t>(csRow.size());
    t.txList_.insert(t.txList_.end(), txRow.begin(), txRow.end());
    t.csList_.insert(t.csList_.end(), csRow.begin(), csRow.end());
  }

  // Dense bitset views only while the n^2-bit cost is trivial; above the
  // threshold the CSR rows are the only representation and membership is
  // a binary search (DESIGN.md §14).
  t.dense_ = n <= options.denseAdjacencyMaxNodes;
  if (t.dense_) {
    t.txAdj_ = AdjacencyMatrix{n};
    t.csAdj_ = AdjacencyMatrix{n};
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b : t.neighbors(a)) t.txAdj_.set(a, b);
      for (NodeId b : t.csNeighbors(a)) t.csAdj_.set(a, b);
    }
  }

  // Two-hop memo slots; rows fill lazily on first query.
  t.twoHop_.resize(un);
  t.twoHopReady_.assign(un, 0);
  return t;
}

const std::vector<NodeId>& Topology::twoHopNeighborhood(NodeId id) const {
  const std::size_t i = checkId(id);
  if (!twoHopReady_[i]) {
    // Gather 1-hop and 2-hop candidates from the CSR rows, then
    // sort+unique: O(deg² log deg²) per node, no O(n) scratch.
    std::vector<NodeId> result;
    for (NodeId h1 : neighbors(id)) {
      result.push_back(h1);
      const auto row = neighbors(h1);
      result.insert(result.end(), row.begin(), row.end());
    }
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()), result.end());
    // Exclude the center itself (it appears as a neighbor's neighbor).
    const auto self = std::lower_bound(result.begin(), result.end(), id);
    if (self != result.end() && *self == id) result.erase(self);
    result.shrink_to_fit();
    twoHop_[i] = std::move(result);
    twoHopReady_[i] = 1;
  }
  return twoHop_[i];
}

std::size_t Topology::memoryFootprintBytes() const {
  std::size_t bytes = positions_.capacity() * sizeof(Point);
  bytes += (txOff_.capacity() + csOff_.capacity()) * sizeof(std::uint32_t);
  bytes += (txList_.capacity() + csList_.capacity()) * sizeof(NodeId);
  if (dense_) {
    const auto rows = static_cast<std::size_t>(numNodes());
    bytes += 2 * rows * txAdj_.wordsPerRow() * sizeof(std::uint64_t);
  }
  bytes += twoHopReady_.capacity() * sizeof(std::uint8_t);
  bytes += twoHop_.capacity() * sizeof(std::vector<NodeId>);
  for (const auto& row : twoHop_) bytes += row.capacity() * sizeof(NodeId);
  return bytes;
}

double Topology::distanceBetween(NodeId a, NodeId b) const {
  return distance(positions_.at(checkId(a)), positions_.at(checkId(b)));
}

}  // namespace maxmin::topo
