// Maximal ("proper") contention cliques of the link conflict graph.
//
// The paper's bandwidth-saturated condition is evaluated per proper
// contention clique: a set of mutually contending links whose combined
// airtime is bounded by the channel. We enumerate all maximal cliques with
// Bron-Kerbosch (with pivoting); conflict graphs of geometric radio
// networks are small and sparse enough that this is fast.
#pragma once

#include <compare>
#include <ostream>
#include <vector>

#include "topology/conflict_graph.hpp"

namespace maxmin::topo {

/// System-wide unique clique identifier, per the paper: the smallest node
/// id appearing in the clique plus a sequence number assigned by that node.
struct CliqueId {
  NodeId owner = kNoNode;
  int sequence = 0;

  friend auto operator<=>(const CliqueId&, const CliqueId&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const CliqueId& id) {
  return os << "clique[" << id.owner << '.' << id.sequence << ']';
}

struct Clique {
  CliqueId id;
  std::vector<int> linkIndices;  ///< ascending indices into ConflictGraph::links()
};

/// All maximal cliques, deterministically ordered (by owner node, then
/// sequence). Every link is covered by at least one clique (a lone
/// conflict-free link forms a singleton clique).
std::vector<Clique> enumerateMaximalCliques(const ConflictGraph& graph);

/// Indices (into the result of enumerateMaximalCliques) of the cliques
/// containing each link; outer index = link index.
std::vector<std::vector<int>> cliquesByLink(const ConflictGraph& graph,
                                            const std::vector<Clique>& cliques);

}  // namespace maxmin::topo
